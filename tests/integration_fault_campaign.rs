//! Integration test: fault-injection campaigns over quantized policies, from
//! BER sampling to summary statistics.

use navft_fault::campaign::{run, run_parallel, CampaignConfig};
use navft_fault::{FaultKind, FaultMap, FaultSite, FaultTarget, Injector};
use navft_qformat::{bitstats::BitStats, QFormat, QValue};
use rand::rngs::SmallRng;
use rand::SeedableRng;

#[test]
fn campaign_over_fault_maps_reports_tight_statistics_for_fixed_ber() {
    let config = CampaignConfig::new(50, 123);
    let summary = run(&config, |seed, _| {
        let mut rng = SmallRng::seed_from_u64(seed);
        FaultMap::sample(256, QFormat::Q4_11, 0.01, FaultKind::BitFlip, &mut rng).len() as f64
    });
    // The fault count is deterministic for a fixed BER (round(0.01 * 4096)).
    assert_eq!(summary.mean(), 41.0);
    assert_eq!(summary.std_dev(), 0.0);
}

#[test]
fn parallel_and_serial_campaigns_agree_on_corruption_magnitude() {
    let weights: Vec<f32> = (0..512).map(|i| ((i % 31) as f32 - 15.0) * 0.01).collect();
    let experiment = |seed: u64, _rep: usize| {
        let mut rng = SmallRng::seed_from_u64(seed);
        let injector = Injector::sample(
            FaultTarget::new(FaultSite::WeightBuffer),
            weights.len(),
            QFormat::Q4_11,
            0.005,
            FaultKind::BitFlip,
            &mut rng,
        );
        let mut corrupted = weights.clone();
        injector.corrupt(&mut corrupted);
        corrupted.iter().zip(weights.iter()).map(|(a, b)| f64::from((a - b).abs())).sum::<f64>()
    };
    let config = CampaignConfig::new(32, 9);
    let serial = run(&config, experiment);
    let parallel = run_parallel(&config, 4, experiment);
    assert_eq!(serial.values().expect("run retains values"), parallel.values().unwrap());
    assert!(serial.mean() > 0.0);
}

#[test]
fn stuck_at_one_corrupts_more_than_stuck_at_zero_on_sparse_data() {
    // The asymmetry behind Fig. 2: near-zero (mostly 0-bit) data is immune to
    // stuck-at-0 but heavily corrupted by stuck-at-1.
    let sparse: Vec<f32> = (0..256).map(|i| (i % 8) as f32 * 0.01).collect();
    let stats = BitStats::from_f32(sparse.iter().copied(), QFormat::Q4_11);
    assert!(stats.zero_to_one_ratio() > 3.0);

    let corruption = |kind: FaultKind| {
        let config = CampaignConfig::new(20, 5);
        run(&config, |seed, _| {
            let mut rng = SmallRng::seed_from_u64(seed);
            let map = FaultMap::sample(sparse.len(), QFormat::Q4_11, 0.02, kind, &mut rng);
            let mut buf = sparse.clone();
            map.corrupt_f32(&mut buf, QFormat::Q4_11);
            buf.iter().zip(sparse.iter()).map(|(a, b)| f64::from((a - b).abs())).sum::<f64>()
        })
        .mean()
    };
    assert!(corruption(FaultKind::StuckAt1) > corruption(FaultKind::StuckAt0) * 5.0);
}

#[test]
fn quantize_corrupt_dequantize_roundtrip_is_consistent_across_formats() {
    for format in [QFormat::Q3_4, QFormat::Q4_11, QFormat::Q7_8, QFormat::Q10_5] {
        let value = 1.25f32;
        let word = QValue::quantize(value, format);
        let flipped = word.with_flipped_bit(format.sign_bit()).expect("valid bit");
        assert!(flipped.to_f32() < 0.0, "{format}: sign flip must negate");
        let back = flipped.with_flipped_bit(format.sign_bit()).expect("valid bit");
        assert_eq!(back, word);
    }
}

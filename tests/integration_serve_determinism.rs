//! Serving-path determinism suite: episodes served through the
//! `navft-serve` dynamic batchers must be **bit-identical** to the
//! library-only evaluation path, for every batch coalescing schedule ×
//! sharded worker count.
//!
//! Each shard's batcher flushes whatever requests happen to be pending — a
//! session's forward pass may share a sweep with any mix of same-shard
//! neighbours, at any batch size from 1 to `max_batch` — and the shard a
//! session lands on depends on the worker count. None of that may leak into
//! the result: the per-row hook routing gives each served row the exact
//! hook call sequence of a single-sample forward, the blocked GEMM engine
//! is bit-exact across batch sizes (pinned by the equivalence suites), each
//! session's fault RNG advances only when its own requests are served, and
//! a session never migrates off its shard. So a greedy episode trace served
//! under `max_batch` 1, 7 or 64 on 1, 2, 4 or 8 workers must equal the
//! trace the library evaluator produces with the same hooks — faults and
//! all — on both the `f32` and the native fixed-point backends.

use navft_fault::{FaultKind, FaultSpec};
use navft_gridworld::GridWorld;
use navft_nn::{mlp, HooksFor, QNetwork};
use navft_qformat::QFormat;
use navft_rl::{trace_policy_discrete, DiscreteEnvironment, EvalElement};
use navft_serve::{drive_discrete_episodes, LatencyWindow, ServeConfig, Server, SessionHook};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::time::Duration;

/// Coalescing schedules under test: serial, ragged, and the default
/// max-batch (larger than the session count, so deadline flushes dominate).
const MAX_BATCHES: [usize; 3] = [1, 7, 64];

/// Sharded worker counts under test: the degenerate single-worker daemon
/// through more shards than the host has cores.
const WORKERS: [usize; 4] = [1, 2, 4, 8];

const SESSIONS: usize = 12;
const MAX_STEPS: usize = 25;

/// The per-session observation fault model: a BER high enough that faults
/// fire every few steps, low enough that episodes still make progress.
fn fault_spec() -> FaultSpec {
    FaultSpec::new(0.01, FaultKind::BitFlip, QFormat::Q4_11)
}

fn world() -> GridWorld {
    let mut rng = SmallRng::seed_from_u64(0x6E1D);
    GridWorld::random(6, 0.2, &mut rng)
}

/// Serves `SESSIONS` fault-injected episodes of `network` on `world` at
/// every coalescing schedule × worker count and asserts each session's
/// action trace equals the library evaluator's under an identically-seeded
/// hook.
fn assert_served_traces_match_library<W>(backend: &str, network: navft_nn::NetworkBase<W>)
where
    W: EvalElement,
    SessionHook<W>: HooksFor<W>,
{
    let world = world();
    let meta = *network.net_meta();

    // Library reference: one greedy episode per session, each under its own
    // seeded fault hook — the exact hook construction the server gets.
    let expected: Vec<Vec<usize>> = (0..SESSIONS)
        .map(|seed| {
            let mut hook = SessionHook::<W>::new(meta, seed as u64).with_faults(fault_spec());
            let mut env = world.clone();
            trace_policy_discrete(&mut env, &network, MAX_STEPS, &mut hook)
        })
        .collect();
    assert!(
        expected.iter().any(|trace| !trace.is_empty()),
        "the reference episodes must actually step"
    );

    for workers in WORKERS {
        for max_batch in MAX_BATCHES {
            let config = ServeConfig::default()
                .with_workers(workers)
                .with_max_batch(max_batch)
                .with_queue_capacity(SESSIONS.max(max_batch))
                .with_flush_after(Duration::from_millis(1));
            let server = Server::start(network.clone(), &[world.num_states()], config);
            let sessions: Vec<_> = (0..SESSIONS)
                .map(|seed| {
                    server.open_session(Box::new(
                        SessionHook::<W>::new(meta, seed as u64).with_faults(fault_spec()),
                    ))
                })
                .collect();
            let mut envs: Vec<GridWorld> = (0..SESSIONS).map(|_| world.clone()).collect();
            let mut latency = LatencyWindow::new();
            let outcome =
                drive_discrete_episodes(&server, &sessions, &mut envs, MAX_STEPS, &mut latency);

            assert_eq!(
                outcome.traces, expected,
                "{backend} traces diverged from the library path at \
                 workers {workers} × max_batch {max_batch}"
            );
            let stats = server.stats();
            assert!(stats.max_rows_per_batch <= max_batch, "batcher overfilled a sweep");
            if max_batch == 1 {
                assert_eq!(stats.max_rows_per_batch, 1, "max_batch 1 must serve serially");
            }
            let per_shard = server.shard_rows();
            assert_eq!(per_shard.len(), workers);
            assert_eq!(
                per_shard.iter().sum::<usize>(),
                stats.rows,
                "every served row is accounted to exactly one shard"
            );
        }
    }
}

#[test]
fn served_f32_episode_traces_are_bit_identical_at_every_coalescing_schedule() {
    let policy = mlp(&[world().num_states(), 24, 4], &mut SmallRng::seed_from_u64(0xF32));
    assert_served_traces_match_library("f32", policy);
}

#[test]
fn served_native_episode_traces_are_bit_identical_at_every_coalescing_schedule() {
    let policy = mlp(&[world().num_states(), 24, 4], &mut SmallRng::seed_from_u64(0xF32));
    let qpolicy = QNetwork::quantize(&policy, QFormat::Q4_11);
    assert_served_traces_match_library("Q(1,4,11)", qpolicy);
}

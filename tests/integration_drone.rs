//! Integration test: the drone simulator driven by the C3F2 policy network
//! with weight faults, end to end.

use navft_dronesim::{ActionSpace, DepthCamera, DroneSim, DroneWorld};
use navft_fault::{FaultKind, FaultSite, FaultTarget, Injector};
use navft_nn::{C3f2Config, Tensor};
use navft_qformat::QFormat;
use navft_rl::{evaluate_network_vision, InferenceFaultMode, VisionEnvironment};
use rand::rngs::SmallRng;
use rand::SeedableRng;

#[test]
fn c3f2_policy_consumes_drone_frames_and_selects_valid_actions() {
    let config = C3f2Config::scaled();
    let mut rng = SmallRng::seed_from_u64(0);
    let policy = config.build(&mut rng);
    let mut sim = DroneSim::indoor_long();
    let mut frame = sim.reset();
    for _ in 0..5 {
        let action = policy.forward(&frame).argmax();
        assert!(action < ActionSpace::COUNT);
        let transition = sim.step(action);
        frame = transition.observation;
        assert_eq!(frame.shape(), &config.input_shape());
        if transition.terminal {
            break;
        }
    }
}

#[test]
fn heavy_weight_corruption_degrades_flight_distance() {
    let mut rng = SmallRng::seed_from_u64(1);
    let policy = navft_core::drone_policy::train_drone_policy(
        &DroneWorld::indoor_long(),
        &navft_core::Scale::Smoke.drone(),
        1,
    );
    let mut sim = DroneSim::new(DroneWorld::indoor_long(), DepthCamera::scaled(), 60);
    let clean =
        evaluate_network_vision(&mut sim, &policy, 3, 60, &InferenceFaultMode::None, &mut rng);
    let injector = Injector::sample(
        FaultTarget::new(FaultSite::WeightBuffer),
        policy.weight_count(),
        QFormat::Q4_11,
        0.05,
        FaultKind::StuckAt1,
        &mut rng,
    );
    let corrupted = evaluate_network_vision(
        &mut sim,
        &policy,
        3,
        60,
        &InferenceFaultMode::Permanent(injector),
        &mut rng,
    );
    assert!(
        corrupted.mean_distance <= clean.mean_distance,
        "corrupted {} vs clean {}",
        corrupted.mean_distance,
        clean.mean_distance
    );
}

#[test]
fn both_environments_render_frames_with_structure() {
    for mut sim in [DroneSim::indoor_long(), DroneSim::indoor_vanleer()] {
        let frame: Tensor = sim.reset();
        let mean = frame.data().iter().sum::<f32>() / frame.len() as f32;
        assert!(mean > 0.0, "frames should see some obstruction");
        assert!(mean < 1.0, "frames should not be fully saturated");
        assert_eq!(sim.num_actions(), 25);
    }
}

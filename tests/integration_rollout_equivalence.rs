//! Vectorized-rollout equivalence suite: the batch-width rollout driver must
//! be **bit-exact** against the serial per-episode evaluators for every
//! policy family, numeric backend (`f32`, native Q-format, `i8` affine),
//! batch width in {1, 2, 7, 64}, inference fault mode and per-episode hook.
//!
//! This is the contract that lets the figure campaigns evaluate their episode
//! repetitions as batch rows without re-validating a single artifact: if
//! these tests pass, the vectorized rollout *is* the serial rollout —
//! onset draws, hook construction order, fault corruption and accumulation
//! order included. Episode counts deliberately exceed the batch widths, so
//! rows finish at ragged lengths and are re-seeded mid-batch.

use navft_core::{BufferFaultHook, HookPersistence, HookTarget};
use navft_dronesim::{DepthCamera, DroneSim, DroneWorld};
use navft_fault::{FaultKind, FaultSite, FaultTarget, Injector};
use navft_gridworld::{GridWorld, ObstacleDensity};
use navft_nn::{mlp, C3f2Config, EngineConfig, I8Network, Network, QNetwork, RangeRecorder};
use navft_qformat::QFormat;
use navft_rl::{
    evaluate_policy_discrete, evaluate_policy_discrete_batched, evaluate_policy_vision,
    evaluate_policy_vision_batched, evaluate_policy_vision_hooked,
    evaluate_policy_vision_hooked_batched, DiscreteEnvironment, DummyVecEnv, DummyVisionVecEnv,
    EvalResult, InferenceFaultMode,
};
use rand::rngs::SmallRng;
use rand::SeedableRng;

const BATCHES: [usize; 4] = [1, 2, 7, 64];

/// More episodes than most batch widths, so finished rows are re-seeded with
/// fresh episodes mid-batch and the final wave drains ragged.
const EPISODES: usize = 10;
const MAX_STEPS: usize = 12;

fn assert_bit_identical(serial: &EvalResult, batched: &EvalResult, context: &str) {
    assert_eq!(serial.episodes, batched.episodes, "{context}: episode count");
    assert_eq!(
        serial.success_rate.to_bits(),
        batched.success_rate.to_bits(),
        "{context}: success_rate {} vs {}",
        serial.success_rate,
        batched.success_rate
    );
    assert_eq!(
        serial.mean_reward.to_bits(),
        batched.mean_reward.to_bits(),
        "{context}: mean_reward {} vs {}",
        serial.mean_reward,
        batched.mean_reward
    );
    assert_eq!(
        serial.mean_distance.to_bits(),
        batched.mean_distance.to_bits(),
        "{context}: mean_distance {} vs {}",
        serial.mean_distance,
        batched.mean_distance
    );
}

/// Every inference fault mode, sampled over `words` weight words.
fn fault_modes(words: usize, seed: u64) -> Vec<(&'static str, InferenceFaultMode)> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut sample = |ber: f64, kind: FaultKind| {
        Injector::sample(
            FaultTarget::new(FaultSite::WeightBuffer),
            words,
            QFormat::Q4_11,
            ber,
            kind,
            &mut rng,
        )
    };
    vec![
        ("none", InferenceFaultMode::None),
        ("transient-1", InferenceFaultMode::TransientSingleStep(sample(0.02, FaultKind::BitFlip))),
        (
            "transient-m",
            InferenceFaultMode::TransientFromRandomStep(sample(0.02, FaultKind::BitFlip)),
        ),
        (
            "whole-episode",
            InferenceFaultMode::TransientWholeEpisode(sample(0.01, FaultKind::BitFlip)),
        ),
        ("stuck-at-1", InferenceFaultMode::Permanent(sample(0.01, FaultKind::StuckAt1))),
    ]
}

/// The Grid World policy topologies pushed through the rollout layer: the
/// campaign MLP and a deeper variant.
fn grid_policies(world: &GridWorld) -> Vec<(&'static str, Network)> {
    let mut rng = SmallRng::seed_from_u64(0xA0);
    let (states, actions) = (world.num_states(), world.num_actions());
    vec![
        ("grid_mlp", mlp(&[states, 32, actions], &mut rng)),
        ("deep_mlp", mlp(&[states, 16, 8, 8, actions], &mut rng)),
    ]
}

#[test]
fn discrete_rollouts_match_serial_bit_for_bit_on_all_three_backends() {
    let world = GridWorld::with_density(ObstacleDensity::Middle);
    for (model, network) in grid_policies(&world) {
        let qnet = QNetwork::quantize(&network, QFormat::Q4_11);
        let inet = I8Network::quantize(&network);
        for (mode, fault) in fault_modes(network.weight_count(), 0xF0) {
            for batch in BATCHES {
                let context = format!("{model}/{mode} x{batch}");
                let mut venv = DummyVecEnv::from_prototype(&world, batch);

                let mut serial_env = world.clone();
                let serial = evaluate_policy_discrete(
                    &mut serial_env,
                    &network,
                    EPISODES,
                    MAX_STEPS,
                    &fault,
                    &mut SmallRng::seed_from_u64(7),
                );
                let batched = evaluate_policy_discrete_batched(
                    &mut venv,
                    &network,
                    EPISODES,
                    MAX_STEPS,
                    &fault,
                    &mut SmallRng::seed_from_u64(7),
                    EngineConfig::default(),
                );
                assert_bit_identical(&serial, &batched, &format!("{context}/f32"));

                let mut serial_env = world.clone();
                let serial = evaluate_policy_discrete(
                    &mut serial_env,
                    &qnet,
                    EPISODES,
                    MAX_STEPS,
                    &fault,
                    &mut SmallRng::seed_from_u64(7),
                );
                let batched = evaluate_policy_discrete_batched(
                    &mut venv,
                    &qnet,
                    EPISODES,
                    MAX_STEPS,
                    &fault,
                    &mut SmallRng::seed_from_u64(7),
                    EngineConfig::default(),
                );
                assert_bit_identical(&serial, &batched, &format!("{context}/q4.11"));

                let mut serial_env = world.clone();
                let serial = evaluate_policy_discrete(
                    &mut serial_env,
                    &inet,
                    EPISODES,
                    MAX_STEPS,
                    &fault,
                    &mut SmallRng::seed_from_u64(7),
                );
                let batched = evaluate_policy_discrete_batched(
                    &mut venv,
                    &inet,
                    EPISODES,
                    MAX_STEPS,
                    &fault,
                    &mut SmallRng::seed_from_u64(7),
                    EngineConfig::default(),
                );
                assert_bit_identical(&serial, &batched, &format!("{context}/i8"));
            }
        }
    }
}

#[test]
fn discrete_rollouts_are_config_invariant_at_any_batch_width() {
    // Sharded multi-threaded engines and forced-scalar kernels must not move
    // a single bit of the rollout results either.
    let world = GridWorld::with_density(ObstacleDensity::Middle);
    let mut rng = SmallRng::seed_from_u64(0xC0F);
    let network = mlp(&[world.num_states(), 32, world.num_actions()], &mut rng);
    let reference = {
        let mut venv = DummyVecEnv::from_prototype(&world, 7);
        evaluate_policy_discrete_batched(
            &mut venv,
            &network,
            EPISODES,
            MAX_STEPS,
            &InferenceFaultMode::None,
            &mut SmallRng::seed_from_u64(3),
            EngineConfig::default(),
        )
    };
    for config in [
        EngineConfig::default().with_threads(4),
        EngineConfig::default().with_force_scalar(true),
        EngineConfig::default().with_threads(3).with_force_scalar(true),
    ] {
        for batch in BATCHES {
            let mut venv = DummyVecEnv::from_prototype(&world, batch);
            let got = evaluate_policy_discrete_batched(
                &mut venv,
                &network,
                EPISODES,
                MAX_STEPS,
                &InferenceFaultMode::None,
                &mut SmallRng::seed_from_u64(3),
                config,
            );
            assert_bit_identical(&reference, &got, &format!("{config:?} x{batch}"));
        }
    }
}

/// The drone vision policies: the scaled C3F2 topology in plain `f32` and
/// with quantized activations.
fn vision_policies() -> Vec<(&'static str, Network)> {
    let mut rng = SmallRng::seed_from_u64(0x7151);
    vec![
        ("c3f2_scaled", C3f2Config::scaled().build(&mut rng)),
        (
            "c3f2_scaled_quantized",
            C3f2Config::scaled().build(&mut rng).with_activation_format(QFormat::Q4_11),
        ),
    ]
}

#[test]
fn vision_rollouts_match_serial_bit_for_bit_on_all_three_backends() {
    let world = DroneWorld::indoor_long();
    // Vision forwards are ~1000x a grid MLP row, so trim the episode budget
    // while still re-seeding rows mid-batch (episodes > width for the small
    // widths) and draining the final wave ragged.
    let (episodes, max_steps) = (5, 6);
    for (model, network) in vision_policies() {
        let sim = DroneSim::new(world.clone(), DepthCamera::scaled(), max_steps);
        let qnet = QNetwork::quantize(&network, QFormat::Q4_11);
        let inet = I8Network::quantize(&network);
        for (mode, fault) in fault_modes(network.weight_count(), 0xF1) {
            for batch in [1usize, 3] {
                let context = format!("{model}/{mode} x{batch}");
                let mut venv = DummyVisionVecEnv::from_prototype(&sim, batch);

                let mut serial_env = sim.clone();
                let serial = evaluate_policy_vision(
                    &mut serial_env,
                    &network,
                    episodes,
                    max_steps,
                    &fault,
                    &mut SmallRng::seed_from_u64(11),
                );
                let batched = evaluate_policy_vision_batched(
                    &mut venv,
                    &network,
                    episodes,
                    max_steps,
                    &fault,
                    &mut SmallRng::seed_from_u64(11),
                    EngineConfig::default(),
                );
                assert_bit_identical(&serial, &batched, &format!("{context}/f32"));

                let mut serial_env = sim.clone();
                let serial = evaluate_policy_vision(
                    &mut serial_env,
                    &qnet,
                    episodes,
                    max_steps,
                    &fault,
                    &mut SmallRng::seed_from_u64(11),
                );
                let batched = evaluate_policy_vision_batched(
                    &mut venv,
                    &qnet,
                    episodes,
                    max_steps,
                    &fault,
                    &mut SmallRng::seed_from_u64(11),
                    EngineConfig::default(),
                );
                assert_bit_identical(&serial, &batched, &format!("{context}/q4.11"));

                let mut serial_env = sim.clone();
                let serial = evaluate_policy_vision(
                    &mut serial_env,
                    &inet,
                    episodes,
                    max_steps,
                    &fault,
                    &mut SmallRng::seed_from_u64(11),
                );
                let batched = evaluate_policy_vision_batched(
                    &mut venv,
                    &inet,
                    episodes,
                    max_steps,
                    &fault,
                    &mut SmallRng::seed_from_u64(11),
                    EngineConfig::default(),
                );
                assert_bit_identical(&serial, &batched, &format!("{context}/i8"));
            }
        }
    }
}

#[test]
fn hooked_vision_rollouts_match_serial_under_fault_and_guard_hooks() {
    // Per-episode hooks ride their own batch row: buffer fault injection
    // (input and activations, transient and permanent) and the range-guard
    // instrument must all see exactly the serial evaluator's traffic.
    let world = DroneWorld::indoor_long();
    let (episodes, max_steps) = (4, 5);
    let sim = DroneSim::new(world, DepthCamera::scaled(), max_steps);
    let mut rng = SmallRng::seed_from_u64(0x4007);
    let network = C3f2Config::scaled().build(&mut rng);

    for (target, persistence) in [
        (HookTarget::Input, HookPersistence::Transient),
        (HookTarget::Activations, HookPersistence::Transient),
        (HookTarget::Activations, HookPersistence::Permanent),
    ] {
        for batch in [1usize, 2, 7] {
            let context = format!("fault-hook {target:?}/{persistence:?} x{batch}");
            let make_hooks = |episode: usize| {
                BufferFaultHook::new(
                    target,
                    persistence,
                    0.02,
                    FaultKind::BitFlip,
                    QFormat::Q4_11,
                    0xBEEF ^ (episode as u64) << 8,
                )
            };
            let mut serial_env = sim.clone();
            let serial = evaluate_policy_vision_hooked(
                &mut serial_env,
                &network,
                episodes,
                max_steps,
                &InferenceFaultMode::None,
                &mut SmallRng::seed_from_u64(13),
                make_hooks,
            );
            let mut venv = DummyVisionVecEnv::from_prototype(&sim, batch);
            let batched = evaluate_policy_vision_hooked_batched(
                &mut venv,
                &network,
                episodes,
                max_steps,
                &InferenceFaultMode::None,
                &mut SmallRng::seed_from_u64(13),
                make_hooks,
                EngineConfig::default(),
            );
            assert_bit_identical(&serial, &batched, &context);
        }
    }

    // Guard instrumentation: one fresh range recorder per episode.
    for batch in [1usize, 3] {
        let mut serial_env = sim.clone();
        let serial = evaluate_policy_vision_hooked(
            &mut serial_env,
            &network,
            episodes,
            max_steps,
            &InferenceFaultMode::None,
            &mut SmallRng::seed_from_u64(17),
            |_| RangeRecorder::new(),
        );
        let mut venv = DummyVisionVecEnv::from_prototype(&sim, batch);
        let batched = evaluate_policy_vision_hooked_batched(
            &mut venv,
            &network,
            episodes,
            max_steps,
            &InferenceFaultMode::None,
            &mut SmallRng::seed_from_u64(17),
            |_| RangeRecorder::new(),
            EngineConfig::default(),
        );
        assert_bit_identical(&serial, &batched, &format!("range-guard x{batch}"));
    }
}

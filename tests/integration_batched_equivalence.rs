//! Batched-inference equivalence suite: `Network::forward_batch` must be
//! **bit-exact** against per-sample `Network::forward` for every model in
//! `nn::models`, with and without fault-injection hooks and range
//! instrumentation attached, across batch sizes {0, 1, 2, 7, 64}.
//!
//! This is the contract that lets every fault campaign and the DQN learning
//! step move onto the preallocated batched engine without re-validating a
//! single figure: if these tests pass, the batched path *is* the serial
//! path, corruption and all.

use navft_core::{BufferFaultHook, HookPersistence, HookTarget};
use navft_fault::FaultKind;
use navft_nn::{mlp, C3f2Config, Network, NoHooks, PerRowHooks, RangeRecorder, Scratch, Tensor};
use navft_qformat::QFormat;
use rand::rngs::SmallRng;
use rand::SeedableRng;

const BATCH_SIZES: [usize; 5] = [0, 1, 2, 7, 64];

/// Every ready-made topology of `nn::models`, with its input shape. The
/// full-size paper network is exercised at the small batch sizes only (its
/// single forward pass is ~20M MACs; the scaled variant covers the large
/// batches).
fn models() -> Vec<(&'static str, Network, Vec<usize>, &'static [usize])> {
    let mut rng = SmallRng::seed_from_u64(0xBA7C);
    static SMALL_BATCHES: [usize; 3] = [0, 1, 2];
    vec![
        ("grid_mlp", mlp(&[100, 64, 4], &mut rng), vec![100], &BATCH_SIZES),
        ("deep_mlp", mlp(&[12, 16, 8, 8, 3], &mut rng), vec![12], &BATCH_SIZES),
        (
            "c3f2_scaled",
            C3f2Config::scaled().build(&mut rng),
            C3f2Config::scaled().input_shape().to_vec(),
            &BATCH_SIZES,
        ),
        (
            "c3f2_scaled_quantized",
            C3f2Config::scaled().build(&mut rng).with_activation_format(QFormat::Q4_11),
            C3f2Config::scaled().input_shape().to_vec(),
            &BATCH_SIZES,
        ),
        (
            "c3f2_paper",
            C3f2Config::paper().build(&mut rng),
            C3f2Config::paper().input_shape().to_vec(),
            &SMALL_BATCHES,
        ),
    ]
}

fn batch_inputs(shape: &[usize], batch: usize, seed: u64) -> Vec<Tensor> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..batch).map(|_| Tensor::uniform(shape, 1.0, &mut rng)).collect()
}

#[test]
fn forward_batch_is_bit_exact_for_every_model_without_hooks() {
    // One scratch across every model and batch size: reuse across topologies
    // must not leak state between passes either.
    let mut scratch = Scratch::new();
    for (name, net, shape, batches) in models() {
        for &batch in batches {
            let inputs = batch_inputs(&shape, batch, 0x5EED ^ batch as u64);
            let batched = net.forward_batch(&inputs, &mut scratch);
            assert_eq!(batched.len(), batch);
            for (b, (input, out)) in inputs.iter().zip(batched.iter()).enumerate() {
                let serial = net.forward(input);
                assert_eq!(out.shape(), serial.shape(), "{name} x{batch} row {b} shape");
                assert_eq!(
                    out.data(),
                    serial.data(),
                    "{name} x{batch} row {b} diverged from per-sample forward"
                );
            }
        }
    }
}

#[test]
fn an_empty_flush_is_a_no_op_that_leaves_the_scratch_reusable() {
    // Flushing zero rows must return zero outputs without touching the
    // engine, and the very same scratch must then serve a real batch
    // bit-exactly — an empty flush may not leave stale row state behind.
    let mut rng = SmallRng::seed_from_u64(0xE0);
    let net = mlp(&[12, 16, 3], &mut rng);
    let mut scratch = Scratch::new();
    let inputs = batch_inputs(&[12], 3, 0xE1);
    let expected = net.forward_batch(&inputs, &mut scratch);

    assert!(net.forward_batch(&[], &mut scratch).is_empty(), "empty flush returns no rows");
    let after_empty = net.forward_batch(&inputs, &mut scratch);
    for (b, (fresh, again)) in expected.iter().zip(after_empty.iter()).enumerate() {
        assert_eq!(fresh.data(), again.data(), "row {b} changed after an empty flush");
    }
}

#[test]
fn forward_batch_is_bit_exact_under_a_shared_range_recorder() {
    let mut scratch = Scratch::new();
    for (name, net, shape, batches) in models() {
        for &batch in batches {
            let inputs = batch_inputs(&shape, batch, 0xACE ^ batch as u64);

            let mut batched_recorder = RangeRecorder::new();
            let batched = net.forward_batch_with(&inputs, &mut scratch, &mut batched_recorder);

            let mut serial_recorder = RangeRecorder::new();
            for (b, input) in inputs.iter().enumerate() {
                let serial = net.forward_with(input, &mut serial_recorder);
                assert_eq!(
                    batched[b].data(),
                    serial.data(),
                    "{name} x{batch} row {b} diverged under RangeRecorder"
                );
            }
            // The recorder itself must also observe identical ranges: min/max
            // are order-insensitive, so the layer-major batched sweep and the
            // sample-major serial sweep agree exactly.
            assert_eq!(
                batched_recorder.ranges(),
                serial_recorder.ranges(),
                "{name} x{batch} recorded ranges diverged"
            );
        }
    }
}

fn fault_hook(seed: u64, target: HookTarget, persistence: HookPersistence) -> BufferFaultHook {
    BufferFaultHook::new(target, persistence, 0.02, FaultKind::BitFlip, QFormat::Q4_11, seed)
}

#[test]
fn forward_batch_is_bit_exact_under_per_row_fault_injection_hooks() {
    let mut scratch = Scratch::new();
    for (name, net, shape, batches) in models() {
        for &batch in batches {
            for (target, persistence) in [
                (HookTarget::Input, HookPersistence::Transient),
                (HookTarget::Activations, HookPersistence::Transient),
                (HookTarget::Activations, HookPersistence::Permanent),
            ] {
                let inputs = batch_inputs(&shape, batch, 0xFA17 ^ batch as u64);
                let seed_of = |b: usize| 0x1000 + b as u64;

                let mut per_row = PerRowHooks::new(
                    (0..batch).map(|b| fault_hook(seed_of(b), target, persistence)).collect(),
                );
                let batched = net.forward_batch_with(&inputs, &mut scratch, &mut per_row);

                let mut total_injected = 0usize;
                for (b, input) in inputs.iter().enumerate() {
                    let mut hook = fault_hook(seed_of(b), target, persistence);
                    let serial = net.forward_with(input, &mut hook);
                    total_injected += hook.faults_injected();
                    assert_eq!(
                        batched[b].data(),
                        serial.data(),
                        "{name} x{batch} row {b} diverged under {target:?}/{persistence:?} faults"
                    );
                }
                // The faults must actually have fired for the comparison to
                // mean anything (an empty batch has no rows to corrupt).
                assert!(batch == 0 || total_injected > 0, "{name} x{batch}: no faults injected");
            }
        }
    }
}

#[test]
fn permanent_shared_fault_hook_is_bit_exact_between_batched_and_serial() {
    // A single *shared* hook with permanent persistence caches its fault map
    // per layer on first touch; the batched sweep touches layer L's buffer
    // for row 0 before any other row, which is the same first-touch order a
    // serial loop produces. The two paths must therefore corrupt
    // identically even without per-row hooks.
    let mut rng = SmallRng::seed_from_u64(7);
    let net = mlp(&[32, 24, 8], &mut rng);
    let inputs = batch_inputs(&[32], 7, 0xCAFE);

    let mut scratch = Scratch::new();
    let mut batched_hook = fault_hook(42, HookTarget::Activations, HookPersistence::Permanent);
    let batched = net.forward_batch_with(&inputs, &mut scratch, &mut batched_hook);

    let mut serial_hook = fault_hook(42, HookTarget::Activations, HookPersistence::Permanent);
    for (b, input) in inputs.iter().enumerate() {
        let serial = net.forward_with(input, &mut serial_hook);
        assert_eq!(batched[b].data(), serial.data(), "row {b} diverged under shared hook");
    }
    assert!(batched_hook.faults_injected() > 0);
}

#[test]
fn forward_scratch_matches_forward_for_every_model() {
    let mut scratch = Scratch::new();
    for (name, net, shape, _) in models() {
        let input = batch_inputs(&shape, 1, 0xF00D).pop().expect("one input");
        let via_scratch = net.forward_scratch(&input, &mut scratch, &mut NoHooks).to_vec();
        assert_eq!(via_scratch, net.forward(&input).into_data(), "{name} scratch path diverged");
    }
}

#[test]
fn steady_state_campaign_loop_performs_no_scratch_growth() {
    // The shape of a figure campaign: many episodes, same topology, one
    // scratch. After the first episode the arena must never grow again.
    let mut rng = SmallRng::seed_from_u64(11);
    let net = C3f2Config::scaled().build(&mut rng);
    let shape = C3f2Config::scaled().input_shape();
    let mut scratch = Scratch::new();
    // Two warm-up passes: the slabs swap roles once per parametric layer, so
    // with an odd number of sweeps both slabs reach their high-water mark
    // only on the second pass.
    let inputs = batch_inputs(&shape, 4, 0xE90);
    net.forward_batch_into(&inputs, &mut scratch, &mut NoHooks);
    net.forward_batch_into(&inputs, &mut scratch, &mut NoHooks);
    let warm = scratch.grow_events();
    for episode in 0..25 {
        let inputs = batch_inputs(&shape, 4, episode);
        net.forward_batch_into(&inputs, &mut scratch, &mut NoHooks);
    }
    assert_eq!(scratch.grow_events(), warm, "campaign steady state must not allocate");
}

//! Integration test: the figure-reproduction drivers run end to end at smoke
//! scale and produce well-formed data.

use navft_core::{experiments, FigureContent, Scale};

#[test]
fn figure_index_is_complete_and_ids_are_unique() {
    let ids = experiments::figure_ids();
    let unique: std::collections::HashSet<_> = ids.iter().collect();
    assert_eq!(unique.len(), ids.len());
    assert!(ids.len() >= 12);
}

#[test]
fn fig5_inference_driver_produces_all_four_fault_modes() {
    let figures = experiments::fig5::grid_inference_sensitivity(Scale::Smoke);
    assert_eq!(figures.len(), 2);
    for figure in &figures {
        let FigureContent::Lines(series) = &figure.content else {
            panic!("{} should be a line figure", figure.id);
        };
        assert_eq!(series.len(), 4);
        for s in series {
            assert_eq!(s.points.len(), Scale::Smoke.grid().bit_error_rates.len());
            for (_, y) in &s.points {
                assert!((0.0..=100.0).contains(y), "success rate {y} out of range");
            }
        }
        assert!(!figure.render().is_empty());
    }
}

#[test]
fn fig2_histograms_report_bit_statistics() {
    let figures = experiments::fig2::value_histograms(Scale::Smoke);
    assert_eq!(figures.len(), 2);
    for figure in &figures {
        let FigureContent::Facts(facts) = &figure.content else {
            panic!("expected facts");
        };
        let zero = facts.iter().find(|(n, _)| n.contains("'0' bits")).expect("zero-bit fact").1;
        let one = facts.iter().find(|(n, _)| n.contains("'1' bits")).expect("one-bit fact").1;
        assert!((zero + one - 100.0).abs() < 1e-6);
        assert!(zero > one, "trained policies should be zero-bit dominated");
    }
}

#[test]
fn fig7d_layer_sensitivity_covers_all_five_layers() {
    let figures = experiments::fig7::drone_layer_sensitivity(Scale::Smoke);
    let FigureContent::Lines(series) = &figures[0].content else { panic!("expected lines") };
    let labels: Vec<&str> = series.iter().map(|s| s.label.as_str()).collect();
    assert_eq!(labels, vec!["conv1", "conv2", "conv3", "fc1", "fc2"]);
}

#[test]
fn fig10_reports_headline_facts() {
    let figures = experiments::fig10::anomaly_detection_effectiveness(Scale::Smoke);
    assert!(figures.iter().any(|f| f.id == "fig10a"));
    assert!(figures.iter().any(|f| f.id == "fig10b"));
    let headline = figures.iter().find(|f| f.id == "fig10-headline").expect("headline facts");
    let FigureContent::Facts(facts) = &headline.content else { panic!("expected facts") };
    assert_eq!(facts.len(), 3);
}

//! Backpressure and drain under shard skew: a session mix that lands every
//! request on **one** shard must still respect that shard's bounded queue
//! (reject-and-retry), must leave the other shards' queues usable, and a
//! drain must join all N workers with no lost responses.
//!
//! Shards are independent service domains — skew on one cannot consume
//! another's capacity, and shutdown must flush every shard's pending
//! requests regardless of how unevenly they filled.

use navft_nn::mlp;
use navft_serve::{
    drive_bursty_load, BurstyConfig, LatencyWindow, ServeConfig, ServeError, Server, SessionId,
    Ticket,
};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::time::Duration;

const STATES: usize = 6;

fn policy() -> navft_nn::Network {
    mlp(&[STATES, 16, 4], &mut SmallRng::seed_from_u64(0xBEEF))
}

fn obs(v: f32) -> navft_nn::Tensor {
    navft_nn::Tensor::full(&[STATES], v)
}

/// Opens sessions until `count` of them sit on `shard`, closing the ones
/// that hash elsewhere — the adversarial all-one-shard traffic mix.
fn sessions_on_shard<W>(server: &Server<W>, shard: usize, count: usize) -> Vec<SessionId>
where
    W: navft_rl::EvalElement,
    navft_nn::NoHooks: navft_nn::HooksFor<W>,
{
    let mut pinned = Vec::with_capacity(count);
    let mut opened = 0usize;
    while pinned.len() < count {
        let session = server.open_clean_session();
        if server.session_shard(session) == shard {
            pinned.push(session);
        } else {
            server.close_session(session).expect("close off-target session");
        }
        opened += 1;
        assert!(opened < 10_000, "shard {shard} never filled — hash must cover every shard");
    }
    pinned
}

#[test]
fn skewed_traffic_respects_the_hot_shards_bounded_queue_alone() {
    let config = ServeConfig::default()
        .with_workers(4)
        .with_queue_capacity(2)
        .with_max_batch(64)
        .with_flush_after(Duration::from_secs(5));
    let server = Server::start(policy(), &[STATES], config);

    // Three sessions pinned to shard 0, one on each other shard.
    let hot = sessions_on_shard(&server, 0, 3);
    let cold: Vec<SessionId> =
        (1..4).map(|shard| sessions_on_shard(&server, shard, 1)[0]).collect();

    // The hot shard accepts up to its own queue bound, then rejects with
    // Busy and hands the observation back.
    let t0 = server.submit(hot[0], obs(0.1)).expect("first fits");
    let t1 = server.submit(hot[1], obs(0.2)).expect("second fits");
    let (err, returned) = server.submit(hot[2], obs(0.3)).expect_err("hot shard full");
    assert_eq!(err, ServeError::Busy);
    assert_eq!(returned.data(), obs(0.3).data(), "rejected input is handed back for retry");
    assert_eq!(server.stats().rejected, 1);

    // Skew on shard 0 consumed none of the other shards' capacity: every
    // cold shard still accepts.
    let cold_tickets: Vec<Ticket<f32>> = cold
        .iter()
        .enumerate()
        .map(|(i, &s)| server.submit(s, obs(0.5 + i as f32 * 0.1)).expect("cold shard accepts"))
        .collect();

    // Drain joins all four workers; every accepted request resolves.
    server.shutdown();
    assert!(t0.wait().is_ok());
    assert!(t1.wait().is_ok());
    for ticket in cold_tickets {
        assert!(ticket.wait().is_ok(), "no cold-shard response lost in drain");
    }
}

#[test]
fn drain_flushes_unevenly_filled_shards_with_no_lost_responses() {
    let config = ServeConfig::default()
        .with_workers(4)
        .with_queue_capacity(16)
        .with_max_batch(64)
        .with_flush_after(Duration::from_secs(5));
    let server = Server::start(policy(), &[STATES], config);

    // Heavy skew: 8 pending on shard 2, a single request on shard 0, the
    // other shards idle — all parked behind the 5 s flush deadline.
    let hot = sessions_on_shard(&server, 2, 8);
    let lone = sessions_on_shard(&server, 0, 1)[0];
    let mut tickets: Vec<Ticket<f32>> = hot
        .iter()
        .enumerate()
        .map(|(i, &s)| server.submit(s, obs(i as f32 * 0.05)).expect("hot submit"))
        .collect();
    tickets.push(server.submit(lone, obs(0.9)).expect("lone submit"));
    assert_eq!(server.pending(), 9);

    // Shutdown must flush both non-empty shards and join the two idle
    // workers without hanging.
    server.shutdown();
    for ticket in tickets {
        assert!(ticket.wait().is_ok(), "drain lost a response");
    }
}

#[test]
fn bursty_load_on_one_shard_completes_and_stays_on_that_shard() {
    let config = ServeConfig::default()
        .with_workers(4)
        .with_queue_capacity(4)
        .with_max_batch(4)
        .with_flush_after(Duration::from_micros(100));
    let server = Server::start(policy(), &[STATES], config);
    let shard = 1;
    let sessions = sessions_on_shard(&server, shard, 12);

    // A tight queue (4) under 12 bursty sessions forces Busy rejections;
    // the driver's reject-and-retry must still land every request.
    let bursty = BurstyConfig {
        requests_per_session: 6,
        mean_think: Duration::from_micros(50),
        spike_factor: 8.0,
        seed: 42,
    };
    let mut latency = LatencyWindow::new();
    let outcome = drive_bursty_load(&server, &sessions, STATES, &bursty, &mut latency);
    assert_eq!(outcome.rows, 12 * 6, "every scheduled request served despite backpressure");
    assert_eq!(latency.len(), outcome.rows);

    let per_shard = server.shard_rows();
    for (s, &rows) in per_shard.iter().enumerate() {
        if s == shard {
            assert_eq!(rows, outcome.rows, "all traffic stayed on the pinned shard");
        } else {
            assert_eq!(rows, 0, "shard {s} must have served nothing");
        }
    }
    server.shutdown();
}

//! Integration test: Grid World training across crates (environment + RL +
//! fault injection), at smoke scale.

use navft_fault::{FaultKind, FaultSite, FaultTarget, InjectionSchedule, Injector};
use navft_gridworld::{GridWorld, ObstacleDensity};
use navft_qformat::QFormat;
use navft_rl::{trainer, DiscreteEnvironment, FaultPlan, TabularAgent};
use rand::rngs::SmallRng;
use rand::SeedableRng;

#[test]
fn tabular_training_runs_on_every_density() {
    for density in ObstacleDensity::ALL {
        let mut world = GridWorld::with_density(density).with_exploring_starts(7);
        let mut agent = TabularAgent::for_grid_world(world.num_states(), world.num_actions());
        let mut rng = SmallRng::seed_from_u64(7);
        let trace = trainer::train_tabular(
            &mut world,
            &mut agent,
            trainer::TrainingConfig::new(60, 40),
            &FaultPlan::none(),
            &mut rng,
            trainer::no_mitigation(),
        );
        assert_eq!(trace.len(), 60);
        assert!(trace.epsilons[0] > trace.epsilons[59]);
    }
}

#[test]
fn stuck_at_one_faults_leave_negative_cells_in_the_trained_table() {
    let mut world = GridWorld::with_density(ObstacleDensity::Middle).with_exploring_starts(3);
    let mut agent = TabularAgent::for_grid_world(world.num_states(), world.num_actions());
    let mut rng = SmallRng::seed_from_u64(3);
    let injector = Injector::sample(
        FaultTarget::new(FaultSite::TabularBuffer),
        agent.table.len(),
        QFormat::Q3_4,
        0.01,
        FaultKind::StuckAt1,
        &mut rng,
    );
    let plan = FaultPlan::new(injector.clone(), InjectionSchedule::from_start());
    trainer::train_tabular(
        &mut world,
        &mut agent,
        trainer::TrainingConfig::new(80, 40),
        &plan,
        &mut rng,
        trainer::no_mitigation(),
    );
    // Every word whose sign bit is stuck at 1 must read back negative.
    let sign_bit = QFormat::Q3_4.sign_bit();
    let stuck_sign_words: Vec<usize> =
        injector.map().faults().iter().filter(|f| f.bit == sign_bit).map(|f| f.word).collect();
    for word in stuck_sign_words {
        assert!(agent.table.values()[word] < 0.0, "word {word} should stay negative");
    }
}

#[test]
fn training_with_faults_is_deterministic_per_seed() {
    let run = |seed: u64| {
        let mut world = GridWorld::with_density(ObstacleDensity::Low).with_exploring_starts(seed);
        let mut agent = TabularAgent::for_grid_world(world.num_states(), world.num_actions());
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut fault_rng = SmallRng::seed_from_u64(seed ^ 1);
        let injector = Injector::sample(
            FaultTarget::new(FaultSite::TabularBuffer),
            agent.table.len(),
            QFormat::Q3_4,
            0.005,
            FaultKind::BitFlip,
            &mut fault_rng,
        );
        let plan = FaultPlan::new(injector, InjectionSchedule::at_episode(20));
        trainer::train_tabular(
            &mut world,
            &mut agent,
            trainer::TrainingConfig::new(40, 30),
            &plan,
            &mut rng,
            trainer::no_mitigation(),
        );
        agent.table.values().to_vec()
    };
    assert_eq!(run(11), run(11));
    assert_ne!(run(11), run(12));
}

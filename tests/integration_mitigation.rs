//! Integration test: both mitigation techniques wired into real training and
//! inference flows.

use navft_fault::{FaultKind, FaultSite, FaultTarget, InjectionSchedule, Injector};
use navft_gridworld::{GridWorld, ObstacleDensity};
use navft_mitigation::{ExplorationAdjuster, RangeGuard, RangeGuardConfig};
use navft_nn::mlp;
use navft_qformat::QFormat;
use navft_rl::{trainer, DiscreteEnvironment, FaultPlan, TabularAgent};
use rand::rngs::SmallRng;
use rand::SeedableRng;

#[test]
fn exploration_adjuster_reacts_to_an_injected_fault_during_training() {
    let mut world = GridWorld::with_density(ObstacleDensity::Low).with_exploring_starts(5);
    let mut agent = TabularAgent::for_grid_world(world.num_states(), world.num_actions());
    let mut rng = SmallRng::seed_from_u64(5);
    let injector = Injector::sample(
        FaultTarget::new(FaultSite::TabularBuffer),
        agent.table.len(),
        QFormat::Q3_4,
        0.05,
        FaultKind::StuckAt1,
        &mut rng,
    );
    let plan = FaultPlan::new(injector, InjectionSchedule::from_start());
    let mut adjuster = ExplorationAdjuster::for_tabular();
    trainer::train_tabular(
        &mut world,
        &mut agent,
        trainer::TrainingConfig::new(120, 40),
        &plan,
        &mut rng,
        |episode, trace, epsilon| adjuster.observe(episode, trace, epsilon),
    );
    // The adjuster ran on every episode without panicking and kept a record
    // of any actions it took (it may legitimately take none if the policy
    // never reached a good reward level at this tiny scale).
    assert!(adjuster.events().len() <= 120 / 50 + 2);
}

#[test]
fn range_guard_protects_a_policy_against_weight_outliers_end_to_end() {
    let mut rng = SmallRng::seed_from_u64(9);
    let policy = mlp(&[100, 32, 4], &mut rng);
    let guard = RangeGuard::from_network(&policy, QFormat::Q3_4, RangeGuardConfig::paper());

    // Corrupt the policy with high-magnitude outliers at 0.5% BER.
    let injector = Injector::sample(
        FaultTarget::new(FaultSite::WeightBuffer),
        policy.weight_count(),
        QFormat::Q3_4,
        0.005,
        FaultKind::StuckAt1,
        &mut rng,
    );
    let mut corrupted = policy.clone();
    let flat_before = corrupted.flat_weights();
    let mut flat = flat_before.clone();
    injector.corrupt(&mut flat);
    corrupted.set_flat_weights(&flat);

    let anomalies_before = guard.count_anomalies(&corrupted);
    let scrubbed = guard.scrub(&mut corrupted);
    assert_eq!(anomalies_before, scrubbed);
    assert_eq!(guard.count_anomalies(&corrupted), 0);

    // The scrubbed policy must be closer to the clean one than the corrupted
    // policy was.
    let distance =
        |a: &[f32], b: &[f32]| -> f32 { a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum() };
    let clean_flat = policy.flat_weights();
    assert!(distance(&corrupted.flat_weights(), &clean_flat) <= distance(&flat, &clean_flat));
}

#[test]
fn guard_never_flags_the_clean_policy_it_was_calibrated_on() {
    let mut rng = SmallRng::seed_from_u64(10);
    for margin in [0.0, 0.1, 0.5] {
        let policy = mlp(&[20, 16, 4], &mut rng);
        let guard = RangeGuard::from_network(
            &policy,
            QFormat::Q4_11,
            RangeGuardConfig { margin, integer_bits_only: true },
        );
        assert_eq!(guard.count_anomalies(&policy), 0, "margin {margin}");
    }
}

//! Integration test: the native fixed-point backend is equivalent to the
//! `f32` simulation of the fixed-point datapath.
//!
//! For every model in `nn::models` (the Grid World MLP and the paper's C3F2
//! drone policy, full-size and scaled) and the formats of the data-type
//! sweep (Q(1,3,4), Q(1,4,11), Q(1,2,13)):
//!
//! * **per-layer agreement** — every activation buffer of a native pass stays
//!   within one LSB of the `f32` reference (parameters snapped to the grid,
//!   activations requantized per layer) for in-range inputs;
//! * **bit determinism** — repeated native passes produce identical raw
//!   words, and the batched native engine equals the serial one bit for bit;
//! * **live-word fault injection** — corrupting the quantized policy flips
//!   bits of the stored words in place (single integer ops, no dequantize
//!   round trip) and agrees with the `f32` backend's corruption of the same
//!   fault pattern.
//!
//! The `i8` per-tensor affine backend gets the same treatment with the
//! contracts its saturating requantization supports: bit determinism,
//! batched == serial, in-place byte corruption and an exact
//! dequantize → requantize round trip.

use navft_fault::{FaultKind, FaultSite, FaultTarget, Injector};
use navft_nn::{
    mlp, C3f2Config, ForwardHooks, I8Network, I8Scratch, I8Tensor, LayerKind, Network,
    QForwardHooks, QNetwork, QScratch, QTensor, Tensor,
};
use navft_qformat::QFormat;
use navft_rl::{
    corrupt_network_weights, corrupt_policy_weights, corrupt_qnetwork_weights, InferenceFaultMode,
};
use rand::rngs::SmallRng;
use rand::SeedableRng;

const FORMATS: [QFormat; 3] = [QFormat::Q3_4, QFormat::Q4_11, QFormat::Q2_13];

/// Every model topology the crate ships, with an in-range input.
fn models(seed: u64) -> Vec<(&'static str, Network, Tensor)> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let grid = mlp(&[100, 32, 4], &mut rng);
    let grid_input = Tensor::uniform(&[100], 1.0, &mut rng);
    let scaled_config = C3f2Config::scaled();
    let scaled = scaled_config.build(&mut rng);
    let scaled_input = Tensor::uniform(&scaled_config.input_shape(), 1.0, &mut rng);
    let paper_config = C3f2Config::paper();
    let paper = paper_config.build(&mut rng);
    let paper_input = Tensor::uniform(&paper_config.input_shape(), 1.0, &mut rng);
    vec![
        ("grid-mlp", grid, grid_input),
        ("c3f2-scaled", scaled, scaled_input),
        ("c3f2-paper", paper, paper_input),
    ]
}

#[derive(Default)]
struct CaptureF32 {
    layers: Vec<Vec<f32>>,
}

impl ForwardHooks for CaptureF32 {
    fn on_activation(&mut self, _i: usize, _k: LayerKind, values: &mut [f32]) {
        self.layers.push(values.to_vec());
    }
}

#[derive(Default)]
struct CaptureRaw {
    layers: Vec<Vec<i32>>,
}

impl QForwardHooks for CaptureRaw {
    fn on_activation(&mut self, _i: usize, _k: LayerKind, words: &mut [i32]) {
        self.layers.push(words.to_vec());
    }
}

#[test]
fn every_model_runs_natively_within_one_lsb_per_layer() {
    for (name, network, input) in models(0x0E0) {
        for format in FORMATS {
            let qnet = QNetwork::quantize(&network, format);
            // The f32 reference: the same parameters snapped to the grid,
            // activations requantized after every layer.
            let reference = qnet.dequantize();
            let qinput = QTensor::quantize(&input, format);

            let mut f32_capture = CaptureF32::default();
            let _ = reference.forward_with(&qinput.dequantize(), &mut f32_capture);
            let mut raw_capture = CaptureRaw::default();
            let _ = qnet.forward_with(&qinput, &mut raw_capture);

            assert_eq!(f32_capture.layers.len(), raw_capture.layers.len());
            let lsb = format.resolution();
            for (layer, (f, r)) in
                f32_capture.layers.iter().zip(raw_capture.layers.iter()).enumerate()
            {
                assert_eq!(f.len(), r.len(), "{name}/{format} layer {layer} length");
                for (i, (fv, rw)) in f.iter().zip(r.iter()).enumerate() {
                    let native = *rw as f32 * lsb;
                    assert!(
                        (fv - native).abs() <= lsb,
                        "{name}/{format} layer {layer} element {i}: \
                         f32 reference {fv} vs native {native} diverge past one LSB ({lsb})"
                    );
                }
            }
        }
    }
}

#[test]
fn native_passes_are_bit_deterministic_across_runs() {
    for (name, network, input) in models(0x0E1) {
        for format in FORMATS {
            let qnet = QNetwork::quantize(&network, format);
            let qinput = QTensor::quantize(&input, format);
            let first = qnet.forward(&qinput);
            let second = qnet.forward(&qinput);
            assert_eq!(first.words(), second.words(), "{name}/{format} is not deterministic");
        }
    }
}

#[test]
fn batched_native_engine_is_bit_identical_to_serial() {
    // The paper-size C3F2 is exercised by the per-layer test above; batching
    // here sticks to the fast topologies so the suite stays quick.
    for (name, network, input) in models(0x0E2).into_iter().take(2) {
        for format in FORMATS {
            let qnet = QNetwork::quantize(&network, format);
            let mut rng = SmallRng::seed_from_u64(0xBA7C);
            for batch in [0usize, 1, 2, 7] {
                let inputs: Vec<QTensor> = (0..batch)
                    .map(|_| {
                        QTensor::quantize(&Tensor::uniform(input.shape(), 1.0, &mut rng), format)
                    })
                    .collect();
                let mut scratch = QScratch::new();
                let batched = qnet.forward_batch(&inputs, &mut scratch);
                assert_eq!(batched.len(), batch, "{name}/{format} batch {batch} row count");
                for (b, (qin, out)) in inputs.iter().zip(batched.iter()).enumerate() {
                    assert_eq!(
                        out.words(),
                        qnet.forward(qin).words(),
                        "{name}/{format} batch {batch} row {b} diverged"
                    );
                }
            }
        }
    }
}

#[test]
fn empty_native_flushes_are_no_ops_that_leave_the_scratches_reusable() {
    // The quantized analogue of the f32 suite's empty-flush contract: zero
    // rows in, zero rows out, and the same scratch then serves a real batch
    // bit-exactly on both native backends.
    let (_, network, input) = models(0x0E5).swap_remove(0);
    let mut rng = SmallRng::seed_from_u64(0xBA7E);
    let inputs: Vec<Tensor> =
        (0..3).map(|_| Tensor::uniform(input.shape(), 1.0, &mut rng)).collect();

    let qnet = QNetwork::quantize(&network, QFormat::Q4_11);
    let qinputs: Vec<QTensor> =
        inputs.iter().map(|t| QTensor::quantize(t, QFormat::Q4_11)).collect();
    let mut qscratch = QScratch::new();
    let expected = qnet.forward_batch(&qinputs, &mut qscratch);
    assert!(qnet.forward_batch(&[], &mut qscratch).is_empty(), "empty native flush");
    let after = qnet.forward_batch(&qinputs, &mut qscratch);
    for (b, (fresh, again)) in expected.iter().zip(after.iter()).enumerate() {
        assert_eq!(fresh.words(), again.words(), "native row {b} changed after an empty flush");
    }

    let inet = I8Network::quantize(&network);
    let iinputs: Vec<I8Tensor> =
        inputs.iter().map(|t| I8Tensor::quantize(t, inet.affine())).collect();
    let mut iscratch = I8Scratch::new();
    let expected = inet.forward_batch(&iinputs, &mut iscratch);
    assert!(inet.forward_batch(&[], &mut iscratch).is_empty(), "empty i8 flush");
    let after = inet.forward_batch(&iinputs, &mut iscratch);
    for (b, (fresh, again)) in expected.iter().zip(after.iter()).enumerate() {
        assert_eq!(fresh.words(), again.words(), "i8 row {b} changed after an empty flush");
    }
}

#[test]
fn i8_native_passes_are_bit_deterministic_and_batched_equals_serial() {
    for (name, network, input) in models(0x0E4).into_iter().take(2) {
        let inet = I8Network::quantize(&network);
        let iinput = I8Tensor::quantize(&input, inet.affine());
        let first = inet.forward(&iinput);
        assert_eq!(first.words(), inet.forward(&iinput).words(), "{name}/i8 is not deterministic");
        let mut rng = SmallRng::seed_from_u64(0xBA7D);
        for batch in [0usize, 1, 2, 7] {
            let inputs: Vec<I8Tensor> = (0..batch)
                .map(|_| {
                    I8Tensor::quantize(
                        &Tensor::uniform(input.shape(), 1.0, &mut rng),
                        inet.affine(),
                    )
                })
                .collect();
            let mut scratch = I8Scratch::new();
            let batched = inet.forward_batch(&inputs, &mut scratch);
            assert_eq!(batched.len(), batch, "{name}/i8 batch {batch} row count");
            for (b, (iin, out)) in inputs.iter().zip(batched.iter()).enumerate() {
                assert_eq!(
                    out.words(),
                    inet.forward(iin).words(),
                    "{name}/i8 batch {batch} row {b} diverged"
                );
            }
        }
    }
}

#[test]
fn i8_fault_injection_flips_live_bytes_in_place() {
    let (_, network, input) = models(0x0E5).swap_remove(0);
    let inet = I8Network::quantize(&network);
    // 8 stored bits per affine byte: sample the fault map over that layout.
    let byte_format = QFormat::Q3_4;
    let mut rng = SmallRng::seed_from_u64(0x18);
    let injector = Injector::sample(
        FaultTarget::new(FaultSite::WeightBuffer),
        inet.weight_count(),
        byte_format,
        0.005,
        FaultKind::BitFlip,
        &mut rng,
    );
    assert!(injector.fault_count() > 0);
    let mode = InferenceFaultMode::TransientWholeEpisode(injector.clone());

    // Native corruption: each fault is one byte operation on live storage —
    // the before/after buffers differ exactly at the XORed bits.
    let corrupted = corrupt_policy_weights(&inet, &mode);
    let mut expected_flat: Vec<i8> = Vec::new();
    for layer in inet.parametric_layers() {
        expected_flat.extend_from_slice(inet.layer_weights_raw(layer).expect("bytes"));
    }
    for fault in injector.map().faults() {
        let byte = &mut expected_flat[fault.word];
        *byte = (*byte as u8 ^ (1u8 << fault.bit)) as i8;
    }
    let mut corrupted_flat: Vec<i8> = Vec::new();
    for layer in corrupted.parametric_layers() {
        corrupted_flat.extend_from_slice(corrupted.layer_weights_raw(layer).expect("bytes"));
    }
    assert_eq!(corrupted_flat, expected_flat, "i8: live bytes must flip in place");

    // The corrupted policy still runs end to end on stored bytes.
    let iinput = I8Tensor::quantize(&input, inet.affine());
    let out = corrupted.forward(&iinput);
    assert_eq!(out.words().len(), inet.forward(&iinput).words().len());
}

#[test]
fn i8_dequantize_round_trips_onto_the_affine_grid() {
    let (_, network, _) = models(0x0E6).swap_remove(0);
    let inet = I8Network::quantize(&network);
    let recovered = inet.dequantize();
    let requantized = I8Network::quantize_with(&recovered, inet.affine());
    for layer in inet.parametric_layers() {
        assert_eq!(
            inet.layer_weights_raw(layer).expect("bytes"),
            requantized.layer_weights_raw(layer).expect("bytes"),
            "dequantize → requantize must be the identity on stored bytes"
        );
    }
}

#[test]
fn fault_injection_corrupts_live_words_and_agrees_with_the_f32_backend() {
    let (_, network, input) = models(0x0E3).swap_remove(0);
    for format in FORMATS {
        let qnet = QNetwork::quantize(&network, format);
        let mut rng = SmallRng::seed_from_u64(u64::from(format.frac_bits()));
        let injector = Injector::sample(
            FaultTarget::new(FaultSite::WeightBuffer),
            qnet.weight_count(),
            format,
            0.005,
            FaultKind::BitFlip,
            &mut rng,
        );
        assert!(injector.fault_count() > 0);
        let mode = InferenceFaultMode::TransientWholeEpisode(injector.clone());

        // Native corruption: each fault is one integer operation on a live
        // word — the before/after buffers differ exactly at the XORed bits.
        let corrupted_q = corrupt_qnetwork_weights(&qnet, &mode);
        let word_width = u32::from(format.total_bits());
        let mut expected_flat: Vec<i32> = Vec::new();
        for layer in qnet.parametric_layers() {
            expected_flat.extend_from_slice(qnet.layer_weights_raw(layer).expect("words"));
        }
        for fault in injector.map().faults() {
            let word = &mut expected_flat[fault.word];
            *word ^= 1 << fault.bit;
            *word = (*word << (32 - word_width)) >> (32 - word_width);
        }
        let mut corrupted_flat: Vec<i32> = Vec::new();
        for layer in corrupted_q.parametric_layers() {
            corrupted_flat.extend_from_slice(corrupted_q.layer_weights_raw(layer).expect("words"));
        }
        assert_eq!(corrupted_flat, expected_flat, "{format}: live words must flip in place");

        // The same fault pattern through the f32 backend lands on the same
        // grid points, so the corrupted networks agree within one LSB too.
        let corrupted_f32 = corrupt_network_weights(&qnet.dequantize(), &mode);
        let qinput = QTensor::quantize(&input, format);
        let native = corrupted_q.forward(&qinput).dequantize();
        let simulated = corrupted_f32.forward(&qinput.dequantize());
        let lsb = format.resolution();
        for (n, s) in native.data().iter().zip(simulated.data().iter()) {
            assert!(
                (n - s).abs() <= lsb,
                "{format}: corrupted outputs diverge past one LSB ({n} vs {s})"
            );
        }
    }
}

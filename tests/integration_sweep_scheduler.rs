//! Integration test: the campaign orchestrator's determinism and resume
//! contracts.
//!
//! * The same run at 1, 2 and 8 threads yields byte-identical per-figure
//!   JSONL artifacts (seeds derive from cell fingerprints, writeback is
//!   repetition-ordered).
//! * A kill-then-`--resume` round-trip (simulated by truncating the journal)
//!   reproduces the uninterrupted run's artifacts exactly, without
//!   re-running finished cells.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use navft_core::sweep::{run_sweeps, CellSpec, RunOptions, Sweep};
use navft_core::{experiments, FigureData, Scale, Series};
use navft_nn::EngineConfig;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("navft-sweep-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// A cheap, pure-math pair of sweeps with mixed repetition counts and a
/// trial-invocation counter, so scheduling and resume behaviour are
/// observable without training anything.
fn synthetic_sweeps(trials: &Arc<AtomicUsize>) -> Vec<Sweep> {
    let mut sweeps = Vec::new();
    for (sweep_index, sweep_id) in ["alpha", "beta"].into_iter().enumerate() {
        let mut sweep = Sweep::new(sweep_id, Scale::Smoke);
        for cell in 0..6 {
            let reps = 1 + (cell + sweep_index) % 4;
            let spec = CellSpec::new(format!("cell{cell}"), reps)
                .with_seed(cell as u64)
                .with_label("cell", cell.to_string());
            let trials = Arc::clone(trials);
            sweep.cell_metrics(spec, move |seed, rep, _cfg| {
                trials.fetch_add(1, Ordering::SeqCst);
                // Two metrics with plenty of non-trivial float structure.
                vec![(seed % 10_000) as f64 / 3.0, (seed >> 32) as f64 + rep as f64 * 0.1]
            });
        }
        sweep.fold(move |results| {
            let points = (0..6).map(|c| (c as f64, results.mean(&format!("cell{c}")))).collect();
            vec![FigureData::lines(
                sweep_id,
                sweep_id,
                "m0 vs cell",
                vec![Series::new("m0", points)],
            )]
        });
        sweeps.push(sweep);
    }
    sweeps
}

fn read_figure_artifacts(dir: &std::path::Path) -> Vec<(String, String)> {
    let mut files: Vec<(String, String)> = std::fs::read_dir(dir)
        .expect("artifact dir")
        .filter_map(|e| e.ok())
        .filter(|e| {
            let name = e.file_name().to_string_lossy().into_owned();
            name.ends_with(".jsonl") && name != "journal.jsonl"
        })
        .map(|e| {
            (
                e.file_name().to_string_lossy().into_owned(),
                std::fs::read_to_string(e.path()).expect("read artifact"),
            )
        })
        .collect();
    files.sort();
    files
}

fn run_synthetic(dir: &std::path::Path, threads: usize, resume: bool) -> (usize, usize) {
    let trials = Arc::new(AtomicUsize::new(0));
    let options = RunOptions {
        threads,
        engine: EngineConfig::default(),
        out_dir: Some(dir.to_path_buf()),
        resume,
        progress: false,
    };
    let report = run_sweeps(synthetic_sweeps(&trials), &options).expect("run succeeds");
    (report.executed_cells, report.resumed_cells)
}

#[test]
fn artifacts_are_byte_identical_across_thread_counts() {
    let baseline_dir = temp_dir("threads-1");
    run_synthetic(&baseline_dir, 1, false);
    let baseline = read_figure_artifacts(&baseline_dir);
    let baseline_journal =
        std::fs::read_to_string(baseline_dir.join("journal.jsonl")).expect("journal");
    assert_eq!(baseline.len(), 2);
    for threads in [2, 8] {
        let dir = temp_dir(&format!("threads-{threads}"));
        run_synthetic(&dir, threads, false);
        assert_eq!(read_figure_artifacts(&dir), baseline, "threads = {threads}");
        // The journal buffers completions and appends in cell-declaration
        // order, so even its line order is thread-count invariant.
        assert_eq!(
            std::fs::read_to_string(dir.join("journal.jsonl")).expect("journal"),
            baseline_journal,
            "journal bytes at threads = {threads}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
    std::fs::remove_dir_all(&baseline_dir).unwrap();
}

#[test]
fn real_figure_artifacts_are_thread_count_invariant() {
    // One real (trained) figure too: fig5 at smoke scale.
    let mut dirs = Vec::new();
    for threads in [1, 4] {
        let dir = temp_dir(&format!("fig5-{threads}"));
        let sweeps = vec![experiments::fig5::sweep(Scale::Smoke)];
        let options = RunOptions {
            threads,
            engine: EngineConfig::default(),
            out_dir: Some(dir.clone()),
            resume: false,
            progress: false,
        };
        let report = run_sweeps(sweeps, &options).expect("fig5 runs");
        assert_eq!(report.resumed_cells, 0);
        assert_eq!(report.executed_cells, report.total_cells);
        dirs.push(dir);
    }
    assert_eq!(
        std::fs::read_to_string(dirs[0].join("fig5.jsonl")).unwrap(),
        std::fs::read_to_string(dirs[1].join("fig5.jsonl")).unwrap(),
        "fig5 artifacts must not depend on the thread count"
    );
    for dir in dirs {
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn resume_after_a_complete_run_recomputes_nothing() {
    let dir = temp_dir("resume-noop");
    let (executed, resumed) = run_synthetic(&dir, 2, false);
    assert!(executed > 0 && resumed == 0);
    let trials = Arc::new(AtomicUsize::new(0));
    let options = RunOptions {
        threads: 2,
        engine: EngineConfig::default(),
        out_dir: Some(dir.clone()),
        resume: true,
        progress: false,
    };
    let report = run_sweeps(synthetic_sweeps(&trials), &options).expect("resume succeeds");
    assert_eq!(report.executed_cells, 0);
    assert_eq!(report.resumed_cells, report.total_cells);
    assert_eq!(trials.load(Ordering::SeqCst), 0, "no trial may re-run on a clean resume");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn kill_then_resume_reproduces_the_uninterrupted_artifacts() {
    // Uninterrupted reference run.
    let full_dir = temp_dir("kill-full");
    run_synthetic(&full_dir, 2, false);
    let reference = read_figure_artifacts(&full_dir);
    let journal = std::fs::read_to_string(full_dir.join("journal.jsonl")).unwrap();
    let lines: Vec<&str> = journal.lines().collect();
    let total = lines.len();
    assert!(total >= 8, "synthetic run should have many cells");

    // Simulate a kill mid-run: keep the first 5 records plus a torn line
    // (the append was interrupted halfway through a record).
    let kept = 5usize;
    let killed_dir = temp_dir("kill-resume");
    let mut truncated: String = lines[..kept].iter().map(|l| format!("{l}\n")).collect();
    truncated.push_str(&lines[kept][..lines[kept].len() / 2]);
    std::fs::write(killed_dir.join("journal.jsonl"), truncated).unwrap();

    let (executed, resumed) = run_synthetic(&killed_dir, 4, true);
    assert_eq!(resumed, kept, "exactly the journaled cells are skipped");
    assert_eq!(executed, total - kept, "only unfinished cells re-run");
    assert_eq!(
        read_figure_artifacts(&killed_dir),
        reference,
        "resumed artifacts must match the uninterrupted run byte-for-byte"
    );
    // The resume rewrote the journal cleanly: the torn tail is gone, every
    // line parses, and a second resume recomputes nothing.
    assert!(
        navft_core::sweep::artifact::validate_dir(&killed_dir).is_ok(),
        "post-resume artifacts must validate"
    );
    let journal = std::fs::read_to_string(killed_dir.join("journal.jsonl")).unwrap();
    assert_eq!(journal.lines().count(), total, "one clean record per cell");
    let (executed, resumed) = run_synthetic(&killed_dir, 2, true);
    assert_eq!((executed, resumed), (0, total));
    std::fs::remove_dir_all(&full_dir).unwrap();
    std::fs::remove_dir_all(&killed_dir).unwrap();
}

#[test]
fn in_memory_collect_matches_artifact_run_figures() {
    let trials = Arc::new(AtomicUsize::new(0));
    let dir = temp_dir("collect-vs-run");
    let options = RunOptions {
        threads: 3,
        engine: EngineConfig::default(),
        out_dir: Some(dir.clone()),
        resume: false,
        progress: false,
    };
    let with_artifacts = run_sweeps(synthetic_sweeps(&trials), &options).expect("run");
    let in_memory: Vec<Vec<FigureData>> =
        synthetic_sweeps(&trials).into_iter().map(|s| s.collect(1)).collect();
    for ((_, a), b) in with_artifacts.figures.iter().zip(&in_memory) {
        assert_eq!(a, b, "artifact-backed and in-memory runs must agree");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

//! Episode clients: load generators that drive many concurrent sessions
//! through a [`Server`].
//!
//! Two traffic shapes:
//!
//! * The **episode drivers** ([`drive_discrete_episodes`],
//!   [`drive_vision_episodes`]) step their sessions in lockstep rounds —
//!   submit every live session's observation (retrying with a scheduler
//!   yield on [`ServeError::Busy`] backpressure), then wait for every
//!   decision. The returned per-session action traces are what the
//!   determinism suite compares bit-for-bit against the library-only path.
//! * The **bursty open-loop driver** ([`drive_bursty_load`]) schedules each
//!   session's arrivals independently from a seeded per-session RNG
//!   (exponential think times with ramp and spike phases), submits
//!   non-blockingly as arrivals come due, and measures every latency from
//!   the request's *scheduled* arrival — so queueing delay a saturated
//!   server inflicts is charged to the latency distribution instead of
//!   silently stretching the schedule (no coordinated omission).

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::{Duration, Instant};

use navft_rl::{DiscreteEnvironment, EvalElement, VisionEnvironment};
use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

use crate::{LatencyWindow, ServeError, Server, SessionId, Ticket};

/// What a load-generation run produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadOutcome {
    /// Per-session greedy action traces, in session order.
    pub traces: Vec<Vec<usize>>,
    /// Total requests served (batch rows).
    pub rows: usize,
    /// Submissions that hit [`ServeError::Busy`] backpressure and retried.
    pub retries: usize,
    /// Wall-clock span of the run.
    pub elapsed: Duration,
}

/// Drives one greedy episode per session on a discrete environment (one-hot
/// observations), recording per-request latency into `latency`.
///
/// `sessions[i]` plays `envs[i]`; an episode ends at its first terminal
/// transition or after `max_steps` steps.
///
/// # Panics
///
/// Panics if `sessions` and `envs` differ in length, or on any submit error
/// other than [`ServeError::Busy`] (a mis-built harness, not load).
pub fn drive_discrete_episodes<W, E>(
    server: &Server<W>,
    sessions: &[SessionId],
    envs: &mut [E],
    max_steps: usize,
    latency: &mut LatencyWindow,
) -> LoadOutcome
where
    W: EvalElement,
    E: DiscreteEnvironment,
{
    assert_eq!(sessions.len(), envs.len(), "one environment per session");
    let n = sessions.len();
    let mut states: Vec<usize> = envs.iter_mut().map(|env| env.reset()).collect();
    let mut alive = vec![true; n];
    let mut traces = vec![Vec::new(); n];
    if envs.is_empty() {
        return LoadOutcome { traces, rows: 0, retries: 0, elapsed: Duration::ZERO };
    }

    let mut rows = 0usize;
    let mut retries = 0usize;
    let started = Instant::now();
    for _ in 0..max_steps {
        let mut round: Vec<(usize, Ticket<W>, Instant)> = Vec::new();
        for i in 0..n {
            if !alive[i] {
                continue;
            }
            let (ticket, submitted) =
                submit_one_hot_with_backoff(server, sessions[i], states[i], &mut retries);
            round.push((i, ticket, submitted));
        }
        if round.is_empty() {
            break;
        }
        for (i, ticket, submitted) in round {
            let decision = ticket.wait().expect("served decision");
            latency.record(submitted.elapsed());
            rows += 1;
            traces[i].push(decision.action);
            let transition = envs[i].step(decision.action);
            states[i] = transition.next_state;
            if transition.terminal {
                alive[i] = false;
            }
        }
    }
    LoadOutcome { traces, rows, retries, elapsed: started.elapsed() }
}

/// [`drive_discrete_episodes`] for vision environments (the drone task):
/// each step hands the environment's `f32` observation to the server's
/// quantize-on-ingest entry point, which encodes it into the backend's
/// storage representation exactly once at enqueue — no per-step clone.
///
/// # Panics
///
/// Panics if `sessions` and `envs` differ in length, or on any submit error
/// other than [`ServeError::Busy`].
pub fn drive_vision_episodes<W, E>(
    server: &Server<W>,
    sessions: &[SessionId],
    envs: &mut [E],
    max_steps: usize,
    latency: &mut LatencyWindow,
) -> LoadOutcome
where
    W: EvalElement,
    E: VisionEnvironment,
{
    assert_eq!(sessions.len(), envs.len(), "one environment per session");
    let n = sessions.len();
    let mut observations: Vec<navft_nn::Tensor> = envs.iter_mut().map(|env| env.reset()).collect();
    let mut alive = vec![true; n];
    let mut traces = vec![Vec::new(); n];
    if envs.is_empty() {
        return LoadOutcome { traces, rows: 0, retries: 0, elapsed: Duration::ZERO };
    }

    let mut rows = 0usize;
    let mut retries = 0usize;
    let started = Instant::now();
    for _ in 0..max_steps {
        let mut round: Vec<(usize, Ticket<W>, Instant)> = Vec::new();
        for i in 0..n {
            if !alive[i] {
                continue;
            }
            let (ticket, submitted) =
                submit_obs_with_backoff(server, sessions[i], &observations[i], &mut retries);
            round.push((i, ticket, submitted));
        }
        if round.is_empty() {
            break;
        }
        for (i, ticket, submitted) in round {
            let decision = ticket.wait().expect("served decision");
            latency.record(submitted.elapsed());
            rows += 1;
            traces[i].push(decision.action);
            let transition = envs[i].step(decision.action);
            observations[i] = transition.observation;
            if transition.terminal {
                alive[i] = false;
            }
        }
    }
    LoadOutcome { traces, rows, retries, elapsed: started.elapsed() }
}

/// Traffic shape of the bursty open-loop driver ([`drive_bursty_load`]).
///
/// Each session runs `requests_per_session` requests whose inter-arrival
/// gaps are exponential draws around [`BurstyConfig::mean_think`], scaled by
/// the request's phase: the first quarter of a session's requests arrive at
/// a gentle 2× think (ramp), the middle half at 1× (steady state), and the
/// final quarter at `1 / spike_factor` (spike) — so every run ends in a
/// burst that stresses the tail.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstyConfig {
    /// Requests each session issues over the run.
    pub requests_per_session: usize,
    /// Mean inter-arrival gap per session in the steady phase.
    pub mean_think: Duration,
    /// How much denser arrivals become in the spike phase (clamped to ≥ 1).
    pub spike_factor: f64,
    /// Seed of the per-session arrival/state RNGs; one seed reproduces the
    /// whole arrival schedule.
    pub seed: u64,
}

impl Default for BurstyConfig {
    /// Four requests per session, 200 µs mean think, a 4× spike.
    fn default() -> Self {
        BurstyConfig {
            requests_per_session: 4,
            mean_think: Duration::from_micros(200),
            spike_factor: 4.0,
            seed: 0xB0B5,
        }
    }
}

/// Per-session run state of the bursty driver.
struct BurstySession<W: navft_nn::Element> {
    rng: SmallRng,
    /// Requests already resolved.
    done: usize,
    /// The in-flight request's scheduled arrival — the latency anchor.
    anchor: Instant,
    ticket: Option<Ticket<W>>,
}

/// An exponential inter-arrival draw around `mean × mult`, capped at 8× so
/// one unlucky draw cannot idle a session for the whole run.
fn exp_gap(rng: &mut SmallRng, mean: Duration, mult: f64) -> Duration {
    // 53 uniform bits in [0, 1); `1 - u` keeps ln away from zero.
    let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
    let sample = (-(1.0 - unit).ln()).min(8.0);
    mean.mul_f64((mult * sample).max(1e-9))
}

/// The arrival-density multiplier of a session's `done`-th request: ramp,
/// steady, then spike, by request-index fraction.
fn phase_multiplier(done: usize, total: usize, spike_factor: f64) -> f64 {
    let frac = done as f64 / total.max(1) as f64;
    if frac < 0.25 {
        2.0
    } else if frac < 0.75 {
        1.0
    } else {
        1.0 / spike_factor.max(1.0)
    }
}

/// Drives bursty, non-lockstep open-loop load: every session issues
/// [`BurstyConfig::requests_per_session`] one-hot requests (states drawn
/// from `0..states` by the session's seeded RNG) on its own jittered
/// arrival schedule, and each latency is measured from the request's
/// *scheduled* arrival to its decision.
///
/// Arrivals that come due while the session's previous request is still in
/// flight, or that hit [`ServeError::Busy`] backpressure, keep their
/// original schedule anchor — the extra wait is charged to that request's
/// latency. The driver never blocks on a single ticket (tickets resolve via
/// [`Ticket::poll`]), so one slow shard cannot stall arrivals bound for the
/// others. The returned outcome's `traces` are empty: this driver measures
/// load behaviour, the lockstep episode drivers pin determinism.
///
/// # Panics
///
/// Panics if `states` is zero or on any submit error other than
/// [`ServeError::Busy`].
pub fn drive_bursty_load<W: EvalElement>(
    server: &Server<W>,
    sessions: &[SessionId],
    states: usize,
    config: &BurstyConfig,
    latency: &mut LatencyWindow,
) -> LoadOutcome {
    assert!(states > 0, "need at least one observable state");
    let total = config.requests_per_session;
    if sessions.is_empty() || total == 0 {
        return LoadOutcome { traces: Vec::new(), rows: 0, retries: 0, elapsed: Duration::ZERO };
    }

    let started = Instant::now();
    let mut runs: Vec<BurstySession<W>> = Vec::with_capacity(sessions.len());
    // Arrival events: (fire-at, session index). The session's `anchor` holds
    // the scheduled arrival the latency is measured from, which never moves
    // on Busy retries.
    let mut arrivals: BinaryHeap<Reverse<(Instant, usize)>> = BinaryHeap::new();
    for i in 0..sessions.len() {
        let mut rng =
            SmallRng::seed_from_u64(config.seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let first = started + exp_gap(&mut rng, config.mean_think, 2.0);
        runs.push(BurstySession { rng, done: 0, anchor: first, ticket: None });
        arrivals.push(Reverse((first, i)));
    }
    // Busy backoff: short enough to retry within a flush window, long
    // enough not to hammer the queue lock.
    let backoff = (config.mean_think / 8).max(Duration::from_micros(10));

    let mut in_flight: Vec<usize> = Vec::with_capacity(sessions.len());
    let mut rows = 0usize;
    let mut retries = 0usize;
    let mut remaining_sessions = sessions.len();
    while remaining_sessions > 0 {
        let now = Instant::now();
        // Fire every arrival that has come due.
        while let Some(&Reverse((at, i))) = arrivals.peek() {
            if at > now {
                break;
            }
            arrivals.pop();
            let run = &mut runs[i];
            if run.ticket.is_some() {
                // Previous request still in flight (one per session): the
                // arrival re-fires right after it resolves, anchor intact.
                arrivals.push(Reverse((now + backoff, i)));
                continue;
            }
            let state = (run.rng.next_u64() % states as u64) as usize;
            match server.submit_one_hot(sessions[i], state) {
                Ok(ticket) => {
                    run.ticket = Some(ticket);
                    in_flight.push(i);
                }
                Err(ServeError::Busy) => {
                    retries += 1;
                    arrivals.push(Reverse((now + backoff, i)));
                }
                Err(error) => panic!("bursty load generator submit failed: {error}"),
            }
        }

        // Poll every in-flight ticket; resolved requests schedule the
        // session's next arrival from the *previous* scheduled arrival
        // (open loop).
        let mut progressed = false;
        in_flight.retain(|&i| {
            let run = &mut runs[i];
            let resolved = match run.ticket.as_ref().expect("in-flight ticket").poll() {
                None => return true,
                Some(result) => result,
            };
            resolved.expect("served decision");
            run.ticket = None;
            progressed = true;
            latency.record(run.anchor.elapsed());
            rows += 1;
            run.done += 1;
            if run.done < total {
                let mult = phase_multiplier(run.done, total, config.spike_factor);
                let next = run.anchor + exp_gap(&mut run.rng, config.mean_think, mult);
                run.anchor = next;
                arrivals.push(Reverse((next.max(Instant::now()), i)));
            } else {
                remaining_sessions -= 1;
            }
            false
        });

        if !progressed {
            // Nothing resolved this pass: sleep to the next arrival (capped
            // so ticket polls stay frequent) instead of spinning.
            let until_next = arrivals
                .peek()
                .map(|&Reverse((at, _))| at.saturating_duration_since(Instant::now()))
                .unwrap_or(Duration::from_micros(50));
            if until_next > Duration::ZERO && in_flight.is_empty() {
                std::thread::sleep(until_next.min(Duration::from_micros(200)));
            } else {
                std::thread::yield_now();
            }
        }
    }
    LoadOutcome { traces: Vec::new(), rows, retries, elapsed: started.elapsed() }
}

/// Submits a one-hot state, yielding and retrying while the queue pushes
/// back. Returns the ticket and the instant of the *first* attempt, so
/// recorded latencies include the backpressure wait the request actually
/// experienced.
fn submit_one_hot_with_backoff<W: EvalElement>(
    server: &Server<W>,
    session: SessionId,
    state: usize,
    retries: &mut usize,
) -> (Ticket<W>, Instant) {
    let started = Instant::now();
    loop {
        match server.submit_one_hot(session, state) {
            Ok(ticket) => return (ticket, started),
            Err(ServeError::Busy) => {
                *retries += 1;
                std::thread::yield_now();
            }
            Err(error) => panic!("load generator submit failed: {error}"),
        }
    }
}

/// [`submit_one_hot_with_backoff`] for `f32` observations, routed through
/// the server's quantize-on-ingest entry point.
fn submit_obs_with_backoff<W: EvalElement>(
    server: &Server<W>,
    session: SessionId,
    observation: &navft_nn::Tensor,
    retries: &mut usize,
) -> (Ticket<W>, Instant) {
    let started = Instant::now();
    loop {
        match server.submit_obs(session, observation) {
            Ok(ticket) => return (ticket, started),
            Err(ServeError::Busy) => {
                *retries += 1;
                std::thread::yield_now();
            }
            Err(error) => panic!("load generator submit failed: {error}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ServeConfig, SessionHook};
    use navft_dronesim::DroneSim;
    use navft_gridworld::GridWorld;
    use navft_nn::{c3f2_scaled, mlp};
    use navft_rl::trace_policy_discrete;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use std::time::Duration;

    #[test]
    fn gridworld_load_generator_matches_the_library_traces() {
        let mut rng = SmallRng::seed_from_u64(3);
        let world = GridWorld::random(6, 0.2, &mut rng);
        let states = world.num_states();
        let policy = mlp(&[states, 24, 4], &mut SmallRng::seed_from_u64(4));

        // Library reference: one greedy episode per environment copy.
        let expected: Vec<Vec<usize>> = (0..5)
            .map(|_| {
                let mut env = world.clone();
                trace_policy_discrete(&mut env, &policy, 30, &mut navft_nn::NoHooks)
            })
            .collect();

        let config =
            ServeConfig::default().with_max_batch(3).with_flush_after(Duration::from_millis(1));
        let server = Server::start(policy, &[states], config);
        let sessions: Vec<_> = (0..5)
            .map(|i| server.open_session(Box::new(SessionHook::<f32>::new(None, i))))
            .collect();
        let mut envs: Vec<GridWorld> = (0..5).map(|_| world.clone()).collect();
        let mut latency = LatencyWindow::new();
        let outcome = drive_discrete_episodes(&server, &sessions, &mut envs, 30, &mut latency);

        assert_eq!(outcome.traces, expected, "served traces must match the library path");
        assert_eq!(latency.len(), outcome.rows);
        assert!(outcome.rows >= 5, "each session took at least one step");
        assert!(server.stats().max_rows_per_batch > 1, "requests coalesced");
    }

    #[test]
    fn bursty_driver_serves_every_scheduled_request() {
        let states = 6;
        let policy = mlp(&[states, 16, 4], &mut SmallRng::seed_from_u64(9));
        let config = ServeConfig::default()
            .with_workers(2)
            .with_max_batch(8)
            .with_flush_after(Duration::from_micros(100));
        let server = Server::start(policy, &[states], config);
        let sessions: Vec<_> = (0..16).map(|_| server.open_clean_session()).collect();
        let bursty = BurstyConfig {
            requests_per_session: 5,
            mean_think: Duration::from_micros(100),
            spike_factor: 4.0,
            seed: 17,
        };
        let mut latency = LatencyWindow::new();
        let outcome = drive_bursty_load(&server, &sessions, states, &bursty, &mut latency);
        // Open-loop accounting: every scheduled request resolved, none lost.
        assert_eq!(outcome.rows, 16 * 5);
        assert_eq!(latency.len(), outcome.rows);
        assert!(latency.p999() >= latency.p50(), "percentiles are ordered");
        server.shutdown();
    }

    #[test]
    fn drone_load_generator_serves_vision_episodes() {
        let policy = c3f2_scaled(&mut SmallRng::seed_from_u64(5));
        let config =
            ServeConfig::default().with_max_batch(2).with_flush_after(Duration::from_millis(1));
        let server = Server::start(policy, &[1, 31, 31], config);
        let sessions: Vec<_> = (0..2).map(|_| server.open_clean_session()).collect();
        let mut envs = vec![DroneSim::indoor_long(), DroneSim::indoor_long()];
        let mut latency = LatencyWindow::new();
        let outcome = drive_vision_episodes(&server, &sessions, &mut envs, 4, &mut latency);
        assert_eq!(outcome.traces.len(), 2);
        assert!(outcome.rows > 0);
        assert_eq!(latency.len(), outcome.rows);
    }
}

//! Episode clients: load generators that drive many concurrent sessions
//! through a [`Server`], one greedy episode each.
//!
//! Each driver steps its sessions in lockstep rounds — submit every live
//! session's observation (retrying with a scheduler yield on
//! [`ServeError::Busy`] backpressure), then wait for every decision — so a
//! round of `n` live sessions puts up to `n` requests in flight at once and
//! forces the batcher to coalesce. The returned per-session action traces
//! are what the determinism suite compares bit-for-bit against the
//! library-only path.

use std::time::{Duration, Instant};

use navft_rl::{DiscreteEnvironment, EvalElement, VisionEnvironment};

use crate::{LatencyWindow, ServeError, Server, SessionId, Ticket};

/// What a load-generation run produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadOutcome {
    /// Per-session greedy action traces, in session order.
    pub traces: Vec<Vec<usize>>,
    /// Total requests served (batch rows).
    pub rows: usize,
    /// Submissions that hit [`ServeError::Busy`] backpressure and retried.
    pub retries: usize,
    /// Wall-clock span of the run.
    pub elapsed: Duration,
}

/// Drives one greedy episode per session on a discrete environment (one-hot
/// observations), recording per-request latency into `latency`.
///
/// `sessions[i]` plays `envs[i]`; an episode ends at its first terminal
/// transition or after `max_steps` steps.
///
/// # Panics
///
/// Panics if `sessions` and `envs` differ in length, or on any submit error
/// other than [`ServeError::Busy`] (a mis-built harness, not load).
pub fn drive_discrete_episodes<W, E>(
    server: &Server<W>,
    sessions: &[SessionId],
    envs: &mut [E],
    max_steps: usize,
    latency: &mut LatencyWindow,
) -> LoadOutcome
where
    W: EvalElement,
    E: DiscreteEnvironment,
{
    assert_eq!(sessions.len(), envs.len(), "one environment per session");
    let n = sessions.len();
    let mut states: Vec<usize> = envs.iter_mut().map(|env| env.reset()).collect();
    let mut alive = vec![true; n];
    let mut traces = vec![Vec::new(); n];
    if envs.is_empty() {
        return LoadOutcome { traces, rows: 0, retries: 0, elapsed: Duration::ZERO };
    }

    let mut rows = 0usize;
    let mut retries = 0usize;
    let started = Instant::now();
    for _ in 0..max_steps {
        let mut round: Vec<(usize, Ticket<W>, Instant)> = Vec::new();
        for i in 0..n {
            if !alive[i] {
                continue;
            }
            let (ticket, submitted) =
                submit_one_hot_with_backoff(server, sessions[i], states[i], &mut retries);
            round.push((i, ticket, submitted));
        }
        if round.is_empty() {
            break;
        }
        for (i, ticket, submitted) in round {
            let decision = ticket.wait().expect("served decision");
            latency.record(submitted.elapsed());
            rows += 1;
            traces[i].push(decision.action);
            let transition = envs[i].step(decision.action);
            states[i] = transition.next_state;
            if transition.terminal {
                alive[i] = false;
            }
        }
    }
    LoadOutcome { traces, rows, retries, elapsed: started.elapsed() }
}

/// [`drive_discrete_episodes`] for vision environments (the drone task):
/// each step hands the environment's `f32` observation to the server's
/// quantize-on-ingest entry point, which encodes it into the backend's
/// storage representation exactly once at enqueue — no per-step clone.
///
/// # Panics
///
/// Panics if `sessions` and `envs` differ in length, or on any submit error
/// other than [`ServeError::Busy`].
pub fn drive_vision_episodes<W, E>(
    server: &Server<W>,
    sessions: &[SessionId],
    envs: &mut [E],
    max_steps: usize,
    latency: &mut LatencyWindow,
) -> LoadOutcome
where
    W: EvalElement,
    E: VisionEnvironment,
{
    assert_eq!(sessions.len(), envs.len(), "one environment per session");
    let n = sessions.len();
    let mut observations: Vec<navft_nn::Tensor> = envs.iter_mut().map(|env| env.reset()).collect();
    let mut alive = vec![true; n];
    let mut traces = vec![Vec::new(); n];
    if envs.is_empty() {
        return LoadOutcome { traces, rows: 0, retries: 0, elapsed: Duration::ZERO };
    }

    let mut rows = 0usize;
    let mut retries = 0usize;
    let started = Instant::now();
    for _ in 0..max_steps {
        let mut round: Vec<(usize, Ticket<W>, Instant)> = Vec::new();
        for i in 0..n {
            if !alive[i] {
                continue;
            }
            let (ticket, submitted) =
                submit_obs_with_backoff(server, sessions[i], &observations[i], &mut retries);
            round.push((i, ticket, submitted));
        }
        if round.is_empty() {
            break;
        }
        for (i, ticket, submitted) in round {
            let decision = ticket.wait().expect("served decision");
            latency.record(submitted.elapsed());
            rows += 1;
            traces[i].push(decision.action);
            let transition = envs[i].step(decision.action);
            observations[i] = transition.observation;
            if transition.terminal {
                alive[i] = false;
            }
        }
    }
    LoadOutcome { traces, rows, retries, elapsed: started.elapsed() }
}

/// Submits a one-hot state, yielding and retrying while the queue pushes
/// back. Returns the ticket and the instant of the *first* attempt, so
/// recorded latencies include the backpressure wait the request actually
/// experienced.
fn submit_one_hot_with_backoff<W: EvalElement>(
    server: &Server<W>,
    session: SessionId,
    state: usize,
    retries: &mut usize,
) -> (Ticket<W>, Instant) {
    let started = Instant::now();
    loop {
        match server.submit_one_hot(session, state) {
            Ok(ticket) => return (ticket, started),
            Err(ServeError::Busy) => {
                *retries += 1;
                std::thread::yield_now();
            }
            Err(error) => panic!("load generator submit failed: {error}"),
        }
    }
}

/// [`submit_one_hot_with_backoff`] for `f32` observations, routed through
/// the server's quantize-on-ingest entry point.
fn submit_obs_with_backoff<W: EvalElement>(
    server: &Server<W>,
    session: SessionId,
    observation: &navft_nn::Tensor,
    retries: &mut usize,
) -> (Ticket<W>, Instant) {
    let started = Instant::now();
    loop {
        match server.submit_obs(session, observation) {
            Ok(ticket) => return (ticket, started),
            Err(ServeError::Busy) => {
                *retries += 1;
                std::thread::yield_now();
            }
            Err(error) => panic!("load generator submit failed: {error}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ServeConfig, SessionHook};
    use navft_dronesim::DroneSim;
    use navft_gridworld::GridWorld;
    use navft_nn::{c3f2_scaled, mlp};
    use navft_rl::trace_policy_discrete;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use std::time::Duration;

    #[test]
    fn gridworld_load_generator_matches_the_library_traces() {
        let mut rng = SmallRng::seed_from_u64(3);
        let world = GridWorld::random(6, 0.2, &mut rng);
        let states = world.num_states();
        let policy = mlp(&[states, 24, 4], &mut SmallRng::seed_from_u64(4));

        // Library reference: one greedy episode per environment copy.
        let expected: Vec<Vec<usize>> = (0..5)
            .map(|_| {
                let mut env = world.clone();
                trace_policy_discrete(&mut env, &policy, 30, &mut navft_nn::NoHooks)
            })
            .collect();

        let config =
            ServeConfig::default().with_max_batch(3).with_flush_after(Duration::from_millis(1));
        let server = Server::start(policy, &[states], config);
        let sessions: Vec<_> = (0..5)
            .map(|i| server.open_session(Box::new(SessionHook::<f32>::new(None, i))))
            .collect();
        let mut envs: Vec<GridWorld> = (0..5).map(|_| world.clone()).collect();
        let mut latency = LatencyWindow::new();
        let outcome = drive_discrete_episodes(&server, &sessions, &mut envs, 30, &mut latency);

        assert_eq!(outcome.traces, expected, "served traces must match the library path");
        assert_eq!(latency.len(), outcome.rows);
        assert!(outcome.rows >= 5, "each session took at least one step");
        assert!(server.stats().max_rows_per_batch > 1, "requests coalesced");
    }

    #[test]
    fn drone_load_generator_serves_vision_episodes() {
        let policy = c3f2_scaled(&mut SmallRng::seed_from_u64(5));
        let config =
            ServeConfig::default().with_max_batch(2).with_flush_after(Duration::from_millis(1));
        let server = Server::start(policy, &[1, 31, 31], config);
        let sessions: Vec<_> = (0..2).map(|_| server.open_clean_session()).collect();
        let mut envs = vec![DroneSim::indoor_long(), DroneSim::indoor_long()];
        let mut latency = LatencyWindow::new();
        let outcome = drive_vision_episodes(&server, &sessions, &mut envs, 4, &mut latency);
        assert_eq!(outcome.traces.len(), 2);
        assert!(outcome.rows > 0);
        assert_eq!(latency.len(), outcome.rows);
    }
}

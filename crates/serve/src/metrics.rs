//! Request-latency aggregation for the serving harness.

use std::time::Duration;

use navft_core::sweep::json::Json;

/// A window of request latencies with percentile queries and a JSON summary
/// — what the latency/throughput harness writes into `BENCH_<rev>.json`.
///
/// Percentiles of an empty window are `NaN`; [`LatencyWindow::summary`]
/// renders them through [`Json::num`], which maps every non-finite value to
/// JSON `null` (the round trip back parses as `NaN`), so an idle server
/// produces valid JSON rather than bare `NaN` tokens.
#[derive(Debug, Clone, Default)]
pub struct LatencyWindow {
    samples_us: Vec<f64>,
}

impl LatencyWindow {
    /// An empty window.
    pub fn new() -> LatencyWindow {
        LatencyWindow::default()
    }

    /// Records one request's latency.
    pub fn record(&mut self, latency: Duration) {
        self.samples_us.push(latency.as_secs_f64() * 1e6);
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.samples_us.len()
    }

    /// Whether the window holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples_us.is_empty()
    }

    /// The `p`-th percentile latency in microseconds (nearest-rank over the
    /// sorted samples), or `NaN` for an empty window.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.samples_us.is_empty() {
            return f64::NAN;
        }
        let mut sorted = self.samples_us.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        let rank = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
        sorted[rank.min(sorted.len() - 1)]
    }

    /// Median latency in microseconds (`NaN` when empty).
    pub fn p50(&self) -> f64 {
        self.percentile(50.0)
    }

    /// 99th-percentile latency in microseconds (`NaN` when empty).
    pub fn p99(&self) -> f64 {
        self.percentile(99.0)
    }

    /// 99.9th-percentile latency in microseconds (`NaN` when empty) — the
    /// tail the bursty-load harness tracks, since spikes that barely move
    /// p99 still show up here.
    pub fn p999(&self) -> f64 {
        self.percentile(99.9)
    }

    /// Folds another window's samples into this one — how per-driver windows
    /// aggregate into one run-wide tail distribution.
    pub fn merge(&mut self, other: &LatencyWindow) {
        self.samples_us.extend_from_slice(&other.samples_us);
    }

    /// Summarizes the window plus a row count and wall-clock span as a JSON
    /// object: `requests`, `rows`, `p50_us`, `p99_us`, `p999_us`,
    /// `rows_per_s`. Non-finite entries (empty window, zero elapsed time)
    /// render as `null`.
    pub fn summary(&self, rows: usize, elapsed: Duration) -> Json {
        let secs = elapsed.as_secs_f64();
        let rows_per_s = if secs > 0.0 { rows as f64 / secs } else { f64::NAN };
        Json::obj([
            ("requests", Json::num(self.len() as f64)),
            ("rows", Json::num(rows as f64)),
            ("p50_us", Json::num(self.p50())),
            ("p99_us", Json::num(self.p99())),
            ("p999_us", Json::num(self.p999())),
            ("rows_per_s", Json::num(rows_per_s)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_use_nearest_rank_over_the_sorted_window() {
        let mut window = LatencyWindow::new();
        for us in [300u64, 100, 200, 400, 10_000] {
            window.record(Duration::from_micros(us));
        }
        assert_eq!(window.len(), 5);
        assert_eq!(window.p50(), 300.0);
        assert_eq!(window.p99(), 10_000.0);
        assert_eq!(window.p999(), 10_000.0);
        assert_eq!(window.percentile(0.0), 100.0);
    }

    #[test]
    fn merge_folds_samples_and_p999_tracks_the_extreme_tail() {
        // 299 fast samples in one window, one slow outlier in another: after
        // the merge, p99's nearest rank stays in the fast cluster while
        // p999's lands on the outlier.
        let mut fast = LatencyWindow::new();
        for _ in 0..299 {
            fast.record(Duration::from_micros(100));
        }
        let mut slow = LatencyWindow::new();
        slow.record(Duration::from_micros(50_000));
        fast.merge(&slow);
        assert_eq!(fast.len(), 300);
        assert_eq!(fast.p99(), 100.0);
        assert_eq!(fast.p999(), 50_000.0);
    }

    #[test]
    fn empty_window_percentiles_are_nan_and_render_as_null() {
        // The serve-metrics extension of the sweep::json non-finite
        // contract: an idle window's p50/p99 are NaN, the summary renders
        // them as JSON null, and the rendered text round-trips.
        let window = LatencyWindow::new();
        assert!(window.p50().is_nan());
        assert!(window.p99().is_nan());

        let summary = window.summary(0, Duration::ZERO);
        let text = summary.render();
        assert!(text.contains("\"p50_us\":null"), "NaN must render as null: {text}");
        assert!(text.contains("\"p99_us\":null"), "NaN must render as null: {text}");
        assert!(text.contains("\"rows_per_s\":null"), "0/0 must render as null: {text}");
        assert!(!text.contains("NaN"), "no bare NaN tokens in JSON: {text}");

        // The null entries parse back as NaN (`as_f64` maps Null to NaN).
        let parsed = Json::parse(&text).expect("summary round-trips");
        assert!(parsed.get("p50_us").and_then(Json::as_f64).expect("present").is_nan());
        assert!(parsed.get("p99_us").and_then(Json::as_f64).expect("present").is_nan());
        assert!(parsed.get("rows_per_s").and_then(Json::as_f64).expect("present").is_nan());
        assert_eq!(parsed.get("requests").and_then(Json::as_f64), Some(0.0));
    }

    #[test]
    fn populated_summary_reports_throughput() {
        let mut window = LatencyWindow::new();
        window.record(Duration::from_micros(500));
        window.record(Duration::from_micros(1000));
        window.record(Duration::from_micros(1500));
        let summary = window.summary(20, Duration::from_secs(2));
        assert_eq!(summary.get("rows").and_then(Json::as_f64), Some(20.0));
        assert_eq!(summary.get("rows_per_s").and_then(Json::as_f64), Some(10.0));
        assert_eq!(summary.get("requests").and_then(Json::as_f64), Some(3.0));
        let round_trip = Json::parse(&summary.render()).expect("parses");
        assert_eq!(round_trip.get("p50_us").and_then(Json::as_f64), Some(1000.0));
    }
}

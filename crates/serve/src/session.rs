//! Per-session forward hooks: fault injection on the observation, range
//! guard scrubbing on the activations.

use std::sync::Arc;

use navft_fault::{FaultSpec, StoredWord};
use navft_mitigation::{GuardedElement, RangeGuard};
use navft_nn::{Element, ForwardHooks, I8ForwardHooks, LayerKind, QForwardHooks};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// The standard per-session hook of the serving daemon: optionally strikes
/// each request's observation with a freshly sampled transient fault pattern
/// ([`FaultSpec`]), and optionally scrubs every activation buffer through a
/// shared [`RangeGuard`].
///
/// One `SessionHook` lives in the session registry per tenant; the batcher
/// routes it to the session's batch row via [`navft_nn::DynRowHooks`]. The
/// session's RNG only advances when its *own* requests are served, so fault
/// streams are deterministic per session regardless of how requests from
/// different sessions coalesce. The same type plugs directly into the
/// library-only forward paths (it implements each backend's hook trait), so
/// served and library episodes can share bit-identical hook state.
///
/// The type is generic over the policy's storage element; construct it with
/// the served network's `net_meta()` so `i8` scrubbing sees the affine
/// scale.
pub struct SessionHook<W: Element> {
    faults: Option<FaultSpec>,
    rng: SmallRng,
    guard: Option<Arc<RangeGuard>>,
    meta: W::NetMeta,
    struck: usize,
    scrubbed: usize,
}

impl<W: Element> SessionHook<W> {
    /// A hook with no faults and no guard, seeded for later fault sampling.
    /// `meta` is the served network's `net_meta()`.
    pub fn new(meta: W::NetMeta, seed: u64) -> SessionHook<W> {
        SessionHook {
            faults: None,
            rng: SmallRng::seed_from_u64(seed),
            guard: None,
            meta,
            struck: 0,
            scrubbed: 0,
        }
    }

    /// Returns the hook with a per-request observation fault spec attached.
    pub fn with_faults(mut self, spec: FaultSpec) -> SessionHook<W> {
        self.faults = Some(spec);
        self
    }

    /// Returns the hook with a range guard scrubbing every activation
    /// buffer.
    pub fn with_guard(mut self, guard: Arc<RangeGuard>) -> SessionHook<W> {
        self.guard = Some(guard);
        self
    }

    /// Total bit faults struck into this session's observations so far.
    pub fn struck(&self) -> usize {
        self.struck
    }

    /// Total activation values scrubbed for this session so far.
    pub fn scrubbed(&self) -> usize {
        self.scrubbed
    }
}

impl<W: Element + StoredWord + GuardedElement> SessionHook<W> {
    fn strike_input(&mut self, values: &mut [W]) {
        if let Some(spec) = self.faults {
            self.struck += spec.strike(values, &mut self.rng);
        }
    }

    fn scrub_activation(&mut self, layer_index: usize, values: &mut [W]) {
        if let Some(guard) = &self.guard {
            self.scrubbed += guard.scrub_buffer(layer_index, values, &self.meta);
        }
    }
}

impl ForwardHooks for SessionHook<f32> {
    fn on_input(&mut self, values: &mut [f32]) {
        self.strike_input(values);
    }

    fn on_activation(&mut self, layer_index: usize, _kind: LayerKind, values: &mut [f32]) {
        self.scrub_activation(layer_index, values);
    }
}

impl QForwardHooks for SessionHook<i32> {
    fn on_input(&mut self, words: &mut [i32]) {
        self.strike_input(words);
    }

    fn on_activation(&mut self, layer_index: usize, _kind: LayerKind, words: &mut [i32]) {
        self.scrub_activation(layer_index, words);
    }
}

impl I8ForwardHooks for SessionHook<i8> {
    fn on_input(&mut self, words: &mut [i8]) {
        self.strike_input(words);
    }

    fn on_activation(&mut self, layer_index: usize, _kind: LayerKind, words: &mut [i8]) {
        self.scrub_activation(layer_index, words);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use navft_fault::FaultKind;
    use navft_mitigation::RangeGuardConfig;
    use navft_nn::HooksFor;
    use navft_qformat::QFormat;

    #[test]
    fn fault_streams_are_seed_deterministic_per_session() {
        let spec = FaultSpec::new(0.05, FaultKind::BitFlip, QFormat::Q4_11);
        let run = |seed: u64| {
            let mut hook: SessionHook<f32> = SessionHook::new(None, seed).with_faults(spec);
            let mut rows = Vec::new();
            for _ in 0..4 {
                let mut values = vec![0.5f32; 32];
                HooksFor::<f32>::input(&mut hook, &mut values);
                rows.push(values);
            }
            (rows, hook.struck())
        };
        assert_eq!(run(9), run(9), "same seed, same corruption stream");
        assert_ne!(run(9).0, run(10).0, "different sessions draw different streams");
    }

    #[test]
    fn guard_scrubs_activations_through_the_hook() {
        let guard = Arc::new(RangeGuard::from_bounds(
            [(0, -1.0, 1.0)],
            QFormat::Q4_11,
            RangeGuardConfig::paper(),
        ));
        let mut hook: SessionHook<f32> = SessionHook::new(None, 0).with_guard(guard);
        let mut values = vec![0.5f32, 40.0, -40.0];
        HooksFor::<f32>::activation(&mut hook, 0, LayerKind::Linear, &mut values);
        assert_eq!(values, vec![0.5, 0.0, 0.0]);
        assert_eq!(hook.scrubbed(), 2);
        // Layer 1 has no bounds: untouched.
        let mut values = vec![40.0f32];
        HooksFor::<f32>::activation(&mut hook, 1, LayerKind::Linear, &mut values);
        assert_eq!(values, vec![40.0]);
    }

    #[test]
    fn clean_hook_is_a_no_op_on_every_backend() {
        let mut f = SessionHook::<f32>::new(None, 0);
        let mut values = vec![0.25f32; 8];
        HooksFor::<f32>::input(&mut f, &mut values);
        HooksFor::<f32>::activation(&mut f, 0, LayerKind::Relu, &mut values);
        assert_eq!(values, vec![0.25; 8]);

        let mut q = SessionHook::<i32>::new(QFormat::Q4_11, 0);
        let mut words = vec![77i32; 8];
        HooksFor::<i32>::input(&mut q, &mut words);
        assert_eq!(words, vec![77; 8]);
        assert_eq!(q.struck() + q.scrubbed(), 0);
    }
}

//! The serving daemon: sharded session registries, bounded per-shard request
//! queues, and one dynamic-batcher worker per shard.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use navft_nn::{argmax, DynRowHooks, Element, EngineConfig, HooksFor, NetworkBase, NoHooks};
use navft_nn::{Scratch, TensorBase};
use navft_rl::EvalElement;

/// Configuration of a [`Server`]'s shard layout, dynamic batchers and queues.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Number of sharded batcher workers. Sessions are pinned to one shard
    /// at open (stable session-id hash) and never migrate, so each shard is
    /// an independent service domain: its own bounded queue, batcher thread,
    /// scratch arena and ingest pool.
    pub workers: usize,
    /// Largest number of requests coalesced into one engine sweep (per
    /// shard).
    pub max_batch: usize,
    /// Per-shard pending-request bound beyond which [`Server::submit`]
    /// rejects with [`ServeError::Busy`].
    pub queue_capacity: usize,
    /// How long a batcher waits for more requests after the oldest pending
    /// one before flushing a partial batch.
    pub flush_after: Duration,
    /// Engine configuration of the batched sweeps (threads, kernel choice) —
    /// explicit, so concurrent servers and tests in one process cannot
    /// observe each other's settings.
    pub engine: EngineConfig,
}

impl Default for ServeConfig {
    /// One worker, batches of up to 64 rows, a 256-request queue, a 200 µs
    /// flush deadline, the default (serial, SIMD-dispatched) engine.
    fn default() -> Self {
        ServeConfig {
            workers: 1,
            max_batch: 64,
            queue_capacity: 256,
            flush_after: Duration::from_micros(200),
            engine: EngineConfig::default(),
        }
    }
}

impl ServeConfig {
    /// Returns the config with the sharded worker count set (clamped to
    /// ≥ 1).
    pub fn with_workers(mut self, workers: usize) -> ServeConfig {
        self.workers = workers.max(1);
        self
    }

    /// Returns the config with the coalescing bound set (clamped to ≥ 1).
    pub fn with_max_batch(mut self, max_batch: usize) -> ServeConfig {
        self.max_batch = max_batch.max(1);
        self
    }

    /// Returns the config with the per-shard queue bound set (clamped to
    /// ≥ 1).
    pub fn with_queue_capacity(mut self, capacity: usize) -> ServeConfig {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Returns the config with the partial-batch flush deadline set.
    pub fn with_flush_after(mut self, flush_after: Duration) -> ServeConfig {
        self.flush_after = flush_after;
        self
    }

    /// Returns the config with the engine configuration set.
    pub fn with_engine(mut self, engine: EngineConfig) -> ServeConfig {
        self.engine = engine;
        self
    }
}

/// Why the server declined a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeError {
    /// The session's shard queue is full — back off and retry.
    Busy,
    /// The server is draining towards shutdown; no new requests.
    ShuttingDown,
    /// The session does not exist (never opened, or already closed).
    UnknownSession,
    /// The session already has a request in flight (one per session).
    InFlight,
    /// The observation's shape does not match the served policy's input.
    BadShape,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match self {
            ServeError::Busy => "request queue is full",
            ServeError::ShuttingDown => "server is shutting down",
            ServeError::UnknownSession => "unknown session",
            ServeError::InFlight => "session already has a request in flight",
            ServeError::BadShape => "observation shape does not match the policy input",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for ServeError {}

/// The served outcome of one `act()` request: the greedy action plus the
/// policy's output row in the backend's storage representation.
#[derive(Debug, Clone, PartialEq)]
pub struct Decision<W: Element> {
    /// Argmax over the policy's final layer.
    pub action: usize,
    /// The final layer's values for this request's batch row.
    pub values: Vec<W>,
}

/// Handle to an open session of a [`Server`].
///
/// The id encodes the session's shard (`id % workers`) and its slot within
/// that shard's registry (`id / workers`); a session stays on its shard for
/// its whole lifetime, which is what makes per-session traces independent of
/// every other shard's traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SessionId(usize);

/// A pending reply to a submitted request; resolves via [`Ticket::wait`] or
/// non-blocking [`Ticket::poll`].
pub struct Ticket<W: Element> {
    rx: mpsc::Receiver<Result<Decision<W>, ServeError>>,
}

impl<W: Element> std::fmt::Debug for Ticket<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ticket").finish_non_exhaustive()
    }
}

impl<W: Element> Ticket<W> {
    /// Blocks until the batcher serves this request (or refuses it).
    pub fn wait(self) -> Result<Decision<W>, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::ShuttingDown))
    }

    /// Checks for the decision without blocking: `None` while the request is
    /// still queued or sweeping, `Some(result)` exactly once when it has
    /// resolved (a later [`Ticket::wait`] would then block forever — the
    /// reply is consumed here).
    pub fn poll(&self) -> Option<Result<Decision<W>, ServeError>> {
        match self.rx.try_recv() {
            Ok(result) => Some(result),
            Err(mpsc::TryRecvError::Empty) => None,
            Err(mpsc::TryRecvError::Disconnected) => Some(Err(ServeError::ShuttingDown)),
        }
    }
}

/// Counters of a server's lifetime activity (see [`Server::stats`]),
/// aggregated across all shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeStats {
    /// Requests served (batch rows swept through the engine).
    pub rows: usize,
    /// Engine sweeps run (batches flushed), across all shards.
    pub batches: usize,
    /// Submissions rejected with [`ServeError::Busy`].
    pub rejected: usize,
    /// Largest batch coalesced so far on any shard.
    pub max_rows_per_batch: usize,
}

/// The channel half a batcher sweep answers a request on.
type ReplySender<W> = mpsc::Sender<Result<Decision<W>, ServeError>>;

struct SessionState<W: Element> {
    /// The session's forward hooks. `None` only while the batcher borrows
    /// them for a sweep (the slot's `in_flight` flag is set for that span).
    hooks: Option<Box<dyn HooksFor<W> + Send>>,
    in_flight: bool,
}

struct Request<W: Element> {
    session: SessionId,
    input: TensorBase<W>,
    reply: ReplySender<W>,
}

struct QueueState<W: Element> {
    pending: VecDeque<Request<W>>,
    /// When the oldest pending request was enqueued — the flush deadline's
    /// anchor. `None` while the queue is empty.
    oldest: Option<Instant>,
    shutdown: bool,
}

/// A shard's session slots plus the free-list of closed ones, so opening a
/// session is O(1) even after hundreds of thousands of opens (the scale
/// bench opens 32k+) — no linear scan for a free slot.
struct Registry<W: Element> {
    slots: Vec<Option<SessionState<W>>>,
    free: Vec<usize>,
}

impl<W: Element> Registry<W> {
    fn open(&mut self, state: SessionState<W>) -> usize {
        match self.free.pop() {
            Some(slot) => {
                self.slots[slot] = Some(state);
                slot
            }
            None => {
                self.slots.push(Some(state));
                self.slots.len() - 1
            }
        }
    }
}

/// One independent service domain: a shard owns its session registry, its
/// bounded queue, its ingest pool and the condvar its batcher worker sleeps
/// on. Nothing here is shared between shards, so enqueue/dequeue contention
/// and engine sweeps parallelize across workers.
struct Shard<W: Element> {
    registry: Mutex<Registry<W>>,
    queue: Mutex<QueueState<W>>,
    /// Recycled input buffers for the quantize-on-ingest entry points
    /// ([`Server::submit_obs`] and friends): served requests return their
    /// tensors here, so steady-state ingest allocates nothing. Bounded by
    /// `queue_capacity` — the most inputs this shard can have in flight.
    pool: Mutex<Vec<TensorBase<W>>>,
    wake: Condvar,
    /// Rows served by this shard alone (see [`Server::shard_rows`]).
    rows: AtomicUsize,
}

impl<W: Element> Shard<W> {
    fn new() -> Shard<W> {
        Shard {
            registry: Mutex::new(Registry { slots: Vec::new(), free: Vec::new() }),
            queue: Mutex::new(QueueState {
                pending: VecDeque::new(),
                oldest: None,
                shutdown: false,
            }),
            pool: Mutex::new(Vec::new()),
            wake: Condvar::new(),
            rows: AtomicUsize::new(0),
        }
    }
}

struct Shared<W: Element> {
    network: NetworkBase<W>,
    input_shape: Vec<usize>,
    config: ServeConfig,
    shards: Vec<Shard<W>>,
    /// Monotonic session-open counter; its hash picks the opening session's
    /// shard.
    next_ordinal: AtomicUsize,
    rows: AtomicUsize,
    batches: AtomicUsize,
    rejected: AtomicUsize,
    max_rows_per_batch: AtomicUsize,
}

/// The stable shard assignment: FNV-1a over the session-open ordinal,
/// reduced modulo the worker count. Hash-based (rather than round-robin
/// modulo alone) so the spread does not correlate with any open-order
/// pattern in the client.
fn shard_of(ordinal: usize, workers: usize) -> usize {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in (ordinal as u64).to_le_bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (hash % workers as u64) as usize
}

/// A policy-serving daemon: one policy, many sessions, N sharded
/// dynamic-batcher worker threads coalescing concurrent requests into
/// batched engine sweeps.
///
/// Sessions are pinned to a shard when opened and never migrate, so a
/// session's episode trace depends only on its own request order — never on
/// which other sessions exist or how traffic interleaves across shards. See
/// the [crate docs](crate) for the architecture. Dropping the server drains
/// every shard's queued requests, then joins all workers.
pub struct Server<W: Element> {
    shared: Arc<Shared<W>>,
    workers: Vec<JoinHandle<()>>,
}

impl<W: Element> Server<W> {
    /// Starts a server for `network`, whose sessions submit observations of
    /// `input_shape`, and spawns `config.workers` batcher workers.
    pub fn start(network: NetworkBase<W>, input_shape: &[usize], config: ServeConfig) -> Server<W> {
        assert!(config.workers >= 1, "workers must be at least 1");
        assert!(config.max_batch >= 1, "max_batch must be at least 1");
        assert!(config.queue_capacity >= 1, "queue_capacity must be at least 1");
        let shared = Arc::new(Shared {
            network,
            input_shape: input_shape.to_vec(),
            config,
            shards: (0..config.workers).map(|_| Shard::new()).collect(),
            next_ordinal: AtomicUsize::new(0),
            rows: AtomicUsize::new(0),
            batches: AtomicUsize::new(0),
            rejected: AtomicUsize::new(0),
            max_rows_per_batch: AtomicUsize::new(0),
        });
        let workers = (0..config.workers)
            .map(|shard| {
                let worker_shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("navft-serve-batcher-{shard}"))
                    .spawn(move || worker_loop(worker_shared, shard))
                    .expect("spawn batcher worker")
            })
            .collect();
        Server { shared, workers }
    }

    /// The served policy.
    pub fn network(&self) -> &NetworkBase<W> {
        &self.shared.network
    }

    /// The observation shape every submission must match.
    pub fn input_shape(&self) -> &[usize] {
        &self.shared.input_shape
    }

    /// The number of sharded batcher workers.
    pub fn workers(&self) -> usize {
        self.shared.config.workers
    }

    /// The shard a session is pinned to (stable for the session's lifetime).
    pub fn session_shard(&self, session: SessionId) -> usize {
        session.0 % self.shared.config.workers
    }

    fn shard_slot(&self, session: SessionId) -> (&Shard<W>, usize) {
        let workers = self.shared.config.workers;
        (&self.shared.shards[session.0 % workers], session.0 / workers)
    }

    /// Opens a session carrying `hooks`, which observe (and may corrupt or
    /// scrub) every forward pass this session's requests ride in — the
    /// per-tenant fault-injection and mitigation surface. The session is
    /// pinned to a shard here and stays on it until closed.
    pub fn open_session(&self, hooks: Box<dyn HooksFor<W> + Send>) -> SessionId {
        let workers = self.shared.config.workers;
        let ordinal = self.shared.next_ordinal.fetch_add(1, Ordering::Relaxed);
        let shard_index = shard_of(ordinal, workers);
        let shard = &self.shared.shards[shard_index];
        let mut registry = shard.registry.lock().expect("registry lock");
        let slot = registry.open(SessionState { hooks: Some(hooks), in_flight: false });
        SessionId(slot * workers + shard_index)
    }

    /// Opens a session with no hooks (a clean tenant).
    pub fn open_clean_session(&self) -> SessionId
    where
        NoHooks: HooksFor<W>,
    {
        self.open_session(Box::new(NoHooks))
    }

    /// Closes a session. Fails with [`ServeError::InFlight`] while the
    /// session has an unserved request.
    pub fn close_session(&self, session: SessionId) -> Result<(), ServeError> {
        let (shard, slot) = self.shard_slot(session);
        let mut registry = shard.registry.lock().expect("registry lock");
        match registry.slots.get_mut(slot) {
            Some(entry) => match entry {
                Some(state) if state.in_flight => Err(ServeError::InFlight),
                Some(_) => {
                    *entry = None;
                    registry.free.push(slot);
                    Ok(())
                }
                None => Err(ServeError::UnknownSession),
            },
            None => Err(ServeError::UnknownSession),
        }
    }

    /// Number of currently open sessions, across all shards.
    pub fn session_count(&self) -> usize {
        self.shared
            .shards
            .iter()
            .map(|shard| {
                shard.registry.lock().expect("registry lock").slots.iter().flatten().count()
            })
            .sum()
    }

    /// Enqueues one observation for `session` on its shard's queue and
    /// returns a [`Ticket`] that resolves when the shard's batcher serves
    /// it.
    ///
    /// On rejection the observation is handed back alongside the error, so a
    /// [`ServeError::Busy`] caller can retry without re-building it. Each
    /// session may have at most one request in flight.
    pub fn submit(
        &self,
        session: SessionId,
        input: TensorBase<W>,
    ) -> Result<Ticket<W>, (ServeError, TensorBase<W>)> {
        if input.shape() != self.shared.input_shape.as_slice() {
            return Err((ServeError::BadShape, input));
        }
        let (shard, slot) = self.shard_slot(session);
        {
            let mut registry = shard.registry.lock().expect("registry lock");
            match registry.slots.get_mut(slot).and_then(|entry| entry.as_mut()) {
                None => return Err((ServeError::UnknownSession, input)),
                Some(state) if state.in_flight => return Err((ServeError::InFlight, input)),
                Some(state) => state.in_flight = true,
            }
        }
        let (reply, rx) = mpsc::channel();
        let mut queue = shard.queue.lock().expect("queue lock");
        if queue.shutdown {
            drop(queue);
            self.clear_in_flight(session);
            return Err((ServeError::ShuttingDown, input));
        }
        if queue.pending.len() >= self.shared.config.queue_capacity {
            drop(queue);
            self.shared.rejected.fetch_add(1, Ordering::Relaxed);
            self.clear_in_flight(session);
            return Err((ServeError::Busy, input));
        }
        if queue.pending.is_empty() {
            queue.oldest = Some(Instant::now());
        }
        queue.pending.push_back(Request { session, input, reply });
        shard.wake.notify_one();
        drop(queue);
        Ok(Ticket { rx })
    }

    /// Submits one observation and blocks for the decision, retrying
    /// (with a scheduler yield) while the shard's queue is full.
    pub fn act(&self, session: SessionId, input: TensorBase<W>) -> Result<Decision<W>, ServeError> {
        let mut input = input;
        loop {
            match self.submit(session, input) {
                Ok(ticket) => return ticket.wait(),
                Err((ServeError::Busy, returned)) => {
                    input = returned;
                    std::thread::yield_now();
                }
                Err((error, _)) => return Err(error),
            }
        }
    }

    /// Number of requests waiting in the queues right now, across all
    /// shards.
    pub fn pending(&self) -> usize {
        self.shared
            .shards
            .iter()
            .map(|shard| shard.queue.lock().expect("queue lock").pending.len())
            .sum()
    }

    /// Lifetime activity counters, aggregated across shards.
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            rows: self.shared.rows.load(Ordering::Relaxed),
            batches: self.shared.batches.load(Ordering::Relaxed),
            rejected: self.shared.rejected.load(Ordering::Relaxed),
            max_rows_per_batch: self.shared.max_rows_per_batch.load(Ordering::Relaxed),
        }
    }

    /// Rows served by each shard (index = shard = worker). The skew
    /// diagnostics: a uniform session mix serves roughly `rows / workers`
    /// per entry, while adversarial pinning shows up as one hot entry.
    pub fn shard_rows(&self) -> Vec<usize> {
        self.shared.shards.iter().map(|shard| shard.rows.load(Ordering::Relaxed)).collect()
    }

    /// Stops accepting new requests, drains every shard's queued requests,
    /// and joins all workers. (Dropping the server does the same.)
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn clear_in_flight(&self, session: SessionId) {
        let (shard, slot) = self.shard_slot(session);
        let mut registry = shard.registry.lock().expect("registry lock");
        if let Some(Some(state)) = registry.slots.get_mut(slot).map(|entry| entry.as_mut()) {
            state.in_flight = false;
        }
    }

    fn stop(&mut self) {
        for shard in &self.shared.shards {
            let mut queue = shard.queue.lock().expect("queue lock");
            queue.shutdown = true;
            drop(queue);
            shard.wake.notify_all();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl<W: EvalElement> Server<W> {
    /// Pops a recycled input buffer from `shard`'s pool, or allocates one on
    /// a cold pool.
    fn ingest_buffer(&self, shard: &Shard<W>) -> TensorBase<W> {
        let recycled = shard.pool.lock().expect("pool lock").pop();
        recycled.unwrap_or_else(|| W::input_buffer(&self.shared.input_shape, &self.shared.network))
    }

    fn recycle(&self, shard: &Shard<W>, input: TensorBase<W>) {
        let mut pool = shard.pool.lock().expect("pool lock");
        if pool.len() < self.shared.config.queue_capacity {
            pool.push(input);
        }
    }

    /// Enqueues an `f32` observation for `session`, quantizing it into the
    /// backend's storage representation **once, here at ingest** — the
    /// batcher sweep then reads the staged words directly. Buffers come
    /// from (and return to) the session's shard pool, so the steady state
    /// neither allocates nor re-encodes.
    pub fn submit_obs(
        &self,
        session: SessionId,
        observation: &navft_nn::Tensor,
    ) -> Result<Ticket<W>, ServeError> {
        if observation.shape() != self.shared.input_shape.as_slice() {
            return Err(ServeError::BadShape);
        }
        let (shard, _) = self.shard_slot(session);
        let mut input = self.ingest_buffer(shard);
        W::encode_into(observation, &mut input);
        match self.submit(session, input) {
            Ok(ticket) => Ok(ticket),
            Err((error, returned)) => {
                self.recycle(shard, returned);
                Err(error)
            }
        }
    }

    /// Enqueues a one-hot observation of `state` for `session`, written
    /// directly in the backend's storage representation — discrete clients
    /// never build (or clone) an `f32` tensor at all.
    pub fn submit_one_hot(
        &self,
        session: SessionId,
        state: usize,
    ) -> Result<Ticket<W>, ServeError> {
        let (shard, _) = self.shard_slot(session);
        let mut input = self.ingest_buffer(shard);
        if state >= input.len() {
            self.recycle(shard, input);
            return Err(ServeError::BadShape);
        }
        W::one_hot(state, &mut input);
        match self.submit(session, input) {
            Ok(ticket) => Ok(ticket),
            Err((error, returned)) => {
                self.recycle(shard, returned);
                Err(error)
            }
        }
    }

    /// [`Server::submit_obs`] + blocking wait, retrying (with a scheduler
    /// yield) while the queue is full. The observation is quantized once up
    /// front; Busy retries resubmit the already-encoded buffer.
    pub fn act_obs(
        &self,
        session: SessionId,
        observation: &navft_nn::Tensor,
    ) -> Result<Decision<W>, ServeError> {
        if observation.shape() != self.shared.input_shape.as_slice() {
            return Err(ServeError::BadShape);
        }
        let (shard, _) = self.shard_slot(session);
        let mut input = self.ingest_buffer(shard);
        W::encode_into(observation, &mut input);
        self.act_staged(session, input)
    }

    /// [`Server::submit_one_hot`] + blocking wait, retrying while the queue
    /// is full.
    pub fn act_one_hot(&self, session: SessionId, state: usize) -> Result<Decision<W>, ServeError> {
        let (shard, _) = self.shard_slot(session);
        let mut input = self.ingest_buffer(shard);
        if state >= input.len() {
            self.recycle(shard, input);
            return Err(ServeError::BadShape);
        }
        W::one_hot(state, &mut input);
        self.act_staged(session, input)
    }

    fn act_staged(
        &self,
        session: SessionId,
        input: TensorBase<W>,
    ) -> Result<Decision<W>, ServeError> {
        let mut input = input;
        loop {
            match self.submit(session, input) {
                Ok(ticket) => return ticket.wait(),
                Err((ServeError::Busy, returned)) => {
                    input = returned;
                    std::thread::yield_now();
                }
                Err((error, returned)) => {
                    let (shard, _) = self.shard_slot(session);
                    self.recycle(shard, returned);
                    return Err(error);
                }
            }
        }
    }
}

impl<W: Element> Drop for Server<W> {
    fn drop(&mut self) {
        self.stop();
    }
}

/// One shard's batcher worker: wait for a full batch or a flush deadline on
/// the shard's own queue, drain up to `max_batch` requests, sweep them
/// through the engine against the shard-private scratch, reply per row.
fn worker_loop<W: Element>(shared: Arc<Shared<W>>, shard_index: usize) {
    let shard = &shared.shards[shard_index];
    let mut scratch = Scratch::new();
    loop {
        let batch: Vec<Request<W>> = {
            let mut queue = shard.queue.lock().expect("queue lock");
            loop {
                let full = queue.pending.len() >= shared.config.max_batch;
                // On shutdown, flush whatever is queued (graceful drain)
                // and exit once the queue is empty.
                if full || (queue.shutdown && !queue.pending.is_empty()) {
                    break;
                }
                if queue.shutdown {
                    return;
                }
                if queue.pending.is_empty() {
                    queue = shard.wake.wait(queue).expect("queue lock");
                    continue;
                }
                let waited = queue.oldest.map(|t| t.elapsed()).unwrap_or(Duration::ZERO);
                if waited >= shared.config.flush_after {
                    break;
                }
                let remaining = shared.config.flush_after - waited;
                let (guard, _) = shard.wake.wait_timeout(queue, remaining).expect("queue lock");
                queue = guard;
            }
            let take = queue.pending.len().min(shared.config.max_batch);
            let batch: Vec<Request<W>> = queue.pending.drain(..take).collect();
            queue.oldest = if queue.pending.is_empty() { None } else { Some(Instant::now()) };
            batch
        };
        process_batch(&shared, shard, &mut scratch, batch);
    }
}

fn process_batch<W: Element>(
    shared: &Shared<W>,
    shard: &Shard<W>,
    scratch: &mut Scratch<W>,
    batch: Vec<Request<W>>,
) {
    let workers = shared.config.workers;
    // Take each session's hook box out of the shard registry for the sweep;
    // the in-flight flag (set at submit) keeps the slot reserved meanwhile,
    // so no aliasing is possible. A session can only vanish here if the
    // registry raced a close — refuse its request rather than serving it
    // hookless.
    let mut inputs: Vec<TensorBase<W>> = Vec::with_capacity(batch.len());
    let mut rows: Vec<(SessionId, ReplySender<W>)> = Vec::with_capacity(batch.len());
    let mut hooks: Vec<Box<dyn HooksFor<W> + Send>> = Vec::with_capacity(batch.len());
    {
        let mut registry = shard.registry.lock().expect("registry lock");
        for request in batch {
            let slot = request.session.0 / workers;
            let taken = registry
                .slots
                .get_mut(slot)
                .and_then(|entry| entry.as_mut())
                .and_then(|state| state.hooks.take());
            match taken {
                Some(hook) => {
                    inputs.push(request.input);
                    rows.push((request.session, request.reply));
                    hooks.push(hook);
                }
                None => {
                    let _ = request.reply.send(Err(ServeError::UnknownSession));
                }
            }
        }
    }

    let mut decisions: Vec<Decision<W>> = Vec::with_capacity(inputs.len());
    if !inputs.is_empty() {
        {
            let row_refs: Vec<&mut dyn HooksFor<W>> =
                hooks.iter_mut().map(|hook| &mut **hook as &mut dyn HooksFor<W>).collect();
            let mut per_row = DynRowHooks::new(row_refs);
            shared.network.forward_batch_into_cfg(
                &inputs,
                scratch,
                &mut per_row,
                shared.config.engine,
            );
        }
        for row in 0..rows.len() {
            let values = scratch.row(row);
            decisions.push(Decision { action: argmax(values), values: values.to_vec() });
        }
        shard.rows.fetch_add(inputs.len(), Ordering::Relaxed);
        shared.rows.fetch_add(inputs.len(), Ordering::Relaxed);
        shared.batches.fetch_add(1, Ordering::Relaxed);
        shared.max_rows_per_batch.fetch_max(inputs.len(), Ordering::Relaxed);
    }

    // Recycle the served input tensors so the shard's ingest entry points
    // can reuse them instead of allocating. Bounded by the queue capacity —
    // the most buffers this shard can ever have in flight concurrently.
    {
        let mut pool = shard.pool.lock().expect("pool lock");
        for input in inputs {
            if pool.len() >= shared.config.queue_capacity {
                break;
            }
            pool.push(input);
        }
    }

    // Return the hook boxes and release the per-session in-flight slots
    // *before* replying: once a client sees its decision it may immediately
    // resubmit, so the slot must already be free by then.
    {
        let mut registry = shard.registry.lock().expect("registry lock");
        for ((session, _), hook) in rows.iter().zip(hooks) {
            let slot = session.0 / workers;
            if let Some(Some(state)) = registry.slots.get_mut(slot).map(|entry| entry.as_mut()) {
                state.hooks = Some(hook);
                state.in_flight = false;
            }
        }
    }
    for ((_, reply), decision) in rows.into_iter().zip(decisions) {
        let _ = reply.send(Ok(decision));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use navft_nn::{mlp, Tensor};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn policy() -> navft_nn::Network {
        let mut rng = SmallRng::seed_from_u64(0);
        mlp(&[4, 8, 3], &mut rng)
    }

    fn obs(v: f32) -> Tensor {
        Tensor::full(&[4], v)
    }

    #[test]
    fn served_decision_matches_the_library_forward() {
        let net = policy();
        let expected = net.forward(&obs(0.3)).argmax();
        let server = Server::start(net, &[4], ServeConfig::default());
        let session = server.open_clean_session();
        let decision = server.act(session, obs(0.3)).expect("decision");
        assert_eq!(decision.action, expected);
        assert_eq!(decision.values.len(), 3);
    }

    #[test]
    fn unknown_sessions_bad_shapes_and_double_submits_are_refused() {
        let server = Server::start(policy(), &[4], ServeConfig::default());
        let (err, _) = server.submit(SessionId(3), obs(0.0)).expect_err("no session");
        assert_eq!(err, ServeError::UnknownSession);

        let session = server.open_clean_session();
        let (err, _) = server.submit(session, Tensor::full(&[5], 0.0)).expect_err("wrong shape");
        assert_eq!(err, ServeError::BadShape);

        // Stall the batcher with a long flush deadline so the first request
        // stays in flight while the second arrives.
        let server = Server::start(
            policy(),
            &[4],
            ServeConfig::default().with_flush_after(Duration::from_secs(5)),
        );
        let session = server.open_clean_session();
        let ticket = server.submit(session, obs(0.1)).expect("first submit");
        let (err, _) = server.submit(session, obs(0.2)).expect_err("in flight");
        assert_eq!(err, ServeError::InFlight);
        assert_eq!(server.close_session(session).expect_err("busy"), ServeError::InFlight);
        drop(server); // graceful drain resolves the ticket
        assert!(ticket.wait().is_ok());
    }

    #[test]
    fn full_queue_rejects_with_busy_and_drains_on_shutdown() {
        let config = ServeConfig::default()
            .with_max_batch(64)
            .with_queue_capacity(2)
            .with_flush_after(Duration::from_secs(5));
        let server = Server::start(policy(), &[4], config);
        let a = server.open_clean_session();
        let b = server.open_clean_session();
        let c = server.open_clean_session();
        let ta = server.submit(a, obs(0.1)).expect("first");
        let tb = server.submit(b, obs(0.2)).expect("second");
        let (err, returned) = server.submit(c, obs(0.3)).expect_err("queue full");
        assert_eq!(err, ServeError::Busy);
        assert_eq!(returned.data(), obs(0.3).data(), "rejected input is handed back");
        assert_eq!(server.stats().rejected, 1);
        // The rejected session is immediately usable again after drain.
        server.shutdown();
        assert!(ta.wait().is_ok());
        assert!(tb.wait().is_ok());
    }

    #[test]
    fn batcher_coalesces_full_batches_immediately() {
        let config = ServeConfig::default()
            .with_max_batch(4)
            .with_queue_capacity(64)
            .with_flush_after(Duration::from_secs(5));
        let net = policy();
        let expected: Vec<usize> =
            (0..8).map(|i| net.forward(&obs(i as f32 * 0.1)).argmax()).collect();
        let server = Server::start(net, &[4], config);
        let sessions: Vec<SessionId> = (0..8).map(|_| server.open_clean_session()).collect();
        // 8 pending requests with a 5 s deadline: only full batches of 4 can
        // have flushed them.
        let tickets: Vec<Ticket<f32>> = sessions
            .iter()
            .enumerate()
            .map(|(i, &s)| server.submit(s, obs(i as f32 * 0.1)).expect("submit"))
            .collect();
        for (ticket, want) in tickets.into_iter().zip(expected) {
            assert_eq!(ticket.wait().expect("decision").action, want);
        }
        let stats = server.stats();
        assert_eq!(stats.rows, 8);
        assert_eq!(stats.max_rows_per_batch, 4);
        assert_eq!(stats.batches, 2);
    }

    #[test]
    fn partial_batches_flush_after_the_deadline() {
        let config =
            ServeConfig::default().with_max_batch(64).with_flush_after(Duration::from_millis(1));
        let server = Server::start(policy(), &[4], config);
        let session = server.open_clean_session();
        let decision = server.act(session, obs(0.4)).expect("decision");
        assert_eq!(decision.values.len(), 3);
        assert_eq!(server.stats().max_rows_per_batch, 1);
    }

    #[test]
    fn sessions_reuse_freed_slots() {
        let server = Server::start(policy(), &[4], ServeConfig::default());
        let a = server.open_clean_session();
        let _b = server.open_clean_session();
        server.close_session(a).expect("close");
        assert_eq!(server.session_count(), 1);
        let c = server.open_clean_session();
        assert_eq!(c, a, "freed slot is reused");
        assert_eq!(server.session_count(), 2);
        assert_eq!(server.close_session(a), Ok(()));
        assert_eq!(server.close_session(a), Err(ServeError::UnknownSession));
    }

    #[test]
    fn sessions_are_pinned_to_shards_and_served_on_them() {
        let config = ServeConfig::default().with_workers(4);
        let server = Server::start(policy(), &[4], config);
        let sessions: Vec<SessionId> = (0..32).map(|_| server.open_clean_session()).collect();
        assert_eq!(server.workers(), 4);
        assert_eq!(server.session_count(), 32);
        // Every shard id is in range and stable across calls.
        let shards: Vec<usize> = sessions.iter().map(|&s| server.session_shard(s)).collect();
        assert!(shards.iter().all(|&s| s < 4));
        for (&session, &shard) in sessions.iter().zip(&shards) {
            assert_eq!(server.session_shard(session), shard);
        }
        // The hash spreads 32 ordinals over more than one shard.
        let mut counts = [0usize; 4];
        for &s in &shards {
            counts[s] += 1;
        }
        assert!(counts.iter().filter(|&&c| c > 0).count() > 1, "all on one shard: {counts:?}");
        // Decisions land regardless of which shard serves them, and the
        // per-shard row counters account for every request.
        for (i, &session) in sessions.iter().enumerate() {
            let decision = server.act(session, obs(i as f32 * 0.05)).expect("decision");
            assert_eq!(decision.values.len(), 3);
        }
        let per_shard = server.shard_rows();
        assert_eq!(per_shard.iter().sum::<usize>(), 32);
        assert_eq!(server.stats().rows, 32);
        for (shard, &rows) in per_shard.iter().enumerate() {
            assert_eq!(rows, counts[shard], "shard {shard} row count");
        }
    }

    #[test]
    fn tickets_poll_without_blocking() {
        let config = ServeConfig::default().with_flush_after(Duration::from_secs(5));
        let server = Server::start(policy(), &[4], config);
        let session = server.open_clean_session();
        let ticket = server.submit(session, obs(0.2)).expect("submit");
        // The batcher is stalled on the 5 s deadline: poll sees nothing.
        assert!(ticket.poll().is_none());
        server.shutdown(); // graceful drain serves the request
        let polled = loop {
            if let Some(result) = ticket.poll() {
                break result;
            }
            std::thread::yield_now();
        };
        assert!(polled.is_ok());
    }

    #[test]
    fn ingest_entry_points_match_explicit_submission_and_reject_bad_inputs() {
        use navft_nn::{QNetwork, QTensor};
        use navft_qformat::QFormat;

        let qnet = QNetwork::quantize(&policy(), QFormat::Q4_11);
        let expected_action = {
            let staged = QTensor::quantize(&obs(0.3), QFormat::Q4_11);
            argmax(qnet.forward(&staged).data())
        };
        let server = Server::start(qnet, &[4], ServeConfig::default());
        let session = server.open_clean_session();

        // Quantize-on-ingest serves the same decision as pre-quantized
        // submission (same encode, relocated to enqueue).
        let decision = server.act_obs(session, &obs(0.3)).expect("served decision");
        assert_eq!(decision.action, expected_action);

        // One-hot ingest writes backend-native words directly.
        let one_hot = server.act_one_hot(session, 2).expect("one-hot decision");
        let staged = {
            let mut buf = navft_nn::QTensor::zeros(&[4], QFormat::Q4_11);
            buf.words_mut()[2] = navft_qformat::QValue::quantize(1.0, QFormat::Q4_11).raw();
            buf
        };
        assert_eq!(one_hot.action, argmax(server.network().forward(&staged).data()));

        assert_eq!(
            server.act_obs(session, &obs(0.0).reshape(&[2, 2])).expect_err("shape"),
            ServeError::BadShape
        );
        assert_eq!(
            server.act_one_hot(session, 4).expect_err("state out of range"),
            ServeError::BadShape
        );
        assert_eq!(
            server.submit_one_hot(SessionId(9), 0).expect_err("no session"),
            ServeError::UnknownSession
        );

        // Served buffers were recycled into the shard's ingest pool.
        assert!(!server.shared.shards[0].pool.lock().expect("pool lock").is_empty());
    }

    #[test]
    fn submissions_after_shutdown_are_refused() {
        let server = Server::start(policy(), &[4], ServeConfig::default());
        let session = server.open_clean_session();
        {
            let mut queue = server.shared.shards[0].queue.lock().expect("queue lock");
            queue.shutdown = true;
        }
        let (err, _) = server.submit(session, obs(0.0)).expect_err("shutting down");
        assert_eq!(err, ServeError::ShuttingDown);
    }
}

//! The serving daemon: session registry, bounded request queue, and the
//! dynamic batcher worker.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use navft_nn::{argmax, DynRowHooks, Element, EngineConfig, HooksFor, NetworkBase, NoHooks};
use navft_nn::{Scratch, TensorBase};
use navft_rl::EvalElement;

/// Configuration of a [`Server`]'s dynamic batcher and queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Largest number of requests coalesced into one engine sweep.
    pub max_batch: usize,
    /// Pending-request bound beyond which [`Server::submit`] rejects with
    /// [`ServeError::Busy`].
    pub queue_capacity: usize,
    /// How long the batcher waits for more requests after the oldest pending
    /// one before flushing a partial batch.
    pub flush_after: Duration,
    /// Engine configuration of the batched sweeps (threads, kernel choice) —
    /// explicit, so concurrent servers and tests in one process cannot
    /// observe each other's settings.
    pub engine: EngineConfig,
}

impl Default for ServeConfig {
    /// Batches of up to 64 rows, a 256-request queue, a 200 µs flush
    /// deadline, the default (serial, SIMD-dispatched) engine.
    fn default() -> Self {
        ServeConfig {
            max_batch: 64,
            queue_capacity: 256,
            flush_after: Duration::from_micros(200),
            engine: EngineConfig::default(),
        }
    }
}

impl ServeConfig {
    /// Returns the config with the coalescing bound set (clamped to ≥ 1).
    pub fn with_max_batch(mut self, max_batch: usize) -> ServeConfig {
        self.max_batch = max_batch.max(1);
        self
    }

    /// Returns the config with the queue bound set (clamped to ≥ 1).
    pub fn with_queue_capacity(mut self, capacity: usize) -> ServeConfig {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Returns the config with the partial-batch flush deadline set.
    pub fn with_flush_after(mut self, flush_after: Duration) -> ServeConfig {
        self.flush_after = flush_after;
        self
    }

    /// Returns the config with the engine configuration set.
    pub fn with_engine(mut self, engine: EngineConfig) -> ServeConfig {
        self.engine = engine;
        self
    }
}

/// Why the server declined a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeError {
    /// The bounded queue is full — back off and retry.
    Busy,
    /// The server is draining towards shutdown; no new requests.
    ShuttingDown,
    /// The session does not exist (never opened, or already closed).
    UnknownSession,
    /// The session already has a request in flight (one per session).
    InFlight,
    /// The observation's shape does not match the served policy's input.
    BadShape,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match self {
            ServeError::Busy => "request queue is full",
            ServeError::ShuttingDown => "server is shutting down",
            ServeError::UnknownSession => "unknown session",
            ServeError::InFlight => "session already has a request in flight",
            ServeError::BadShape => "observation shape does not match the policy input",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for ServeError {}

/// The served outcome of one `act()` request: the greedy action plus the
/// policy's output row in the backend's storage representation.
#[derive(Debug, Clone, PartialEq)]
pub struct Decision<W: Element> {
    /// Argmax over the policy's final layer.
    pub action: usize,
    /// The final layer's values for this request's batch row.
    pub values: Vec<W>,
}

/// Handle to an open session of a [`Server`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SessionId(usize);

/// A pending reply to a submitted request; resolves via [`Ticket::wait`].
pub struct Ticket<W: Element> {
    rx: mpsc::Receiver<Result<Decision<W>, ServeError>>,
}

impl<W: Element> std::fmt::Debug for Ticket<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ticket").finish_non_exhaustive()
    }
}

impl<W: Element> Ticket<W> {
    /// Blocks until the batcher serves this request (or refuses it).
    pub fn wait(self) -> Result<Decision<W>, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::ShuttingDown))
    }
}

/// Counters of a server's lifetime activity (see [`Server::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeStats {
    /// Requests served (batch rows swept through the engine).
    pub rows: usize,
    /// Engine sweeps run (batches flushed).
    pub batches: usize,
    /// Submissions rejected with [`ServeError::Busy`].
    pub rejected: usize,
    /// Largest batch coalesced so far.
    pub max_rows_per_batch: usize,
}

/// The channel half a batcher sweep answers a request on.
type ReplySender<W> = mpsc::Sender<Result<Decision<W>, ServeError>>;

struct SessionState<W: Element> {
    /// The session's forward hooks. `None` only while the batcher borrows
    /// them for a sweep (the slot's `in_flight` flag is set for that span).
    hooks: Option<Box<dyn HooksFor<W> + Send>>,
    in_flight: bool,
}

struct Request<W: Element> {
    session: SessionId,
    input: TensorBase<W>,
    reply: ReplySender<W>,
}

struct QueueState<W: Element> {
    pending: VecDeque<Request<W>>,
    /// When the oldest pending request was enqueued — the flush deadline's
    /// anchor. `None` while the queue is empty.
    oldest: Option<Instant>,
    shutdown: bool,
}

struct Shared<W: Element> {
    network: NetworkBase<W>,
    input_shape: Vec<usize>,
    config: ServeConfig,
    registry: Mutex<Vec<Option<SessionState<W>>>>,
    queue: Mutex<QueueState<W>>,
    /// Recycled input buffers for the quantize-on-ingest entry points
    /// ([`Server::submit_obs`] and friends): served requests return their
    /// tensors here, so steady-state ingest allocates nothing. Bounded by
    /// `queue_capacity` — the most inputs that can be in flight at once.
    pool: Mutex<Vec<TensorBase<W>>>,
    wake: Condvar,
    rows: AtomicUsize,
    batches: AtomicUsize,
    rejected: AtomicUsize,
    max_rows_per_batch: AtomicUsize,
}

/// A policy-serving daemon: one policy, many sessions, one dynamic-batcher
/// worker thread coalescing concurrent requests into batched engine sweeps.
///
/// See the [crate docs](crate) for the architecture. Dropping the server
/// drains every queued request, then joins the worker.
pub struct Server<W: Element> {
    shared: Arc<Shared<W>>,
    worker: Option<JoinHandle<()>>,
}

impl<W: Element> Server<W> {
    /// Starts a server for `network`, whose sessions submit observations of
    /// `input_shape`, and spawns the batcher worker.
    pub fn start(network: NetworkBase<W>, input_shape: &[usize], config: ServeConfig) -> Server<W> {
        assert!(config.max_batch >= 1, "max_batch must be at least 1");
        assert!(config.queue_capacity >= 1, "queue_capacity must be at least 1");
        let shared = Arc::new(Shared {
            network,
            input_shape: input_shape.to_vec(),
            config,
            registry: Mutex::new(Vec::new()),
            queue: Mutex::new(QueueState {
                pending: VecDeque::new(),
                oldest: None,
                shutdown: false,
            }),
            pool: Mutex::new(Vec::new()),
            wake: Condvar::new(),
            rows: AtomicUsize::new(0),
            batches: AtomicUsize::new(0),
            rejected: AtomicUsize::new(0),
            max_rows_per_batch: AtomicUsize::new(0),
        });
        let worker_shared = Arc::clone(&shared);
        let worker = std::thread::Builder::new()
            .name("navft-serve-batcher".into())
            .spawn(move || worker_loop(worker_shared))
            .expect("spawn batcher worker");
        Server { shared, worker: Some(worker) }
    }

    /// The served policy.
    pub fn network(&self) -> &NetworkBase<W> {
        &self.shared.network
    }

    /// The observation shape every submission must match.
    pub fn input_shape(&self) -> &[usize] {
        &self.shared.input_shape
    }

    /// Opens a session carrying `hooks`, which observe (and may corrupt or
    /// scrub) every forward pass this session's requests ride in — the
    /// per-tenant fault-injection and mitigation surface.
    pub fn open_session(&self, hooks: Box<dyn HooksFor<W> + Send>) -> SessionId {
        let mut registry = self.shared.registry.lock().expect("registry lock");
        let state = SessionState { hooks: Some(hooks), in_flight: false };
        match registry.iter().position(|slot| slot.is_none()) {
            Some(index) => {
                registry[index] = Some(state);
                SessionId(index)
            }
            None => {
                registry.push(Some(state));
                SessionId(registry.len() - 1)
            }
        }
    }

    /// Opens a session with no hooks (a clean tenant).
    pub fn open_clean_session(&self) -> SessionId
    where
        NoHooks: HooksFor<W>,
    {
        self.open_session(Box::new(NoHooks))
    }

    /// Closes a session. Fails with [`ServeError::InFlight`] while the
    /// session has an unserved request.
    pub fn close_session(&self, session: SessionId) -> Result<(), ServeError> {
        let mut registry = self.shared.registry.lock().expect("registry lock");
        match registry.get_mut(session.0) {
            Some(slot) => match slot {
                Some(state) if state.in_flight => Err(ServeError::InFlight),
                Some(_) => {
                    *slot = None;
                    Ok(())
                }
                None => Err(ServeError::UnknownSession),
            },
            None => Err(ServeError::UnknownSession),
        }
    }

    /// Number of currently open sessions.
    pub fn session_count(&self) -> usize {
        self.shared.registry.lock().expect("registry lock").iter().flatten().count()
    }

    /// Enqueues one observation for `session` and returns a [`Ticket`] that
    /// resolves when the batcher serves it.
    ///
    /// On rejection the observation is handed back alongside the error, so a
    /// [`ServeError::Busy`] caller can retry without re-building it. Each
    /// session may have at most one request in flight.
    pub fn submit(
        &self,
        session: SessionId,
        input: TensorBase<W>,
    ) -> Result<Ticket<W>, (ServeError, TensorBase<W>)> {
        if input.shape() != self.shared.input_shape.as_slice() {
            return Err((ServeError::BadShape, input));
        }
        {
            let mut registry = self.shared.registry.lock().expect("registry lock");
            match registry.get_mut(session.0).and_then(|slot| slot.as_mut()) {
                None => return Err((ServeError::UnknownSession, input)),
                Some(state) if state.in_flight => return Err((ServeError::InFlight, input)),
                Some(state) => state.in_flight = true,
            }
        }
        let (reply, rx) = mpsc::channel();
        let mut queue = self.shared.queue.lock().expect("queue lock");
        if queue.shutdown {
            drop(queue);
            self.clear_in_flight(session);
            return Err((ServeError::ShuttingDown, input));
        }
        if queue.pending.len() >= self.shared.config.queue_capacity {
            drop(queue);
            self.shared.rejected.fetch_add(1, Ordering::Relaxed);
            self.clear_in_flight(session);
            return Err((ServeError::Busy, input));
        }
        if queue.pending.is_empty() {
            queue.oldest = Some(Instant::now());
        }
        queue.pending.push_back(Request { session, input, reply });
        self.shared.wake.notify_one();
        drop(queue);
        Ok(Ticket { rx })
    }

    /// Submits one observation and blocks for the decision, retrying
    /// (with a scheduler yield) while the queue is full.
    pub fn act(&self, session: SessionId, input: TensorBase<W>) -> Result<Decision<W>, ServeError> {
        let mut input = input;
        loop {
            match self.submit(session, input) {
                Ok(ticket) => return ticket.wait(),
                Err((ServeError::Busy, returned)) => {
                    input = returned;
                    std::thread::yield_now();
                }
                Err((error, _)) => return Err(error),
            }
        }
    }

    /// Number of requests waiting in the queue right now.
    pub fn pending(&self) -> usize {
        self.shared.queue.lock().expect("queue lock").pending.len()
    }

    /// Lifetime activity counters.
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            rows: self.shared.rows.load(Ordering::Relaxed),
            batches: self.shared.batches.load(Ordering::Relaxed),
            rejected: self.shared.rejected.load(Ordering::Relaxed),
            max_rows_per_batch: self.shared.max_rows_per_batch.load(Ordering::Relaxed),
        }
    }

    /// Stops accepting new requests, drains every queued one, and joins the
    /// worker. (Dropping the server does the same.)
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn clear_in_flight(&self, session: SessionId) {
        let mut registry = self.shared.registry.lock().expect("registry lock");
        if let Some(Some(state)) = registry.get_mut(session.0).map(|slot| slot.as_mut()) {
            state.in_flight = false;
        }
    }

    fn stop(&mut self) {
        {
            let mut queue = self.shared.queue.lock().expect("queue lock");
            queue.shutdown = true;
        }
        self.shared.wake.notify_all();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

impl<W: EvalElement> Server<W> {
    /// Pops a recycled input buffer, or allocates one on a cold pool.
    fn ingest_buffer(&self) -> TensorBase<W> {
        let recycled = self.shared.pool.lock().expect("pool lock").pop();
        recycled.unwrap_or_else(|| W::input_buffer(&self.shared.input_shape, &self.shared.network))
    }

    fn recycle(&self, input: TensorBase<W>) {
        let mut pool = self.shared.pool.lock().expect("pool lock");
        if pool.len() < self.shared.config.queue_capacity {
            pool.push(input);
        }
    }

    /// Enqueues an `f32` observation for `session`, quantizing it into the
    /// backend's storage representation **once, here at ingest** — the
    /// batcher sweep then reads the staged words directly. Buffers come
    /// from (and return to) an internal pool, so the steady state neither
    /// allocates nor re-encodes.
    pub fn submit_obs(
        &self,
        session: SessionId,
        observation: &navft_nn::Tensor,
    ) -> Result<Ticket<W>, ServeError> {
        if observation.shape() != self.shared.input_shape.as_slice() {
            return Err(ServeError::BadShape);
        }
        let mut input = self.ingest_buffer();
        W::encode_into(observation, &mut input);
        match self.submit(session, input) {
            Ok(ticket) => Ok(ticket),
            Err((error, returned)) => {
                self.recycle(returned);
                Err(error)
            }
        }
    }

    /// Enqueues a one-hot observation of `state` for `session`, written
    /// directly in the backend's storage representation — discrete clients
    /// never build (or clone) an `f32` tensor at all.
    pub fn submit_one_hot(
        &self,
        session: SessionId,
        state: usize,
    ) -> Result<Ticket<W>, ServeError> {
        let mut input = self.ingest_buffer();
        if state >= input.len() {
            self.recycle(input);
            return Err(ServeError::BadShape);
        }
        W::one_hot(state, &mut input);
        match self.submit(session, input) {
            Ok(ticket) => Ok(ticket),
            Err((error, returned)) => {
                self.recycle(returned);
                Err(error)
            }
        }
    }

    /// [`Server::submit_obs`] + blocking wait, retrying (with a scheduler
    /// yield) while the queue is full. The observation is quantized once up
    /// front; Busy retries resubmit the already-encoded buffer.
    pub fn act_obs(
        &self,
        session: SessionId,
        observation: &navft_nn::Tensor,
    ) -> Result<Decision<W>, ServeError> {
        if observation.shape() != self.shared.input_shape.as_slice() {
            return Err(ServeError::BadShape);
        }
        let mut input = self.ingest_buffer();
        W::encode_into(observation, &mut input);
        self.act_staged(session, input)
    }

    /// [`Server::submit_one_hot`] + blocking wait, retrying while the queue
    /// is full.
    pub fn act_one_hot(&self, session: SessionId, state: usize) -> Result<Decision<W>, ServeError> {
        let mut input = self.ingest_buffer();
        if state >= input.len() {
            self.recycle(input);
            return Err(ServeError::BadShape);
        }
        W::one_hot(state, &mut input);
        self.act_staged(session, input)
    }

    fn act_staged(
        &self,
        session: SessionId,
        input: TensorBase<W>,
    ) -> Result<Decision<W>, ServeError> {
        let mut input = input;
        loop {
            match self.submit(session, input) {
                Ok(ticket) => return ticket.wait(),
                Err((ServeError::Busy, returned)) => {
                    input = returned;
                    std::thread::yield_now();
                }
                Err((error, returned)) => {
                    self.recycle(returned);
                    return Err(error);
                }
            }
        }
    }
}

impl<W: Element> Drop for Server<W> {
    fn drop(&mut self) {
        self.stop();
    }
}

/// The batcher worker: wait for a full batch or a flush deadline, drain up
/// to `max_batch` requests, sweep them through the engine, reply per row.
fn worker_loop<W: Element>(shared: Arc<Shared<W>>) {
    let mut scratch = Scratch::new();
    loop {
        let batch: Vec<Request<W>> = {
            let mut queue = shared.queue.lock().expect("queue lock");
            loop {
                let full = queue.pending.len() >= shared.config.max_batch;
                // On shutdown, flush whatever is queued (graceful drain)
                // and exit once the queue is empty.
                if full || (queue.shutdown && !queue.pending.is_empty()) {
                    break;
                }
                if queue.shutdown {
                    return;
                }
                if queue.pending.is_empty() {
                    queue = shared.wake.wait(queue).expect("queue lock");
                    continue;
                }
                let waited = queue.oldest.map(|t| t.elapsed()).unwrap_or(Duration::ZERO);
                if waited >= shared.config.flush_after {
                    break;
                }
                let remaining = shared.config.flush_after - waited;
                let (guard, _) = shared.wake.wait_timeout(queue, remaining).expect("queue lock");
                queue = guard;
            }
            let take = queue.pending.len().min(shared.config.max_batch);
            let batch: Vec<Request<W>> = queue.pending.drain(..take).collect();
            queue.oldest = if queue.pending.is_empty() { None } else { Some(Instant::now()) };
            batch
        };
        process_batch(&shared, &mut scratch, batch);
    }
}

fn process_batch<W: Element>(shared: &Shared<W>, scratch: &mut Scratch<W>, batch: Vec<Request<W>>) {
    // Take each session's hook box out of the registry for the sweep; the
    // in-flight flag (set at submit) keeps the slot reserved meanwhile, so
    // no aliasing is possible. A session can only vanish here if the
    // registry raced a close — refuse its request rather than serving it
    // hookless.
    let mut inputs: Vec<TensorBase<W>> = Vec::with_capacity(batch.len());
    let mut rows: Vec<(SessionId, ReplySender<W>)> = Vec::with_capacity(batch.len());
    let mut hooks: Vec<Box<dyn HooksFor<W> + Send>> = Vec::with_capacity(batch.len());
    {
        let mut registry = shared.registry.lock().expect("registry lock");
        for request in batch {
            let taken = registry
                .get_mut(request.session.0)
                .and_then(|slot| slot.as_mut())
                .and_then(|state| state.hooks.take());
            match taken {
                Some(hook) => {
                    inputs.push(request.input);
                    rows.push((request.session, request.reply));
                    hooks.push(hook);
                }
                None => {
                    let _ = request.reply.send(Err(ServeError::UnknownSession));
                }
            }
        }
    }

    let mut decisions: Vec<Decision<W>> = Vec::with_capacity(inputs.len());
    if !inputs.is_empty() {
        {
            let row_refs: Vec<&mut dyn HooksFor<W>> =
                hooks.iter_mut().map(|hook| &mut **hook as &mut dyn HooksFor<W>).collect();
            let mut per_row = DynRowHooks::new(row_refs);
            shared.network.forward_batch_into_cfg(
                &inputs,
                scratch,
                &mut per_row,
                shared.config.engine,
            );
        }
        for row in 0..rows.len() {
            let values = scratch.row(row);
            decisions.push(Decision { action: argmax(values), values: values.to_vec() });
        }
        shared.rows.fetch_add(inputs.len(), Ordering::Relaxed);
        shared.batches.fetch_add(1, Ordering::Relaxed);
        shared.max_rows_per_batch.fetch_max(inputs.len(), Ordering::Relaxed);
    }

    // Recycle the served input tensors so the ingest entry points can reuse
    // them instead of allocating. Bounded by the queue capacity — the most
    // buffers that can ever be in flight concurrently.
    {
        let mut pool = shared.pool.lock().expect("pool lock");
        for input in inputs {
            if pool.len() >= shared.config.queue_capacity {
                break;
            }
            pool.push(input);
        }
    }

    // Return the hook boxes and release the per-session in-flight slots
    // *before* replying: once a client sees its decision it may immediately
    // resubmit, so the slot must already be free by then.
    {
        let mut registry = shared.registry.lock().expect("registry lock");
        for ((session, _), hook) in rows.iter().zip(hooks) {
            if let Some(Some(state)) = registry.get_mut(session.0).map(|slot| slot.as_mut()) {
                state.hooks = Some(hook);
                state.in_flight = false;
            }
        }
    }
    for ((_, reply), decision) in rows.into_iter().zip(decisions) {
        let _ = reply.send(Ok(decision));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use navft_nn::{mlp, Tensor};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn policy() -> navft_nn::Network {
        let mut rng = SmallRng::seed_from_u64(0);
        mlp(&[4, 8, 3], &mut rng)
    }

    fn obs(v: f32) -> Tensor {
        Tensor::full(&[4], v)
    }

    #[test]
    fn served_decision_matches_the_library_forward() {
        let net = policy();
        let expected = net.forward(&obs(0.3)).argmax();
        let server = Server::start(net, &[4], ServeConfig::default());
        let session = server.open_clean_session();
        let decision = server.act(session, obs(0.3)).expect("decision");
        assert_eq!(decision.action, expected);
        assert_eq!(decision.values.len(), 3);
    }

    #[test]
    fn unknown_sessions_bad_shapes_and_double_submits_are_refused() {
        let server = Server::start(policy(), &[4], ServeConfig::default());
        let (err, _) = server.submit(SessionId(3), obs(0.0)).expect_err("no session");
        assert_eq!(err, ServeError::UnknownSession);

        let session = server.open_clean_session();
        let (err, _) = server.submit(session, Tensor::full(&[5], 0.0)).expect_err("wrong shape");
        assert_eq!(err, ServeError::BadShape);

        // Stall the batcher with a long flush deadline so the first request
        // stays in flight while the second arrives.
        let server = Server::start(
            policy(),
            &[4],
            ServeConfig::default().with_flush_after(Duration::from_secs(5)),
        );
        let session = server.open_clean_session();
        let ticket = server.submit(session, obs(0.1)).expect("first submit");
        let (err, _) = server.submit(session, obs(0.2)).expect_err("in flight");
        assert_eq!(err, ServeError::InFlight);
        assert_eq!(server.close_session(session).expect_err("busy"), ServeError::InFlight);
        drop(server); // graceful drain resolves the ticket
        assert!(ticket.wait().is_ok());
    }

    #[test]
    fn full_queue_rejects_with_busy_and_drains_on_shutdown() {
        let config = ServeConfig::default()
            .with_max_batch(64)
            .with_queue_capacity(2)
            .with_flush_after(Duration::from_secs(5));
        let server = Server::start(policy(), &[4], config);
        let a = server.open_clean_session();
        let b = server.open_clean_session();
        let c = server.open_clean_session();
        let ta = server.submit(a, obs(0.1)).expect("first");
        let tb = server.submit(b, obs(0.2)).expect("second");
        let (err, returned) = server.submit(c, obs(0.3)).expect_err("queue full");
        assert_eq!(err, ServeError::Busy);
        assert_eq!(returned.data(), obs(0.3).data(), "rejected input is handed back");
        assert_eq!(server.stats().rejected, 1);
        // The rejected session is immediately usable again after drain.
        server.shutdown();
        assert!(ta.wait().is_ok());
        assert!(tb.wait().is_ok());
    }

    #[test]
    fn batcher_coalesces_full_batches_immediately() {
        let config = ServeConfig::default()
            .with_max_batch(4)
            .with_queue_capacity(64)
            .with_flush_after(Duration::from_secs(5));
        let net = policy();
        let expected: Vec<usize> =
            (0..8).map(|i| net.forward(&obs(i as f32 * 0.1)).argmax()).collect();
        let server = Server::start(net, &[4], config);
        let sessions: Vec<SessionId> = (0..8).map(|_| server.open_clean_session()).collect();
        // 8 pending requests with a 5 s deadline: only full batches of 4 can
        // have flushed them.
        let tickets: Vec<Ticket<f32>> = sessions
            .iter()
            .enumerate()
            .map(|(i, &s)| server.submit(s, obs(i as f32 * 0.1)).expect("submit"))
            .collect();
        for (ticket, want) in tickets.into_iter().zip(expected) {
            assert_eq!(ticket.wait().expect("decision").action, want);
        }
        let stats = server.stats();
        assert_eq!(stats.rows, 8);
        assert_eq!(stats.max_rows_per_batch, 4);
        assert_eq!(stats.batches, 2);
    }

    #[test]
    fn partial_batches_flush_after_the_deadline() {
        let config =
            ServeConfig::default().with_max_batch(64).with_flush_after(Duration::from_millis(1));
        let server = Server::start(policy(), &[4], config);
        let session = server.open_clean_session();
        let decision = server.act(session, obs(0.4)).expect("decision");
        assert_eq!(decision.values.len(), 3);
        assert_eq!(server.stats().max_rows_per_batch, 1);
    }

    #[test]
    fn sessions_reuse_freed_slots() {
        let server = Server::start(policy(), &[4], ServeConfig::default());
        let a = server.open_clean_session();
        let _b = server.open_clean_session();
        server.close_session(a).expect("close");
        assert_eq!(server.session_count(), 1);
        let c = server.open_clean_session();
        assert_eq!(c, a, "freed slot is reused");
        assert_eq!(server.session_count(), 2);
        assert_eq!(server.close_session(a), Ok(()));
        assert_eq!(server.close_session(a), Err(ServeError::UnknownSession));
    }

    #[test]
    fn ingest_entry_points_match_explicit_submission_and_reject_bad_inputs() {
        use navft_nn::{QNetwork, QTensor};
        use navft_qformat::QFormat;

        let qnet = QNetwork::quantize(&policy(), QFormat::Q4_11);
        let expected_action = {
            let staged = QTensor::quantize(&obs(0.3), QFormat::Q4_11);
            argmax(qnet.forward(&staged).data())
        };
        let server = Server::start(qnet, &[4], ServeConfig::default());
        let session = server.open_clean_session();

        // Quantize-on-ingest serves the same decision as pre-quantized
        // submission (same encode, relocated to enqueue).
        let decision = server.act_obs(session, &obs(0.3)).expect("served decision");
        assert_eq!(decision.action, expected_action);

        // One-hot ingest writes backend-native words directly.
        let one_hot = server.act_one_hot(session, 2).expect("one-hot decision");
        let staged = {
            let mut buf = navft_nn::QTensor::zeros(&[4], QFormat::Q4_11);
            buf.words_mut()[2] = navft_qformat::QValue::quantize(1.0, QFormat::Q4_11).raw();
            buf
        };
        assert_eq!(one_hot.action, argmax(server.network().forward(&staged).data()));

        assert_eq!(
            server.act_obs(session, &obs(0.0).reshape(&[2, 2])).expect_err("shape"),
            ServeError::BadShape
        );
        assert_eq!(
            server.act_one_hot(session, 4).expect_err("state out of range"),
            ServeError::BadShape
        );
        assert_eq!(
            server.submit_one_hot(SessionId(9), 0).expect_err("no session"),
            ServeError::UnknownSession
        );

        // Served buffers were recycled into the ingest pool.
        assert!(!server.shared.pool.lock().expect("pool lock").is_empty());
    }

    #[test]
    fn submissions_after_shutdown_are_refused() {
        let server = Server::start(policy(), &[4], ServeConfig::default());
        let session = server.open_clean_session();
        {
            let mut queue = server.shared.queue.lock().expect("queue lock");
            queue.shutdown = true;
        }
        let (err, _) = server.submit(session, obs(0.0)).expect_err("shutting down");
        assert_eq!(err, ServeError::ShuttingDown);
    }
}

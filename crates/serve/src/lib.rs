//! A multi-tenant policy-serving daemon over the generic inference engine.
//!
//! The paper evaluates fault-injected navigation policies offline, episode by
//! episode; the north star is serving those policies to many concurrent
//! users. This crate is that serving layer:
//!
//! * [`Server`] owns one policy of any numeric backend and
//!   [`ServeConfig::workers`] **shards**: each shard is an independent
//!   service domain with its own session registry, bounded request queue,
//!   dynamic-batcher worker thread, scratch arena and ingest buffer pool.
//!   A session is pinned to one shard when opened (stable session-id hash)
//!   and never migrates, so a session's trace depends only on its own
//!   request order — per-session determinism is preserved by construction
//!   at any worker count.
//! * Each open session carries its own forward hooks (fault injection,
//!   range-guard scrubbing — see [`SessionHook`]) and at most one in-flight
//!   request.
//! * A **dynamic batcher per shard** coalesces pending [`Server::submit`]
//!   requests — up to [`ServeConfig::max_batch`], or whatever arrived
//!   within [`ServeConfig::flush_after`] of the oldest pending request —
//!   into one zero-alloc `forward_batch_into_cfg` sweep. Per-session hooks
//!   are routed to their batch row through [`navft_nn::DynRowHooks`], so a
//!   served request observes the *exact* hook call sequence of a
//!   single-sample library forward: action traces are bit-identical to the
//!   library-only path under any coalescing schedule × worker count.
//! * A **bounded queue per shard** provides backpressure: beyond
//!   [`ServeConfig::queue_capacity`] pending requests on a session's
//!   shard, [`Server::submit`] rejects with [`ServeError::Busy`] and hands
//!   the input back for a retry ([`Server::act`] retries internally).
//!   Dropping or shutting the server down drains every shard's queued
//!   requests before joining all workers.
//! * **Quantize-on-ingest** entry points ([`Server::submit_obs`],
//!   [`Server::submit_one_hot`] and their blocking [`Server::act_obs`] /
//!   [`Server::act_one_hot`] forms) encode `f32` observations into the
//!   served backend's storage representation exactly once at enqueue, into
//!   shard-pooled buffers recycled from served requests — integer backends
//!   never round-trip through `f32` on the hot path, and steady-state
//!   ingest performs no allocation.
//!
//! [`client`] ships the lockstep grid-world and drone episode drivers the
//! determinism suite uses, plus a bursty open-loop generator
//! ([`client::drive_bursty_load`]) with per-session Poisson-style arrival
//! jitter and ramp/spike phases; [`LatencyWindow`] aggregates request
//! latencies into the p50/p99/p99.9 + rows/s summaries the bench harness
//! writes to `BENCH_<rev>.json`.
//!
//! # Examples
//!
//! ```
//! use navft_nn::mlp;
//! use navft_serve::{ServeConfig, Server, SessionHook};
//! use rand::{rngs::SmallRng, SeedableRng};
//!
//! let mut rng = SmallRng::seed_from_u64(0);
//! let policy = mlp(&[4, 8, 2], &mut rng);
//! let server = Server::start(policy, &[4], ServeConfig::default());
//! let session = server.open_session(Box::new(SessionHook::new(None, 7)));
//! let decision = server
//!     .act(session, navft_nn::Tensor::full(&[4], 0.25))
//!     .expect("served decision");
//! assert!(decision.action < 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;

mod metrics;
mod server;
mod session;

pub use client::{
    drive_bursty_load, drive_discrete_episodes, drive_vision_episodes, BurstyConfig, LoadOutcome,
};
pub use metrics::LatencyWindow;
pub use server::{Decision, ServeConfig, ServeError, ServeStats, Server, SessionId, Ticket};
pub use session::SessionHook;

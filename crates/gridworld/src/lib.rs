//! The Grid World navigation environment of §4.1 of the paper.
//!
//! The environment is an `n × n` grid of `source` / `goal` / `hell` / `free`
//! cells. The agent starts at the source, takes one of four movement actions
//! per step, receives +1 for reaching the goal, −1 for stepping into a hell
//! cell and 0 otherwise, and the episode ends on either terminal cell.
//!
//! Three preset 10×10 layouts reproduce the obstacle densities of Fig. 1
//! ([`ObstacleDensity`]); [`GridWorld::random`] generates additional solvable
//! layouts for wider testing.
//!
//! The environment implements
//! [`DiscreteEnvironment`](navft_rl::DiscreteEnvironment), so it plugs
//! directly into the tabular and NN-based training loops of `navft-rl`.
//!
//! # Examples
//!
//! ```
//! use navft_gridworld::{GridWorld, ObstacleDensity};
//! use navft_rl::{trainer, FaultPlan, TabularAgent, DiscreteEnvironment};
//! use rand::{rngs::SmallRng, SeedableRng};
//!
//! let mut world = GridWorld::with_density(ObstacleDensity::Low);
//! let mut agent = TabularAgent::for_grid_world(world.num_states(), world.num_actions());
//! let mut rng = SmallRng::seed_from_u64(1);
//! let trace = trainer::train_tabular(
//!     &mut world,
//!     &mut agent,
//!     trainer::TrainingConfig::new(50, 100),
//!     &FaultPlan::none(),
//!     &mut rng,
//!     trainer::no_mitigation(),
//! );
//! assert_eq!(trace.len(), 50);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod layouts;

mod grid;

pub use grid::{Action, Cell, GridWorld, ObstacleDensity};

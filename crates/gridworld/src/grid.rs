use std::collections::VecDeque;
use std::fmt;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use navft_rl::{DiscreteEnvironment, DiscreteTransition};

/// The content of one Grid World cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cell {
    /// Traversable free space.
    Free,
    /// The agent's start cell.
    Source,
    /// The goal cell (reward +1, episode ends).
    Goal,
    /// An obstacle / trap cell (reward −1, episode ends).
    Hell,
}

/// The four Grid World actions, in the order used for action indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Action {
    /// Decrease the row index.
    MoveUp,
    /// Increase the row index.
    MoveDown,
    /// Decrease the column index.
    MoveLeft,
    /// Increase the column index.
    MoveRight,
}

impl Action {
    /// All actions in index order.
    pub const ALL: [Action; 4] =
        [Action::MoveUp, Action::MoveDown, Action::MoveLeft, Action::MoveRight];

    /// The action with index `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 4`.
    pub fn from_index(index: usize) -> Action {
        Action::ALL[index]
    }

    /// The `(row, column)` displacement of the action.
    pub fn delta(&self) -> (isize, isize) {
        match self {
            Action::MoveUp => (-1, 0),
            Action::MoveDown => (1, 0),
            Action::MoveLeft => (0, -1),
            Action::MoveRight => (0, 1),
        }
    }
}

/// The `n × n` Grid World navigation environment of §4.1.
///
/// Each cell is `source`, `goal`, `hell` or `free`; the agent starts at the
/// source and must reach the goal while avoiding hell cells. Rewards are +1
/// (goal), −1 (hell) and 0 (free), and both goal and hell cells terminate the
/// episode. Moving off the grid leaves the agent in place.
///
/// # Examples
///
/// ```
/// use navft_gridworld::{GridWorld, ObstacleDensity};
/// use navft_rl::DiscreteEnvironment;
///
/// let mut world = GridWorld::with_density(ObstacleDensity::Middle);
/// assert_eq!(world.num_states(), 100);
/// assert_eq!(world.num_actions(), 4);
/// let start = world.reset();
/// assert_eq!(start, world.source_state());
/// ```
#[derive(Debug, Clone)]
pub struct GridWorld {
    n: usize,
    cells: Vec<Cell>,
    source: usize,
    goal: usize,
    agent: usize,
    exploring_starts: Option<SmallRng>,
}

/// The three obstacle-density settings of Fig. 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ObstacleDensity {
    /// Few obstacles (Fig. 1a).
    Low,
    /// Moderate obstacles (Fig. 1b) — the setting most results are reported
    /// on.
    Middle,
    /// Dense obstacles (Fig. 1c).
    High,
}

impl ObstacleDensity {
    /// All density settings in increasing order.
    pub const ALL: [ObstacleDensity; 3] =
        [ObstacleDensity::Low, ObstacleDensity::Middle, ObstacleDensity::High];
}

impl fmt::Display for ObstacleDensity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ObstacleDensity::Low => "low",
            ObstacleDensity::Middle => "middle",
            ObstacleDensity::High => "high",
        })
    }
}

impl GridWorld {
    /// Builds a world from an ASCII map.
    ///
    /// Characters: `S` source, `G` goal, `#` hell/obstacle, `.` free. All rows
    /// must have the same length as the number of rows (the grid is square).
    ///
    /// # Panics
    ///
    /// Panics if the map is not square, or does not contain exactly one
    /// source and one goal.
    pub fn from_ascii(map: &[&str]) -> GridWorld {
        let n = map.len();
        assert!(n > 1, "grid must have at least two rows");
        let mut cells = Vec::with_capacity(n * n);
        let mut source = None;
        let mut goal = None;
        for (r, row) in map.iter().enumerate() {
            assert_eq!(row.len(), n, "row {r} must have {n} columns");
            for (c, ch) in row.chars().enumerate() {
                let cell = match ch {
                    'S' => {
                        assert!(source.is_none(), "map has more than one source");
                        source = Some(r * n + c);
                        Cell::Source
                    }
                    'G' => {
                        assert!(goal.is_none(), "map has more than one goal");
                        goal = Some(r * n + c);
                        Cell::Goal
                    }
                    '#' => Cell::Hell,
                    '.' => Cell::Free,
                    other => panic!("unknown map character {other:?}"),
                };
                cells.push(cell);
            }
        }
        let source = source.expect("map must contain a source 'S'");
        let goal = goal.expect("map must contain a goal 'G'");
        GridWorld { n, cells, source, goal, agent: source, exploring_starts: None }
    }

    /// The 10×10 layout with the given obstacle density (Fig. 1a/1b/1c).
    pub fn with_density(density: ObstacleDensity) -> GridWorld {
        GridWorld::from_ascii(&crate::layouts::layout(density))
    }

    /// Enables *exploring starts* for training: every [`reset`] places the
    /// agent on a uniformly random free cell instead of the source.
    ///
    /// Exploring starts are a standard way to guarantee state-space coverage
    /// for Q-learning on sparse-reward grids; evaluation environments should
    /// not enable them (success is always measured from the source).
    ///
    /// [`reset`]: navft_rl::DiscreteEnvironment::reset
    pub fn with_exploring_starts(mut self, seed: u64) -> GridWorld {
        self.exploring_starts = Some(SmallRng::seed_from_u64(seed));
        self
    }

    /// Generates a random solvable `n × n` world with roughly
    /// `obstacle_fraction` of the free cells turned into hell cells.
    ///
    /// The source is the top-left corner and the goal the bottom-right
    /// corner; layouts are re-drawn until a path exists.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `obstacle_fraction` is not in `[0, 0.9]`.
    pub fn random<R: Rng + ?Sized>(n: usize, obstacle_fraction: f64, rng: &mut R) -> GridWorld {
        assert!(n >= 2, "grid must be at least 2x2");
        assert!((0.0..=0.9).contains(&obstacle_fraction), "obstacle fraction must be in [0, 0.9]");
        loop {
            let mut cells = vec![Cell::Free; n * n];
            for cell in cells.iter_mut() {
                if rng.gen_bool(obstacle_fraction) {
                    *cell = Cell::Hell;
                }
            }
            cells[0] = Cell::Source;
            cells[n * n - 1] = Cell::Goal;
            let world = GridWorld {
                n,
                cells,
                source: 0,
                goal: n * n - 1,
                agent: 0,
                exploring_starts: None,
            };
            if world.has_path() {
                return world;
            }
        }
    }

    /// The grid's side length.
    pub fn size(&self) -> usize {
        self.n
    }

    /// The cell at state index `state`.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    pub fn cell(&self, state: usize) -> Cell {
        self.cells[state]
    }

    /// The state index of the source cell.
    pub fn source_state(&self) -> usize {
        self.source
    }

    /// The state index of the goal cell.
    pub fn goal_state(&self) -> usize {
        self.goal
    }

    /// The agent's current state index.
    pub fn agent_state(&self) -> usize {
        self.agent
    }

    /// Number of hell (obstacle) cells.
    pub fn obstacle_count(&self) -> usize {
        self.cells.iter().filter(|&&c| c == Cell::Hell).count()
    }

    /// Whether a hell-free path from source to goal exists (breadth-first
    /// search over free/source/goal cells).
    pub fn has_path(&self) -> bool {
        let mut visited = vec![false; self.cells.len()];
        let mut queue = VecDeque::new();
        visited[self.source] = true;
        queue.push_back(self.source);
        while let Some(state) = queue.pop_front() {
            if state == self.goal {
                return true;
            }
            let (r, c) = (state / self.n, state % self.n);
            for action in Action::ALL {
                let (dr, dc) = action.delta();
                let (nr, nc) = (r as isize + dr, c as isize + dc);
                if nr < 0 || nc < 0 || nr >= self.n as isize || nc >= self.n as isize {
                    continue;
                }
                let next = nr as usize * self.n + nc as usize;
                if !visited[next] && self.cells[next] != Cell::Hell {
                    visited[next] = true;
                    queue.push_back(next);
                }
            }
        }
        false
    }

    /// The length of the shortest hell-free path from source to goal, if one
    /// exists.
    pub fn shortest_path_len(&self) -> Option<usize> {
        let mut dist = vec![usize::MAX; self.cells.len()];
        let mut queue = VecDeque::new();
        dist[self.source] = 0;
        queue.push_back(self.source);
        while let Some(state) = queue.pop_front() {
            if state == self.goal {
                return Some(dist[state]);
            }
            let (r, c) = (state / self.n, state % self.n);
            for action in Action::ALL {
                let (dr, dc) = action.delta();
                let (nr, nc) = (r as isize + dr, c as isize + dc);
                if nr < 0 || nc < 0 || nr >= self.n as isize || nc >= self.n as isize {
                    continue;
                }
                let next = nr as usize * self.n + nc as usize;
                if dist[next] == usize::MAX && self.cells[next] != Cell::Hell {
                    dist[next] = dist[state] + 1;
                    queue.push_back(next);
                }
            }
        }
        None
    }

    /// Renders the grid as ASCII art (`S`, `G`, `#`, `.`, with the agent as
    /// `A` when it is not on the source).
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(self.n * (self.n + 1));
        for r in 0..self.n {
            for c in 0..self.n {
                let state = r * self.n + c;
                let ch = if state == self.agent && state != self.source {
                    'A'
                } else {
                    match self.cells[state] {
                        Cell::Free => '.',
                        Cell::Source => 'S',
                        Cell::Goal => 'G',
                        Cell::Hell => '#',
                    }
                };
                out.push(ch);
            }
            out.push('\n');
        }
        out
    }
}

impl DiscreteEnvironment for GridWorld {
    fn num_states(&self) -> usize {
        self.n * self.n
    }

    fn num_actions(&self) -> usize {
        Action::ALL.len()
    }

    fn reset(&mut self) -> usize {
        self.agent = match self.exploring_starts.as_mut() {
            None => self.source,
            Some(rng) => {
                let free: Vec<usize> = (0..self.cells.len())
                    .filter(|&i| matches!(self.cells[i], Cell::Free | Cell::Source))
                    .collect();
                free[rng.gen_range(0..free.len())]
            }
        };
        self.agent
    }

    fn step(&mut self, action: usize) -> DiscreteTransition {
        assert!(action < self.num_actions(), "action {action} out of range");
        let (r, c) = (self.agent / self.n, self.agent % self.n);
        let (dr, dc) = Action::from_index(action).delta();
        let (nr, nc) = (r as isize + dr, c as isize + dc);
        let next = if nr < 0 || nc < 0 || nr >= self.n as isize || nc >= self.n as isize {
            self.agent
        } else {
            nr as usize * self.n + nc as usize
        };
        self.agent = next;
        let (reward, terminal, reached_goal) = match self.cells[next] {
            Cell::Goal => (1.0, true, true),
            Cell::Hell => (-1.0, true, false),
            Cell::Free | Cell::Source => (0.0, false, false),
        };
        DiscreteTransition { next_state: next, reward, terminal, reached_goal }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn tiny() -> GridWorld {
        GridWorld::from_ascii(&["S.#", ".#.", "..G"])
    }

    #[test]
    fn ascii_parsing_locates_source_and_goal() {
        let world = tiny();
        assert_eq!(world.size(), 3);
        assert_eq!(world.source_state(), 0);
        assert_eq!(world.goal_state(), 8);
        assert_eq!(world.cell(2), Cell::Hell);
        assert_eq!(world.obstacle_count(), 2);
    }

    #[test]
    #[should_panic(expected = "must contain a source")]
    fn map_without_source_is_rejected() {
        let _ = GridWorld::from_ascii(&["..", ".G"]);
    }

    #[test]
    #[should_panic(expected = "unknown map character")]
    fn unknown_characters_are_rejected() {
        let _ = GridWorld::from_ascii(&["S?", ".G"]);
    }

    #[test]
    fn stepping_to_the_goal_terminates_with_reward() {
        let mut world = tiny();
        world.reset();
        world.step(1); // down
        world.step(1); // down
        let t = world.step(3); // right
        assert!(!t.terminal);
        let t = world.step(3); // right -> goal at (2,2)
        assert!(t.terminal);
        assert!(t.reached_goal);
        assert_eq!(t.reward, 1.0);
    }

    #[test]
    fn stepping_into_hell_fails_the_episode() {
        let mut world = tiny();
        world.reset();
        world.step(1); // down to (1,0)
        let t = world.step(3); // right into the (1,1) obstacle
        assert!(t.terminal);
        assert!(!t.reached_goal);
        assert_eq!(t.reward, -1.0);
    }

    #[test]
    fn moving_off_grid_keeps_the_agent_in_place() {
        let mut world = tiny();
        world.reset();
        let t = world.step(0); // up from the top row
        assert_eq!(t.next_state, world.source_state());
        assert!(!t.terminal);
        let t = world.step(2); // left from the left column
        assert_eq!(t.next_state, world.source_state());
    }

    #[test]
    fn path_finding_agrees_with_layout() {
        let world = tiny();
        assert!(world.has_path());
        assert_eq!(world.shortest_path_len(), Some(4));
        let blocked = GridWorld::from_ascii(&["S#", "#G"]);
        assert!(!blocked.has_path());
        assert_eq!(blocked.shortest_path_len(), None);
    }

    #[test]
    fn random_worlds_are_always_solvable() {
        let mut rng = SmallRng::seed_from_u64(0);
        for _ in 0..10 {
            let world = GridWorld::random(8, 0.3, &mut rng);
            assert!(world.has_path());
            assert_eq!(world.source_state(), 0);
            assert_eq!(world.goal_state(), 63);
        }
    }

    #[test]
    fn render_shows_the_agent_position() {
        let mut world = tiny();
        world.reset();
        world.step(1);
        let art = world.render();
        assert!(art.contains('A'));
        assert!(art.contains('S'));
        assert!(art.contains('G'));
    }

    #[test]
    fn action_round_trip() {
        for (i, action) in Action::ALL.iter().enumerate() {
            assert_eq!(Action::from_index(i), *action);
        }
        assert_eq!(Action::MoveRight.delta(), (0, 1));
    }

    #[test]
    fn density_display_names() {
        assert_eq!(ObstacleDensity::Low.to_string(), "low");
        assert_eq!(ObstacleDensity::ALL.len(), 3);
    }
}

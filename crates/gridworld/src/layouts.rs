//! The three 10×10 Grid World layouts of Fig. 1.
//!
//! The paper's figure shows a 10×10 grid (rows 0–9, columns a–j) with the
//! agent in the top-left region and the goal towards the bottom-right, at
//! three obstacle densities. The exact obstacle coordinates are not tabulated
//! in the paper, so these layouts reproduce the *structure*: the same grid
//! size, start/goal placement, and low / middle / high obstacle counts
//! (8, 17 and 25 obstacles — roughly 8 %, 17 % and 25 % of cells), each with multiple viable routes at
//! low density narrowing to few routes at high density.

use crate::ObstacleDensity;

/// The 10×10 map for the given obstacle density.
///
/// Returned as ASCII rows compatible with
/// [`GridWorld::from_ascii`](crate::GridWorld::from_ascii).
pub fn layout(density: ObstacleDensity) -> [&'static str; 10] {
    match density {
        ObstacleDensity::Low => LOW,
        ObstacleDensity::Middle => MIDDLE,
        ObstacleDensity::High => HIGH,
    }
}

/// Low obstacle density (Fig. 1a): 8 obstacles.
const LOW: [&str; 10] = [
    "S.........",
    "..........",
    "...#......",
    ".....#....",
    ".#........",
    "......#...",
    "...#....#.",
    ".....#....",
    "..#.......",
    ".........G",
];

/// Middle obstacle density (Fig. 1b): 17 obstacles.
const MIDDLE: [&str; 10] = [
    "S.........",
    "..#...#...",
    "....#....#",
    ".#...#....",
    "...#....#.",
    ".#....#...",
    "....#....#",
    ".#...#....",
    "...#....#.",
    "......#..G",
];

/// High obstacle density (Fig. 1c): 25 obstacles.
const HIGH: [&str; 10] = [
    "S..#....#.",
    "..#...#...",
    "....#....#",
    ".#.#.#..#.",
    "...#....#.",
    ".#...#.#..",
    "..#.#....#",
    ".#...#.#..",
    "...#...#..",
    ".#....#..G",
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GridWorld;

    #[test]
    fn all_layouts_are_square_and_solvable() {
        for density in ObstacleDensity::ALL {
            let world = GridWorld::from_ascii(&layout(density));
            assert_eq!(world.size(), 10);
            assert!(world.has_path(), "{density} density layout must be solvable");
        }
    }

    #[test]
    fn obstacle_counts_increase_with_density() {
        let low = GridWorld::with_density(ObstacleDensity::Low).obstacle_count();
        let mid = GridWorld::with_density(ObstacleDensity::Middle).obstacle_count();
        let high = GridWorld::with_density(ObstacleDensity::High).obstacle_count();
        assert!(low < mid && mid < high, "{low} < {mid} < {high} expected");
        assert_eq!(low, 8);
        assert_eq!(mid, 17);
        assert_eq!(high, 25);
    }

    #[test]
    fn source_and_goal_are_at_opposite_corners() {
        for density in ObstacleDensity::ALL {
            let world = GridWorld::with_density(density);
            assert_eq!(world.source_state(), 0);
            assert_eq!(world.goal_state(), 99);
        }
    }

    #[test]
    fn middle_layout_shortest_path_is_reasonable() {
        let world = GridWorld::with_density(ObstacleDensity::Middle);
        let len = world.shortest_path_len().expect("solvable");
        assert!((18..=30).contains(&len), "path length {len}");
    }
}

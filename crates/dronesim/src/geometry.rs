//! Minimal 2-D geometry used by the drone world: points, axis-aligned boxes
//! and ray casting.
//!
//! The drone flies at a fixed altitude, so the world is modelled in the
//! horizontal plane; the synthetic depth camera is produced by casting rays
//! against the obstacle boxes.

/// A 2-D point / vector in metres.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec2 {
    /// X coordinate (metres).
    pub x: f32,
    /// Y coordinate (metres).
    pub y: f32,
}

impl Vec2 {
    /// Creates a vector.
    pub fn new(x: f32, y: f32) -> Vec2 {
        Vec2 { x, y }
    }

    /// The zero vector.
    pub fn zero() -> Vec2 {
        Vec2::default()
    }

    /// Euclidean length.
    pub fn length(&self) -> f32 {
        (self.x * self.x + self.y * self.y).sqrt()
    }

    /// Euclidean distance to `other`.
    pub fn distance(&self, other: Vec2) -> f32 {
        Vec2::new(self.x - other.x, self.y - other.y).length()
    }

    /// The unit vector pointing along `heading` radians (0 = +x axis).
    pub fn from_heading(heading: f32) -> Vec2 {
        Vec2::new(heading.cos(), heading.sin())
    }

    /// This point translated by `direction * distance`.
    pub fn advanced(&self, direction: Vec2, distance: f32) -> Vec2 {
        Vec2::new(self.x + direction.x * distance, self.y + direction.y * distance)
    }
}

/// An axis-aligned rectangle (an obstacle footprint or the world boundary).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aabb {
    /// Minimum corner.
    pub min: Vec2,
    /// Maximum corner.
    pub max: Vec2,
}

impl Aabb {
    /// Creates a box from two opposite corners (in any order).
    pub fn new(a: Vec2, b: Vec2) -> Aabb {
        Aabb {
            min: Vec2::new(a.x.min(b.x), a.y.min(b.y)),
            max: Vec2::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// Creates a box centred at `center` with the given full extents.
    pub fn centered(center: Vec2, width: f32, height: f32) -> Aabb {
        Aabb::new(
            Vec2::new(center.x - width / 2.0, center.y - height / 2.0),
            Vec2::new(center.x + width / 2.0, center.y + height / 2.0),
        )
    }

    /// Whether `point` lies inside (or on the boundary of) the box.
    pub fn contains(&self, point: Vec2) -> bool {
        point.x >= self.min.x
            && point.x <= self.max.x
            && point.y >= self.min.y
            && point.y <= self.max.y
    }

    /// The distance along a ray from `origin` in `direction` (unit vector) at
    /// which the ray first enters this box, if it does within `max_range`.
    pub fn ray_hit(&self, origin: Vec2, direction: Vec2, max_range: f32) -> Option<f32> {
        // Slab method.
        let mut t_min = 0.0f32;
        let mut t_max = max_range;
        for (o, d, lo, hi) in [
            (origin.x, direction.x, self.min.x, self.max.x),
            (origin.y, direction.y, self.min.y, self.max.y),
        ] {
            if d.abs() < 1e-9 {
                if o < lo || o > hi {
                    return None;
                }
            } else {
                let inv = 1.0 / d;
                let (mut t0, mut t1) = ((lo - o) * inv, (hi - o) * inv);
                if t0 > t1 {
                    std::mem::swap(&mut t0, &mut t1);
                }
                t_min = t_min.max(t0);
                t_max = t_max.min(t1);
                if t_min > t_max {
                    return None;
                }
            }
        }
        Some(t_min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_length_and_distance() {
        assert_eq!(Vec2::new(3.0, 4.0).length(), 5.0);
        assert_eq!(Vec2::new(1.0, 1.0).distance(Vec2::new(4.0, 5.0)), 5.0);
        assert_eq!(Vec2::zero().length(), 0.0);
    }

    #[test]
    fn heading_vectors_are_unit_length() {
        for deg in [0.0f32, 45.0, 90.0, 180.0, 270.0] {
            let v = Vec2::from_heading(deg.to_radians());
            assert!((v.length() - 1.0).abs() < 1e-6);
        }
        let east = Vec2::from_heading(0.0);
        assert!((east.x - 1.0).abs() < 1e-6);
    }

    #[test]
    fn advanced_moves_along_direction() {
        let p = Vec2::new(1.0, 2.0).advanced(Vec2::new(0.0, 1.0), 3.0);
        assert_eq!(p, Vec2::new(1.0, 5.0));
    }

    #[test]
    fn aabb_contains_points_inside() {
        let b = Aabb::centered(Vec2::new(0.0, 0.0), 2.0, 4.0);
        assert!(b.contains(Vec2::zero()));
        assert!(b.contains(Vec2::new(1.0, 2.0)));
        assert!(!b.contains(Vec2::new(1.1, 0.0)));
        assert!(!b.contains(Vec2::new(0.0, -2.1)));
    }

    #[test]
    fn ray_hits_box_straight_ahead() {
        let b = Aabb::new(Vec2::new(5.0, -1.0), Vec2::new(6.0, 1.0));
        let hit = b.ray_hit(Vec2::zero(), Vec2::new(1.0, 0.0), 100.0).expect("hits");
        assert!((hit - 5.0).abs() < 1e-5);
    }

    #[test]
    fn ray_misses_box_to_the_side() {
        let b = Aabb::new(Vec2::new(5.0, 2.0), Vec2::new(6.0, 3.0));
        assert!(b.ray_hit(Vec2::zero(), Vec2::new(1.0, 0.0), 100.0).is_none());
    }

    #[test]
    fn ray_beyond_max_range_is_a_miss() {
        let b = Aabb::new(Vec2::new(50.0, -1.0), Vec2::new(51.0, 1.0));
        assert!(b.ray_hit(Vec2::zero(), Vec2::new(1.0, 0.0), 10.0).is_none());
    }

    #[test]
    fn ray_starting_inside_hits_at_zero() {
        let b = Aabb::centered(Vec2::zero(), 2.0, 2.0);
        let hit = b.ray_hit(Vec2::zero(), Vec2::new(1.0, 0.0), 10.0).expect("inside");
        assert_eq!(hit, 0.0);
    }
}

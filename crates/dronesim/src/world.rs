//! Drone worlds: the boundary, the obstacle boxes and the start pose.

use rand::Rng;

use crate::geometry::{Aabb, Vec2};

/// A named indoor world the drone flies through.
///
/// The world is a bounded region containing axis-aligned obstacle boxes.
/// Colliding with an obstacle or leaving the boundary ends the flight.
#[derive(Debug, Clone, PartialEq)]
pub struct DroneWorld {
    name: String,
    bounds: Aabb,
    obstacles: Vec<Aabb>,
    start: Vec2,
    start_heading: f32,
}

impl DroneWorld {
    /// Creates a world from its parts.
    ///
    /// # Panics
    ///
    /// Panics if the start pose is outside the boundary or inside an
    /// obstacle.
    pub fn new(
        name: impl Into<String>,
        bounds: Aabb,
        obstacles: Vec<Aabb>,
        start: Vec2,
        start_heading: f32,
    ) -> DroneWorld {
        assert!(bounds.contains(start), "start position must lie inside the world bounds");
        assert!(
            !obstacles.iter().any(|o| o.contains(start)),
            "start position must not lie inside an obstacle"
        );
        DroneWorld { name: name.into(), bounds, obstacles, start, start_heading }
    }

    /// The `indoor-long` environment substitute: a long, straight 60 m × 8 m
    /// corridor with staggered pillar obstacles. The paper's indoor-long is a
    /// long hallway with sparse furniture; the dominant skill is sustained
    /// forward flight with small corrections.
    pub fn indoor_long() -> DroneWorld {
        let bounds = Aabb::new(Vec2::new(0.0, 0.0), Vec2::new(60.0, 8.0));
        let mut obstacles = Vec::new();
        // Staggered pillars every ~7 m, alternating sides of the corridor.
        for i in 0..8 {
            let x = 8.0 + i as f32 * 7.0;
            let y = if i % 2 == 0 { 2.2 } else { 5.8 };
            obstacles.push(Aabb::centered(Vec2::new(x, y), 1.2, 1.2));
        }
        DroneWorld::new("indoor-long", bounds, obstacles, Vec2::new(1.5, 4.0), 0.0)
    }

    /// The `indoor-vanleer` environment substitute: a 40 m × 24 m suite of
    /// rooms connected by door openings, requiring several turns. The paper's
    /// indoor-vanleer is an office-like floor (Van Leer building) with rooms
    /// and corridors.
    pub fn indoor_vanleer() -> DroneWorld {
        let bounds = Aabb::new(Vec2::new(0.0, 0.0), Vec2::new(40.0, 24.0));
        // Interior walls with door gaps (walls are thin boxes):
        // a vertical wall at x = 13 with a gap at y in [10, 14], a vertical
        // wall at x = 26 with a gap at y in [4, 8], a horizontal wall at
        // y = 16 between the first two rooms with a gap at x in [4, 7], and
        // three furniture blocks.
        let obstacles = vec![
            Aabb::new(Vec2::new(12.5, 0.0), Vec2::new(13.5, 10.0)),
            Aabb::new(Vec2::new(12.5, 14.0), Vec2::new(13.5, 24.0)),
            Aabb::new(Vec2::new(25.5, 0.0), Vec2::new(26.5, 4.0)),
            Aabb::new(Vec2::new(25.5, 8.0), Vec2::new(26.5, 24.0)),
            Aabb::new(Vec2::new(0.0, 15.5), Vec2::new(4.0, 16.5)),
            Aabb::new(Vec2::new(7.0, 15.5), Vec2::new(12.5, 16.5)),
            Aabb::centered(Vec2::new(7.0, 6.0), 2.0, 2.0),
            Aabb::centered(Vec2::new(19.0, 18.0), 2.5, 2.0),
            Aabb::centered(Vec2::new(32.0, 14.0), 2.0, 2.5),
        ];
        DroneWorld::new("indoor-vanleer", bounds, obstacles, Vec2::new(2.0, 2.0), 0.3)
    }

    /// Generates a random corridor world with `pillars` pillar obstacles —
    /// useful for property tests and wider campaigns.
    pub fn random_corridor<R: Rng + ?Sized>(pillars: usize, rng: &mut R) -> DroneWorld {
        let length = 40.0 + rng.gen_range(0.0f32..30.0);
        let width = 6.0 + rng.gen_range(0.0f32..4.0);
        let bounds = Aabb::new(Vec2::zero(), Vec2::new(length, width));
        let obstacles = (0..pillars)
            .map(|i| {
                let x = 6.0 + (length - 12.0) * (i as f32 + 0.5) / pillars.max(1) as f32;
                let y = rng.gen_range(1.0..width - 1.0);
                Aabb::centered(Vec2::new(x, y), 1.0, 1.0)
            })
            .collect();
        DroneWorld::new("random-corridor", bounds, obstacles, Vec2::new(1.5, width / 2.0), 0.0)
    }

    /// The world's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The world boundary.
    pub fn bounds(&self) -> Aabb {
        self.bounds
    }

    /// The obstacle boxes.
    pub fn obstacles(&self) -> &[Aabb] {
        &self.obstacles
    }

    /// The drone's start position.
    pub fn start(&self) -> Vec2 {
        self.start
    }

    /// The drone's start heading, in radians.
    pub fn start_heading(&self) -> f32 {
        self.start_heading
    }

    /// Whether `point` is in free space (inside the bounds and outside every
    /// obstacle).
    pub fn is_free(&self, point: Vec2) -> bool {
        self.bounds.contains(point) && !self.obstacles.iter().any(|o| o.contains(point))
    }

    /// The distance from `origin` along `direction` (unit vector) to the
    /// nearest obstacle or boundary wall, capped at `max_range`.
    pub fn ray_distance(&self, origin: Vec2, direction: Vec2, max_range: f32) -> f32 {
        let mut nearest = max_range;
        for obstacle in &self.obstacles {
            if let Some(t) = obstacle.ray_hit(origin, direction, max_range) {
                nearest = nearest.min(t);
            }
        }
        // Distance to the boundary: cast against each wall plane.
        let bounds = self.bounds;
        for (o, d, lo, hi) in [
            (origin.x, direction.x, bounds.min.x, bounds.max.x),
            (origin.y, direction.y, bounds.min.y, bounds.max.y),
        ] {
            if d.abs() > 1e-9 {
                for wall in [lo, hi] {
                    let t = (wall - o) / d;
                    if t > 0.0 {
                        nearest = nearest.min(t);
                    }
                }
            }
        }
        nearest.max(0.0)
    }

    /// Moves from `from` along `direction` by up to `distance`, stopping at
    /// the first collision. Returns the final position, the distance actually
    /// covered and whether a collision occurred.
    pub fn sweep(&self, from: Vec2, direction: Vec2, distance: f32) -> (Vec2, f32, bool) {
        const STEP: f32 = 0.05;
        let mut travelled = 0.0f32;
        let mut position = from;
        while travelled < distance {
            let step = STEP.min(distance - travelled);
            let next = position.advanced(direction, step);
            if !self.is_free(next) {
                return (position, travelled, true);
            }
            position = next;
            travelled += step;
        }
        (position, travelled, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn preset_worlds_have_free_start_positions() {
        for world in [DroneWorld::indoor_long(), DroneWorld::indoor_vanleer()] {
            assert!(world.is_free(world.start()), "{} start must be free", world.name());
            assert!(!world.obstacles().is_empty());
        }
    }

    #[test]
    fn indoor_long_is_longer_than_vanleer_is_wide() {
        let long = DroneWorld::indoor_long();
        let vanleer = DroneWorld::indoor_vanleer();
        assert!(long.bounds().max.x > vanleer.bounds().max.x);
        assert!(vanleer.bounds().max.y > long.bounds().max.y);
        assert_eq!(long.name(), "indoor-long");
        assert_eq!(vanleer.name(), "indoor-vanleer");
    }

    #[test]
    fn ray_distance_sees_the_corridor_end_and_pillars() {
        let world = DroneWorld::indoor_long();
        let ahead = world.ray_distance(world.start(), Vec2::from_heading(0.0), 100.0);
        // The first pillar is at x = 8 on the start's side of the corridor or
        // the corridor end at x = 60; either way the ray terminates.
        assert!(ahead > 1.0 && ahead <= 60.0);
        let sideways = world.ray_distance(
            world.start(),
            Vec2::from_heading(std::f32::consts::FRAC_PI_2),
            100.0,
        );
        assert!(sideways <= 8.0);
    }

    #[test]
    fn sweep_stops_at_obstacles() {
        let world = DroneWorld::indoor_long();
        let (_pos, travelled, collided) =
            world.sweep(world.start(), Vec2::from_heading(std::f32::consts::FRAC_PI_2), 100.0);
        assert!(collided);
        assert!(travelled < 8.0);
        let (_pos, travelled, collided) = world.sweep(world.start(), Vec2::from_heading(0.0), 2.0);
        assert!(!collided);
        assert!((travelled - 2.0).abs() < 0.1);
    }

    #[test]
    #[should_panic(expected = "inside the world bounds")]
    fn start_outside_bounds_is_rejected() {
        let _ = DroneWorld::new(
            "bad",
            Aabb::new(Vec2::zero(), Vec2::new(10.0, 10.0)),
            vec![],
            Vec2::new(20.0, 0.0),
            0.0,
        );
    }

    #[test]
    fn random_corridors_are_valid_worlds() {
        let mut rng = SmallRng::seed_from_u64(0);
        for _ in 0..5 {
            let world = DroneWorld::random_corridor(5, &mut rng);
            assert!(world.is_free(world.start()));
            assert_eq!(world.obstacles().len(), 5);
        }
    }
}

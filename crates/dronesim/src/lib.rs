//! A synthetic 3-D drone navigation simulator — the PEDRA / Unreal Engine
//! substitute for §4.2 of the paper.
//!
//! The real PEDRA platform renders photorealistic indoor scenes with Unreal
//! Engine and feeds monocular camera frames to the policy. What the fault
//! tolerance study needs from the simulator is (a) an image-like observation
//! processed by the C3F2 policy network, (b) a 25-way perception-based action
//! space, (c) collision-terminated flights whose quality is measured as Mean
//! Safe Flight, and (d) obstacle-avoidance reward shaping. This crate provides
//! exactly that with a deterministic geometric world and a synthetic depth
//! camera, so fault-injection campaigns are fast and reproducible:
//!
//! * [`DroneWorld`] — bounded worlds with axis-aligned obstacles, including
//!   substitutes for the paper's `indoor-long` and `indoor-vanleer`
//!   environments.
//! * [`DepthCamera`] — renders proximity images (103×103×3 full size or
//!   31×31×1 scaled) by ray casting.
//! * [`DroneSim`] — the [`navft_rl::VisionEnvironment`] implementation with
//!   the 25-action space ([`ActionSpace`]) and obstacle-avoidance reward.
//!
//! # Examples
//!
//! ```
//! use navft_dronesim::{ActionSpace, DroneSim};
//! use navft_rl::VisionEnvironment;
//!
//! let mut sim = DroneSim::indoor_long();
//! let mut frame = sim.reset();
//! let mut flown = 0.0;
//! for _ in 0..10 {
//!     let transition = sim.step(ActionSpace::encode(2, 4)); // straight ahead, full speed
//!     flown += transition.distance;
//!     frame = transition.observation;
//!     if transition.terminal {
//!         break;
//!     }
//! }
//! assert!(flown > 0.0);
//! assert_eq!(frame.shape(), &[1, 31, 31]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod geometry;

mod camera;
mod sim;
mod world;

pub use camera::DepthCamera;
pub use geometry::{Aabb, Vec2};
pub use sim::{ActionSpace, DroneSim};
pub use world::DroneWorld;

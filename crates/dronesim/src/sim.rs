//! The drone navigation simulator: action space, dynamics, reward and the
//! [`VisionEnvironment`] implementation.

use navft_nn::Tensor;
use navft_rl::{VisionEnvironment, VisionTransition};

use crate::camera::DepthCamera;
use crate::geometry::Vec2;
use crate::world::DroneWorld;

/// The 25-way perception-based action space of the paper: 5 yaw adjustments ×
/// 5 forward travel distances.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ActionSpace;

impl ActionSpace {
    /// Number of discrete actions.
    pub const COUNT: usize = 25;

    /// The yaw change (radians) and forward travel (metres) of action
    /// `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 25`.
    pub fn decode(index: usize) -> (f32, f32) {
        assert!(index < Self::COUNT, "action {index} out of range");
        use std::f32::consts::FRAC_PI_6;
        // ±30°, ±15°, 0°
        const YAWS: [f32; 5] = [-FRAC_PI_6, -FRAC_PI_6 / 2.0, 0.0, FRAC_PI_6 / 2.0, FRAC_PI_6];
        const MOVES: [f32; 5] = [0.2, 0.4, 0.6, 0.8, 1.0];
        (YAWS[index / 5], MOVES[index % 5])
    }

    /// The action index for the given yaw bin (0..5) and move bin (0..5).
    ///
    /// # Panics
    ///
    /// Panics if either bin is out of range.
    pub fn encode(yaw_bin: usize, move_bin: usize) -> usize {
        assert!(yaw_bin < 5 && move_bin < 5, "action bins out of range");
        yaw_bin * 5 + move_bin
    }
}

/// The drone navigation simulator (§4.2): a drone with a synthetic depth
/// camera flying through a [`DroneWorld`] until it collides.
///
/// The reward encourages staying away from obstacles — it combines forward
/// progress with the clearance seen by the camera and penalises collisions —
/// and the quality-of-flight metric is the distance flown before collision
/// (Mean Safe Flight), exactly the structure of the paper's task.
///
/// # Examples
///
/// ```
/// use navft_dronesim::{DepthCamera, DroneSim, DroneWorld};
/// use navft_rl::VisionEnvironment;
///
/// let mut sim = DroneSim::new(DroneWorld::indoor_long(), DepthCamera::scaled(), 300);
/// let frame = sim.reset();
/// assert_eq!(frame.shape(), &[1, 31, 31]);
/// let transition = sim.step(12); // fly straight ahead
/// assert!(transition.distance > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DroneSim {
    world: DroneWorld,
    camera: DepthCamera,
    max_steps: usize,
    position: Vec2,
    heading: f32,
    steps: usize,
    flown: f32,
    crashed: bool,
}

impl DroneSim {
    /// Creates a simulator over `world` with the given camera and an episode
    /// cap of `max_steps` steps.
    pub fn new(world: DroneWorld, camera: DepthCamera, max_steps: usize) -> DroneSim {
        let position = world.start();
        let heading = world.start_heading();
        DroneSim {
            world,
            camera,
            max_steps,
            position,
            heading,
            steps: 0,
            flown: 0.0,
            crashed: false,
        }
    }

    /// The simulator over the `indoor-long` world with the scaled camera —
    /// the configuration most experiments use.
    pub fn indoor_long() -> DroneSim {
        DroneSim::new(DroneWorld::indoor_long(), DepthCamera::scaled(), 400)
    }

    /// The simulator over the `indoor-vanleer` world with the scaled camera.
    pub fn indoor_vanleer() -> DroneSim {
        DroneSim::new(DroneWorld::indoor_vanleer(), DepthCamera::scaled(), 400)
    }

    /// The world being flown.
    pub fn world(&self) -> &DroneWorld {
        &self.world
    }

    /// The camera configuration.
    pub fn camera(&self) -> DepthCamera {
        self.camera
    }

    /// The drone's current position.
    pub fn position(&self) -> Vec2 {
        self.position
    }

    /// The drone's current heading in radians.
    pub fn heading(&self) -> f32 {
        self.heading
    }

    /// Total distance flown this episode, in metres.
    pub fn distance_flown(&self) -> f32 {
        self.flown
    }

    /// Whether the current episode ended in a collision.
    pub fn crashed(&self) -> bool {
        self.crashed
    }

    fn observe(&self) -> Tensor {
        self.camera.render(&self.world, self.position, self.heading)
    }
}

impl VisionEnvironment for DroneSim {
    fn observation_shape(&self) -> [usize; 3] {
        self.camera.frame_shape()
    }

    fn num_actions(&self) -> usize {
        ActionSpace::COUNT
    }

    fn reset(&mut self) -> Tensor {
        self.position = self.world.start();
        self.heading = self.world.start_heading();
        self.steps = 0;
        self.flown = 0.0;
        self.crashed = false;
        self.observe()
    }

    fn step(&mut self, action: usize) -> VisionTransition {
        let (yaw, travel) = ActionSpace::decode(action);
        self.heading += yaw;
        let direction = Vec2::from_heading(self.heading);
        let (position, travelled, collided) = self.world.sweep(self.position, direction, travel);
        self.position = position;
        self.flown += travelled;
        self.steps += 1;
        self.crashed = collided;

        let clearance = self.camera.min_clearance(&self.world, self.position, self.heading);
        let reward = if collided {
            -1.0
        } else {
            // Forward progress plus a clearance bonus that discourages
            // skimming along obstacles, as in the paper's reward design.
            0.5 * travelled + 0.5 * (clearance / self.camera.max_range).clamp(0.0, 1.0)
        };
        let terminal = collided || self.steps >= self.max_steps;
        VisionTransition { observation: self.observe(), reward, terminal, distance: travelled }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn action_space_decodes_all_25_actions() {
        let mut seen = std::collections::HashSet::new();
        for index in 0..ActionSpace::COUNT {
            let (yaw, travel) = ActionSpace::decode(index);
            assert!(yaw.abs() <= 0.53);
            assert!((0.2..=1.0).contains(&travel));
            seen.insert((yaw.to_bits(), travel.to_bits()));
        }
        assert_eq!(seen.len(), 25);
        assert_eq!(ActionSpace::encode(2, 4), 14);
        assert_eq!(ActionSpace::decode(14), (0.0, 1.0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_action_panics() {
        let _ = ActionSpace::decode(25);
    }

    #[test]
    fn reset_returns_the_start_observation_and_clears_state() {
        let mut sim = DroneSim::indoor_long();
        sim.step(12);
        sim.step(12);
        assert!(sim.distance_flown() > 0.0);
        let obs = sim.reset();
        assert_eq!(obs.shape(), &sim.observation_shape());
        assert_eq!(sim.distance_flown(), 0.0);
        assert!(!sim.crashed());
        assert_eq!(sim.position(), sim.world().start());
    }

    #[test]
    fn flying_straight_accumulates_distance() {
        let mut sim = DroneSim::indoor_long();
        sim.reset();
        let straight = ActionSpace::encode(2, 4);
        let mut total = 0.0;
        for _ in 0..5 {
            let t = sim.step(straight);
            total += t.distance;
            if t.terminal {
                break;
            }
        }
        assert!(total > 3.0, "flew {total} m");
        assert!((sim.distance_flown() - total).abs() < 1e-5);
    }

    #[test]
    fn spinning_into_the_wall_eventually_crashes() {
        let mut sim = DroneSim::indoor_long();
        sim.reset();
        // Keep yawing hard left and moving: the drone will hit the side wall.
        let action = ActionSpace::encode(0, 4);
        let mut crashed = false;
        for _ in 0..50 {
            let t = sim.step(action);
            if t.terminal {
                crashed = sim.crashed();
                assert_eq!(t.reward, -1.0);
                break;
            }
        }
        assert!(crashed, "the drone should have collided");
    }

    #[test]
    fn episodes_are_capped_at_max_steps() {
        let mut sim = DroneSim::new(DroneWorld::indoor_long(), DepthCamera::scaled(), 3);
        sim.reset();
        let gentle = ActionSpace::encode(2, 0);
        let mut steps = 0;
        loop {
            steps += 1;
            if sim.step(gentle).terminal {
                break;
            }
        }
        assert_eq!(steps, 3);
        assert!(!sim.crashed());
    }

    #[test]
    fn both_preset_environments_expose_25_actions() {
        assert_eq!(DroneSim::indoor_long().num_actions(), 25);
        assert_eq!(DroneSim::indoor_vanleer().num_actions(), 25);
    }

    #[test]
    fn reward_rewards_clearance() {
        let mut sim = DroneSim::indoor_long();
        sim.reset();
        let straight = sim.step(ActionSpace::encode(2, 2));
        assert!(straight.reward > 0.0);
    }
}

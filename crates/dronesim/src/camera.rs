//! A synthetic monocular depth camera.
//!
//! PEDRA feeds the policy a monocular RGB frame rendered by Unreal Engine;
//! what the navigation policy actually extracts from it is the proximity of
//! obstacles across the field of view. The substitute camera produces a
//! depth-like grey image directly: each image column is derived from a ray
//! cast into the world across the horizontal field of view, and rows fade
//! with a vertical falloff so the image has 2-D structure for the
//! convolutional layers to exploit.

use navft_nn::Tensor;

use crate::geometry::Vec2;
use crate::world::DroneWorld;

/// Synthetic depth camera parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DepthCamera {
    /// Image width in pixels (one ray per column).
    pub width: usize,
    /// Image height in pixels.
    pub height: usize,
    /// Number of image channels (1 for depth, 3 to mimic an RGB pipeline).
    pub channels: usize,
    /// Horizontal field of view, in radians.
    pub fov: f32,
    /// Maximum sensing range, in metres.
    pub max_range: f32,
}

impl DepthCamera {
    /// The camera matching the paper's 103×103×3 network input.
    pub fn paper() -> DepthCamera {
        DepthCamera { width: 103, height: 103, channels: 3, fov: 1.57, max_range: 20.0 }
    }

    /// A reduced 31×31×1 camera matching
    /// [`C3f2Config::scaled`](navft_nn::C3f2Config::scaled).
    pub fn scaled() -> DepthCamera {
        DepthCamera { width: 31, height: 31, channels: 1, fov: 1.57, max_range: 20.0 }
    }

    /// The shape of rendered frames, `[channels, height, width]`.
    pub fn frame_shape(&self) -> [usize; 3] {
        [self.channels, self.height, self.width]
    }

    /// Renders a frame from `position` looking along `heading` (radians).
    ///
    /// Pixel values are *proximities* in `[0, 1]`: 0 means nothing within
    /// range, 1 means an obstacle touching the camera. Proximity (rather than
    /// raw depth) keeps "danger" as the high-magnitude signal, which mirrors
    /// how the paper's reward penalises closeness to obstacles.
    pub fn render(&self, world: &DroneWorld, position: Vec2, heading: f32) -> Tensor {
        let mut frame = Tensor::zeros(&self.frame_shape());
        let data = frame.data_mut();
        let plane = self.height * self.width;
        for col in 0..self.width {
            let t = if self.width > 1 { col as f32 / (self.width - 1) as f32 } else { 0.5 };
            let angle = heading - self.fov / 2.0 + t * self.fov;
            let distance = world.ray_distance(position, Vec2::from_heading(angle), self.max_range);
            let proximity = 1.0 - (distance / self.max_range).clamp(0.0, 1.0);
            for row in 0..self.height {
                // Vertical falloff: the obstacle occupies the middle band of
                // the image, fading toward the top (sky/ceiling) and bottom
                // (floor) rows.
                let v = if self.height > 1 { row as f32 / (self.height - 1) as f32 } else { 0.5 };
                let falloff = 1.0 - (2.0 * v - 1.0).abs() * 0.7;
                let value = proximity * falloff;
                for ch in 0..self.channels {
                    data[ch * plane + row * self.width + col] = value;
                }
            }
        }
        frame
    }

    /// The minimum clear distance across the field of view from `position`
    /// looking along `heading` — the quantity the reward shaping uses.
    pub fn min_clearance(&self, world: &DroneWorld, position: Vec2, heading: f32) -> f32 {
        let mut min = self.max_range;
        for col in 0..self.width.max(2) {
            let t = col as f32 / (self.width.max(2) - 1) as f32;
            let angle = heading - self.fov / 2.0 + t * self.fov;
            min = min.min(world.ray_distance(position, Vec2::from_heading(angle), self.max_range));
        }
        min
    }
}

impl Default for DepthCamera {
    fn default() -> Self {
        DepthCamera::scaled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_shape_matches_configuration() {
        assert_eq!(DepthCamera::paper().frame_shape(), [3, 103, 103]);
        assert_eq!(DepthCamera::scaled().frame_shape(), [1, 31, 31]);
        assert_eq!(DepthCamera::default(), DepthCamera::scaled());
    }

    #[test]
    fn render_produces_values_in_unit_range() {
        let world = DroneWorld::indoor_long();
        let cam = DepthCamera::scaled();
        let frame = cam.render(&world, world.start(), world.start_heading());
        assert_eq!(frame.shape(), &[1, 31, 31]);
        assert!(frame.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn closer_walls_look_brighter() {
        let world = DroneWorld::indoor_long();
        let cam = DepthCamera::scaled();
        // Facing the nearby side wall vs facing down the long corridor.
        let facing_wall = cam.render(&world, world.start(), std::f32::consts::FRAC_PI_2);
        let facing_corridor = cam.render(&world, world.start(), 0.0);
        let mean = |t: &Tensor| t.data().iter().sum::<f32>() / t.len() as f32;
        assert!(mean(&facing_wall) > mean(&facing_corridor));
    }

    #[test]
    fn min_clearance_is_bounded_by_the_corridor_width() {
        let world = DroneWorld::indoor_long();
        let cam = DepthCamera::scaled();
        let clearance = cam.min_clearance(&world, world.start(), 0.0);
        assert!(clearance > 0.0);
        assert!(clearance <= cam.max_range);
    }

    #[test]
    fn multi_channel_frames_replicate_the_depth_plane() {
        let world = DroneWorld::indoor_long();
        let cam = DepthCamera { channels: 3, ..DepthCamera::scaled() };
        let frame = cam.render(&world, world.start(), 0.0);
        let plane = 31 * 31;
        assert_eq!(frame.data()[..plane], frame.data()[plane..2 * plane]);
    }
}

//! Pins the exact weight trajectory of [`DqnAgent::learn`].
//!
//! The learning step was rewritten to batch its bootstrap forward passes
//! through `Network::forward_batch` and to reuse preallocated scratch
//! buffers. That rewrite must be a pure restructuring: a seeded training
//! run has to produce *bit-identical* weights before and after it. The
//! digests below were captured from the pre-batching implementation; any
//! drift means the rewrite changed the learning math, not just its memory
//! behaviour.

use navft_nn::{mlp, Tensor};
use navft_rl::{DqnAgent, DqnConfig, EpsilonSchedule};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Golden digest of the final-layer weights after the vanilla-DQN run.
const GOLDEN_VANILLA: u64 = 0xc1cd_0a85_6f57_3f97;
/// Golden digest of the final-layer weights after the double-DQN run.
const GOLDEN_DOUBLE: u64 = 0x75c2_ca1c_5e98_5fa6;

/// An order-sensitive FNV-1a fold over the exact bit patterns of `values`.
fn digest(values: &[f32]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &v in values {
        for byte in v.to_bits().to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    hash
}

/// Runs a short seeded training loop over a synthetic transition stream and
/// returns the digest of the online network's final parametric layer.
fn run(double_dqn: bool) -> u64 {
    let mut rng = SmallRng::seed_from_u64(0xD16E);
    let net = mlp(&[6, 16, 3], &mut rng);
    let config =
        DqnConfig { batch_size: 8, double_dqn, target_sync_every: 3, ..DqnConfig::default() };
    let mut agent = DqnAgent::new(net, &[6], EpsilonSchedule::for_training(20), config);

    // A deterministic, partly-terminal transition stream: enough variety to
    // exercise every branch of the learning step (terminal short-circuit,
    // bootstrap, clamped TD errors).
    for i in 0..40usize {
        let mut state = vec![0.0f32; 6];
        state[i % 6] = 1.0;
        let mut next = vec![0.0f32; 6];
        next[(i + 1) % 6] = 0.5 + (i % 3) as f32 * 0.25;
        let reward = if i % 5 == 0 { 1.0 } else { -0.1 * (i % 4) as f32 };
        agent.observe(
            &Tensor::from_vec(&[6], state),
            i % 3,
            reward,
            &Tensor::from_vec(&[6], next),
            i % 7 == 0,
        );
    }
    let mut learn_rng = SmallRng::seed_from_u64(0x5EED);
    for episode in 0..12 {
        for _ in 0..4 {
            agent.learn(&mut learn_rng);
        }
        let _ = episode;
        agent.end_episode();
    }

    let last = *agent.network().parametric_layers().last().expect("mlp has linear layers");
    digest(agent.network().layer_weights(last).expect("final layer has weights"))
}

#[test]
fn vanilla_dqn_learn_matches_pre_batching_golden_digest() {
    let got = run(false);
    assert_eq!(
        got, GOLDEN_VANILLA,
        "vanilla DQN weight digest drifted: got {got:#018x}, want {GOLDEN_VANILLA:#018x}"
    );
}

#[test]
fn double_dqn_learn_matches_pre_batching_golden_digest() {
    let got = run(true);
    assert_eq!(
        got, GOLDEN_DOUBLE,
        "double DQN weight digest drifted: got {got:#018x}, want {GOLDEN_DOUBLE:#018x}"
    );
}

//! Convergence analysis over training traces (Fig. 4 of the paper).

use crate::TrainingTrace;

/// Returns the number of episodes, counted from `start`, until the sliding
/// `window` success rate first reaches `threshold`, or `None` if it never
/// does within the trace.
///
/// This reproduces the paper's "episodes taken to converge (>95 % success
/// rate) after faults are injected" metric (Fig. 4a/4c): call it with `start`
/// set to the fault-injection episode.
///
/// # Examples
///
/// ```
/// use navft_rl::{episodes_to_converge, EpisodeOutcome, TrainingTrace};
///
/// let mut trace = TrainingTrace::new();
/// for i in 0..100 {
///     let outcome = EpisodeOutcome { reached_goal: i >= 40, ..EpisodeOutcome::empty() };
///     trace.push(outcome, 0.1);
/// }
/// let episodes = episodes_to_converge(&trace, 20, 10, 0.95).expect("converges");
/// assert!(episodes >= 20 && episodes <= 40);
/// ```
pub fn episodes_to_converge(
    trace: &TrainingTrace,
    start: usize,
    window: usize,
    threshold: f64,
) -> Option<usize> {
    let window = window.max(1);
    if start >= trace.successes.len() {
        return None;
    }
    for end in (start + window)..=trace.successes.len() {
        let slice = &trace.successes[end - window..end];
        let rate = slice.iter().filter(|&&s| s).count() as f64 / window as f64;
        if rate >= threshold {
            return Some(end - start);
        }
    }
    None
}

/// Returns the first episode index at which the recorded exploration rate
/// reaches its floor (`steady exploitation`), or `None` if it never does.
pub fn episode_of_steady_exploitation(trace: &TrainingTrace, floor: f64) -> Option<usize> {
    trace.epsilons.iter().position(|&e| e <= floor + 1e-9)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EpisodeOutcome;

    fn trace_with_success_from(total: usize, from: usize) -> TrainingTrace {
        let mut trace = TrainingTrace::new();
        for i in 0..total {
            let outcome = EpisodeOutcome { reached_goal: i >= from, ..EpisodeOutcome::empty() };
            trace.push(outcome, if i < 50 { 0.5 } else { 0.05 });
        }
        trace
    }

    #[test]
    fn converged_trace_reports_episode_count() {
        let trace = trace_with_success_from(200, 100);
        let episodes = episodes_to_converge(&trace, 90, 20, 0.95).expect("converges");
        // A 20-episode window reaches 95% success by episode 119-120.
        assert!((29..=30).contains(&episodes), "episodes = {episodes}");
    }

    #[test]
    fn never_converging_trace_reports_none() {
        let trace = trace_with_success_from(100, 100);
        assert_eq!(episodes_to_converge(&trace, 0, 10, 0.95), None);
    }

    #[test]
    fn start_beyond_trace_is_none() {
        let trace = trace_with_success_from(10, 0);
        assert_eq!(episodes_to_converge(&trace, 50, 10, 0.9), None);
    }

    #[test]
    fn zero_window_is_treated_as_one() {
        let trace = trace_with_success_from(10, 0);
        assert_eq!(episodes_to_converge(&trace, 0, 0, 1.0), Some(1));
    }

    #[test]
    fn steady_exploitation_episode_matches_epsilon_floor() {
        let trace = trace_with_success_from(100, 0);
        assert_eq!(episode_of_steady_exploitation(&trace, 0.05), Some(50));
        assert_eq!(episode_of_steady_exploitation(&trace, 0.01), None);
    }
}

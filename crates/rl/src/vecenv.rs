//! Vectorized environments: B environment instances stepped in lockstep so
//! rollouts can drive the batched inference engine at full width.
//!
//! A [`VecEnv`] owns `width` independent episode rows. The rollout driver
//! ([`crate::rollout::rollout`]) resets and steps rows individually — rows
//! advance through *different* episodes at the same time, finished rows are
//! reassigned or drained raggedly — while every decision of every active row
//! comes from one shared batched forward pass per tick.
//!
//! [`DummyVecEnv`] and [`DummyVisionVecEnv`] are the in-process adapters
//! (the `dummy_vec_env` shape of RL libraries): a `Vec` of cloned
//! single-environment instances, one per row, stepped serially. They exist
//! to batch the *policy evaluation*, not the environment physics — the
//! environments here are cheap; the forward pass is the cost.
//!
//! # Reset determinism
//!
//! The bit-exactness contract of the vectorized evaluators requires the
//! prototype environment to be **reset-deterministic**: `reset()` must put
//! every clone into the same initial state and consume no shared randomness,
//! so that episode `e` unfolds identically whether it runs on the serial
//! evaluator's single instance or on any row of a vectorized batch. The
//! evaluation-time Grid World (no exploring starts) and the drone simulator
//! both qualify; a Grid World with exploring starts does not (each clone
//! would advance its own RNG copy) and must stay on the serial path.

use navft_nn::Tensor;

use crate::{DiscreteEnvironment, VisionEnvironment};

/// The outcome of stepping one row of a [`VecEnv`].
#[derive(Debug, Clone)]
pub struct RowStep<O> {
    /// The row's next observation.
    pub observation: O,
    /// Reward obtained for the transition.
    pub reward: f32,
    /// Distance travelled during this step (vision tasks; `0.0` otherwise).
    pub distance: f32,
    /// Whether the row's episode terminated.
    pub terminal: bool,
    /// Whether a terminal transition reached the goal (discrete tasks;
    /// always `false` for vision tasks, which have no goal state).
    pub reached_goal: bool,
}

/// A batch of `width` environment instances stepped row by row.
///
/// Rows are independent: resetting or stepping one row never affects
/// another. See the module docs for the reset-determinism contract the
/// vectorized evaluators rely on.
pub trait VecEnv {
    /// The per-row observation type (`usize` state indices for discrete
    /// tasks, [`Tensor`] frames for vision tasks).
    type Obs;

    /// Number of rows (parallel episode slots).
    fn width(&self) -> usize;

    /// Number of discrete actions, shared by every row.
    fn num_actions(&self) -> usize;

    /// Shape of the policy input one row's observation encodes into.
    fn obs_shape(&self) -> Vec<usize>;

    /// Resets row `row` and returns its initial observation.
    fn reset_row(&mut self, row: usize) -> Self::Obs;

    /// Applies `action` to row `row` and returns the resulting transition.
    fn step_row(&mut self, row: usize, action: usize) -> RowStep<Self::Obs>;
}

/// A [`VecEnv`] over `width` clones of a [`DiscreteEnvironment`].
pub struct DummyVecEnv<E: DiscreteEnvironment> {
    envs: Vec<E>,
}

impl<E: DiscreteEnvironment> DummyVecEnv<E> {
    /// Wraps the given instances, one per row.
    ///
    /// # Panics
    ///
    /// Panics if `envs` is empty.
    pub fn new(envs: Vec<E>) -> DummyVecEnv<E> {
        assert!(!envs.is_empty(), "a vectorized environment needs at least one row");
        DummyVecEnv { envs }
    }

    /// `width` clones of a prototype environment, one per row.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn from_prototype(prototype: &E, width: usize) -> DummyVecEnv<E>
    where
        E: Clone,
    {
        assert!(width > 0, "a vectorized environment needs at least one row");
        DummyVecEnv::new((0..width).map(|_| prototype.clone()).collect())
    }
}

impl<E: DiscreteEnvironment> VecEnv for DummyVecEnv<E> {
    type Obs = usize;

    fn width(&self) -> usize {
        self.envs.len()
    }

    fn num_actions(&self) -> usize {
        self.envs[0].num_actions()
    }

    fn obs_shape(&self) -> Vec<usize> {
        vec![self.envs[0].num_states()]
    }

    fn reset_row(&mut self, row: usize) -> usize {
        self.envs[row].reset()
    }

    fn step_row(&mut self, row: usize, action: usize) -> RowStep<usize> {
        let transition = self.envs[row].step(action);
        RowStep {
            observation: transition.next_state,
            reward: transition.reward,
            distance: 0.0,
            terminal: transition.terminal,
            reached_goal: transition.reached_goal,
        }
    }
}

/// A [`VecEnv`] over `width` clones of a [`VisionEnvironment`].
pub struct DummyVisionVecEnv<E: VisionEnvironment> {
    envs: Vec<E>,
}

impl<E: VisionEnvironment> DummyVisionVecEnv<E> {
    /// Wraps the given instances, one per row.
    ///
    /// # Panics
    ///
    /// Panics if `envs` is empty.
    pub fn new(envs: Vec<E>) -> DummyVisionVecEnv<E> {
        assert!(!envs.is_empty(), "a vectorized environment needs at least one row");
        DummyVisionVecEnv { envs }
    }

    /// `width` clones of a prototype environment, one per row.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn from_prototype(prototype: &E, width: usize) -> DummyVisionVecEnv<E>
    where
        E: Clone,
    {
        assert!(width > 0, "a vectorized environment needs at least one row");
        DummyVisionVecEnv::new((0..width).map(|_| prototype.clone()).collect())
    }
}

impl<E: VisionEnvironment> VecEnv for DummyVisionVecEnv<E> {
    type Obs = Tensor;

    fn width(&self) -> usize {
        self.envs.len()
    }

    fn num_actions(&self) -> usize {
        self.envs[0].num_actions()
    }

    fn obs_shape(&self) -> Vec<usize> {
        self.envs[0].observation_shape().to_vec()
    }

    fn reset_row(&mut self, row: usize) -> Tensor {
        self.envs[row].reset()
    }

    fn step_row(&mut self, row: usize, action: usize) -> RowStep<Tensor> {
        let transition = self.envs[row].step(action);
        RowStep {
            observation: transition.observation,
            reward: transition.reward,
            distance: transition.distance,
            terminal: transition.terminal,
            // Vision tasks have no goal state: quality of flight is the
            // distance covered before the collision.
            reached_goal: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DiscreteTransition;

    /// Two states; action 0 reaches the goal immediately.
    #[derive(Clone)]
    struct Hop {
        done: bool,
    }

    impl DiscreteEnvironment for Hop {
        fn num_states(&self) -> usize {
            2
        }
        fn num_actions(&self) -> usize {
            1
        }
        fn reset(&mut self) -> usize {
            self.done = false;
            0
        }
        fn step(&mut self, _action: usize) -> DiscreteTransition {
            self.done = true;
            DiscreteTransition { next_state: 1, reward: 1.0, terminal: true, reached_goal: true }
        }
    }

    #[test]
    fn rows_are_independent() {
        let mut venv = DummyVecEnv::from_prototype(&Hop { done: false }, 3);
        assert_eq!(venv.width(), 3);
        assert_eq!(venv.obs_shape(), vec![2]);
        assert_eq!(venv.reset_row(0), 0);
        assert_eq!(venv.reset_row(1), 0);
        let step = venv.step_row(1, 0);
        assert!(step.terminal && step.reached_goal);
        assert_eq!(step.distance, 0.0);
        // Row 0 is untouched by row 1's step.
        assert!(!venv.envs[0].done);
        assert!(venv.envs[1].done);
    }

    #[test]
    #[should_panic(expected = "at least one row")]
    fn zero_width_is_rejected() {
        let _ = DummyVecEnv::from_prototype(&Hop { done: false }, 0);
    }
}

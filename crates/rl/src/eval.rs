//! Inference-time evaluation of trained policies under fault injection —
//! one generic evaluator per task shape, instantiated for every numeric
//! backend.
//!
//! §4.1.2 and §4.2.2 of the paper evaluate trained policies while faults
//! corrupt the policy storage. Three inference fault modes matter:
//!
//! * **Transient-1** — a flip in a read register: it corrupts a single,
//!   randomly chosen decision step of each episode.
//! * **Transient-M** — a flip in memory: it corrupts every decision from a
//!   randomly chosen step onwards.
//! * **Permanent** — stuck-at bits: the corrupted words are in effect for the
//!   entire episode.
//!
//! The evaluators are generic over the policy's [`Element`] type:
//! [`evaluate_policy_discrete`] / [`evaluate_policy_vision`] /
//! [`corrupt_policy_weights`] run the `f32` backend and the native raw-word
//! backend through the *same* episode loops, with the [`EvalElement`] glue
//! supplying what differs (how observations encode into the policy's storage
//! type). The historical per-backend names (`evaluate_network_*`,
//! `evaluate_qnetwork_*`, `corrupt_network_weights`,
//! `corrupt_qnetwork_weights`) remain as thin wrappers.

use rand::Rng;

use navft_fault::{Injector, StoredWord};
use navft_nn::{
    argmax, Element, EngineConfig, ForwardHooks, HooksFor, NetworkBase, NoHooks, Scratch,
};
use navft_nn::{Network, QNetwork, TensorBase};

use crate::{one_hot_into, DiscreteEnvironment, EvalResult, QTable, VisionEnvironment};

/// How inference-time faults afflict the policy storage during evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum InferenceFaultMode {
    /// No faults: the clean baseline.
    None,
    /// Transient fault in a read register — corrupts one random step per
    /// episode (the paper's *Transient-1*).
    TransientSingleStep(Injector),
    /// Transient fault in memory — corrupts every step from a random step
    /// onwards (the paper's *Transient-M*).
    TransientFromRandomStep(Injector),
    /// Transient fault injected statically before the episode (used when the
    /// corrupted buffer is read-only weight memory).
    TransientWholeEpisode(Injector),
    /// Permanent stuck-at faults, in effect for the whole episode.
    Permanent(Injector),
}

impl InferenceFaultMode {
    /// The injector behind this mode, if any.
    pub fn injector(&self) -> Option<&Injector> {
        match self {
            InferenceFaultMode::None => None,
            InferenceFaultMode::TransientSingleStep(i)
            | InferenceFaultMode::TransientFromRandomStep(i)
            | InferenceFaultMode::TransientWholeEpisode(i)
            | InferenceFaultMode::Permanent(i) => Some(i),
        }
    }

    /// Whether faulty values are visible at step `step`, given the episode's
    /// randomly drawn onset step `onset`. The vectorized rollout driver uses
    /// this to split a batch tick into its clean and faulty row groups.
    pub(crate) fn faulty_at(&self, step: usize, onset: usize) -> bool {
        match self {
            InferenceFaultMode::None => false,
            InferenceFaultMode::TransientSingleStep(_) => step == onset,
            InferenceFaultMode::TransientFromRandomStep(_) => step >= onset,
            InferenceFaultMode::TransientWholeEpisode(_) | InferenceFaultMode::Permanent(_) => true,
        }
    }
}

/// Backend glue the generic evaluators need on top of [`Element`]: how task
/// observations become the policy's input storage. Implemented for `f32`
/// (identity copies), `i32` (quantization into the policy's format) and `i8`
/// (quantization onto the policy's affine grid).
pub trait EvalElement: Element + StoredWord {
    /// A zeroed input buffer of `shape` compatible with `network`.
    fn input_buffer(shape: &[usize], network: &NetworkBase<Self>) -> TensorBase<Self>;

    /// Writes a one-hot encoding of `state` into `buf` (the value `1.0` in
    /// the backend's representation).
    fn one_hot(state: usize, buf: &mut TensorBase<Self>);

    /// Presents an `f32` observation as this backend's input: the identity
    /// borrow for `f32` (no copy on the hot path), a requantization into
    /// `buf` for raw words.
    fn encode<'a>(
        observation: &'a navft_nn::Tensor,
        buf: &'a mut TensorBase<Self>,
    ) -> &'a TensorBase<Self>;

    /// Writes an `f32` observation into `buf` unconditionally — the owned
    /// form of [`EvalElement::encode`] the vectorized rollout uses, where
    /// every batch row needs its own input buffer. For `f32` this is a
    /// bitwise copy, so batched inputs equal the serial borrow bit for bit.
    fn encode_into(observation: &navft_nn::Tensor, buf: &mut TensorBase<Self>);
}

impl EvalElement for f32 {
    fn input_buffer(shape: &[usize], _network: &Network) -> navft_nn::Tensor {
        navft_nn::Tensor::zeros(shape)
    }

    fn one_hot(state: usize, buf: &mut navft_nn::Tensor) {
        let num_states = buf.len();
        one_hot_into(state, num_states, buf);
    }

    fn encode<'a>(
        observation: &'a navft_nn::Tensor,
        _buf: &'a mut navft_nn::Tensor,
    ) -> &'a navft_nn::Tensor {
        observation
    }

    fn encode_into(observation: &navft_nn::Tensor, buf: &mut navft_nn::Tensor) {
        buf.assign(observation.shape(), observation.data());
    }
}

impl EvalElement for i32 {
    fn input_buffer(shape: &[usize], network: &QNetwork) -> navft_nn::QTensor {
        navft_nn::QTensor::zeros(shape, network.format())
    }

    fn one_hot(state: usize, buf: &mut navft_nn::QTensor) {
        let one = navft_qformat::QValue::quantize(1.0, buf.format()).raw();
        buf.words_mut().fill(0);
        buf.words_mut()[state] = one;
    }

    fn encode<'a>(
        observation: &'a navft_nn::Tensor,
        buf: &'a mut navft_nn::QTensor,
    ) -> &'a navft_nn::QTensor {
        buf.quantize_from(observation);
        buf
    }

    fn encode_into(observation: &navft_nn::Tensor, buf: &mut navft_nn::QTensor) {
        buf.quantize_from(observation);
    }
}

impl EvalElement for i8 {
    fn input_buffer(shape: &[usize], network: &navft_nn::I8Network) -> navft_nn::I8Tensor {
        navft_nn::I8Tensor::zeros(shape, network.affine())
    }

    fn one_hot(state: usize, buf: &mut navft_nn::I8Tensor) {
        let one = buf.affine().quantize(1.0);
        buf.words_mut().fill(0);
        buf.words_mut()[state] = one;
    }

    fn encode<'a>(
        observation: &'a navft_nn::Tensor,
        buf: &'a mut navft_nn::I8Tensor,
    ) -> &'a navft_nn::I8Tensor {
        buf.quantize_from(observation);
        buf
    }

    fn encode_into(observation: &navft_nn::Tensor, buf: &mut navft_nn::I8Tensor) {
        buf.quantize_from(observation);
    }
}

/// Evaluates a tabular policy greedily over `episodes` episodes of at most
/// `max_steps` steps, under the given inference fault mode.
pub fn evaluate_tabular<E, R>(
    env: &mut E,
    table: &QTable,
    episodes: usize,
    max_steps: usize,
    fault: &InferenceFaultMode,
    rng: &mut R,
) -> EvalResult
where
    E: DiscreteEnvironment,
    R: Rng + ?Sized,
{
    let mut corrupted = table.clone();
    if let Some(injector) = fault.injector() {
        injector.corrupt(corrupted.values_mut());
    }

    let mut successes = 0usize;
    let mut total_reward = 0.0f64;
    for _ in 0..episodes {
        let onset = if max_steps > 0 { rng.gen_range(0..max_steps) } else { 0 };
        let mut state = env.reset();
        for step in 0..max_steps {
            let active = if fault.faulty_at(step, onset) { &corrupted } else { table };
            let action = active.best_action(state);
            let transition = env.step(action);
            total_reward += f64::from(transition.reward);
            state = transition.next_state;
            if transition.terminal {
                if transition.reached_goal {
                    successes += 1;
                }
                break;
            }
        }
    }
    EvalResult {
        success_rate: successes as f64 / episodes.max(1) as f64,
        mean_reward: total_reward / episodes.max(1) as f64,
        mean_distance: 0.0,
        episodes,
    }
}

/// Returns a copy of `network` with the fault mode's injector applied to its
/// weight buffers (a no-op copy for [`InferenceFaultMode::None`]) — the
/// generic corruption entry point serving every backend.
///
/// The injector's fault map addresses the network's concatenated weight
/// space; each layer's buffer is corrupted through
/// [`Injector::corrupt_span`], whose [`StoredWord`] dispatch keeps the
/// quantize → corrupt → dequantize round trip of the `f32` backend in one
/// place while the native backend flips live words with single integer
/// operations.
pub fn corrupt_policy_weights<W: EvalElement>(
    network: &NetworkBase<W>,
    fault: &InferenceFaultMode,
) -> NetworkBase<W> {
    let mut corrupted = network.clone();
    if let Some(injector) = fault.injector() {
        let spans: Vec<(usize, std::ops::Range<usize>)> = corrupted
            .parametric_layers()
            .into_iter()
            .map(|i| (i, corrupted.weight_span(i)))
            .collect();
        for (layer, span) in spans {
            if let Some(weights) = corrupted.layer_weights_mut(layer) {
                injector.corrupt_span(span.start, weights);
            }
        }
    }
    corrupted
}

/// [`corrupt_policy_weights`] for the `f32` backend (kept as a thin wrapper
/// so existing drivers don't churn).
pub fn corrupt_network_weights(network: &Network, fault: &InferenceFaultMode) -> Network {
    corrupt_policy_weights(network, fault)
}

/// [`corrupt_policy_weights`] for the native fixed-point backend: every
/// fault is a single integer operation on a live word, with no dequantize
/// round trip.
pub fn corrupt_qnetwork_weights(network: &QNetwork, fault: &InferenceFaultMode) -> QNetwork {
    corrupt_policy_weights(network, fault)
}

/// Evaluates a policy of any backend on a discrete environment (one-hot
/// inputs) under the given inference fault mode applied to the policy's
/// weight storage.
///
/// One scratch and one encoding buffer serve every episode: the per-step
/// forward passes of the whole evaluation allocate nothing once warm, on
/// either backend.
pub fn evaluate_policy_discrete<W, E, R>(
    env: &mut E,
    network: &NetworkBase<W>,
    episodes: usize,
    max_steps: usize,
    fault: &InferenceFaultMode,
    rng: &mut R,
) -> EvalResult
where
    W: EvalElement,
    E: DiscreteEnvironment,
    R: Rng + ?Sized,
    NoHooks: HooksFor<W>,
{
    let corrupted = corrupt_policy_weights(network, fault);
    let num_states = env.num_states();

    // Serial reference path: one row per pass under an explicit default
    // engine config (never the deprecated process-wide kernel knobs).
    let engine = EngineConfig::default();
    let mut scratch = Scratch::new();
    let mut encoded = W::input_buffer(&[num_states], network);

    let mut successes = 0usize;
    let mut total_reward = 0.0f64;
    for _ in 0..episodes {
        let onset = if max_steps > 0 { rng.gen_range(0..max_steps) } else { 0 };
        let mut state = env.reset();
        for step in 0..max_steps {
            let active = if fault.faulty_at(step, onset) { &corrupted } else { network };
            W::one_hot(state, &mut encoded);
            let action =
                argmax(active.forward_scratch_cfg(&encoded, &mut scratch, &mut NoHooks, engine));
            let transition = env.step(action);
            total_reward += f64::from(transition.reward);
            state = transition.next_state;
            if transition.terminal {
                if transition.reached_goal {
                    successes += 1;
                }
                break;
            }
        }
    }
    EvalResult {
        success_rate: successes as f64 / episodes.max(1) as f64,
        mean_reward: total_reward / episodes.max(1) as f64,
        mean_distance: 0.0,
        episodes,
    }
}

/// Evaluates a policy of any backend on a vision environment (the drone
/// task) under the given weight fault mode, reporting Mean Safe Flight in
/// [`EvalResult::mean_distance`].
pub fn evaluate_policy_vision<W, E, R>(
    env: &mut E,
    network: &NetworkBase<W>,
    episodes: usize,
    max_steps: usize,
    fault: &InferenceFaultMode,
    rng: &mut R,
) -> EvalResult
where
    W: EvalElement,
    E: VisionEnvironment,
    R: Rng + ?Sized,
    NoHooks: HooksFor<W>,
{
    evaluate_policy_vision_hooked(env, network, episodes, max_steps, fault, rng, |_| NoHooks)
}

/// Like [`evaluate_policy_vision`], but additionally attaches per-episode
/// hooks built by `make_hooks` — the mechanism used to inject dynamic faults
/// into input and activation buffers (Fig. 7c) and to run the range-based
/// anomaly detector during inference (Fig. 10). Hooks observe whichever
/// representation the backend stores (`f32` values or live raw words).
pub fn evaluate_policy_vision_hooked<W, E, R, H, F>(
    env: &mut E,
    network: &NetworkBase<W>,
    episodes: usize,
    max_steps: usize,
    fault: &InferenceFaultMode,
    rng: &mut R,
    mut make_hooks: F,
) -> EvalResult
where
    W: EvalElement,
    E: VisionEnvironment,
    R: Rng + ?Sized,
    H: HooksFor<W>,
    F: FnMut(usize) -> H,
{
    let corrupted = corrupt_policy_weights(network, fault);

    // One scratch and one input buffer serve every episode, under an
    // explicit default engine config.
    let engine = EngineConfig::default();
    let mut scratch = Scratch::new();
    let shape = env.observation_shape();
    let mut encoded = W::input_buffer(&shape, network);

    let mut total_reward = 0.0f64;
    let mut total_distance = 0.0f64;
    for episode in 0..episodes {
        let onset = if max_steps > 0 { rng.gen_range(0..max_steps) } else { 0 };
        let mut hooks = make_hooks(episode);
        let mut observation = env.reset();
        for step in 0..max_steps {
            let active = if fault.faulty_at(step, onset) { &corrupted } else { network };
            let input = W::encode(&observation, &mut encoded);
            let action =
                argmax(active.forward_scratch_cfg(input, &mut scratch, &mut hooks, engine));
            let transition = env.step(action);
            total_reward += f64::from(transition.reward);
            total_distance += f64::from(transition.distance);
            observation = transition.observation;
            if transition.terminal {
                break;
            }
        }
    }
    EvalResult {
        success_rate: 0.0,
        mean_reward: total_reward / episodes.max(1) as f64,
        mean_distance: total_distance / episodes.max(1) as f64,
        episodes,
    }
}

/// Runs one greedy episode of a discrete environment under `network`,
/// applying `hooks` to every forward pass, and returns the action taken at
/// each step — the library-side reference trace that served-vs-library
/// determinism checks compare against bit-for-bit.
///
/// The loop is the exact per-step path of [`evaluate_policy_discrete`]: one
/// scratch and one encoding buffer, `W::one_hot` encoding, argmax over the
/// final layer. The episode ends at the first terminal transition or after
/// `max_steps` steps.
pub fn trace_policy_discrete<W, E, H>(
    env: &mut E,
    network: &NetworkBase<W>,
    max_steps: usize,
    hooks: &mut H,
) -> Vec<usize>
where
    W: EvalElement,
    E: DiscreteEnvironment,
    H: HooksFor<W>,
{
    let engine = EngineConfig::default();
    let mut scratch = Scratch::new();
    let mut encoded = W::input_buffer(&[env.num_states()], network);
    let mut trace = Vec::new();
    let mut state = env.reset();
    for _ in 0..max_steps {
        W::one_hot(state, &mut encoded);
        let action = argmax(network.forward_scratch_cfg(&encoded, &mut scratch, hooks, engine));
        trace.push(action);
        let transition = env.step(action);
        state = transition.next_state;
        if transition.terminal {
            break;
        }
    }
    trace
}

/// [`trace_policy_discrete`] for vision environments: one greedy episode of
/// `env` under `network` with `hooks` applied per forward pass, returning
/// the per-step action trace.
pub fn trace_policy_vision<W, E, H>(
    env: &mut E,
    network: &NetworkBase<W>,
    max_steps: usize,
    hooks: &mut H,
) -> Vec<usize>
where
    W: EvalElement,
    E: VisionEnvironment,
    H: HooksFor<W>,
{
    let engine = EngineConfig::default();
    let mut scratch = Scratch::new();
    let mut encoded = W::input_buffer(&env.observation_shape(), network);
    let mut trace = Vec::new();
    let mut observation = env.reset();
    for _ in 0..max_steps {
        let input = W::encode(&observation, &mut encoded);
        let action = argmax(network.forward_scratch_cfg(input, &mut scratch, hooks, engine));
        trace.push(action);
        let transition = env.step(action);
        observation = transition.observation;
        if transition.terminal {
            break;
        }
    }
    trace
}

/// [`evaluate_policy_discrete`] for the `f32` backend (thin wrapper).
pub fn evaluate_network_discrete<E, R>(
    env: &mut E,
    network: &Network,
    episodes: usize,
    max_steps: usize,
    fault: &InferenceFaultMode,
    rng: &mut R,
) -> EvalResult
where
    E: DiscreteEnvironment,
    R: Rng + ?Sized,
{
    evaluate_policy_discrete(env, network, episodes, max_steps, fault, rng)
}

/// [`evaluate_policy_vision`] for the `f32` backend (thin wrapper).
pub fn evaluate_network_vision<E, R>(
    env: &mut E,
    network: &Network,
    episodes: usize,
    max_steps: usize,
    fault: &InferenceFaultMode,
    rng: &mut R,
) -> EvalResult
where
    E: VisionEnvironment,
    R: Rng + ?Sized,
{
    evaluate_policy_vision(env, network, episodes, max_steps, fault, rng)
}

/// [`evaluate_policy_vision_hooked`] for the `f32` backend with
/// [`ForwardHooks`] (thin wrapper).
pub fn evaluate_network_vision_hooked<E, R, H, F>(
    env: &mut E,
    network: &Network,
    episodes: usize,
    max_steps: usize,
    fault: &InferenceFaultMode,
    rng: &mut R,
    make_hooks: F,
) -> EvalResult
where
    E: VisionEnvironment,
    R: Rng + ?Sized,
    H: ForwardHooks,
    F: FnMut(usize) -> H,
{
    evaluate_policy_vision_hooked(env, network, episodes, max_steps, fault, rng, make_hooks)
}

/// [`evaluate_policy_discrete`] for the native fixed-point backend (thin
/// wrapper): every forward pass runs in integer arithmetic in the network's
/// [`QFormat`] and greedy actions come from an argmax over raw Q-value
/// words.
///
/// [`QFormat`]: navft_qformat::QFormat
pub fn evaluate_qnetwork_discrete<E, R>(
    env: &mut E,
    network: &QNetwork,
    episodes: usize,
    max_steps: usize,
    fault: &InferenceFaultMode,
    rng: &mut R,
) -> EvalResult
where
    E: DiscreteEnvironment,
    R: Rng + ?Sized,
{
    evaluate_policy_discrete(env, network, episodes, max_steps, fault, rng)
}

/// [`evaluate_policy_vision`] for the native fixed-point backend (thin
/// wrapper): each observation is quantized once into the policy's format
/// (the input buffer the accelerator stores) and the whole pass runs on raw
/// words.
pub fn evaluate_qnetwork_vision<E, R>(
    env: &mut E,
    network: &QNetwork,
    episodes: usize,
    max_steps: usize,
    fault: &InferenceFaultMode,
    rng: &mut R,
) -> EvalResult
where
    E: VisionEnvironment,
    R: Rng + ?Sized,
{
    evaluate_policy_vision(env, network, episodes, max_steps, fault, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DiscreteTransition, VisionTransition};
    use navft_fault::{BitFault, FaultKind, FaultMap, FaultSite, FaultTarget};
    use navft_nn::{mlp, Tensor};
    use navft_qformat::QFormat;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Three states in a row; the goal is state 2. Action 0 moves right,
    /// action 1 moves left (state 0 is a terminal pit).
    struct Line {
        position: usize,
    }

    impl DiscreteEnvironment for Line {
        fn num_states(&self) -> usize {
            3
        }
        fn num_actions(&self) -> usize {
            2
        }
        fn reset(&mut self) -> usize {
            self.position = 1;
            1
        }
        fn step(&mut self, action: usize) -> DiscreteTransition {
            if action == 0 {
                self.position += 1;
            } else {
                self.position = self.position.saturating_sub(1);
            }
            let reached_goal = self.position >= 2;
            let fell = self.position == 0;
            DiscreteTransition {
                next_state: self.position.min(2),
                reward: if reached_goal {
                    1.0
                } else if fell {
                    -1.0
                } else {
                    0.0
                },
                terminal: reached_goal || fell,
                reached_goal,
            }
        }
    }

    fn good_table() -> QTable {
        let mut table = QTable::new(3, 2, QFormat::Q3_4);
        table.set(1, 0, 1.0);
        table.set(1, 1, -1.0);
        table
    }

    #[test]
    fn clean_policy_always_succeeds() {
        let mut env = Line { position: 1 };
        let mut rng = SmallRng::seed_from_u64(0);
        let result =
            evaluate_tabular(&mut env, &good_table(), 50, 10, &InferenceFaultMode::None, &mut rng);
        assert_eq!(result.success_rate, 1.0);
        assert_eq!(result.episodes, 50);
        assert!(result.mean_reward > 0.9);
    }

    fn flip_decision_injector() -> Injector {
        // Flip the sign bit of Q(1, 0) so the greedy action at state 1 becomes
        // "move left" into the pit.
        let map =
            FaultMap::from_faults(vec![BitFault { word: 2, bit: 7, kind: FaultKind::BitFlip }]);
        Injector::new(FaultTarget::new(FaultSite::TabularBuffer), QFormat::Q3_4, map)
    }

    #[test]
    fn whole_episode_fault_destroys_success() {
        let mut env = Line { position: 1 };
        let mut rng = SmallRng::seed_from_u64(1);
        let fault = InferenceFaultMode::TransientWholeEpisode(flip_decision_injector());
        let result = evaluate_tabular(&mut env, &good_table(), 50, 10, &fault, &mut rng);
        assert_eq!(result.success_rate, 0.0);
    }

    #[test]
    fn single_step_fault_is_milder_than_whole_episode_fault() {
        // In this environment one bad decision is fatal, so instead check the
        // two modes on a network policy where the fault does not change the
        // greedy action for most states.
        let mut env = Line { position: 1 };
        let mut rng = SmallRng::seed_from_u64(2);
        let single = InferenceFaultMode::TransientSingleStep(flip_decision_injector());
        let result_single = evaluate_tabular(&mut env, &good_table(), 200, 10, &single, &mut rng);
        let whole = InferenceFaultMode::TransientWholeEpisode(flip_decision_injector());
        let result_whole = evaluate_tabular(&mut env, &good_table(), 200, 10, &whole, &mut rng);
        // The single-step fault only matters when the corrupted step is the
        // first one (the episode lasts a single decision otherwise), so some
        // episodes still succeed — strictly more than under the whole-episode
        // fault.
        assert!(result_single.success_rate > result_whole.success_rate);
    }

    #[test]
    fn permanent_and_whole_episode_transients_match_for_read_only_tables() {
        let mut env = Line { position: 1 };
        let mut rng = SmallRng::seed_from_u64(3);
        let map =
            FaultMap::from_faults(vec![BitFault { word: 2, bit: 7, kind: FaultKind::StuckAt1 }]);
        let injector =
            Injector::new(FaultTarget::new(FaultSite::TabularBuffer), QFormat::Q3_4, map);
        let permanent = InferenceFaultMode::Permanent(injector);
        let result = evaluate_tabular(&mut env, &good_table(), 20, 10, &permanent, &mut rng);
        assert_eq!(result.success_rate, 0.0);
        assert!(permanent.injector().is_some());
        assert!(InferenceFaultMode::None.injector().is_none());
    }

    #[test]
    fn network_discrete_evaluation_runs_and_is_clean_without_faults() {
        let mut env = Line { position: 1 };
        let mut rng = SmallRng::seed_from_u64(4);
        // Hand-craft a network that always prefers action 0 (weights favour output 0).
        let mut net = mlp(&[3, 2], &mut rng);
        net.layer_weights_mut(0)
            .expect("weights")
            .copy_from_slice(&[1.0, 1.0, 1.0, -1.0, -1.0, -1.0]);
        let result =
            evaluate_network_discrete(&mut env, &net, 20, 10, &InferenceFaultMode::None, &mut rng);
        assert_eq!(result.success_rate, 1.0);
    }

    /// A vision environment whose observation is constant; flying straight
    /// (action 0) covers distance 1 per step for 5 steps.
    struct StraightHall {
        remaining: usize,
    }

    impl VisionEnvironment for StraightHall {
        fn observation_shape(&self) -> [usize; 3] {
            [1, 2, 2]
        }
        fn num_actions(&self) -> usize {
            2
        }
        fn reset(&mut self) -> Tensor {
            self.remaining = 5;
            Tensor::full(&[1, 2, 2], 0.5)
        }
        fn step(&mut self, action: usize) -> VisionTransition {
            let distance = if action == 0 { 1.0 } else { 0.0 };
            self.remaining -= 1;
            VisionTransition {
                observation: Tensor::full(&[1, 2, 2], 0.5),
                reward: distance,
                terminal: self.remaining == 0,
                distance,
            }
        }
    }

    #[test]
    fn vision_evaluation_reports_mean_distance() {
        let mut env = StraightHall { remaining: 5 };
        let mut rng = SmallRng::seed_from_u64(5);
        let mut net = mlp(&[4, 2], &mut rng);
        net.layer_weights_mut(0).expect("weights").copy_from_slice(
            &[1.0; 4].iter().chain([-1.0f32; 4].iter()).copied().collect::<Vec<f32>>(),
        );
        let result =
            evaluate_network_vision(&mut env, &net, 4, 10, &InferenceFaultMode::None, &mut rng);
        assert_eq!(result.mean_distance, 5.0);
        assert_eq!(result.episodes, 4);
    }

    #[test]
    fn vision_evaluation_with_hooks_can_corrupt_activations() {
        struct Negate;
        impl ForwardHooks for Negate {
            fn on_activation(&mut self, _i: usize, _k: navft_nn::LayerKind, values: &mut [f32]) {
                for v in values.iter_mut() {
                    *v = -*v;
                }
            }
        }
        let mut env = StraightHall { remaining: 5 };
        let mut rng = SmallRng::seed_from_u64(6);
        let mut net = mlp(&[4, 2], &mut rng);
        net.layer_weights_mut(0).expect("weights").copy_from_slice(
            &[1.0; 4].iter().chain([-1.0f32; 4].iter()).copied().collect::<Vec<f32>>(),
        );
        let clean =
            evaluate_network_vision(&mut env, &net, 4, 10, &InferenceFaultMode::None, &mut rng);
        let corrupted = evaluate_network_vision_hooked(
            &mut env,
            &net,
            4,
            10,
            &InferenceFaultMode::None,
            &mut rng,
            |_| Negate,
        );
        assert!(corrupted.mean_distance < clean.mean_distance);
    }

    #[test]
    fn qnetwork_discrete_evaluation_matches_the_f32_backend() {
        let mut rng = SmallRng::seed_from_u64(8);
        let mut net = mlp(&[3, 2], &mut rng);
        net.layer_weights_mut(0)
            .expect("weights")
            .copy_from_slice(&[1.0, 1.0, 1.0, -1.0, -1.0, -1.0]);
        let qnet = net.to_quantized(QFormat::Q3_4);
        let mut env = Line { position: 1 };
        let result = evaluate_qnetwork_discrete(
            &mut env,
            &qnet,
            20,
            10,
            &InferenceFaultMode::None,
            &mut SmallRng::seed_from_u64(9),
        );
        assert_eq!(result.success_rate, 1.0);
    }

    #[test]
    fn i8_discrete_evaluation_matches_the_f32_backend() {
        let mut rng = SmallRng::seed_from_u64(14);
        let mut net = mlp(&[3, 2], &mut rng);
        net.layer_weights_mut(0)
            .expect("weights")
            .copy_from_slice(&[1.0, 1.0, 1.0, -1.0, -1.0, -1.0]);
        let inet = navft_nn::I8Network::quantize(&net);
        let mut env = Line { position: 1 };
        let result = evaluate_policy_discrete(
            &mut env,
            &inet,
            20,
            10,
            &InferenceFaultMode::None,
            &mut SmallRng::seed_from_u64(15),
        );
        assert_eq!(result.success_rate, 1.0);
    }

    #[test]
    fn corrupt_i8_policy_weights_flips_live_bytes_in_the_faulted_span() {
        let mut rng = SmallRng::seed_from_u64(16);
        let net = mlp(&[3, 4, 2], &mut rng);
        let inet = navft_nn::I8Network::quantize(&net);
        let map =
            FaultMap::from_faults(vec![BitFault { word: 13, bit: 3, kind: FaultKind::BitFlip }]);
        let injector = Injector::new(FaultTarget::new(FaultSite::WeightBuffer), QFormat::Q3_4, map);
        let corrupted =
            corrupt_policy_weights(&inet, &InferenceFaultMode::TransientWholeEpisode(injector));
        // Word 13 lives in the second linear layer (span 12..20).
        let layers = inet.parametric_layers();
        let span = inet.weight_span(layers[1]);
        assert!(span.contains(&13));
        let before = inet.layer_weights_raw(layers[1]).expect("bytes");
        let after = corrupted.layer_weights_raw(layers[1]).expect("bytes");
        let local = 13 - span.start;
        assert_eq!(after[local], before[local] ^ (1 << 3));
        assert_eq!(
            before.iter().zip(after.iter()).filter(|(a, b)| a != b).count(),
            1,
            "exactly one live byte changes"
        );
        assert_eq!(
            inet.layer_weights_raw(layers[0]).expect("bytes"),
            corrupted.layer_weights_raw(layers[0]).expect("bytes")
        );
    }

    #[test]
    fn qnetwork_vision_evaluation_reports_mean_distance() {
        let mut env = StraightHall { remaining: 5 };
        let mut rng = SmallRng::seed_from_u64(10);
        let mut net = mlp(&[4, 2], &mut rng);
        net.layer_weights_mut(0).expect("weights").copy_from_slice(
            &[1.0; 4].iter().chain([-1.0f32; 4].iter()).copied().collect::<Vec<f32>>(),
        );
        let qnet = net.to_quantized(QFormat::Q4_11);
        let result =
            evaluate_qnetwork_vision(&mut env, &qnet, 4, 10, &InferenceFaultMode::None, &mut rng);
        assert_eq!(result.mean_distance, 5.0);
        assert_eq!(result.episodes, 4);
    }

    #[test]
    fn corrupt_qnetwork_weights_flips_live_words_in_the_faulted_span() {
        let mut rng = SmallRng::seed_from_u64(11);
        let net = mlp(&[3, 4, 2], &mut rng);
        let qnet = net.to_quantized(QFormat::Q4_11);
        let map =
            FaultMap::from_faults(vec![BitFault { word: 13, bit: 3, kind: FaultKind::BitFlip }]);
        let injector =
            Injector::new(FaultTarget::new(FaultSite::WeightBuffer), QFormat::Q4_11, map);
        let corrupted =
            corrupt_qnetwork_weights(&qnet, &InferenceFaultMode::TransientWholeEpisode(injector));
        // Word 13 lives in the second linear layer (span 12..20).
        let layers = qnet.parametric_layers();
        let span = qnet.weight_span(layers[1]);
        assert!(span.contains(&13));
        let before = qnet.layer_weights_raw(layers[1]).expect("words");
        let after = corrupted.layer_weights_raw(layers[1]).expect("words");
        let local = 13 - span.start;
        assert_eq!(after[local], ((before[local] ^ (1 << 3)) << 16) >> 16);
        assert_eq!(
            before.iter().zip(after.iter()).filter(|(a, b)| a != b).count(),
            1,
            "exactly one live word changes"
        );
        // The other layer is untouched.
        assert_eq!(
            qnet.layer_weights_raw(layers[0]).expect("words"),
            corrupted.layer_weights_raw(layers[0]).expect("words")
        );
    }

    #[test]
    fn corrupt_network_weights_only_touches_faulted_span() {
        let mut rng = SmallRng::seed_from_u64(7);
        let net = mlp(&[3, 4, 2], &mut rng);
        let map =
            FaultMap::from_faults(vec![BitFault { word: 0, bit: 7, kind: FaultKind::StuckAt1 }]);
        let injector =
            Injector::new(FaultTarget::new(FaultSite::WeightBuffer), QFormat::Q4_11, map);
        let corrupted =
            corrupt_network_weights(&net, &InferenceFaultMode::TransientWholeEpisode(injector));
        let diff: usize = net
            .flat_weights()
            .iter()
            .zip(corrupted.flat_weights().iter())
            .filter(|(a, b)| a != b)
            .count();
        assert_eq!(diff, 1);
    }

    #[test]
    fn action_traces_are_reproducible_and_respect_hooks() {
        let mut rng = SmallRng::seed_from_u64(17);
        let mut net = mlp(&[3, 2], &mut rng);
        net.layer_weights_mut(0)
            .expect("weights")
            .copy_from_slice(&[1.0, 1.0, 1.0, -1.0, -1.0, -1.0]);

        // The clean greedy trace reaches the goal in one step, identically
        // across repeated runs and backends.
        let mut env = Line { position: 1 };
        let trace = trace_policy_discrete(&mut env, &net, 10, &mut NoHooks);
        assert_eq!(trace, vec![0]);
        assert_eq!(trace, trace_policy_discrete(&mut env, &net, 10, &mut NoHooks));
        let qnet = net.to_quantized(QFormat::Q4_11);
        assert_eq!(trace, trace_policy_discrete(&mut env, &qnet, 10, &mut NoHooks));

        // A sign-flipping activation hook inverts the decision.
        struct Negate;
        impl ForwardHooks for Negate {
            fn on_activation(&mut self, _i: usize, _k: navft_nn::LayerKind, values: &mut [f32]) {
                for v in values.iter_mut() {
                    *v = -*v;
                }
            }
        }
        let hooked = trace_policy_discrete(&mut env, &net, 10, &mut Negate);
        assert_eq!(hooked, vec![1]);
    }

    #[test]
    fn vision_trace_follows_the_greedy_policy() {
        let mut env = StraightHall { remaining: 5 };
        let mut rng = SmallRng::seed_from_u64(18);
        let mut net = mlp(&[4, 2], &mut rng);
        net.layer_weights_mut(0).expect("weights").copy_from_slice(
            &[1.0; 4].iter().chain([-1.0f32; 4].iter()).copied().collect::<Vec<f32>>(),
        );
        let trace = trace_policy_vision(&mut env, &net, 10, &mut NoHooks);
        assert_eq!(trace, vec![0; 5], "episode terminates after 5 straight steps");
    }

    #[test]
    fn generic_discrete_evaluator_agrees_across_backends_on_a_clean_policy() {
        // The same hand-crafted always-go-right policy through both
        // instantiations of the one generic evaluator.
        let mut rng = SmallRng::seed_from_u64(12);
        let mut net = mlp(&[3, 2], &mut rng);
        net.layer_weights_mut(0)
            .expect("weights")
            .copy_from_slice(&[1.0, 1.0, 1.0, -1.0, -1.0, -1.0]);
        let qnet = net.to_quantized(QFormat::Q4_11);
        let mut env = Line { position: 1 };
        let f32_result = evaluate_policy_discrete(
            &mut env,
            &net,
            10,
            10,
            &InferenceFaultMode::None,
            &mut SmallRng::seed_from_u64(13),
        );
        let q_result = evaluate_policy_discrete(
            &mut env,
            &qnet,
            10,
            10,
            &InferenceFaultMode::None,
            &mut SmallRng::seed_from_u64(13),
        );
        assert_eq!(f32_result.success_rate, q_result.success_rate);
        assert_eq!(f32_result.mean_reward, q_result.mean_reward);
    }
}

use navft_fault::{InjectionSchedule, Injector, StoredWord};
use navft_nn::{Element, NetworkBase};

/// A training-time fault plan: *which* faults strike (an [`Injector`]) and
/// *when* (an [`InjectionSchedule`]).
///
/// The plan is consulted by the training loops in [`crate::trainer`]:
///
/// * transient bit flips are applied once, at the scheduled episode;
/// * permanent stuck-at faults are applied from the scheduled episode onwards
///   and re-enforced after every policy update, because a stuck memory cell
///   overrides whatever the learning algorithm writes into it.
///
/// # Examples
///
/// ```
/// use navft_fault::{FaultKind, FaultSite, FaultTarget, Injector, InjectionSchedule};
/// use navft_qformat::QFormat;
/// use navft_rl::FaultPlan;
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let mut rng = SmallRng::seed_from_u64(0);
/// let injector = Injector::sample(
///     FaultTarget::new(FaultSite::TabularBuffer),
///     400,
///     QFormat::Q3_4,
///     0.005,
///     FaultKind::BitFlip,
///     &mut rng,
/// );
/// let plan = FaultPlan::new(injector, InjectionSchedule::at_episode(500));
/// assert!(!plan.is_fault_free());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    injector: Option<Injector>,
    schedule: InjectionSchedule,
}

impl FaultPlan {
    /// A plan that injects nothing — the fault-free baseline.
    pub fn none() -> FaultPlan {
        FaultPlan { injector: None, schedule: InjectionSchedule::from_start() }
    }

    /// A plan applying `injector` according to `schedule`.
    pub fn new(injector: Injector, schedule: InjectionSchedule) -> FaultPlan {
        FaultPlan { injector: Some(injector), schedule }
    }

    /// Whether the plan injects no faults.
    pub fn is_fault_free(&self) -> bool {
        self.injector.as_ref().is_none_or(|i| i.fault_count() == 0)
    }

    /// The injection schedule.
    pub fn schedule(&self) -> InjectionSchedule {
        self.schedule
    }

    /// The injector, if the plan is not fault-free.
    pub fn injector(&self) -> Option<&Injector> {
        self.injector.as_ref()
    }

    /// Whether the plan carries permanent (stuck-at) faults.
    pub fn has_permanent(&self) -> bool {
        self.injector.as_ref().is_some_and(Injector::has_permanent)
    }

    /// Applies the plan to a flat policy buffer at the start of `episode`.
    pub fn on_episode_start(&self, episode: usize, buffer: &mut [f32]) {
        let Some(injector) = &self.injector else { return };
        if self.schedule.triggers_at(episode) {
            injector.corrupt(buffer);
        } else if injector.has_permanent() && self.schedule.active_at(episode) {
            injector.enforce(buffer);
        }
    }

    /// Re-enforces permanent faults on a flat policy buffer after a policy
    /// update during `episode`.
    pub fn after_update(&self, episode: usize, buffer: &mut [f32]) {
        let Some(injector) = &self.injector else { return };
        if injector.has_permanent() && self.schedule.active_at(episode) {
            injector.enforce(buffer);
        }
    }

    /// Applies the plan to a network's weight buffers at the start of
    /// `episode` — generic over the policy's storage element, so the same
    /// plan corrupts `f32` weights (through the Q-format round trip) and
    /// live raw words (in place) alike.
    ///
    /// The injector's fault map indexes the network's *concatenated* weight
    /// buffer (see [`NetworkBase::weight_span`]); each layer receives the
    /// slice of faults that falls into its span.
    pub fn on_episode_start_network<E: Element + StoredWord>(
        &self,
        episode: usize,
        network: &mut NetworkBase<E>,
    ) {
        let Some(injector) = &self.injector else { return };
        if self.schedule.triggers_at(episode) {
            Self::apply_to_network(injector, network, false);
        } else if injector.has_permanent() && self.schedule.active_at(episode) {
            Self::apply_to_network(injector, network, true);
        }
    }

    /// Re-enforces permanent faults on a network's weight buffers after a
    /// learning update during `episode`.
    pub fn after_update_network<E: Element + StoredWord>(
        &self,
        episode: usize,
        network: &mut NetworkBase<E>,
    ) {
        let Some(injector) = &self.injector else { return };
        if injector.has_permanent() && self.schedule.active_at(episode) {
            Self::apply_to_network(injector, network, true);
        }
    }

    fn apply_to_network<E: Element + StoredWord>(
        injector: &Injector,
        network: &mut NetworkBase<E>,
        enforce_only: bool,
    ) {
        let spans: Vec<(usize, std::ops::Range<usize>)> =
            network.parametric_layers().into_iter().map(|i| (i, network.weight_span(i))).collect();
        for (layer, span) in spans {
            if let Some(weights) = network.layer_weights_mut(layer) {
                if enforce_only {
                    injector.enforce_span(span.start, weights);
                } else {
                    injector.corrupt_span(span.start, weights);
                }
            }
        }
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use navft_fault::{BitFault, FaultKind, FaultMap, FaultSite, FaultTarget};
    use navft_nn::mlp;
    use navft_qformat::QFormat;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn single_fault_plan(kind: FaultKind, word: usize, episode: usize) -> FaultPlan {
        let map = FaultMap::from_faults(vec![BitFault { word, bit: 7, kind }]);
        let injector =
            Injector::new(FaultTarget::new(FaultSite::TabularBuffer), QFormat::Q3_4, map);
        FaultPlan::new(injector, navft_fault::InjectionSchedule::at_episode(episode))
    }

    #[test]
    fn fault_free_plan_changes_nothing() {
        let plan = FaultPlan::none();
        assert!(plan.is_fault_free());
        assert!(!plan.has_permanent());
        let mut buf = vec![1.0f32; 4];
        plan.on_episode_start(0, &mut buf);
        plan.after_update(0, &mut buf);
        assert_eq!(buf, vec![1.0; 4]);
        assert!(plan.injector().is_none());
    }

    #[test]
    fn transient_fault_strikes_only_at_the_scheduled_episode() {
        let plan = single_fault_plan(FaultKind::BitFlip, 0, 5);
        let mut buf = vec![1.0f32; 4];
        plan.on_episode_start(4, &mut buf);
        assert_eq!(buf[0], 1.0);
        plan.on_episode_start(5, &mut buf);
        assert!(buf[0] < 0.0);
        // It does not strike again at later episodes.
        buf[0] = 1.0;
        plan.on_episode_start(6, &mut buf);
        assert_eq!(buf[0], 1.0);
    }

    #[test]
    fn permanent_fault_is_reasserted_after_updates() {
        let plan = single_fault_plan(FaultKind::StuckAt1, 1, 0);
        assert!(plan.has_permanent());
        let mut buf = vec![1.0f32; 4];
        plan.on_episode_start(0, &mut buf);
        assert!(buf[1] < 0.0);
        buf[1] = 1.0; // a Bellman update "repairs" the cell
        plan.after_update(3, &mut buf);
        assert!(buf[1] < 0.0);
    }

    #[test]
    fn permanent_fault_before_schedule_is_inactive() {
        let plan = single_fault_plan(FaultKind::StuckAt0, 0, 10);
        let mut buf = vec![1.0f32; 2];
        plan.after_update(5, &mut buf);
        assert_eq!(buf[0], 1.0);
    }

    #[test]
    fn network_plan_corrupts_the_right_layer_span() {
        let mut rng = SmallRng::seed_from_u64(0);
        let mut net = mlp(&[4, 8, 2], &mut rng);
        let total = net.weight_count();
        // Fault the very last weight of the concatenated buffer (in fc2).
        let map = FaultMap::from_faults(vec![BitFault {
            word: total - 1,
            bit: 7,
            kind: FaultKind::StuckAt1,
        }]);
        let injector = Injector::new(FaultTarget::new(FaultSite::WeightBuffer), QFormat::Q3_4, map);
        let plan = FaultPlan::new(injector, navft_fault::InjectionSchedule::from_start());
        let fc1_before = net.layer_weights(0).expect("weights").to_vec();
        plan.on_episode_start_network(0, &mut net);
        assert_eq!(net.layer_weights(0).expect("weights"), fc1_before.as_slice());
        let last_layer = *net.parametric_layers().last().expect("layers");
        let fc2 = net.layer_weights(last_layer).expect("weights");
        assert!(fc2.last().expect("non-empty") < &0.0);
        // Re-enforcement after a (simulated) update restores the stuck value.
        let mut net2 = net.clone();
        if let Some(w) = net2.layer_weights_mut(last_layer).expect("weights").last_mut() {
            *w = 1.0;
        }
        plan.after_update_network(1, &mut net2);
        assert!(net2.layer_weights(last_layer).expect("weights").last().expect("non-empty") < &0.0);
    }
}

//! Training loops that weave together an agent, an environment and a
//! [`FaultPlan`], producing a [`TrainingTrace`].
//!
//! Every loop exposes an *episode observer* callback that runs at the end of
//! each episode with the trace so far and mutable access to the exploration
//! schedule. The paper's training-time mitigation (adaptive exploration-rate
//! adjustment, §5.1) plugs in through this observer without the trainer
//! knowing anything about mitigation.

use navft_nn::{EngineConfig, Scratch, Tensor};
use rand::Rng;

use crate::{
    one_hot_into, DiscreteEnvironment, DqnAgent, EpisodeOutcome, EpsilonSchedule, FaultPlan,
    TabularAgent, TrainingTrace, VecEnv, VisionEnvironment,
};

/// An episode observer that does nothing — training without mitigation.
pub fn no_mitigation() -> impl FnMut(usize, &TrainingTrace, &mut EpsilonSchedule) {
    |_, _, _| {}
}

/// How long to train and how long each episode may run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrainingConfig {
    /// Number of training episodes.
    pub episodes: usize,
    /// Maximum steps per episode before it is cut off.
    pub max_steps: usize,
}

impl TrainingConfig {
    /// Creates a configuration.
    pub fn new(episodes: usize, max_steps: usize) -> TrainingConfig {
        TrainingConfig { episodes, max_steps }
    }
}

impl Default for TrainingConfig {
    /// The Grid World default: 1000 episodes of at most 100 steps.
    fn default() -> Self {
        TrainingConfig { episodes: 1000, max_steps: 100 }
    }
}

/// Trains a tabular Q-learning agent under a fault plan.
///
/// The observer is called at the end of every episode with `(episode index,
/// trace so far, exploration schedule)`.
pub fn train_tabular<E, R, O>(
    env: &mut E,
    agent: &mut TabularAgent,
    config: TrainingConfig,
    plan: &FaultPlan,
    rng: &mut R,
    mut observer: O,
) -> TrainingTrace
where
    E: DiscreteEnvironment,
    R: Rng + ?Sized,
    O: FnMut(usize, &TrainingTrace, &mut EpsilonSchedule),
{
    let mut trace = TrainingTrace::new();
    for episode in 0..config.episodes {
        plan.on_episode_start(episode, agent.table.values_mut());
        let epsilon_at_start = agent.epsilon.epsilon();

        let mut state = env.reset();
        let mut outcome = EpisodeOutcome::empty();
        let (alpha, gamma) = (agent.alpha(), agent.gamma());
        let mut episode_transitions = Vec::with_capacity(config.max_steps);
        for _ in 0..config.max_steps {
            let action = agent.act(state, rng);
            let transition = env.step(action);
            agent.table.update(
                state,
                action,
                transition.reward,
                transition.next_state,
                transition.terminal,
                alpha,
                gamma,
            );
            plan.after_update(episode, agent.table.values_mut());
            episode_transitions.push((state, action, transition));
            outcome.cumulative_reward += transition.reward;
            outcome.steps += 1;
            state = transition.next_state;
            if transition.terminal {
                outcome.reached_goal = transition.reached_goal;
                break;
            }
        }
        // Backward replay: re-apply the episode's Bellman backups in reverse
        // order so that a goal discovery propagates its value down the whole
        // visited path within one episode (a standard tabular speed-up; the
        // stored table stays 8-bit quantized throughout).
        for (s, a, t) in episode_transitions.iter().rev() {
            agent.table.update(*s, *a, t.reward, t.next_state, t.terminal, alpha, gamma);
            plan.after_update(episode, agent.table.values_mut());
        }

        trace.push(outcome, epsilon_at_start);
        agent.epsilon.advance_episode();
        observer(episode, &trace, &mut agent.epsilon);
    }
    trace
}

/// Trains a DQN agent on a discrete-state environment (states are one-hot
/// encoded) under a fault plan.
pub fn train_dqn_discrete<E, R, O>(
    env: &mut E,
    agent: &mut DqnAgent,
    config: TrainingConfig,
    plan: &FaultPlan,
    rng: &mut R,
    mut observer: O,
) -> TrainingTrace
where
    E: DiscreteEnvironment,
    R: Rng + ?Sized,
    O: FnMut(usize, &TrainingTrace, &mut EpsilonSchedule),
{
    let num_states = env.num_states();
    let mut trace = TrainingTrace::new();
    // One scratch and two encoding buffers serve the whole training run; the
    // per-step action selection allocates nothing once they are warm.
    let mut scratch = Scratch::new();
    let mut encoded = Tensor::zeros(&[num_states]);
    let mut next_encoded = Tensor::zeros(&[num_states]);
    for episode in 0..config.episodes {
        plan.on_episode_start_network(episode, agent.network_mut());
        let epsilon_at_start = agent.epsilon.epsilon();

        let mut state = env.reset();
        let mut outcome = EpisodeOutcome::empty();
        for _ in 0..config.max_steps {
            one_hot_into(state, num_states, &mut encoded);
            let action = agent.act_scratch(&encoded, rng, &mut scratch);
            let transition = env.step(action);
            one_hot_into(transition.next_state, num_states, &mut next_encoded);
            agent.observe(&encoded, action, transition.reward, &next_encoded, transition.terminal);
            agent.learn(rng);
            plan.after_update_network(episode, agent.network_mut());
            outcome.cumulative_reward += transition.reward;
            outcome.steps += 1;
            state = transition.next_state;
            if transition.terminal {
                outcome.reached_goal = transition.reached_goal;
                break;
            }
        }

        trace.push(outcome, epsilon_at_start);
        agent.end_episode();
        observer(episode, &trace, &mut agent.epsilon);
    }
    trace
}

/// [`train_dqn_discrete`] collecting transitions from a vectorized rollout:
/// up to `venv.width()` episodes run in lockstep and every tick's ε-greedy
/// selection is **one** batched sweep of the online network
/// ([`DqnAgent::act_batch`]).
///
/// At batch width 1 this trainer is bit- and RNG-identical to the serial
/// loop (pinned by a regression test). At larger widths the environment
/// interaction, learning steps and episode lifecycle interleave across rows
/// — a different (but equally valid) experience stream, since the shared
/// policy evolves while several episodes are in flight. Episode lifecycle
/// events (fault-plan episode starts, ε advancement, the observer) fire per
/// episode in completion order; finished rows immediately pick up the next
/// pending episode, then the batch drains raggedly.
///
/// The environment prototype must be reset-deterministic (see
/// [`crate::vecenv`]); exploring-starts environments must stay on the
/// serial trainer.
pub fn train_dqn_discrete_vec<V, R, O>(
    venv: &mut V,
    agent: &mut DqnAgent,
    config: TrainingConfig,
    plan: &FaultPlan,
    rng: &mut R,
    mut observer: O,
    engine: EngineConfig,
) -> TrainingTrace
where
    V: VecEnv<Obs = usize>,
    R: Rng + ?Sized,
    O: FnMut(usize, &TrainingTrace, &mut EpsilonSchedule),
{
    struct Slot {
        episode: usize,
        step: usize,
        state: usize,
        outcome: EpisodeOutcome,
        epsilon_at_start: f64,
    }

    let num_states = venv.obs_shape()[0];
    let mut trace = TrainingTrace::new();
    if config.episodes == 0 {
        return trace;
    }
    if config.max_steps == 0 {
        // The serial loop still runs every episode's lifecycle around an
        // empty step loop.
        for episode in 0..config.episodes {
            plan.on_episode_start_network(episode, agent.network_mut());
            let epsilon_at_start = agent.epsilon.epsilon();
            let _ = venv.reset_row(0);
            trace.push(EpisodeOutcome::empty(), epsilon_at_start);
            agent.end_episode();
            observer(episode, &trace, &mut agent.epsilon);
        }
        return trace;
    }

    let width = venv.width().min(config.episodes);
    // One scratch and per-row encoding buffers serve the whole run.
    let mut scratch = Scratch::new();
    let mut states: Vec<Tensor> = (0..width).map(|_| Tensor::zeros(&[num_states])).collect();
    let mut next_encoded = Tensor::zeros(&[num_states]);
    let mut actions: Vec<usize> = Vec::with_capacity(width);

    let mut next_episode = 0usize;
    let start = |venv: &mut V, agent: &mut DqnAgent, next_episode: &mut usize, row: usize| {
        let episode = *next_episode;
        *next_episode += 1;
        plan.on_episode_start_network(episode, agent.network_mut());
        let epsilon_at_start = agent.epsilon.epsilon();
        let state = venv.reset_row(row);
        Slot { episode, step: 0, state, outcome: EpisodeOutcome::empty(), epsilon_at_start }
    };

    let mut rows: Vec<Option<Slot>> = Vec::with_capacity(width);
    for row in 0..width {
        rows.push(Some(start(venv, agent, &mut next_episode, row)));
    }
    let mut live = width;

    while live > 0 {
        let mut active: Vec<usize> = Vec::new();
        for (row, slot) in rows.iter().enumerate() {
            if let Some(slot) = slot {
                one_hot_into(slot.state, num_states, &mut states[active.len()]);
                active.push(row);
            }
        }
        agent.act_batch(&states[..active.len()], rng, &mut scratch, engine, &mut actions);

        for (k, &row) in active.iter().enumerate() {
            let mut slot = rows[row].take().expect("active row");
            let transition = venv.step_row(row, actions[k]);
            one_hot_into(transition.observation, num_states, &mut next_encoded);
            // `states[k]` still holds this row's encoded current state from
            // the selection pass above.
            agent.observe(
                &states[k],
                actions[k],
                transition.reward,
                &next_encoded,
                transition.terminal,
            );
            agent.learn(rng);
            plan.after_update_network(slot.episode, agent.network_mut());
            slot.outcome.cumulative_reward += transition.reward;
            slot.outcome.steps += 1;
            slot.step += 1;
            slot.state = transition.observation;
            if transition.terminal || slot.step == config.max_steps {
                if transition.terminal {
                    slot.outcome.reached_goal = transition.reached_goal;
                }
                trace.push(slot.outcome, slot.epsilon_at_start);
                agent.end_episode();
                observer(slot.episode, &trace, &mut agent.epsilon);
                if next_episode < config.episodes {
                    rows[row] = Some(start(venv, agent, &mut next_episode, row));
                } else {
                    live -= 1;
                }
            } else {
                rows[row] = Some(slot);
            }
        }
    }
    trace
}

/// Fine-tunes a DQN agent on a vision environment (the drone's online
/// transfer-learning stage) under a fault plan.
///
/// Distances travelled per episode land in [`TrainingTrace::distances`]; a
/// collision terminates the episode.
pub fn train_dqn_vision<E, R, O>(
    env: &mut E,
    agent: &mut DqnAgent,
    config: TrainingConfig,
    plan: &FaultPlan,
    rng: &mut R,
    mut observer: O,
) -> TrainingTrace
where
    E: VisionEnvironment,
    R: Rng + ?Sized,
    O: FnMut(usize, &TrainingTrace, &mut EpsilonSchedule),
{
    let mut trace = TrainingTrace::new();
    // One scratch serves the action selection of the whole fine-tuning run.
    let mut scratch = Scratch::new();
    for episode in 0..config.episodes {
        plan.on_episode_start_network(episode, agent.network_mut());
        let epsilon_at_start = agent.epsilon.epsilon();

        let mut observation = env.reset();
        let mut outcome = EpisodeOutcome::empty();
        for _ in 0..config.max_steps {
            let action = agent.act_scratch(&observation, rng, &mut scratch);
            let transition = env.step(action);
            agent.observe(
                &observation,
                action,
                transition.reward,
                &transition.observation,
                transition.terminal,
            );
            agent.learn(rng);
            plan.after_update_network(episode, agent.network_mut());
            outcome.cumulative_reward += transition.reward;
            outcome.distance += transition.distance;
            outcome.steps += 1;
            observation = transition.observation;
            if transition.terminal {
                break;
            }
        }

        trace.push(outcome, epsilon_at_start);
        agent.end_episode();
        observer(episode, &trace, &mut agent.epsilon);
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DiscreteTransition, DqnConfig, VisionTransition};
    use navft_nn::{mlp, Tensor};
    use navft_qformat::QFormat;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// A 1-D corridor of `n` cells; the goal is the right-most cell and a
    /// pit (failure) is the left-most cell.
    #[derive(Clone)]
    struct Corridor {
        n: usize,
        position: usize,
    }

    impl Corridor {
        fn new(n: usize) -> Corridor {
            Corridor { n, position: n / 2 }
        }
    }

    impl DiscreteEnvironment for Corridor {
        fn num_states(&self) -> usize {
            self.n
        }
        fn num_actions(&self) -> usize {
            2
        }
        fn reset(&mut self) -> usize {
            self.position = self.n / 2;
            self.position
        }
        fn step(&mut self, action: usize) -> DiscreteTransition {
            if action == 0 {
                self.position = (self.position + 1).min(self.n - 1);
            } else {
                self.position = self.position.saturating_sub(1);
            }
            let reached_goal = self.position == self.n - 1;
            let fell = self.position == 0;
            DiscreteTransition {
                next_state: self.position,
                reward: if reached_goal {
                    1.0
                } else if fell {
                    -1.0
                } else {
                    0.0
                },
                terminal: reached_goal || fell,
                reached_goal,
            }
        }
    }

    /// A trivially simple vision environment: a 1×4×4 observation whose mean
    /// brightness encodes the distance to a wall; action 0 flies forward.
    struct Hallway {
        steps_left: usize,
    }

    impl VisionEnvironment for Hallway {
        fn observation_shape(&self) -> [usize; 3] {
            [1, 4, 4]
        }
        fn num_actions(&self) -> usize {
            3
        }
        fn reset(&mut self) -> Tensor {
            self.steps_left = 6;
            Tensor::full(&[1, 4, 4], 1.0)
        }
        fn step(&mut self, action: usize) -> VisionTransition {
            let progress = if action == 0 { 1.0 } else { 0.2 };
            self.steps_left = self.steps_left.saturating_sub(1);
            VisionTransition {
                observation: Tensor::full(&[1, 4, 4], self.steps_left as f32 / 6.0),
                reward: progress,
                terminal: self.steps_left == 0,
                distance: progress,
            }
        }
    }

    #[test]
    fn tabular_training_learns_the_corridor() {
        let mut env = Corridor::new(7);
        let mut agent = TabularAgent::for_grid_world(7, 2);
        let mut rng = SmallRng::seed_from_u64(0);
        let trace = train_tabular(
            &mut env,
            &mut agent,
            TrainingConfig::new(300, 50),
            &FaultPlan::none(),
            &mut rng,
            no_mitigation(),
        );
        assert_eq!(trace.len(), 300);
        assert!(trace.recent_success_rate(50) > 0.9, "late success rate too low");
        // Greedy policy should walk right from the middle.
        assert_eq!(agent.table.best_action(3), 0);
    }

    #[test]
    fn epsilon_history_is_recorded_and_decays() {
        let mut env = Corridor::new(5);
        let mut agent = TabularAgent::for_grid_world(5, 2);
        let mut rng = SmallRng::seed_from_u64(1);
        let trace = train_tabular(
            &mut env,
            &mut agent,
            TrainingConfig::new(50, 20),
            &FaultPlan::none(),
            &mut rng,
            no_mitigation(),
        );
        assert_eq!(trace.epsilons.len(), 50);
        assert!(trace.epsilons[0] > trace.epsilons[49]);
    }

    #[test]
    fn observer_can_boost_exploration() {
        let mut env = Corridor::new(5);
        let mut agent = TabularAgent::for_grid_world(5, 2);
        let mut rng = SmallRng::seed_from_u64(2);
        let mut calls = 0usize;
        train_tabular(
            &mut env,
            &mut agent,
            TrainingConfig::new(10, 20),
            &FaultPlan::none(),
            &mut rng,
            |_, _, eps| {
                calls += 1;
                eps.boost(1.0);
            },
        );
        assert_eq!(calls, 10);
        assert_eq!(agent.epsilon.epsilon(), 1.0);
    }

    #[test]
    fn stuck_at_fault_keeps_the_table_cell_pinned() {
        use navft_fault::{
            BitFault, FaultKind, FaultMap, FaultSite, FaultTarget, InjectionSchedule, Injector,
        };

        let mut env = Corridor::new(5);
        let mut agent = TabularAgent::for_grid_world(5, 2);
        // Stick the sign bit of the very first table word to 1: it must stay
        // negative throughout training.
        let map =
            FaultMap::from_faults(vec![BitFault { word: 0, bit: 7, kind: FaultKind::StuckAt1 }]);
        let injector =
            Injector::new(FaultTarget::new(FaultSite::TabularBuffer), QFormat::Q3_4, map);
        let plan = FaultPlan::new(injector, InjectionSchedule::from_start());
        let mut rng = SmallRng::seed_from_u64(3);
        train_tabular(
            &mut env,
            &mut agent,
            TrainingConfig::new(100, 20),
            &plan,
            &mut rng,
            no_mitigation(),
        );
        assert!(agent.table.values()[0] < 0.0, "stuck-at-1 sign bit must keep the cell negative");
    }

    #[test]
    fn dqn_training_on_the_corridor_improves_success() {
        let mut env = Corridor::new(5);
        let mut rng = SmallRng::seed_from_u64(4);
        let net = mlp(&[5, 32, 2], &mut rng);
        let mut agent = DqnAgent::new(
            net,
            &[5],
            EpsilonSchedule::for_training(40),
            DqnConfig { learning_rate: 0.1, ..DqnConfig::default() },
        );
        let trace = train_dqn_discrete(
            &mut env,
            &mut agent,
            TrainingConfig::new(150, 30),
            &FaultPlan::none(),
            &mut rng,
            no_mitigation(),
        );
        assert!(trace.recent_success_rate(30) > 0.8, "DQN should learn the corridor");
    }

    #[test]
    fn vectorized_dqn_training_at_width_one_matches_the_serial_trainer() {
        use crate::DummyVecEnv;

        let make_agent = |seed: u64| {
            let mut rng = SmallRng::seed_from_u64(seed);
            let net = mlp(&[5, 16, 2], &mut rng);
            DqnAgent::new(net, &[5], EpsilonSchedule::for_training(20), DqnConfig::default())
        };

        let mut env = Corridor::new(5);
        let mut serial_agent = make_agent(6);
        let mut serial_rng = SmallRng::seed_from_u64(7);
        let serial_trace = train_dqn_discrete(
            &mut env,
            &mut serial_agent,
            TrainingConfig::new(40, 25),
            &FaultPlan::none(),
            &mut serial_rng,
            no_mitigation(),
        );

        let mut venv = DummyVecEnv::from_prototype(&Corridor::new(5), 1);
        let mut vec_agent = make_agent(6);
        let mut vec_rng = SmallRng::seed_from_u64(7);
        let vec_trace = train_dqn_discrete_vec(
            &mut venv,
            &mut vec_agent,
            TrainingConfig::new(40, 25),
            &FaultPlan::none(),
            &mut vec_rng,
            no_mitigation(),
            EngineConfig::default(),
        );

        assert_eq!(serial_trace.epsilons, vec_trace.epsilons);
        assert_eq!(serial_trace.len(), vec_trace.len());
        assert_eq!(serial_agent.network().flat_weights(), vec_agent.network().flat_weights());
    }

    #[test]
    fn vectorized_dqn_training_learns_the_corridor_at_width_four() {
        use crate::DummyVecEnv;

        let mut rng = SmallRng::seed_from_u64(8);
        let net = mlp(&[5, 32, 2], &mut rng);
        let mut agent = DqnAgent::new(
            net,
            &[5],
            EpsilonSchedule::for_training(40),
            DqnConfig { learning_rate: 0.1, ..DqnConfig::default() },
        );
        let mut venv = DummyVecEnv::from_prototype(&Corridor::new(5), 4);
        let trace = train_dqn_discrete_vec(
            &mut venv,
            &mut agent,
            TrainingConfig::new(150, 30),
            &FaultPlan::none(),
            &mut rng,
            no_mitigation(),
            EngineConfig::default(),
        );
        assert_eq!(trace.len(), 150);
        assert!(trace.recent_success_rate(30) > 0.8, "vectorized DQN should learn the corridor");
    }

    #[test]
    fn vision_training_records_distances() {
        let mut env = Hallway { steps_left: 6 };
        let mut rng = SmallRng::seed_from_u64(5);
        let net = mlp(&[16, 16, 3], &mut rng);
        let mut agent =
            DqnAgent::new(net, &[16], EpsilonSchedule::for_training(10), DqnConfig::default());
        let trace = train_dqn_vision(
            &mut env,
            &mut agent,
            TrainingConfig::new(8, 10),
            &FaultPlan::none(),
            &mut rng,
            no_mitigation(),
        );
        assert_eq!(trace.distances.len(), 8);
        assert!(trace.distances.iter().all(|&d| d > 0.0));
    }
}

//! Reinforcement-learning algorithms with fault-injection hooks.
//!
//! The paper studies how hardware faults affect *learning-based* navigation in
//! both training and inference. This crate provides the learning machinery:
//!
//! * Environments — the [`DiscreteEnvironment`] trait (Grid World, §4.1) and
//!   the [`VisionEnvironment`] trait (drone navigation, §4.2), implemented by
//!   the `navft-gridworld` and `navft-dronesim` crates.
//! * Policies — a quantized [`QTable`] with tabular Q-learning
//!   ([`TabularAgent`]) and a (Double) DQN agent ([`DqnAgent`]) over
//!   `navft-nn` networks with experience replay ([`ReplayBuffer`]).
//! * Exploration — the decaying ε-greedy [`EpsilonSchedule`], deliberately
//!   adjustable at run time because the training-time mitigation of §5.1
//!   steers it.
//! * Fault wiring — [`FaultPlan`] binds a `navft-fault` injector and schedule
//!   to the training loops in [`trainer`]; [`eval`] evaluates trained policies
//!   under the inference fault modes of the paper (Transient-1, Transient-M,
//!   permanent stuck-at).
//! * Vectorized rollouts — [`VecEnv`] steps B environment rows in lockstep
//!   and the [`rollout()`] driver evaluates every active row with **one**
//!   batched forward sweep per decision tick; the `*_batched` evaluators
//!   are bit-identical to their serial counterparts on every backend.
//! * Analysis — [`TrainingTrace`], [`EvalResult`] and the convergence helpers
//!   of [`convergence`].
//!
//! # Examples
//!
//! Train a tabular agent on a toy corridor and evaluate it fault-free:
//!
//! ```
//! use navft_rl::{
//!     evaluate_tabular, trainer, DiscreteEnvironment, DiscreteTransition, FaultPlan,
//!     InferenceFaultMode, TabularAgent,
//! };
//! use rand::{rngs::SmallRng, SeedableRng};
//!
//! struct Chain { position: usize }
//! impl DiscreteEnvironment for Chain {
//!     fn num_states(&self) -> usize { 4 }
//!     fn num_actions(&self) -> usize { 2 }
//!     fn reset(&mut self) -> usize { self.position = 0; 0 }
//!     fn step(&mut self, action: usize) -> DiscreteTransition {
//!         if action == 0 { self.position += 1 } else { self.position = self.position.saturating_sub(1) }
//!         let goal = self.position == 3;
//!         DiscreteTransition {
//!             next_state: self.position,
//!             reward: if goal { 1.0 } else { 0.0 },
//!             terminal: goal,
//!             reached_goal: goal,
//!         }
//!     }
//! }
//!
//! let mut env = Chain { position: 0 };
//! let mut agent = TabularAgent::for_grid_world(4, 2);
//! let mut rng = SmallRng::seed_from_u64(0);
//! trainer::train_tabular(
//!     &mut env,
//!     &mut agent,
//!     trainer::TrainingConfig::new(200, 20),
//!     &FaultPlan::none(),
//!     &mut rng,
//!     trainer::no_mitigation(),
//! );
//! let result = evaluate_tabular(&mut env, &agent.table, 20, 20, &InferenceFaultMode::None, &mut rng);
//! assert_eq!(result.success_rate, 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod convergence;
pub mod eval;
pub mod rollout;
pub mod trainer;
pub mod vecenv;

mod dqn;
mod env;
mod exploration;
mod faultplan;
mod metrics;
mod replay;
mod tabular;

pub use convergence::{episode_of_steady_exploitation, episodes_to_converge};
pub use dqn::{DqnAgent, DqnConfig};
pub use env::{
    one_hot, one_hot_into, DiscreteEnvironment, DiscreteTransition, VisionEnvironment,
    VisionTransition,
};
pub use eval::{
    corrupt_network_weights, corrupt_policy_weights, corrupt_qnetwork_weights,
    evaluate_network_discrete, evaluate_network_vision, evaluate_network_vision_hooked,
    evaluate_policy_discrete, evaluate_policy_vision, evaluate_policy_vision_hooked,
    evaluate_qnetwork_discrete, evaluate_qnetwork_vision, evaluate_tabular, trace_policy_discrete,
    trace_policy_vision, EvalElement, InferenceFaultMode,
};
pub use exploration::EpsilonSchedule;
pub use faultplan::FaultPlan;
pub use metrics::{EpisodeOutcome, EvalResult, TrainingTrace};
pub use replay::{ReplayBuffer, Transition};
pub use rollout::{
    evaluate_policy_discrete_batched, evaluate_policy_vision_batched,
    evaluate_policy_vision_hooked_batched, rollout, EpisodeTape, RolloutObs,
};
pub use tabular::{QTable, TabularAgent};
pub use vecenv::{DummyVecEnv, DummyVisionVecEnv, RowStep, VecEnv};

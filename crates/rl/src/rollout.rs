//! Batch-width policy evaluation: the rollout driver that steps a
//! [`VecEnv`] in lockstep with **one** batched forward sweep per tick.
//!
//! The serial evaluators in [`crate::eval`] run one forward pass per
//! decision step — correct, but the engine's blocked GEMM, SIMD
//! microkernels and batch sharding all pay off with width. [`rollout`]
//! keeps B episode rows in flight, **quantizing on ingest**: every
//! observation is encoded into its row's backend-native staging buffer the
//! moment it arrives (at reset and after each step), so integer backends
//! pay the f32 → word conversion exactly once per observation and never
//! inside the forward sweep. Each tick gathers the active rows' staged
//! buffers by reference into a single
//! [`NetworkBase::forward_batch_rows_into_cfg`] sweep and steps every
//! row's environment with its argmax action. Finished rows are immediately
//! reassigned to the next pending episode (auto-reset) until no episodes
//! remain, after which the batch drains raggedly.
//!
//! # Bit-exactness contract
//!
//! For reset-deterministic environments (see [`crate::vecenv`]), the
//! batched evaluators below are **bit-identical** to their serial
//! counterparts at every batch width, on every backend, under every fault
//! mode and hook combination. The pieces of the argument:
//!
//! * the engine guarantees each batch row equals a standalone pass at any
//!   [`EngineConfig`] (enforced by the `nn` equivalence suites);
//! * shared-RNG draws (the per-episode fault onset) happen in strict
//!   episode order: rows are assigned episodes in increasing order and
//!   each assignment performs exactly the serial evaluator's draw-then-
//!   `make_hooks`-then-reset sequence;
//! * a tick is split into its *clean* and *faulty* row groups via
//!   [`InferenceFaultMode`]'s per-step onset predicate, so each row's
//!   decision runs on exactly the network the serial loop would use;
//! * per-episode hooks ride their own row through [`DynRowHooks`], seeing
//!   only that episode's events in program order;
//! * results are folded from per-episode [`EpisodeTape`]s in episode-major,
//!   step-minor order — the serial accumulation order of the `f64` sums.

use rand::Rng;

use navft_nn::{argmax, DynRowHooks, EngineConfig, HooksFor, NetworkBase, NoHooks, Scratch};
use navft_nn::{Tensor, TensorBase};

use crate::eval::{corrupt_policy_weights, EvalElement, InferenceFaultMode};
use crate::vecenv::VecEnv;
use crate::EvalResult;

/// How a [`VecEnv`] observation encodes into a backend's input buffer —
/// the bridge letting one rollout driver serve discrete (one-hot) and
/// vision (frame) tasks on every backend.
pub trait RolloutObs<W: EvalElement> {
    /// Writes this observation into `buf` as the policy's input.
    fn encode(&self, buf: &mut TensorBase<W>);
}

impl<W: EvalElement> RolloutObs<W> for usize {
    fn encode(&self, buf: &mut TensorBase<W>) {
        W::one_hot(*self, buf);
    }
}

impl<W: EvalElement> RolloutObs<W> for Tensor {
    fn encode(&self, buf: &mut TensorBase<W>) {
        W::encode_into(self, buf);
    }
}

/// Everything one episode produced, in step order. The folds below replay
/// the serial evaluators' accumulation order from these tapes.
#[derive(Debug, Clone, Default)]
pub struct EpisodeTape {
    /// Reward of each step taken.
    pub rewards: Vec<f32>,
    /// Distance covered by each step taken (vision tasks; `0.0` rows
    /// otherwise).
    pub distances: Vec<f32>,
    /// Whether the episode's terminal transition reached the goal.
    pub reached_goal: bool,
}

/// One in-flight episode pinned to a batch row. The row's current
/// observation lives already-encoded in the rollout's staging pool, not
/// here: ingest quantizes it once on arrival.
struct RowState<H> {
    episode: usize,
    onset: usize,
    step: usize,
    hooks: H,
    tape: EpisodeTape,
}

/// Rolls `episodes` greedy episodes of `venv` under `network`, evaluating
/// up to `venv.width()` episodes per batched forward sweep, and returns
/// each episode's tape (indexed by episode).
///
/// This is the generic core behind [`evaluate_policy_discrete_batched`]
/// and [`evaluate_policy_vision_batched`]; it is public so training-time
/// collectors and tests can drive it directly. `make_hooks` is called once
/// per episode, in episode order, exactly as in
/// [`crate::eval::evaluate_policy_vision_hooked`].
#[allow(clippy::too_many_arguments)]
pub fn rollout<W, V, R, H, F>(
    venv: &mut V,
    network: &NetworkBase<W>,
    episodes: usize,
    max_steps: usize,
    fault: &InferenceFaultMode,
    rng: &mut R,
    mut make_hooks: F,
    config: EngineConfig,
) -> Vec<EpisodeTape>
where
    W: EvalElement,
    V: VecEnv,
    V::Obs: RolloutObs<W>,
    R: Rng + ?Sized,
    H: HooksFor<W>,
    F: FnMut(usize) -> H,
{
    if episodes == 0 {
        return Vec::new();
    }
    if max_steps == 0 {
        // The serial loops still reset the environment and build hooks per
        // episode (with no onset draw), then take zero steps.
        let mut tapes = Vec::with_capacity(episodes);
        for episode in 0..episodes {
            let _hooks = make_hooks(episode);
            let _ = venv.reset_row(0);
            tapes.push(EpisodeTape::default());
        }
        return tapes;
    }

    let corrupted = corrupt_policy_weights(network, fault);
    let width = venv.width().min(episodes);
    let shape = venv.obs_shape();

    // Quantize-on-ingest staging: each row owns one backend-native input
    // buffer, written exactly once per observation the moment it arrives.
    // One shared scratch serves every tick; once warm, a tick performs no
    // heap allocation beyond tape pushes and the per-tick group vectors.
    let mut staged: Vec<TensorBase<W>> =
        (0..width).map(|_| W::input_buffer(&shape, network)).collect();
    let mut scratch = Scratch::new();
    let mut actions = vec![0usize; width];

    let mut tapes: Vec<Option<EpisodeTape>> = (0..episodes).map(|_| None).collect();
    let mut next_episode = 0usize;

    // Episode assignment performs the serial evaluator's per-episode
    // sequence — onset draw, `make_hooks`, reset — so the shared RNG is
    // consumed in exactly the serial order; the reset observation is
    // ingested (encoded) immediately. Encoding consumes no randomness, so
    // moving it off the tick loop cannot reorder RNG draws.
    let assign = |venv: &mut V,
                  rng: &mut R,
                  make_hooks: &mut F,
                  next_episode: &mut usize,
                  row: usize,
                  buf: &mut TensorBase<W>| {
        let episode = *next_episode;
        *next_episode += 1;
        let onset = rng.gen_range(0..max_steps);
        let hooks = make_hooks(episode);
        venv.reset_row(row).encode(buf);
        RowState { episode, onset, step: 0, hooks, tape: EpisodeTape::default() }
    };

    let mut rows: Vec<Option<RowState<H>>> = Vec::with_capacity(width);
    for (row, buf) in staged.iter_mut().enumerate() {
        rows.push(Some(assign(venv, rng, &mut make_hooks, &mut next_episode, row, buf)));
    }
    let mut live = width;

    while live > 0 {
        // Partition the tick into its clean and faulty row groups, gather
        // each group's staged input buffers by reference, and collect each
        // group's hooks — one pass, in row order, so group-internal order
        // matches row order. No observation is (re-)encoded here.
        let mut clean_rows: Vec<usize> = Vec::new();
        let mut faulty_rows: Vec<usize> = Vec::new();
        let mut clean_inputs: Vec<&TensorBase<W>> = Vec::new();
        let mut faulty_inputs: Vec<&TensorBase<W>> = Vec::new();
        let mut clean_hooks: Vec<&mut dyn HooksFor<W>> = Vec::new();
        let mut faulty_hooks: Vec<&mut dyn HooksFor<W>> = Vec::new();
        for ((row, slot), buf) in rows.iter_mut().enumerate().zip(staged.iter()) {
            let Some(state) = slot.as_mut() else { continue };
            if fault.faulty_at(state.step, state.onset) {
                faulty_rows.push(row);
                faulty_inputs.push(buf);
                faulty_hooks.push(&mut state.hooks);
            } else {
                clean_rows.push(row);
                clean_inputs.push(buf);
                clean_hooks.push(&mut state.hooks);
            }
        }

        // One batched sweep per group; actions are read out of the shared
        // scratch before the second sweep reuses it.
        if !clean_rows.is_empty() {
            let mut hooks = DynRowHooks::new(clean_hooks);
            network.forward_batch_rows_into_cfg(&clean_inputs, &mut scratch, &mut hooks, config);
            for (k, &row) in clean_rows.iter().enumerate() {
                actions[row] = argmax(scratch.row(k));
            }
        }
        if !faulty_rows.is_empty() {
            let mut hooks = DynRowHooks::new(faulty_hooks);
            corrupted.forward_batch_rows_into_cfg(&faulty_inputs, &mut scratch, &mut hooks, config);
            for (k, &row) in faulty_rows.iter().enumerate() {
                actions[row] = argmax(scratch.row(k));
            }
        }

        // Step every active row in row order, ingesting each new
        // observation into the row's staging buffer as it arrives; finished
        // rows immediately pick up the next pending episode, or drain out.
        for ((row, slot), buf) in rows.iter_mut().enumerate().zip(staged.iter_mut()) {
            let Some(state) = slot.as_mut() else { continue };
            let outcome = venv.step_row(row, actions[row]);
            state.tape.rewards.push(outcome.reward);
            state.tape.distances.push(outcome.distance);
            outcome.observation.encode(buf);
            state.step += 1;
            if outcome.terminal || state.step == max_steps {
                if outcome.terminal {
                    state.tape.reached_goal = outcome.reached_goal;
                }
                let finished = slot.take().expect("active row");
                tapes[finished.episode] = Some(finished.tape);
                if next_episode < episodes {
                    *slot = Some(assign(venv, rng, &mut make_hooks, &mut next_episode, row, buf));
                } else {
                    live -= 1;
                }
            }
        }
    }

    tapes.into_iter().map(|tape| tape.expect("every episode finished")).collect()
}

/// Folds tapes in the serial discrete evaluator's accumulation order.
fn fold_discrete(tapes: &[EpisodeTape], episodes: usize) -> EvalResult {
    let mut successes = 0usize;
    let mut total_reward = 0.0f64;
    for tape in tapes {
        for &reward in &tape.rewards {
            total_reward += f64::from(reward);
        }
        if tape.reached_goal {
            successes += 1;
        }
    }
    EvalResult {
        success_rate: successes as f64 / episodes.max(1) as f64,
        mean_reward: total_reward / episodes.max(1) as f64,
        mean_distance: 0.0,
        episodes,
    }
}

/// Folds tapes in the serial vision evaluator's accumulation order.
fn fold_vision(tapes: &[EpisodeTape], episodes: usize) -> EvalResult {
    let mut total_reward = 0.0f64;
    let mut total_distance = 0.0f64;
    for tape in tapes {
        for (&reward, &distance) in tape.rewards.iter().zip(tape.distances.iter()) {
            total_reward += f64::from(reward);
            total_distance += f64::from(distance);
        }
    }
    EvalResult {
        success_rate: 0.0,
        mean_reward: total_reward / episodes.max(1) as f64,
        mean_distance: total_distance / episodes.max(1) as f64,
        episodes,
    }
}

/// [`crate::eval::evaluate_policy_discrete`] at batch width: identical
/// results (bit for bit, given a reset-deterministic environment), one
/// batched forward sweep per decision tick instead of one pass per step.
pub fn evaluate_policy_discrete_batched<W, V, R>(
    venv: &mut V,
    network: &NetworkBase<W>,
    episodes: usize,
    max_steps: usize,
    fault: &InferenceFaultMode,
    rng: &mut R,
    config: EngineConfig,
) -> EvalResult
where
    W: EvalElement,
    V: VecEnv,
    V::Obs: RolloutObs<W>,
    R: Rng + ?Sized,
    NoHooks: HooksFor<W>,
{
    let tapes = rollout(venv, network, episodes, max_steps, fault, rng, |_| NoHooks, config);
    fold_discrete(&tapes, episodes)
}

/// [`crate::eval::evaluate_policy_vision`] at batch width.
pub fn evaluate_policy_vision_batched<W, V, R>(
    venv: &mut V,
    network: &NetworkBase<W>,
    episodes: usize,
    max_steps: usize,
    fault: &InferenceFaultMode,
    rng: &mut R,
    config: EngineConfig,
) -> EvalResult
where
    W: EvalElement,
    V: VecEnv,
    V::Obs: RolloutObs<W>,
    R: Rng + ?Sized,
    NoHooks: HooksFor<W>,
{
    evaluate_policy_vision_hooked_batched(
        venv,
        network,
        episodes,
        max_steps,
        fault,
        rng,
        |_| NoHooks,
        config,
    )
}

/// [`crate::eval::evaluate_policy_vision_hooked`] at batch width:
/// `make_hooks` is called once per episode in episode order and each
/// episode's hooks observe only that episode's forward events, riding
/// their own batch row through [`DynRowHooks`].
#[allow(clippy::too_many_arguments)]
pub fn evaluate_policy_vision_hooked_batched<W, V, R, H, F>(
    venv: &mut V,
    network: &NetworkBase<W>,
    episodes: usize,
    max_steps: usize,
    fault: &InferenceFaultMode,
    rng: &mut R,
    make_hooks: F,
    config: EngineConfig,
) -> EvalResult
where
    W: EvalElement,
    V: VecEnv,
    V::Obs: RolloutObs<W>,
    R: Rng + ?Sized,
    H: HooksFor<W>,
    F: FnMut(usize) -> H,
{
    let tapes = rollout(venv, network, episodes, max_steps, fault, rng, make_hooks, config);
    fold_vision(&tapes, episodes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{evaluate_policy_discrete, evaluate_policy_vision};
    use crate::vecenv::{DummyVecEnv, DummyVisionVecEnv};
    use crate::{DiscreteEnvironment, DiscreteTransition, VisionEnvironment, VisionTransition};
    use navft_fault::{BitFault, FaultKind, FaultMap, FaultSite, FaultTarget, Injector};
    use navft_nn::{mlp, NoHooks};
    use navft_qformat::QFormat;
    use rand::rngs::SmallRng;
    use rand::{RngCore, SeedableRng};

    /// Three states in a row; goal is state 2, state 0 a pit. Action 0
    /// moves right, action 1 left — the eval-module fixture, cloneable.
    #[derive(Clone)]
    struct Line {
        position: usize,
    }

    impl DiscreteEnvironment for Line {
        fn num_states(&self) -> usize {
            3
        }
        fn num_actions(&self) -> usize {
            2
        }
        fn reset(&mut self) -> usize {
            self.position = 1;
            1
        }
        fn step(&mut self, action: usize) -> DiscreteTransition {
            if action == 0 {
                self.position += 1;
            } else {
                self.position = self.position.saturating_sub(1);
            }
            let reached_goal = self.position >= 2;
            let fell = self.position == 0;
            DiscreteTransition {
                next_state: self.position.min(2),
                reward: if reached_goal {
                    1.0
                } else if fell {
                    -1.0
                } else {
                    0.0
                },
                terminal: reached_goal || fell,
                reached_goal,
            }
        }
    }

    #[derive(Clone)]
    struct StraightHall {
        remaining: usize,
    }

    impl VisionEnvironment for StraightHall {
        fn observation_shape(&self) -> [usize; 3] {
            [1, 2, 2]
        }
        fn num_actions(&self) -> usize {
            2
        }
        fn reset(&mut self) -> Tensor {
            self.remaining = 5;
            Tensor::full(&[1, 2, 2], 0.5)
        }
        fn step(&mut self, action: usize) -> VisionTransition {
            let distance = if action == 0 { 1.0 } else { 0.0 };
            self.remaining -= 1;
            VisionTransition {
                observation: Tensor::full(&[1, 2, 2], 0.5),
                reward: distance,
                terminal: self.remaining == 0,
                distance,
            }
        }
    }

    fn go_right_policy() -> navft_nn::Network {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut net = mlp(&[3, 2], &mut rng);
        net.layer_weights_mut(0)
            .expect("weights")
            .copy_from_slice(&[1.0, 1.0, 1.0, -1.0, -1.0, -1.0]);
        net
    }

    fn flip_decision_injector() -> Injector {
        let map =
            FaultMap::from_faults(vec![BitFault { word: 0, bit: 31, kind: FaultKind::BitFlip }]);
        Injector::new(FaultTarget::new(FaultSite::WeightBuffer), QFormat::Q3_4, map)
    }

    #[test]
    fn batched_discrete_matches_serial_bit_for_bit() {
        let net = go_right_policy();
        for fault in [
            InferenceFaultMode::None,
            InferenceFaultMode::TransientSingleStep(flip_decision_injector()),
            InferenceFaultMode::TransientFromRandomStep(flip_decision_injector()),
            InferenceFaultMode::Permanent(flip_decision_injector()),
        ] {
            let mut env = Line { position: 1 };
            let serial = evaluate_policy_discrete(
                &mut env,
                &net,
                25,
                10,
                &fault,
                &mut SmallRng::seed_from_u64(77),
            );
            for width in [1usize, 2, 7, 64] {
                let mut venv = DummyVecEnv::from_prototype(&Line { position: 1 }, width);
                let batched = evaluate_policy_discrete_batched(
                    &mut venv,
                    &net,
                    25,
                    10,
                    &fault,
                    &mut SmallRng::seed_from_u64(77),
                    EngineConfig::default(),
                );
                assert_eq!(serial.success_rate, batched.success_rate, "width {width}");
                assert_eq!(serial.mean_reward.to_bits(), batched.mean_reward.to_bits());
                assert_eq!(serial.episodes, batched.episodes);
            }
        }
    }

    #[test]
    fn batched_vision_matches_serial_bit_for_bit() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut net = mlp(&[4, 2], &mut rng);
        net.layer_weights_mut(0).expect("weights").copy_from_slice(
            &[1.0; 4].iter().chain([-1.0f32; 4].iter()).copied().collect::<Vec<f32>>(),
        );
        let mut env = StraightHall { remaining: 5 };
        let serial = evaluate_policy_vision(
            &mut env,
            &net,
            9,
            10,
            &InferenceFaultMode::None,
            &mut SmallRng::seed_from_u64(21),
        );
        for width in [1usize, 3, 16] {
            let mut venv = DummyVisionVecEnv::from_prototype(&StraightHall { remaining: 5 }, width);
            let batched = evaluate_policy_vision_batched(
                &mut venv,
                &net,
                9,
                10,
                &InferenceFaultMode::None,
                &mut SmallRng::seed_from_u64(21),
                EngineConfig::default(),
            );
            assert_eq!(serial.mean_distance.to_bits(), batched.mean_distance.to_bits());
            assert_eq!(serial.mean_reward.to_bits(), batched.mean_reward.to_bits());
        }
    }

    #[test]
    fn zero_episode_and_zero_step_edges_match_serial() {
        let net = go_right_policy();
        let mut venv = DummyVecEnv::from_prototype(&Line { position: 1 }, 4);
        let empty = evaluate_policy_discrete_batched(
            &mut venv,
            &net,
            0,
            10,
            &InferenceFaultMode::None,
            &mut SmallRng::seed_from_u64(0),
            EngineConfig::default(),
        );
        assert_eq!(empty.success_rate, 0.0);
        assert_eq!(empty.episodes, 0);

        // max_steps == 0 must consume no RNG draws, like the serial loop.
        let mut rng = SmallRng::seed_from_u64(9);
        let stepless = evaluate_policy_discrete_batched(
            &mut venv,
            &net,
            3,
            0,
            &InferenceFaultMode::None,
            &mut rng,
            EngineConfig::default(),
        );
        assert_eq!(stepless.success_rate, 0.0);
        let mut reference = SmallRng::seed_from_u64(9);
        assert_eq!(rng.next_u64(), reference.next_u64());
    }

    #[test]
    fn rollout_tapes_record_ragged_episode_lengths() {
        let net = go_right_policy();
        let mut venv = DummyVecEnv::from_prototype(&Line { position: 1 }, 2);
        let tapes = rollout(
            &mut venv,
            &net,
            5,
            10,
            &InferenceFaultMode::None,
            &mut SmallRng::seed_from_u64(3),
            |_| NoHooks,
            EngineConfig::default(),
        );
        assert_eq!(tapes.len(), 5);
        for tape in &tapes {
            assert_eq!(tape.rewards.len(), 1, "go-right reaches the goal in one step");
            assert!(tape.reached_goal);
        }
    }
}

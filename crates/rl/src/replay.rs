use rand::Rng;

/// One stored transition `(s, a, r, s', terminal)` with flattened states.
#[derive(Debug, Clone, PartialEq)]
pub struct Transition {
    /// The flattened observation the action was taken in.
    pub state: Vec<f32>,
    /// The action index taken.
    pub action: usize,
    /// The reward received.
    pub reward: f32,
    /// The flattened next observation.
    pub next_state: Vec<f32>,
    /// Whether the transition ended the episode.
    pub terminal: bool,
}

/// A bounded experience-replay buffer with uniform sampling.
///
/// The drone policy of the paper is trained with Double DQN *with experience
/// replay*; the Grid World NN policy uses the same machinery at a smaller
/// scale.
///
/// # Examples
///
/// ```
/// use navft_rl::{ReplayBuffer, Transition};
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let mut buffer = ReplayBuffer::new(2);
/// for i in 0..3 {
///     buffer.push(Transition {
///         state: vec![i as f32],
///         action: 0,
///         reward: 0.0,
///         next_state: vec![i as f32 + 1.0],
///         terminal: false,
///     });
/// }
/// assert_eq!(buffer.len(), 2); // the oldest transition was evicted
/// let mut rng = SmallRng::seed_from_u64(0);
/// assert_eq!(buffer.sample(5, &mut rng).len(), 5);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ReplayBuffer {
    capacity: usize,
    storage: Vec<Transition>,
    next: usize,
}

impl ReplayBuffer {
    /// Creates a buffer holding at most `capacity` transitions.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> ReplayBuffer {
        assert!(capacity > 0, "replay capacity must be non-zero");
        ReplayBuffer { capacity, storage: Vec::with_capacity(capacity.min(1024)), next: 0 }
    }

    /// Number of stored transitions.
    pub fn len(&self) -> usize {
        self.storage.len()
    }

    /// Whether the buffer holds no transitions.
    pub fn is_empty(&self) -> bool {
        self.storage.is_empty()
    }

    /// The maximum number of transitions retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts a transition, evicting the oldest one once full.
    pub fn push(&mut self, transition: Transition) {
        if self.storage.len() < self.capacity {
            self.storage.push(transition);
        } else {
            self.storage[self.next] = transition;
            self.next = (self.next + 1) % self.capacity;
        }
    }

    /// Samples `count` transitions uniformly with replacement.
    ///
    /// Returns an empty vector if the buffer is empty.
    pub fn sample<R: Rng + ?Sized>(&self, count: usize, rng: &mut R) -> Vec<&Transition> {
        if self.storage.is_empty() {
            return Vec::new();
        }
        (0..count).map(|_| &self.storage[rng.gen_range(0..self.storage.len())]).collect()
    }

    /// Removes every stored transition.
    pub fn clear(&mut self) {
        self.storage.clear();
        self.next = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn transition(tag: f32) -> Transition {
        Transition {
            state: vec![tag],
            action: 0,
            reward: tag,
            next_state: vec![tag],
            terminal: false,
        }
    }

    #[test]
    fn push_respects_capacity_with_fifo_eviction() {
        let mut buffer = ReplayBuffer::new(3);
        for i in 0..5 {
            buffer.push(transition(i as f32));
        }
        assert_eq!(buffer.len(), 3);
        assert_eq!(buffer.capacity(), 3);
        let rewards: Vec<f32> = buffer.storage.iter().map(|t| t.reward).collect();
        // Slots 0 and 1 were overwritten by transitions 3 and 4.
        assert_eq!(rewards, vec![3.0, 4.0, 2.0]);
    }

    #[test]
    fn sample_from_empty_buffer_is_empty() {
        let buffer = ReplayBuffer::new(4);
        let mut rng = SmallRng::seed_from_u64(0);
        assert!(buffer.sample(8, &mut rng).is_empty());
        assert!(buffer.is_empty());
    }

    #[test]
    fn sample_returns_requested_count() {
        let mut buffer = ReplayBuffer::new(8);
        buffer.push(transition(1.0));
        buffer.push(transition(2.0));
        let mut rng = SmallRng::seed_from_u64(1);
        let batch = buffer.sample(16, &mut rng);
        assert_eq!(batch.len(), 16);
        assert!(batch.iter().all(|t| t.reward == 1.0 || t.reward == 2.0));
    }

    #[test]
    fn clear_empties_the_buffer() {
        let mut buffer = ReplayBuffer::new(4);
        buffer.push(transition(1.0));
        buffer.clear();
        assert!(buffer.is_empty());
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_is_rejected() {
        let _ = ReplayBuffer::new(0);
    }
}

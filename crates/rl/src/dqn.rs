use rand::Rng;

use navft_nn::{
    argmax, EngineConfig, ForwardTrace, I8Network, I8Scratch, I8Tensor, Network, NoHooks, Scratch,
    Tensor,
};

use crate::{EpsilonSchedule, EvalElement, ReplayBuffer, Transition};

/// Hyper-parameters of the (Double) DQN agent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DqnConfig {
    /// Discount factor γ.
    pub gamma: f32,
    /// SGD learning rate.
    pub learning_rate: f32,
    /// Mini-batch size per learning step.
    pub batch_size: usize,
    /// Replay buffer capacity.
    pub replay_capacity: usize,
    /// Number of episodes between target-network synchronisations.
    pub target_sync_every: usize,
    /// Whether to use the Double DQN target (the drone task) or the vanilla
    /// DQN target (sufficient for Grid World).
    pub double_dqn: bool,
    /// Index of the first trainable layer; lower layers stay frozen
    /// (transfer-learning fine-tuning of the fully-connected tail).
    pub trainable_from: usize,
}

impl Default for DqnConfig {
    /// The Grid World NN-policy configuration: γ = 0.9, lr = 0.05, batch 16.
    fn default() -> Self {
        DqnConfig {
            gamma: 0.9,
            learning_rate: 0.05,
            batch_size: 16,
            replay_capacity: 4096,
            target_sync_every: 10,
            double_dqn: false,
            trainable_from: 0,
        }
    }
}

impl DqnConfig {
    /// The drone-task configuration: Double DQN with experience replay and a
    /// frozen convolutional feature extractor (only the fully-connected tail
    /// is fine-tuned online), mirroring the transfer-learning setup of the
    /// paper.
    pub fn drone(trainable_from: usize) -> DqnConfig {
        DqnConfig {
            gamma: 0.95,
            learning_rate: 0.01,
            batch_size: 8,
            replay_capacity: 2048,
            target_sync_every: 5,
            double_dqn: true,
            trainable_from,
        }
    }
}

/// A (Double) DQN agent: an online network, a target network, an ε-greedy
/// behaviour policy and an experience-replay buffer.
///
/// The agent's networks expose their weight buffers (via
/// [`DqnAgent::network_mut`]) so fault injectors can corrupt them exactly as
/// they would corrupt accelerator weight memory.
#[derive(Debug, Clone)]
pub struct DqnAgent {
    online: Network,
    target: Network,
    config: DqnConfig,
    // The engine settings every internal forward pass runs under. Explicit
    // and per-agent, so agents never observe the deprecated process-wide
    // kernel knobs.
    engine: EngineConfig,
    /// The exploration schedule (public so the training-time mitigation can
    /// adjust it).
    pub epsilon: EpsilonSchedule,
    replay: ReplayBuffer,
    input_shape: Vec<usize>,
    episodes_since_sync: usize,
    // Preallocated learning-step workspace: the batched bootstrap sweep and
    // the per-transition traced pass reuse these across learn() calls, so a
    // warm learning step performs no per-transition heap allocation.
    scratch: Scratch,
    trace: ForwardTrace,
    next_batch: Vec<Tensor>,
    target_q: Vec<f32>,
    state_buf: Tensor,
    grad: Vec<f32>,
    // The optional int8 affine snapshot of the target network (see
    // [`DqnAgent::with_i8_target`]): refreshed at every target sync, swept
    // for the bootstrap targets in place of the f32 target network.
    i8_target: Option<I8Network>,
    i8_scratch: I8Scratch,
    i8_next_batch: Vec<I8Tensor>,
}

impl DqnAgent {
    /// Creates an agent around `network`, which consumes observations of
    /// `input_shape`.
    pub fn new(
        network: Network,
        input_shape: &[usize],
        epsilon: EpsilonSchedule,
        config: DqnConfig,
    ) -> DqnAgent {
        let target = network.clone();
        DqnAgent {
            online: network,
            target,
            replay: ReplayBuffer::new(config.replay_capacity),
            config,
            engine: EngineConfig::default(),
            epsilon,
            input_shape: input_shape.to_vec(),
            episodes_since_sync: 0,
            scratch: Scratch::new(),
            trace: ForwardTrace::new(),
            next_batch: Vec::new(),
            target_q: Vec::new(),
            state_buf: Tensor::zeros(&[1]),
            grad: Vec::new(),
            i8_target: None,
            i8_scratch: I8Scratch::new(),
            i8_next_batch: Vec::new(),
        }
    }

    /// The agent's configuration.
    pub fn config(&self) -> DqnConfig {
        self.config
    }

    /// Replaces the [`EngineConfig`] the agent's internal forward passes run
    /// under (thread count, scalar-kernel pin). Defaults to
    /// [`EngineConfig::default`]; results are bit-identical under any
    /// config, only throughput changes.
    pub fn with_engine_config(mut self, engine: EngineConfig) -> DqnAgent {
        self.engine = engine;
        self
    }

    /// The engine settings the agent's internal forward passes run under.
    pub fn engine_config(&self) -> EngineConfig {
        self.engine
    }

    /// Switches the bootstrap targets onto an **int8 affine snapshot** of
    /// the target network: every target sync also compiles the online
    /// network to an [`I8Network`], and `learn()` sweeps the minibatch of
    /// next states through that quantized network (dequantizing its output
    /// row per transition) instead of the f32 target.
    ///
    /// This trains against the serving-style Int8 policy the agent will
    /// actually be deployed as — the quantization error of the target's
    /// Q-values is folded into the TD error rather than discovered after
    /// export. Gradients, the online network, and Double-DQN action
    /// selection stay f32; only the frozen bootstrap evaluation is
    /// quantized. Training remains deterministic: the quantized sweep is
    /// bit-exact, so identically-seeded runs stay bit-identical.
    pub fn with_i8_target(mut self) -> DqnAgent {
        self.i8_target = Some(I8Network::quantize(&self.target));
        self
    }

    /// The int8 target snapshot, when [`DqnAgent::with_i8_target`] enabled
    /// it.
    pub fn i8_target_network(&self) -> Option<&I8Network> {
        self.i8_target.as_ref()
    }

    /// The online (behaviour) network.
    pub fn network(&self) -> &Network {
        &self.online
    }

    /// The online network, mutably — the weight-fault injection surface.
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.online
    }

    /// The target network used to compute bootstrap targets.
    pub fn target_network(&self) -> &Network {
        &self.target
    }

    /// The replay buffer.
    pub fn replay(&self) -> &ReplayBuffer {
        &self.replay
    }

    /// The expected observation shape.
    pub fn input_shape(&self) -> &[usize] {
        &self.input_shape
    }

    /// Computes the Q-values of `state` with the online network.
    pub fn q_values(&self, state: &Tensor) -> Tensor {
        self.online.forward(state)
    }

    /// The greedy action for `state`.
    pub fn greedy_action(&self, state: &Tensor) -> usize {
        self.q_values(state).argmax()
    }

    /// The greedy action for `state`, evaluated through a caller-provided
    /// [`Scratch`] — the zero-allocation form of [`DqnAgent::greedy_action`]
    /// used by episode loops.
    pub fn greedy_action_scratch(&self, state: &Tensor, scratch: &mut Scratch) -> usize {
        argmax(self.online.forward_scratch_cfg(state, scratch, &mut NoHooks, self.engine))
    }

    /// Chooses an action ε-greedily.
    pub fn act<R: Rng + ?Sized>(&self, state: &Tensor, rng: &mut R) -> usize {
        if rng.gen_bool(self.epsilon.epsilon().clamp(0.0, 1.0)) {
            rng.gen_range(0..self.num_actions())
        } else {
            self.greedy_action(state)
        }
    }

    /// Chooses an action ε-greedily, evaluating the greedy branch through a
    /// caller-provided [`Scratch`]. Behaviour (including RNG consumption) is
    /// identical to [`DqnAgent::act`]; only the allocation profile differs.
    pub fn act_scratch<R: Rng + ?Sized>(
        &self,
        state: &Tensor,
        rng: &mut R,
        scratch: &mut Scratch,
    ) -> usize {
        if rng.gen_bool(self.epsilon.epsilon().clamp(0.0, 1.0)) {
            rng.gen_range(0..self.num_actions())
        } else {
            self.greedy_action_scratch(state, scratch)
        }
    }

    /// Chooses ε-greedy actions for a whole batch of states, evaluating the
    /// greedy branch of every row with **one** batched sweep of the online
    /// network — the selection path of the vectorized trainers.
    ///
    /// The greedy sweep consumes no randomness, so the RNG draws happen per
    /// row in row order, each exactly the draw sequence of
    /// [`DqnAgent::act_scratch`]; at batch width 1 this selector is bit- and
    /// RNG-identical to the serial one.
    pub fn act_batch<R: Rng + ?Sized>(
        &self,
        states: &[Tensor],
        rng: &mut R,
        scratch: &mut Scratch,
        config: EngineConfig,
        actions: &mut Vec<usize>,
    ) {
        actions.clear();
        if states.is_empty() {
            return;
        }
        self.online.forward_batch_into_cfg(states, scratch, &mut NoHooks, config);
        let epsilon = self.epsilon.epsilon().clamp(0.0, 1.0);
        let num_actions = self.num_actions();
        for row in 0..states.len() {
            let action = if rng.gen_bool(epsilon) {
                rng.gen_range(0..num_actions)
            } else {
                argmax(scratch.row(row))
            };
            actions.push(action);
        }
    }

    /// Number of actions (the output width of the network).
    pub fn num_actions(&self) -> usize {
        self.online
            .layers()
            .iter()
            .rev()
            .find_map(|l| match l {
                navft_nn::Layer::Linear(linear) => Some(linear.out_features),
                _ => None,
            })
            .unwrap_or(0)
    }

    /// Stores a transition in the replay buffer.
    pub fn observe(
        &mut self,
        state: &Tensor,
        action: usize,
        reward: f32,
        next_state: &Tensor,
        terminal: bool,
    ) {
        self.replay.push(Transition {
            state: state.data().to_vec(),
            action,
            reward,
            next_state: next_state.data().to_vec(),
            terminal,
        });
    }

    /// Runs one mini-batch SGD learning step; a no-op until the replay buffer
    /// holds at least one batch.
    ///
    /// The bootstrap targets are computed with **one batched sweep** of the
    /// target network over the whole minibatch of next states (the target is
    /// frozen for the duration of a learning step, so this is bit-identical
    /// to the per-transition passes it replaced — pinned by the golden-digest
    /// regression test). Under [`DqnAgent::with_i8_target`] that sweep runs
    /// on the int8 snapshot instead, dequantizing each output row. With
    /// Double DQN the online network's action selection still runs per
    /// transition, because the online weights evolve within the loop; it
    /// reuses the agent's scratch instead of allocating.
    pub fn learn<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        if self.replay.len() < self.config.batch_size {
            return;
        }
        let batch: Vec<Transition> =
            self.replay.sample(self.config.batch_size, rng).into_iter().cloned().collect();
        let lr = self.config.learning_rate / self.config.batch_size as f32;

        // Batched bootstrap: target Q-values of every next state in one
        // layer-sweeping pass through the preallocated scratch — on the int8
        // target snapshot when enabled, the f32 target network otherwise.
        let rows = batch.len();
        let actions = if let Some(i8net) = self.i8_target.as_ref() {
            while self.i8_next_batch.len() < rows {
                self.i8_next_batch
                    .push(<i8 as EvalElement>::input_buffer(&self.input_shape, i8net));
            }
            self.i8_next_batch.truncate(rows);
            for (slot, transition) in self.i8_next_batch.iter_mut().zip(batch.iter()) {
                self.state_buf.assign(&self.input_shape, &transition.next_state);
                <i8 as EvalElement>::encode_into(&self.state_buf, slot);
            }
            i8net.forward_batch_into_cfg(
                &self.i8_next_batch,
                &mut self.i8_scratch,
                &mut NoHooks,
                self.engine,
            );
            let affine = i8net.affine();
            let actions = self.i8_scratch.row_len();
            self.target_q.clear();
            for row in 0..rows {
                self.target_q
                    .extend(self.i8_scratch.row(row).iter().map(|&word| affine.dequantize(word)));
            }
            actions
        } else {
            for _ in self.next_batch.len()..rows {
                self.next_batch.push(Tensor::zeros(&[1]));
            }
            self.next_batch.truncate(rows);
            for (slot, transition) in self.next_batch.iter_mut().zip(batch.iter()) {
                slot.assign(&self.input_shape, &transition.next_state);
            }
            self.target.forward_batch_into_cfg(
                &self.next_batch,
                &mut self.scratch,
                &mut NoHooks,
                self.engine,
            );
            let actions = self.scratch.row_len();
            self.target_q.clear();
            for row in 0..rows {
                self.target_q.extend_from_slice(self.scratch.row(row));
            }
            actions
        };

        for (row, transition) in batch.iter().enumerate() {
            let target_value = if transition.terminal {
                transition.reward
            } else {
                let target_row = &self.target_q[row * actions..(row + 1) * actions];
                let bootstrap = if self.config.double_dqn {
                    // The online selection must stay inside the loop: its
                    // weights change transition-to-transition. The frozen
                    // target's evaluation was batched above, which also
                    // removes the duplicate next-state pass the serial code
                    // paid per transition.
                    self.state_buf.assign(&self.input_shape, &transition.next_state);
                    let best = argmax(self.online.forward_scratch_cfg(
                        &self.state_buf,
                        &mut self.scratch,
                        &mut NoHooks,
                        self.engine,
                    ));
                    target_row[best]
                } else {
                    target_row.iter().copied().fold(f32::NEG_INFINITY, f32::max)
                };
                transition.reward + self.config.gamma * bootstrap
            };
            self.state_buf.assign(&self.input_shape, &transition.state);
            self.online.forward_traced_into(&self.state_buf, &mut self.trace);
            let output = self.trace.output().data();
            let error = (output[transition.action] - target_value).clamp(-1.0, 1.0);
            self.grad.clear();
            self.grad.resize(output.len(), 0.0);
            self.grad[transition.action] = 2.0 * error;
            self.online.backward_tail(&self.trace, &self.grad, lr, self.config.trainable_from);
        }
    }

    /// Advances the ε schedule and periodically synchronises the target
    /// network. Call once at the end of each training episode.
    pub fn end_episode(&mut self) {
        self.epsilon.advance_episode();
        self.episodes_since_sync += 1;
        if self.episodes_since_sync >= self.config.target_sync_every {
            self.sync_target();
        }
    }

    /// Copies the online network into the target network (and refreshes the
    /// int8 target snapshot when [`DqnAgent::with_i8_target`] enabled it).
    pub fn sync_target(&mut self) {
        self.target = self.online.clone();
        if self.i8_target.is_some() {
            self.i8_target = Some(I8Network::quantize(&self.target));
            // The staged input buffers carry the previous snapshot's affine
            // scale; drop them so the next learn() re-stages at the new one.
            self.i8_next_batch.clear();
        }
        self.episodes_since_sync = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use navft_nn::mlp;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn agent(seed: u64) -> DqnAgent {
        let mut rng = SmallRng::seed_from_u64(seed);
        let net = mlp(&[4, 16, 2], &mut rng);
        DqnAgent::new(net, &[4], EpsilonSchedule::for_training(20), DqnConfig::default())
    }

    #[test]
    fn num_actions_comes_from_last_linear_layer() {
        assert_eq!(agent(0).num_actions(), 2);
    }

    #[test]
    fn greedy_action_matches_argmax_of_q_values() {
        let a = agent(1);
        let state = Tensor::from_vec(&[4], vec![1.0, 0.0, 0.0, 0.0]);
        assert_eq!(a.greedy_action(&state), a.q_values(&state).argmax());
    }

    #[test]
    fn act_with_zero_epsilon_is_greedy() {
        let mut a = agent(2);
        a.epsilon = EpsilonSchedule::new(0.0, 0.0, 1.0);
        let state = Tensor::from_vec(&[4], vec![0.5, 0.5, 0.0, 0.0]);
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10 {
            assert_eq!(a.act(&state, &mut rng), a.greedy_action(&state));
        }
    }

    #[test]
    fn act_batch_at_width_one_is_rng_identical_to_the_serial_selector() {
        let a = agent(9);
        let state = Tensor::from_vec(&[4], vec![0.3, 0.1, 0.4, 0.2]);
        let mut serial_rng = SmallRng::seed_from_u64(11);
        let mut batch_rng = SmallRng::seed_from_u64(11);
        let mut scratch = Scratch::new();
        let mut batch_scratch = Scratch::new();
        let mut actions = Vec::new();
        for _ in 0..50 {
            let serial = a.act_scratch(&state, &mut serial_rng, &mut scratch);
            a.act_batch(
                std::slice::from_ref(&state),
                &mut batch_rng,
                &mut batch_scratch,
                EngineConfig::default(),
                &mut actions,
            );
            assert_eq!(actions, vec![serial]);
        }
    }

    #[test]
    fn act_batch_with_zero_epsilon_matches_per_row_greedy_actions() {
        let mut a = agent(10);
        a.epsilon = EpsilonSchedule::new(0.0, 0.0, 1.0);
        let states: Vec<Tensor> = (0..7)
            .map(|i| Tensor::from_vec(&[4], vec![i as f32 * 0.1, 0.5, 0.25, 1.0 - i as f32 * 0.1]))
            .collect();
        let mut rng = SmallRng::seed_from_u64(12);
        let mut scratch = Scratch::new();
        let mut actions = Vec::new();
        a.act_batch(&states, &mut rng, &mut scratch, EngineConfig::default(), &mut actions);
        let expected: Vec<usize> = states.iter().map(|s| a.greedy_action(s)).collect();
        assert_eq!(actions, expected);
    }

    #[test]
    fn observe_fills_the_replay_buffer() {
        let mut a = agent(3);
        let s = Tensor::zeros(&[4]);
        a.observe(&s, 0, 1.0, &s, false);
        assert_eq!(a.replay().len(), 1);
    }

    #[test]
    fn learn_is_a_no_op_until_a_batch_is_available() {
        let mut a = agent(4);
        let before = a.network().flat_weights();
        let mut rng = SmallRng::seed_from_u64(5);
        a.learn(&mut rng);
        assert_eq!(a.network().flat_weights(), before);
    }

    #[test]
    fn learn_moves_q_value_toward_target() {
        let mut a = agent(6);
        let state = Tensor::from_vec(&[4], vec![1.0, 0.0, 0.0, 0.0]);
        let next = Tensor::from_vec(&[4], vec![0.0, 1.0, 0.0, 0.0]);
        // A terminal transition with reward 1 for action 0.
        for _ in 0..64 {
            a.observe(&state, 0, 1.0, &next, true);
        }
        let before = a.q_values(&state).data()[0];
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            a.learn(&mut rng);
        }
        let after = a.q_values(&state).data()[0];
        assert!(
            (after - 1.0).abs() < (before - 1.0).abs(),
            "Q(s, 0) should approach 1.0: before {before}, after {after}"
        );
    }

    #[test]
    fn end_episode_decays_epsilon_and_syncs_target() {
        let mut a = agent(8);
        let initial_epsilon = a.epsilon.epsilon();
        // Corrupt the online network, then check the target follows on sync.
        a.network_mut().layer_weights_mut(0).expect("weights")[0] = 42.0;
        for _ in 0..a.config().target_sync_every {
            a.end_episode();
        }
        assert!(a.epsilon.epsilon() < initial_epsilon);
        assert_eq!(a.target_network().layer_weights(0).expect("weights")[0], 42.0);
    }

    #[test]
    fn i8_target_snapshot_refreshes_on_sync() {
        let mut a = agent(20).with_i8_target();
        assert!(a.i8_target_network().is_some());
        // Corrupt the online net, sync, and check the snapshot re-quantized
        // from the new weights.
        a.network_mut().layer_weights_mut(0).expect("weights")[0] = 3.0;
        a.sync_target();
        let snapshot = a.i8_target_network().expect("snapshot");
        let affine = snapshot.affine();
        let word = snapshot.dequantize().layer_weights(0).expect("weights")[0];
        assert!(
            (word - 3.0).abs() <= affine.scale,
            "snapshot weight {word} should be within one quantization step of 3.0"
        );
    }

    #[test]
    fn learn_with_i8_target_bootstraps_and_improves_q() {
        let mut a = agent(21).with_i8_target();
        let state = Tensor::from_vec(&[4], vec![1.0, 0.0, 0.0, 0.0]);
        // Non-terminal self-loop with reward 1: the target value is
        // reward + γ·bootstrap, so learning must route through the int8
        // sweep and still drive Q(s, 0) upward.
        for _ in 0..64 {
            a.observe(&state, 0, 1.0, &state, false);
        }
        let before = a.q_values(&state).data()[0];
        let mut rng = SmallRng::seed_from_u64(22);
        for _ in 0..50 {
            a.learn(&mut rng);
        }
        let after = a.q_values(&state).data()[0];
        assert!(after.is_finite());
        assert!(after > before, "Q(s, 0) should grow toward the return: {before} -> {after}");
    }

    #[test]
    fn i8_target_training_is_deterministic() {
        let run = || {
            let mut a = agent(23).with_i8_target();
            let state = Tensor::from_vec(&[4], vec![0.2, 0.4, 0.6, 0.8]);
            let next = Tensor::from_vec(&[4], vec![0.8, 0.6, 0.4, 0.2]);
            for i in 0..64 {
                a.observe(&state, i % 2, 0.5, &next, i % 8 == 0);
            }
            let mut rng = SmallRng::seed_from_u64(24);
            for _ in 0..20 {
                a.learn(&mut rng);
                a.end_episode();
            }
            a.network().flat_weights()
        };
        assert_eq!(run(), run(), "identically-seeded i8-target runs must be bit-identical");
    }

    #[test]
    fn double_dqn_config_for_drone_freezes_conv_layers() {
        let config = DqnConfig::drone(9);
        assert!(config.double_dqn);
        assert_eq!(config.trainable_from, 9);
    }
}

use std::fmt;

/// A decaying ε-greedy exploration schedule.
///
/// The agent starts exploring with probability `initial`, multiplies ε by a
/// decay factor after every episode, and settles at `floor` — the "steady
/// exploitation" state the paper refers to. The schedule is deliberately
/// mutable at run time because the paper's training-time mitigation
/// (§5.1) *adjusts* it when faults are detected: boosting ε after transient
/// faults and reverting/slowing the decay after permanent faults.
///
/// # Examples
///
/// ```
/// use navft_rl::EpsilonSchedule;
///
/// let mut eps = EpsilonSchedule::new(1.0, 0.05, 0.95);
/// assert_eq!(eps.epsilon(), 1.0);
/// for _ in 0..200 {
///     eps.advance_episode();
/// }
/// assert!(eps.is_steady());
/// eps.boost(0.4);
/// assert!(!eps.is_steady());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EpsilonSchedule {
    initial: f64,
    floor: f64,
    decay: f64,
    decay_slowdown: f64,
    current: f64,
}

impl EpsilonSchedule {
    /// Creates a schedule that starts at `initial`, never drops below
    /// `floor`, and multiplies ε by `decay` each episode.
    ///
    /// # Panics
    ///
    /// Panics if the parameters are outside `[0, 1]` or `floor > initial`.
    pub fn new(initial: f64, floor: f64, decay: f64) -> EpsilonSchedule {
        assert!((0.0..=1.0).contains(&initial), "initial epsilon must be in [0, 1]");
        assert!((0.0..=1.0).contains(&floor), "floor epsilon must be in [0, 1]");
        assert!((0.0..=1.0).contains(&decay), "decay must be in [0, 1]");
        assert!(floor <= initial, "floor must not exceed the initial epsilon");
        EpsilonSchedule { initial, floor, decay, decay_slowdown: 1.0, current: initial }
    }

    /// The schedule used by the Grid World experiments: ε starts at 1.0,
    /// decays to a 0.05 floor and reaches steady exploitation after roughly
    /// `episodes_to_steady` episodes.
    pub fn for_training(episodes_to_steady: usize) -> EpsilonSchedule {
        // Solve 1.0 * d^T = floor for d.
        let floor = 0.05f64;
        let decay = floor.powf(1.0 / episodes_to_steady.max(1) as f64);
        EpsilonSchedule::new(1.0, floor, decay)
    }

    /// The current exploration probability.
    pub fn epsilon(&self) -> f64 {
        self.current
    }

    /// The initial exploration probability.
    pub fn initial(&self) -> f64 {
        self.initial
    }

    /// The steady-state exploration probability.
    pub fn floor(&self) -> f64 {
        self.floor
    }

    /// Whether the schedule has (re-)reached its steady exploitation state.
    pub fn is_steady(&self) -> bool {
        self.current <= self.floor + 1e-9
    }

    /// Advances the schedule by one episode (applies the decay).
    pub fn advance_episode(&mut self) {
        let effective = 1.0 - (1.0 - self.decay) / self.decay_slowdown;
        self.current = (self.current * effective).max(self.floor);
    }

    /// Increases ε by `delta`, clamped to 1.0 — the transient-fault recovery
    /// action of Eq. 6.
    pub fn boost(&mut self, delta: f64) {
        self.current = (self.current + delta.max(0.0)).clamp(self.floor, 1.0);
    }

    /// Resets ε to its initial value — the permanent-fault recovery action.
    pub fn reset_to_initial(&mut self) {
        self.current = self.initial;
    }

    /// Slows the decay by `factor` (≥ 1): after a slow-down of `2ⁿ` the
    /// schedule takes roughly `2ⁿ`× longer to return to steady exploitation.
    ///
    /// # Panics
    ///
    /// Panics if `factor < 1.0`.
    pub fn slow_decay(&mut self, factor: f64) {
        assert!(factor >= 1.0, "decay slow-down factor must be at least 1");
        self.decay_slowdown *= factor;
    }

    /// The accumulated decay slow-down factor.
    pub fn decay_slowdown(&self) -> f64 {
        self.decay_slowdown
    }

    /// Estimated number of episodes until the schedule reaches steady
    /// exploitation from its current ε.
    pub fn episodes_until_steady(&self) -> usize {
        if self.is_steady() {
            return 0;
        }
        let effective = 1.0 - (1.0 - self.decay) / self.decay_slowdown;
        if effective >= 1.0 {
            return usize::MAX;
        }
        ((self.floor / self.current).ln() / effective.ln()).ceil() as usize
    }
}

impl Default for EpsilonSchedule {
    /// The paper's Grid World default: steady exploitation after ~100
    /// episodes.
    fn default() -> Self {
        EpsilonSchedule::for_training(100)
    }
}

impl fmt::Display for EpsilonSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "epsilon {:.3} (floor {:.3}, initial {:.3})",
            self.current, self.floor, self.initial
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decays_towards_floor() {
        let mut eps = EpsilonSchedule::new(1.0, 0.1, 0.9);
        let mut previous = eps.epsilon();
        for _ in 0..100 {
            eps.advance_episode();
            assert!(eps.epsilon() <= previous);
            previous = eps.epsilon();
        }
        assert!(eps.is_steady());
        assert_eq!(eps.epsilon(), 0.1);
    }

    #[test]
    fn for_training_reaches_steady_near_target_episode() {
        let mut eps = EpsilonSchedule::for_training(100);
        let mut episodes = 0;
        while !eps.is_steady() && episodes < 1000 {
            eps.advance_episode();
            episodes += 1;
        }
        assert!((95..=105).contains(&episodes), "steady after {episodes} episodes");
    }

    #[test]
    fn boost_raises_and_clamps() {
        let mut eps = EpsilonSchedule::new(1.0, 0.05, 0.5);
        for _ in 0..20 {
            eps.advance_episode();
        }
        assert!(eps.is_steady());
        eps.boost(0.3);
        assert!((eps.epsilon() - 0.35).abs() < 1e-9);
        eps.boost(10.0);
        assert_eq!(eps.epsilon(), 1.0);
        eps.boost(-5.0);
        assert_eq!(eps.epsilon(), 1.0);
    }

    #[test]
    fn reset_and_slow_decay_extend_exploration() {
        let mut fast = EpsilonSchedule::for_training(50);
        let mut slow = EpsilonSchedule::for_training(50);
        slow.slow_decay(4.0);
        assert_eq!(slow.decay_slowdown(), 4.0);
        let steps = |eps: &mut EpsilonSchedule| {
            let mut n = 0;
            while !eps.is_steady() && n < 10_000 {
                eps.advance_episode();
                n += 1;
            }
            n
        };
        let fast_steps = steps(&mut fast);
        let slow_steps = steps(&mut slow);
        assert!(slow_steps > fast_steps * 3, "{slow_steps} vs {fast_steps}");

        slow.reset_to_initial();
        assert_eq!(slow.epsilon(), slow.initial());
    }

    #[test]
    fn episodes_until_steady_estimates_the_decay_horizon() {
        let eps = EpsilonSchedule::for_training(100);
        let estimate = eps.episodes_until_steady();
        assert!((95..=105).contains(&estimate));
        let mut steady = eps.clone();
        for _ in 0..200 {
            steady.advance_episode();
        }
        assert_eq!(steady.episodes_until_steady(), 0);
    }

    #[test]
    #[should_panic(expected = "floor must not exceed")]
    fn floor_above_initial_is_rejected() {
        let _ = EpsilonSchedule::new(0.1, 0.5, 0.9);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn slow_decay_rejects_speedups() {
        let mut eps = EpsilonSchedule::default();
        eps.slow_decay(0.5);
    }

    #[test]
    fn display_shows_current_epsilon() {
        let eps = EpsilonSchedule::new(0.8, 0.1, 0.9);
        assert!(eps.to_string().contains("0.800"));
    }
}

use navft_nn::Tensor;

/// One transition of a discrete-state environment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiscreteTransition {
    /// Index of the state the environment moved to.
    pub next_state: usize,
    /// Reward obtained for the transition.
    pub reward: f32,
    /// Whether the episode terminated (goal reached or agent trapped).
    pub terminal: bool,
    /// Whether the terminal state is the goal (success).
    pub reached_goal: bool,
}

/// A navigation task over a finite state space (the Grid World of §4.1).
///
/// States and actions are plain indices so the same environment drives both
/// the tabular and the neural-network (one-hot encoded) policies.
pub trait DiscreteEnvironment {
    /// Number of distinct states (`|S|`).
    fn num_states(&self) -> usize;

    /// Number of discrete actions (`|A|`).
    fn num_actions(&self) -> usize;

    /// Resets the episode and returns the initial state index.
    fn reset(&mut self) -> usize;

    /// Applies `action` and returns the resulting transition.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `action >= num_actions()`.
    fn step(&mut self, action: usize) -> DiscreteTransition;
}

/// One transition of a vision-based environment.
#[derive(Debug, Clone)]
pub struct VisionTransition {
    /// The next camera observation.
    pub observation: Tensor,
    /// Reward obtained for the transition.
    pub reward: f32,
    /// Whether the episode terminated (collision).
    pub terminal: bool,
    /// Distance travelled during this step, in metres.
    pub distance: f32,
}

/// A navigation task observed through a camera (the drone task of §4.2).
///
/// There is no goal state: the agent flies until it collides, and quality of
/// flight is the distance covered before the collision (Mean Safe Flight).
pub trait VisionEnvironment {
    /// Shape of the observation tensor, `[channels, height, width]`.
    fn observation_shape(&self) -> [usize; 3];

    /// Number of discrete actions.
    fn num_actions(&self) -> usize;

    /// Resets the episode and returns the initial observation.
    fn reset(&mut self) -> Tensor;

    /// Applies `action` and returns the resulting transition.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `action >= num_actions()`.
    fn step(&mut self, action: usize) -> VisionTransition;
}

/// Encodes a discrete state index as a one-hot tensor, the input encoding the
/// NN-based Grid World policy uses.
///
/// # Panics
///
/// Panics if `state >= num_states`.
///
/// # Examples
///
/// ```
/// use navft_rl::one_hot;
///
/// let x = one_hot(2, 4);
/// assert_eq!(x.data(), &[0.0, 0.0, 1.0, 0.0]);
/// ```
pub fn one_hot(state: usize, num_states: usize) -> Tensor {
    let mut t = Tensor::zeros(&[num_states]);
    one_hot_into(state, num_states, &mut t);
    t
}

/// Writes the one-hot encoding of `state` into a reused tensor — the
/// zero-allocation form of [`one_hot`] used by episode loops that encode a
/// state on every step.
///
/// # Panics
///
/// Panics if `state >= num_states`.
pub fn one_hot_into(state: usize, num_states: usize, out: &mut Tensor) {
    assert!(state < num_states, "state {state} out of range for {num_states} states");
    out.resize_to(&[num_states]);
    for v in out.data_mut().iter_mut() {
        *v = 0.0;
    }
    out.data_mut()[state] = 1.0;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_hot_sets_exactly_one_element() {
        let t = one_hot(0, 3);
        assert_eq!(t.data(), &[1.0, 0.0, 0.0]);
        assert_eq!(one_hot(2, 3).data(), &[0.0, 0.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn one_hot_rejects_out_of_range_state() {
        let _ = one_hot(3, 3);
    }

    /// A tiny deterministic corridor used to exercise the trait from tests in
    /// this crate: states 0..n, action 0 moves right, action 1 moves left.
    pub struct Corridor {
        pub n: usize,
        pub position: usize,
    }

    impl DiscreteEnvironment for Corridor {
        fn num_states(&self) -> usize {
            self.n
        }
        fn num_actions(&self) -> usize {
            2
        }
        fn reset(&mut self) -> usize {
            self.position = 0;
            0
        }
        fn step(&mut self, action: usize) -> DiscreteTransition {
            if action == 0 {
                self.position = (self.position + 1).min(self.n - 1);
            } else {
                self.position = self.position.saturating_sub(1);
            }
            let reached_goal = self.position == self.n - 1;
            DiscreteTransition {
                next_state: self.position,
                reward: if reached_goal { 1.0 } else { 0.0 },
                terminal: reached_goal,
                reached_goal,
            }
        }
    }

    #[test]
    fn corridor_reaches_goal_moving_right() {
        let mut env = Corridor { n: 4, position: 0 };
        assert_eq!(env.reset(), 0);
        let mut last = None;
        for _ in 0..3 {
            last = Some(env.step(0));
        }
        let last = last.expect("stepped");
        assert!(last.terminal);
        assert!(last.reached_goal);
        assert_eq!(last.reward, 1.0);
    }
}

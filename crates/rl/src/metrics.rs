use std::fmt;

/// The outcome of a single training or evaluation episode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpisodeOutcome {
    /// Sum of rewards collected during the episode.
    pub cumulative_reward: f32,
    /// Whether the agent reached the goal (Grid World) — always `false` for
    /// tasks without a goal state.
    pub reached_goal: bool,
    /// Number of steps taken.
    pub steps: usize,
    /// Distance travelled, in metres (drone task; 0 for Grid World).
    pub distance: f32,
}

impl EpisodeOutcome {
    /// An all-zero outcome, useful as an accumulator seed.
    pub fn empty() -> EpisodeOutcome {
        EpisodeOutcome { cumulative_reward: 0.0, reached_goal: false, steps: 0, distance: 0.0 }
    }
}

/// The per-episode history of a training run.
///
/// The paper's training-time figures are all derived from this trace: the
/// cumulative-return curves of Fig. 3, the success-rate heatmaps of Fig. 2 and
/// the convergence analysis of Fig. 4.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TrainingTrace {
    /// Cumulative reward per episode.
    pub rewards: Vec<f32>,
    /// Goal-reached flag per episode.
    pub successes: Vec<bool>,
    /// Exploration rate (ε) at the start of each episode.
    pub epsilons: Vec<f64>,
    /// Distance travelled per episode (drone task).
    pub distances: Vec<f32>,
}

impl TrainingTrace {
    /// Creates an empty trace.
    pub fn new() -> TrainingTrace {
        TrainingTrace::default()
    }

    /// Appends one episode's outcome.
    pub fn push(&mut self, outcome: EpisodeOutcome, epsilon: f64) {
        self.rewards.push(outcome.cumulative_reward);
        self.successes.push(outcome.reached_goal);
        self.distances.push(outcome.distance);
        self.epsilons.push(epsilon);
    }

    /// Number of episodes recorded.
    pub fn len(&self) -> usize {
        self.rewards.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.rewards.is_empty()
    }

    /// Fraction of successful episodes over the last `window` episodes
    /// (or over the whole trace if shorter).
    pub fn recent_success_rate(&self, window: usize) -> f64 {
        if self.successes.is_empty() {
            return 0.0;
        }
        let start = self.successes.len().saturating_sub(window);
        let slice = &self.successes[start..];
        slice.iter().filter(|&&s| s).count() as f64 / slice.len() as f64
    }

    /// Mean cumulative reward over the last `window` episodes.
    pub fn recent_mean_reward(&self, window: usize) -> f64 {
        if self.rewards.is_empty() {
            return 0.0;
        }
        let start = self.rewards.len().saturating_sub(window);
        let slice = &self.rewards[start..];
        slice.iter().map(|&r| f64::from(r)).sum::<f64>() / slice.len() as f64
    }

    /// Mean distance (Mean Safe Flight) over the last `window` episodes.
    pub fn recent_mean_distance(&self, window: usize) -> f64 {
        if self.distances.is_empty() {
            return 0.0;
        }
        let start = self.distances.len().saturating_sub(window);
        let slice = &self.distances[start..];
        slice.iter().map(|&d| f64::from(d)).sum::<f64>() / slice.len() as f64
    }

    /// The maximum cumulative reward observed so far.
    pub fn max_reward(&self) -> f32 {
        self.rewards.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }
}

/// The result of evaluating a trained policy.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EvalResult {
    /// Fraction of evaluation episodes that reached the goal.
    pub success_rate: f64,
    /// Mean cumulative reward per evaluation episode.
    pub mean_reward: f64,
    /// Mean distance travelled (Mean Safe Flight) per evaluation episode.
    pub mean_distance: f64,
    /// Number of evaluation episodes.
    pub episodes: usize,
}

impl fmt::Display for EvalResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "success {:.1}%, reward {:.3}, distance {:.1} m over {} episodes",
            self.success_rate * 100.0,
            self.mean_reward,
            self.mean_distance,
            self.episodes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(reward: f32, goal: bool) -> EpisodeOutcome {
        EpisodeOutcome { cumulative_reward: reward, reached_goal: goal, steps: 10, distance: 2.0 }
    }

    #[test]
    fn trace_accumulates_episodes() {
        let mut trace = TrainingTrace::new();
        assert!(trace.is_empty());
        trace.push(outcome(1.0, true), 0.5);
        trace.push(outcome(-1.0, false), 0.4);
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.rewards, vec![1.0, -1.0]);
        assert_eq!(trace.successes, vec![true, false]);
        assert_eq!(trace.epsilons, vec![0.5, 0.4]);
    }

    #[test]
    fn recent_windows_cover_partial_traces() {
        let mut trace = TrainingTrace::new();
        for i in 0..10 {
            trace.push(outcome(i as f32, i >= 5), 0.1);
        }
        assert_eq!(trace.recent_success_rate(5), 1.0);
        assert_eq!(trace.recent_success_rate(10), 0.5);
        assert_eq!(trace.recent_success_rate(100), 0.5);
        assert_eq!(trace.recent_mean_reward(2), 8.5);
        assert_eq!(trace.recent_mean_distance(4), 2.0);
        assert_eq!(trace.max_reward(), 9.0);
    }

    #[test]
    fn empty_trace_rates_are_zero() {
        let trace = TrainingTrace::new();
        assert_eq!(trace.recent_success_rate(10), 0.0);
        assert_eq!(trace.recent_mean_reward(10), 0.0);
        assert_eq!(trace.recent_mean_distance(10), 0.0);
    }

    #[test]
    fn eval_result_display() {
        let r =
            EvalResult { success_rate: 0.97, mean_reward: 0.9, mean_distance: 55.0, episodes: 100 };
        let text = r.to_string();
        assert!(text.contains("97.0%"));
        assert!(text.contains("100 episodes"));
    }

    #[test]
    fn empty_outcome_is_zeroed() {
        let e = EpisodeOutcome::empty();
        assert_eq!(e.cumulative_reward, 0.0);
        assert_eq!(e.steps, 0);
        assert!(!e.reached_goal);
    }
}

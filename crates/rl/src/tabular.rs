use rand::Rng;

use navft_qformat::{QFormat, QValue};

use crate::{DiscreteEnvironment, EpisodeOutcome, EpsilonSchedule};

/// A quantized Q-table of `|S| × |A|` action values.
///
/// Every write is snapped to the table's fixed-point format, so the stored
/// buffer is bit-exact with what an 8-bit accelerator memory would hold — the
/// precondition for meaningful bit-level fault injection.
///
/// # Examples
///
/// ```
/// use navft_qformat::QFormat;
/// use navft_rl::QTable;
///
/// let mut table = QTable::new(100, 4, QFormat::Q3_4);
/// table.set(3, 1, 0.7);
/// assert_eq!(table.q(3, 1), 0.6875); // snapped to the Q(1,3,4) grid
/// assert_eq!(table.best_action(3), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QTable {
    num_states: usize,
    num_actions: usize,
    format: QFormat,
    values: Vec<f32>,
    rounding: Option<u64>,
}

impl QTable {
    /// Creates a zero-initialised table.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(num_states: usize, num_actions: usize, format: QFormat) -> QTable {
        assert!(num_states > 0 && num_actions > 0, "Q-table dimensions must be non-zero");
        QTable {
            num_states,
            num_actions,
            format,
            values: vec![0.0; num_states * num_actions],
            rounding: None,
        }
    }

    /// Switches writes to *stochastic rounding* seeded by `seed`.
    ///
    /// Low-precision training needs it: with round-to-nearest, Bellman
    /// increments smaller than half the 8-bit resolution are silently lost
    /// and Q-values can never propagate along long paths. Stochastic rounding
    /// preserves the update in expectation while the stored words remain
    /// bit-exact 8-bit values, which is the standard low-precision training
    /// practice the paper's quantized policies rely on.
    pub fn with_stochastic_rounding(mut self, seed: u64) -> QTable {
        self.rounding = Some(seed | 1);
        self
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// Number of actions.
    pub fn num_actions(&self) -> usize {
        self.num_actions
    }

    /// The fixed-point format the table is stored in.
    pub fn format(&self) -> QFormat {
        self.format
    }

    /// Number of stored words (`|S| × |A|`).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the table is empty (never true for a constructed table).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The Q-value of `(state, action)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn q(&self, state: usize, action: usize) -> f32 {
        self.values[self.index(state, action)]
    }

    /// Sets the Q-value of `(state, action)`, quantized to the table format.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn set(&mut self, state: usize, action: usize, value: f32) {
        let i = self.index(state, action);
        self.values[i] = match self.rounding.as_mut() {
            None => QValue::quantize(value, self.format).to_f32(),
            Some(state) => {
                // xorshift64* pseudo-random draw for the rounding decision.
                *state ^= *state << 13;
                *state ^= *state >> 7;
                *state ^= *state << 17;
                let draw = (*state >> 40) as f32 / (1u64 << 24) as f32;
                let scaled = value * (2.0f32).powi(i32::from(self.format.frac_bits()));
                let floor = scaled.floor();
                let raw = if (scaled - floor) > draw { floor as i32 + 1 } else { floor as i32 };
                QValue::from_raw(raw, self.format).to_f32()
            }
        };
    }

    /// The greedy action in `state` (ties resolve to the lowest index).
    pub fn best_action(&self, state: usize) -> usize {
        let row = &self.values[state * self.num_actions..(state + 1) * self.num_actions];
        let mut best = 0;
        for (a, &v) in row.iter().enumerate() {
            if v > row[best] {
                best = a;
            }
        }
        best
    }

    /// The maximum Q-value in `state`.
    pub fn max_q(&self, state: usize) -> f32 {
        let row = &self.values[state * self.num_actions..(state + 1) * self.num_actions];
        row.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Applies one Q-learning Bellman backup (Eq. 4 of the paper):
    /// `Q(s,a) ← Q(s,a) + α (r + γ maxₐ' Q(s',a') − Q(s,a))`.
    ///
    /// For terminal transitions the bootstrap term is dropped.
    // The arguments mirror the terms of the paper's update equation.
    #[allow(clippy::too_many_arguments)]
    pub fn update(
        &mut self,
        state: usize,
        action: usize,
        reward: f32,
        next_state: usize,
        terminal: bool,
        alpha: f32,
        gamma: f32,
    ) {
        let bootstrap = if terminal { 0.0 } else { gamma * self.max_q(next_state) };
        let target = reward + bootstrap;
        let current = self.q(state, action);
        self.set(state, action, current + alpha * (target - current));
    }

    /// The raw value buffer — the fault-injection surface of the tabular
    /// policy.
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// The raw value buffer, mutably.
    ///
    /// Values written here are *not* re-quantized; fault injectors write
    /// exact dequantized faulty words, which are representable by
    /// construction.
    pub fn values_mut(&mut self) -> &mut [f32] {
        &mut self.values
    }

    fn index(&self, state: usize, action: usize) -> usize {
        assert!(state < self.num_states, "state {state} out of range");
        assert!(action < self.num_actions, "action {action} out of range");
        state * self.num_actions + action
    }
}

/// A tabular Q-learning agent with a decaying ε-greedy behaviour policy.
#[derive(Debug, Clone, PartialEq)]
pub struct TabularAgent {
    /// The learned Q-table.
    pub table: QTable,
    /// The exploration schedule.
    pub epsilon: EpsilonSchedule,
    alpha: f32,
    gamma: f32,
}

impl TabularAgent {
    /// Creates an agent with the given learning rate `alpha` and discount
    /// `gamma`.
    pub fn new(table: QTable, epsilon: EpsilonSchedule, alpha: f32, gamma: f32) -> TabularAgent {
        TabularAgent { table, epsilon, alpha, gamma }
    }

    /// The agent configured as in the Grid World experiments: 8-bit Q-table
    /// written with stochastic rounding, α = 0.2, γ = 0.95, steady
    /// exploitation after 100 episodes.
    pub fn for_grid_world(num_states: usize, num_actions: usize) -> TabularAgent {
        TabularAgent::new(
            QTable::new(num_states, num_actions, QFormat::Q3_4).with_stochastic_rounding(0x9_7AB1E),
            EpsilonSchedule::for_training(100),
            0.2,
            0.95,
        )
    }

    /// The learning rate.
    pub fn alpha(&self) -> f32 {
        self.alpha
    }

    /// The discount factor.
    pub fn gamma(&self) -> f32 {
        self.gamma
    }

    /// Chooses an action ε-greedily, breaking ties among equal-valued greedy
    /// actions uniformly at random (otherwise unvisited states would always
    /// pick action 0 once exploitation starts).
    pub fn act<R: Rng + ?Sized>(&self, state: usize, rng: &mut R) -> usize {
        if rng.gen_bool(self.epsilon.epsilon().clamp(0.0, 1.0)) {
            return rng.gen_range(0..self.table.num_actions());
        }
        let best = self.table.max_q(state);
        let ties: Vec<usize> = (0..self.table.num_actions())
            .filter(|&a| (self.table.q(state, a) - best).abs() < f32::EPSILON)
            .collect();
        ties[rng.gen_range(0..ties.len())]
    }

    /// Runs one training episode on `env`, updating the table online.
    pub fn train_episode<E: DiscreteEnvironment, R: Rng + ?Sized>(
        &mut self,
        env: &mut E,
        max_steps: usize,
        rng: &mut R,
    ) -> EpisodeOutcome {
        let mut state = env.reset();
        let mut outcome = EpisodeOutcome::empty();
        for _ in 0..max_steps {
            let action = self.act(state, rng);
            let transition = env.step(action);
            self.table.update(
                state,
                action,
                transition.reward,
                transition.next_state,
                transition.terminal,
                self.alpha,
                self.gamma,
            );
            outcome.cumulative_reward += transition.reward;
            outcome.steps += 1;
            state = transition.next_state;
            if transition.terminal {
                outcome.reached_goal = transition.reached_goal;
                break;
            }
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DiscreteTransition;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    struct TwoStep {
        state: usize,
    }

    /// A two-state chain: action 1 in state 0 reaches the goal (state 1).
    impl DiscreteEnvironment for TwoStep {
        fn num_states(&self) -> usize {
            2
        }
        fn num_actions(&self) -> usize {
            2
        }
        fn reset(&mut self) -> usize {
            self.state = 0;
            0
        }
        fn step(&mut self, action: usize) -> DiscreteTransition {
            if action == 1 {
                self.state = 1;
                DiscreteTransition {
                    next_state: 1,
                    reward: 1.0,
                    terminal: true,
                    reached_goal: true,
                }
            } else {
                DiscreteTransition {
                    next_state: 0,
                    reward: 0.0,
                    terminal: false,
                    reached_goal: false,
                }
            }
        }
    }

    #[test]
    fn q_values_are_quantized_on_write() {
        let mut table = QTable::new(4, 2, QFormat::Q3_4);
        table.set(0, 0, 0.33);
        assert_eq!(table.q(0, 0), 0.3125);
        table.set(0, 1, 100.0);
        assert_eq!(table.q(0, 1), QFormat::Q3_4.max_value());
    }

    #[test]
    fn best_action_and_max_q() {
        let mut table = QTable::new(2, 3, QFormat::Q4_11);
        table.set(1, 0, 0.5);
        table.set(1, 2, 0.875);
        assert_eq!(table.best_action(1), 2);
        assert_eq!(table.max_q(1), 0.875);
        assert_eq!(table.best_action(0), 0);
    }

    #[test]
    fn bellman_update_moves_toward_target() {
        let mut table = QTable::new(2, 2, QFormat::Q4_11);
        table.set(1, 0, 1.0);
        table.update(0, 0, 0.0, 1, false, 0.5, 0.9);
        // target = 0 + 0.9 * 1.0 = 0.9; new Q = 0 + 0.5 * 0.9 = 0.45
        assert!((table.q(0, 0) - 0.45).abs() < 0.01);

        let mut terminal = QTable::new(2, 2, QFormat::Q4_11);
        terminal.update(0, 1, 1.0, 1, true, 0.5, 0.9);
        assert!((terminal.q(0, 1) - 0.5).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_state_panics() {
        let table = QTable::new(2, 2, QFormat::Q3_4);
        let _ = table.q(2, 0);
    }

    #[test]
    fn values_mut_exposes_the_raw_buffer() {
        let mut table = QTable::new(2, 2, QFormat::Q3_4);
        table.values_mut()[3] = -8.0;
        assert_eq!(table.q(1, 1), -8.0);
        assert_eq!(table.values().len(), 4);
    }

    #[test]
    fn agent_learns_the_two_step_task() {
        let mut env = TwoStep { state: 0 };
        let mut agent = TabularAgent::for_grid_world(2, 2);
        let mut rng = SmallRng::seed_from_u64(0);
        for _ in 0..200 {
            agent.train_episode(&mut env, 20, &mut rng);
            agent.epsilon.advance_episode();
        }
        assert_eq!(agent.table.best_action(0), 1);
        assert!(agent.table.q(0, 1) > 0.5);
    }

    #[test]
    fn greedy_agent_with_zero_epsilon_is_deterministic() {
        let mut agent = TabularAgent::new(
            QTable::new(2, 2, QFormat::Q3_4),
            EpsilonSchedule::new(0.0, 0.0, 1.0),
            0.1,
            0.9,
        );
        agent.table.set(0, 1, 1.0);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(agent.act(0, &mut rng), 1);
        }
        assert_eq!(agent.alpha(), 0.1);
        assert_eq!(agent.gamma(), 0.9);
    }
}

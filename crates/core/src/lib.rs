//! High-level experiment orchestration for the navft reproduction of
//! *Analyzing and Improving Fault Tolerance of Learning-Based Navigation
//! Systems* (DAC 2021).
//!
//! The lower-level crates provide the building blocks — fixed-point numerics
//! (`navft-qformat`), the fault-injection tool-chain (`navft-fault`), the
//! Grid World and drone environments (`navft-gridworld`, `navft-dronesim`),
//! the quantized NN library (`navft-nn`), the learning algorithms
//! (`navft-rl`) and the two mitigation techniques (`navft-mitigation`).
//! This crate assembles them into the paper's experiments:
//!
//! * [`Scale`] — how big a campaign to run (smoke / quick / paper-sized).
//! * [`FigureData`] — structured results matching the paper's figures, with
//!   plain-text rendering.
//! * [`grid_policies`] / [`drone_policy`] — policy training helpers for both
//!   benchmark tasks.
//! * [`sweep`] — the declarative campaign layer: every figure is a set of
//!   [`sweep::CellSpec`] cells plus a fold to figure data, executed by one
//!   work-stealing scheduler with resumable JSONL artifacts
//!   ([`sweep::run_sweeps`]).
//! * [`experiments`] — one sweep builder per figure of the paper's
//!   evaluation (Fig. 2 through Fig. 10) plus ablations; see
//!   [`experiments::all_sweeps`] and [`experiments::all_figures`].
//!
//! # Examples
//!
//! Reproduce the Grid World inference-sensitivity figure at smoke scale:
//!
//! ```no_run
//! use navft_core::{experiments, Scale};
//!
//! for figure in experiments::fig5::grid_inference_sensitivity(Scale::Smoke) {
//!     println!("{figure}");
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod drone_policy;
pub mod experiments;
pub mod grid_policies;
pub mod sweep;

mod figure;
mod hooks;
mod scale;

pub use figure::{FigureContent, FigureData, Heatmap, Series};
pub use hooks::{BufferFaultHook, HookPersistence, HookTarget};
pub use scale::{DroneParams, GridParams, Scale};

//! Forward hooks that inject faults into the input and activation buffers
//! during inference — the dynamic injection path of §3.3, used by the
//! fault-location experiment (Fig. 7c).

use std::collections::HashMap;

use rand::rngs::SmallRng;
use rand::SeedableRng;

use navft_fault::{FaultKind, FaultMap};
use navft_nn::{ForwardHooks, LayerKind};
use navft_qformat::QFormat;

/// Which buffer the hook corrupts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HookTarget {
    /// The input feature-map buffer (the camera frame).
    Input,
    /// Every activation (layer-output) buffer.
    Activations,
}

/// Whether the corrupted bit positions change between forward passes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HookPersistence {
    /// New fault positions are sampled for every forward pass (transient
    /// faults in frequently rewritten buffers).
    Transient,
    /// The same fault positions afflict every forward pass (permanent
    /// defects in the buffer).
    Permanent,
}

/// A [`ForwardHooks`] implementation that corrupts the input or activation
/// buffers at a given bit error rate.
///
/// # Examples
///
/// ```
/// use navft_core::{BufferFaultHook, HookPersistence, HookTarget};
/// use navft_fault::FaultKind;
/// use navft_nn::{mlp, Tensor};
/// use navft_qformat::QFormat;
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let mut rng = SmallRng::seed_from_u64(0);
/// let net = mlp(&[8, 8, 2], &mut rng);
/// let mut hook = BufferFaultHook::new(
///     HookTarget::Activations,
///     HookPersistence::Transient,
///     0.05,
///     FaultKind::BitFlip,
///     QFormat::Q4_11,
///     7,
/// );
/// let _ = net.forward_with(&Tensor::full(&[8], 0.5), &mut hook);
/// assert!(hook.faults_injected() > 0);
/// ```
#[derive(Debug, Clone)]
pub struct BufferFaultHook {
    target: HookTarget,
    persistence: HookPersistence,
    ber: f64,
    kind: FaultKind,
    format: QFormat,
    rng: SmallRng,
    cached: HashMap<(usize, usize), FaultMap>,
    faults_injected: usize,
}

impl BufferFaultHook {
    /// Creates a hook corrupting `target` buffers at bit error rate `ber`.
    pub fn new(
        target: HookTarget,
        persistence: HookPersistence,
        ber: f64,
        kind: FaultKind,
        format: QFormat,
        seed: u64,
    ) -> BufferFaultHook {
        BufferFaultHook {
            target,
            persistence,
            ber,
            kind,
            format,
            rng: SmallRng::seed_from_u64(seed),
            cached: HashMap::new(),
            faults_injected: 0,
        }
    }

    /// Total number of bit faults injected so far.
    pub fn faults_injected(&self) -> usize {
        self.faults_injected
    }

    fn corrupt(&mut self, key: (usize, usize), values: &mut [f32]) {
        let map = match self.persistence {
            HookPersistence::Transient => {
                FaultMap::sample(values.len(), self.format, self.ber, self.kind, &mut self.rng)
            }
            HookPersistence::Permanent => self
                .cached
                .entry(key)
                .or_insert_with(|| {
                    FaultMap::sample(values.len(), self.format, self.ber, self.kind, &mut self.rng)
                })
                .clone(),
        };
        self.faults_injected += map.len();
        map.corrupt_f32(values, self.format);
    }
}

impl ForwardHooks for BufferFaultHook {
    fn on_input(&mut self, values: &mut [f32]) {
        if self.target == HookTarget::Input {
            self.corrupt((usize::MAX, values.len()), values);
        }
    }

    fn on_activation(&mut self, layer_index: usize, _kind: LayerKind, values: &mut [f32]) {
        if self.target == HookTarget::Activations {
            self.corrupt((layer_index, values.len()), values);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use navft_nn::{mlp, Tensor};

    fn run_hook(target: HookTarget, persistence: HookPersistence) -> (Vec<f32>, Vec<f32>) {
        let mut rng = SmallRng::seed_from_u64(1);
        let net = mlp(&[16, 8, 4], &mut rng);
        let input = Tensor::full(&[16], 0.4);
        let mut hook =
            BufferFaultHook::new(target, persistence, 0.05, FaultKind::BitFlip, QFormat::Q4_11, 11);
        let a = net.forward_with(&input, &mut hook).into_data();
        let b = net.forward_with(&input, &mut hook).into_data();
        assert!(hook.faults_injected() > 0);
        (a, b)
    }

    #[test]
    fn input_faults_change_the_output() {
        let mut rng = SmallRng::seed_from_u64(2);
        let net = mlp(&[16, 8, 4], &mut rng);
        let input = Tensor::full(&[16], 0.4);
        let clean = net.forward(&input).into_data();
        let mut hook = BufferFaultHook::new(
            HookTarget::Input,
            HookPersistence::Transient,
            0.2,
            FaultKind::BitFlip,
            QFormat::Q4_11,
            3,
        );
        let faulty = net.forward_with(&input, &mut hook).into_data();
        assert_ne!(clean, faulty);
    }

    #[test]
    fn transient_activation_faults_differ_between_passes() {
        let (a, b) = run_hook(HookTarget::Activations, HookPersistence::Transient);
        assert_ne!(a, b, "re-sampled fault positions should perturb passes differently");
    }

    #[test]
    fn permanent_activation_faults_repeat_identically() {
        let (a, b) = run_hook(HookTarget::Activations, HookPersistence::Permanent);
        assert_eq!(a, b, "cached fault maps must corrupt every pass the same way");
    }

    #[test]
    fn hook_ignores_buffers_it_does_not_target() {
        let mut rng = SmallRng::seed_from_u64(4);
        let net = mlp(&[8, 4, 2], &mut rng);
        let input = Tensor::full(&[8], 0.4);
        let clean = net.forward(&input).into_data();
        let mut hook = BufferFaultHook::new(
            HookTarget::Input,
            HookPersistence::Transient,
            0.0,
            FaultKind::BitFlip,
            QFormat::Q4_11,
            5,
        );
        let same = net.forward_with(&input, &mut hook).into_data();
        assert_eq!(clean, same);
        assert_eq!(hook.faults_injected(), 0);
    }
}

//! Machine-readable campaign artifacts: the resume journal and per-figure
//! JSONL records.
//!
//! Two kinds of files live in an `--out` directory:
//!
//! * **`journal.jsonl`** — one record per *completed* cell, appended (and
//!   flushed) the moment the cell finishes, in completion order. This is the
//!   resume log: a later `--resume` run skips every cell whose fingerprint
//!   already has a record. A record stores the cell's summaries as exact
//!   moments (`count`/`mean`/`m2`/`min`/`max`), so a resumed run reproduces
//!   the uninterrupted run's figures bit-for-bit. On load, a resuming run
//!   drops any torn final line (the run was killed mid-write) and rewrites
//!   the journal from the surviving records before appending; a fresh
//!   (non-resume) run starts the journal empty.
//! * **`<figure>.jsonl`** — one record per cell of that figure, written
//!   after the run in *declaration* order with deterministic rendering, so
//!   two runs of the same campaign produce byte-identical files regardless
//!   of thread count. Alongside it, `<figure>.txt` holds the rendered
//!   plain-text tables (which may include wall-clock measurements and are
//!   therefore *not* byte-comparable).
//!
//! Record schema (`metrics[k]` is the summary of the cell's `k`-th metric):
//!
//! ```json
//! {"fp":"89abcdef01234567","sweep":"fig5","cell":"fig5a/Transient-M/ber=0.002",
//!  "labels":{"figure":"fig5a","mode":"Transient-M","ber":"0.002"},"reps":5,
//!  "metrics":[{"count":5,"mean":61.2,"m2":10.5,"min":55.0,"max":66.0}]}
//! ```

use std::collections::HashMap;
use std::path::Path;

use navft_fault::campaign::Summary;

use super::json::Json;

/// File name of the resume journal inside an artifact directory.
pub const JOURNAL_FILE: &str = "journal.jsonl";

/// Serializes a summary as its exact moments.
pub fn summary_to_json(summary: &Summary) -> Json {
    Json::obj([
        ("count", Json::num(summary.count() as f64)),
        ("mean", Json::num(summary.mean())),
        ("m2", Json::num(summary.m2())),
        ("min", Json::num(summary.min())),
        ("max", Json::num(summary.max())),
    ])
}

/// Reconstructs a summary from its serialized moments.
pub fn summary_from_json(json: &Json) -> Option<Summary> {
    let field = |key: &str| json.get(key)?.as_f64();
    Some(Summary::from_moments(
        field("count")? as usize,
        field("mean")?,
        field("m2")?,
        field("min")?,
        field("max")?,
    ))
}

/// Renders one artifact record (shared by the journal and the per-figure
/// files; the journal omits `labels`/`reps` readers don't need, but carrying
/// them keeps the two formats identical and the journal greppable).
#[allow(clippy::too_many_arguments)]
pub fn record_line(
    fingerprint: u64,
    sweep: &str,
    cell: &str,
    labels: &[(String, String)],
    repetitions: usize,
    metrics: &[Summary],
) -> String {
    Json::obj([
        ("fp", Json::Str(format!("{fingerprint:016x}"))),
        ("sweep", Json::Str(sweep.to_string())),
        ("cell", Json::Str(cell.to_string())),
        (
            "labels",
            Json::Obj(labels.iter().map(|(k, v)| (k.clone(), Json::Str(v.clone()))).collect()),
        ),
        ("reps", Json::num(repetitions as f64)),
        ("metrics", Json::Arr(metrics.iter().map(summary_to_json).collect())),
    ])
    .render()
}

/// Parses journal text into a fingerprint → per-metric-summaries map.
///
/// Lines that fail to parse are skipped: a run killed mid-append leaves a
/// torn final line, and resume must still honor every complete record.
pub fn parse_journal(text: &str) -> HashMap<u64, Vec<Summary>> {
    sanitize_journal(text).0
}

/// Parses journal text into the fingerprint → summaries map *plus* the
/// sanitized record lines that produced it: torn/junk lines are dropped and
/// duplicate fingerprints keep only the newest record.
///
/// A resuming run rewrites the journal from these lines before appending,
/// so a torn tail left by a kill can never fuse with the next record and
/// the journal stays strictly line-parseable.
pub fn sanitize_journal(text: &str) -> (HashMap<u64, Vec<Summary>>, Vec<String>) {
    let mut records = HashMap::new();
    let mut lines: Vec<String> = Vec::new();
    let mut line_of: HashMap<u64, usize> = HashMap::new();
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        let Ok(json) = Json::parse(line) else { continue };
        let Some(fp) = json.get("fp").and_then(Json::as_str) else { continue };
        let Ok(fp) = u64::from_str_radix(fp, 16) else { continue };
        let Some(metrics) = json.get("metrics").and_then(Json::as_arr) else { continue };
        let Some(summaries) =
            metrics.iter().map(summary_from_json).collect::<Option<Vec<Summary>>>()
        else {
            continue;
        };
        records.insert(fp, summaries);
        match line_of.get(&fp) {
            Some(&index) => lines[index] = line.to_string(),
            None => {
                line_of.insert(fp, lines.len());
                lines.push(line.to_string());
            }
        }
    }
    (records, lines)
}

/// Parses every `*.jsonl` artifact in `dir`, returning the total record
/// count or a description of the first malformed record.
///
/// The journal's final line is exempt from strict validation (it may be torn
/// by a kill); everything else must parse.
pub fn validate_dir(dir: &Path) -> Result<usize, String> {
    let mut records = 0usize;
    let entries = std::fs::read_dir(dir).map_err(|e| format!("cannot read {dir:?}: {e}"))?;
    let mut paths: Vec<_> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "jsonl"))
        .collect();
    paths.sort();
    if paths.is_empty() {
        return Err(format!("no .jsonl artifacts in {dir:?}"));
    }
    for path in paths {
        let is_journal = path.file_name().is_some_and(|n| n == JOURNAL_FILE);
        let text = std::fs::read_to_string(&path).map_err(|e| format!("{path:?}: {e}"))?;
        let lines: Vec<&str> = text.lines().collect();
        for (index, line) in lines.iter().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            match Json::parse(line) {
                Ok(json) => {
                    for key in ["fp", "cell", "metrics"] {
                        if json.get(key).is_none() {
                            return Err(format!(
                                "{path:?} line {}: record is missing {key:?}",
                                index + 1
                            ));
                        }
                    }
                    records += 1;
                }
                Err(e) if is_journal && index + 1 == lines.len() => {
                    // Torn tail from an interrupted run; resume skips it too.
                    let _ = e;
                }
                Err(e) => return Err(format!("{path:?} line {}: {e}", index + 1)),
            }
        }
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_summaries() -> Vec<Summary> {
        vec![Summary::from_samples([1.0, 2.0, 4.5]), Summary::from_samples([-3.0])]
    }

    #[test]
    fn record_round_trips_through_the_journal_parser() {
        let metrics = sample_summaries();
        let labels = vec![("ber".to_string(), "0.002".to_string())];
        let line = record_line(0xDEAD_BEEF, "fig5", "fig5a/ber=0.002", &labels, 3, &metrics);
        let journal = parse_journal(&line);
        let back = &journal[&0xDEAD_BEEF];
        assert_eq!(back.len(), 2);
        for (a, b) in back.iter().zip(&metrics) {
            assert_eq!(a.count(), b.count());
            assert_eq!(a.mean().to_bits(), b.mean().to_bits());
            assert_eq!(a.m2().to_bits(), b.m2().to_bits());
            assert_eq!(a.min(), b.min());
            assert_eq!(a.max(), b.max());
        }
    }

    #[test]
    fn journal_parser_skips_torn_and_junk_lines() {
        let good = record_line(7, "s", "c", &[], 1, &sample_summaries());
        let text = format!("{good}\nnot json at all\n{{\"fp\":\"zz\"}}\n{{\"fp\":\"08\",\"tru");
        let journal = parse_journal(&text);
        assert_eq!(journal.len(), 1);
        assert!(journal.contains_key(&7));
    }

    #[test]
    fn validate_dir_accepts_good_artifacts_and_rejects_bad_ones() {
        let dir = std::env::temp_dir().join(format!("navft-artifact-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let line = record_line(1, "figx", "a", &[], 2, &sample_summaries());
        std::fs::write(dir.join("figx.jsonl"), format!("{line}\n{line}\n")).unwrap();
        // A torn journal tail is tolerated.
        std::fs::write(dir.join(JOURNAL_FILE), format!("{line}\n{{\"fp\":\"01\",\"tr")).unwrap();
        assert_eq!(validate_dir(&dir), Ok(3));

        // A torn line in a figure artifact is not.
        std::fs::write(dir.join("figy.jsonl"), "{\"fp\":").unwrap();
        assert!(validate_dir(&dir).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn validate_dir_requires_artifacts() {
        let dir = std::env::temp_dir().join(format!("navft-artifact-empty-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        assert!(validate_dir(&dir).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

//! Declarative campaign orchestration: sweeps, cells, and a resumable
//! work-stealing runner.
//!
//! The paper's evaluation is a grid of campaigns — (figure × BER × injection
//! point × format × model) cells, each repeated up to 1000×. This module
//! turns every figure into data instead of hand-rolled loops:
//!
//! * [`CellSpec`] names one campaign cell: a stable id, human-readable axis
//!   labels, a repetition count and a base seed.
//! * [`Sweep`] is a figure: a set of cells (each with the trial closure that
//!   computes one repetition's metrics from a seed) plus a *fold* from the
//!   per-cell [`Summary`] statistics to the figure's [`FigureData`].
//! * [`run_sweeps`] executes *all* cells of *all* requested figures on one
//!   shared work-stealing scheduler ([`navft_fault::campaign::run_cells`]),
//!   so a whole-evaluation run saturates every core end to end instead of
//!   fork-joining per cell.
//!
//! # Determinism
//!
//! Every trial's seed derives only from its cell's [fingerprint] and
//! repetition index, and each cell's metrics are folded in repetition order,
//! so results are bit-identical to serial execution regardless of thread
//! count. Trials must be pure functions of `(seed, rep)` and their captured
//! immutable state; anything wall-clock dependent (e.g. the runtime-overhead
//! measurement of Fig. 10) belongs in the fold, where it only reaches the
//! rendered tables, never the machine-readable artifacts.
//!
//! # Artifacts and resume
//!
//! With [`RunOptions::out_dir`] set, every completed cell is appended to
//! `journal.jsonl` in cell-declaration order (see [`artifact`]): finished
//! cells buffer until every earlier-declared cell has completed, so the
//! journal is byte-identical at any thread count. Per-figure
//! `<figure>.jsonl` + `<figure>.txt` files are written at the end. With
//! [`RunOptions::resume`], cells whose fingerprint already has a journal
//! record are skipped entirely — their trained inputs (wrapped in [`Lazy`])
//! are never even built — which makes paper-scale runs interruptible:
//! kill the process, re-run with `--resume`, and only unfinished cells
//! execute.
//!
//! [fingerprint]: CellSpec#fingerprints

pub mod artifact;
pub mod json;

use std::collections::{BTreeMap, HashMap, HashSet};
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::{Arc, OnceLock};

use navft_fault::campaign::{run_cells_with, summarize_metrics, CellPlan, Summary};
use navft_nn::EngineConfig;

use crate::{FigureData, Scale};

/// The declarative description of one campaign cell.
///
/// # Fingerprints
///
/// A cell's *fingerprint* — the key of its artifact records and the root of
/// its seed derivation — is an FNV-1a hash of (scale, sweep id, cell id,
/// repetitions, base seed). Two cells of the same run must never collide
/// (the runner enforces this), and changing the scale or repetition count
/// invalidates old journal records automatically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellSpec {
    id: String,
    labels: Vec<(String, String)>,
    repetitions: usize,
    base_seed: u64,
}

impl CellSpec {
    /// A cell named `id` (unique within its sweep) running `repetitions`
    /// trials, with base seed 0 and no labels.
    pub fn new(id: impl Into<String>, repetitions: usize) -> CellSpec {
        CellSpec { id: id.into(), labels: Vec::new(), repetitions, base_seed: 0 }
    }

    /// Sets the base seed mixed into the cell's fingerprint.
    pub fn with_seed(mut self, base_seed: u64) -> CellSpec {
        self.base_seed = base_seed;
        self
    }

    /// Attaches one axis label (e.g. `("ber", "0.002")`) for the artifacts.
    pub fn with_label(mut self, key: impl Into<String>, value: impl Into<String>) -> CellSpec {
        self.labels.push((key.into(), value.into()));
        self
    }

    /// The cell's stable identifier.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The axis labels.
    pub fn labels(&self) -> &[(String, String)] {
        &self.labels
    }

    /// The repetition count.
    pub fn repetitions(&self) -> usize {
        self.repetitions
    }

    /// The base seed.
    pub fn base_seed(&self) -> u64 {
        self.base_seed
    }
}

type TrialFn = Box<dyn Fn(u64, usize, EngineConfig) -> Vec<f64> + Send + Sync>;
type FoldFn = Box<dyn FnOnce(&SweepResults) -> Vec<FigureData>>;

struct Cell {
    spec: CellSpec,
    trial: TrialFn,
}

/// A figure expressed declaratively: cells plus a fold to [`FigureData`].
///
/// # Examples
///
/// ```
/// use navft_core::sweep::{CellSpec, Sweep};
/// use navft_core::{FigureData, Scale, Series};
///
/// let mut sweep = Sweep::new("demo", Scale::Smoke);
/// for ber in [0.001, 0.01] {
///     sweep.cell(CellSpec::new(format!("ber={ber}"), 10).with_label("ber", ber.to_string()),
///         move |seed, _rep, _cfg| (seed % 100) as f64 * ber);
/// }
/// sweep.fold(move |results| {
///     let points = [0.001, 0.01]
///         .iter()
///         .map(|&ber| (ber, results.mean(&format!("ber={ber}"))))
///         .collect();
///     vec![FigureData::lines("demo", "demo", "y vs BER", vec![Series::new("demo", points)])]
/// });
/// let figures = sweep.collect(2);
/// assert_eq!(figures.len(), 1);
/// ```
pub struct Sweep {
    id: String,
    scale: Scale,
    cells: Vec<Cell>,
    fold: Option<FoldFn>,
}

impl Sweep {
    /// An empty sweep named `id` (the figure id) at the given scale.
    pub fn new(id: impl Into<String>, scale: Scale) -> Sweep {
        Sweep { id: id.into(), scale, cells: Vec::new(), fold: None }
    }

    /// The sweep's figure id.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The scale the sweep was built for.
    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// The number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the sweep has no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The declared cell specs, in declaration order.
    pub fn cell_specs(&self) -> impl Iterator<Item = &CellSpec> {
        self.cells.iter().map(|c| &c.spec)
    }

    /// Adds a single-metric cell. The trial receives `(seed, rep, engine)`
    /// and must be a deterministic function of the first two (plus captured
    /// immutable state): the [`EngineConfig`] comes from
    /// [`RunOptions::engine`] and only steers *how* forward passes execute
    /// (batch sharding, kernel tier) — the engine contract keeps results
    /// bit-identical at any config, so trials stay thread-count invariant.
    pub fn cell<F>(&mut self, spec: CellSpec, trial: F)
    where
        F: Fn(u64, usize, EngineConfig) -> f64 + Send + Sync + 'static,
    {
        self.cell_metrics(spec, move |seed, rep, cfg| vec![trial(seed, rep, cfg)]);
    }

    /// Adds a multi-metric cell: one trial computes several metrics at once
    /// (e.g. Fig. 9 extracts peak exploration, episodes-to-steady and
    /// recovery time from a single training run). Every repetition must
    /// return the same number of metrics.
    pub fn cell_metrics<F>(&mut self, spec: CellSpec, trial: F)
    where
        F: Fn(u64, usize, EngineConfig) -> Vec<f64> + Send + Sync + 'static,
    {
        self.cells.push(Cell { spec, trial: Box::new(trial) });
    }

    /// Sets the fold from cell summaries to figure data. Runs on the calling
    /// thread after every cell completed; wall-clock-dependent measurements
    /// belong here, not in cells.
    pub fn fold<F>(&mut self, fold: F)
    where
        F: FnOnce(&SweepResults) -> Vec<FigureData> + 'static,
    {
        self.fold = Some(Box::new(fold));
    }

    /// Runs this sweep alone on `threads` workers (no artifacts, no resume)
    /// and returns its figures. The imperative drivers in
    /// [`crate::experiments`] are thin wrappers over this.
    pub fn collect(self, threads: usize) -> Vec<FigureData> {
        let options = RunOptions::new(threads);
        let report = run_sweeps(vec![self], &options).expect("in-memory run cannot fail on IO");
        report.figures.into_iter().flat_map(|(_, figures)| figures).collect()
    }
}

/// The per-cell summaries of one sweep, keyed by cell id.
pub struct SweepResults {
    cells: BTreeMap<String, Vec<Summary>>,
}

impl SweepResults {
    /// The summaries of cell `id`'s metrics, in metric order.
    ///
    /// # Panics
    ///
    /// Panics if the sweep declared no such cell — that is a driver bug
    /// (fold and builder disagree on an id), not a runtime condition.
    pub fn metrics(&self, id: &str) -> &[Summary] {
        self.cells.get(id).unwrap_or_else(|| panic!("sweep fold asked for undeclared cell {id:?}"))
    }

    /// The summary of cell `id`'s single (first) metric.
    pub fn summary(&self, id: &str) -> &Summary {
        &self.metrics(id)[0]
    }

    /// The mean of cell `id`'s first metric.
    pub fn mean(&self, id: &str) -> f64 {
        self.summary(id).mean()
    }

    /// The mean of cell `id`'s `metric`-th metric.
    pub fn metric_mean(&self, id: &str, metric: usize) -> f64 {
        self.metrics(id)[metric].mean()
    }

    /// The number of cells with results.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether no cell has results.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

/// A lazily built, shareable input (e.g. a trained base policy) for trial
/// closures.
///
/// Sweep builders run *before* the scheduler, so expensive shared inputs
/// must not be built eagerly: a fully resumed figure would otherwise train
/// its policies just to skip every cell. `Lazy` defers the build to the
/// first trial that needs it (thread-safe, built exactly once) and clones
/// cheaply into every cell closure.
pub struct Lazy<T> {
    cell: Arc<OnceLock<T>>,
    init: Arc<dyn Fn() -> T + Send + Sync>,
}

impl<T> Lazy<T> {
    /// Wraps `init`, deferring it until [`Lazy::get`] is first called.
    pub fn new(init: impl Fn() -> T + Send + Sync + 'static) -> Lazy<T> {
        Lazy { cell: Arc::new(OnceLock::new()), init: Arc::new(init) }
    }

    /// The value, building it on first use.
    pub fn get(&self) -> &T {
        self.cell.get_or_init(|| (self.init)())
    }
}

impl<T> Clone for Lazy<T> {
    fn clone(&self) -> Self {
        Lazy { cell: Arc::clone(&self.cell), init: Arc::clone(&self.init) }
    }
}

/// How to execute a set of sweeps.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Worker threads for the shared scheduler.
    pub threads: usize,
    /// Artifact directory: enables the journal and per-figure files.
    pub out_dir: Option<PathBuf>,
    /// Skip cells whose fingerprint already has a journal record
    /// (requires `out_dir`).
    pub resume: bool,
    /// Emit a progress line to stderr as cells complete.
    pub progress: bool,
    /// The engine configuration handed to every trial: in-engine batch
    /// sharding ([`EngineConfig::with_threads`]) composes multiplicatively
    /// with the scheduler's trial-level `threads`, so total worker count is
    /// `threads × engine.threads`. Results are bit-identical at any engine
    /// config (the engine contract), so this never affects artifacts.
    pub engine: EngineConfig,
}

impl RunOptions {
    /// In-memory execution on `threads` workers: no artifacts, no resume,
    /// no progress output, default (serial, best-kernel) engine config.
    pub fn new(threads: usize) -> RunOptions {
        RunOptions {
            threads,
            out_dir: None,
            resume: false,
            progress: false,
            engine: EngineConfig::default(),
        }
    }
}

/// The outcome of [`run_sweeps`].
pub struct RunReport {
    /// `(figure id, figures)` for every sweep, in request order.
    pub figures: Vec<(String, Vec<FigureData>)>,
    /// Cells actually executed by this run.
    pub executed_cells: usize,
    /// Cells skipped because the journal already had their record.
    pub resumed_cells: usize,
    /// Total cells across all sweeps.
    pub total_cells: usize,
}

/// FNV-1a 64-bit, the artifact fingerprint hash.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The fingerprint of `spec` within sweep `sweep_id` at `scale`.
pub fn fingerprint(scale: Scale, sweep_id: &str, spec: &CellSpec) -> u64 {
    let key = format!(
        "{scale:?}\u{1f}{sweep_id}\u{1f}{}\u{1f}{}\u{1f}{}",
        spec.id, spec.repetitions, spec.base_seed
    );
    fnv1a(key.as_bytes())
}

/// Executes every cell of `sweeps` on one shared work-stealing scheduler,
/// folds each sweep into its figures, and (with an `out_dir`) writes the
/// journal and per-figure artifacts. See the [module docs](self) for the
/// determinism and resume contracts.
///
/// # Errors
///
/// Returns any artifact-directory IO error. In-memory runs cannot fail.
///
/// # Panics
///
/// Panics on duplicate cell ids within a sweep or fingerprint collisions
/// across the run — both are driver bugs.
pub fn run_sweeps(sweeps: Vec<Sweep>, options: &RunOptions) -> std::io::Result<RunReport> {
    // Decompose the sweeps: specs and trials feed the scheduler, folds run
    // afterwards on this thread.
    struct Parts {
        id: String,
        specs: Vec<CellSpec>,
        fingerprints: Vec<u64>,
        fold: Option<FoldFn>,
    }
    let mut parts: Vec<Parts> = Vec::with_capacity(sweeps.len());
    let mut trials: Vec<Vec<TrialFn>> = Vec::with_capacity(sweeps.len());
    let mut seen_fingerprints: HashMap<u64, String> = HashMap::new();
    for sweep in sweeps {
        let mut ids = HashSet::new();
        let mut specs = Vec::with_capacity(sweep.cells.len());
        let mut fingerprints = Vec::with_capacity(sweep.cells.len());
        let mut sweep_trials = Vec::with_capacity(sweep.cells.len());
        for cell in sweep.cells {
            assert!(
                ids.insert(cell.spec.id.clone()),
                "sweep {:?} declares cell {:?} twice",
                sweep.id,
                cell.spec.id
            );
            let fp = fingerprint(sweep.scale, &sweep.id, &cell.spec);
            if let Some(other) =
                seen_fingerprints.insert(fp, format!("{}/{}", sweep.id, cell.spec.id))
            {
                panic!("fingerprint collision between {other:?} and {}/{}", sweep.id, cell.spec.id);
            }
            fingerprints.push(fp);
            specs.push(cell.spec);
            sweep_trials.push(cell.trial);
        }
        parts.push(Parts { id: sweep.id, specs, fingerprints, fold: sweep.fold });
        trials.push(sweep_trials);
    }

    // Load the journal and split cells into resumed and pending. The loaded
    // lines are kept so the resume path can rewrite the journal cleanly
    // (dropping any torn tail a killed run left behind, deduplicating
    // fingerprints) before appending new records to it.
    let journal_path = options.out_dir.as_ref().map(|dir| dir.join(artifact::JOURNAL_FILE));
    let mut journal: HashMap<u64, Vec<Summary>> = HashMap::new();
    let mut journal_lines: Vec<String> = Vec::new();
    if options.resume {
        if let Some(path) = &journal_path {
            if let Ok(text) = std::fs::read_to_string(path) {
                (journal, journal_lines) = artifact::sanitize_journal(&text);
            }
        }
    }

    let mut results: Vec<BTreeMap<String, Vec<Summary>>> =
        parts.iter().map(|_| BTreeMap::new()).collect();
    let mut pending: Vec<(usize, usize)> = Vec::new();
    let mut plans: Vec<CellPlan> = Vec::new();
    let mut resumed_cells = 0usize;
    let mut total_cells = 0usize;
    for (sweep_index, part) in parts.iter().enumerate() {
        for (cell_index, spec) in part.specs.iter().enumerate() {
            total_cells += 1;
            let fp = part.fingerprints[cell_index];
            if let Some(summaries) = journal.get(&fp) {
                results[sweep_index].insert(spec.id.clone(), summaries.clone());
                resumed_cells += 1;
            } else {
                pending.push((sweep_index, cell_index));
                plans.push(CellPlan {
                    repetitions: spec.repetitions,
                    // The per-repetition seed stream is rooted at the
                    // fingerprint, as the cell's stable identity.
                    base_seed: fp,
                });
            }
        }
    }

    // (Re-)create the journal: a fresh run starts it empty (no stale records
    // from earlier runs), a resume rewrites only the sanitized surviving
    // records so a torn tail can never fuse with the next appended line.
    let mut appender = match (&options.out_dir, &journal_path) {
        (Some(dir), Some(path)) => {
            std::fs::create_dir_all(dir)?;
            let mut file = std::fs::File::create(path)?;
            for line in &journal_lines {
                writeln!(file, "{line}")?;
            }
            file.flush()?;
            Some(file)
        }
        _ => None,
    };

    let executed_cells = pending.len();
    let started = std::time::Instant::now();
    let mut done = 0usize;
    let mut io_error: Option<std::io::Error> = None;
    // Completed cells whose record is not yet written: the journal appends
    // strictly in declaration order (cells that finish early buffer here
    // until every earlier-declared cell has completed), so its bytes are
    // identical at any thread count. A killed run loses at most the cells
    // behind an in-flight predecessor.
    let mut journal_buffer: Vec<Option<String>> = vec![None; pending.len()];
    let mut flushed = 0usize;
    {
        let trial = |k: usize, seed: u64, rep: usize, engine: EngineConfig| {
            let (sweep_index, cell_index) = pending[k];
            (trials[sweep_index][cell_index])(seed, rep, engine)
        };
        let on_cell_done = |k: usize, per_rep: Vec<Vec<f64>>| {
            let (sweep_index, cell_index) = pending[k];
            let part = &parts[sweep_index];
            let spec = &part.specs[cell_index];
            let summaries = summarize_metrics(&per_rep);
            if appender.is_some() {
                journal_buffer[k] = Some(artifact::record_line(
                    part.fingerprints[cell_index],
                    &part.id,
                    &spec.id,
                    &spec.labels,
                    spec.repetitions,
                    &summaries,
                ));
            }
            if let Some(file) = &mut appender {
                // Drain the longest completed prefix, then flush once so the
                // written records survive a kill; remember the first error,
                // keep computing.
                let mut wrote = false;
                while let Some(slot) = journal_buffer.get_mut(flushed) {
                    let Some(line) = slot.take() else { break };
                    if let Err(e) = writeln!(file, "{line}") {
                        io_error.get_or_insert(e);
                    }
                    flushed += 1;
                    wrote = true;
                }
                if wrote {
                    if let Err(e) = file.flush() {
                        io_error.get_or_insert(e);
                    }
                }
            }
            results[sweep_index].insert(spec.id.clone(), summaries);
            done += 1;
            if options.progress {
                eprint!(
                    "\r[figures] {done}/{executed_cells} cells ({resumed_cells} resumed, {:.0} s)   ",
                    started.elapsed().as_secs_f64()
                );
            }
        };
        run_cells_with(&plans, options.threads.max(1), options.engine, trial, on_cell_done);
    }
    if options.progress && executed_cells > 0 {
        eprintln!();
    }
    if let Some(e) = io_error {
        return Err(e);
    }

    // Fold each sweep and write its artifacts in declaration order, so the
    // per-figure files are deterministic regardless of completion order.
    let mut figures = Vec::with_capacity(parts.len());
    for (sweep_index, part) in parts.into_iter().enumerate() {
        let cells = std::mem::take(&mut results[sweep_index]);
        if let Some(dir) = &options.out_dir {
            let mut jsonl = String::new();
            for (cell_index, spec) in part.specs.iter().enumerate() {
                let summaries = &cells[&spec.id];
                jsonl.push_str(&artifact::record_line(
                    part.fingerprints[cell_index],
                    &part.id,
                    &spec.id,
                    &spec.labels,
                    spec.repetitions,
                    summaries,
                ));
                jsonl.push('\n');
            }
            std::fs::write(dir.join(format!("{}.jsonl", part.id)), jsonl)?;
        }
        let sweep_results = SweepResults { cells };
        let data = match part.fold {
            Some(fold) => fold(&sweep_results),
            None => Vec::new(),
        };
        if let Some(dir) = &options.out_dir {
            let rendered: String = data.iter().map(FigureData::render).collect();
            std::fs::write(dir.join(format!("{}.txt", part.id)), rendered)?;
        }
        figures.push((part.id, data));
    }

    Ok(RunReport { figures, executed_cells, resumed_cells, total_cells })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic_sweep(scale: Scale) -> Sweep {
        let mut sweep = Sweep::new("synthetic", scale);
        for cell in 0..4 {
            sweep.cell_metrics(
                CellSpec::new(format!("cell{cell}"), 3 + cell)
                    .with_seed(cell as u64)
                    .with_label("cell", cell.to_string()),
                move |seed, rep, _cfg| vec![(seed % 1000) as f64, (cell * 100 + rep) as f64],
            );
        }
        sweep.fold(|results| {
            let points =
                (0..4).map(|c| (c as f64, results.metric_mean(&format!("cell{c}"), 1))).collect();
            vec![FigureData::lines(
                "synthetic",
                "synthetic",
                "metric vs cell",
                vec![crate::Series::new("mean", points)],
            )]
        });
        sweep
    }

    #[test]
    fn collect_is_thread_count_invariant() {
        let one = synthetic_sweep(Scale::Smoke).collect(1);
        let four = synthetic_sweep(Scale::Smoke).collect(4);
        assert_eq!(one, four);
    }

    #[test]
    fn fingerprints_depend_on_scale_sweep_id_and_spec() {
        let spec = CellSpec::new("a", 5).with_seed(9);
        let base = fingerprint(Scale::Smoke, "fig5", &spec);
        assert_eq!(base, fingerprint(Scale::Smoke, "fig5", &spec));
        assert_ne!(base, fingerprint(Scale::Quick, "fig5", &spec));
        assert_ne!(base, fingerprint(Scale::Smoke, "fig4", &spec));
        assert_ne!(base, fingerprint(Scale::Smoke, "fig5", &CellSpec::new("b", 5).with_seed(9)));
        assert_ne!(base, fingerprint(Scale::Smoke, "fig5", &CellSpec::new("a", 6).with_seed(9)));
        assert_ne!(base, fingerprint(Scale::Smoke, "fig5", &CellSpec::new("a", 5).with_seed(8)));
        // Labels are presentation only and do not change identity.
        assert_eq!(
            base,
            fingerprint(
                Scale::Smoke,
                "fig5",
                &CellSpec::new("a", 5).with_seed(9).with_label("k", "v")
            )
        );
    }

    #[test]
    #[should_panic(expected = "twice")]
    fn duplicate_cell_ids_are_rejected() {
        let mut sweep = Sweep::new("dup", Scale::Smoke);
        sweep.cell(CellSpec::new("same", 1), |_, _, _| 0.0);
        sweep.cell(CellSpec::new("same", 1), |_, _, _| 1.0);
        let _ = sweep.collect(1);
    }

    #[test]
    fn lazy_builds_once_and_shares() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let builds = Arc::new(AtomicUsize::new(0));
        let lazy = {
            let builds = builds.clone();
            Lazy::new(move || {
                builds.fetch_add(1, Ordering::SeqCst);
                42usize
            })
        };
        let clone = lazy.clone();
        assert_eq!(builds.load(Ordering::SeqCst), 0);
        assert_eq!(*lazy.get(), 42);
        assert_eq!(*clone.get(), 42);
        assert_eq!(builds.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn zero_metric_fold_access_panics_with_cell_name() {
        let mut sweep = Sweep::new("empty", Scale::Smoke);
        sweep.cell(CellSpec::new("present", 1), |_, _, _| 1.0);
        sweep.fold(|results| {
            assert_eq!(results.len(), 1);
            assert!(!results.is_empty());
            assert_eq!(results.mean("present"), results.summary("present").mean());
            vec![]
        });
        assert!(sweep.collect(1).is_empty());
    }
}

//! A minimal, dependency-free JSON reader/writer for campaign artifacts.
//!
//! The build environment has no crates.io access, so the orchestrator
//! hand-rolls exactly the JSON subset its artifacts need: objects, arrays,
//! strings, finite numbers, booleans and `null`. Rendering is deterministic
//! (insertion-ordered keys, no whitespace, shortest-round-trip `f64`
//! formatting), which is what makes artifact files byte-comparable across
//! thread counts.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`. Also used to encode non-finite numbers, which JSON cannot
    /// represent; they parse back as NaN.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

/// A JSON parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Builds a number, mapping non-finite values to [`Json::Null`].
    pub fn num(value: f64) -> Json {
        if value.is_finite() {
            Json::Num(value)
        } else {
            Json::Null
        }
    }

    /// The value of `key` if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, treating `null` as NaN (the non-finite encoding).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            Json::Null => Some(f64::NAN),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders the value as compact JSON (no whitespace). `f64` uses Rust's
    /// shortest-round-trip formatting, so `parse(render(v))` reproduces the
    /// exact same bits for finite numbers.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    // `{}` on f64 is shortest-round-trip but omits a decimal
                    // point for integral values, which is still valid JSON.
                    out.push_str(&format!("{n}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(key, out);
                    out.push(':');
                    value.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a complete JSON document (rejecting trailing garbage).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(err(pos, "trailing characters after JSON value"));
        }
        Ok(value)
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn err(offset: usize, message: &str) -> JsonError {
    JsonError { offset, message: message.to_string() }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: Json,
) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(err(*pos, "invalid literal"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| err(start, "not UTF-8"))?;
    text.parse::<f64>().map(Json::Num).map_err(|_| err(start, "invalid number"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        let start = *pos;
        match bytes.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| err(*pos, "truncated \\u escape"))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| err(*pos, "non-ASCII \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| err(*pos, "invalid \\u escape"))?;
                        // Artifacts only escape control characters; surrogate
                        // pairs are out of scope and map to the replacement
                        // character rather than failing the whole record.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(err(*pos, "invalid escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar.
                let mut end = start + 1;
                while end < bytes.len() && (bytes[end] & 0xC0) == 0x80 {
                    end += 1;
                }
                let chunk =
                    std::str::from_utf8(&bytes[start..end]).map_err(|_| err(start, "not UTF-8"))?;
                out.push_str(chunk);
                *pos = end;
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    debug_assert_eq!(bytes[*pos], b'[');
    *pos += 1;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(err(*pos, "expected ',' or ']' in array")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    debug_assert_eq!(bytes[*pos], b'{');
    *pos += 1;
    let mut pairs = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(err(*pos, "expected string key"));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(err(*pos, "expected ':' after key"));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        pairs.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            _ => return Err(err(*pos, "expected ',' or '}' in object")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_parse_round_trip_is_exact() {
        let value = Json::obj([
            ("fp", Json::Str("00ff".into())),
            ("n", Json::num(0.1 + 0.2)),
            ("neg", Json::num(-1.5e-9)),
            ("int", Json::num(41.0)),
            ("flag", Json::Bool(true)),
            ("arr", Json::Arr(vec![Json::num(1.0), Json::Null, Json::Str("x\n\"y".into())])),
        ]);
        let text = value.render();
        let back = Json::parse(&text).expect("round trip parses");
        assert_eq!(back, value);
        // Numbers survive bit-exactly through shortest-round-trip text.
        assert_eq!(back.get("n").unwrap().as_f64().unwrap().to_bits(), (0.1f64 + 0.2).to_bits());
        // Re-rendering is stable.
        assert_eq!(back.render(), text);
    }

    #[test]
    fn non_finite_numbers_become_null_and_parse_as_nan() {
        let text = Json::obj([("v", Json::num(f64::INFINITY))]).render();
        assert_eq!(text, r#"{"v":null}"#);
        let back = Json::parse(&text).unwrap();
        assert!(back.get("v").unwrap().as_f64().unwrap().is_nan());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "{\"a\":}", "[1,", "{\"a\" 1}", "tru", "1.2.3", "{} extra", "\"a"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = Json::parse(" { \"k\" : [ 1 , \"a\\tb\\u0041\" ] } ").unwrap();
        let arr = v.get("k").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].as_str(), Some("a\tbA"));
    }

    #[test]
    fn accessors_are_type_checked() {
        let v = Json::parse("{\"s\":\"x\",\"n\":2}").unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("s").unwrap().as_f64(), None);
        assert_eq!(v.get("n").unwrap().as_f64(), Some(2.0));
        assert_eq!(v.get("missing"), None);
        assert_eq!(v.as_arr(), None);
    }
}

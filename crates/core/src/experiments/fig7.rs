//! Fig. 7 — drone navigation fault characterization: training under faults
//! (7a), environment sensitivity (7b), fault-location sensitivity (7c),
//! per-layer sensitivity (7d) and data-type sensitivity (7e).

use navft_dronesim::{DepthCamera, DroneSim, DroneWorld};
use navft_fault::{FaultKind, FaultMap, FaultSite, FaultTarget, InjectionSchedule, Injector};
use navft_nn::{parametric_layer_names, Network, QNetwork, QScratch, QTensor};
use navft_qformat::QFormat;
use navft_rl::{
    evaluate_network_vision, evaluate_network_vision_hooked, evaluate_qnetwork_vision, trainer,
    FaultPlan, InferenceFaultMode, VisionEnvironment,
};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::drone_policy::{drone_agent, train_drone_policy};
use crate::experiments::{ber_label, campaign};
use crate::hooks::{BufferFaultHook, HookPersistence, HookTarget};
use crate::{DroneParams, FigureData, Heatmap, Scale, Series};

/// The fixed-point format drone policy weights are stored in.
const DRONE_FORMAT: QFormat = QFormat::Q4_11;

/// Trains the drone policy used by the inference experiments (deterministic
/// for a given scale).
fn trained_policy(world: &DroneWorld, params: &DroneParams) -> Network {
    train_drone_policy(world, params, 0x0D0E)
}

/// Samples a weight-buffer injector over a network's `num_words` weights.
fn weight_injector(
    num_words: usize,
    ber: f64,
    kind: FaultKind,
    format: QFormat,
    seed: u64,
) -> Injector {
    let mut rng = SmallRng::seed_from_u64(seed);
    Injector::sample(
        FaultTarget::new(FaultSite::WeightBuffer),
        num_words,
        format,
        ber,
        kind,
        &mut rng,
    )
}

/// Samples an injector whose faults are confined to one layer's weight span.
fn layer_injector(network: &Network, layer: usize, ber: f64, seed: u64) -> Injector {
    let span = network.weight_span(layer);
    let mut rng = SmallRng::seed_from_u64(seed);
    let local = FaultMap::sample(span.len(), DRONE_FORMAT, ber, FaultKind::BitFlip, &mut rng);
    let shifted: FaultMap = local
        .faults()
        .iter()
        .map(|f| navft_fault::BitFault { word: f.word + span.start, bit: f.bit, kind: f.kind })
        .collect();
    Injector::new(FaultTarget::layer(FaultSite::WeightBuffer, layer), DRONE_FORMAT, shifted)
}

/// Evaluates the mean safe flight distance of `network` in `world` under the
/// given weight fault mode.
fn flight_distance(
    network: &Network,
    world: &DroneWorld,
    params: &DroneParams,
    fault: &InferenceFaultMode,
    seed: u64,
) -> f64 {
    let mut sim = DroneSim::new(world.clone(), DepthCamera::scaled(), params.max_steps);
    let mut rng = SmallRng::seed_from_u64(seed);
    evaluate_network_vision(
        &mut sim,
        network,
        params.eval_episodes,
        params.max_steps,
        fault,
        &mut rng,
    )
    .mean_distance
}

/// Fig. 7a: online fine-tuning (the transfer-learning stage) under transient
/// faults injected at different points, plus permanent stuck-at faults, with
/// the quality of the resulting flights as the metric.
pub fn drone_training_faults(scale: Scale) -> Vec<FigureData> {
    let params = scale.drone();
    let world = DroneWorld::indoor_long();
    let base_policy = trained_policy(&world, &params);
    // Fine-tuning is the most expensive experiment: cap the repetitions.
    let reps = params.repetitions.min(3);
    let injection_fractions = [0.0, 0.5, 0.9];
    let bers: Vec<f64> = params.bit_error_rates.clone();

    let finetune_distance = |kind: FaultKind, ber: f64, fraction: f64, seed: u64| -> f64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let injector = Injector::sample(
            FaultTarget::new(FaultSite::WeightBuffer),
            base_policy.weight_count(),
            DRONE_FORMAT,
            ber,
            kind,
            &mut rng,
        );
        let episode = ((fraction * params.finetune_episodes as f64) as usize)
            .min(params.finetune_episodes.saturating_sub(1));
        let schedule = if kind.is_permanent() {
            InjectionSchedule::from_start()
        } else {
            InjectionSchedule::at_episode(episode)
        };
        let plan = FaultPlan::new(injector, schedule);
        let mut agent = drone_agent(base_policy.clone(), params.finetune_episodes / 2);
        let mut sim = DroneSim::new(world.clone(), DepthCamera::scaled(), params.max_steps);
        let trace = trainer::train_dqn_vision(
            &mut sim,
            &mut agent,
            trainer::TrainingConfig::new(params.finetune_episodes, params.max_steps),
            &plan,
            &mut rng,
            trainer::no_mitigation(),
        );
        trace.recent_mean_distance((params.finetune_episodes / 4).max(1))
    };

    // Transient heatmap: rows = BER, cols = injection fraction.
    let mut rows = Vec::new();
    for &ber in &bers {
        let mut row = Vec::new();
        for &fraction in &injection_fractions {
            let summary = campaign(
                scale,
                reps,
                (ber * 1e7) as u64 ^ ((fraction * 10.0) as u64),
                |seed, _| finetune_distance(FaultKind::BitFlip, ber, fraction, seed),
            );
            row.push(summary.mean());
        }
        rows.push(row);
    }
    let transient = FigureData::heatmap(
        "fig7a-transient",
        "drone online fine-tuning under transient weight bit flips",
        "mean safe flight distance (m) vs (BER, fault-injection point)",
        Heatmap::new(
            bers.iter().map(|&b| ber_label(b)).collect(),
            injection_fractions.iter().map(|f| format!("{:.0}%", f * 100.0)).collect(),
            rows,
        ),
    );

    // Permanent faults at a representative BER.
    let representative_ber = bers[bers.len() / 2];
    let mut series = Vec::new();
    for kind in [FaultKind::StuckAt0, FaultKind::StuckAt1] {
        let summary = campaign(scale, reps, 0x7A ^ kind as u64, |seed, _| {
            finetune_distance(kind, representative_ber, 0.0, seed)
        });
        series.push(Series::new(kind.to_string(), vec![(representative_ber, summary.mean())]));
    }
    let clean = campaign(scale, reps, 0x7A_C1EA, |seed, _| {
        finetune_distance(FaultKind::BitFlip, 0.0, 0.0, seed)
    });
    series.push(Series::new("fault-free", vec![(0.0, clean.mean())]));
    let permanent = FigureData::lines(
        "fig7a-permanent",
        "drone online fine-tuning under permanent faults",
        "mean safe flight distance (m) at the marked BER",
        series,
    );

    vec![transient, permanent]
}

/// Fig. 7b: transient weight faults evaluated in both indoor environments.
pub fn drone_environment_sensitivity(scale: Scale) -> Vec<FigureData> {
    let params = scale.drone();
    let mut series = Vec::new();
    for world in [DroneWorld::indoor_long(), DroneWorld::indoor_vanleer()] {
        let policy = trained_policy(&world, &params);
        let mut points = Vec::new();
        for &ber in &params.bit_error_rates {
            let summary =
                campaign(scale, params.repetitions, (ber * 1e7) as u64 ^ 0x7B, |seed, _| {
                    let injector = weight_injector(
                        policy.weight_count(),
                        ber,
                        FaultKind::BitFlip,
                        DRONE_FORMAT,
                        seed,
                    );
                    flight_distance(
                        &policy,
                        &world,
                        &params,
                        &InferenceFaultMode::TransientWholeEpisode(injector),
                        seed ^ 0xF11,
                    )
                });
            points.push((ber, summary.mean()));
        }
        series.push(Series::new(world.name(), points));
    }
    vec![FigureData::lines(
        "fig7b",
        "drone inference under weight bit flips in two environments",
        "mean safe flight distance (m) vs BER",
        series,
    )]
}

/// Fig. 7c: fault-location sensitivity — faults in the input buffer, the
/// weight buffer, and the activation buffers (transient and permanent).
pub fn drone_fault_location_sensitivity(scale: Scale) -> Vec<FigureData> {
    let params = scale.drone();
    let world = DroneWorld::indoor_long();
    let policy = trained_policy(&world, &params);

    let hooked_distance =
        |target: HookTarget, persistence: HookPersistence, ber: f64, seed: u64| -> f64 {
            let mut sim = DroneSim::new(world.clone(), DepthCamera::scaled(), params.max_steps);
            let mut rng = SmallRng::seed_from_u64(seed);
            evaluate_network_vision_hooked(
                &mut sim,
                &policy,
                params.eval_episodes,
                params.max_steps,
                &InferenceFaultMode::None,
                &mut rng,
                |episode| {
                    BufferFaultHook::new(
                        target,
                        persistence,
                        ber,
                        FaultKind::BitFlip,
                        DRONE_FORMAT,
                        seed ^ (episode as u64) << 16,
                    )
                },
            )
            .mean_distance
        };

    let mut series = Vec::new();
    for (label, runner) in [
        (
            "input buffer",
            Box::new(|ber: f64, seed: u64| {
                hooked_distance(HookTarget::Input, HookPersistence::Transient, ber, seed)
            }) as Box<dyn Fn(f64, u64) -> f64 + Sync>,
        ),
        (
            "weights",
            Box::new(|ber: f64, seed: u64| {
                let injector = weight_injector(
                    policy.weight_count(),
                    ber,
                    FaultKind::BitFlip,
                    DRONE_FORMAT,
                    seed,
                );
                flight_distance(
                    &policy,
                    &world,
                    &params,
                    &InferenceFaultMode::TransientWholeEpisode(injector),
                    seed ^ 0xAC,
                )
            }),
        ),
        (
            "activations (transient)",
            Box::new(|ber: f64, seed: u64| {
                hooked_distance(HookTarget::Activations, HookPersistence::Transient, ber, seed)
            }),
        ),
        (
            "activations (permanent)",
            Box::new(|ber: f64, seed: u64| {
                hooked_distance(HookTarget::Activations, HookPersistence::Permanent, ber, seed)
            }),
        ),
    ] {
        let mut points = Vec::new();
        for &ber in &params.bit_error_rates {
            let summary =
                campaign(scale, params.repetitions, (ber * 1e7) as u64 ^ 0x7C, |seed, _| {
                    runner(ber, seed)
                });
            points.push((ber, summary.mean()));
        }
        series.push(Series::new(label, points));
    }
    vec![FigureData::lines(
        "fig7c",
        "drone inference sensitivity by fault location",
        "mean safe flight distance (m) vs BER",
        series,
    )]
}

/// Fig. 7d: per-layer sensitivity — bit flips confined to each layer's
/// weights in turn.
pub fn drone_layer_sensitivity(scale: Scale) -> Vec<FigureData> {
    let params = scale.drone();
    let world = DroneWorld::indoor_long();
    let policy = trained_policy(&world, &params);
    let mut series = Vec::new();
    for (name, layer) in parametric_layer_names(&policy) {
        let mut points = Vec::new();
        for &ber in &params.bit_error_rates {
            let summary = campaign(
                scale,
                params.repetitions,
                (ber * 1e7) as u64 ^ (layer as u64) << 8,
                |seed, _| {
                    let injector = layer_injector(&policy, layer, ber, seed);
                    flight_distance(
                        &policy,
                        &world,
                        &params,
                        &InferenceFaultMode::TransientWholeEpisode(injector),
                        seed ^ 0x7D,
                    )
                },
            );
            points.push((ber, summary.mean()));
        }
        series.push(Series::new(name, points));
    }
    vec![FigureData::lines(
        "fig7d",
        "drone inference sensitivity by faulted layer",
        "mean safe flight distance (m) vs BER (bit flips confined to one layer's weights)",
        series,
    )]
}

/// Fig. 7e: data-type sensitivity — the policy quantized to Q(1,4,11),
/// Q(1,7,8) and Q(1,10,5), each exposed to weight bit flips.
pub fn drone_data_type_sensitivity(scale: Scale) -> Vec<FigureData> {
    data_type_sensitivity(scale, &[QFormat::Q4_11, QFormat::Q7_8, QFormat::Q10_5], "fig7e")
}

/// Mean safe flight distance of a natively quantized policy under the given
/// weight fault mode: the whole evaluation runs on raw Q-format words.
fn flight_distance_q(
    network: &QNetwork,
    world: &DroneWorld,
    params: &DroneParams,
    fault: &InferenceFaultMode,
    seed: u64,
) -> f64 {
    let mut sim = DroneSim::new(world.clone(), DepthCamera::scaled(), params.max_steps);
    let mut rng = SmallRng::seed_from_u64(seed);
    evaluate_qnetwork_vision(
        &mut sim,
        network,
        params.eval_episodes,
        params.max_steps,
        fault,
        &mut rng,
    )
    .mean_distance
}

/// Shared driver for the data-type sweep (also used by the extended
/// ablation).
///
/// Each format executes *natively*: the policy is compiled into a
/// [`QNetwork`] whose weights, inputs and activations are live raw words in
/// that format, bit flips strike those words in place, and the forward pass
/// is integer arithmetic end to end — no `f32` simulation. Alongside the
/// flight-distance sweep, a facts figure reports each format's zero/one bit
/// ratio over the whole fault surface (weights plus calibration
/// activations), the statistic that explains the stuck-at asymmetry of
/// Fig. 2.
pub(crate) fn data_type_sensitivity(
    scale: Scale,
    formats: &[QFormat],
    id: &str,
) -> Vec<FigureData> {
    let params = scale.drone();
    let world = DroneWorld::indoor_long();
    let base_policy = trained_policy(&world, &params);
    let mut series = Vec::new();
    let mut bit_facts = Vec::new();
    for &format in formats {
        let policy = base_policy.to_quantized(format);
        // Sweep every stored word of the quantized policy in one call: its
        // parameter words (weights and biases) plus the activations of one
        // calibration frame. The flight sweep below faults only the weight
        // words, but the bit-population statistic describes the whole stored
        // policy, as in Fig. 2.
        let calibration = QTensor::quantize(
            &DroneSim::new(world.clone(), DepthCamera::scaled(), params.max_steps).reset(),
            format,
        );
        let stats = policy.bit_stats(std::slice::from_ref(&calibration), &mut QScratch::new());
        bit_facts.push((format!("{format} zero/one bit ratio"), stats.zero_to_one_ratio()));
        let mut points = Vec::new();
        for &ber in &params.bit_error_rates {
            // int and frac bits together uniquely identify a format (int
            // bits alone collide, e.g. Q2_5 vs Q2_13 in the ablation sweep).
            let format_tag = u64::from(format.int_bits()) << 8 | u64::from(format.frac_bits());
            let summary =
                campaign(scale, params.repetitions, (ber * 1e7) as u64 ^ format_tag, |seed, _| {
                    let injector = weight_injector(
                        policy.weight_count(),
                        ber,
                        FaultKind::BitFlip,
                        format,
                        seed,
                    );
                    flight_distance_q(
                        &policy,
                        &world,
                        &params,
                        &InferenceFaultMode::TransientWholeEpisode(injector),
                        seed ^ 0x7E,
                    )
                });
            points.push((ber, summary.mean()));
        }
        series.push(Series::new(format.to_string(), points));
    }
    vec![
        FigureData::lines(
            id,
            "drone inference sensitivity by fixed-point data type (native execution)",
            "mean safe flight distance (m) vs BER (bit flips on live weight words)",
            series,
        ),
        FigureData::facts(
            format!("{id}-bits"),
            "zero/one bit ratio of the quantized policy per data type",
            bit_facts,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_injector_confines_faults_to_the_span() {
        let params = Scale::Smoke.drone();
        let world = DroneWorld::indoor_long();
        let mut rng = SmallRng::seed_from_u64(0);
        let policy = navft_nn::C3f2Config::scaled().build(&mut rng);
        let _ = (&world, &params);
        let layers = policy.parametric_layers();
        let last = *layers.last().expect("layers");
        let injector = layer_injector(&policy, last, 0.05, 1);
        let span = policy.weight_span(last);
        assert!(injector.fault_count() > 0);
        for fault in injector.map().faults() {
            assert!(span.contains(&fault.word));
        }
    }
}

//! Fig. 7 — drone navigation fault characterization: training under faults
//! (7a), environment sensitivity (7b), fault-location sensitivity (7c),
//! per-layer sensitivity (7d) and data-type sensitivity (7e).
//!
//! Each panel is a [`Sweep`]; the trained base policies the cells share are
//! wrapped in [`Lazy`] so a fully resumed run never trains them at all.

use std::sync::Arc;

use navft_dronesim::{DepthCamera, DroneSim, DroneWorld};
use navft_fault::{FaultKind, FaultMap, FaultSite, FaultTarget, InjectionSchedule, Injector};
use navft_nn::{
    parametric_layer_names, C3f2Config, EngineConfig, I8Network, I8Scratch, I8Tensor, Network,
    QNetwork, QScratch, QTensor,
};
use navft_qformat::QFormat;
use navft_rl::{
    evaluate_policy_vision_batched, evaluate_policy_vision_hooked_batched, trainer,
    DummyVisionVecEnv, FaultPlan, InferenceFaultMode, VisionEnvironment,
};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::drone_policy::{drone_agent, train_drone_policy};
use crate::experiments::ber_label;
use crate::hooks::{BufferFaultHook, HookPersistence, HookTarget};
use crate::sweep::{CellSpec, Lazy, Sweep, SweepResults};
use crate::{DroneParams, FigureData, Heatmap, Scale, Series};

/// The fixed-point format drone policy weights are stored in.
const DRONE_FORMAT: QFormat = QFormat::Q4_11;

/// Trains the drone policy used by the inference experiments (deterministic
/// for a given scale).
fn trained_policy(world: &DroneWorld, params: &DroneParams) -> Network {
    train_drone_policy(world, params, 0x0D0E)
}

/// A lazily trained base policy for `world`, shared by a sweep's cells.
fn lazy_policy(world: &Arc<DroneWorld>, params: &Arc<DroneParams>) -> Lazy<Network> {
    let world = Arc::clone(world);
    let params = Arc::clone(params);
    Lazy::new(move || trained_policy(&world, &params))
}

/// Samples a weight-buffer injector over a network's `num_words` weights.
fn weight_injector(
    num_words: usize,
    ber: f64,
    kind: FaultKind,
    format: QFormat,
    seed: u64,
) -> Injector {
    let mut rng = SmallRng::seed_from_u64(seed);
    Injector::sample(
        FaultTarget::new(FaultSite::WeightBuffer),
        num_words,
        format,
        ber,
        kind,
        &mut rng,
    )
}

/// Samples an injector whose faults are confined to one layer's weight span.
fn layer_injector(network: &Network, layer: usize, ber: f64, seed: u64) -> Injector {
    let span = network.weight_span(layer);
    let mut rng = SmallRng::seed_from_u64(seed);
    let local = FaultMap::sample(span.len(), DRONE_FORMAT, ber, FaultKind::BitFlip, &mut rng);
    let shifted: FaultMap = local
        .faults()
        .iter()
        .map(|f| navft_fault::BitFault { word: f.word + span.start, bit: f.bit, kind: f.kind })
        .collect();
    Injector::new(FaultTarget::layer(FaultSite::WeightBuffer, layer), DRONE_FORMAT, shifted)
}

/// The rollout batch width for drone evaluation: one row per evaluation
/// episode up to a fixed cap, derived from the parameters alone so results
/// and artifacts never depend on the engine config.
fn eval_width(params: &DroneParams) -> usize {
    params.eval_episodes.clamp(1, 64)
}

/// A batch of independent simulators over `world`, one row per evaluation
/// episode (capped by [`eval_width`]).
fn drone_venv(world: &DroneWorld, params: &DroneParams) -> DummyVisionVecEnv<DroneSim> {
    let sim = DroneSim::new(world.clone(), DepthCamera::scaled(), params.max_steps);
    DummyVisionVecEnv::from_prototype(&sim, eval_width(params))
}

/// Evaluates the mean safe flight distance of `network` in `world` under the
/// given weight fault mode. The episodes run as one vectorized rollout —
/// bit-identical to the serial evaluator at any width or engine config.
fn flight_distance(
    network: &Network,
    world: &DroneWorld,
    params: &DroneParams,
    fault: &InferenceFaultMode,
    seed: u64,
    engine: EngineConfig,
) -> f64 {
    let mut venv = drone_venv(world, params);
    let mut rng = SmallRng::seed_from_u64(seed);
    evaluate_policy_vision_batched(
        &mut venv,
        network,
        params.eval_episodes,
        params.max_steps,
        fault,
        &mut rng,
        engine,
    )
    .mean_distance
}

/// Runs one online fine-tuning session under the given weight fault and
/// reports the recent mean safe flight distance.
fn finetune_distance(
    base_policy: &Network,
    world: &DroneWorld,
    params: &DroneParams,
    kind: FaultKind,
    ber: f64,
    fraction: f64,
    seed: u64,
) -> f64 {
    let mut rng = SmallRng::seed_from_u64(seed);
    let injector = Injector::sample(
        FaultTarget::new(FaultSite::WeightBuffer),
        base_policy.weight_count(),
        DRONE_FORMAT,
        ber,
        kind,
        &mut rng,
    );
    let episode = ((fraction * params.finetune_episodes as f64) as usize)
        .min(params.finetune_episodes.saturating_sub(1));
    let schedule = if kind.is_permanent() {
        InjectionSchedule::from_start()
    } else {
        InjectionSchedule::at_episode(episode)
    };
    let plan = FaultPlan::new(injector, schedule);
    let mut agent = drone_agent(base_policy.clone(), params.finetune_episodes / 2);
    let mut sim = DroneSim::new(world.clone(), DepthCamera::scaled(), params.max_steps);
    let trace = trainer::train_dqn_vision(
        &mut sim,
        &mut agent,
        trainer::TrainingConfig::new(params.finetune_episodes, params.max_steps),
        &plan,
        &mut rng,
        trainer::no_mitigation(),
    );
    trace.recent_mean_distance((params.finetune_episodes / 4).max(1))
}

const FINETUNE_FRACTIONS: [f64; 3] = [0.0, 0.5, 0.9];

/// Fig. 7a as a declarative sweep: fine-tuning under transient faults
/// (BER × injection point), permanent faults and the fault-free baseline.
///
/// Fine-tuning is the most expensive experiment, so repetitions are capped.
pub fn training_faults_sweep(scale: Scale) -> Sweep {
    let params = Arc::new(scale.drone());
    let world = Arc::new(DroneWorld::indoor_long());
    let policy = lazy_policy(&world, &params);
    let reps = params.repetitions.min(3);
    let bers = params.bit_error_rates.clone();
    let representative_ber = bers[bers.len() / 2];

    let mut sweep = Sweep::new("fig7a", scale);
    for &ber in &bers {
        for &fraction in &FINETUNE_FRACTIONS {
            let spec = CellSpec::new(format!("transient/ber={ber}/at={fraction}"), reps)
                .with_label("figure", "fig7a-transient")
                .with_label("ber", ber.to_string())
                .with_label("injection", fraction.to_string());
            let (policy, world, params) = (policy.clone(), Arc::clone(&world), Arc::clone(&params));
            sweep.cell(spec, move |seed, _rep, _cfg| {
                finetune_distance(
                    policy.get(),
                    &world,
                    &params,
                    FaultKind::BitFlip,
                    ber,
                    fraction,
                    seed,
                )
            });
        }
    }
    for kind in [FaultKind::StuckAt0, FaultKind::StuckAt1] {
        let spec = CellSpec::new(format!("permanent/{kind}"), reps)
            .with_label("figure", "fig7a-permanent")
            .with_label("fault", kind.to_string())
            .with_label("ber", representative_ber.to_string());
        let (policy, world, params) = (policy.clone(), Arc::clone(&world), Arc::clone(&params));
        sweep.cell(spec, move |seed, _rep, _cfg| {
            finetune_distance(policy.get(), &world, &params, kind, representative_ber, 0.0, seed)
        });
    }
    {
        let spec = CellSpec::new("clean", reps).with_label("figure", "fig7a-permanent");
        let (policy, world, params) = (policy.clone(), Arc::clone(&world), Arc::clone(&params));
        sweep.cell(spec, move |seed, _rep, _cfg| {
            finetune_distance(policy.get(), &world, &params, FaultKind::BitFlip, 0.0, 0.0, seed)
        });
    }
    sweep.fold(move |results| {
        let rows = bers
            .iter()
            .map(|&ber| {
                FINETUNE_FRACTIONS
                    .iter()
                    .map(|&fraction| results.mean(&format!("transient/ber={ber}/at={fraction}")))
                    .collect()
            })
            .collect();
        let transient = FigureData::heatmap(
            "fig7a-transient",
            "drone online fine-tuning under transient weight bit flips",
            "mean safe flight distance (m) vs (BER, fault-injection point)",
            Heatmap::new(
                bers.iter().map(|&b| ber_label(b)).collect(),
                FINETUNE_FRACTIONS.iter().map(|f| format!("{:.0}%", f * 100.0)).collect(),
                rows,
            ),
        );
        let mut series = Vec::new();
        for kind in [FaultKind::StuckAt0, FaultKind::StuckAt1] {
            series.push(Series::new(
                kind.to_string(),
                vec![(representative_ber, results.mean(&format!("permanent/{kind}")))],
            ));
        }
        series.push(Series::new("fault-free", vec![(0.0, results.mean("clean"))]));
        let permanent = FigureData::lines(
            "fig7a-permanent",
            "drone online fine-tuning under permanent faults",
            "mean safe flight distance (m) at the marked BER",
            series,
        );
        vec![transient, permanent]
    });
    sweep
}

/// Fig. 7a: online fine-tuning (the transfer-learning stage) under transient
/// faults injected at different points, plus permanent stuck-at faults, with
/// the quality of the resulting flights as the metric.
pub fn drone_training_faults(scale: Scale) -> Vec<FigureData> {
    training_faults_sweep(scale).collect(scale.threads())
}

/// Fig. 7b as a declarative sweep: transient weight faults evaluated in both
/// indoor environments (one lazily trained policy per environment).
pub fn environment_sweep(scale: Scale) -> Sweep {
    let params = Arc::new(scale.drone());
    let worlds = [Arc::new(DroneWorld::indoor_long()), Arc::new(DroneWorld::indoor_vanleer())];
    let mut sweep = Sweep::new("fig7b", scale);
    for world in &worlds {
        let policy = lazy_policy(world, &params);
        for &ber in &params.bit_error_rates {
            let spec = CellSpec::new(format!("{}/ber={ber}", world.name()), params.repetitions)
                .with_label("environment", world.name())
                .with_label("ber", ber.to_string());
            let (policy, world, params) = (policy.clone(), Arc::clone(world), Arc::clone(&params));
            sweep.cell(spec, move |seed, _rep, cfg| {
                let policy = policy.get();
                let injector = weight_injector(
                    policy.weight_count(),
                    ber,
                    FaultKind::BitFlip,
                    DRONE_FORMAT,
                    seed,
                );
                flight_distance(
                    policy,
                    &world,
                    &params,
                    &InferenceFaultMode::TransientWholeEpisode(injector),
                    seed ^ 0xF11,
                    cfg,
                )
            });
        }
    }
    let names: Vec<String> = worlds.iter().map(|w| w.name().to_string()).collect();
    sweep.fold(move |results| {
        let series = names
            .iter()
            .map(|name| {
                let points = params
                    .bit_error_rates
                    .iter()
                    .map(|&ber| (ber, results.mean(&format!("{name}/ber={ber}"))))
                    .collect();
                Series::new(name.clone(), points)
            })
            .collect();
        vec![FigureData::lines(
            "fig7b",
            "drone inference under weight bit flips in two environments",
            "mean safe flight distance (m) vs BER",
            series,
        )]
    });
    sweep
}

/// Fig. 7b: transient weight faults evaluated in both indoor environments.
pub fn drone_environment_sensitivity(scale: Scale) -> Vec<FigureData> {
    environment_sweep(scale).collect(scale.threads())
}

/// The fault locations swept by Fig. 7c.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Location {
    Input,
    Weights,
    ActivationsTransient,
    ActivationsPermanent,
}

impl Location {
    const ALL: [Location; 4] = [
        Location::Input,
        Location::Weights,
        Location::ActivationsTransient,
        Location::ActivationsPermanent,
    ];

    fn label(&self) -> &'static str {
        match self {
            Location::Input => "input buffer",
            Location::Weights => "weights",
            Location::ActivationsTransient => "activations (transient)",
            Location::ActivationsPermanent => "activations (permanent)",
        }
    }
}

/// Evaluates flight distance with a buffer-fault hook attached.
#[allow(clippy::too_many_arguments)]
fn hooked_distance(
    policy: &Network,
    world: &DroneWorld,
    params: &DroneParams,
    target: HookTarget,
    persistence: HookPersistence,
    ber: f64,
    seed: u64,
    engine: EngineConfig,
) -> f64 {
    let mut venv = drone_venv(world, params);
    let mut rng = SmallRng::seed_from_u64(seed);
    evaluate_policy_vision_hooked_batched(
        &mut venv,
        policy,
        params.eval_episodes,
        params.max_steps,
        &InferenceFaultMode::None,
        &mut rng,
        |episode| {
            BufferFaultHook::new(
                target,
                persistence,
                ber,
                FaultKind::BitFlip,
                DRONE_FORMAT,
                seed ^ (episode as u64) << 16,
            )
        },
        engine,
    )
    .mean_distance
}

/// Fig. 7c as a declarative sweep: faults in the input buffer, the weight
/// buffer, and the activation buffers (transient and permanent).
pub fn location_sweep(scale: Scale) -> Sweep {
    let params = Arc::new(scale.drone());
    let world = Arc::new(DroneWorld::indoor_long());
    let policy = lazy_policy(&world, &params);
    let mut sweep = Sweep::new("fig7c", scale);
    for location in Location::ALL {
        for &ber in &params.bit_error_rates {
            let spec = CellSpec::new(format!("{}/ber={ber}", location.label()), params.repetitions)
                .with_label("location", location.label())
                .with_label("ber", ber.to_string());
            let (policy, world, params) = (policy.clone(), Arc::clone(&world), Arc::clone(&params));
            sweep.cell(spec, move |seed, _rep, cfg| {
                let policy = policy.get();
                match location {
                    Location::Input => hooked_distance(
                        policy,
                        &world,
                        &params,
                        HookTarget::Input,
                        HookPersistence::Transient,
                        ber,
                        seed,
                        cfg,
                    ),
                    Location::Weights => {
                        let injector = weight_injector(
                            policy.weight_count(),
                            ber,
                            FaultKind::BitFlip,
                            DRONE_FORMAT,
                            seed,
                        );
                        flight_distance(
                            policy,
                            &world,
                            &params,
                            &InferenceFaultMode::TransientWholeEpisode(injector),
                            seed ^ 0xAC,
                            cfg,
                        )
                    }
                    Location::ActivationsTransient => hooked_distance(
                        policy,
                        &world,
                        &params,
                        HookTarget::Activations,
                        HookPersistence::Transient,
                        ber,
                        seed,
                        cfg,
                    ),
                    Location::ActivationsPermanent => hooked_distance(
                        policy,
                        &world,
                        &params,
                        HookTarget::Activations,
                        HookPersistence::Permanent,
                        ber,
                        seed,
                        cfg,
                    ),
                }
            });
        }
    }
    sweep.fold(move |results| {
        let series = Location::ALL
            .iter()
            .map(|location| {
                let points = params
                    .bit_error_rates
                    .iter()
                    .map(|&ber| (ber, results.mean(&format!("{}/ber={ber}", location.label()))))
                    .collect();
                Series::new(location.label(), points)
            })
            .collect();
        vec![FigureData::lines(
            "fig7c",
            "drone inference sensitivity by fault location",
            "mean safe flight distance (m) vs BER",
            series,
        )]
    });
    sweep
}

/// Fig. 7c: fault-location sensitivity — faults in the input buffer, the
/// weight buffer, and the activation buffers (transient and permanent).
pub fn drone_fault_location_sensitivity(scale: Scale) -> Vec<FigureData> {
    location_sweep(scale).collect(scale.threads())
}

/// The parametric layer names/indices of the drone policy topology. Uses an
/// untrained probe network: the topology is fixed by [`C3f2Config::scaled`],
/// so cells can be declared without training the policy.
fn drone_layer_index() -> Vec<(String, usize)> {
    let probe = C3f2Config::scaled().build(&mut SmallRng::seed_from_u64(0));
    parametric_layer_names(&probe)
}

/// Fig. 7d as a declarative sweep: bit flips confined to each layer's
/// weights in turn.
pub fn layer_sweep(scale: Scale) -> Sweep {
    let params = Arc::new(scale.drone());
    let world = Arc::new(DroneWorld::indoor_long());
    let policy = lazy_policy(&world, &params);
    let layers = drone_layer_index();
    let mut sweep = Sweep::new("fig7d", scale);
    for (name, layer) in &layers {
        for &ber in &params.bit_error_rates {
            let layer = *layer;
            let spec = CellSpec::new(format!("{name}/ber={ber}"), params.repetitions)
                .with_label("layer", name.clone())
                .with_label("ber", ber.to_string());
            let (policy, world, params) = (policy.clone(), Arc::clone(&world), Arc::clone(&params));
            sweep.cell(spec, move |seed, _rep, cfg| {
                let policy = policy.get();
                let injector = layer_injector(policy, layer, ber, seed);
                flight_distance(
                    policy,
                    &world,
                    &params,
                    &InferenceFaultMode::TransientWholeEpisode(injector),
                    seed ^ 0x7D,
                    cfg,
                )
            });
        }
    }
    sweep.fold(move |results| {
        let series = layers
            .iter()
            .map(|(name, _)| {
                let points = params
                    .bit_error_rates
                    .iter()
                    .map(|&ber| (ber, results.mean(&format!("{name}/ber={ber}"))))
                    .collect();
                Series::new(name.clone(), points)
            })
            .collect();
        vec![FigureData::lines(
            "fig7d",
            "drone inference sensitivity by faulted layer",
            "mean safe flight distance (m) vs BER (bit flips confined to one layer's weights)",
            series,
        )]
    });
    sweep
}

/// Fig. 7d: per-layer sensitivity — bit flips confined to each layer's
/// weights in turn.
pub fn drone_layer_sensitivity(scale: Scale) -> Vec<FigureData> {
    layer_sweep(scale).collect(scale.threads())
}

/// The data types swept by Fig. 7e.
const FIG7E_FORMATS: [QFormat; 3] = [QFormat::Q4_11, QFormat::Q7_8, QFormat::Q10_5];

/// Fig. 7e as a declarative sweep: the policy quantized to Q(1,4,11),
/// Q(1,7,8) and Q(1,10,5), each exposed to weight bit flips.
pub fn data_type_sweep(scale: Scale) -> Sweep {
    let mut sweep = Sweep::new("fig7e", scale);
    add_data_type_cells(&mut sweep, scale, &FIG7E_FORMATS, "fig7e");
    sweep.fold(move |results| data_type_figures(results, scale, &FIG7E_FORMATS, "fig7e"));
    sweep
}

/// Fig. 7e: data-type sensitivity — the policy quantized to Q(1,4,11),
/// Q(1,7,8) and Q(1,10,5), each exposed to weight bit flips.
pub fn drone_data_type_sensitivity(scale: Scale) -> Vec<FigureData> {
    data_type_sweep(scale).collect(scale.threads())
}

/// Mean safe flight distance of a natively quantized policy under the given
/// weight fault mode: the whole evaluation runs on raw Q-format words.
fn flight_distance_q(
    network: &QNetwork,
    world: &DroneWorld,
    params: &DroneParams,
    fault: &InferenceFaultMode,
    seed: u64,
    engine: EngineConfig,
) -> f64 {
    let mut venv = drone_venv(world, params);
    let mut rng = SmallRng::seed_from_u64(seed);
    // The generic evaluator instantiated for raw words: the whole evaluation
    // runs natively in the policy's Q-format, one batched sweep per step.
    evaluate_policy_vision_batched(
        &mut venv,
        network,
        params.eval_episodes,
        params.max_steps,
        fault,
        &mut rng,
        engine,
    )
    .mean_distance
}

/// The raw-bit layout i8 affine bytes are reported under (8 stored bits; the
/// binary point is meaningless for affine words, only the width matters).
const I8_FORMAT: QFormat = QFormat::Q3_4;

/// Mean safe flight distance of an `i8` affine policy under the given weight
/// fault mode: the whole evaluation runs on stored bytes through the same
/// generic evaluator as the other backends.
fn flight_distance_i8(
    network: &I8Network,
    world: &DroneWorld,
    params: &DroneParams,
    fault: &InferenceFaultMode,
    seed: u64,
    engine: EngineConfig,
) -> f64 {
    let mut venv = drone_venv(world, params);
    let mut rng = SmallRng::seed_from_u64(seed);
    evaluate_policy_vision_batched(
        &mut venv,
        network,
        params.eval_episodes,
        params.max_steps,
        fault,
        &mut rng,
        engine,
    )
    .mean_distance
}

/// Declares the data-type sweep's cells under `prefix` (also used by the
/// extended ablation).
///
/// Each format executes *natively*: the policy is compiled into a
/// [`QNetwork`] whose weights, inputs and activations are live raw words in
/// that format, bit flips strike those words in place, and the forward pass
/// is integer arithmetic end to end — no `f32` simulation. The `i8`
/// per-tensor affine backend rides along as one more data-type column: the
/// policy compresses to one byte per parameter and bit flips strike the
/// stored bytes. Alongside the flight-distance cells, a single-repetition
/// cell per format reports its zero/one bit ratio over the whole fault
/// surface (weights plus calibration activations), the statistic that
/// explains the stuck-at asymmetry of Fig. 2.
pub(crate) fn add_data_type_cells(
    sweep: &mut Sweep,
    scale: Scale,
    formats: &[QFormat],
    prefix: &str,
) {
    let params = Arc::new(scale.drone());
    let world = Arc::new(DroneWorld::indoor_long());
    let base = lazy_policy(&world, &params);
    for &format in formats {
        let quantized: Lazy<QNetwork> = {
            let base = base.clone();
            Lazy::new(move || base.get().to_quantized(format))
        };
        {
            let spec = CellSpec::new(format!("{prefix}/bits/{format}"), 1)
                .with_label("figure", format!("{prefix}-bits"))
                .with_label("format", format.to_string());
            let (quantized, world, params) =
                (quantized.clone(), Arc::clone(&world), Arc::clone(&params));
            sweep.cell(spec, move |_seed, _rep, _cfg| {
                // Sweep every stored word of the quantized policy in one
                // call: its parameter words (weights and biases) plus the
                // activations of one calibration frame. The flight cells
                // fault only the weight words, but the bit-population
                // statistic describes the whole stored policy, as in Fig. 2.
                let calibration = QTensor::quantize(
                    &DroneSim::new(world.as_ref().clone(), DepthCamera::scaled(), params.max_steps)
                        .reset(),
                    format,
                );
                let stats = quantized
                    .get()
                    .bit_stats(std::slice::from_ref(&calibration), &mut QScratch::new());
                stats.zero_to_one_ratio()
            });
        }
        for &ber in &params.bit_error_rates {
            let spec = CellSpec::new(format!("{prefix}/{format}/ber={ber}"), params.repetitions)
                .with_label("figure", prefix.to_string())
                .with_label("format", format.to_string())
                .with_label("ber", ber.to_string());
            let (quantized, world, params) =
                (quantized.clone(), Arc::clone(&world), Arc::clone(&params));
            sweep.cell(spec, move |seed, _rep, cfg| {
                let policy = quantized.get();
                let injector =
                    weight_injector(policy.weight_count(), ber, FaultKind::BitFlip, format, seed);
                flight_distance_q(
                    policy,
                    &world,
                    &params,
                    &InferenceFaultMode::TransientWholeEpisode(injector),
                    seed ^ 0x7E,
                    cfg,
                )
            });
        }
    }
    let affine: Lazy<I8Network> = {
        let base = base.clone();
        Lazy::new(move || I8Network::quantize(base.get()))
    };
    {
        let spec = CellSpec::new(format!("{prefix}/bits/i8"), 1)
            .with_label("figure", format!("{prefix}-bits"))
            .with_label("format", "i8");
        let (affine, world, params) = (affine.clone(), Arc::clone(&world), Arc::clone(&params));
        sweep.cell(spec, move |_seed, _rep, _cfg| {
            let policy = affine.get();
            let calibration = I8Tensor::quantize(
                &DroneSim::new(world.as_ref().clone(), DepthCamera::scaled(), params.max_steps)
                    .reset(),
                policy.affine(),
            );
            let stats = policy.bit_stats(std::slice::from_ref(&calibration), &mut I8Scratch::new());
            stats.zero_to_one_ratio()
        });
    }
    for &ber in &params.bit_error_rates {
        let spec = CellSpec::new(format!("{prefix}/i8/ber={ber}"), params.repetitions)
            .with_label("figure", prefix.to_string())
            .with_label("format", "i8")
            .with_label("ber", ber.to_string());
        let (affine, world, params) = (affine.clone(), Arc::clone(&world), Arc::clone(&params));
        sweep.cell(spec, move |seed, _rep, cfg| {
            let policy = affine.get();
            let injector =
                weight_injector(policy.weight_count(), ber, FaultKind::BitFlip, I8_FORMAT, seed);
            flight_distance_i8(
                policy,
                &world,
                &params,
                &InferenceFaultMode::TransientWholeEpisode(injector),
                seed ^ 0x7E,
                cfg,
            )
        });
    }
}

/// Folds the data-type cells declared by [`add_data_type_cells`] into the
/// flight-distance lines and bit-ratio facts figures.
pub(crate) fn data_type_figures(
    results: &SweepResults,
    scale: Scale,
    formats: &[QFormat],
    prefix: &str,
) -> Vec<FigureData> {
    let params = scale.drone();
    let mut series = Vec::new();
    let mut bit_facts = Vec::new();
    for &format in formats {
        bit_facts.push((
            format!("{format} zero/one bit ratio"),
            results.mean(&format!("{prefix}/bits/{format}")),
        ));
        let points = params
            .bit_error_rates
            .iter()
            .map(|&ber| (ber, results.mean(&format!("{prefix}/{format}/ber={ber}"))))
            .collect();
        series.push(Series::new(format.to_string(), points));
    }
    bit_facts
        .push(("i8 zero/one bit ratio".to_string(), results.mean(&format!("{prefix}/bits/i8"))));
    let i8_points = params
        .bit_error_rates
        .iter()
        .map(|&ber| (ber, results.mean(&format!("{prefix}/i8/ber={ber}"))))
        .collect();
    series.push(Series::new("i8", i8_points));
    vec![
        FigureData::lines(
            prefix,
            "drone inference sensitivity by fixed-point data type (native execution)",
            "mean safe flight distance (m) vs BER (bit flips on live weight words)",
            series,
        ),
        FigureData::facts(
            format!("{prefix}-bits"),
            "zero/one bit ratio of the quantized policy per data type",
            bit_facts,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_injector_confines_faults_to_the_span() {
        let params = Scale::Smoke.drone();
        let world = DroneWorld::indoor_long();
        let mut rng = SmallRng::seed_from_u64(0);
        let policy = navft_nn::C3f2Config::scaled().build(&mut rng);
        let _ = (&world, &params);
        let layers = policy.parametric_layers();
        let last = *layers.last().expect("layers");
        let injector = layer_injector(&policy, last, 0.05, 1);
        let span = policy.weight_span(last);
        assert!(injector.fault_count() > 0);
        for fault in injector.map().faults() {
            assert!(span.contains(&fault.word));
        }
    }

    #[test]
    fn layer_index_matches_the_paper_topology() {
        let names: Vec<String> = drone_layer_index().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["conv1", "conv2", "conv3", "fc1", "fc2"]);
    }

    #[test]
    fn sweeps_declare_cells_without_training_policies() {
        // Building every fig7 sweep must be cheap: policies are Lazy and
        // only materialize inside trials.
        let start = std::time::Instant::now();
        let sweeps = [
            training_faults_sweep(Scale::Paper),
            environment_sweep(Scale::Paper),
            location_sweep(Scale::Paper),
            layer_sweep(Scale::Paper),
            data_type_sweep(Scale::Paper),
        ];
        for sweep in &sweeps {
            assert!(!sweep.is_empty());
        }
        assert!(
            start.elapsed() < std::time::Duration::from_secs(5),
            "sweep construction must not train policies"
        );
    }
}

//! Fig. 4 — convergence analysis: how many episodes training needs to
//! re-converge after a late transient fault, and whether extra training
//! recovers policies afflicted by permanent faults.

use std::sync::Arc;

use navft_fault::{FaultKind, FaultSite, FaultTarget, InjectionSchedule, Injector};
use navft_gridworld::ObstacleDensity;
use navft_qformat::QFormat;
use navft_rl::{episodes_to_converge, trainer, FaultPlan};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::experiments::ber_label;
use crate::experiments::fig2::policy_words;
use crate::grid_policies::{train_grid_policy, PolicyKind};
use crate::sweep::{CellSpec, Sweep};
use crate::{FigureData, GridParams, Scale, Series};

const PANELS: [(PolicyKind, &str, &str); 2] =
    [(PolicyKind::Tabular, "fig4a", "fig4b"), (PolicyKind::Network, "fig4c", "fig4d")];

const EI_MULTIPLIERS: [(usize, &str); 2] = [(1, "EI=1x"), (2, "EI=2x")];

fn fault_site(kind: PolicyKind) -> FaultTarget {
    FaultTarget::new(match kind {
        PolicyKind::Tabular => FaultSite::TabularBuffer,
        PolicyKind::Network => FaultSite::WeightBuffer,
    })
}

/// Trains with a late transient fault and reports how many episodes after the
/// injection the sliding-window success rate returns above 95 % (the
/// full remaining training length if it never does).
fn recovery_episodes(kind: PolicyKind, ber: f64, params: &GridParams, seed: u64) -> f64 {
    // Train longer than the base schedule so there is room to re-converge.
    let mut extended = params.clone();
    extended.training_episodes = params.training_episodes * 2;
    let injection = (params.training_episodes as f64 * 0.9) as usize;
    let mut rng = SmallRng::seed_from_u64(seed);
    let injector = Injector::sample(
        fault_site(kind),
        policy_words(kind),
        QFormat::Q3_4,
        ber,
        FaultKind::BitFlip,
        &mut rng,
    );
    let plan = FaultPlan::new(injector, InjectionSchedule::at_episode(injection));
    let run = train_grid_policy(
        kind,
        ObstacleDensity::Middle,
        &extended,
        &plan,
        seed ^ 0x41,
        trainer::no_mitigation(),
    );
    let window = 20.min(params.training_episodes / 4).max(5);
    episodes_to_converge(&run.trace, injection, window, 0.95)
        .unwrap_or(extended.training_episodes - injection) as f64
}

/// Trains with permanent faults present from the start for `ei` episodes plus
/// one extra base-length block, and reports the final success rate (%).
fn permanent_success_after_extra_training(
    kind: PolicyKind,
    fault_kind: FaultKind,
    ber: f64,
    ei_multiplier: usize,
    params: &GridParams,
    seed: u64,
) -> f64 {
    let mut extended = params.clone();
    extended.training_episodes = params.training_episodes * (ei_multiplier + 1);
    let mut rng = SmallRng::seed_from_u64(seed);
    let injector = Injector::sample(
        fault_site(kind),
        policy_words(kind),
        QFormat::Q3_4,
        ber,
        fault_kind,
        &mut rng,
    );
    let plan = FaultPlan::new(injector, InjectionSchedule::from_start());
    let run = train_grid_policy(
        kind,
        ObstacleDensity::Middle,
        &extended,
        &plan,
        seed ^ 0x4B,
        trainer::no_mitigation(),
    );
    run.final_success_rate * 100.0
}

fn convergence_id(panel: &str, ber: f64) -> String {
    format!("{panel}/ber={ber}")
}

fn permanent_id(panel: &str, fault_kind: FaultKind, ei_label: &str, ber: f64) -> String {
    format!("{panel}/{fault_kind}/{ei_label}/ber={ber}")
}

/// Fig. 4 as a declarative sweep: re-convergence cells per BER plus
/// extra-training cells per (fault kind, EI multiplier, BER).
pub fn sweep(scale: Scale) -> Sweep {
    let params = Arc::new(scale.grid());
    // Use a trimmed repetition count: each cell trains for 2-3x the base
    // episode budget.
    let reps = (params.repetitions / 2).max(1);
    let mut sweep = Sweep::new("fig4", scale);
    for (kind, panel_conv, panel_perm) in PANELS {
        for &ber in &params.bit_error_rates {
            let spec = CellSpec::new(convergence_id(panel_conv, ber), reps)
                .with_label("figure", panel_conv)
                .with_label("ber", ber.to_string());
            let params_cell = Arc::clone(&params);
            sweep.cell(spec, move |seed, _rep, _cfg| {
                recovery_episodes(kind, ber, &params_cell, seed)
            });
            for fault_kind in [FaultKind::StuckAt0, FaultKind::StuckAt1] {
                for (ei_multiplier, ei_label) in EI_MULTIPLIERS {
                    let spec =
                        CellSpec::new(permanent_id(panel_perm, fault_kind, ei_label, ber), reps)
                            .with_label("figure", panel_perm)
                            .with_label("fault", fault_kind.to_string())
                            .with_label("ei", ei_label)
                            .with_label("ber", ber.to_string());
                    let params_cell = Arc::clone(&params);
                    sweep.cell(spec, move |seed, _rep, _cfg| {
                        permanent_success_after_extra_training(
                            kind,
                            fault_kind,
                            ber,
                            ei_multiplier,
                            &params_cell,
                            seed,
                        )
                    });
                }
            }
        }
    }
    sweep.fold(move |results| {
        let mut figures = Vec::new();
        for (kind, panel_conv, panel_perm) in PANELS {
            let points: Vec<(f64, f64)> = params
                .bit_error_rates
                .iter()
                .map(|&ber| (ber, results.mean(&convergence_id(panel_conv, ber))))
                .collect();
            figures.push(FigureData::lines(
                panel_conv,
                format!("{kind} episodes to re-converge after a late transient fault"),
                "episodes to >95% success after injection vs BER",
                vec![Series::new("transient faults", points)],
            ));

            let mut series = Vec::new();
            for fault_kind in [FaultKind::StuckAt0, FaultKind::StuckAt1] {
                for (_, ei_label) in EI_MULTIPLIERS {
                    let points: Vec<(f64, f64)> = params
                        .bit_error_rates
                        .iter()
                        .map(|&ber| {
                            (
                                ber,
                                results.mean(&permanent_id(panel_perm, fault_kind, ei_label, ber)),
                            )
                        })
                        .collect();
                    series.push(Series::new(format!("{fault_kind} ({ei_label})"), points));
                }
            }
            figures.push(FigureData::lines(
                panel_perm,
                format!("{kind} success rate after extra training under permanent faults"),
                format!(
                    "final success rate (%) vs BER (labels: {})",
                    params
                        .bit_error_rates
                        .iter()
                        .map(|&b| ber_label(b))
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
                series,
            ));
        }
        figures
    });
    sweep
}

/// Fig. 4a–4d: episodes to re-converge after a late transient fault
/// (tabular / NN), and the success rate reachable with extra training under
/// permanent faults at two fault-onset points.
pub fn convergence_analysis(scale: Scale) -> Vec<FigureData> {
    sweep(scale).collect(scale.threads())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_sites_follow_policy_kind() {
        assert_eq!(fault_site(PolicyKind::Tabular).site(), FaultSite::TabularBuffer);
        assert_eq!(fault_site(PolicyKind::Network).site(), FaultSite::WeightBuffer);
    }

    #[test]
    fn sweep_uses_the_trimmed_repetition_count() {
        let params = Scale::Smoke.grid();
        let sweep = sweep(Scale::Smoke);
        assert_eq!(sweep.len(), 2 * (params.bit_error_rates.len() * (1 + 4)));
        let reps = (params.repetitions / 2).max(1);
        assert!(sweep.cell_specs().all(|s| s.repetitions() == reps));
    }
}

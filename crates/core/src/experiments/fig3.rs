//! Fig. 3 — example cumulative-return curves during training under transient
//! and permanent faults, showing the reward collapse at the injection episode
//! and the (faster NN / slower tabular) recovery.

use navft_fault::{FaultKind, FaultSite, FaultTarget, InjectionSchedule, Injector};
use navft_gridworld::ObstacleDensity;
use navft_qformat::QFormat;
use navft_rl::{trainer, FaultPlan};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::experiments::fig2::policy_words;
use crate::grid_policies::{train_grid_policy, PolicyKind};
use crate::{FigureData, Scale, Series};

/// One fault configuration shown in Fig. 3.
struct CurveSpec {
    label: String,
    kind: FaultKind,
    ber: f64,
    injection_fraction: f64,
}

/// Fig. 3a / 3b: cumulative return per episode under four example fault
/// configurations (two transient injection times, stuck-at-0, stuck-at-1),
/// for the tabular and the NN-based policy.
pub fn cumulative_return_curves(scale: Scale) -> Vec<FigureData> {
    let params = scale.grid();
    let specs = [
        CurveSpec {
            label: "transient, BER=0.6%, early".to_string(),
            kind: FaultKind::BitFlip,
            ber: 0.006,
            injection_fraction: 0.25,
        },
        CurveSpec {
            label: "transient, BER=0.6%, late".to_string(),
            kind: FaultKind::BitFlip,
            ber: 0.006,
            injection_fraction: 0.85,
        },
        CurveSpec {
            label: "stuck-at-0, BER=0.3%".to_string(),
            kind: FaultKind::StuckAt0,
            ber: 0.003,
            injection_fraction: 0.0,
        },
        CurveSpec {
            label: "stuck-at-1, BER=0.2%".to_string(),
            kind: FaultKind::StuckAt1,
            ber: 0.002,
            injection_fraction: 0.0,
        },
    ];

    let mut figures = Vec::new();
    for (kind, id) in [(PolicyKind::Tabular, "fig3a"), (PolicyKind::Network, "fig3b")] {
        let mut series = Vec::new();
        for (i, spec) in specs.iter().enumerate() {
            let episode = ((spec.injection_fraction * params.training_episodes as f64) as usize)
                .min(params.training_episodes - 1);
            let mut rng = SmallRng::seed_from_u64(0x316 + i as u64);
            let injector = Injector::sample(
                FaultTarget::new(match kind {
                    PolicyKind::Tabular => FaultSite::TabularBuffer,
                    PolicyKind::Network => FaultSite::WeightBuffer,
                }),
                policy_words(kind),
                QFormat::Q3_4,
                spec.ber,
                spec.kind,
                &mut rng,
            );
            let schedule = if spec.kind.is_permanent() {
                InjectionSchedule::from_start()
            } else {
                InjectionSchedule::at_episode(episode)
            };
            let plan = FaultPlan::new(injector, schedule);
            let run = train_grid_policy(
                kind,
                ObstacleDensity::Middle,
                &params,
                &plan,
                0x316_5EED + i as u64,
                trainer::no_mitigation(),
            );
            series.push(Series::new(spec.label.clone(), smoothed_rewards(&run.trace.rewards, 10)));
        }
        figures.push(FigureData::lines(
            id,
            format!(
                "{} cumulative return during training under faults",
                match kind {
                    PolicyKind::Tabular => "tabular",
                    PolicyKind::Network => "NN",
                }
            ),
            "cumulative return (10-episode moving average) vs training episode",
            series,
        ));
    }
    figures
}

/// A moving average of the episode rewards, sampled every few episodes to
/// keep the series compact.
fn smoothed_rewards(rewards: &[f32], window: usize) -> Vec<(f64, f64)> {
    let stride = (rewards.len() / 100).max(1);
    (0..rewards.len())
        .step_by(stride)
        .map(|i| {
            let start = i.saturating_sub(window);
            let slice = &rewards[start..=i];
            let mean = slice.iter().map(|&r| f64::from(r)).sum::<f64>() / slice.len() as f64;
            (i as f64, mean)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoothing_preserves_length_scale_and_bounds() {
        let rewards = vec![1.0f32; 250];
        let smooth = smoothed_rewards(&rewards, 10);
        assert!(smooth.len() >= 100 && smooth.len() <= 130);
        assert!(smooth.iter().all(|&(_, y)| (y - 1.0).abs() < 1e-9));
    }
}

//! Fig. 3 — example cumulative-return curves during training under transient
//! and permanent faults, showing the reward collapse at the injection episode
//! and the (faster NN / slower tabular) recovery.

use std::sync::Arc;

use navft_fault::{FaultKind, FaultSite, FaultTarget, InjectionSchedule, Injector};
use navft_gridworld::ObstacleDensity;
use navft_qformat::QFormat;
use navft_rl::{trainer, FaultPlan};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::experiments::fig2::policy_words;
use crate::grid_policies::{train_grid_policy, PolicyKind};
use crate::sweep::{CellSpec, Sweep};
use crate::{FigureData, Scale, Series};

const PANELS: [(PolicyKind, &str); 2] =
    [(PolicyKind::Tabular, "fig3a"), (PolicyKind::Network, "fig3b")];

/// One fault configuration shown in Fig. 3.
struct CurveSpec {
    label: &'static str,
    kind: FaultKind,
    ber: f64,
    injection_fraction: f64,
}

const CURVES: [CurveSpec; 4] = [
    CurveSpec {
        label: "transient, BER=0.6%, early",
        kind: FaultKind::BitFlip,
        ber: 0.006,
        injection_fraction: 0.25,
    },
    CurveSpec {
        label: "transient, BER=0.6%, late",
        kind: FaultKind::BitFlip,
        ber: 0.006,
        injection_fraction: 0.85,
    },
    CurveSpec {
        label: "stuck-at-0, BER=0.3%",
        kind: FaultKind::StuckAt0,
        ber: 0.003,
        injection_fraction: 0.0,
    },
    CurveSpec {
        label: "stuck-at-1, BER=0.2%",
        kind: FaultKind::StuckAt1,
        ber: 0.002,
        injection_fraction: 0.0,
    },
];

/// Trains one exemplar run and returns its smoothed reward curve (the y
/// values; the x positions are a pure function of the scale).
fn curve_metrics(
    kind: PolicyKind,
    spec: &CurveSpec,
    params: &crate::GridParams,
    seed: u64,
) -> Vec<f64> {
    let episode = ((spec.injection_fraction * params.training_episodes as f64) as usize)
        .min(params.training_episodes - 1);
    let mut rng = SmallRng::seed_from_u64(seed);
    let injector = Injector::sample(
        FaultTarget::new(match kind {
            PolicyKind::Tabular => FaultSite::TabularBuffer,
            PolicyKind::Network => FaultSite::WeightBuffer,
        }),
        policy_words(kind),
        QFormat::Q3_4,
        spec.ber,
        spec.kind,
        &mut rng,
    );
    let schedule = if spec.kind.is_permanent() {
        InjectionSchedule::from_start()
    } else {
        InjectionSchedule::at_episode(episode)
    };
    let plan = FaultPlan::new(injector, schedule);
    let run = train_grid_policy(
        kind,
        ObstacleDensity::Middle,
        params,
        &plan,
        seed ^ 0x316_5EED,
        trainer::no_mitigation(),
    );
    smoothed_rewards(&run.trace.rewards, 10).into_iter().map(|(_, y)| y).collect()
}

fn cell_id(panel: &str, curve: usize) -> String {
    format!("{panel}/curve{curve}")
}

/// Fig. 3 as a declarative sweep: one single-repetition cell per exemplar
/// training run, whose metrics are the smoothed reward curve.
pub fn sweep(scale: Scale) -> Sweep {
    let params = Arc::new(scale.grid());
    let mut sweep = Sweep::new("fig3", scale);
    for (kind, panel) in PANELS {
        for (index, curve) in CURVES.iter().enumerate() {
            let spec = CellSpec::new(cell_id(panel, index), 1)
                .with_label("figure", panel)
                .with_label("curve", curve.label);
            let params = Arc::clone(&params);
            sweep.cell_metrics(spec, move |seed, _rep, _cfg| {
                curve_metrics(kind, &CURVES[index], &params, seed)
            });
        }
    }
    sweep.fold(move |results| {
        let sample_episodes = smoothing_episodes(params.training_episodes);
        let mut figures = Vec::new();
        for (kind, panel) in PANELS {
            let series = CURVES
                .iter()
                .enumerate()
                .map(|(index, curve)| {
                    let metrics = results.metrics(&cell_id(panel, index));
                    assert_eq!(
                        metrics.len(),
                        sample_episodes.len(),
                        "curve length must match the smoothing grid"
                    );
                    let points = sample_episodes
                        .iter()
                        .zip(metrics)
                        .map(|(&x, summary)| (x, summary.mean()))
                        .collect();
                    Series::new(curve.label, points)
                })
                .collect();
            figures.push(FigureData::lines(
                panel,
                format!(
                    "{} cumulative return during training under faults",
                    match kind {
                        PolicyKind::Tabular => "tabular",
                        PolicyKind::Network => "NN",
                    }
                ),
                "cumulative return (10-episode moving average) vs training episode",
                series,
            ));
        }
        figures
    });
    sweep
}

/// Fig. 3a / 3b: cumulative return per episode under four example fault
/// configurations (two transient injection times, stuck-at-0, stuck-at-1),
/// for the tabular and the NN-based policy.
pub fn cumulative_return_curves(scale: Scale) -> Vec<FigureData> {
    sweep(scale).collect(scale.threads())
}

/// The episode indices the smoothed curve samples for a training run of
/// `episodes` episodes (shared by the trial and the fold).
fn smoothing_episodes(episodes: usize) -> Vec<f64> {
    let stride = (episodes / 100).max(1);
    (0..episodes).step_by(stride).map(|i| i as f64).collect()
}

/// A moving average of the episode rewards, sampled every few episodes to
/// keep the series compact.
fn smoothed_rewards(rewards: &[f32], window: usize) -> Vec<(f64, f64)> {
    let stride = (rewards.len() / 100).max(1);
    (0..rewards.len())
        .step_by(stride)
        .map(|i| {
            let start = i.saturating_sub(window);
            let slice = &rewards[start..=i];
            let mean = slice.iter().map(|&r| f64::from(r)).sum::<f64>() / slice.len() as f64;
            (i as f64, mean)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoothing_preserves_length_scale_and_bounds() {
        let rewards = vec![1.0f32; 250];
        let smooth = smoothed_rewards(&rewards, 10);
        assert!(smooth.len() >= 100 && smooth.len() <= 130);
        assert!(smooth.iter().all(|&(_, y)| (y - 1.0).abs() < 1e-9));
    }

    #[test]
    fn smoothing_grid_matches_smoothed_sample_positions() {
        for episodes in [60, 150, 250, 1000] {
            let rewards = vec![0.5f32; episodes];
            let xs: Vec<f64> = smoothed_rewards(&rewards, 10).into_iter().map(|(x, _)| x).collect();
            assert_eq!(xs, smoothing_episodes(episodes));
        }
    }

    #[test]
    fn sweep_declares_one_cell_per_exemplar_run() {
        let sweep = sweep(Scale::Smoke);
        assert_eq!(sweep.len(), 2 * CURVES.len());
        assert!(sweep.cell_specs().all(|s| s.repetitions() == 1));
    }
}

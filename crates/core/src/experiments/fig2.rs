//! Fig. 2 — the impact of transient and permanent faults on Grid World
//! *training* (heatmaps of final success rate), plus the trained-policy value
//! histograms and bit statistics (Fig. 2b/2d) that explain the stuck-at
//! asymmetry.

use std::sync::Arc;

use navft_fault::{FaultKind, FaultSite, FaultTarget, InjectionSchedule, Injector};
use navft_gridworld::ObstacleDensity;
use navft_qformat::bitstats::{BitStats, ValueHistogram};
use navft_qformat::{QFormat, QValue};
use navft_rl::{trainer, FaultPlan};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::experiments::ber_label;
use crate::grid_policies::{train_clean_policy, train_grid_policy, PolicyKind};
use crate::sweep::{CellSpec, Sweep};
use crate::{FigureData, Heatmap, Scale, Series};

/// The two policy families and their figure panel ids.
const PANELS: [(PolicyKind, &str); 2] =
    [(PolicyKind::Tabular, "fig2a"), (PolicyKind::Network, "fig2c")];

/// The number of policy-storage words for a Grid World policy of `kind`
/// (before training, which is when campaign fault maps are sized).
pub fn policy_words(kind: PolicyKind) -> usize {
    match kind {
        PolicyKind::Tabular => 10 * 10 * 4,
        PolicyKind::Network => crate::grid_policies::grid_mlp(100, 4, 0).weight_count(),
    }
}

/// Trains a Grid World policy of `kind` under a fault of `fault_kind` at
/// `ber`, injected at `episode`, and returns the final success rate in
/// percent.
pub fn faulty_training_success(
    kind: PolicyKind,
    fault_kind: FaultKind,
    ber: f64,
    episode: usize,
    params: &crate::GridParams,
    seed: u64,
) -> f64 {
    let mut rng = SmallRng::seed_from_u64(seed);
    let words = policy_words(kind);
    let injector = Injector::sample(
        FaultTarget::new(match kind {
            PolicyKind::Tabular => FaultSite::TabularBuffer,
            PolicyKind::Network => FaultSite::WeightBuffer,
        }),
        words,
        QFormat::Q3_4,
        ber,
        fault_kind,
        &mut rng,
    );
    let schedule = if fault_kind.is_permanent() {
        InjectionSchedule::from_start()
    } else {
        InjectionSchedule::at_episode(episode)
    };
    let plan = FaultPlan::new(injector, schedule);
    let run = train_grid_policy(
        kind,
        ObstacleDensity::Middle,
        params,
        &plan,
        seed ^ 0xF162,
        trainer::no_mitigation(),
    );
    run.final_success_rate * 100.0
}

/// Cell id of a transient-heatmap cell (shared with the mirrored Fig. 8
/// grid so the two figures can never diverge on their id scheme).
pub(crate) fn transient_id(panel: &str, ber: f64, episode: usize) -> String {
    format!("{panel}/transient/ber={ber}/ep={episode}")
}

/// Cell id of a stuck-at sweep cell (shared with Fig. 8, see
/// [`transient_id`]).
pub(crate) fn stuck_id(panel: &str, fault_kind: FaultKind, ber: f64) -> String {
    format!("{panel}/{fault_kind}/ber={ber}")
}

/// Fig. 2a / 2c as a declarative sweep: transient (BER × injection episode)
/// heatmap cells plus stuck-at BER rows, for both policy families.
pub fn training_sweep(scale: Scale) -> Sweep {
    let params = Arc::new(scale.grid());
    let episodes = params.injection_episodes();
    let mut sweep = Sweep::new("fig2", scale);
    for (kind, panel) in PANELS {
        for &ber in &params.bit_error_rates {
            for &episode in &episodes {
                let spec = CellSpec::new(transient_id(panel, ber, episode), params.repetitions)
                    .with_label("figure", format!("{panel}-transient"))
                    .with_label("ber", ber.to_string())
                    .with_label("episode", episode.to_string());
                let params = Arc::clone(&params);
                sweep.cell(spec, move |seed, _rep, _cfg| {
                    faulty_training_success(kind, FaultKind::BitFlip, ber, episode, &params, seed)
                });
            }
            for fault_kind in [FaultKind::StuckAt0, FaultKind::StuckAt1] {
                let spec = CellSpec::new(stuck_id(panel, fault_kind, ber), params.repetitions)
                    .with_label("figure", format!("{panel}-{fault_kind}"))
                    .with_label("ber", ber.to_string());
                let params = Arc::clone(&params);
                sweep.cell(spec, move |seed, _rep, _cfg| {
                    faulty_training_success(kind, fault_kind, ber, 0, &params, seed)
                });
            }
        }
    }
    sweep.fold(move |results| {
        let mut figures = Vec::new();
        for (kind, panel) in PANELS {
            let rows = params
                .bit_error_rates
                .iter()
                .map(|&ber| {
                    episodes
                        .iter()
                        .map(|&episode| results.mean(&transient_id(panel, ber, episode)))
                        .collect()
                })
                .collect();
            figures.push(FigureData::heatmap(
                format!("{panel}-transient"),
                format!("{kind} training under transient bit flips"),
                "final success rate (%) vs (BER, fault-injection episode)",
                Heatmap::new(
                    params.bit_error_rates.iter().map(|&b| ber_label(b)).collect(),
                    episodes.iter().map(|e| e.to_string()).collect(),
                    rows,
                ),
            ));
            for fault_kind in [FaultKind::StuckAt0, FaultKind::StuckAt1] {
                let points = params
                    .bit_error_rates
                    .iter()
                    .map(|&ber| (ber, results.mean(&stuck_id(panel, fault_kind, ber))))
                    .collect();
                figures.push(FigureData::lines(
                    format!("{panel}-{fault_kind}"),
                    format!("{kind} training under {fault_kind} faults"),
                    "final success rate (%) vs BER",
                    vec![Series::new(fault_kind.to_string(), points)],
                ));
            }
        }
        figures
    });
    sweep
}

/// Fig. 2a / 2c: success-rate heatmaps for training under transient bit flips
/// (rows: BER, columns: injection episode) and stuck-at faults (rows: BER),
/// for both the tabular and the NN-based policy.
pub fn training_fault_heatmaps(scale: Scale) -> Vec<FigureData> {
    training_sweep(scale).collect(scale.threads())
}

/// The fixed value-histogram shape shared by the trial and the fold.
fn histogram_shape() -> ValueHistogram {
    ValueHistogram::new(-8.0, 8.0, 16)
}

const HISTOGRAM_PANELS: [(PolicyKind, &str, &str); 2] = [
    (PolicyKind::Tabular, "fig2b", "trained tabular value distribution"),
    (PolicyKind::Network, "fig2d", "trained NN weight distribution"),
];

/// Fig. 2b / 2d as a declarative sweep: one single-repetition cell per
/// panel whose metrics are the bit statistics followed by the histogram bin
/// counts.
pub fn histogram_sweep(scale: Scale) -> Sweep {
    let params = Arc::new(scale.grid());
    let mut sweep = Sweep::new("fig2hist", scale);
    for (kind, panel, _) in HISTOGRAM_PANELS {
        let spec = CellSpec::new(format!("{panel}/histogram"), 1).with_label("figure", panel);
        let params = Arc::clone(&params);
        sweep.cell_metrics(spec, move |seed, _rep, _cfg| {
            let run = train_clean_policy(kind, ObstacleDensity::Middle, &params, seed);
            let values: Vec<f32> = match kind {
                PolicyKind::Tabular => {
                    run.tabular.as_ref().expect("tabular run").table.values().to_vec()
                }
                PolicyKind::Network => {
                    run.network.as_ref().expect("network run").network().flat_weights()
                }
            };
            let words: Vec<QValue> =
                values.iter().map(|&v| QValue::quantize(v, QFormat::Q3_4)).collect();
            let stats = BitStats::from_values(&words);
            let mut histogram = histogram_shape();
            histogram.record_all(values.iter().copied());
            let mut metrics = vec![
                stats.zero_fraction() * 100.0,
                stats.one_fraction() * 100.0,
                stats.zero_to_one_ratio(),
                f64::from(histogram.max().unwrap_or(0.0)),
                f64::from(histogram.min().unwrap_or(0.0)),
            ];
            metrics.extend(histogram.counts().iter().map(|&c| c as f64));
            metrics
        });
    }
    sweep.fold(|results| {
        let mut figures = Vec::new();
        for (_, panel, title) in HISTOGRAM_PANELS {
            let metrics = results.metrics(&format!("{panel}/histogram"));
            let histogram = histogram_shape();
            let mut facts = vec![
                ("'0' bits (%)".to_string(), metrics[0].mean()),
                ("'1' bits (%)".to_string(), metrics[1].mean()),
                ("0-to-1 bit ratio".to_string(), metrics[2].mean()),
                ("max value".to_string(), metrics[3].mean()),
                ("min value".to_string(), metrics[4].mean()),
            ];
            for (bin, summary) in metrics[5..].iter().enumerate() {
                facts.push((
                    format!("histogram bin centred at {:+.1}", histogram.bin_center(bin)),
                    summary.mean(),
                ));
            }
            figures.push(FigureData::facts(panel, title, facts));
        }
        figures
    });
    sweep
}

/// Fig. 2b / 2d: histograms and bit statistics of the trained tabular values
/// and NN weights.
pub fn value_histograms(scale: Scale) -> Vec<FigureData> {
    histogram_sweep(scale).collect(scale.threads())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_word_counts_are_plausible() {
        assert_eq!(policy_words(PolicyKind::Tabular), 400);
        assert!(policy_words(PolicyKind::Network) > 3000);
    }

    #[test]
    fn training_sweep_covers_transient_and_stuck_at_cells() {
        let params = Scale::Smoke.grid();
        let sweep = training_sweep(Scale::Smoke);
        let expected = 2
            * (params.bit_error_rates.len() * params.injection_points.len()
                + params.bit_error_rates.len() * 2);
        assert_eq!(sweep.len(), expected);
    }
}

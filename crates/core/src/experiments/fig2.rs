//! Fig. 2 — the impact of transient and permanent faults on Grid World
//! *training* (heatmaps of final success rate), plus the trained-policy value
//! histograms and bit statistics (Fig. 2b/2d) that explain the stuck-at
//! asymmetry.

use navft_fault::{FaultKind, FaultSite, FaultTarget, InjectionSchedule, Injector};
use navft_gridworld::ObstacleDensity;
use navft_qformat::bitstats::{BitStats, ValueHistogram};
use navft_qformat::{QFormat, QValue};
use navft_rl::{trainer, FaultPlan};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::experiments::{ber_label, campaign};
use crate::grid_policies::{train_clean_policy, train_grid_policy, PolicyKind};
use crate::{FigureData, Heatmap, Scale, Series};

/// The number of policy-storage words for a Grid World policy of `kind`
/// (before training, which is when campaign fault maps are sized).
pub fn policy_words(kind: PolicyKind) -> usize {
    match kind {
        PolicyKind::Tabular => 10 * 10 * 4,
        PolicyKind::Network => crate::grid_policies::grid_mlp(100, 4, 0).weight_count(),
    }
}

/// Trains a Grid World policy of `kind` under a fault of `fault_kind` at
/// `ber`, injected at `episode`, and returns the final success rate in
/// percent.
pub fn faulty_training_success(
    kind: PolicyKind,
    fault_kind: FaultKind,
    ber: f64,
    episode: usize,
    params: &crate::GridParams,
    seed: u64,
) -> f64 {
    let mut rng = SmallRng::seed_from_u64(seed);
    let words = policy_words(kind);
    let injector = Injector::sample(
        FaultTarget::new(match kind {
            PolicyKind::Tabular => FaultSite::TabularBuffer,
            PolicyKind::Network => FaultSite::WeightBuffer,
        }),
        words,
        QFormat::Q3_4,
        ber,
        fault_kind,
        &mut rng,
    );
    let schedule = if fault_kind.is_permanent() {
        InjectionSchedule::from_start()
    } else {
        InjectionSchedule::at_episode(episode)
    };
    let plan = FaultPlan::new(injector, schedule);
    let run = train_grid_policy(
        kind,
        ObstacleDensity::Middle,
        params,
        &plan,
        seed ^ 0xF162,
        trainer::no_mitigation(),
    );
    run.final_success_rate * 100.0
}

/// Fig. 2a / 2c: success-rate heatmaps for training under transient bit flips
/// (rows: BER, columns: injection episode) and stuck-at faults (rows: BER),
/// for both the tabular and the NN-based policy.
pub fn training_fault_heatmaps(scale: Scale) -> Vec<FigureData> {
    let params = scale.grid();
    let mut figures = Vec::new();
    for (kind, id) in [(PolicyKind::Tabular, "fig2a"), (PolicyKind::Network, "fig2c")] {
        // Transient heatmap.
        let episodes = params.injection_episodes();
        let mut rows = Vec::new();
        for &ber in &params.bit_error_rates {
            let mut row = Vec::new();
            for &episode in &episodes {
                let summary =
                    campaign(scale, params.repetitions, hash_cell(ber, episode), |seed, _| {
                        faulty_training_success(
                            kind,
                            FaultKind::BitFlip,
                            ber,
                            episode,
                            &params,
                            seed,
                        )
                    });
                row.push(summary.mean());
            }
            rows.push(row);
        }
        figures.push(FigureData::heatmap(
            format!("{id}-transient"),
            format!("{kind} training under transient bit flips"),
            "final success rate (%) vs (BER, fault-injection episode)",
            Heatmap::new(
                params.bit_error_rates.iter().map(|&b| ber_label(b)).collect(),
                episodes.iter().map(|e| e.to_string()).collect(),
                rows,
            ),
        ));

        // Stuck-at rows (permanent faults are active from the start).
        for fault_kind in [FaultKind::StuckAt0, FaultKind::StuckAt1] {
            let points: Vec<(f64, f64)> = params
                .bit_error_rates
                .iter()
                .map(|&ber| {
                    let summary =
                        campaign(scale, params.repetitions, hash_cell(ber, 777), |seed, _| {
                            faulty_training_success(kind, fault_kind, ber, 0, &params, seed)
                        });
                    (ber, summary.mean())
                })
                .collect();
            figures.push(FigureData::lines(
                format!("{id}-{fault_kind}"),
                format!("{kind} training under {fault_kind} faults"),
                "final success rate (%) vs BER",
                vec![Series::new(fault_kind.to_string(), points)],
            ));
        }
    }
    figures
}

/// Fig. 2b / 2d: histograms and bit statistics of the trained tabular values
/// and NN weights.
pub fn value_histograms(scale: Scale) -> Vec<FigureData> {
    let params = scale.grid();
    let mut figures = Vec::new();
    for (kind, id, title) in [
        (PolicyKind::Tabular, "fig2b", "trained tabular value distribution"),
        (PolicyKind::Network, "fig2d", "trained NN weight distribution"),
    ] {
        let run = train_clean_policy(kind, ObstacleDensity::Middle, &params, 0x2B);
        let values: Vec<f32> = match kind {
            PolicyKind::Tabular => {
                run.tabular.as_ref().expect("tabular run").table.values().to_vec()
            }
            PolicyKind::Network => {
                run.network.as_ref().expect("network run").network().flat_weights()
            }
        };
        let words: Vec<QValue> =
            values.iter().map(|&v| QValue::quantize(v, QFormat::Q3_4)).collect();
        let stats = BitStats::from_values(&words);
        let mut histogram = ValueHistogram::new(-8.0, 8.0, 16);
        histogram.record_all(values.iter().copied());

        let mut facts = vec![
            ("'0' bits (%)".to_string(), stats.zero_fraction() * 100.0),
            ("'1' bits (%)".to_string(), stats.one_fraction() * 100.0),
            ("0-to-1 bit ratio".to_string(), stats.zero_to_one_ratio()),
            ("max value".to_string(), f64::from(histogram.max().unwrap_or(0.0))),
            ("min value".to_string(), f64::from(histogram.min().unwrap_or(0.0))),
        ];
        for (bin, &count) in histogram.counts().iter().enumerate() {
            facts.push((
                format!("histogram bin centred at {:+.1}", histogram.bin_center(bin)),
                count as f64,
            ));
        }
        figures.push(FigureData::facts(id, title, facts));
    }
    figures
}

fn hash_cell(ber: f64, episode: usize) -> u64 {
    (ber * 1e6) as u64 ^ ((episode as u64) << 32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_word_counts_are_plausible() {
        assert_eq!(policy_words(PolicyKind::Tabular), 400);
        assert!(policy_words(PolicyKind::Network) > 3000);
    }

    #[test]
    fn cell_hashes_differ_across_cells() {
        assert_ne!(hash_cell(0.001, 0), hash_cell(0.002, 0));
        assert_ne!(hash_cell(0.001, 0), hash_cell(0.001, 500));
    }
}

//! Fig. 9 — the behaviour of the exploration-rate mitigation: how far the
//! exploration ratio is raised, how long the agent takes to return to steady
//! exploitation, and the trade-off between adjusted exploration and recovery
//! speed.

use navft_fault::{FaultKind, FaultSite, FaultTarget, InjectionSchedule, Injector};
use navft_gridworld::ObstacleDensity;
use navft_mitigation::ExplorationAdjuster;
use navft_qformat::QFormat;
use navft_rl::{episodes_to_converge, FaultPlan};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::experiments::campaign;
use crate::experiments::fig2::policy_words;
use crate::grid_policies::{train_grid_policy, PolicyKind};
use crate::{FigureData, GridParams, Scale, Series};

/// The observables of one mitigated training run.
#[derive(Debug, Clone, Copy)]
struct MitigationOutcome {
    /// Highest exploration ratio reached after the fault struck (%).
    peak_exploration: f64,
    /// Episodes from the fault until ε returned to its floor (steady
    /// exploitation), or the remaining training length if it never did.
    episodes_to_steady: f64,
    /// Episodes from the fault until the success rate recovered above 95 %.
    recovery_episodes: f64,
}

fn run_mitigated(
    kind: PolicyKind,
    fault_kind: FaultKind,
    ber: f64,
    params: &GridParams,
    seed: u64,
) -> MitigationOutcome {
    let mut extended = params.clone();
    extended.training_episodes = params.training_episodes * 2;
    let injection = if fault_kind.is_permanent() {
        0
    } else {
        (params.training_episodes as f64 * 0.9) as usize
    };
    let mut rng = SmallRng::seed_from_u64(seed);
    let injector = Injector::sample(
        FaultTarget::new(match kind {
            PolicyKind::Tabular => FaultSite::TabularBuffer,
            PolicyKind::Network => FaultSite::WeightBuffer,
        }),
        policy_words(kind),
        QFormat::Q3_4,
        ber,
        fault_kind,
        &mut rng,
    );
    let schedule = if fault_kind.is_permanent() {
        InjectionSchedule::from_start()
    } else {
        InjectionSchedule::at_episode(injection)
    };
    let plan = FaultPlan::new(injector, schedule);
    let mut adjuster = match kind {
        PolicyKind::Tabular => ExplorationAdjuster::for_tabular(),
        PolicyKind::Network => ExplorationAdjuster::for_network(),
    };
    let run = train_grid_policy(
        kind,
        ObstacleDensity::Middle,
        &extended,
        &plan,
        seed ^ 0xF19,
        |episode, trace, epsilon| adjuster.observe(episode, trace, epsilon),
    );

    let post_fault =
        &run.trace.epsilons[injection.min(run.trace.epsilons.len().saturating_sub(1))..];
    let peak_exploration = post_fault.iter().copied().fold(0.0f64, f64::max) * 100.0;
    let floor = 0.05 + 1e-9;
    let episodes_to_steady = post_fault
        .iter()
        .position(|&e| e <= floor)
        .map(|p| {
            // Find the first return to the floor *after* any boost.
            post_fault[p..].iter().position(|&e| e <= floor).map(|q| p + q).unwrap_or(p)
        })
        .unwrap_or(post_fault.len()) as f64;
    let window = 20.min(params.training_episodes / 4).max(5);
    let recovery_episodes = episodes_to_converge(&run.trace, injection, window, 0.95)
        .unwrap_or(extended.training_episodes - injection) as f64;
    MitigationOutcome { peak_exploration, episodes_to_steady, recovery_episodes }
}

/// Fig. 9a/9b/9c: exploration ratio and episodes-to-steady-exploitation vs
/// BER per fault kind (tabular and NN), plus the recovery-time vs
/// exploration-ratio trade-off.
pub fn exploration_adjustment_analysis(scale: Scale) -> Vec<FigureData> {
    let params = scale.grid();
    let reps = (params.repetitions / 2).max(1);
    let mut figures = Vec::new();
    let mut tradeoff_series = Vec::new();

    for (kind, id) in [(PolicyKind::Tabular, "fig9a"), (PolicyKind::Network, "fig9b")] {
        let mut ratio_series = Vec::new();
        let mut steady_series = Vec::new();
        let mut tradeoff_points = Vec::new();
        for fault_kind in [FaultKind::BitFlip, FaultKind::StuckAt0, FaultKind::StuckAt1] {
            let mut ratio_points = Vec::new();
            let mut steady_points = Vec::new();
            for &ber in &params.bit_error_rates {
                let peak = campaign(scale, reps, (ber * 1e6) as u64 ^ 0x91, |seed, _| {
                    run_mitigated(kind, fault_kind, ber, &params, seed).peak_exploration
                });
                let steady = campaign(scale, reps, (ber * 1e6) as u64 ^ 0x92, |seed, _| {
                    run_mitigated(kind, fault_kind, ber, &params, seed).episodes_to_steady
                });
                ratio_points.push((ber, peak.mean()));
                steady_points.push((ber, steady.mean()));
                if fault_kind == FaultKind::BitFlip {
                    let recovery = campaign(scale, reps, (ber * 1e6) as u64 ^ 0x93, |seed, _| {
                        run_mitigated(kind, fault_kind, ber, &params, seed).recovery_episodes
                    });
                    tradeoff_points.push((peak.mean(), recovery.mean()));
                }
            }
            ratio_series.push(Series::new(format!("{fault_kind}"), ratio_points));
            steady_series.push(Series::new(format!("{fault_kind}"), steady_points));
        }
        figures.push(FigureData::lines(
            format!("{id}-exploration-ratio"),
            format!("{kind} adjusted exploration ratio vs BER"),
            "peak exploration ratio after the fault (%) vs BER",
            ratio_series,
        ));
        figures.push(FigureData::lines(
            format!("{id}-episodes-to-steady"),
            format!("{kind} episodes to steady exploitation vs BER"),
            "episodes from fault to steady exploitation vs BER",
            steady_series,
        ));
        tradeoff_points.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        tradeoff_series.push(Series::new(kind.to_string(), tradeoff_points));
    }

    figures.push(FigureData::lines(
        "fig9c",
        "recovery time vs adjusted exploration ratio",
        "episodes to recover >95% success vs peak exploration ratio (%)",
        tradeoff_series,
    ));
    figures
}

//! Fig. 9 — the behaviour of the exploration-rate mitigation: how far the
//! exploration ratio is raised, how long the agent takes to return to steady
//! exploitation, and the trade-off between adjusted exploration and recovery
//! speed.
//!
//! One mitigated training run yields all three observables, so each cell's
//! trial returns them as three metrics of a single run — the sweep rewrite
//! cut the per-cell training cost to a third of the old driver, which ran
//! the same configuration once per observable.

use std::sync::Arc;

use navft_fault::{FaultKind, FaultSite, FaultTarget, InjectionSchedule, Injector};
use navft_gridworld::ObstacleDensity;
use navft_mitigation::ExplorationAdjuster;
use navft_qformat::QFormat;
use navft_rl::{episodes_to_converge, FaultPlan};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::experiments::fig2::policy_words;
use crate::grid_policies::{train_grid_policy, PolicyKind};
use crate::sweep::{CellSpec, Sweep};
use crate::{FigureData, GridParams, Scale, Series};

const PANELS: [(PolicyKind, &str); 2] =
    [(PolicyKind::Tabular, "fig9a"), (PolicyKind::Network, "fig9b")];

const FAULT_KINDS: [FaultKind; 3] = [FaultKind::BitFlip, FaultKind::StuckAt0, FaultKind::StuckAt1];

/// Metric indices within a cell's trial result.
const PEAK_EXPLORATION: usize = 0;
const EPISODES_TO_STEADY: usize = 1;
const RECOVERY_EPISODES: usize = 2;

/// Runs one mitigated training and returns `[peak exploration ratio (%),
/// episodes to steady exploitation, episodes to recover >95% success]`.
fn run_mitigated(
    kind: PolicyKind,
    fault_kind: FaultKind,
    ber: f64,
    params: &GridParams,
    seed: u64,
) -> Vec<f64> {
    let mut extended = params.clone();
    extended.training_episodes = params.training_episodes * 2;
    let injection = if fault_kind.is_permanent() {
        0
    } else {
        (params.training_episodes as f64 * 0.9) as usize
    };
    let mut rng = SmallRng::seed_from_u64(seed);
    let injector = Injector::sample(
        FaultTarget::new(match kind {
            PolicyKind::Tabular => FaultSite::TabularBuffer,
            PolicyKind::Network => FaultSite::WeightBuffer,
        }),
        policy_words(kind),
        QFormat::Q3_4,
        ber,
        fault_kind,
        &mut rng,
    );
    let schedule = if fault_kind.is_permanent() {
        InjectionSchedule::from_start()
    } else {
        InjectionSchedule::at_episode(injection)
    };
    let plan = FaultPlan::new(injector, schedule);
    let mut adjuster = match kind {
        PolicyKind::Tabular => ExplorationAdjuster::for_tabular(),
        PolicyKind::Network => ExplorationAdjuster::for_network(),
    };
    let run = train_grid_policy(
        kind,
        ObstacleDensity::Middle,
        &extended,
        &plan,
        seed ^ 0xF19,
        |episode, trace, epsilon| adjuster.observe(episode, trace, epsilon),
    );

    let post_fault =
        &run.trace.epsilons[injection.min(run.trace.epsilons.len().saturating_sub(1))..];
    let peak_exploration = post_fault.iter().copied().fold(0.0f64, f64::max) * 100.0;
    let floor = 0.05 + 1e-9;
    let episodes_to_steady = post_fault
        .iter()
        .position(|&e| e <= floor)
        .map(|p| {
            // Find the first return to the floor *after* any boost.
            post_fault[p..].iter().position(|&e| e <= floor).map(|q| p + q).unwrap_or(p)
        })
        .unwrap_or(post_fault.len()) as f64;
    let window = 20.min(params.training_episodes / 4).max(5);
    let recovery_episodes = episodes_to_converge(&run.trace, injection, window, 0.95)
        .unwrap_or(extended.training_episodes - injection) as f64;
    vec![peak_exploration, episodes_to_steady, recovery_episodes]
}

fn cell_id(panel: &str, fault_kind: FaultKind, ber: f64) -> String {
    format!("{panel}/{fault_kind}/ber={ber}")
}

/// Fig. 9 as a declarative sweep: one cell per (policy, fault kind, BER)
/// whose single training run yields all three observables as metrics.
pub fn sweep(scale: Scale) -> Sweep {
    let params = Arc::new(scale.grid());
    let reps = (params.repetitions / 2).max(1);
    let mut sweep = Sweep::new("fig9", scale);
    for (kind, panel) in PANELS {
        for fault_kind in FAULT_KINDS {
            for &ber in &params.bit_error_rates {
                let spec = CellSpec::new(cell_id(panel, fault_kind, ber), reps)
                    .with_label("figure", panel)
                    .with_label("fault", fault_kind.to_string())
                    .with_label("ber", ber.to_string());
                let params = Arc::clone(&params);
                sweep.cell_metrics(spec, move |seed, _rep, _cfg| {
                    run_mitigated(kind, fault_kind, ber, &params, seed)
                });
            }
        }
    }
    sweep.fold(move |results| {
        let mut figures = Vec::new();
        let mut tradeoff_series = Vec::new();
        for (kind, panel) in PANELS {
            let mut ratio_series = Vec::new();
            let mut steady_series = Vec::new();
            let mut tradeoff_points = Vec::new();
            for fault_kind in FAULT_KINDS {
                let mut ratio_points = Vec::new();
                let mut steady_points = Vec::new();
                for &ber in &params.bit_error_rates {
                    let id = cell_id(panel, fault_kind, ber);
                    let peak = results.metric_mean(&id, PEAK_EXPLORATION);
                    ratio_points.push((ber, peak));
                    steady_points.push((ber, results.metric_mean(&id, EPISODES_TO_STEADY)));
                    if fault_kind == FaultKind::BitFlip {
                        tradeoff_points.push((peak, results.metric_mean(&id, RECOVERY_EPISODES)));
                    }
                }
                ratio_series.push(Series::new(format!("{fault_kind}"), ratio_points));
                steady_series.push(Series::new(format!("{fault_kind}"), steady_points));
            }
            figures.push(FigureData::lines(
                format!("{panel}-exploration-ratio"),
                format!("{kind} adjusted exploration ratio vs BER"),
                "peak exploration ratio after the fault (%) vs BER",
                ratio_series,
            ));
            figures.push(FigureData::lines(
                format!("{panel}-episodes-to-steady"),
                format!("{kind} episodes to steady exploitation vs BER"),
                "episodes from fault to steady exploitation vs BER",
                steady_series,
            ));
            tradeoff_points
                .sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
            tradeoff_series.push(Series::new(kind.to_string(), tradeoff_points));
        }
        figures.push(FigureData::lines(
            "fig9c",
            "recovery time vs adjusted exploration ratio",
            "episodes to recover >95% success vs peak exploration ratio (%)",
            tradeoff_series,
        ));
        figures
    });
    sweep
}

/// Fig. 9a/9b/9c: exploration ratio and episodes-to-steady-exploitation vs
/// BER per fault kind (tabular and NN), plus the recovery-time vs
/// exploration-ratio trade-off.
pub fn exploration_adjustment_analysis(scale: Scale) -> Vec<FigureData> {
    sweep(scale).collect(scale.threads())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_trial_yields_all_three_observables() {
        let params = Scale::Smoke.grid();
        let metrics = run_mitigated(PolicyKind::Tabular, FaultKind::BitFlip, 0.005, &params, 0x99);
        assert_eq!(metrics.len(), 3);
        assert!(metrics[PEAK_EXPLORATION] >= 0.0 && metrics[PEAK_EXPLORATION] <= 100.0);
        assert!(metrics[EPISODES_TO_STEADY] >= 0.0);
        assert!(metrics[RECOVERY_EPISODES] >= 0.0);
    }

    #[test]
    fn sweep_declares_one_cell_per_configuration() {
        let params = Scale::Smoke.grid();
        let sweep = sweep(Scale::Smoke);
        assert_eq!(sweep.len(), 2 * FAULT_KINDS.len() * params.bit_error_rates.len());
    }
}

//! Fig. 10 — the effectiveness of range-based anomaly detection during
//! inference: success rate (Grid World) and flight distance (drone) with and
//! without the mitigation, plus the headline improvement factors and the
//! runtime-overhead measurement.
//!
//! The overhead measurement is wall-clock dependent, so it lives in the
//! sweep's *fold* — it reaches the rendered tables but never the
//! machine-readable artifacts, which must be bit-identical across runs.

use std::sync::Arc;

use navft_dronesim::{DepthCamera, DroneSim, DroneWorld};
use navft_fault::{FaultKind, FaultSite, FaultTarget, Injector};
use navft_gridworld::{GridWorld, ObstacleDensity};
use navft_mitigation::{measure_overhead, RangeGuard, RangeGuardConfig};
use navft_nn::{EngineConfig, Network, Tensor};
use navft_qformat::QFormat;
use navft_rl::{
    corrupt_network_weights, evaluate_policy_discrete_batched, evaluate_policy_vision_batched,
    DummyVecEnv, DummyVisionVecEnv, InferenceFaultMode,
};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::drone_policy::train_drone_policy;
use crate::grid_policies::{train_clean_policy_cfg, PolicyKind};
use crate::sweep::{CellSpec, Lazy, Sweep};
use crate::{FigureData, GridParams, Scale, Series};

/// Success rate (%) of the NN Grid World policy under weight bit flips, with
/// or without the range guard scrubbing the corrupted weights first.
pub fn grid_success_with_guard(ber: f64, mitigated: bool, params: &GridParams, seed: u64) -> f64 {
    grid_success_with_guard_cfg(ber, mitigated, params, seed, EngineConfig::default())
}

/// [`grid_success_with_guard`] with an explicit inference [`EngineConfig`];
/// the evaluation episodes run as one vectorized rollout.
pub fn grid_success_with_guard_cfg(
    ber: f64,
    mitigated: bool,
    params: &GridParams,
    seed: u64,
    engine: EngineConfig,
) -> f64 {
    let run =
        train_clean_policy_cfg(PolicyKind::Network, ObstacleDensity::Middle, params, seed, engine);
    let agent = run.network.as_ref().expect("network policy");
    let clean = agent.network();
    let guard = RangeGuard::from_network(clean, QFormat::Q3_4, RangeGuardConfig::paper());
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x10A);
    let injector = Injector::sample(
        FaultTarget::new(FaultSite::WeightBuffer),
        clean.weight_count(),
        QFormat::Q3_4,
        ber,
        FaultKind::BitFlip,
        &mut rng,
    );
    let mut corrupted =
        corrupt_network_weights(clean, &InferenceFaultMode::TransientWholeEpisode(injector));
    if mitigated {
        guard.scrub(&mut corrupted);
    }
    let world = GridWorld::with_density(ObstacleDensity::Middle);
    let mut venv = DummyVecEnv::from_prototype(&world, params.eval_episodes.clamp(1, 64));
    evaluate_policy_discrete_batched(
        &mut venv,
        &corrupted,
        params.eval_episodes,
        params.max_steps,
        &InferenceFaultMode::None,
        &mut rng,
        engine,
    )
    .success_rate
        * 100.0
}

/// Mean safe flight distance of the drone policy under weight bit flips, with
/// or without the range guard.
fn drone_distance_with_guard(
    policy: &Network,
    world: &DroneWorld,
    ber: f64,
    mitigated: bool,
    params: &crate::DroneParams,
    seed: u64,
    engine: EngineConfig,
) -> f64 {
    let guard = RangeGuard::from_network(policy, QFormat::Q4_11, RangeGuardConfig::paper());
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x10B);
    let injector = Injector::sample(
        FaultTarget::new(FaultSite::WeightBuffer),
        policy.weight_count(),
        QFormat::Q4_11,
        ber,
        FaultKind::BitFlip,
        &mut rng,
    );
    let mut corrupted =
        corrupt_network_weights(policy, &InferenceFaultMode::TransientWholeEpisode(injector));
    if mitigated {
        guard.scrub(&mut corrupted);
    }
    let sim = DroneSim::new(world.clone(), DepthCamera::scaled(), params.max_steps);
    let mut venv = DummyVisionVecEnv::from_prototype(&sim, params.eval_episodes.clamp(1, 64));
    evaluate_policy_vision_batched(
        &mut venv,
        &corrupted,
        params.eval_episodes,
        params.max_steps,
        &InferenceFaultMode::None,
        &mut rng,
        engine,
    )
    .mean_distance
}

const ARMS: [(bool, &str); 2] = [(false, "base"), (true, "guarded")];

fn grid_id(arm: &str, ber: f64) -> String {
    format!("grid/{arm}/ber={ber}")
}

fn drone_id(arm: &str, ber: f64) -> String {
    format!("drone/{arm}/ber={ber}")
}

/// Fig. 10 as a declarative sweep: (task × mitigation arm × BER) cells; the
/// improvement factors and the wall-clock overhead are computed in the fold.
pub fn sweep(scale: Scale) -> Sweep {
    let grid_params = Arc::new(scale.grid());
    let drone_params = Arc::new(scale.drone());
    let world = Arc::new(DroneWorld::indoor_long());
    let policy = {
        let world = Arc::clone(&world);
        let params = Arc::clone(&drone_params);
        Lazy::new(move || train_drone_policy(&world, &params, 0x0D0E))
    };

    let mut sweep = Sweep::new("fig10", scale);
    for (mitigated, arm) in ARMS {
        for &ber in &grid_params.bit_error_rates {
            let spec = CellSpec::new(grid_id(arm, ber), grid_params.repetitions)
                .with_label("figure", "fig10a")
                .with_label("arm", arm)
                .with_label("ber", ber.to_string());
            let params = Arc::clone(&grid_params);
            sweep.cell(spec, move |seed, _rep, cfg| {
                grid_success_with_guard_cfg(ber, mitigated, &params, seed, cfg)
            });
        }
        for &ber in &drone_params.bit_error_rates {
            let spec = CellSpec::new(drone_id(arm, ber), drone_params.repetitions)
                .with_label("figure", "fig10b")
                .with_label("arm", arm)
                .with_label("ber", ber.to_string());
            let (policy, world, params) =
                (policy.clone(), Arc::clone(&world), Arc::clone(&drone_params));
            sweep.cell(spec, move |seed, _rep, cfg| {
                drone_distance_with_guard(policy.get(), &world, ber, mitigated, &params, seed, cfg)
            });
        }
    }
    sweep.fold(move |results| {
        let collect =
            |id: &dyn Fn(&str, f64) -> String, bers: &[f64], arm: &str| -> Vec<(f64, f64)> {
                bers.iter().map(|&ber| (ber, results.mean(&id(arm, ber)))).collect()
            };
        let unmitigated = collect(&grid_id, &grid_params.bit_error_rates, "base");
        let mitigated = collect(&grid_id, &grid_params.bit_error_rates, "guarded");
        let drone_unmitigated = collect(&drone_id, &drone_params.bit_error_rates, "base");
        let drone_mitigated = collect(&drone_id, &drone_params.bit_error_rates, "guarded");

        let mut figures = vec![
            FigureData::lines(
                "fig10a",
                "Grid World NN inference with range-based anomaly detection",
                "success rate (%) vs BER (weight bit flips)",
                vec![
                    Series::new("no mitigation", unmitigated.clone()),
                    Series::new("mitigation", mitigated.clone()),
                ],
            ),
            FigureData::lines(
                "fig10b",
                "drone inference with range-based anomaly detection",
                "mean safe flight distance (m) vs BER (weight bit flips)",
                vec![
                    Series::new("no mitigation", drone_unmitigated.clone()),
                    Series::new("mitigation", drone_mitigated.clone()),
                ],
            ),
        ];

        // Headline facts: improvement factors at the highest BER and the
        // runtime overhead of the protected inference path (wall-clock, so
        // fold-only: it never reaches the JSONL artifacts).
        let improvement = |base: &[(f64, f64)], guarded: &[(f64, f64)]| -> f64 {
            let (mut best, mut found) = (1.0f64, false);
            for ((_, b), (_, g)) in base.iter().zip(guarded.iter()) {
                if *b > 1e-9 {
                    best = best.max(*g / *b);
                    found = true;
                }
            }
            if found {
                best
            } else {
                1.0
            }
        };
        // The overhead is a function of the topology and the guard's integer
        // comparisons, not of the learned weights, so it is timed on an
        // untrained probe of the same architecture — a fully resumed run
        // must not train the policy just to time it.
        let probe = navft_nn::C3f2Config::scaled().build(&mut SmallRng::seed_from_u64(0x10C));
        let guard = RangeGuard::from_network(&probe, QFormat::Q4_11, RangeGuardConfig::paper());
        let camera = DepthCamera::scaled();
        let frame = Tensor::zeros(&camera.frame_shape());
        let overhead = measure_overhead(&probe, &guard, &frame, 60, 50);
        figures.push(FigureData::facts(
            "fig10-headline",
            "headline mitigation results",
            vec![
                (
                    "Grid World success-rate improvement (x)".to_string(),
                    improvement(&unmitigated, &mitigated),
                ),
                (
                    "drone flight-distance improvement (x)".to_string(),
                    improvement(&drone_unmitigated, &drone_mitigated),
                ),
                (
                    "anomaly-detection runtime overhead (%)".to_string(),
                    overhead.relative_overhead() * 100.0,
                ),
            ],
        ));
        figures
    });
    sweep
}

/// Fig. 10a / 10b plus the headline facts: anomaly-detection effectiveness on
/// Grid World inference and drone inference, and the measured runtime
/// overhead of the guard.
pub fn anomaly_detection_effectiveness(scale: Scale) -> Vec<FigureData> {
    sweep(scale).collect(scale.threads())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_declares_both_arms_for_both_tasks() {
        let grid = Scale::Smoke.grid();
        let drone = Scale::Smoke.drone();
        let sweep = sweep(Scale::Smoke);
        assert_eq!(sweep.len(), 2 * (grid.bit_error_rates.len() + drone.bit_error_rates.len()));
    }
}

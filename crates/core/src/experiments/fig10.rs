//! Fig. 10 — the effectiveness of range-based anomaly detection during
//! inference: success rate (Grid World) and flight distance (drone) with and
//! without the mitigation, plus the headline improvement factors and the
//! runtime-overhead measurement.

use navft_dronesim::{DepthCamera, DroneSim, DroneWorld};
use navft_fault::{FaultKind, FaultSite, FaultTarget, Injector};
use navft_gridworld::{GridWorld, ObstacleDensity};
use navft_mitigation::{measure_overhead, RangeGuard, RangeGuardConfig};
use navft_nn::{Network, Tensor};
use navft_qformat::QFormat;
use navft_rl::{
    corrupt_network_weights, evaluate_network_discrete, evaluate_network_vision, InferenceFaultMode,
};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::drone_policy::train_drone_policy;
use crate::experiments::campaign;
use crate::grid_policies::{train_clean_policy, PolicyKind};
use crate::{FigureData, GridParams, Scale, Series};

/// Success rate (%) of the NN Grid World policy under weight bit flips, with
/// or without the range guard scrubbing the corrupted weights first.
pub fn grid_success_with_guard(ber: f64, mitigated: bool, params: &GridParams, seed: u64) -> f64 {
    let run = train_clean_policy(PolicyKind::Network, ObstacleDensity::Middle, params, seed);
    let agent = run.network.as_ref().expect("network policy");
    let clean = agent.network();
    let guard = RangeGuard::from_network(clean, QFormat::Q3_4, RangeGuardConfig::paper());
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x10A);
    let injector = Injector::sample(
        FaultTarget::new(FaultSite::WeightBuffer),
        clean.weight_count(),
        QFormat::Q3_4,
        ber,
        FaultKind::BitFlip,
        &mut rng,
    );
    let mut corrupted =
        corrupt_network_weights(clean, &InferenceFaultMode::TransientWholeEpisode(injector));
    if mitigated {
        guard.scrub(&mut corrupted);
    }
    let mut world = GridWorld::with_density(ObstacleDensity::Middle);
    evaluate_network_discrete(
        &mut world,
        &corrupted,
        params.eval_episodes,
        params.max_steps,
        &InferenceFaultMode::None,
        &mut rng,
    )
    .success_rate
        * 100.0
}

/// Mean safe flight distance of the drone policy under weight bit flips, with
/// or without the range guard.
fn drone_distance_with_guard(
    policy: &Network,
    world: &DroneWorld,
    ber: f64,
    mitigated: bool,
    params: &crate::DroneParams,
    seed: u64,
) -> f64 {
    let guard = RangeGuard::from_network(policy, QFormat::Q4_11, RangeGuardConfig::paper());
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x10B);
    let injector = Injector::sample(
        FaultTarget::new(FaultSite::WeightBuffer),
        policy.weight_count(),
        QFormat::Q4_11,
        ber,
        FaultKind::BitFlip,
        &mut rng,
    );
    let mut corrupted =
        corrupt_network_weights(policy, &InferenceFaultMode::TransientWholeEpisode(injector));
    if mitigated {
        guard.scrub(&mut corrupted);
    }
    let mut sim = DroneSim::new(world.clone(), DepthCamera::scaled(), params.max_steps);
    evaluate_network_vision(
        &mut sim,
        &corrupted,
        params.eval_episodes,
        params.max_steps,
        &InferenceFaultMode::None,
        &mut rng,
    )
    .mean_distance
}

/// Fig. 10a / 10b plus the headline facts: anomaly-detection effectiveness on
/// Grid World inference and drone inference, and the measured runtime
/// overhead of the guard.
pub fn anomaly_detection_effectiveness(scale: Scale) -> Vec<FigureData> {
    let grid_params = scale.grid();
    let drone_params = scale.drone();
    let mut figures = Vec::new();

    // Fig. 10a: Grid World NN policy.
    let mut unmitigated = Vec::new();
    let mut mitigated = Vec::new();
    for &ber in &grid_params.bit_error_rates {
        let base =
            campaign(scale, grid_params.repetitions, (ber * 1e6) as u64 ^ 0xA0, |seed, _| {
                grid_success_with_guard(ber, false, &grid_params, seed)
            });
        let guarded =
            campaign(scale, grid_params.repetitions, (ber * 1e6) as u64 ^ 0xA1, |seed, _| {
                grid_success_with_guard(ber, true, &grid_params, seed)
            });
        unmitigated.push((ber, base.mean()));
        mitigated.push((ber, guarded.mean()));
    }
    figures.push(FigureData::lines(
        "fig10a",
        "Grid World NN inference with range-based anomaly detection",
        "success rate (%) vs BER (weight bit flips)",
        vec![
            Series::new("no mitigation", unmitigated.clone()),
            Series::new("mitigation", mitigated.clone()),
        ],
    ));

    // Fig. 10b: drone policy.
    let world = DroneWorld::indoor_long();
    let policy = train_drone_policy(&world, &drone_params, 0x0D0E);
    let mut drone_unmitigated = Vec::new();
    let mut drone_mitigated = Vec::new();
    for &ber in &drone_params.bit_error_rates {
        let base =
            campaign(scale, drone_params.repetitions, (ber * 1e7) as u64 ^ 0xB0, |seed, _| {
                drone_distance_with_guard(&policy, &world, ber, false, &drone_params, seed)
            });
        let guarded =
            campaign(scale, drone_params.repetitions, (ber * 1e7) as u64 ^ 0xB1, |seed, _| {
                drone_distance_with_guard(&policy, &world, ber, true, &drone_params, seed)
            });
        drone_unmitigated.push((ber, base.mean()));
        drone_mitigated.push((ber, guarded.mean()));
    }
    figures.push(FigureData::lines(
        "fig10b",
        "drone inference with range-based anomaly detection",
        "mean safe flight distance (m) vs BER (weight bit flips)",
        vec![
            Series::new("no mitigation", drone_unmitigated.clone()),
            Series::new("mitigation", drone_mitigated.clone()),
        ],
    ));

    // Headline facts: improvement factors at the highest BER and the runtime
    // overhead of the protected inference path.
    let improvement = |base: &[(f64, f64)], guarded: &[(f64, f64)]| -> f64 {
        let (mut best, mut found) = (1.0f64, false);
        for ((_, b), (_, g)) in base.iter().zip(guarded.iter()) {
            if *b > 1e-9 {
                best = best.max(*g / *b);
                found = true;
            }
        }
        if found {
            best
        } else {
            1.0
        }
    };
    let guard = RangeGuard::from_network(&policy, QFormat::Q4_11, RangeGuardConfig::paper());
    let camera = DepthCamera::scaled();
    let frame = Tensor::zeros(&camera.frame_shape());
    let overhead = measure_overhead(&policy, &guard, &frame, 60, 50);
    figures.push(FigureData::facts(
        "fig10-headline",
        "headline mitigation results",
        vec![
            (
                "Grid World success-rate improvement (x)".to_string(),
                improvement(&unmitigated, &mitigated),
            ),
            (
                "drone flight-distance improvement (x)".to_string(),
                improvement(&drone_unmitigated, &drone_mitigated),
            ),
            (
                "anomaly-detection runtime overhead (%)".to_string(),
                overhead.relative_overhead() * 100.0,
            ),
        ],
    ));
    figures
}

//! Fig. 8 — Grid World training heatmaps with the adaptive exploration-rate
//! adjustment (the training-time mitigation) enabled, for direct comparison
//! against Fig. 2.

use navft_fault::{FaultKind, FaultSite, FaultTarget, InjectionSchedule, Injector};
use navft_gridworld::ObstacleDensity;
use navft_mitigation::ExplorationAdjuster;
use navft_qformat::QFormat;
use navft_rl::FaultPlan;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::experiments::fig2::policy_words;
use crate::experiments::{ber_label, campaign};
use crate::grid_policies::{train_grid_policy, PolicyKind};
use crate::{FigureData, GridParams, Heatmap, Scale, Series};

/// Trains a policy of `kind` under a fault, with the exploration-rate
/// mitigation attached, and returns the final success rate in percent.
pub fn mitigated_training_success(
    kind: PolicyKind,
    fault_kind: FaultKind,
    ber: f64,
    episode: usize,
    params: &GridParams,
    seed: u64,
) -> f64 {
    let mut rng = SmallRng::seed_from_u64(seed);
    let injector = Injector::sample(
        FaultTarget::new(match kind {
            PolicyKind::Tabular => FaultSite::TabularBuffer,
            PolicyKind::Network => FaultSite::WeightBuffer,
        }),
        policy_words(kind),
        QFormat::Q3_4,
        ber,
        fault_kind,
        &mut rng,
    );
    let schedule = if fault_kind.is_permanent() {
        InjectionSchedule::from_start()
    } else {
        InjectionSchedule::at_episode(episode)
    };
    let plan = FaultPlan::new(injector, schedule);
    let mut adjuster = match kind {
        PolicyKind::Tabular => ExplorationAdjuster::for_tabular(),
        PolicyKind::Network => ExplorationAdjuster::for_network(),
    };
    let run = train_grid_policy(
        kind,
        ObstacleDensity::Middle,
        params,
        &plan,
        seed ^ 0xF18,
        |episode, trace, epsilon| adjuster.observe(episode, trace, epsilon),
    );
    run.final_success_rate * 100.0
}

/// Fig. 8a / 8b: mitigated-training success-rate heatmaps (transient faults)
/// and stuck-at sweeps, for tabular and NN policies.
pub fn mitigated_training_heatmaps(scale: Scale) -> Vec<FigureData> {
    let params = scale.grid();
    let mut figures = Vec::new();
    for (kind, id) in [(PolicyKind::Tabular, "fig8a"), (PolicyKind::Network, "fig8b")] {
        let episodes = params.injection_episodes();
        let mut rows = Vec::new();
        for &ber in &params.bit_error_rates {
            let mut row = Vec::new();
            for &episode in &episodes {
                let summary = campaign(
                    scale,
                    params.repetitions,
                    (ber * 1e6) as u64 ^ (episode as u64) << 20,
                    |seed, _| {
                        mitigated_training_success(
                            kind,
                            FaultKind::BitFlip,
                            ber,
                            episode,
                            &params,
                            seed,
                        )
                    },
                );
                row.push(summary.mean());
            }
            rows.push(row);
        }
        figures.push(FigureData::heatmap(
            format!("{id}-transient"),
            format!("{kind} training under transient faults with exploration-rate mitigation"),
            "final success rate (%) vs (BER, fault-injection episode)",
            Heatmap::new(
                params.bit_error_rates.iter().map(|&b| ber_label(b)).collect(),
                episodes.iter().map(|e| e.to_string()).collect(),
                rows,
            ),
        ));

        for fault_kind in [FaultKind::StuckAt0, FaultKind::StuckAt1] {
            let points: Vec<(f64, f64)> = params
                .bit_error_rates
                .iter()
                .map(|&ber| {
                    let summary = campaign(
                        scale,
                        params.repetitions,
                        (ber * 1e6) as u64 ^ 0x88,
                        |seed, _| {
                            mitigated_training_success(kind, fault_kind, ber, 0, &params, seed)
                        },
                    );
                    (ber, summary.mean())
                })
                .collect();
            figures.push(FigureData::lines(
                format!("{id}-{fault_kind}"),
                format!("{kind} training under {fault_kind} faults with mitigation"),
                "final success rate (%) vs BER",
                vec![Series::new(fault_kind.to_string(), points)],
            ));
        }
    }
    figures
}

//! Fig. 8 — Grid World training heatmaps with the adaptive exploration-rate
//! adjustment (the training-time mitigation) enabled, for direct comparison
//! against Fig. 2.

use std::sync::Arc;

use navft_fault::{FaultKind, FaultSite, FaultTarget, InjectionSchedule, Injector};
use navft_gridworld::ObstacleDensity;
use navft_mitigation::ExplorationAdjuster;
use navft_qformat::QFormat;
use navft_rl::FaultPlan;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::experiments::ber_label;
use crate::experiments::fig2::{policy_words, stuck_id, transient_id};
use crate::grid_policies::{train_grid_policy, PolicyKind};
use crate::sweep::{CellSpec, Sweep};
use crate::{FigureData, GridParams, Heatmap, Scale, Series};

const PANELS: [(PolicyKind, &str); 2] =
    [(PolicyKind::Tabular, "fig8a"), (PolicyKind::Network, "fig8b")];

/// Trains a policy of `kind` under a fault, with the exploration-rate
/// mitigation attached, and returns the final success rate in percent.
pub fn mitigated_training_success(
    kind: PolicyKind,
    fault_kind: FaultKind,
    ber: f64,
    episode: usize,
    params: &GridParams,
    seed: u64,
) -> f64 {
    let mut rng = SmallRng::seed_from_u64(seed);
    let injector = Injector::sample(
        FaultTarget::new(match kind {
            PolicyKind::Tabular => FaultSite::TabularBuffer,
            PolicyKind::Network => FaultSite::WeightBuffer,
        }),
        policy_words(kind),
        QFormat::Q3_4,
        ber,
        fault_kind,
        &mut rng,
    );
    let schedule = if fault_kind.is_permanent() {
        InjectionSchedule::from_start()
    } else {
        InjectionSchedule::at_episode(episode)
    };
    let plan = FaultPlan::new(injector, schedule);
    let mut adjuster = match kind {
        PolicyKind::Tabular => ExplorationAdjuster::for_tabular(),
        PolicyKind::Network => ExplorationAdjuster::for_network(),
    };
    let run = train_grid_policy(
        kind,
        ObstacleDensity::Middle,
        params,
        &plan,
        seed ^ 0xF18,
        |episode, trace, epsilon| adjuster.observe(episode, trace, epsilon),
    );
    run.final_success_rate * 100.0
}

/// Fig. 8 as a declarative sweep: the Fig. 2 grid (same cell-id scheme,
/// shared helpers) with the mitigation attached to every training run.
pub fn sweep(scale: Scale) -> Sweep {
    let params = Arc::new(scale.grid());
    let episodes = params.injection_episodes();
    let mut sweep = Sweep::new("fig8", scale);
    for (kind, panel) in PANELS {
        for &ber in &params.bit_error_rates {
            for &episode in &episodes {
                let spec = CellSpec::new(transient_id(panel, ber, episode), params.repetitions)
                    .with_label("figure", format!("{panel}-transient"))
                    .with_label("ber", ber.to_string())
                    .with_label("episode", episode.to_string());
                let params = Arc::clone(&params);
                sweep.cell(spec, move |seed, _rep, _cfg| {
                    mitigated_training_success(
                        kind,
                        FaultKind::BitFlip,
                        ber,
                        episode,
                        &params,
                        seed,
                    )
                });
            }
            for fault_kind in [FaultKind::StuckAt0, FaultKind::StuckAt1] {
                let spec = CellSpec::new(stuck_id(panel, fault_kind, ber), params.repetitions)
                    .with_label("figure", format!("{panel}-{fault_kind}"))
                    .with_label("ber", ber.to_string());
                let params = Arc::clone(&params);
                sweep.cell(spec, move |seed, _rep, _cfg| {
                    mitigated_training_success(kind, fault_kind, ber, 0, &params, seed)
                });
            }
        }
    }
    sweep.fold(move |results| {
        let mut figures = Vec::new();
        for (kind, panel) in PANELS {
            let rows = params
                .bit_error_rates
                .iter()
                .map(|&ber| {
                    episodes
                        .iter()
                        .map(|&episode| results.mean(&transient_id(panel, ber, episode)))
                        .collect()
                })
                .collect();
            figures.push(FigureData::heatmap(
                format!("{panel}-transient"),
                format!("{kind} training under transient faults with exploration-rate mitigation"),
                "final success rate (%) vs (BER, fault-injection episode)",
                Heatmap::new(
                    params.bit_error_rates.iter().map(|&b| ber_label(b)).collect(),
                    episodes.iter().map(|e| e.to_string()).collect(),
                    rows,
                ),
            ));
            for fault_kind in [FaultKind::StuckAt0, FaultKind::StuckAt1] {
                let points = params
                    .bit_error_rates
                    .iter()
                    .map(|&ber| (ber, results.mean(&stuck_id(panel, fault_kind, ber))))
                    .collect();
                figures.push(FigureData::lines(
                    format!("{panel}-{fault_kind}"),
                    format!("{kind} training under {fault_kind} faults with mitigation"),
                    "final success rate (%) vs BER",
                    vec![Series::new(fault_kind.to_string(), points)],
                ));
            }
        }
        figures
    });
    sweep
}

/// Fig. 8a / 8b: mitigated-training success-rate heatmaps (transient faults)
/// and stuck-at sweeps, for tabular and NN policies.
pub fn mitigated_training_heatmaps(scale: Scale) -> Vec<FigureData> {
    sweep(scale).collect(scale.threads())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_mirrors_the_fig2_cell_grid() {
        let fig2 = crate::experiments::fig2::training_sweep(Scale::Smoke);
        let fig8 = sweep(Scale::Smoke);
        assert_eq!(fig2.len(), fig8.len());
    }
}

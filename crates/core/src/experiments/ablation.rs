//! Ablation studies over the design choices the paper fixes without sweeping:
//! the mitigation's detection threshold and adjustment coefficient, the
//! anomaly detector's margin and comparison precision, and an extended
//! data-type sweep.

use navft_fault::{FaultKind, FaultSite, FaultTarget, InjectionSchedule, Injector};
use navft_gridworld::ObstacleDensity;
use navft_mitigation::{
    ExplorationAdjuster, ExplorationAdjusterConfig, RangeGuard, RangeGuardConfig,
};
use navft_qformat::QFormat;
use navft_rl::FaultPlan;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::experiments::fig2::policy_words;
use crate::experiments::{campaign, fig7};
use crate::grid_policies::{train_clean_policy, train_grid_policy, PolicyKind};
use crate::{FigureData, GridParams, Scale, Series};

/// Final success rate (%) of tabular training under a late transient fault
/// with a custom mitigation configuration.
fn mitigated_success_with(
    config: ExplorationAdjusterConfig,
    ber: f64,
    params: &GridParams,
    seed: u64,
) -> f64 {
    let injection = (params.training_episodes as f64 * 0.9) as usize;
    let mut rng = SmallRng::seed_from_u64(seed);
    let injector = Injector::sample(
        FaultTarget::new(FaultSite::TabularBuffer),
        policy_words(PolicyKind::Tabular),
        QFormat::Q3_4,
        ber,
        FaultKind::BitFlip,
        &mut rng,
    );
    let plan = FaultPlan::new(injector, InjectionSchedule::at_episode(injection));
    let mut adjuster = ExplorationAdjuster::new(config);
    let run = train_grid_policy(
        PolicyKind::Tabular,
        ObstacleDensity::Middle,
        params,
        &plan,
        seed ^ 0xAB1,
        |episode, trace, epsilon| adjuster.observe(episode, trace, epsilon),
    );
    run.final_success_rate * 100.0
}

/// All ablation figures.
pub fn ablations(scale: Scale) -> Vec<FigureData> {
    let params = scale.grid();
    let reps = (params.repetitions / 2).max(1);
    let ber = *params.bit_error_rates.last().expect("non-empty BER sweep");
    let mut figures = Vec::new();

    // Ablation 1: the adjustment coefficient α.
    let mut alpha_points = Vec::new();
    for alpha in [0.0, 0.2, 0.4, 0.8, 1.0] {
        let config = ExplorationAdjusterConfig { alpha, ..ExplorationAdjusterConfig::tabular() };
        let summary = campaign(scale, reps, (alpha * 100.0) as u64 ^ 0xA1FA, |seed, _| {
            mitigated_success_with(config, ber, &params, seed)
        });
        alpha_points.push((alpha, summary.mean()));
    }
    figures.push(FigureData::lines(
        "ablation-alpha",
        "mitigated tabular training vs adjustment coefficient alpha",
        "final success rate (%) vs alpha (late transient fault at the highest BER)",
        vec![Series::new("alpha sweep", alpha_points)],
    ));

    // Ablation 2: the detection threshold x (reward-drop fraction).
    let mut threshold_points = Vec::new();
    for threshold in [0.1, 0.25, 0.5, 0.75] {
        let config = ExplorationAdjusterConfig {
            reward_drop_fraction: threshold,
            ..ExplorationAdjusterConfig::tabular()
        };
        let summary = campaign(scale, reps, (threshold * 100.0) as u64 ^ 0x7123, |seed, _| {
            mitigated_success_with(config, ber, &params, seed)
        });
        threshold_points.push((threshold, summary.mean()));
    }
    figures.push(FigureData::lines(
        "ablation-detection-threshold",
        "mitigated tabular training vs reward-drop detection threshold",
        "final success rate (%) vs detection threshold x",
        vec![Series::new("threshold sweep", threshold_points)],
    ));

    // Ablation 3: the anomaly-detection margin and comparison precision.
    let mut margin_series = Vec::new();
    for (label, integer_only) in [("sign+integer bits", true), ("full precision", false)] {
        let mut points = Vec::new();
        for margin in [0.0, 0.05, 0.1, 0.25, 0.5] {
            let summary = campaign(scale, reps, (margin * 1000.0) as u64 ^ 0x3a6, |seed, _| {
                guarded_success_with_margin(margin, integer_only, ber, &params, seed)
            });
            points.push((margin, summary.mean()));
        }
        margin_series.push(Series::new(label, points));
    }
    figures.push(FigureData::lines(
        "ablation-margin",
        "anomaly-detection margin and comparison precision",
        "Grid World NN success rate (%) vs detection margin (weight bit flips at the highest BER)",
        margin_series,
    ));

    // Ablation 4: extended data-type sweep — adds the extra-narrow 8-bit
    // Q(1,2,5) and the 16-bit Q(1,2,13) to the Fig. 7e formats, each
    // executed natively on the quantized backend.
    figures.extend(fig7::data_type_sensitivity(
        scale,
        &[QFormat::Q2_5, QFormat::Q2_13, QFormat::Q4_11, QFormat::Q7_8, QFormat::Q10_5],
        "ablation-data-types",
    ));

    figures
}

/// Success rate (%) of the guarded Grid World NN policy with a custom
/// anomaly-detection configuration.
fn guarded_success_with_margin(
    margin: f64,
    integer_only: bool,
    ber: f64,
    params: &GridParams,
    seed: u64,
) -> f64 {
    use navft_rl::{corrupt_network_weights, evaluate_network_discrete, InferenceFaultMode};

    let run = train_clean_policy(PolicyKind::Network, ObstacleDensity::Middle, params, seed);
    let clean = run.network.as_ref().expect("network policy").network();
    let config = RangeGuardConfig { margin, integer_bits_only: integer_only };
    let guard = RangeGuard::from_network(clean, QFormat::Q3_4, config);
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xAB3);
    let injector = Injector::sample(
        FaultTarget::new(FaultSite::WeightBuffer),
        clean.weight_count(),
        QFormat::Q3_4,
        ber,
        FaultKind::BitFlip,
        &mut rng,
    );
    let mut corrupted =
        corrupt_network_weights(clean, &InferenceFaultMode::TransientWholeEpisode(injector));
    guard.scrub(&mut corrupted);
    let mut world = navft_gridworld::GridWorld::with_density(ObstacleDensity::Middle);
    evaluate_network_discrete(
        &mut world,
        &corrupted,
        params.eval_episodes,
        params.max_steps,
        &InferenceFaultMode::None,
        &mut rng,
    )
    .success_rate
        * 100.0
}

//! Ablation studies over the design choices the paper fixes without sweeping:
//! the mitigation's detection threshold and adjustment coefficient, the
//! anomaly detector's margin and comparison precision, and an extended
//! data-type sweep.

use std::sync::Arc;

use navft_fault::{FaultKind, FaultSite, FaultTarget, InjectionSchedule, Injector};
use navft_gridworld::ObstacleDensity;
use navft_mitigation::{
    ExplorationAdjuster, ExplorationAdjusterConfig, RangeGuard, RangeGuardConfig,
};
use navft_nn::EngineConfig;
use navft_qformat::QFormat;
use navft_rl::FaultPlan;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::experiments::fig2::policy_words;
use crate::experiments::fig7;
use crate::grid_policies::{train_clean_policy_cfg, train_grid_policy, PolicyKind};
use crate::sweep::{CellSpec, Sweep};
use crate::{FigureData, GridParams, Scale, Series};

/// Final success rate (%) of tabular training under a late transient fault
/// with a custom mitigation configuration.
fn mitigated_success_with(
    config: ExplorationAdjusterConfig,
    ber: f64,
    params: &GridParams,
    seed: u64,
) -> f64 {
    let injection = (params.training_episodes as f64 * 0.9) as usize;
    let mut rng = SmallRng::seed_from_u64(seed);
    let injector = Injector::sample(
        FaultTarget::new(FaultSite::TabularBuffer),
        policy_words(PolicyKind::Tabular),
        QFormat::Q3_4,
        ber,
        FaultKind::BitFlip,
        &mut rng,
    );
    let plan = FaultPlan::new(injector, InjectionSchedule::at_episode(injection));
    let mut adjuster = ExplorationAdjuster::new(config);
    let run = train_grid_policy(
        PolicyKind::Tabular,
        ObstacleDensity::Middle,
        params,
        &plan,
        seed ^ 0xAB1,
        |episode, trace, epsilon| adjuster.observe(episode, trace, epsilon),
    );
    run.final_success_rate * 100.0
}

const ALPHAS: [f64; 5] = [0.0, 0.2, 0.4, 0.8, 1.0];
const THRESHOLDS: [f64; 4] = [0.1, 0.25, 0.5, 0.75];
const MARGINS: [f64; 5] = [0.0, 0.05, 0.1, 0.25, 0.5];
const PRECISIONS: [(&str, bool); 2] = [("sign+integer bits", true), ("full precision", false)];

/// The extended data-type sweep: the extra-narrow 8-bit Q(1,2,5) and the
/// 16-bit Q(1,2,13) in addition to the Fig. 7e formats, each executed
/// natively on the quantized backend.
const DATA_TYPE_FORMATS: [QFormat; 5] =
    [QFormat::Q2_5, QFormat::Q2_13, QFormat::Q4_11, QFormat::Q7_8, QFormat::Q10_5];

const DATA_TYPE_PREFIX: &str = "ablation-data-types";

/// The ablations as one declarative sweep: adjustment coefficient, detection
/// threshold, anomaly-detection margin/precision, and the extended data-type
/// cells (shared with Fig. 7e's builder).
pub fn sweep(scale: Scale) -> Sweep {
    let params = Arc::new(scale.grid());
    let reps = (params.repetitions / 2).max(1);
    let ber = *params.bit_error_rates.last().expect("non-empty BER sweep");
    let mut sweep = Sweep::new("ablation", scale);

    // Ablation 1: the adjustment coefficient α.
    for alpha in ALPHAS {
        let spec = CellSpec::new(format!("alpha={alpha}"), reps)
            .with_label("figure", "ablation-alpha")
            .with_label("alpha", alpha.to_string());
        let params = Arc::clone(&params);
        sweep.cell(spec, move |seed, _rep, _cfg| {
            let config =
                ExplorationAdjusterConfig { alpha, ..ExplorationAdjusterConfig::tabular() };
            mitigated_success_with(config, ber, &params, seed)
        });
    }

    // Ablation 2: the detection threshold x (reward-drop fraction).
    for threshold in THRESHOLDS {
        let spec = CellSpec::new(format!("threshold={threshold}"), reps)
            .with_label("figure", "ablation-detection-threshold")
            .with_label("threshold", threshold.to_string());
        let params = Arc::clone(&params);
        sweep.cell(spec, move |seed, _rep, _cfg| {
            let config = ExplorationAdjusterConfig {
                reward_drop_fraction: threshold,
                ..ExplorationAdjusterConfig::tabular()
            };
            mitigated_success_with(config, ber, &params, seed)
        });
    }

    // Ablation 3: the anomaly-detection margin and comparison precision.
    for (label, integer_only) in PRECISIONS {
        for margin in MARGINS {
            let spec = CellSpec::new(format!("margin/{label}/m={margin}"), reps)
                .with_label("figure", "ablation-margin")
                .with_label("precision", label)
                .with_label("margin", margin.to_string());
            let params = Arc::clone(&params);
            sweep.cell(spec, move |seed, _rep, cfg| {
                guarded_success_with_margin(margin, integer_only, ber, &params, seed, cfg)
            });
        }
    }

    // Ablation 4: the extended data-type sweep, natively executed.
    fig7::add_data_type_cells(&mut sweep, scale, &DATA_TYPE_FORMATS, DATA_TYPE_PREFIX);

    sweep.fold(move |results| {
        let mut figures = Vec::new();
        let alpha_points =
            ALPHAS.iter().map(|&a| (a, results.mean(&format!("alpha={a}")))).collect();
        figures.push(FigureData::lines(
            "ablation-alpha",
            "mitigated tabular training vs adjustment coefficient alpha",
            "final success rate (%) vs alpha (late transient fault at the highest BER)",
            vec![Series::new("alpha sweep", alpha_points)],
        ));

        let threshold_points =
            THRESHOLDS.iter().map(|&t| (t, results.mean(&format!("threshold={t}")))).collect();
        figures.push(FigureData::lines(
            "ablation-detection-threshold",
            "mitigated tabular training vs reward-drop detection threshold",
            "final success rate (%) vs detection threshold x",
            vec![Series::new("threshold sweep", threshold_points)],
        ));

        let margin_series = PRECISIONS
            .iter()
            .map(|&(label, _)| {
                let points = MARGINS
                    .iter()
                    .map(|&m| (m, results.mean(&format!("margin/{label}/m={m}"))))
                    .collect();
                Series::new(label, points)
            })
            .collect();
        figures.push(FigureData::lines(
            "ablation-margin",
            "anomaly-detection margin and comparison precision",
            "Grid World NN success rate (%) vs detection margin (weight bit flips at the highest BER)",
            margin_series,
        ));

        figures.extend(fig7::data_type_figures(
            results,
            scale,
            &DATA_TYPE_FORMATS,
            DATA_TYPE_PREFIX,
        ));
        figures
    });
    sweep
}

/// All ablation figures.
pub fn ablations(scale: Scale) -> Vec<FigureData> {
    sweep(scale).collect(scale.threads())
}

/// Success rate (%) of the guarded Grid World NN policy with a custom
/// anomaly-detection configuration.
fn guarded_success_with_margin(
    margin: f64,
    integer_only: bool,
    ber: f64,
    params: &GridParams,
    seed: u64,
    engine: EngineConfig,
) -> f64 {
    use navft_rl::{
        corrupt_policy_weights, evaluate_policy_discrete_batched, DummyVecEnv, InferenceFaultMode,
    };

    let run =
        train_clean_policy_cfg(PolicyKind::Network, ObstacleDensity::Middle, params, seed, engine);
    let clean = run.network.as_ref().expect("network policy").network();
    let config = RangeGuardConfig { margin, integer_bits_only: integer_only };
    let guard = RangeGuard::from_network(clean, QFormat::Q3_4, config);
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xAB3);
    let injector = Injector::sample(
        FaultTarget::new(FaultSite::WeightBuffer),
        clean.weight_count(),
        QFormat::Q3_4,
        ber,
        FaultKind::BitFlip,
        &mut rng,
    );
    let mut corrupted =
        corrupt_policy_weights(clean, &InferenceFaultMode::TransientWholeEpisode(injector));
    guard.scrub(&mut corrupted);
    let world = navft_gridworld::GridWorld::with_density(ObstacleDensity::Middle);
    let mut venv = DummyVecEnv::from_prototype(&world, params.eval_episodes.clamp(1, 64));
    evaluate_policy_discrete_batched(
        &mut venv,
        &corrupted,
        params.eval_episodes,
        params.max_steps,
        &InferenceFaultMode::None,
        &mut rng,
        engine,
    )
    .success_rate
        * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_declares_every_ablation_cell() {
        let drone = Scale::Smoke.drone();
        let sweep = sweep(Scale::Smoke);
        // Every Q-format plus the i8 affine column, each with one bit-ratio
        // cell and one flight cell per BER.
        let data_type_cells = (DATA_TYPE_FORMATS.len() + 1) * (1 + drone.bit_error_rates.len());
        assert_eq!(
            sweep.len(),
            ALPHAS.len() + THRESHOLDS.len() + PRECISIONS.len() * MARGINS.len() + data_type_cells
        );
    }
}

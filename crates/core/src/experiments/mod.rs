//! Experiment drivers: one module per figure of the paper's evaluation.
//!
//! Every driver declares its figure as a [`Sweep`]: a set of campaign cells
//! (stable id, axis labels, repetitions, trial closure) plus a fold from the
//! per-cell summaries to [`FigureData`]. The `figures` binary in
//! `navft-bench` executes all requested sweeps on one shared work-stealing
//! scheduler ([`crate::sweep::run_sweeps`]) with resumable JSONL artifacts;
//! the imperative `fn(Scale) -> Vec<FigureData>` entry points remain as thin
//! wrappers ([`Sweep::collect`]) for tests and benches.

pub mod ablation;
pub mod fig10;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig7;
pub mod fig8;
pub mod fig9;

use crate::sweep::Sweep;
use crate::{FigureData, Scale};

/// Formats a bit error rate the way the paper labels its axes.
pub(crate) fn ber_label(ber: f64) -> String {
    if ber == 0.0 {
        "0".to_string()
    } else if ber >= 0.001 {
        format!("{:.1}%", ber * 100.0)
    } else {
        format!("{ber:.0e}")
    }
}

/// A figure-reproduction driver: maps a campaign scale to figure data.
pub type FigureDriver = fn(Scale) -> Vec<FigureData>;

/// A sweep builder: maps a campaign scale to the figure's declarative sweep.
pub type SweepBuilder = fn(Scale) -> Sweep;

/// Every figure's sweep builder, keyed by figure id, in evaluation order.
///
/// This is the complete per-experiment index used by the `figures` binary:
/// `figures all` schedules every entry's cells on one shared work queue,
/// `figures <id>` a single figure's.
pub fn sweep_builders() -> Vec<(&'static str, SweepBuilder)> {
    vec![
        ("fig2", fig2::training_sweep as SweepBuilder),
        ("fig2hist", fig2::histogram_sweep),
        ("fig3", fig3::sweep),
        ("fig4", fig4::sweep),
        ("fig5", fig5::sweep),
        ("fig7a", fig7::training_faults_sweep),
        ("fig7b", fig7::environment_sweep),
        ("fig7c", fig7::location_sweep),
        ("fig7d", fig7::layer_sweep),
        ("fig7e", fig7::data_type_sweep),
        ("fig8", fig8::sweep),
        ("fig9", fig9::sweep),
        ("fig10", fig10::sweep),
        ("ablation", ablation::sweep),
    ]
}

/// Builds every figure's sweep at the given scale.
pub fn all_sweeps(scale: Scale) -> Vec<Sweep> {
    sweep_builders().into_iter().map(|(_, build)| build(scale)).collect()
}

/// Every figure driver, keyed by figure id, at the given scale.
///
/// Each driver runs its figure's sweep standalone (no artifacts); prefer
/// [`all_sweeps`] + [`crate::sweep::run_sweeps`] to execute several figures
/// on one shared scheduler.
pub fn all_figures(scale: Scale) -> Vec<(&'static str, FigureDriver)> {
    let _ = scale;
    vec![
        ("fig2", fig2::training_fault_heatmaps as FigureDriver),
        ("fig2hist", fig2::value_histograms),
        ("fig3", fig3::cumulative_return_curves),
        ("fig4", fig4::convergence_analysis),
        ("fig5", fig5::grid_inference_sensitivity),
        ("fig7a", fig7::drone_training_faults),
        ("fig7b", fig7::drone_environment_sensitivity),
        ("fig7c", fig7::drone_fault_location_sensitivity),
        ("fig7d", fig7::drone_layer_sensitivity),
        ("fig7e", fig7::drone_data_type_sensitivity),
        ("fig8", fig8::mitigated_training_heatmaps),
        ("fig9", fig9::exploration_adjustment_analysis),
        ("fig10", fig10::anomaly_detection_effectiveness),
        ("ablation", ablation::ablations),
    ]
}

/// The list of valid figure identifiers.
pub fn figure_ids() -> Vec<&'static str> {
    sweep_builders().into_iter().map(|(id, _)| id).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ber_labels_match_paper_axis_style() {
        assert_eq!(ber_label(0.0), "0");
        assert_eq!(ber_label(0.001), "0.1%");
        assert_eq!(ber_label(0.01), "1.0%");
        assert_eq!(ber_label(1e-4), "1e-4");
        assert_eq!(ber_label(1e-5), "1e-5");
    }

    #[test]
    fn figure_index_covers_every_evaluation_figure() {
        let ids = figure_ids();
        for expected in [
            "fig2", "fig3", "fig4", "fig5", "fig7a", "fig7b", "fig7c", "fig7d", "fig7e", "fig8",
            "fig9", "fig10",
        ] {
            assert!(ids.contains(&expected), "missing {expected}");
        }
    }

    #[test]
    fn sweep_and_driver_indexes_agree() {
        let sweep_ids: Vec<&str> = sweep_builders().into_iter().map(|(id, _)| id).collect();
        let driver_ids: Vec<&str> =
            all_figures(Scale::Smoke).into_iter().map(|(id, _)| id).collect();
        assert_eq!(sweep_ids, driver_ids);
    }

    #[test]
    fn built_sweeps_carry_their_figure_ids() {
        let sweeps = all_sweeps(Scale::Smoke);
        let ids: Vec<&str> = sweeps.iter().map(|s| s.id()).collect();
        assert_eq!(ids, figure_ids());
        // Every sweep (bar none) declares at least one campaign cell.
        for sweep in &sweeps {
            assert!(!sweep.is_empty(), "{} has no cells", sweep.id());
            assert_eq!(sweep.scale(), Scale::Smoke);
        }
    }
}

//! Experiment drivers: one module per figure of the paper's evaluation.
//!
//! Every driver takes a [`Scale`] and returns [`FigureData`] holding the
//! same rows/series the paper plots. The `figures` binary in `navft-bench` renders them as text tables;
//! the Criterion benches time representative cells.

pub mod ablation;
pub mod fig10;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig7;
pub mod fig8;
pub mod fig9;

use navft_fault::campaign::{run_parallel, CampaignConfig, Summary};

use crate::{FigureData, Scale};

/// Runs `experiment` for `repetitions` deterministic seeds across the scale's
/// worker threads and returns the summary.
pub(crate) fn campaign<F>(
    scale: Scale,
    repetitions: usize,
    base_seed: u64,
    experiment: F,
) -> Summary
where
    F: Fn(u64, usize) -> f64 + Sync,
{
    let config = CampaignConfig::new(repetitions, base_seed);
    run_parallel(&config, scale.threads(), experiment)
}

/// Formats a bit error rate the way the paper labels its axes.
pub(crate) fn ber_label(ber: f64) -> String {
    if ber == 0.0 {
        "0".to_string()
    } else if ber >= 0.001 {
        format!("{:.1}%", ber * 100.0)
    } else {
        format!("{ber:.0e}")
    }
}

/// A figure-reproduction driver: maps a campaign scale to figure data.
pub type FigureDriver = fn(Scale) -> Vec<FigureData>;

/// Every figure driver, keyed by figure id, at the given scale.
///
/// This is the complete per-experiment index used by the `figures` binary:
/// `figures all` regenerates every entry, `figures <id>` a single one.
pub fn all_figures(scale: Scale) -> Vec<(&'static str, FigureDriver)> {
    let _ = scale;
    vec![
        ("fig2", fig2::training_fault_heatmaps as FigureDriver),
        ("fig2hist", fig2::value_histograms),
        ("fig3", fig3::cumulative_return_curves),
        ("fig4", fig4::convergence_analysis),
        ("fig5", fig5::grid_inference_sensitivity),
        ("fig7a", fig7::drone_training_faults),
        ("fig7b", fig7::drone_environment_sensitivity),
        ("fig7c", fig7::drone_fault_location_sensitivity),
        ("fig7d", fig7::drone_layer_sensitivity),
        ("fig7e", fig7::drone_data_type_sensitivity),
        ("fig8", fig8::mitigated_training_heatmaps),
        ("fig9", fig9::exploration_adjustment_analysis),
        ("fig10", fig10::anomaly_detection_effectiveness),
        ("ablation", ablation::ablations),
    ]
}

/// The list of valid figure identifiers.
pub fn figure_ids() -> Vec<&'static str> {
    all_figures(Scale::Quick).into_iter().map(|(id, _)| id).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ber_labels_match_paper_axis_style() {
        assert_eq!(ber_label(0.0), "0");
        assert_eq!(ber_label(0.001), "0.1%");
        assert_eq!(ber_label(0.01), "1.0%");
        assert_eq!(ber_label(1e-4), "1e-4");
        assert_eq!(ber_label(1e-5), "1e-5");
    }

    #[test]
    fn figure_index_covers_every_evaluation_figure() {
        let ids = figure_ids();
        for expected in [
            "fig2", "fig3", "fig4", "fig5", "fig7a", "fig7b", "fig7c", "fig7d", "fig7e", "fig8",
            "fig9", "fig10",
        ] {
            assert!(ids.contains(&expected), "missing {expected}");
        }
    }

    #[test]
    fn campaign_is_deterministic() {
        let a = campaign(Scale::Smoke, 5, 3, |seed, _| (seed % 97) as f64);
        let b = campaign(Scale::Smoke, 5, 3, |seed, _| (seed % 97) as f64);
        assert_eq!(a.values(), b.values());
    }
}

//! Fig. 5 — Grid World *inference* sensitivity: success rate of trained
//! policies evaluated under Transient-1, Transient-M, stuck-at-0 and
//! stuck-at-1 faults across a BER sweep.

use std::sync::Arc;

use navft_fault::{FaultKind, FaultSite, FaultTarget, Injector};
use navft_gridworld::ObstacleDensity;
use navft_nn::EngineConfig;
use navft_qformat::QFormat;
use navft_rl::InferenceFaultMode;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::grid_policies::{
    evaluate_grid_policy_cfg, policy_word_count, train_clean_policy_cfg, PolicyKind,
};
use crate::sweep::{CellSpec, Sweep};
use crate::{FigureData, Scale, Series};

/// The two policy families and their figure panel ids.
const PANELS: [(PolicyKind, &str); 2] =
    [(PolicyKind::Tabular, "fig5a"), (PolicyKind::Network, "fig5b")];

/// The four inference fault modes swept by Fig. 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InferenceMode {
    /// Transient fault affecting a single decision step.
    Transient1,
    /// Transient fault in memory affecting the whole episode.
    TransientM,
    /// Permanent stuck-at-0 faults.
    StuckAt0,
    /// Permanent stuck-at-1 faults.
    StuckAt1,
}

impl InferenceMode {
    /// All modes in the order the figure's legend lists them.
    pub const ALL: [InferenceMode; 4] = [
        InferenceMode::TransientM,
        InferenceMode::Transient1,
        InferenceMode::StuckAt0,
        InferenceMode::StuckAt1,
    ];

    /// The legend label.
    pub fn label(&self) -> &'static str {
        match self {
            InferenceMode::Transient1 => "Transient-1",
            InferenceMode::TransientM => "Transient-M",
            InferenceMode::StuckAt0 => "Stuck-at-0",
            InferenceMode::StuckAt1 => "Stuck-at-1",
        }
    }

    fn to_fault(self, injector: Injector) -> InferenceFaultMode {
        match self {
            InferenceMode::Transient1 => InferenceFaultMode::TransientSingleStep(injector),
            InferenceMode::TransientM => InferenceFaultMode::TransientWholeEpisode(injector),
            InferenceMode::StuckAt0 | InferenceMode::StuckAt1 => {
                InferenceFaultMode::Permanent(injector)
            }
        }
    }

    fn fault_kind(&self) -> FaultKind {
        match self {
            InferenceMode::Transient1 | InferenceMode::TransientM => FaultKind::BitFlip,
            InferenceMode::StuckAt0 => FaultKind::StuckAt0,
            InferenceMode::StuckAt1 => FaultKind::StuckAt1,
        }
    }
}

/// Evaluates a freshly trained policy of `kind` under the given mode and BER,
/// returning the success rate in percent.
pub fn inference_success(
    kind: PolicyKind,
    mode: InferenceMode,
    ber: f64,
    params: &crate::GridParams,
    seed: u64,
) -> f64 {
    inference_success_cfg(kind, mode, ber, params, seed, EngineConfig::default())
}

/// [`inference_success`] with an explicit inference [`EngineConfig`]; the
/// evaluation episodes run as one vectorized rollout.
pub fn inference_success_cfg(
    kind: PolicyKind,
    mode: InferenceMode,
    ber: f64,
    params: &crate::GridParams,
    seed: u64,
    engine: EngineConfig,
) -> f64 {
    let run = train_clean_policy_cfg(kind, ObstacleDensity::Middle, params, seed, engine);
    let words = policy_word_count(&run);
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x515);
    let injector = Injector::sample(
        FaultTarget::new(match kind {
            PolicyKind::Tabular => FaultSite::TabularBuffer,
            PolicyKind::Network => FaultSite::WeightBuffer,
        }),
        words,
        QFormat::Q3_4,
        ber,
        mode.fault_kind(),
        &mut rng,
    );
    let fault = mode.to_fault(injector);
    evaluate_grid_policy_cfg(&run, ObstacleDensity::Middle, params, &fault, seed ^ 0xE7A1, engine)
        .success_rate
        * 100.0
}

fn cell_id(panel: &str, mode: InferenceMode, ber: f64) -> String {
    format!("{panel}/{}/ber={ber}", mode.label())
}

/// Fig. 5 as a declarative sweep: one cell per (policy, mode, BER).
pub fn sweep(scale: Scale) -> Sweep {
    let params = Arc::new(scale.grid());
    let mut sweep = Sweep::new("fig5", scale);
    for (kind, panel) in PANELS {
        for mode in InferenceMode::ALL {
            for &ber in &params.bit_error_rates {
                let spec = CellSpec::new(cell_id(panel, mode, ber), params.repetitions)
                    .with_label("figure", panel)
                    .with_label("mode", mode.label())
                    .with_label("ber", ber.to_string());
                let params = Arc::clone(&params);
                sweep.cell(spec, move |seed, _rep, cfg| {
                    inference_success_cfg(kind, mode, ber, &params, seed, cfg)
                });
            }
        }
    }
    sweep.fold(move |results| {
        let mut figures = Vec::new();
        for (kind, panel) in PANELS {
            let series = InferenceMode::ALL
                .iter()
                .map(|&mode| {
                    let points = params
                        .bit_error_rates
                        .iter()
                        .map(|&ber| (ber, results.mean(&cell_id(panel, mode, ber))))
                        .collect();
                    Series::new(mode.label(), points)
                })
                .collect();
            figures.push(FigureData::lines(
                panel,
                format!("{kind} inference under faults"),
                "success rate (%) vs BER",
                series,
            ));
        }
        figures
    });
    sweep
}

/// Fig. 5a / 5b: success rate vs BER for the four inference fault modes,
/// tabular and NN-based policies.
pub fn grid_inference_sensitivity(scale: Scale) -> Vec<FigureData> {
    sweep(scale).collect(scale.threads())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_labels_and_kinds_match() {
        assert_eq!(InferenceMode::Transient1.label(), "Transient-1");
        assert_eq!(InferenceMode::StuckAt1.fault_kind(), FaultKind::StuckAt1);
        assert_eq!(InferenceMode::TransientM.fault_kind(), FaultKind::BitFlip);
        assert_eq!(InferenceMode::ALL.len(), 4);
    }

    #[test]
    fn sweep_declares_a_cell_per_policy_mode_and_ber() {
        let sweep = sweep(Scale::Smoke);
        let bers = Scale::Smoke.grid().bit_error_rates.len();
        assert_eq!(sweep.len(), 2 * 4 * bers);
        assert!(sweep.cell_specs().all(|s| s.repetitions() == Scale::Smoke.grid().repetitions));
    }
}

//! Structured figure data and plain-text rendering.
//!
//! Every experiment driver returns [`FigureData`]: the same rows/series the
//! paper plots, as numbers. The `figures` binary renders them as text tables
//! so the reproduction can be compared against the paper without a plotting
//! stack.

use std::fmt;

/// One labelled series of `(x, y)` points (a line in a line plot).
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// The legend label.
    pub label: String,
    /// The `(x, y)` points, in x order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series.
    pub fn new(label: impl Into<String>, points: Vec<(f64, f64)>) -> Series {
        Series { label: label.into(), points }
    }

    /// The y value at the given x, if present.
    pub fn y_at(&self, x: f64) -> Option<f64> {
        self.points.iter().find(|(px, _)| (*px - x).abs() < 1e-12).map(|(_, y)| *y)
    }
}

/// A labelled matrix of values (a heatmap).
#[derive(Debug, Clone, PartialEq)]
pub struct Heatmap {
    /// Row labels (e.g. bit error rates).
    pub row_labels: Vec<String>,
    /// Column labels (e.g. fault-injection episodes).
    pub col_labels: Vec<String>,
    /// `values[row][col]`.
    pub values: Vec<Vec<f64>>,
}

impl Heatmap {
    /// Creates a heatmap.
    ///
    /// # Panics
    ///
    /// Panics if the value matrix dimensions do not match the labels.
    pub fn new(row_labels: Vec<String>, col_labels: Vec<String>, values: Vec<Vec<f64>>) -> Heatmap {
        assert_eq!(values.len(), row_labels.len(), "row count mismatch");
        for row in &values {
            assert_eq!(row.len(), col_labels.len(), "column count mismatch");
        }
        Heatmap { row_labels, col_labels, values }
    }

    /// The value at `(row, col)`.
    pub fn value(&self, row: usize, col: usize) -> f64 {
        self.values[row][col]
    }
}

/// The content of a reproduced figure.
#[derive(Debug, Clone, PartialEq)]
pub enum FigureContent {
    /// A family of line series.
    Lines(Vec<Series>),
    /// A heatmap.
    Heatmap(Heatmap),
    /// Named scalar facts (e.g. bit statistics).
    Facts(Vec<(String, f64)>),
}

/// A reproduced figure: identifier, caption and data.
#[derive(Debug, Clone, PartialEq)]
pub struct FigureData {
    /// Figure identifier, e.g. `"fig2a"`.
    pub id: String,
    /// Short description of what the figure shows.
    pub title: String,
    /// Axis/metric description, e.g. `"success rate (%) vs BER"`.
    pub axes: String,
    /// The data.
    pub content: FigureContent,
}

impl FigureData {
    /// Creates a figure with line-series content.
    pub fn lines(
        id: impl Into<String>,
        title: impl Into<String>,
        axes: impl Into<String>,
        series: Vec<Series>,
    ) -> FigureData {
        FigureData {
            id: id.into(),
            title: title.into(),
            axes: axes.into(),
            content: FigureContent::Lines(series),
        }
    }

    /// Creates a figure with heatmap content.
    pub fn heatmap(
        id: impl Into<String>,
        title: impl Into<String>,
        axes: impl Into<String>,
        heatmap: Heatmap,
    ) -> FigureData {
        FigureData {
            id: id.into(),
            title: title.into(),
            axes: axes.into(),
            content: FigureContent::Heatmap(heatmap),
        }
    }

    /// Creates a figure with named scalar facts.
    pub fn facts(
        id: impl Into<String>,
        title: impl Into<String>,
        facts: Vec<(String, f64)>,
    ) -> FigureData {
        FigureData {
            id: id.into(),
            title: title.into(),
            axes: String::new(),
            content: FigureContent::Facts(facts),
        }
    }

    /// Renders the figure as a plain-text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} — {}\n", self.id, self.title));
        if !self.axes.is_empty() {
            out.push_str(&format!("   [{}]\n", self.axes));
        }
        match &self.content {
            FigureContent::Lines(series) => {
                for s in series {
                    out.push_str(&format!("  {}:\n", s.label));
                    for (x, y) in &s.points {
                        out.push_str(&format!("    x = {x:>12.6}   y = {y:>12.4}\n"));
                    }
                }
            }
            FigureContent::Heatmap(h) => {
                out.push_str("  rows x cols:\n");
                out.push_str("    ");
                out.push_str(&format!("{:>14}", ""));
                for c in &h.col_labels {
                    out.push_str(&format!("{c:>12}"));
                }
                out.push('\n');
                for (r, label) in h.row_labels.iter().enumerate() {
                    out.push_str(&format!("    {label:>14}"));
                    for v in &h.values[r] {
                        out.push_str(&format!("{v:>12.2}"));
                    }
                    out.push('\n');
                }
            }
            FigureContent::Facts(facts) => {
                for (name, value) in facts {
                    out.push_str(&format!("  {name:<40} {value:>12.4}\n"));
                }
            }
        }
        out
    }
}

impl fmt::Display for FigureData {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_lookup_by_x() {
        let s = Series::new("clean", vec![(0.0, 98.0), (0.01, 60.0)]);
        assert_eq!(s.y_at(0.01), Some(60.0));
        assert_eq!(s.y_at(0.5), None);
    }

    #[test]
    fn heatmap_shape_is_validated() {
        let h = Heatmap::new(
            vec!["0.1%".into(), "1%".into()],
            vec!["0".into(), "500".into()],
            vec![vec![98.0, 95.0], vec![60.0, 30.0]],
        );
        assert_eq!(h.value(1, 1), 30.0);
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn heatmap_rejects_ragged_rows() {
        let _ = Heatmap::new(vec!["a".into()], vec!["x".into(), "y".into()], vec![vec![1.0]]);
    }

    #[test]
    fn render_includes_all_parts() {
        let fig = FigureData::lines(
            "fig5a",
            "Grid World inference",
            "success rate (%) vs BER",
            vec![Series::new("stuck-at-1", vec![(0.001, 90.0)])],
        );
        let text = fig.render();
        assert!(text.contains("fig5a"));
        assert!(text.contains("stuck-at-1"));
        assert!(text.contains("90.0"));
        assert_eq!(text, fig.to_string());

        let facts = FigureData::facts("fig2b", "bit stats", vec![("zero bits (%)".into(), 76.1)]);
        assert!(facts.render().contains("zero bits"));

        let heat = FigureData::heatmap(
            "fig2a",
            "training heatmap",
            "success vs (BER, episode)",
            Heatmap::new(vec!["0.1%".into()], vec!["0".into()], vec![vec![97.0]]),
        );
        assert!(heat.render().contains("97.00"));
    }
}

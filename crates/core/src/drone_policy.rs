//! Drone policy construction: a clearance-based heuristic pilot, offline
//! behaviour-cloning pre-training of the C3F2 network, and online
//! fine-tuning — the substitute for the paper's offline Double-DQN training
//! followed by transfer-learning fine-tuning of the last two layers.
//!
//! Training the full C3F2 network with reinforcement learning end-to-end is
//! far outside a laptop budget, and is not what the fault study needs: it
//! needs a *competent trained policy whose behaviour is encoded in its
//! weights*, so that corrupting those weights degrades flight quality. We
//! obtain one by behaviour-cloning a clearance-based pilot into the C3F2
//! topology (training the fully-connected tail on frames gathered from the
//! simulator), then optionally fine-tuning the same tail online with Double
//! DQN exactly as the paper's transfer-learning setup does.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use navft_dronesim::{ActionSpace, DepthCamera, DroneSim, DroneWorld};
use navft_nn::{C3f2Config, ForwardTrace, Network, Tensor};
use navft_rl::{DqnAgent, DqnConfig, EpsilonSchedule, VisionEnvironment};

use crate::DroneParams;

/// The clearance-based heuristic pilot: reads the proximity frame, steers
/// away from the side with more nearby obstruction and slows down when the
/// path ahead is blocked.
///
/// Returns an action index in the 25-way [`ActionSpace`].
pub fn heuristic_action(frame: &Tensor) -> usize {
    let shape = frame.shape();
    let (h, w) = (shape[shape.len() - 2], shape[shape.len() - 1]);
    let data = frame.data();
    // Use the middle band of rows of the first channel.
    let row_lo = h / 3;
    let row_hi = (2 * h) / 3 + 1;
    let mut thirds = [0.0f32; 3];
    let mut counts = [0usize; 3];
    for row in row_lo..row_hi {
        for col in 0..w {
            let third = (col * 3 / w).min(2);
            thirds[third] += data[row * w + col];
            counts[third] += 1;
        }
    }
    for (sum, count) in thirds.iter_mut().zip(counts.iter()) {
        if *count > 0 {
            *sum /= *count as f32;
        }
    }
    let (left, centre, right) = (thirds[0], thirds[1], thirds[2]);

    // Yaw bin: 0/1 turn left, 2 straight, 3/4 turn right (higher proximity on
    // a side pushes the drone away from it).
    let yaw_bin = if centre < 0.25 && (left - right).abs() < 0.1 {
        2
    } else if right > left {
        if right - left > 0.2 {
            0
        } else {
            1
        }
    } else if left - right > 0.2 {
        4
    } else {
        3
    };
    // Speed bin: full speed when the centre is clear, crawl when blocked.
    let openness = (1.0 - centre).clamp(0.0, 1.0);
    let move_bin = ((openness * 4.0).round() as usize).min(4);
    ActionSpace::encode(yaw_bin, move_bin)
}

/// A behaviour-cloning dataset: frames labelled with the heuristic pilot's
/// actions, gathered by rolling the pilot out in `world`.
pub fn gather_pilot_dataset(
    world: &DroneWorld,
    camera: DepthCamera,
    steps: usize,
    max_episode_steps: usize,
    seed: u64,
) -> Vec<(Tensor, usize)> {
    let mut sim = DroneSim::new(world.clone(), camera, max_episode_steps);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut dataset = Vec::with_capacity(steps);
    let mut frame = sim.reset();
    for _ in 0..steps {
        let mut action = heuristic_action(&frame);
        // Small exploration noise diversifies the visited states.
        if rng.gen_bool(0.1) {
            action = rng.gen_range(0..ActionSpace::COUNT);
        }
        dataset.push((frame.clone(), heuristic_action(&frame)));
        let transition = sim.step(action);
        frame = if transition.terminal { sim.reset() } else { transition.observation };
    }
    dataset
}

/// Pre-trains the scaled C3F2 policy by behaviour-cloning the heuristic pilot
/// in `world`, then quantizes its weights to `Q(1,4,11)`.
pub fn train_drone_policy(world: &DroneWorld, params: &DroneParams, seed: u64) -> Network {
    let config = C3f2Config::scaled();
    let camera = DepthCamera::scaled();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut network = config.build(&mut rng);
    let dataset =
        gather_pilot_dataset(world, camera, params.clone_rollout_steps, 200, seed ^ 0xD0E);

    let trainable_from = config.first_fc_layer();
    let lr = 0.02;
    // One trace and one gradient buffer serve every SGD step of the cloning
    // run — the traced pass overwrites them in place instead of reallocating
    // the per-layer activations.
    let mut trace = ForwardTrace::new();
    let mut grad = Vec::new();
    for _epoch in 0..params.clone_sgd_epochs {
        for (frame, action) in &dataset {
            network.forward_traced_into(frame, &mut trace);
            let output = trace.output().data();
            // Regression targets: 1 for the pilot's action, 0 elsewhere.
            grad.clear();
            grad.extend(output.iter().enumerate().map(|(i, &q)| {
                let target = if i == *action { 1.0 } else { 0.0 };
                2.0 * (q - target) / output.len() as f32
            }));
            network.backward_tail(&trace, &grad, lr, trainable_from);
        }
    }
    network.quantize_weights(navft_qformat::QFormat::Q4_11);
    network
}

/// Wraps a drone policy network in a Double-DQN agent configured for online
/// fine-tuning of the fully-connected tail (the paper's transfer-learning
/// stage).
pub fn drone_agent(network: Network, steady_episodes: usize) -> DqnAgent {
    let config = C3f2Config::scaled();
    let input_shape = config.input_shape().to_vec();
    DqnAgent::new(
        network,
        &input_shape,
        EpsilonSchedule::new(0.3, 0.02, 0.02f64.powf(1.0 / steady_episodes.max(1) as f64)),
        DqnConfig::drone(config.first_fc_layer()),
    )
}

/// Measures how well the heuristic pilot itself flies in `world` (an upper
/// reference for cloned policies).
pub fn heuristic_flight_distance(world: &DroneWorld, max_steps: usize, episodes: usize) -> f64 {
    let mut sim = DroneSim::new(world.clone(), DepthCamera::scaled(), max_steps);
    let mut total = 0.0f64;
    for _ in 0..episodes {
        let mut frame = sim.reset();
        for _ in 0..max_steps {
            let transition = sim.step(heuristic_action(&frame));
            total += f64::from(transition.distance);
            frame = transition.observation;
            if transition.terminal {
                break;
            }
        }
    }
    total / episodes.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use navft_rl::{evaluate_network_vision, InferenceFaultMode};

    #[test]
    fn heuristic_prefers_to_steer_away_from_the_blocked_side() {
        // A frame whose right half is very close (bright) and left half clear.
        let mut frame = Tensor::zeros(&[1, 9, 9]);
        for row in 0..9 {
            for col in 5..9 {
                frame.set(&[0, row, col], 0.9);
            }
        }
        let action = heuristic_action(&frame);
        let yaw_bin = action / 5;
        assert!(yaw_bin <= 1, "should turn left, got yaw bin {yaw_bin}");

        // Mirror image: should turn right.
        let mut frame = Tensor::zeros(&[1, 9, 9]);
        for row in 0..9 {
            for col in 0..4 {
                frame.set(&[0, row, col], 0.9);
            }
        }
        let action = heuristic_action(&frame);
        assert!(action / 5 >= 3, "should turn right");

        // Clear view: full speed ahead.
        let clear = Tensor::zeros(&[1, 9, 9]);
        let action = heuristic_action(&clear);
        assert_eq!(action / 5, 2);
        assert_eq!(action % 5, 4);
    }

    #[test]
    fn heuristic_pilot_flies_a_reasonable_distance() {
        let world = DroneWorld::indoor_long();
        let distance = heuristic_flight_distance(&world, 200, 2);
        assert!(distance > 10.0, "heuristic pilot flew only {distance} m");
    }

    #[test]
    fn dataset_gathering_produces_the_requested_size() {
        let world = DroneWorld::indoor_long();
        let dataset = gather_pilot_dataset(&world, DepthCamera::scaled(), 50, 100, 3);
        assert_eq!(dataset.len(), 50);
        assert!(dataset.iter().all(|(_, a)| *a < ActionSpace::COUNT));
    }

    #[test]
    #[ignore = "expensive: trains the cloned drone policy (run with --ignored)"]
    fn cloned_policy_flies_a_usable_distance() {
        let world = DroneWorld::indoor_long();
        let params = crate::Scale::Quick.drone();
        let trained = train_drone_policy(&world, &params, 5);
        let mut rng = SmallRng::seed_from_u64(99);
        let mut sim = DroneSim::new(world.clone(), DepthCamera::scaled(), 150);
        let trained_result = evaluate_network_vision(
            &mut sim,
            &trained,
            3,
            150,
            &InferenceFaultMode::None,
            &mut rng,
        );
        assert!(
            trained_result.mean_distance > 5.0,
            "cloned policy flew only {} m",
            trained_result.mean_distance
        );
    }
}

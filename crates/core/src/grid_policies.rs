//! Helpers for training Grid World policies (tabular and NN-based) under a
//! fault plan, and for measuring the resulting success rates.

use rand::rngs::SmallRng;
use rand::SeedableRng;

use navft_gridworld::{GridWorld, ObstacleDensity};
use navft_nn::{mlp, EngineConfig, Network};
use navft_rl::{
    evaluate_policy_discrete_batched, evaluate_tabular, trainer, DiscreteEnvironment, DqnAgent,
    DqnConfig, DummyVecEnv, EpsilonSchedule, EvalResult, FaultPlan, InferenceFaultMode,
    TabularAgent, TrainingTrace,
};

use crate::GridParams;

/// Which Grid World policy family an experiment uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// Tabular Q-learning over a quantized Q-table.
    Tabular,
    /// Neural-network Q-function approximation (a small MLP).
    Network,
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            PolicyKind::Tabular => "tabular",
            PolicyKind::Network => "NN",
        })
    }
}

/// The result of one Grid World training run.
#[derive(Debug, Clone)]
pub struct GridTrainingRun {
    /// The per-episode training trace.
    pub trace: TrainingTrace,
    /// The trained tabular agent, when [`PolicyKind::Tabular`] was used.
    pub tabular: Option<TabularAgent>,
    /// The trained DQN agent, when [`PolicyKind::Network`] was used.
    pub network: Option<DqnAgent>,
    /// Greedy success rate of the final policy, measured over
    /// [`GridParams::eval_episodes`] fault-free evaluation episodes.
    pub final_success_rate: f64,
}

/// The MLP topology used for the NN-based Grid World policy
/// (one-hot state → 32 hidden units → 4 action values), quantized to the
/// 8-bit Grid World format.
pub fn grid_mlp(num_states: usize, num_actions: usize, seed: u64) -> Network {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut network = mlp(&[num_states, 32, num_actions], &mut rng);
    network.quantize_weights(navft_qformat::QFormat::Q3_4);
    network
}

/// The DQN configuration used for the Grid World NN policy.
pub fn grid_dqn_config() -> DqnConfig {
    DqnConfig {
        gamma: 0.95,
        learning_rate: 0.1,
        batch_size: 4,
        replay_capacity: 2048,
        target_sync_every: 10,
        double_dqn: false,
        trainable_from: 0,
    }
}

/// The rollout batch width used for Grid World policy evaluation: enough rows
/// to amortize the per-sweep engine overhead, capped so scratch buffers stay
/// small, and never wider than the episode count.
///
/// The width is derived from the experiment parameters alone (never from the
/// engine config), so artifacts are byte-identical at any thread count.
fn eval_batch_width(params: &GridParams) -> usize {
    params.eval_episodes.clamp(1, 64)
}

/// Trains a Grid World policy of the given kind under `plan` and returns the
/// trace, the trained agent and its final fault-free success rate.
///
/// `observer` is the per-episode mitigation hook (use
/// [`navft_rl::trainer::no_mitigation`] for unmitigated training).
pub fn train_grid_policy<O>(
    kind: PolicyKind,
    density: ObstacleDensity,
    params: &GridParams,
    plan: &FaultPlan,
    seed: u64,
    observer: O,
) -> GridTrainingRun
where
    O: FnMut(usize, &TrainingTrace, &mut EpsilonSchedule),
{
    train_grid_policy_cfg(kind, density, params, plan, seed, observer, EngineConfig::default())
}

/// [`train_grid_policy`] with an explicit inference [`EngineConfig`] for the
/// final policy evaluation, which runs as a vectorized rollout
/// ([`navft_rl::evaluate_policy_discrete_batched`]). The result is bit-identical
/// to the serial evaluator at any config.
pub fn train_grid_policy_cfg<O>(
    kind: PolicyKind,
    density: ObstacleDensity,
    params: &GridParams,
    plan: &FaultPlan,
    seed: u64,
    observer: O,
    engine: EngineConfig,
) -> GridTrainingRun
where
    O: FnMut(usize, &TrainingTrace, &mut EpsilonSchedule),
{
    // Training uses exploring starts so Q-learning reliably covers the grid;
    // evaluation always starts from the source cell.
    let mut world = GridWorld::with_density(density).with_exploring_starts(seed ^ 0xE5);
    let mut eval_world = GridWorld::with_density(density);
    let mut rng = SmallRng::seed_from_u64(seed);
    let config = trainer::TrainingConfig::new(params.training_episodes, params.max_steps);
    match kind {
        PolicyKind::Tabular => {
            let mut agent = TabularAgent::new(
                navft_rl::QTable::new(
                    world.num_states(),
                    world.num_actions(),
                    navft_qformat::QFormat::Q3_4,
                )
                .with_stochastic_rounding(seed ^ 0x51),
                EpsilonSchedule::for_training(params.epsilon_steady_episodes),
                0.2,
                0.95,
            );
            let trace =
                trainer::train_tabular(&mut world, &mut agent, config, plan, &mut rng, observer);
            let result = evaluate_tabular(
                &mut eval_world,
                &agent.table,
                params.eval_episodes,
                params.max_steps,
                &InferenceFaultMode::None,
                &mut rng,
            );
            GridTrainingRun {
                trace,
                tabular: Some(agent),
                network: None,
                final_success_rate: result.success_rate,
            }
        }
        PolicyKind::Network => {
            let network = grid_mlp(world.num_states(), world.num_actions(), seed ^ 0x5EED);
            let mut agent = DqnAgent::new(
                network,
                &[world.num_states()],
                EpsilonSchedule::for_training(params.epsilon_steady_episodes),
                grid_dqn_config(),
            );
            let trace = trainer::train_dqn_discrete(
                &mut world, &mut agent, config, plan, &mut rng, observer,
            );
            let mut venv = DummyVecEnv::from_prototype(&eval_world, eval_batch_width(params));
            let result = evaluate_policy_discrete_batched(
                &mut venv,
                agent.network(),
                params.eval_episodes,
                params.max_steps,
                &InferenceFaultMode::None,
                &mut rng,
                engine,
            );
            GridTrainingRun {
                trace,
                tabular: None,
                network: Some(agent),
                final_success_rate: result.success_rate,
            }
        }
    }
}

/// Trains a *clean* (fault-free) policy — the starting point of every
/// inference-time experiment.
pub fn train_clean_policy(
    kind: PolicyKind,
    density: ObstacleDensity,
    params: &GridParams,
    seed: u64,
) -> GridTrainingRun {
    train_clean_policy_cfg(kind, density, params, seed, EngineConfig::default())
}

/// [`train_clean_policy`] with an explicit inference [`EngineConfig`] for the
/// final policy evaluation.
pub fn train_clean_policy_cfg(
    kind: PolicyKind,
    density: ObstacleDensity,
    params: &GridParams,
    seed: u64,
    engine: EngineConfig,
) -> GridTrainingRun {
    train_grid_policy_cfg(
        kind,
        density,
        params,
        &FaultPlan::none(),
        seed,
        trainer::no_mitigation(),
        engine,
    )
}

/// Evaluates a trained run's policy under an inference fault mode.
pub fn evaluate_grid_policy(
    run: &GridTrainingRun,
    density: ObstacleDensity,
    params: &GridParams,
    fault: &InferenceFaultMode,
    seed: u64,
) -> EvalResult {
    evaluate_grid_policy_cfg(run, density, params, fault, seed, EngineConfig::default())
}

/// [`evaluate_grid_policy`] with an explicit inference [`EngineConfig`].
///
/// Network policies are evaluated as a vectorized rollout: the episode
/// repetitions become batch rows of a [`DummyVecEnv`], so every decision step
/// is one [`navft_nn::NetworkBase::forward_batch_into_cfg`] sweep. The result
/// is bit-identical to the serial evaluator at any batch width or config.
pub fn evaluate_grid_policy_cfg(
    run: &GridTrainingRun,
    density: ObstacleDensity,
    params: &GridParams,
    fault: &InferenceFaultMode,
    seed: u64,
    engine: EngineConfig,
) -> EvalResult {
    let mut world = GridWorld::with_density(density);
    let mut rng = SmallRng::seed_from_u64(seed);
    if let Some(agent) = &run.tabular {
        evaluate_tabular(
            &mut world,
            &agent.table,
            params.eval_episodes,
            params.max_steps,
            fault,
            &mut rng,
        )
    } else if let Some(agent) = &run.network {
        let mut venv = DummyVecEnv::from_prototype(&world, eval_batch_width(params));
        evaluate_policy_discrete_batched(
            &mut venv,
            agent.network(),
            params.eval_episodes,
            params.max_steps,
            fault,
            &mut rng,
            engine,
        )
    } else {
        EvalResult::default()
    }
}

/// The number of policy-storage words of a trained run (Q-table entries or
/// network weights) — the population faults are sampled over.
pub fn policy_word_count(run: &GridTrainingRun) -> usize {
    if let Some(agent) = &run.tabular {
        agent.table.len()
    } else if let Some(agent) = &run.network {
        agent.network().weight_count()
    } else {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    #[test]
    fn tabular_smoke_training_produces_a_trace_and_policy() {
        let params = Scale::Smoke.grid();
        let run = train_clean_policy(PolicyKind::Tabular, ObstacleDensity::Low, &params, 1);
        assert_eq!(run.trace.len(), params.training_episodes);
        assert!(run.tabular.is_some());
        assert!((0.0..=1.0).contains(&run.final_success_rate));
        assert_eq!(policy_word_count(&run), 400);
    }

    #[test]
    #[ignore = "expensive: full-length Grid World training (run with --ignored)"]
    fn tabular_quick_training_converges() {
        let params = Scale::Quick.grid();
        let run = train_clean_policy(PolicyKind::Tabular, ObstacleDensity::Middle, &params, 1);
        assert!(run.final_success_rate > 0.9, "success {}", run.final_success_rate);
    }

    #[test]
    fn network_smoke_training_produces_a_policy() {
        let params = Scale::Smoke.grid();
        let run = train_clean_policy(PolicyKind::Network, ObstacleDensity::Low, &params, 2);
        assert!(run.network.is_some());
        assert!(policy_word_count(&run) > 1000);
    }

    #[test]
    fn policy_kind_display() {
        assert_eq!(PolicyKind::Tabular.to_string(), "tabular");
        assert_eq!(PolicyKind::Network.to_string(), "NN");
    }
}

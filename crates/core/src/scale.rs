//! Experiment scaling: how big a campaign to run.
//!
//! The paper's campaigns (1000 training episodes × 1000 repetitions per cell)
//! take cluster-scale compute. Every experiment driver in this crate accepts a
//! [`Scale`] so the same code can run as a seconds-long smoke test, a
//! minutes-long laptop regeneration (the default for the `figures` binary and
//! the benches), or a paper-faithful campaign.

/// How much compute to spend on an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Scale {
    /// Tiny parameters for unit/integration tests (seconds).
    Smoke,
    /// Laptop-sized parameters used by the figure-regeneration harness
    /// (minutes). The default.
    #[default]
    Quick,
    /// Parameters close to the paper's campaigns (hours).
    Paper,
}

impl Scale {
    /// Parameters for Grid World experiments at this scale.
    pub fn grid(&self) -> GridParams {
        match self {
            Scale::Smoke => GridParams {
                training_episodes: 150,
                max_steps: 60,
                repetitions: 2,
                eval_episodes: 30,
                bit_error_rates: vec![0.002, 0.01],
                injection_points: vec![0.1, 0.9],
                epsilon_steady_episodes: 90,
            },
            Scale::Quick => GridParams {
                training_episodes: 1000,
                max_steps: 100,
                repetitions: 5,
                eval_episodes: 100,
                bit_error_rates: vec![0.001, 0.002, 0.005, 0.008, 0.01],
                injection_points: vec![0.0, 0.3, 0.6, 0.95],
                epsilon_steady_episodes: 600,
            },
            Scale::Paper => GridParams {
                training_episodes: 1000,
                max_steps: 100,
                repetitions: 1000,
                eval_episodes: 1000,
                bit_error_rates: vec![
                    0.001, 0.002, 0.003, 0.004, 0.005, 0.006, 0.007, 0.008, 0.009, 0.01,
                ],
                injection_points: vec![0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0],
                epsilon_steady_episodes: 600,
            },
        }
    }

    /// Parameters for drone experiments at this scale.
    pub fn drone(&self) -> DroneParams {
        match self {
            Scale::Smoke => DroneParams {
                repetitions: 2,
                eval_episodes: 2,
                max_steps: 40,
                finetune_episodes: 4,
                clone_rollout_steps: 200,
                clone_sgd_epochs: 3,
                bit_error_rates: vec![1e-3, 1e-2],
            },
            Scale::Quick => DroneParams {
                repetitions: 5,
                eval_episodes: 5,
                max_steps: 150,
                finetune_episodes: 20,
                clone_rollout_steps: 800,
                clone_sgd_epochs: 10,
                bit_error_rates: vec![1e-5, 1e-4, 1e-3, 1e-2, 1e-1],
            },
            Scale::Paper => DroneParams {
                repetitions: 100,
                eval_episodes: 20,
                max_steps: 400,
                finetune_episodes: 200,
                clone_rollout_steps: 4000,
                clone_sgd_epochs: 30,
                bit_error_rates: vec![1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 1e-1],
            },
        }
    }

    /// Number of worker threads to use for campaign repetitions.
    pub fn threads(&self) -> usize {
        match self {
            Scale::Smoke => 1,
            _ => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4),
        }
    }

    /// The worker-thread count with an explicit override (the `figures`
    /// binary's `--jobs N`): a positive `jobs` wins, otherwise the scale's
    /// default [`Scale::threads`] applies.
    ///
    /// This count is *trial-level* parallelism: how many campaign trials run
    /// concurrently. It composes multiplicatively with the per-trial
    /// inference engine's `EngineConfig::threads`
    /// ([`crate::sweep::RunOptions::engine`]) — each trial may additionally
    /// shard its batched rollout sweeps, so up to `jobs × engine.threads`
    /// threads can be live at once. Neither knob affects results or
    /// artifacts, only wall-clock.
    pub fn threads_or(&self, jobs: Option<usize>) -> usize {
        match jobs {
            Some(n) if n > 0 => n,
            _ => self.threads(),
        }
    }
}

/// Grid World campaign parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct GridParams {
    /// Number of training episodes per run.
    pub training_episodes: usize,
    /// Maximum steps per episode.
    pub max_steps: usize,
    /// Repetitions per campaign cell.
    pub repetitions: usize,
    /// Episodes used to evaluate a trained policy's success rate.
    pub eval_episodes: usize,
    /// The BER sweep.
    pub bit_error_rates: Vec<f64>,
    /// Fault-injection episodes, as fractions of the training length.
    pub injection_points: Vec<f64>,
    /// Episodes until the ε schedule reaches steady exploitation.
    pub epsilon_steady_episodes: usize,
}

impl GridParams {
    /// The absolute episode indices corresponding to
    /// [`GridParams::injection_points`].
    pub fn injection_episodes(&self) -> Vec<usize> {
        self.injection_points
            .iter()
            .map(|&f| {
                ((f * self.training_episodes as f64) as usize).min(self.training_episodes - 1)
            })
            .collect()
    }
}

/// Drone campaign parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct DroneParams {
    /// Repetitions per campaign cell.
    pub repetitions: usize,
    /// Flight episodes per evaluation.
    pub eval_episodes: usize,
    /// Maximum steps per flight.
    pub max_steps: usize,
    /// Online fine-tuning episodes (Fig. 7a).
    pub finetune_episodes: usize,
    /// Steps of heuristic-pilot rollout used for offline behaviour cloning.
    pub clone_rollout_steps: usize,
    /// SGD epochs over the cloned dataset.
    pub clone_sgd_epochs: usize,
    /// The BER sweep.
    pub bit_error_rates: Vec<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_order_campaign_sizes() {
        let smoke = Scale::Smoke.grid();
        let quick = Scale::Quick.grid();
        let paper = Scale::Paper.grid();
        assert!(smoke.repetitions < quick.repetitions);
        assert!(quick.repetitions < paper.repetitions);
        assert!(smoke.training_episodes < paper.training_episodes);
        assert!(quick.epsilon_steady_episodes < quick.training_episodes);
        assert_eq!(paper.training_episodes, 1000);
        assert_eq!(paper.repetitions, 1000);
    }

    #[test]
    fn injection_episodes_stay_in_range() {
        for scale in [Scale::Smoke, Scale::Quick, Scale::Paper] {
            let grid = scale.grid();
            for e in grid.injection_episodes() {
                assert!(e < grid.training_episodes);
            }
        }
    }

    #[test]
    fn drone_params_scale_with_the_setting() {
        assert!(Scale::Smoke.drone().max_steps < Scale::Paper.drone().max_steps);
        assert_eq!(Scale::Paper.drone().repetitions, 100);
        assert!(Scale::Quick.drone().bit_error_rates.len() >= 5);
    }

    #[test]
    fn default_scale_is_quick_and_threads_positive() {
        assert_eq!(Scale::default(), Scale::Quick);
        assert!(Scale::Smoke.threads() >= 1);
        assert!(Scale::Quick.threads() >= 1);
    }

    #[test]
    fn jobs_override_beats_the_scale_default() {
        assert_eq!(Scale::Smoke.threads_or(Some(8)), 8);
        assert_eq!(Scale::Quick.threads_or(Some(1)), 1);
        assert_eq!(Scale::Smoke.threads_or(Some(0)), Scale::Smoke.threads());
        assert_eq!(Scale::Smoke.threads_or(None), Scale::Smoke.threads());
    }
}

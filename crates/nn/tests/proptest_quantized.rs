//! Property tests pinning the native fixed-point kernels: for *arbitrary*
//! layer stacks the native forward pass must stay within the format's
//! resolution of the `f32` fixed-point simulation, batched and serial native
//! passes must agree bit for bit, and for parameters and inputs already on
//! the quantization grid (where `f32` arithmetic is exact) the two backends
//! must agree *exactly*.

use navft_nn::layer::{Conv2d, Linear, MaxPool2d};
use navft_nn::{mlp, Layer, Network, QNetwork, QScratch, QTensor, Tensor};
use navft_qformat::{QFormat, QValue};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const FORMATS: [QFormat; 4] = [QFormat::Q3_4, QFormat::Q4_11, QFormat::Q2_5, QFormat::Q2_13];

fn format_for(index: usize) -> QFormat {
    FORMATS[index % FORMATS.len()]
}

/// Builds an arbitrary convolutional stack (conv/relu/pool prefix, linear
/// tail) from a seed, returning the network and its input shape.
fn arbitrary_conv_net(seed: u64) -> (Network, Vec<usize>) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let channels = 1 + rng.gen_range(0usize..3);
    let size = 7 + rng.gen_range(0usize..6);
    let kernel = 2 + rng.gen_range(0usize..2);
    let filters = 1 + rng.gen_range(0usize..4);
    let conv = Conv2d::new(channels, filters, kernel, 1, &mut rng);
    let after_conv = conv.output_size(size);
    let mut layers = vec![Layer::Conv2d(conv), Layer::Relu];
    let mut spatial = after_conv;
    if spatial >= 2 && rng.gen_bool(0.5) {
        layers.push(Layer::MaxPool2d(MaxPool2d::new(2, 2)));
        spatial = (spatial - 2) / 2 + 1;
    }
    layers.push(Layer::Flatten);
    let flat = filters * spatial * spatial;
    let hidden = 1 + rng.gen_range(0usize..8);
    layers.push(Layer::Linear(Linear::new(flat, hidden, &mut rng)));
    layers.push(Layer::Relu);
    layers.push(Layer::Linear(Linear::new(hidden, 1 + rng.gen_range(0usize..5), &mut rng)));
    (Network::new(layers), vec![channels, size, size])
}

/// Builds an arbitrary MLP from a seed, returning the network and its input
/// length.
fn arbitrary_mlp(seed: u64) -> (Network, usize) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let depth = 2 + rng.gen_range(0usize..3);
    let mut sizes = Vec::with_capacity(depth);
    for _ in 0..depth {
        sizes.push(1 + rng.gen_range(0usize..12));
    }
    let input = sizes[0];
    (mlp(&sizes, &mut rng), input)
}

/// Asserts every native output word is within one quantization step of the
/// `f32` simulation's output.
fn assert_within_resolution(native: &QTensor, simulated: &Tensor, format: QFormat, tag: &str) {
    let lsb = format.resolution();
    let dequantized = native.dequantize();
    assert_eq!(dequantized.len(), simulated.len());
    for (i, (n, s)) in dequantized.data().iter().zip(simulated.data().iter()).enumerate() {
        assert!(
            (n - s).abs() <= lsb,
            "{tag} element {i}: native {n} vs simulated {s} diverge past {lsb}"
        );
    }
}

proptest! {
    #[test]
    fn native_mlp_forward_matches_f32_within_resolution(seed in 0u64..160) {
        let (net, input_len) = arbitrary_mlp(seed);
        let format = format_for(seed as usize);
        let qnet = QNetwork::quantize(&net, format);
        let reference = qnet.dequantize();
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x1A5);
        let input = Tensor::uniform(&[input_len], 1.0, &mut rng);
        let qinput = QTensor::quantize(&input, format);
        let native = qnet.forward(&qinput);
        let simulated = reference.forward(&qinput.dequantize());
        assert_within_resolution(&native, &simulated, format, "mlp");
    }

    #[test]
    fn native_conv_forward_matches_f32_within_resolution(seed in 0u64..48) {
        let (net, in_shape) = arbitrary_conv_net(seed);
        let format = format_for(seed as usize);
        let qnet = QNetwork::quantize(&net, format);
        let reference = qnet.dequantize();
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xC0);
        let input = Tensor::uniform(&in_shape, 1.0, &mut rng);
        let qinput = QTensor::quantize(&input, format);
        let native = qnet.forward(&qinput);
        let simulated = reference.forward(&qinput.dequantize());
        assert_within_resolution(&native, &simulated, format, "conv");
    }

    #[test]
    fn grid_aligned_inputs_give_exact_equality(seed in 0u64..200) {
        // Parameters and inputs drawn directly as raw Q(1,3,4) words with a
        // small fan-in: every f32 product and partial sum is then exactly
        // representable (products are multiples of 2^-8 below 2^14, sums stay
        // below 2^24 of them), so the float simulation commits no rounding
        // of its own and the two backends must agree bit for bit.
        let mut rng = SmallRng::seed_from_u64(seed);
        let format = QFormat::Q3_4;
        let in_features = 1 + rng.gen_range(0usize..32);
        let out_features = 1 + rng.gen_range(0usize..8);
        let raw = |rng: &mut SmallRng| {
            QValue::from_raw(rng.gen_range(-128i32..=127), format).to_f32()
        };
        let weights: Vec<f32> = (0..in_features * out_features).map(|_| raw(&mut rng)).collect();
        let bias: Vec<f32> = (0..out_features).map(|_| raw(&mut rng)).collect();
        let net = Network::new(vec![Layer::Linear(Linear {
            in_features,
            out_features,
            weights,
            bias,
        })]);
        let input = Tensor::from_vec(
            &[in_features],
            (0..in_features).map(|_| raw(&mut rng)).collect(),
        );
        let qnet = QNetwork::quantize(&net, format);
        let reference = qnet.dequantize();
        let native = qnet.forward(&QTensor::quantize(&input, format));
        let simulated = reference.forward(&input);
        let simulated_raw: Vec<i32> =
            simulated.data().iter().map(|&v| QValue::quantize(v, format).raw()).collect();
        prop_assert_eq!(native.words(), simulated_raw.as_slice());
    }

    #[test]
    fn batched_native_pass_equals_serial_bitwise(seed in 0u64..64, batch in 1usize..6) {
        let (net, in_shape) = arbitrary_conv_net(seed);
        let format = format_for(seed as usize + 1);
        let qnet = QNetwork::quantize(&net, format);
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xBA7);
        let inputs: Vec<QTensor> = (0..batch)
            .map(|_| QTensor::quantize(&Tensor::uniform(&in_shape, 1.0, &mut rng), format))
            .collect();
        let mut scratch = QScratch::new();
        let batched = qnet.forward_batch(&inputs, &mut scratch);
        for (input, out) in inputs.iter().zip(batched.iter()) {
            prop_assert_eq!(out.words(), qnet.forward(input).words());
        }
    }

    #[test]
    fn a_reused_qscratch_never_leaks_state_between_networks(seed in 0u64..48) {
        // Run network A, then network B, then A again on the same scratch:
        // the third run must reproduce the first bit for bit.
        let (net_a, len_a) = arbitrary_mlp(seed);
        let (net_b, len_b) = arbitrary_mlp(seed ^ 0xB);
        let format = format_for(seed as usize + 2);
        let qa = QNetwork::quantize(&net_a, format);
        let qb = QNetwork::quantize(&net_b, format);
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x5C);
        let input_a = QTensor::quantize(&Tensor::uniform(&[len_a], 1.0, &mut rng), format);
        let input_b = QTensor::quantize(&Tensor::uniform(&[len_b], 1.0, &mut rng), format);
        let mut scratch = QScratch::new();
        let first = qa.forward_batch(std::slice::from_ref(&input_a), &mut scratch);
        let _ = qb.forward_batch(std::slice::from_ref(&input_b), &mut scratch);
        let again = qa.forward_batch(std::slice::from_ref(&input_a), &mut scratch);
        prop_assert_eq!(first[0].words(), again[0].words());
    }

    #[test]
    fn quantizing_a_dequantized_qtensor_is_the_identity(seed in 0u64..200) {
        // Inputs already on the quantization grid survive the f32 round trip
        // exactly: the native backend's ingest loses nothing on them.
        let mut rng = SmallRng::seed_from_u64(seed);
        let format = format_for(seed as usize + 3);
        let words: Vec<i32> = (0..16)
            .map(|_| rng.gen_range(format.min_raw()..=format.max_raw()))
            .collect();
        let q = QTensor::from_raw_vec(&[16], words, format);
        let roundtrip = QTensor::quantize(&q.dequantize(), format);
        prop_assert_eq!(q.words(), roundtrip.words());
    }
}

//! Property tests pinning the generic inference core and its blocked GEMM
//! path:
//!
//! * arbitrary layer stacks through the generic batched engine are
//!   **bit-identical** to the pre-refactor per-sample `f32` kernels (the
//!   naive conv/linear loop bodies, still callable as `Layer::forward`);
//! * for parameters and inputs on the quantization grid the two backends
//!   agree **exactly** through the generic engine;
//! * the blocked im2col/im2row GEMM path equals the naive kernel path **bit
//!   for bit** on both backends at batch sizes {1, 7, 64}.

use navft_nn::layer::{Conv2d, Linear, MaxPool2d};
use navft_nn::{
    mlp, I8Network, I8Scratch, I8Tensor, Layer, Network, NoHooks, QNetwork, QScratch, QTensor,
    Scratch, Tensor,
};
use navft_qformat::{QFormat, QValue};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const FORMATS: [QFormat; 4] = [QFormat::Q3_4, QFormat::Q4_11, QFormat::Q2_5, QFormat::Q2_13];

/// The batch sizes the GEMM-vs-naive contract is pinned at.
const BATCHES: [usize; 3] = [1, 7, 64];

fn format_for(index: usize) -> QFormat {
    FORMATS[index % FORMATS.len()]
}

/// Builds an arbitrary convolutional stack (conv/relu/pool prefix, linear
/// tail) from a seed, returning the network and its input shape.
fn arbitrary_conv_net(seed: u64) -> (Network, Vec<usize>) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let channels = 1 + rng.gen_range(0usize..3);
    let size = 7 + rng.gen_range(0usize..6);
    let kernel = 2 + rng.gen_range(0usize..2);
    let stride = 1 + rng.gen_range(0usize..2);
    let filters = 1 + rng.gen_range(0usize..4);
    let conv = Conv2d::new(channels, filters, kernel, stride, &mut rng);
    let after_conv = conv.output_size(size);
    let mut layers = vec![Layer::Conv2d(conv), Layer::Relu];
    let mut spatial = after_conv;
    if spatial >= 2 && rng.gen_bool(0.5) {
        layers.push(Layer::MaxPool2d(MaxPool2d::new(2, 2)));
        spatial = (spatial - 2) / 2 + 1;
    }
    layers.push(Layer::Flatten);
    let flat = filters * spatial * spatial;
    let hidden = 1 + rng.gen_range(0usize..8);
    layers.push(Layer::Linear(Linear::new(flat, hidden, &mut rng)));
    layers.push(Layer::Relu);
    layers.push(Layer::Linear(Linear::new(hidden, 1 + rng.gen_range(0usize..5), &mut rng)));
    (Network::new(layers), vec![channels, size, size])
}

fn batch_inputs(shape: &[usize], batch: usize, seed: u64) -> Vec<Tensor> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..batch).map(|_| Tensor::uniform(shape, 1.0, &mut rng)).collect()
}

proptest! {
    /// The generic engine (blocked GEMM and all) reproduces the pre-refactor
    /// per-sample f32 kernels bit for bit on arbitrary stacks.
    #[test]
    fn generic_engine_is_bit_identical_to_per_sample_f32_kernels(seed in 0u64..48) {
        let (net, in_shape) = arbitrary_conv_net(seed);
        let inputs = batch_inputs(&in_shape, 5, seed ^ 0xF0);
        let mut scratch = Scratch::new();
        let batched = net.forward_batch(&inputs, &mut scratch);
        for (input, out) in inputs.iter().zip(batched.iter()) {
            // `Network::forward` runs the naive per-layer kernels — the
            // pre-refactor loop bodies.
            prop_assert_eq!(out.data(), net.forward(input).data());
        }
    }

    /// The blocked GEMM path equals the naive kernel path bit for bit on the
    /// f32 backend at batches {1, 7, 64}.
    #[test]
    fn f32_gemm_path_equals_naive_path_at_pinned_batches(seed in 0u64..24) {
        let (net, in_shape) = arbitrary_conv_net(seed);
        for &batch in &BATCHES {
            let inputs = batch_inputs(&in_shape, batch, seed ^ batch as u64);
            let mut blocked = Scratch::new();
            net.forward_batch_into(&inputs, &mut blocked, &mut NoHooks);
            let mut naive = Scratch::new();
            net.forward_batch_naive_into(&inputs, &mut naive, &mut NoHooks);
            for b in 0..batch {
                prop_assert_eq!(blocked.row(b), naive.row(b), "batch {} row {}", batch, b);
            }
        }
    }

    /// The blocked GEMM path equals the naive kernel path bit for bit on the
    /// native raw-word backend at batches {1, 7, 64}.
    #[test]
    fn quantized_gemm_path_equals_naive_path_at_pinned_batches(seed in 0u64..24) {
        let (net, in_shape) = arbitrary_conv_net(seed);
        let format = format_for(seed as usize);
        let qnet = QNetwork::quantize(&net, format);
        for &batch in &BATCHES {
            let qinputs: Vec<QTensor> = batch_inputs(&in_shape, batch, seed ^ batch as u64)
                .iter()
                .map(|t| QTensor::quantize(t, format))
                .collect();
            let mut blocked = QScratch::new();
            qnet.forward_batch_into(&qinputs, &mut blocked, &mut NoHooks);
            let mut naive = QScratch::new();
            qnet.forward_batch_naive_into(&qinputs, &mut naive, &mut NoHooks);
            for b in 0..batch {
                prop_assert_eq!(blocked.row(b), naive.row(b), "batch {} row {}", batch, b);
            }
        }
    }

    /// The blocked GEMM path equals the naive kernel path bit for bit on the
    /// `i8` per-tensor affine backend at batches {1, 7, 64}.
    #[test]
    fn i8_gemm_path_equals_naive_path_at_pinned_batches(seed in 0u64..24) {
        let (net, in_shape) = arbitrary_conv_net(seed);
        let inet = I8Network::quantize(&net);
        for &batch in &BATCHES {
            let iinputs: Vec<I8Tensor> = batch_inputs(&in_shape, batch, seed ^ batch as u64)
                .iter()
                .map(|t| I8Tensor::quantize(t, inet.affine()))
                .collect();
            let mut blocked = I8Scratch::new();
            inet.forward_batch_into(&iinputs, &mut blocked, &mut NoHooks);
            let mut naive = I8Scratch::new();
            inet.forward_batch_naive_into(&iinputs, &mut naive, &mut NoHooks);
            for b in 0..batch {
                prop_assert_eq!(blocked.row(b), naive.row(b), "batch {} row {}", batch, b);
            }
        }
    }

    /// On-grid parameters and inputs with a small fan-in make f32 arithmetic
    /// exact, so the two backends must agree bit for bit *through the
    /// generic batched engine* (not just the per-sample kernels).
    #[test]
    fn generic_engine_backends_agree_exactly_on_grid(seed in 0u64..100) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let format = QFormat::Q3_4;
        let in_features = 1 + rng.gen_range(0usize..32);
        let hidden = 1 + rng.gen_range(0usize..8);
        let raw = |rng: &mut SmallRng| {
            QValue::from_raw(rng.gen_range(-128i32..=127), format).to_f32()
        };
        let weights: Vec<f32> = (0..in_features * hidden).map(|_| raw(&mut rng)).collect();
        let bias: Vec<f32> = (0..hidden).map(|_| raw(&mut rng)).collect();
        let net = Network::new(vec![Layer::Linear(Linear {
            in_features,
            out_features: hidden,
            weights,
            bias,
        })]);
        let qnet = QNetwork::quantize(&net, format);
        let reference = qnet.dequantize();
        let inputs: Vec<Tensor> = (0..7)
            .map(|_| {
                Tensor::from_vec(
                    &[in_features],
                    (0..in_features).map(|_| raw(&mut rng)).collect(),
                )
            })
            .collect();
        let qinputs: Vec<QTensor> =
            inputs.iter().map(|t| QTensor::quantize(t, format)).collect();
        let mut fscratch = Scratch::new();
        let f32_rows = reference.forward_batch(&inputs, &mut fscratch);
        let mut qscratch = QScratch::new();
        let q_rows = qnet.forward_batch(&qinputs, &mut qscratch);
        for (frow, qrow) in f32_rows.iter().zip(q_rows.iter()) {
            let f32_raw: Vec<i32> =
                frow.data().iter().map(|&v| QValue::quantize(v, format).raw()).collect();
            prop_assert_eq!(f32_raw.as_slice(), qrow.words());
        }
    }

    /// MLP-only stacks (the Grid World shape) through the generic engine:
    /// blocked == naive == per-sample on both backends.
    #[test]
    fn mlp_paths_agree_on_both_backends(seed in 0u64..32, batch in 1usize..9) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let sizes =
            [1 + rng.gen_range(0usize..12), 1 + rng.gen_range(0usize..12), 1 + rng.gen_range(0usize..6)];
        let net = mlp(&sizes, &mut rng);
        let inputs = batch_inputs(&[sizes[0]], batch, seed ^ 0xAB);
        let mut blocked = Scratch::new();
        net.forward_batch_into(&inputs, &mut blocked, &mut NoHooks);
        let mut naive = Scratch::new();
        net.forward_batch_naive_into(&inputs, &mut naive, &mut NoHooks);
        for (b, input) in inputs.iter().enumerate() {
            prop_assert_eq!(blocked.row(b), naive.row(b));
            prop_assert_eq!(blocked.row(b), net.forward(input).data());
        }
        let format = format_for(seed as usize);
        let qnet = QNetwork::quantize(&net, format);
        let qinputs: Vec<QTensor> =
            inputs.iter().map(|t| QTensor::quantize(t, format)).collect();
        let mut qblocked = QScratch::new();
        qnet.forward_batch_into(&qinputs, &mut qblocked, &mut NoHooks);
        let mut qnaive = QScratch::new();
        qnet.forward_batch_naive_into(&qinputs, &mut qnaive, &mut NoHooks);
        for (b, qinput) in qinputs.iter().enumerate() {
            prop_assert_eq!(qblocked.row(b), qnaive.row(b));
            prop_assert_eq!(qblocked.row(b), qnet.forward(qinput).words());
        }
    }
}

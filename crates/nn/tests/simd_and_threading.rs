//! Integration tests for the runtime kernel dispatch and the in-engine
//! batch sharding:
//!
//! * the dispatched (best-available SIMD) kernels are **bit-identical** to
//!   the forced portable scalar tiles on all three backends, at batch sizes
//!   covering the panel remainder paths;
//! * the threaded engine produces the same bytes at 1, 2 and 8 worker
//!   threads (deterministic row-range writeback).
//!
//! Both knobs are process-global, so every test serializes on one lock and
//! restores the defaults before releasing it.

use std::sync::{Mutex, MutexGuard, OnceLock};

use navft_nn::{
    c3f2_scaled, mlp, set_engine_threads, set_force_scalar_kernels, simd_kernel_name, I8Network,
    I8Scratch, I8Tensor, NoHooks, QNetwork, QScratch, QTensor, Scratch, Tensor,
};
use navft_qformat::QFormat;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Serializes tests that flip the process-global dispatch/threading knobs.
fn global_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    // A test that panicked mid-flip leaves consistent state behind (the
    // guard below restores it on drop), so a poisoned lock is still usable.
    match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Restores the default dispatch and threading configuration on drop, so a
/// failing assertion cannot leak forced-scalar or multi-threaded state into
/// other tests.
struct RestoreDefaults;

impl Drop for RestoreDefaults {
    fn drop(&mut self) {
        set_force_scalar_kernels(false);
        set_engine_threads(1);
    }
}

const BATCHES: [usize; 3] = [1, 7, 64];

fn models(seed: u64) -> Vec<(&'static str, navft_nn::Network, Vec<usize>)> {
    let mut rng = SmallRng::seed_from_u64(seed);
    vec![
        ("grid-mlp", mlp(&[100, 32, 4], &mut rng), vec![100]),
        ("c3f2-scaled", c3f2_scaled(&mut rng), vec![1, 31, 31]),
    ]
}

fn inputs(shape: &[usize], batch: usize, seed: u64) -> Vec<Tensor> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..batch).map(|_| Tensor::uniform(shape, 1.0, &mut rng)).collect()
}

#[test]
fn dispatched_kernels_match_forced_scalar_bit_for_bit_on_all_backends() {
    let _lock = global_lock();
    let _restore = RestoreDefaults;
    for (name, net, shape) in models(0x51D) {
        let qnet = QNetwork::quantize(&net, QFormat::Q4_11);
        let inet = I8Network::quantize(&net);
        for &batch in &BATCHES {
            let batch_f32 = inputs(&shape, batch, 0xBA5E ^ batch as u64);
            let batch_q: Vec<QTensor> =
                batch_f32.iter().map(|t| QTensor::quantize(t, QFormat::Q4_11)).collect();
            let batch_i8: Vec<I8Tensor> =
                batch_f32.iter().map(|t| I8Tensor::quantize(t, inet.affine())).collect();

            set_force_scalar_kernels(true);
            assert_eq!(simd_kernel_name(), "scalar");
            let mut scalar_f32 = Scratch::new();
            net.forward_batch_into(&batch_f32, &mut scalar_f32, &mut NoHooks);
            let mut scalar_q = QScratch::new();
            qnet.forward_batch_into(&batch_q, &mut scalar_q, &mut NoHooks);
            let mut scalar_i8 = I8Scratch::new();
            inet.forward_batch_into(&batch_i8, &mut scalar_i8, &mut NoHooks);

            set_force_scalar_kernels(false);
            let mut simd_f32 = Scratch::new();
            net.forward_batch_into(&batch_f32, &mut simd_f32, &mut NoHooks);
            let mut simd_q = QScratch::new();
            qnet.forward_batch_into(&batch_q, &mut simd_q, &mut NoHooks);
            let mut simd_i8 = I8Scratch::new();
            inet.forward_batch_into(&batch_i8, &mut simd_i8, &mut NoHooks);

            for b in 0..batch {
                assert_eq!(
                    scalar_f32.row(b),
                    simd_f32.row(b),
                    "{name} f32 batch {batch} row {b} ({})",
                    simd_kernel_name()
                );
                assert_eq!(
                    scalar_q.row(b),
                    simd_q.row(b),
                    "{name} q4.11 batch {batch} row {b} ({})",
                    simd_kernel_name()
                );
                assert_eq!(
                    scalar_i8.row(b),
                    simd_i8.row(b),
                    "{name} i8 batch {batch} row {b} ({})",
                    simd_kernel_name()
                );
            }
        }
    }
}

#[test]
fn threaded_engine_is_bit_identical_at_1_2_and_8_threads() {
    let _lock = global_lock();
    let _restore = RestoreDefaults;
    for (name, net, shape) in models(0x7831) {
        let qnet = QNetwork::quantize(&net, QFormat::Q7_8);
        let inet = I8Network::quantize(&net);
        let batch_f32 = inputs(&shape, 16, 0xC0FE);
        let batch_q: Vec<QTensor> =
            batch_f32.iter().map(|t| QTensor::quantize(t, QFormat::Q7_8)).collect();
        let batch_i8: Vec<I8Tensor> =
            batch_f32.iter().map(|t| I8Tensor::quantize(t, inet.affine())).collect();

        set_engine_threads(1);
        let mut base_f32 = Scratch::new();
        net.forward_batch_into(&batch_f32, &mut base_f32, &mut NoHooks);
        let mut base_q = QScratch::new();
        qnet.forward_batch_into(&batch_q, &mut base_q, &mut NoHooks);
        let mut base_i8 = I8Scratch::new();
        inet.forward_batch_into(&batch_i8, &mut base_i8, &mut NoHooks);

        for threads in [2, 8] {
            set_engine_threads(threads);
            assert_eq!(navft_nn::engine_threads(), threads);
            let mut t_f32 = Scratch::new();
            net.forward_batch_into(&batch_f32, &mut t_f32, &mut NoHooks);
            let mut t_q = QScratch::new();
            qnet.forward_batch_into(&batch_q, &mut t_q, &mut NoHooks);
            let mut t_i8 = I8Scratch::new();
            inet.forward_batch_into(&batch_i8, &mut t_i8, &mut NoHooks);
            for b in 0..batch_f32.len() {
                assert_eq!(base_f32.row(b), t_f32.row(b), "{name} f32 threads {threads} row {b}");
                assert_eq!(base_q.row(b), t_q.row(b), "{name} q7.8 threads {threads} row {b}");
                assert_eq!(base_i8.row(b), t_i8.row(b), "{name} i8 threads {threads} row {b}");
            }
        }
    }
}

#[test]
fn threading_composes_with_forced_scalar_kernels() {
    let _lock = global_lock();
    let _restore = RestoreDefaults;
    let mut rng = SmallRng::seed_from_u64(0x5CA1);
    let net = mlp(&[64, 48, 8], &mut rng);
    let batch = inputs(&[64], 32, 0xD15B);

    let mut reference = Scratch::new();
    net.forward_batch_into(&batch, &mut reference, &mut NoHooks);

    set_force_scalar_kernels(true);
    set_engine_threads(8);
    let mut combined = Scratch::new();
    net.forward_batch_into(&batch, &mut combined, &mut NoHooks);
    for b in 0..batch.len() {
        assert_eq!(reference.row(b), combined.row(b), "row {b}");
    }
}

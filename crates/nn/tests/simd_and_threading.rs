//! Integration tests for the runtime kernel dispatch and the in-engine
//! batch sharding:
//!
//! * the dispatched (best-available SIMD) kernels are **bit-identical** to
//!   the forced portable scalar tiles on all three backends, at batch sizes
//!   covering the panel remainder paths;
//! * the threaded engine produces the same bytes at 1, 2 and 8 worker
//!   threads (deterministic row-range writeback).
//!
//! Both knobs are carried by an explicit per-call [`EngineConfig`], so the
//! tests need no process-global serialization; one final test pins that the
//! deprecated process-wide compat shims still route into the same engine.

use navft_nn::{
    c3f2_scaled, mlp, simd_kernel_name, EngineConfig, I8Network, I8Scratch, I8Tensor, NoHooks,
    QNetwork, QScratch, QTensor, Scratch, Tensor,
};
use navft_qformat::QFormat;
use rand::rngs::SmallRng;
use rand::SeedableRng;

const BATCHES: [usize; 3] = [1, 7, 64];

fn models(seed: u64) -> Vec<(&'static str, navft_nn::Network, Vec<usize>)> {
    let mut rng = SmallRng::seed_from_u64(seed);
    vec![
        ("grid-mlp", mlp(&[100, 32, 4], &mut rng), vec![100]),
        ("c3f2-scaled", c3f2_scaled(&mut rng), vec![1, 31, 31]),
    ]
}

fn inputs(shape: &[usize], batch: usize, seed: u64) -> Vec<Tensor> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..batch).map(|_| Tensor::uniform(shape, 1.0, &mut rng)).collect()
}

#[test]
fn dispatched_kernels_match_forced_scalar_bit_for_bit_on_all_backends() {
    let scalar_cfg = EngineConfig::default().with_force_scalar(true);
    let simd_cfg = EngineConfig::default();
    for (name, net, shape) in models(0x51D) {
        let qnet = QNetwork::quantize(&net, QFormat::Q4_11);
        let inet = I8Network::quantize(&net);
        for &batch in &BATCHES {
            let batch_f32 = inputs(&shape, batch, 0xBA5E ^ batch as u64);
            let batch_q: Vec<QTensor> =
                batch_f32.iter().map(|t| QTensor::quantize(t, QFormat::Q4_11)).collect();
            let batch_i8: Vec<I8Tensor> =
                batch_f32.iter().map(|t| I8Tensor::quantize(t, inet.affine())).collect();

            let mut scalar_f32 = Scratch::new();
            net.forward_batch_into_cfg(&batch_f32, &mut scalar_f32, &mut NoHooks, scalar_cfg);
            let mut scalar_q = QScratch::new();
            qnet.forward_batch_into_cfg(&batch_q, &mut scalar_q, &mut NoHooks, scalar_cfg);
            let mut scalar_i8 = I8Scratch::new();
            inet.forward_batch_into_cfg(&batch_i8, &mut scalar_i8, &mut NoHooks, scalar_cfg);

            let mut simd_f32 = Scratch::new();
            net.forward_batch_into_cfg(&batch_f32, &mut simd_f32, &mut NoHooks, simd_cfg);
            let mut simd_q = QScratch::new();
            qnet.forward_batch_into_cfg(&batch_q, &mut simd_q, &mut NoHooks, simd_cfg);
            let mut simd_i8 = I8Scratch::new();
            inet.forward_batch_into_cfg(&batch_i8, &mut simd_i8, &mut NoHooks, simd_cfg);

            for b in 0..batch {
                assert_eq!(
                    scalar_f32.row(b),
                    simd_f32.row(b),
                    "{name} f32 batch {batch} row {b} ({})",
                    simd_kernel_name()
                );
                assert_eq!(
                    scalar_q.row(b),
                    simd_q.row(b),
                    "{name} q4.11 batch {batch} row {b} ({})",
                    simd_kernel_name()
                );
                assert_eq!(
                    scalar_i8.row(b),
                    simd_i8.row(b),
                    "{name} i8 batch {batch} row {b} ({})",
                    simd_kernel_name()
                );
            }
        }
    }
}

#[test]
fn threaded_engine_is_bit_identical_at_1_2_and_8_threads() {
    for (name, net, shape) in models(0x7831) {
        let qnet = QNetwork::quantize(&net, QFormat::Q7_8);
        let inet = I8Network::quantize(&net);
        let batch_f32 = inputs(&shape, 16, 0xC0FE);
        let batch_q: Vec<QTensor> =
            batch_f32.iter().map(|t| QTensor::quantize(t, QFormat::Q7_8)).collect();
        let batch_i8: Vec<I8Tensor> =
            batch_f32.iter().map(|t| I8Tensor::quantize(t, inet.affine())).collect();

        let serial = EngineConfig::default();
        let mut base_f32 = Scratch::new();
        net.forward_batch_into_cfg(&batch_f32, &mut base_f32, &mut NoHooks, serial);
        let mut base_q = QScratch::new();
        qnet.forward_batch_into_cfg(&batch_q, &mut base_q, &mut NoHooks, serial);
        let mut base_i8 = I8Scratch::new();
        inet.forward_batch_into_cfg(&batch_i8, &mut base_i8, &mut NoHooks, serial);

        for threads in [2, 8] {
            let config = EngineConfig::default().with_threads(threads);
            assert_eq!(config.threads, threads);
            let mut t_f32 = Scratch::new();
            net.forward_batch_into_cfg(&batch_f32, &mut t_f32, &mut NoHooks, config);
            let mut t_q = QScratch::new();
            qnet.forward_batch_into_cfg(&batch_q, &mut t_q, &mut NoHooks, config);
            let mut t_i8 = I8Scratch::new();
            inet.forward_batch_into_cfg(&batch_i8, &mut t_i8, &mut NoHooks, config);
            for b in 0..batch_f32.len() {
                assert_eq!(base_f32.row(b), t_f32.row(b), "{name} f32 threads {threads} row {b}");
                assert_eq!(base_q.row(b), t_q.row(b), "{name} q7.8 threads {threads} row {b}");
                assert_eq!(base_i8.row(b), t_i8.row(b), "{name} i8 threads {threads} row {b}");
            }
        }
    }
}

#[test]
fn threading_composes_with_forced_scalar_kernels() {
    let mut rng = SmallRng::seed_from_u64(0x5CA1);
    let net = mlp(&[64, 48, 8], &mut rng);
    let batch = inputs(&[64], 32, 0xD15B);

    let mut reference = Scratch::new();
    net.forward_batch_into_cfg(&batch, &mut reference, &mut NoHooks, EngineConfig::default());

    let combined_cfg = EngineConfig::default().with_threads(8).with_force_scalar(true);
    let mut combined = Scratch::new();
    net.forward_batch_into_cfg(&batch, &mut combined, &mut NoHooks, combined_cfg);
    for b in 0..batch.len() {
        assert_eq!(reference.row(b), combined.row(b), "row {b}");
    }
}

/// The deprecated process-wide setters must keep driving the non-`_cfg`
/// entry points until they are removed: a forward pass under the shims is
/// bit-identical to the explicit-config pass with the same settings.
#[test]
#[allow(deprecated)]
fn deprecated_global_shims_still_route_into_the_engine() {
    use navft_nn::{set_engine_threads, set_force_scalar_kernels};

    let mut rng = SmallRng::seed_from_u64(0xC0DE);
    let net = mlp(&[48, 32, 4], &mut rng);
    let batch = inputs(&[48], 16, 0xFACE);

    let explicit = EngineConfig::default().with_threads(2).with_force_scalar(true);
    let mut expected = Scratch::new();
    net.forward_batch_into_cfg(&batch, &mut expected, &mut NoHooks, explicit);

    set_force_scalar_kernels(true);
    set_engine_threads(2);
    let mut via_globals = Scratch::new();
    net.forward_batch_into(&batch, &mut via_globals, &mut NoHooks);
    // Restore the process defaults before asserting, so a failure cannot
    // leak forced-scalar state into concurrently running tests.
    set_force_scalar_kernels(false);
    set_engine_threads(1);

    for b in 0..batch.len() {
        assert_eq!(expected.row(b), via_globals.row(b), "row {b}");
    }
}

//! Integration tests for the runtime kernel dispatch and the in-engine
//! batch sharding:
//!
//! * the dispatched (best-available SIMD) kernels are **bit-identical** to
//!   the forced portable scalar tiles on all three backends, at batch sizes
//!   covering the panel remainder paths;
//! * the threaded engine produces the same bytes at 1, 2 and 8 worker
//!   threads (deterministic row-range writeback).
//!
//! Both knobs are carried by an explicit per-call [`EngineConfig`], so the
//! tests need no process-global serialization; one final test pins that the
//! deprecated process-wide compat shims still route into the same engine.

use navft_nn::{
    c3f2_scaled, mlp, simd_kernel_name, Element, EngineConfig, I8Affine, I8Network, I8Scratch,
    I8Tensor, NoHooks, QNetwork, QScratch, QTensor, Scratch, Tensor,
};
use navft_qformat::QFormat;
use rand::rngs::SmallRng;
use rand::SeedableRng;

const BATCHES: [usize; 3] = [1, 7, 64];

fn models(seed: u64) -> Vec<(&'static str, navft_nn::Network, Vec<usize>)> {
    let mut rng = SmallRng::seed_from_u64(seed);
    vec![
        ("grid-mlp", mlp(&[100, 32, 4], &mut rng), vec![100]),
        ("c3f2-scaled", c3f2_scaled(&mut rng), vec![1, 31, 31]),
    ]
}

fn inputs(shape: &[usize], batch: usize, seed: u64) -> Vec<Tensor> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..batch).map(|_| Tensor::uniform(shape, 1.0, &mut rng)).collect()
}

#[test]
fn dispatched_kernels_match_forced_scalar_bit_for_bit_on_all_backends() {
    let scalar_cfg = EngineConfig::default().with_force_scalar(true);
    let simd_cfg = EngineConfig::default();
    for (name, net, shape) in models(0x51D) {
        let qnet = QNetwork::quantize(&net, QFormat::Q4_11);
        let inet = I8Network::quantize(&net);
        for &batch in &BATCHES {
            let batch_f32 = inputs(&shape, batch, 0xBA5E ^ batch as u64);
            let batch_q: Vec<QTensor> =
                batch_f32.iter().map(|t| QTensor::quantize(t, QFormat::Q4_11)).collect();
            let batch_i8: Vec<I8Tensor> =
                batch_f32.iter().map(|t| I8Tensor::quantize(t, inet.affine())).collect();

            let mut scalar_f32 = Scratch::new();
            net.forward_batch_into_cfg(&batch_f32, &mut scalar_f32, &mut NoHooks, scalar_cfg);
            let mut scalar_q = QScratch::new();
            qnet.forward_batch_into_cfg(&batch_q, &mut scalar_q, &mut NoHooks, scalar_cfg);
            let mut scalar_i8 = I8Scratch::new();
            inet.forward_batch_into_cfg(&batch_i8, &mut scalar_i8, &mut NoHooks, scalar_cfg);

            let mut simd_f32 = Scratch::new();
            net.forward_batch_into_cfg(&batch_f32, &mut simd_f32, &mut NoHooks, simd_cfg);
            let mut simd_q = QScratch::new();
            qnet.forward_batch_into_cfg(&batch_q, &mut simd_q, &mut NoHooks, simd_cfg);
            let mut simd_i8 = I8Scratch::new();
            inet.forward_batch_into_cfg(&batch_i8, &mut simd_i8, &mut NoHooks, simd_cfg);

            for b in 0..batch {
                assert_eq!(
                    scalar_f32.row(b),
                    simd_f32.row(b),
                    "{name} f32 batch {batch} row {b} ({})",
                    simd_kernel_name()
                );
                assert_eq!(
                    scalar_q.row(b),
                    simd_q.row(b),
                    "{name} q4.11 batch {batch} row {b} ({})",
                    simd_kernel_name()
                );
                assert_eq!(
                    scalar_i8.row(b),
                    simd_i8.row(b),
                    "{name} i8 batch {batch} row {b} ({})",
                    simd_kernel_name()
                );
            }
        }
    }
}

#[test]
fn threaded_engine_is_bit_identical_at_1_2_and_8_threads() {
    for (name, net, shape) in models(0x7831) {
        let qnet = QNetwork::quantize(&net, QFormat::Q7_8);
        let inet = I8Network::quantize(&net);
        let batch_f32 = inputs(&shape, 16, 0xC0FE);
        let batch_q: Vec<QTensor> =
            batch_f32.iter().map(|t| QTensor::quantize(t, QFormat::Q7_8)).collect();
        let batch_i8: Vec<I8Tensor> =
            batch_f32.iter().map(|t| I8Tensor::quantize(t, inet.affine())).collect();

        let serial = EngineConfig::default();
        let mut base_f32 = Scratch::new();
        net.forward_batch_into_cfg(&batch_f32, &mut base_f32, &mut NoHooks, serial);
        let mut base_q = QScratch::new();
        qnet.forward_batch_into_cfg(&batch_q, &mut base_q, &mut NoHooks, serial);
        let mut base_i8 = I8Scratch::new();
        inet.forward_batch_into_cfg(&batch_i8, &mut base_i8, &mut NoHooks, serial);

        for threads in [2, 8] {
            let config = EngineConfig::default().with_threads(threads);
            assert_eq!(config.threads, threads);
            let mut t_f32 = Scratch::new();
            net.forward_batch_into_cfg(&batch_f32, &mut t_f32, &mut NoHooks, config);
            let mut t_q = QScratch::new();
            qnet.forward_batch_into_cfg(&batch_q, &mut t_q, &mut NoHooks, config);
            let mut t_i8 = I8Scratch::new();
            inet.forward_batch_into_cfg(&batch_i8, &mut t_i8, &mut NoHooks, config);
            for b in 0..batch_f32.len() {
                assert_eq!(base_f32.row(b), t_f32.row(b), "{name} f32 threads {threads} row {b}");
                assert_eq!(base_q.row(b), t_q.row(b), "{name} q7.8 threads {threads} row {b}");
                assert_eq!(base_i8.row(b), t_i8.row(b), "{name} i8 threads {threads} row {b}");
            }
        }
    }
}

#[test]
fn threading_composes_with_forced_scalar_kernels() {
    let mut rng = SmallRng::seed_from_u64(0x5CA1);
    let net = mlp(&[64, 48, 8], &mut rng);
    let batch = inputs(&[64], 32, 0xD15B);

    let mut reference = Scratch::new();
    net.forward_batch_into_cfg(&batch, &mut reference, &mut NoHooks, EngineConfig::default());

    let combined_cfg = EngineConfig::default().with_threads(8).with_force_scalar(true);
    let mut combined = Scratch::new();
    net.forward_batch_into_cfg(&batch, &mut combined, &mut NoHooks, combined_cfg);
    for b in 0..batch.len() {
        assert_eq!(reference.row(b), combined.row(b), "row {b}");
    }
}

/// The batched [`Element::finish_tile`] epilogue must be bit-identical to a
/// scalar [`Element::finish`] loop for *arbitrary* accumulator tiles on
/// every backend — the contract the engine's SIMD path relies on when it
/// hands whole register tiles to the epilogue. Running this in the CI
/// `+avx2` codegen-equivalence leg pins the vectorized AVX2 tiers; on older
/// hosts it pins the SSE2 tiers instead. Tile lengths deliberately straddle
/// the lane counts so the vector body and the scalar remainder both run.
mod finish_tile_epilogue {
    use super::*;
    use rand::RngCore;

    fn q_format(index: usize) -> QFormat {
        [
            QFormat::Q4_11,
            QFormat::Q7_8,
            QFormat::Q10_5,
            QFormat::Q3_4,
            QFormat::Q2_5,
            QFormat::Q2_13,
            QFormat::new(6, 0).unwrap(),
            QFormat::new(31, 0).unwrap(),
            QFormat::new(0, 31).unwrap(),
        ][index]
    }

    proptest::proptest! {
        #[test]
        fn q_finish_tile_matches_scalar_finish(
            seed in 0u64..u64::MAX,
            len in 1usize..97,
            format_index in 0usize..9,
        ) {
            let fmt = q_format(format_index);
            let mut rng = SmallRng::seed_from_u64(seed);
            // Right-shifting a full-width draw by a random amount spreads
            // probes across every accumulator magnitude, extremes included.
            let accs: Vec<i64> = (0..len)
                .map(|_| (rng.next_u64() as i64) >> (rng.next_u64() % 64))
                .collect();
            let expected: Vec<i32> =
                accs.iter().map(|&acc| <i32 as Element>::finish(acc, fmt)).collect();
            let mut tiled = vec![0i32; len];
            <i32 as Element>::finish_tile(fmt, &accs, &mut tiled);
            proptest::prop_assert_eq!(tiled, expected);
        }

        #[test]
        fn i8_finish_tile_matches_scalar_finish(
            seed in 0u64..u64::MAX,
            len in 1usize..97,
            scale_ten_thousandths in 1u32..40_000,
        ) {
            let ctx = I8Affine { scale: scale_ten_thousandths as f32 / 10_000.0 };
            let mut rng = SmallRng::seed_from_u64(seed);
            let accs: Vec<i32> = (0..len).map(|_| rng.next_u64() as i32).collect();
            let expected: Vec<i8> =
                accs.iter().map(|&acc| <i8 as Element>::finish(acc, ctx)).collect();
            let mut tiled = vec![0i8; len];
            <i8 as Element>::finish_tile(ctx, &accs, &mut tiled);
            proptest::prop_assert_eq!(tiled, expected);
        }

        #[test]
        fn f32_default_finish_tile_is_the_identity_bitwise(
            seed in 0u64..u64::MAX,
            len in 1usize..97,
        ) {
            let mut rng = SmallRng::seed_from_u64(seed);
            // Raw bit patterns, so NaNs and infinities ride along; compare
            // bits because NaN != NaN under float equality.
            let accs: Vec<f32> = (0..len).map(|_| f32::from_bits(rng.next_u32())).collect();
            let expected: Vec<u32> =
                accs.iter().map(|&acc| <f32 as Element>::finish(acc, ()).to_bits()).collect();
            let mut tiled = vec![0.0f32; len];
            <f32 as Element>::finish_tile((), &accs, &mut tiled);
            let tiled_bits: Vec<u32> = tiled.iter().map(|v| v.to_bits()).collect();
            proptest::prop_assert_eq!(tiled_bits, expected);
        }
    }
}

/// The narrow-format Q kernel (total width ≤ 16) folds raw words to `i16`
/// `madd_epi16` pairs, which is only exact while every word fits `i16` and
/// no aligned activation pair is `(-32768, -32768)` — the one pair whose
/// `madd` sum escapes `i32`. Fault injection can violate both through the
/// raw-word surface, so this pins the fallback seams bit-for-bit against
/// forced scalar: a weight word widened beyond `i16` (per-row exact-dot
/// fallback), an aligned minimum pair (same fallback via the profile scan),
/// a corrupted *input* word (whole-panel fallback), and a wide format whose
/// total width exceeds 16 (the widened-lane kernel, no narrowing at all).
#[test]
fn q_madd_kernel_fallbacks_stay_bit_identical_under_fault_widened_words() {
    let scalar_cfg = EngineConfig::default().with_force_scalar(true);
    let simd_cfg = EngineConfig::default();
    let mut rng = SmallRng::seed_from_u64(0xFA17);
    let net = mlp(&[100, 32, 4], &mut rng);
    let wide = QFormat::new(18, 13).unwrap();
    for fmt in [QFormat::Q4_11, wide] {
        let mut qnet = QNetwork::quantize(&net, fmt);
        {
            let weights = qnet.layer_weights_mut(0).unwrap();
            // One weight row with a word far outside `i16`, another with an
            // aligned `(-32768, -32768)` pair (a legal Q4.11 raw minimum).
            weights[7] = 1 << 20;
            weights[100 + 2] = -32768;
            weights[100 + 3] = -32768;
        }
        // Batch 17 = one full 16-column panel plus a remainder column.
        let batch_f32 = inputs(&[100], 17, 0xB17F);
        let mut batch_q: Vec<QTensor> =
            batch_f32.iter().map(|t| QTensor::quantize(t, fmt)).collect();
        // A fault-widened observation word forces the panel fallback for
        // the block holding that column.
        batch_q[3].words_mut()[11] = -(1 << 18);

        let mut scalar = QScratch::new();
        qnet.forward_batch_into_cfg(&batch_q, &mut scalar, &mut NoHooks, scalar_cfg);
        let mut simd = QScratch::new();
        qnet.forward_batch_into_cfg(&batch_q, &mut simd, &mut NoHooks, simd_cfg);
        for b in 0..batch_q.len() {
            assert_eq!(scalar.row(b), simd.row(b), "fmt {fmt:?} row {b} ({})", simd_kernel_name());
        }
    }
}

/// The non-`_cfg` entry points run under the default engine config: a plain
/// `forward_batch_into` pass is bit-identical to the explicit
/// `EngineConfig::default()` pass.
#[test]
fn plain_entry_points_match_default_config() {
    let mut rng = SmallRng::seed_from_u64(0xC0DE);
    let net = mlp(&[48, 32, 4], &mut rng);
    let batch = inputs(&[48], 16, 0xFACE);

    let mut expected = Scratch::new();
    net.forward_batch_into_cfg(&batch, &mut expected, &mut NoHooks, EngineConfig::default());

    let mut plain = Scratch::new();
    net.forward_batch_into(&batch, &mut plain, &mut NoHooks);

    for b in 0..batch.len() {
        assert_eq!(expected.row(b), plain.row(b), "row {b}");
    }
}

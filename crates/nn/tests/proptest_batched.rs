//! Property tests for the batched inference engine: for *arbitrary* layer
//! stacks and inputs, `forward_batch` must agree bit-for-bit with the
//! per-sample `forward`, and a reused [`Scratch`] must never leak state from
//! a previous batch into a later one.

use navft_nn::layer::{Conv2d, Linear, MaxPool2d};
use navft_nn::{mlp, Layer, Network, NoHooks, Scratch, Tensor};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Builds an arbitrary convolutional stack (conv/relu/pool prefix, linear
/// tail) from a seed, returning the network and its input shape.
fn arbitrary_conv_net(seed: u64) -> (Network, Vec<usize>) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let channels = 1 + rng.gen_range(0usize..3);
    let size = 7 + rng.gen_range(0usize..6);
    let kernel = 2 + rng.gen_range(0usize..2);
    let filters = 1 + rng.gen_range(0usize..4);
    let conv = Conv2d::new(channels, filters, kernel, 1, &mut rng);
    let after_conv = conv.output_size(size);
    let mut layers = vec![Layer::Conv2d(conv), Layer::Relu];
    let mut spatial = after_conv;
    if spatial >= 2 && rng.gen_bool(0.5) {
        layers.push(Layer::MaxPool2d(MaxPool2d::new(2, 2)));
        spatial = (spatial - 2) / 2 + 1;
    }
    layers.push(Layer::Flatten);
    let flat = filters * spatial * spatial;
    let hidden = 1 + rng.gen_range(0usize..8);
    layers.push(Layer::Linear(Linear::new(flat, hidden, &mut rng)));
    layers.push(Layer::Relu);
    layers.push(Layer::Linear(Linear::new(hidden, 1 + rng.gen_range(0usize..5), &mut rng)));
    (Network::new(layers), vec![channels, size, size])
}

/// Builds an arbitrary MLP from a seed, returning the network and its input
/// length.
fn arbitrary_mlp(seed: u64) -> (Network, usize) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let depth = 2 + rng.gen_range(0usize..3);
    let sizes: Vec<usize> = (0..depth).map(|_| 1 + rng.gen_range(0usize..24)).collect();
    let input = sizes[0];
    (mlp(&sizes, &mut rng), input)
}

fn random_inputs(shape: &[usize], batch: usize, seed: u64) -> Vec<Tensor> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..batch).map(|_| Tensor::uniform(shape, 2.0, &mut rng)).collect()
}

proptest! {
    #[test]
    fn arbitrary_mlp_batched_equals_serial(
        net_seed in 0u64..1_000_000,
        input_seed in 0u64..1_000_000,
        batch in 1usize..=9,
    ) {
        let (net, input_len) = arbitrary_mlp(net_seed);
        let inputs = random_inputs(&[input_len], batch, input_seed);
        let mut scratch = Scratch::new();
        let batched = net.forward_batch(&inputs, &mut scratch);
        for (input, out) in inputs.iter().zip(batched.iter()) {
            prop_assert_eq!(out.data(), net.forward(input).data());
        }
    }

    #[test]
    fn arbitrary_conv_stack_batched_equals_serial(
        net_seed in 0u64..1_000_000,
        input_seed in 0u64..1_000_000,
        batch in 1usize..=5,
    ) {
        let (net, shape) = arbitrary_conv_net(net_seed);
        let inputs = random_inputs(&shape, batch, input_seed);
        let mut scratch = Scratch::new();
        let batched = net.forward_batch(&inputs, &mut scratch);
        for (input, out) in inputs.iter().zip(batched.iter()) {
            prop_assert_eq!(out.shape(), net.forward(input).shape());
            prop_assert_eq!(out.data(), net.forward(input).data());
        }
    }

    #[test]
    fn scratch_reuse_across_batches_never_leaks_state(
        wild_seed in 0u64..1_000_000,
        wild_batch in 1usize..=8,
        sentinel_batch in 1usize..=4,
        width in 1usize..=16,
    ) {
        // First pollute the scratch with a batch of wild values through an
        // arbitrary network...
        let (wild_net, input_len) = arbitrary_mlp(wild_seed);
        let wild_inputs = random_inputs(&[input_len], wild_batch, wild_seed ^ 0xF00D);
        let mut scratch = Scratch::new();
        let _ = wild_net.forward_batch(&wild_inputs, &mut scratch);

        // ...then run an all-zeros batch through an identity network. Any
        // residue from the previous batch reaching the compute or the output
        // rows would surface as a non-zero element.
        let mut identity = Linear { in_features: width, out_features: width,
            weights: vec![0.0; width * width], bias: vec![0.0; width] };
        for i in 0..width {
            identity.weights[i * width + i] = 1.0;
        }
        let sentinel_net = Network::new(vec![Layer::Linear(identity), Layer::Relu]);
        let zeros = vec![Tensor::zeros(&[width]); sentinel_batch];
        sentinel_net.forward_batch_into(&zeros, &mut scratch, &mut NoHooks);
        prop_assert_eq!(scratch.rows(), sentinel_batch);
        for b in 0..sentinel_batch {
            prop_assert!(
                scratch.row(b).iter().all(|&v| v == 0.0),
                "stale values leaked into sentinel row {}: {:?}", b, scratch.row(b)
            );
        }

        // And a reused scratch must agree with a fresh one on real data.
        let probe_inputs = random_inputs(&[input_len], sentinel_batch, wild_seed ^ 0xBEEF);
        let reused = wild_net.forward_batch(&probe_inputs, &mut scratch);
        let fresh = wild_net.forward_batch(&probe_inputs, &mut Scratch::new());
        for (a, b) in reused.iter().zip(fresh.iter()) {
            prop_assert_eq!(a.data(), b.data());
        }
    }
}

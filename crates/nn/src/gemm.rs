//! Cache-blocked im2row + register-tiled GEMM: the batched engine's fast
//! path for convolution and fully-connected sweeps, generic over the
//! backend's [`Element`].
//!
//! Both hot layers are the same computation: `out[m][n] = bias[m] +
//! Σ_k W[m][k] · B[n][k]` with `W` the `[M, K]` row-major weight matrix and
//! `B` an `[N, K]` row-major panel of reduction vectors — the batch rows
//! themselves for a linear layer, the im2row-packed input patches (one row
//! per batch row × output pixel) for a convolution. The kernel tiles `M × N`
//! into `MR × NR` register blocks and sweeps the full `K` extent once per
//! block, so every weight load feeds `NR` MACs, every panel load feeds `MR`
//! MACs, and each output element owns `1` of `MR × NR` independent
//! accumulators — breaking the single-accumulator dependency chain that
//! bounds the naive kernels.
//!
//! # Bit-exactness contract
//!
//! Each output element's accumulator is seeded with its bias and receives
//! its `K` products in ascending `k` order — exactly the `(ic, ky, kx)`
//! order of [`Conv2dBase::forward_naive`] and the input order of
//! [`LinearBase::forward_naive`]. Tiling only changes *which outputs*
//! accumulate concurrently, never the order within one accumulator, so the
//! GEMM path is bit-identical to the naive path on every backend — `f32`
//! included, where summation order changes results. The equivalence
//! proptests pin this for arbitrary layer stacks.
//!
//! [`Conv2dBase::forward_naive`]: crate::layer::Conv2dBase::forward_naive
//! [`LinearBase::forward_naive`]: crate::layer::LinearBase::forward_naive

use crate::element::Element;
use crate::layer::Conv2dBase;

/// Packs the im2row panel of a convolution: row `b · OH·OW + (oy·OW + ox)`
/// of `cols` is the flattened `(ic, ky, kx)` input patch that produces
/// output pixel `(oy, ox)` of batch row `b` — the exact reduction order of
/// the naive conv kernel.
///
/// `front` holds `nrows` contiguous `[C, H, W]` batch rows; `cols` must be
/// `nrows · OH·OW · C·k·k` long.
pub(crate) fn pack_im2row<E: Element>(
    conv: &Conv2dBase<E>,
    front: &[E],
    nrows: usize,
    in_shape: &[usize],
    cols: &mut [E],
) {
    let (c, h, w) = (in_shape[0], in_shape[1], in_shape[2]);
    let [_, oh, ow] = conv.output_shape(in_shape);
    let k = conv.kernel;
    let stride = conv.stride;
    let patch = conv.patch_len();
    let row_len = c * h * w;
    // Real assertions, not debug ones: this cold entry point sizes the
    // panels that the release-mode kernels (including the raw loads of the
    // SIMD microkernels) trust downstream.
    assert_eq!(front.len(), nrows * row_len, "im2row front slab length mismatch");
    assert_eq!(cols.len(), nrows * oh * ow * patch, "im2row panel length mismatch");
    for b in 0..nrows {
        let img = &front[b * row_len..(b + 1) * row_len];
        let mut col_base = b * oh * ow * patch;
        for oy in 0..oh {
            for ox in 0..ow {
                let col = &mut cols[col_base..col_base + patch];
                let mut at = 0;
                for ic in 0..c {
                    let in_base = ic * h * w + oy * stride * w + ox * stride;
                    for ky in 0..k {
                        let row = in_base + ky * w;
                        col[at..at + k].copy_from_slice(&img[row..row + k]);
                        at += k;
                    }
                }
                col_base += patch;
            }
        }
    }
}

/// The blocked GEMM with bias: `write(m, n, bias[m] + Σ_k a[m][k]·b[n][k])`
/// for every `(m, n)`, with `a` `[M, K]` row-major and `b` `[N, K]`
/// row-major.
///
/// When `simd` is true, first offers the sweep to the backend's
/// runtime-dispatched SIMD microkernel ([`Element::gemm_simd`], see
/// [`crate::simd`]); when that declines — no kernel for this CPU, scalar
/// execution pinned by the engine config, or a backend without SIMD
/// support — dispatches to the register-tile shape the backend's
/// [`Element::GEMM_TILE`] requests. `write` receives each output
/// exactly once on either path, and both paths are bit-identical by the
/// contract above. Const generics force one monomorphized scalar kernel per
/// tile shape, so the supported shapes are enumerated here — `(2, 4)` and
/// `(4, 4)`; an unlisted shape runs the `(4, 4)` kernel (results are
/// identical either way, only register pressure differs), as documented on
/// [`Element::GEMM_TILE`].
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_bias<E: Element>(
    ctx: E::Ctx,
    simd: bool,
    a: &[E],
    bias: &[E],
    m: usize,
    k: usize,
    b: &[E],
    n: usize,
    mut write: impl FnMut(usize, usize, E),
) {
    // Cold-entry panel checks (the SIMD kernels read these slices through
    // raw in-bounds loads, so the invariants must hold in release builds).
    assert_eq!(a.len(), m * k, "gemm weight panel length mismatch");
    assert_eq!(b.len(), n * k, "gemm reduction panel length mismatch");
    assert_eq!(bias.len(), m, "gemm bias length mismatch");
    if simd && E::gemm_simd(ctx, a, bias, m, k, b, n, &mut write) {
        return;
    }
    match E::GEMM_TILE {
        (2, 4) => gemm_tiled::<E, 2, 4>(ctx, simd, a, bias, m, k, b, n, write),
        _ => gemm_tiled::<E, 4, 4>(ctx, simd, a, bias, m, k, b, n, write),
    }
}

/// The one register-tiled GEMM implementation, monomorphized per tile shape.
///
/// Full `MR × NR` interior tiles run the fast path (`MR × NR` independent
/// accumulators, one full-K sweep, each fed in ascending k order); edge
/// tiles fall back to single-output dot products with identical accumulation
/// order. When `simd` is true, each full tile's accumulators are handed as
/// one flat slice to the backend's batched [`Element::finish_tile`] epilogue
/// (bit-identical to the per-element `finish` by contract); the engine's
/// force-scalar pin routes through per-element [`Element::finish`] so the
/// scalar baseline stays epilogue-free.
#[allow(clippy::too_many_arguments)]
fn gemm_tiled<E: Element, const MR: usize, const NR: usize>(
    ctx: E::Ctx,
    simd: bool,
    a: &[E],
    bias: &[E],
    m: usize,
    k: usize,
    b: &[E],
    n: usize,
    mut write: impl FnMut(usize, usize, E),
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(bias.len(), m);
    // Upper bound on MR · NR across the supported tile shapes, so the
    // epilogue's output scratch can live on the stack without generic
    // arithmetic in the array length.
    const MAX_TILE: usize = 16;
    debug_assert!(MR * NR <= MAX_TILE);
    let mut n0 = 0;
    while n0 < n {
        let nb = NR.min(n - n0);
        let mut m0 = 0;
        while m0 < m {
            let mb = MR.min(m - m0);
            if mb == MR && nb == NR {
                // Register-tiled fast path.
                let ar: [&[E]; MR] = std::array::from_fn(|i| &a[(m0 + i) * k..(m0 + i + 1) * k]);
                let br: [&[E]; NR] = std::array::from_fn(|j| &b[(n0 + j) * k..(n0 + j + 1) * k]);
                let mut acc: [[E::Acc; NR]; MR] =
                    std::array::from_fn(|i| [E::acc_init(bias[m0 + i], ctx); NR]);
                for kk in 0..k {
                    let bv: [E; NR] = std::array::from_fn(|j| br[j][kk]);
                    for i in 0..MR {
                        let av = ar[i][kk];
                        for j in 0..NR {
                            acc[i][j] = E::mac(acc[i][j], bv[j], av);
                        }
                    }
                }
                if simd {
                    // Batched epilogue: fold the whole tile's accumulators
                    // in one `finish_tile` call (vectorized for the integer
                    // backends, the same scalar loop otherwise).
                    let mut tile_out = [E::default(); MAX_TILE];
                    E::finish_tile(ctx, acc.as_flattened(), &mut tile_out[..MR * NR]);
                    for i in 0..MR {
                        for j in 0..NR {
                            write(m0 + i, n0 + j, tile_out[i * NR + j]);
                        }
                    }
                } else {
                    for (i, row) in acc.iter().enumerate() {
                        for (j, &cell) in row.iter().enumerate() {
                            write(m0 + i, n0 + j, E::finish(cell, ctx));
                        }
                    }
                }
            } else {
                // Edge tiles: plain dot products, same accumulation order.
                for i in 0..mb {
                    let arow = &a[(m0 + i) * k..(m0 + i + 1) * k];
                    for j in 0..nb {
                        let brow = &b[(n0 + j) * k..(n0 + j + 1) * k];
                        let mut acc = E::acc_init(bias[m0 + i], ctx);
                        for (av, bv) in arow.iter().zip(brow.iter()) {
                            acc = E::mac(acc, *bv, *av);
                        }
                        write(m0 + i, n0 + j, E::finish(acc, ctx));
                    }
                }
            }
            m0 += mb;
        }
        n0 += nb;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::LinearBase;
    use navft_qformat::QFormat;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn gemm_matches_naive_linear_bitwise_for_f32() {
        let mut rng = SmallRng::seed_from_u64(1);
        let (m, k, n) = (7, 13, 9);
        let linear = LinearBase::<f32> {
            in_features: k,
            out_features: m,
            weights: (0..m * k).map(|_| rng.gen_range(-1.0f32..=1.0)).collect(),
            bias: (0..m).map(|_| rng.gen_range(-1.0f32..=1.0)).collect(),
        };
        let rows: Vec<f32> = (0..n * k).map(|_| rng.gen_range(-1.0f32..=1.0)).collect();
        let mut gemm_out = vec![0.0f32; n * m];
        gemm_bias((), true, &linear.weights, &linear.bias, m, k, &rows, n, |mi, ni, v| {
            gemm_out[ni * m + mi] = v;
        });
        for ni in 0..n {
            let mut naive = vec![0.0f32; m];
            linear.forward_naive(&rows[ni * k..(ni + 1) * k], &[k], &mut naive, ());
            assert_eq!(&gemm_out[ni * m..(ni + 1) * m], naive.as_slice(), "row {ni}");
        }
    }

    #[test]
    fn gemm_matches_naive_linear_for_raw_words() {
        let fmt = QFormat::Q3_4;
        let mut rng = SmallRng::seed_from_u64(2);
        let (m, k, n) = (5, 6, 11);
        let raw = |rng: &mut SmallRng| rng.gen_range(-128i32..=127);
        let linear = LinearBase::<i32> {
            in_features: k,
            out_features: m,
            weights: (0..m * k).map(|_| raw(&mut rng)).collect(),
            bias: (0..m).map(|_| raw(&mut rng)).collect(),
        };
        let rows: Vec<i32> = (0..n * k).map(|_| raw(&mut rng)).collect();
        let mut gemm_out = vec![0i32; n * m];
        gemm_bias(fmt, true, &linear.weights, &linear.bias, m, k, &rows, n, |mi, ni, v| {
            gemm_out[ni * m + mi] = v;
        });
        for ni in 0..n {
            let mut naive = vec![0i32; m];
            linear.forward_naive(&rows[ni * k..(ni + 1) * k], &[k], &mut naive, fmt);
            assert_eq!(&gemm_out[ni * m..(ni + 1) * m], naive.as_slice(), "row {ni}");
        }
    }

    #[test]
    fn packed_conv_gemm_matches_naive_conv_bitwise() {
        let mut rng = SmallRng::seed_from_u64(3);
        let conv = Conv2dBase::<f32> {
            in_channels: 2,
            out_channels: 5,
            kernel: 3,
            stride: 2,
            weights: (0..5 * 2 * 9).map(|_| rng.gen_range(-1.0f32..=1.0)).collect(),
            bias: (0..5).map(|_| rng.gen_range(-1.0f32..=1.0)).collect(),
        };
        let in_shape = [2usize, 9, 7];
        let nrows = 3;
        let row_len: usize = in_shape.iter().product();
        let front: Vec<f32> = (0..nrows * row_len).map(|_| rng.gen_range(-1.0f32..=1.0)).collect();
        let [oc, oh, ow] = conv.output_shape(&in_shape);
        let patch = conv.patch_len();
        let mut cols = vec![0.0f32; nrows * oh * ow * patch];
        pack_im2row(&conv, &front, nrows, &in_shape, &mut cols);
        let ohw = oh * ow;
        let mut out = vec![0.0f32; nrows * oc * ohw];
        gemm_bias(
            (),
            true,
            &conv.weights,
            &conv.bias,
            oc,
            patch,
            &cols,
            nrows * ohw,
            |mi, ni, v| {
                let (b, p) = (ni / ohw, ni % ohw);
                out[b * oc * ohw + mi * ohw + p] = v;
            },
        );
        for b in 0..nrows {
            let mut naive = vec![0.0f32; oc * ohw];
            conv.forward_naive(&front[b * row_len..(b + 1) * row_len], &in_shape, &mut naive, ());
            assert_eq!(&out[b * oc * ohw..(b + 1) * oc * ohw], naive.as_slice(), "row {b}");
        }
    }
}

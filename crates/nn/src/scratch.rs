//! A reusable, double-buffered activation arena for batched inference.
//!
//! Fault-injection campaigns replay millions of forward passes; allocating a
//! fresh [`Tensor`](crate::Tensor) per layer per pass dominates their cost.
//! [`Scratch`] owns two activation slabs (front/back) sized `batch ×
//! activation`, which [`Network::forward_batch_into`] ping-pongs between per
//! layer sweep. Once the slabs have grown to the widest layer of a network,
//! subsequent passes of the same (or any smaller) topology perform **zero
//! heap allocations** — [`Scratch::grow_events`] makes that guarantee
//! observable in tests and benches.
//!
//! The arena is generic over its element type so both numeric backends share
//! it: the `f32` backend uses the default `Scratch` (`Scratch<f32>`), the
//! native fixed-point backend stages raw Q-format words in a
//! [`QScratch`](crate::QScratch) (`Scratch<i32>`) through
//! [`QNetwork::forward_batch_into`](crate::QNetwork::forward_batch_into).
//! A third slab holds the im2row panel of the blocked GEMM convolution
//! path; it obeys the same grow-once, reuse-forever contract.
//!
//! [`Network::forward_batch_into`]: crate::Network::forward_batch_into

/// Preallocated activation storage reused across batched forward passes.
///
/// A `Scratch` is not tied to a network: the same instance can serve any
/// sequence of networks and batch sizes, growing monotonically to the largest
/// `rows × activation` slab it has seen. After a pass, the final activations
/// stay readable through [`Scratch::row`] until the next pass overwrites
/// them.
///
/// The element type `T` is `f32` for the float backend and `i32` (raw
/// two's-complement Q-format words) for the native fixed-point backend.
///
/// # Examples
///
/// ```
/// use navft_nn::{mlp, Scratch, Tensor};
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let mut rng = SmallRng::seed_from_u64(0);
/// let net = mlp(&[4, 8, 2], &mut rng);
/// let mut scratch = Scratch::new();
/// let inputs = vec![Tensor::zeros(&[4]); 3];
/// let outputs = net.forward_batch(&inputs, &mut scratch);
/// assert_eq!(outputs.len(), 3);
/// let warm = scratch.grow_events();
/// let _ = net.forward_batch(&inputs, &mut scratch);
/// assert_eq!(scratch.grow_events(), warm, "steady state allocates nothing");
/// ```
#[derive(Debug, Clone, Default)]
pub struct Scratch<T = f32> {
    front: Vec<T>,
    back: Vec<T>,
    /// The im2row staging panel of the blocked GEMM path: one packed input
    /// patch per batch row × output pixel of the convolution being swept.
    cols: Vec<T>,
    shape: Vec<usize>,
    next_shape: Vec<usize>,
    rows: usize,
    grow_events: usize,
}

impl<T: Copy + Default> Scratch<T> {
    /// Creates an empty scratch; slabs grow on first use.
    pub fn new() -> Scratch<T> {
        Scratch::default()
    }

    /// Creates a scratch with `rows × row_len` elements of capacity reserved
    /// in each activation slab up front. Passes whose widest activation fits
    /// the envelope skip the initial slab growth; layers wider than
    /// `row_len` (e.g. a channel-expanding convolution) still grow the slabs
    /// once. The im2row panel of the blocked convolution path is *not*
    /// pre-reserved (its size depends on kernel geometry, not on `row_len`),
    /// so a network with convolutions grows that slab once on its first
    /// pass regardless.
    pub fn with_capacity(rows: usize, row_len: usize) -> Scratch<T> {
        let mut scratch = Scratch::new();
        scratch.front.reserve(rows * row_len);
        scratch.back.reserve(rows * row_len);
        scratch.shape.reserve(4);
        scratch.next_shape.reserve(4);
        scratch
    }

    /// Number of times an internal buffer had to grow its allocation. The
    /// counter is cumulative and stops moving once the scratch is warm for
    /// the workloads it serves — the allocation-freedom guarantee tests key
    /// on it staying flat.
    ///
    /// The slabs swap roles once per non-in-place layer, so a topology with
    /// an odd number of such layers needs **two** passes before both slabs
    /// reach their high-water mark; from the third pass on the count is
    /// flat.
    pub fn grow_events(&self) -> usize {
        self.grow_events
    }

    /// Number of batch rows held from the most recent pass.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The per-row shape of the most recent pass's activations.
    pub fn row_shape(&self) -> &[usize] {
        &self.shape
    }

    /// The per-row element count of the most recent pass's activations.
    pub fn row_len(&self) -> usize {
        self.shape.iter().product()
    }

    /// The activation values of batch row `index` from the most recent pass.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn row(&self, index: usize) -> &[T] {
        assert!(index < self.rows, "batch row {index} out of range for {} rows", self.rows);
        let len = self.row_len();
        &self.front[index * len..(index + 1) * len]
    }

    /// Copies the flat `inputs` rows (each of `shape`) into the front slab.
    pub(crate) fn load_rows<'a, I>(&mut self, shape: &[usize], rows: I)
    where
        T: 'a,
        I: ExactSizeIterator<Item = &'a [T]>,
    {
        let row_len: usize = shape.iter().product();
        self.rows = rows.len();
        self.set_shape(shape);
        self.reserve_slab(true, self.rows * row_len);
        self.front.clear();
        for row in rows {
            assert_eq!(row.len(), row_len, "batch row length does not match input shape");
            self.front.extend_from_slice(row);
        }
    }

    /// Points the current shape at `shape` without touching the data.
    pub(crate) fn set_shape(&mut self, shape: &[usize]) {
        if self.shape.capacity() < shape.len() {
            self.grow_events += 1;
        }
        self.shape.clear();
        self.shape.extend_from_slice(shape);
    }

    /// A cleared, reusable shape buffer for computing the next layer's shape.
    pub(crate) fn take_next_shape(&mut self) -> Vec<usize> {
        let mut shape = std::mem::take(&mut self.next_shape);
        shape.clear();
        shape
    }

    /// Returns the buffer taken with [`Scratch::take_next_shape`].
    pub(crate) fn put_next_shape(&mut self, shape: Vec<usize>) {
        self.next_shape = shape;
    }

    /// Resizes the back slab for `back_len` total elements and hands out the
    /// disjoint views a layer sweep needs: `(current row shape, front slab,
    /// back slab)`.
    pub(crate) fn slabs_for_sweep(&mut self, back_len: usize) -> (&[usize], &[T], &mut [T]) {
        self.reserve_slab(false, back_len);
        self.back.resize(back_len, T::default());
        (&self.shape, &self.front, &mut self.back)
    }

    /// Resizes the im2row panel to `cols_len` elements and hands out the
    /// disjoint views the packing phase of a blocked convolution needs:
    /// `(current row shape, front slab, im2row panel)`.
    pub(crate) fn pack_slab(&mut self, cols_len: usize) -> (&[usize], &[T], &mut [T]) {
        if self.cols.capacity() < cols_len {
            self.cols.reserve(cols_len - self.cols.len());
            self.grow_events += 1;
        }
        self.cols.resize(cols_len, T::default());
        (&self.shape, &self.front, &mut self.cols)
    }

    /// Resizes the back slab for `back_len` total elements and hands out the
    /// views the GEMM phase of a blocked convolution needs: `(im2row panel,
    /// back slab)`.
    pub(crate) fn cols_and_back(&mut self, back_len: usize) -> (&[T], &mut [T]) {
        self.reserve_slab(false, back_len);
        self.back.resize(back_len, T::default());
        (&self.cols, &mut self.back)
    }

    /// The front slab, mutably (in-place layer sweeps and hook application).
    pub(crate) fn front_mut(&mut self) -> &mut [T] {
        &mut self.front
    }

    /// Swaps the front and back slabs after a sweep wrote into the back.
    pub(crate) fn swap(&mut self) {
        std::mem::swap(&mut self.front, &mut self.back);
    }

    fn reserve_slab(&mut self, front: bool, len: usize) {
        let slab = if front { &mut self.front } else { &mut self.back };
        if slab.capacity() < len {
            slab.reserve(len - slab.len());
            self.grow_events += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_are_laid_out_contiguously() {
        let mut scratch = Scratch::new();
        let rows: Vec<Vec<f32>> = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        scratch.load_rows(&[2], rows.iter().map(Vec::as_slice));
        assert_eq!(scratch.rows(), 2);
        assert_eq!(scratch.row_shape(), &[2]);
        assert_eq!(scratch.row(0), &[1.0, 2.0]);
        assert_eq!(scratch.row(1), &[3.0, 4.0]);
    }

    #[test]
    fn raw_word_rows_use_the_same_arena() {
        let mut scratch: Scratch<i32> = Scratch::new();
        let rows: Vec<Vec<i32>> = vec![vec![-128, 127], vec![0, 16]];
        scratch.load_rows(&[2], rows.iter().map(Vec::as_slice));
        assert_eq!(scratch.row(0), &[-128, 127]);
        assert_eq!(scratch.row(1), &[0, 16]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_row_panics() {
        let mut scratch = Scratch::new();
        let row = [1.0f32];
        scratch.load_rows(&[1], [&row[..]].into_iter());
        let _ = scratch.row(1);
    }

    #[test]
    fn grow_events_stop_once_warm() {
        let mut scratch = Scratch::with_capacity(4, 16);
        let row = [0.5f32; 16];
        for _ in 0..3 {
            scratch.load_rows(&[16], [&row[..]; 4].into_iter());
            scratch.slabs_for_sweep(4 * 16);
            scratch.swap();
        }
        let warm = scratch.grow_events();
        for _ in 0..10 {
            scratch.load_rows(&[16], [&row[..]; 4].into_iter());
            scratch.slabs_for_sweep(4 * 16);
            scratch.swap();
        }
        assert_eq!(scratch.grow_events(), warm);
    }
}

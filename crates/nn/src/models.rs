//! Ready-made network topologies: the Grid World MLP and the paper's C3F2
//! drone policy network (Fig. 6b).

use rand::Rng;

use crate::element::Element;
use crate::layer::{Conv2d, Linear, MaxPool2d};
use crate::{Layer, LayerKind, Network, NetworkBase};

/// Builds a multi-layer perceptron with ReLU activations between layers.
///
/// `sizes` lists the feature count of every layer boundary, e.g. `[100, 64, 4]`
/// creates `Linear(100→64) → ReLU → Linear(64→4)`. This is the topology used
/// for the neural-network-based Grid World policy.
///
/// # Panics
///
/// Panics if fewer than two sizes are given.
///
/// # Examples
///
/// ```
/// use navft_nn::{mlp, Tensor};
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let mut rng = SmallRng::seed_from_u64(1);
/// let policy = mlp(&[100, 64, 4], &mut rng);
/// assert_eq!(policy.forward(&Tensor::zeros(&[100])).len(), 4);
/// ```
pub fn mlp<R: Rng + ?Sized>(sizes: &[usize], rng: &mut R) -> Network {
    assert!(sizes.len() >= 2, "an MLP needs at least an input and an output size");
    let mut layers = Vec::new();
    for (i, pair) in sizes.windows(2).enumerate() {
        layers.push(Layer::Linear(Linear::new(pair[0], pair[1], rng)));
        if i + 2 < sizes.len() {
            layers.push(Layer::Relu);
        }
    }
    Network::new(layers)
}

/// Configuration of the C3F2 policy network (three convolutional layers
/// followed by two fully-connected layers, Fig. 6b of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct C3f2Config {
    /// Number of input channels of the camera frame.
    pub input_channels: usize,
    /// Height/width of the (square) camera frame.
    pub input_size: usize,
    /// Output channels of the three convolutional layers.
    pub conv_channels: [usize; 3],
    /// Hidden width of the first fully-connected layer.
    pub fc_hidden: usize,
    /// Number of discrete actions (the paper uses 25).
    pub actions: usize,
}

impl C3f2Config {
    /// The full-size configuration of the paper: 103×103×3 input, 96/64/64
    /// convolution channels, a 1024-wide hidden layer and 25 actions.
    pub fn paper() -> C3f2Config {
        C3f2Config {
            input_channels: 3,
            input_size: 103,
            conv_channels: [96, 64, 64],
            fc_hidden: 1024,
            actions: 25,
        }
    }

    /// A reduced configuration (31×31×1 input, 8/8/16 channels, 64-wide
    /// hidden layer) with the same topology, used for fast tests and
    /// campaigns where the full-size network would dominate wall-clock time.
    pub fn scaled() -> C3f2Config {
        C3f2Config {
            input_channels: 1,
            input_size: 31,
            conv_channels: [8, 8, 16],
            fc_hidden: 64,
            actions: 25,
        }
    }

    /// Builds the network: `conv1 → relu → pool → conv2 → relu → pool →
    /// conv3 → relu → flatten → fc1 → relu → fc2`.
    ///
    /// # Panics
    ///
    /// Panics if the input size is too small for the convolution stack.
    pub fn build<R: Rng + ?Sized>(&self, rng: &mut R) -> Network {
        let (k1, s1) = if self.input_size >= 64 { (7, 4) } else { (5, 2) };
        let conv1 = Conv2d::new(self.input_channels, self.conv_channels[0], k1, s1, rng);
        let after1 = conv1.output_size(self.input_size);
        let pool1 = MaxPool2d::new(2, 2);
        let after_p1 = pool1.output_size(after1);

        let k2 = if after_p1 >= 8 { 5 } else { 3 };
        let conv2 = Conv2d::new(self.conv_channels[0], self.conv_channels[1], k2, 1, rng);
        let after2 = conv2.output_size(after_p1);
        let (pk2, ps2) = if after2 >= 6 { (2, 2) } else { (2, 1) };
        let pool2 = MaxPool2d::new(pk2, ps2);
        let after_p2 = pool2.output_size(after2);

        let conv3 = Conv2d::new(self.conv_channels[1], self.conv_channels[2], 3, 1, rng);
        let after3 = conv3.output_size(after_p2);
        assert!(after3 >= 1, "C3F2 input size {} is too small", self.input_size);

        let flat = self.conv_channels[2] * after3 * after3;
        let fc1 = Linear::new(flat, self.fc_hidden, rng);
        let fc2 = Linear::new(self.fc_hidden, self.actions, rng);

        Network::new(vec![
            Layer::Conv2d(conv1),
            Layer::Relu,
            Layer::MaxPool2d(pool1),
            Layer::Conv2d(conv2),
            Layer::Relu,
            Layer::MaxPool2d(pool2),
            Layer::Conv2d(conv3),
            Layer::Relu,
            Layer::Flatten,
            Layer::Linear(fc1),
            Layer::Relu,
            Layer::Linear(fc2),
        ])
    }

    /// The flat input length (`channels × size × size`).
    pub fn input_len(&self) -> usize {
        self.input_channels * self.input_size * self.input_size
    }

    /// The shape of the expected input tensor.
    pub fn input_shape(&self) -> [usize; 3] {
        [self.input_channels, self.input_size, self.input_size]
    }

    /// Index (within the network's layer stack) of the first fully-connected
    /// layer — the start of the transfer-learning trainable tail.
    pub fn first_fc_layer(&self) -> usize {
        9
    }
}

/// Builds the full-size C3F2 network of the paper.
pub fn c3f2<R: Rng + ?Sized>(rng: &mut R) -> Network {
    C3f2Config::paper().build(rng)
}

/// Builds the reduced C3F2 network used for fast experimentation.
pub fn c3f2_scaled<R: Rng + ?Sized>(rng: &mut R) -> Network {
    C3f2Config::scaled().build(rng)
}

/// Human-readable names for a network's parametric layers, in order
/// (`conv1`, `conv2`, …, `fc1`, `fc2`, …), on any backend.
///
/// Used by the per-layer sensitivity experiment (Fig. 7d) to label its rows.
pub fn parametric_layer_names<E: Element>(network: &NetworkBase<E>) -> Vec<(String, usize)> {
    let mut conv = 0;
    let mut fc = 0;
    network
        .parametric_layers()
        .into_iter()
        .map(|index| {
            let name = match network.layers()[index].kind() {
                LayerKind::Conv2d => {
                    conv += 1;
                    format!("conv{conv}")
                }
                LayerKind::Linear => {
                    fc += 1;
                    format!("fc{fc}")
                }
                other => format!("{other}{index}"),
            };
            (name, index)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tensor;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn mlp_topology_alternates_linear_and_relu() {
        let mut rng = SmallRng::seed_from_u64(0);
        let net = mlp(&[10, 20, 5, 2], &mut rng);
        let kinds: Vec<LayerKind> = net.layers().iter().map(Layer::kind).collect();
        assert_eq!(
            kinds,
            vec![
                LayerKind::Linear,
                LayerKind::Relu,
                LayerKind::Linear,
                LayerKind::Relu,
                LayerKind::Linear
            ]
        );
    }

    #[test]
    #[should_panic(expected = "at least an input and an output")]
    fn mlp_rejects_single_size() {
        let mut rng = SmallRng::seed_from_u64(0);
        let _ = mlp(&[10], &mut rng);
    }

    #[test]
    fn scaled_c3f2_runs_end_to_end() {
        let mut rng = SmallRng::seed_from_u64(1);
        let config = C3f2Config::scaled();
        let net = config.build(&mut rng);
        let input = Tensor::zeros(&config.input_shape());
        let out = net.forward(&input);
        assert_eq!(out.len(), config.actions);
        assert_eq!(net.parametric_layers().len(), 5);
    }

    #[test]
    fn paper_c3f2_has_five_parametric_layers_and_25_actions() {
        let mut rng = SmallRng::seed_from_u64(2);
        let config = C3f2Config::paper();
        let net = config.build(&mut rng);
        assert_eq!(net.parametric_layers().len(), 5);
        let names = parametric_layer_names(&net);
        let labels: Vec<&str> = names.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(labels, vec!["conv1", "conv2", "conv3", "fc1", "fc2"]);
        // The last linear layer must emit the 25-way action distribution.
        let last = names.last().expect("has layers").1;
        if let Layer::Linear(linear) = &net.layers()[last] {
            assert_eq!(linear.out_features, 25);
        } else {
            panic!("fc2 should be a linear layer");
        }
    }

    #[test]
    fn first_fc_layer_points_at_a_linear_layer() {
        let mut rng = SmallRng::seed_from_u64(3);
        let config = C3f2Config::scaled();
        let net = config.build(&mut rng);
        assert_eq!(net.layers()[config.first_fc_layer()].kind(), LayerKind::Linear);
    }

    #[test]
    fn input_len_matches_shape() {
        let config = C3f2Config::paper();
        assert_eq!(config.input_len(), 3 * 103 * 103);
        assert_eq!(config.input_shape(), [3, 103, 103]);
    }

    #[test]
    fn layer_names_for_mlp_are_fc_only() {
        let mut rng = SmallRng::seed_from_u64(4);
        let net = mlp(&[4, 8, 2], &mut rng);
        let labels: Vec<String> =
            parametric_layer_names(&net).into_iter().map(|(n, _)| n).collect();
        assert_eq!(labels, vec!["fc1", "fc2"]);
    }
}

use std::fmt;
use std::ops::Range;

use navft_qformat::QFormat;

use crate::{Layer, LayerKind, Tensor};

/// Observer/mutator hooks invoked during a forward pass.
///
/// Hooks are how dynamic fault injection (transient faults in activations,
/// §3.3) and range instrumentation (the inference mitigation of §5.2) attach
/// to the network without the network knowing about fault models.
pub trait ForwardHooks {
    /// Called on the input feature map before the first layer.
    fn on_input(&mut self, values: &mut [f32]) {
        let _ = values;
    }

    /// Called on the activation buffer produced by layer `layer_index`.
    fn on_activation(&mut self, layer_index: usize, kind: LayerKind, values: &mut [f32]) {
        let _ = (layer_index, kind, values);
    }
}

/// A no-op hook set: the fault-free forward pass.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoHooks;

impl ForwardHooks for NoHooks {}

/// Records the observed value range of every activation buffer.
///
/// Running this over a representative set of inputs yields the per-layer
/// `(aᵢ, bᵢ)` ranges the paper's range-based anomaly detector instruments
/// after training.
#[derive(Debug, Clone, Default)]
pub struct RangeRecorder {
    ranges: Vec<(f32, f32)>,
}

impl RangeRecorder {
    /// Creates an empty recorder.
    pub fn new() -> RangeRecorder {
        RangeRecorder::default()
    }

    /// The observed `(min, max)` per layer index (empty slots are
    /// `(inf, -inf)` if a layer was never observed).
    pub fn ranges(&self) -> &[(f32, f32)] {
        &self.ranges
    }
}

impl ForwardHooks for RangeRecorder {
    fn on_activation(&mut self, layer_index: usize, _kind: LayerKind, values: &mut [f32]) {
        if self.ranges.len() <= layer_index {
            self.ranges.resize(layer_index + 1, (f32::INFINITY, f32::NEG_INFINITY));
        }
        let (lo, hi) = &mut self.ranges[layer_index];
        for &v in values.iter() {
            *lo = lo.min(v);
            *hi = hi.max(v);
        }
    }
}

/// A record of every intermediate activation of a forward pass, used for
/// training.
#[derive(Debug, Clone)]
pub struct ForwardTrace {
    /// `values[0]` is the input; `values[i + 1]` is the output of layer `i`.
    pub values: Vec<Tensor>,
}

impl ForwardTrace {
    /// The network output (the last recorded value).
    pub fn output(&self) -> &Tensor {
        self.values.last().expect("trace always holds the input")
    }
}

/// A feed-forward network: an ordered stack of [`Layer`]s plus an optional
/// activation quantization format.
///
/// The network exposes its weight buffers per layer and lets callers hook the
/// activation buffers produced during a forward pass, which together form the
/// complete fault-injection surface of the paper (input / weight / activation
/// buffers).
///
/// # Examples
///
/// ```
/// use navft_nn::{mlp, Tensor};
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let mut rng = SmallRng::seed_from_u64(0);
/// let net = mlp(&[4, 8, 2], &mut rng);
/// let out = net.forward(&Tensor::zeros(&[4]));
/// assert_eq!(out.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Network {
    layers: Vec<Layer>,
    activation_format: Option<QFormat>,
}

impl Network {
    /// Builds a network from a stack of layers.
    pub fn new(layers: Vec<Layer>) -> Network {
        Network { layers, activation_format: None }
    }

    /// Quantizes every activation buffer to `format` after each layer,
    /// emulating a fixed-point accelerator datapath.
    pub fn with_activation_format(mut self, format: QFormat) -> Network {
        self.activation_format = Some(format);
        self
    }

    /// The activation quantization format, if any.
    pub fn activation_format(&self) -> Option<QFormat> {
        self.activation_format
    }

    /// The layers of the network.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Indices of the layers that hold weights (conv and linear layers), in
    /// network order. These are the targets of per-layer weight fault
    /// injection (Fig. 7d).
    pub fn parametric_layers(&self) -> Vec<usize> {
        self.layers.iter().enumerate().filter(|(_, l)| l.is_parametric()).map(|(i, _)| i).collect()
    }

    /// The weight buffer of layer `index`, if that layer has one.
    pub fn layer_weights(&self, index: usize) -> Option<&[f32]> {
        self.layers.get(index).and_then(|l| l.weights())
    }

    /// The weight buffer of layer `index`, mutably.
    pub fn layer_weights_mut(&mut self, index: usize) -> Option<&mut Vec<f32>> {
        self.layers.get_mut(index).and_then(|l| l.weights_mut())
    }

    /// Total number of weights across all layers.
    pub fn weight_count(&self) -> usize {
        self.layers.iter().filter_map(|l| l.weights().map(<[f32]>::len)).sum()
    }

    /// The range of flat weight indices occupied by layer `index` when all
    /// weight buffers are viewed as one concatenated buffer.
    ///
    /// Returns an empty range for non-parametric layers.
    pub fn weight_span(&self, index: usize) -> Range<usize> {
        let mut start = 0;
        for (i, layer) in self.layers.iter().enumerate() {
            let len = layer.weights().map_or(0, <[f32]>::len);
            if i == index {
                return start..start + len;
            }
            start += len;
        }
        start..start
    }

    /// Copies all weights into one concatenated buffer (layer order).
    pub fn flat_weights(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.weight_count());
        for layer in &self.layers {
            if let Some(w) = layer.weights() {
                out.extend_from_slice(w);
            }
        }
        out
    }

    /// Overwrites all weights from one concatenated buffer (layer order).
    ///
    /// # Panics
    ///
    /// Panics if `flat.len()` differs from [`Network::weight_count`].
    pub fn set_flat_weights(&mut self, flat: &[f32]) {
        assert_eq!(flat.len(), self.weight_count(), "flat weight buffer length mismatch");
        let mut start = 0;
        for layer in &mut self.layers {
            if let Some(w) = layer.weights_mut() {
                let len = w.len();
                w.copy_from_slice(&flat[start..start + len]);
                start += len;
            }
        }
    }

    /// Applies `f` to every weight buffer (e.g. to corrupt or re-enforce
    /// faults), passing the layer index.
    pub fn for_each_weight_buffer<F: FnMut(usize, &mut Vec<f32>)>(&mut self, mut f: F) {
        for (i, layer) in self.layers.iter_mut().enumerate() {
            if let Some(w) = layer.weights_mut() {
                f(i, w);
            }
        }
    }

    /// Snaps every weight to `format` (post-training quantization).
    pub fn quantize_weights(&mut self, format: QFormat) {
        self.for_each_weight_buffer(|_, w| {
            for v in w.iter_mut() {
                *v = navft_qformat::QValue::quantize(*v, format).to_f32();
            }
        });
    }

    /// The `(min, max)` of each parametric layer's weights, keyed by layer
    /// index — the instrumentation the range-based anomaly detector derives
    /// once the policy is trained.
    pub fn weight_ranges(&self) -> Vec<(usize, f32, f32)> {
        self.layers
            .iter()
            .enumerate()
            .filter_map(|(i, l)| {
                l.weights().map(|w| {
                    let lo = w.iter().copied().fold(f32::INFINITY, f32::min);
                    let hi = w.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                    (i, lo, hi)
                })
            })
            .collect()
    }

    /// Runs a forward pass with no hooks.
    pub fn forward(&self, input: &Tensor) -> Tensor {
        self.forward_with(input, &mut NoHooks)
    }

    /// Runs a forward pass, invoking `hooks` on the input buffer and on every
    /// layer's activation buffer.
    pub fn forward_with<H: ForwardHooks + ?Sized>(&self, input: &Tensor, hooks: &mut H) -> Tensor {
        let mut current = input.clone();
        hooks.on_input(current.data_mut());
        for (i, layer) in self.layers.iter().enumerate() {
            current = layer.forward(&current);
            if let Some(format) = self.activation_format {
                for v in current.data_mut().iter_mut() {
                    *v = navft_qformat::QValue::quantize(*v, format).to_f32();
                }
            }
            hooks.on_activation(i, layer.kind(), current.data_mut());
        }
        current
    }

    /// Runs a forward pass recording every intermediate activation (used by
    /// [`Network::backward_tail`]).
    pub fn forward_traced(&self, input: &Tensor) -> ForwardTrace {
        let mut values = Vec::with_capacity(self.layers.len() + 1);
        values.push(input.clone());
        let mut current = input.clone();
        for layer in &self.layers {
            current = layer.forward(&current);
            values.push(current.clone());
        }
        ForwardTrace { values }
    }

    /// Back-propagates `output_grad` through the trailing run of
    /// `Linear`/`Relu`/`Flatten` layers and applies an SGD update with
    /// learning rate `lr`, training only layers with index
    /// `>= trainable_from`.
    ///
    /// This covers both use cases of the paper: the Grid World MLP (all
    /// layers are linear/ReLU) and the drone policy's transfer-learning
    /// fine-tuning, which retrains only the last two fully-connected layers
    /// while the convolutional feature extractor stays frozen.
    ///
    /// Returns the number of parametric layers that were updated.
    ///
    /// # Panics
    ///
    /// Panics if `output_grad` does not match the network output length or
    /// the trace was produced by a different topology.
    pub fn backward_tail(
        &mut self,
        trace: &ForwardTrace,
        output_grad: &[f32],
        lr: f32,
        trainable_from: usize,
    ) -> usize {
        assert_eq!(
            trace.values.len(),
            self.layers.len() + 1,
            "trace does not match network topology"
        );
        assert_eq!(output_grad.len(), trace.output().len(), "output gradient length mismatch");
        let mut grad = output_grad.to_vec();
        let mut updated = 0;
        for index in (0..self.layers.len()).rev() {
            let input = &trace.values[index];
            match &mut self.layers[index] {
                Layer::Linear(linear) => {
                    let x = input.data();
                    let mut input_grad = vec![0.0f32; linear.in_features];
                    for (o, &g) in grad.iter().enumerate().take(linear.out_features) {
                        let row_start = o * linear.in_features;
                        if index >= trainable_from {
                            linear.bias[o] -= lr * g;
                        }
                        for j in 0..linear.in_features {
                            input_grad[j] += linear.weights[row_start + j] * g;
                            if index >= trainable_from {
                                linear.weights[row_start + j] -= lr * g * x[j];
                            }
                        }
                    }
                    if index >= trainable_from {
                        updated += 1;
                    }
                    grad = input_grad;
                }
                Layer::Relu => {
                    for (g, &x) in grad.iter_mut().zip(input.data().iter()) {
                        if x <= 0.0 {
                            *g = 0.0;
                        }
                    }
                }
                Layer::Flatten => {
                    // Shape-only change: the gradient passes through unchanged.
                }
                Layer::Conv2d(_) | Layer::MaxPool2d(_) => {
                    // The frozen feature extractor: stop back-propagation here.
                    break;
                }
            }
            if index == 0 {
                break;
            }
        }
        updated
    }
}

impl fmt::Display for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Network[")?;
        for (i, layer) in self.layers.iter().enumerate() {
            if i > 0 {
                write!(f, " -> ")?;
            }
            write!(f, "{}", layer.kind())?;
        }
        write!(f, "] ({} weights)", self.weight_count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Linear;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn tiny_mlp(seed: u64) -> Network {
        let mut rng = SmallRng::seed_from_u64(seed);
        crate::mlp(&[3, 8, 2], &mut rng)
    }

    #[test]
    fn forward_produces_output_of_last_layer_size() {
        let net = tiny_mlp(0);
        let out = net.forward(&Tensor::from_vec(&[3], vec![0.1, -0.2, 0.3]));
        assert_eq!(out.shape(), &[2]);
    }

    #[test]
    fn parametric_layers_and_weight_spans() {
        let net = tiny_mlp(0);
        let params = net.parametric_layers();
        assert_eq!(params.len(), 2);
        let span0 = net.weight_span(params[0]);
        let span1 = net.weight_span(params[1]);
        assert_eq!(span0.len(), 3 * 8);
        assert_eq!(span1.len(), 8 * 2);
        assert_eq!(span1.start, span0.end);
        assert_eq!(net.weight_count(), 3 * 8 + 8 * 2);
    }

    #[test]
    fn flat_weights_roundtrip() {
        let mut net = tiny_mlp(1);
        let flat = net.flat_weights();
        let mut modified = flat.clone();
        modified[0] = 123.0;
        net.set_flat_weights(&modified);
        assert_eq!(net.flat_weights()[0], 123.0);
        assert_eq!(net.flat_weights()[1..], flat[1..]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn set_flat_weights_rejects_wrong_length() {
        let mut net = tiny_mlp(1);
        net.set_flat_weights(&[0.0; 3]);
    }

    #[test]
    fn hooks_see_and_can_mutate_activations() {
        struct Zeroer {
            calls: usize,
        }
        impl ForwardHooks for Zeroer {
            fn on_activation(&mut self, _i: usize, kind: LayerKind, values: &mut [f32]) {
                self.calls += 1;
                if kind == LayerKind::Linear {
                    values.iter_mut().for_each(|v| *v = 0.0);
                }
            }
        }
        let net = tiny_mlp(2);
        let mut hook = Zeroer { calls: 0 };
        let out = net.forward_with(&Tensor::from_vec(&[3], vec![1.0, 1.0, 1.0]), &mut hook);
        assert_eq!(hook.calls, net.num_layers());
        assert!(out.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn range_recorder_collects_per_layer_ranges() {
        let net = tiny_mlp(3);
        let mut recorder = RangeRecorder::new();
        for i in 0..5 {
            let x = Tensor::full(&[3], i as f32 * 0.1);
            net.forward_with(&x, &mut recorder);
        }
        assert_eq!(recorder.ranges().len(), net.num_layers());
        for &(lo, hi) in recorder.ranges() {
            assert!(lo <= hi);
        }
    }

    #[test]
    fn quantize_weights_snaps_to_format() {
        let mut net = tiny_mlp(4);
        net.quantize_weights(QFormat::Q3_4);
        for &w in net.flat_weights().iter() {
            let snapped = navft_qformat::QValue::quantize(w, QFormat::Q3_4).to_f32();
            assert_eq!(w, snapped);
        }
    }

    #[test]
    fn activation_format_quantizes_outputs() {
        let mut rng = SmallRng::seed_from_u64(5);
        let net = crate::mlp(&[2, 2], &mut rng).with_activation_format(QFormat::Q3_4);
        assert_eq!(net.activation_format(), Some(QFormat::Q3_4));
        let out = net.forward(&Tensor::from_vec(&[2], vec![0.33, 0.77]));
        for &v in out.data() {
            assert_eq!(v, navft_qformat::QValue::quantize(v, QFormat::Q3_4).to_f32());
        }
    }

    #[test]
    fn weight_ranges_cover_parametric_layers() {
        let net = tiny_mlp(6);
        let ranges = net.weight_ranges();
        assert_eq!(ranges.len(), 2);
        for (_, lo, hi) in ranges {
            assert!(lo < hi);
        }
    }

    #[test]
    fn backward_tail_reduces_regression_loss() {
        // Train y = W x to map [1, 0] -> [1, -1] with SGD steps.
        let mut rng = SmallRng::seed_from_u64(7);
        let mut net = crate::mlp(&[2, 8, 2], &mut rng);
        let x = Tensor::from_vec(&[2], vec![1.0, 0.0]);
        let target = [1.0f32, -1.0];
        let loss = |net: &Network| -> f32 {
            let out = net.forward(&x);
            out.data().iter().zip(target.iter()).map(|(o, t)| (o - t).powi(2)).sum()
        };
        let before = loss(&net);
        for _ in 0..200 {
            let trace = net.forward_traced(&x);
            let out = trace.output().data().to_vec();
            let grad: Vec<f32> =
                out.iter().zip(target.iter()).map(|(o, t)| 2.0 * (o - t)).collect();
            let updated = net.backward_tail(&trace, &grad, 0.05, 0);
            assert_eq!(updated, 2);
        }
        let after = loss(&net);
        assert!(after < before * 0.05, "loss should shrink: before {before}, after {after}");
    }

    #[test]
    fn backward_tail_respects_trainable_from() {
        let mut net = tiny_mlp(8);
        let first_linear = net.parametric_layers()[0];
        let last_linear = net.parametric_layers()[1];
        let frozen_before = net.layer_weights(first_linear).expect("weights").to_vec();
        let x = Tensor::from_vec(&[3], vec![0.5, -0.5, 1.0]);
        let trace = net.forward_traced(&x);
        let grad = vec![1.0f32; 2];
        let updated = net.backward_tail(&trace, &grad, 0.1, last_linear);
        assert_eq!(updated, 1);
        assert_eq!(net.layer_weights(first_linear).expect("weights"), frozen_before.as_slice());
    }

    #[test]
    fn backward_stops_at_conv_layers() {
        let mut rng = SmallRng::seed_from_u64(9);
        let conv = crate::layer::Conv2d::new(1, 2, 2, 1, &mut rng);
        let conv_weights = conv.weights.clone();
        let mut net = Network::new(vec![
            Layer::Conv2d(conv),
            Layer::Relu,
            Layer::Flatten,
            // in_features = channels x height x width = 2 x 1 x 1
            Layer::Linear(Linear::new(2, 2, &mut rng)),
        ]);
        let x = Tensor::full(&[1, 2, 2], 0.5);
        let trace = net.forward_traced(&x);
        let updated = net.backward_tail(&trace, &[0.5, -0.5], 0.1, 0);
        assert_eq!(updated, 1);
        assert_eq!(net.layer_weights(0).expect("conv weights"), conv_weights.as_slice());
    }

    #[test]
    fn display_lists_layer_kinds() {
        let net = tiny_mlp(10);
        let text = net.to_string();
        assert!(text.contains("linear"));
        assert!(text.contains("relu"));
        assert!(text.contains("weights"));
    }
}

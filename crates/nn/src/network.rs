//! The generic feed-forward network: one implementation of every forward
//! path, instantiated per numeric backend.
//!
//! [`NetworkBase`] is generic over the [`Element`] type; [`Network`] is its
//! `f32` alias and [`QNetwork`](crate::QNetwork) its raw-word alias. All
//! shared machinery — layer stacking, weight spans, the single-sample and
//! batched forward passes, the blocked-GEMM engine — lives here exactly
//! once; backend-specific surface (training, quantization, raw-word access)
//! lives in per-alias `impl` blocks.

use std::fmt;
use std::ops::Range;

use navft_qformat::QFormat;

use crate::element::Element;
use crate::engine::{EngineConfig, KernelPath, SweepEvent};
use crate::tensor::TensorBase;
use crate::{Layer, LayerBase, LayerKind, Scratch, Tensor};

/// Observer/mutator hooks invoked during an `f32` forward pass.
///
/// Hooks are how dynamic fault injection (transient faults in activations,
/// §3.3) and range instrumentation (the inference mitigation of §5.2) attach
/// to the network without the network knowing about fault models.
///
/// # Batched passes
///
/// [`Network::forward_batch_with`] evaluates B inputs per layer sweep and
/// reports each row through the `on_batch_*` methods, whose defaults forward
/// to the per-sample methods with the row index dropped. A hook written for
/// single-sample inference therefore keeps working unchanged on the batched
/// path; hooks that need per-row behaviour (e.g. an independently seeded
/// fault injector per episode) override the batch methods or wrap one hook
/// per row in [`PerRowHooks`].
///
/// The quantized counterpart over live raw words is
/// [`QForwardHooks`](crate::QForwardHooks); both feed the generic forward
/// paths through the [`HooksFor`] bridge.
pub trait ForwardHooks {
    /// Called on the input feature map before the first layer.
    fn on_input(&mut self, values: &mut [f32]) {
        let _ = values;
    }

    /// Called on the activation buffer produced by layer `layer_index`.
    fn on_activation(&mut self, layer_index: usize, kind: LayerKind, values: &mut [f32]) {
        let _ = (layer_index, kind, values);
    }

    /// Called on batch row `batch_row` of the input before the first layer
    /// of a batched pass. Defaults to [`ForwardHooks::on_input`].
    fn on_batch_input(&mut self, batch_row: usize, values: &mut [f32]) {
        let _ = batch_row;
        self.on_input(values);
    }

    /// Called on batch row `batch_row` of the activation buffer produced by
    /// layer `layer_index` during a batched pass. Defaults to
    /// [`ForwardHooks::on_activation`].
    fn on_batch_activation(
        &mut self,
        batch_row: usize,
        layer_index: usize,
        kind: LayerKind,
        values: &mut [f32],
    ) {
        let _ = batch_row;
        self.on_activation(layer_index, kind, values);
    }
}

/// The bridge between an element type and its hook trait: the generic
/// forward paths are written once against `HooksFor<E>`, and blanket
/// implementations route `E = f32` to [`ForwardHooks`] and `E = i32` to
/// [`QForwardHooks`](crate::QForwardHooks). Existing hook types therefore
/// work unchanged on the generic engine.
pub trait HooksFor<E: Element> {
    /// Reports the input buffer of a single-sample pass.
    fn input(&mut self, values: &mut [E]);
    /// Reports layer `layer_index`'s activation buffer of a single-sample
    /// pass.
    fn activation(&mut self, layer_index: usize, kind: LayerKind, values: &mut [E]);
    /// Reports batch row `batch_row` of the input of a batched pass.
    fn batch_input(&mut self, batch_row: usize, values: &mut [E]);
    /// Reports batch row `batch_row` of layer `layer_index`'s activation
    /// buffer of a batched pass.
    fn batch_activation(
        &mut self,
        batch_row: usize,
        layer_index: usize,
        kind: LayerKind,
        values: &mut [E],
    );
}

impl<H: ForwardHooks + ?Sized> HooksFor<f32> for H {
    fn input(&mut self, values: &mut [f32]) {
        self.on_input(values);
    }

    fn activation(&mut self, layer_index: usize, kind: LayerKind, values: &mut [f32]) {
        self.on_activation(layer_index, kind, values);
    }

    fn batch_input(&mut self, batch_row: usize, values: &mut [f32]) {
        self.on_batch_input(batch_row, values);
    }

    fn batch_activation(
        &mut self,
        batch_row: usize,
        layer_index: usize,
        kind: LayerKind,
        values: &mut [f32],
    ) {
        self.on_batch_activation(batch_row, layer_index, kind, values);
    }
}

/// Routes each batch row of a batched forward pass to its own hook instance.
///
/// This is the bit-exactness bridge between batched and per-sample
/// inference under *stateful* hooks: row `b` of
/// [`Network::forward_batch_with`] sees exactly the call sequence that a
/// standalone [`Network::forward_with`] using `hooks[b]` would see, so a
/// per-episode fault injector seeded per row corrupts identically on either
/// path. On the per-sample methods (a non-batched pass) the adapter behaves
/// as row 0.
#[derive(Debug, Clone)]
pub struct PerRowHooks<H> {
    hooks: Vec<H>,
}

impl<H: ForwardHooks> PerRowHooks<H> {
    /// Wraps one hook per batch row.
    pub fn new(hooks: Vec<H>) -> PerRowHooks<H> {
        PerRowHooks { hooks }
    }

    /// The per-row hooks.
    pub fn hooks(&self) -> &[H] {
        &self.hooks
    }

    /// The per-row hooks, mutably.
    pub fn hooks_mut(&mut self) -> &mut [H] {
        &mut self.hooks
    }

    /// Unwraps into the per-row hooks.
    pub fn into_inner(self) -> Vec<H> {
        self.hooks
    }
}

impl<H: ForwardHooks> ForwardHooks for PerRowHooks<H> {
    fn on_input(&mut self, values: &mut [f32]) {
        if let Some(hook) = self.hooks.first_mut() {
            hook.on_input(values);
        }
    }

    fn on_activation(&mut self, layer_index: usize, kind: LayerKind, values: &mut [f32]) {
        if let Some(hook) = self.hooks.first_mut() {
            hook.on_activation(layer_index, kind, values);
        }
    }

    fn on_batch_input(&mut self, batch_row: usize, values: &mut [f32]) {
        assert!(batch_row < self.hooks.len(), "PerRowHooks holds no hook for row {batch_row}");
        self.hooks[batch_row].on_input(values);
    }

    fn on_batch_activation(
        &mut self,
        batch_row: usize,
        layer_index: usize,
        kind: LayerKind,
        values: &mut [f32],
    ) {
        assert!(batch_row < self.hooks.len(), "PerRowHooks holds no hook for row {batch_row}");
        self.hooks[batch_row].on_activation(layer_index, kind, values);
    }
}

/// Routes each batch row of a batched forward pass to its own dynamically
/// dispatched hook — the backend-generic counterpart of [`PerRowHooks`].
///
/// Where [`PerRowHooks`] owns a homogeneous `Vec<H>` of `f32` hooks, this
/// adapter borrows one `&mut dyn HooksFor<E>` per row, so callers that hold
/// heterogeneous boxed hooks keyed by some external identity — a serving
/// daemon's per-session fault/scrub state, coalesced into one batch in
/// arrival order — can run them through a single batched sweep. The
/// bit-exactness contract is the same: row `b` sees exactly the
/// input/activation call sequence a standalone single-sample pass using
/// `rows[b]` would see, so per-row stateful hooks (seeded fault injectors,
/// scrub counters) behave identically at any batch composition. On the
/// single-sample methods (a non-batched pass) the adapter behaves as row 0.
///
/// # Panics
///
/// The batch methods panic if the pass has more rows than hooks.
pub struct DynRowHooks<'a, E: Element> {
    rows: Vec<&'a mut dyn HooksFor<E>>,
}

impl<'a, E: Element> DynRowHooks<'a, E> {
    /// Wraps one borrowed hook per batch row, in batch-row order.
    pub fn new(rows: Vec<&'a mut dyn HooksFor<E>>) -> DynRowHooks<'a, E> {
        DynRowHooks { rows }
    }

    /// Number of rows the adapter covers.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the adapter covers no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl<E: Element> HooksFor<E> for DynRowHooks<'_, E> {
    fn input(&mut self, values: &mut [E]) {
        if let Some(hook) = self.rows.first_mut() {
            hook.input(values);
        }
    }

    fn activation(&mut self, layer_index: usize, kind: LayerKind, values: &mut [E]) {
        if let Some(hook) = self.rows.first_mut() {
            hook.activation(layer_index, kind, values);
        }
    }

    fn batch_input(&mut self, batch_row: usize, values: &mut [E]) {
        assert!(batch_row < self.rows.len(), "DynRowHooks holds no hook for row {batch_row}");
        self.rows[batch_row].input(values);
    }

    fn batch_activation(
        &mut self,
        batch_row: usize,
        layer_index: usize,
        kind: LayerKind,
        values: &mut [E],
    ) {
        assert!(batch_row < self.rows.len(), "DynRowHooks holds no hook for row {batch_row}");
        self.rows[batch_row].activation(layer_index, kind, values);
    }
}

/// A no-op hook set: the fault-free forward pass (either backend).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoHooks;

impl ForwardHooks for NoHooks {}

/// Records the observed value range of every activation buffer.
///
/// Running this over a representative set of inputs yields the per-layer
/// `(aᵢ, bᵢ)` ranges the paper's range-based anomaly detector instruments
/// after training.
#[derive(Debug, Clone, Default)]
pub struct RangeRecorder {
    ranges: Vec<(f32, f32)>,
}

impl RangeRecorder {
    /// Creates an empty recorder.
    pub fn new() -> RangeRecorder {
        RangeRecorder::default()
    }

    /// The observed `(min, max)` per layer index (empty slots are
    /// `(inf, -inf)` if a layer was never observed).
    pub fn ranges(&self) -> &[(f32, f32)] {
        &self.ranges
    }
}

impl ForwardHooks for RangeRecorder {
    fn on_activation(&mut self, layer_index: usize, _kind: LayerKind, values: &mut [f32]) {
        if self.ranges.len() <= layer_index {
            self.ranges.resize(layer_index + 1, (f32::INFINITY, f32::NEG_INFINITY));
        }
        let (lo, hi) = &mut self.ranges[layer_index];
        for &v in values.iter() {
            *lo = lo.min(v);
            *hi = hi.max(v);
        }
    }
}

/// A record of every intermediate activation of a forward pass, used for
/// training.
///
/// A trace can be reused across passes through
/// [`Network::forward_traced_into`], which overwrites the recorded tensors in
/// place instead of reallocating them.
#[derive(Debug, Clone, Default)]
pub struct ForwardTrace {
    /// `values[0]` is the input; `values[i + 1]` is the output of layer `i`.
    pub values: Vec<Tensor>,
}

impl ForwardTrace {
    /// An empty trace, ready to be filled by [`Network::forward_traced_into`].
    pub fn new() -> ForwardTrace {
        ForwardTrace::default()
    }

    /// The network output (the last recorded value).
    ///
    /// # Panics
    ///
    /// Panics on a trace that has never been filled.
    pub fn output(&self) -> &Tensor {
        self.values.last().expect("trace always holds the input")
    }
}

/// A feed-forward network: an ordered stack of layers plus the backend's
/// metadata, generic over the numeric [`Element`] type.
///
/// The network exposes its weight buffers per layer and lets callers hook the
/// activation buffers produced during a forward pass, which together form the
/// complete fault-injection surface of the paper (input / weight / activation
/// buffers).
///
/// Use the aliases: [`Network`] for the `f32` backend,
/// [`QNetwork`](crate::QNetwork) for the native fixed-point backend. Both
/// run every forward pass — single-sample, scratch and batched — through the
/// same generic code and the same blocked-GEMM engine; only the per-element
/// arithmetic differs.
///
/// # Examples
///
/// ```
/// use navft_nn::{mlp, Tensor};
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let mut rng = SmallRng::seed_from_u64(0);
/// let net = mlp(&[4, 8, 2], &mut rng);
/// let out = net.forward(&Tensor::zeros(&[4]));
/// assert_eq!(out.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkBase<E: Element> {
    layers: Vec<LayerBase<E>>,
    meta: E::NetMeta,
}

/// A feed-forward `f32` network (the trainable backend, optionally
/// simulating a fixed-point datapath by requantizing activations).
pub type Network = NetworkBase<f32>;

impl Eq for NetworkBase<i32> {}

impl<E: Element> NetworkBase<E> {
    /// Builds a network from parts (the per-alias constructors).
    pub(crate) fn from_parts(layers: Vec<LayerBase<E>>, meta: E::NetMeta) -> NetworkBase<E> {
        NetworkBase { layers, meta }
    }

    /// The backend metadata (the optional simulation format for `f32`, the
    /// storage format for raw words, the affine scale for `i8`).
    pub fn net_meta(&self) -> &E::NetMeta {
        &self.meta
    }

    /// The layers of the network.
    pub fn layers(&self) -> &[LayerBase<E>] {
        &self.layers
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Indices of the layers that hold weights (conv and linear layers), in
    /// network order. These are the targets of per-layer weight fault
    /// injection (Fig. 7d).
    pub fn parametric_layers(&self) -> Vec<usize> {
        self.layers.iter().enumerate().filter(|(_, l)| l.is_parametric()).map(|(i, _)| i).collect()
    }

    /// The weight buffer of layer `index`, if that layer has one.
    pub fn layer_weights(&self, index: usize) -> Option<&[E]> {
        self.layers.get(index).and_then(|l| l.weights())
    }

    /// The weight buffer of layer `index`, mutably — the live storage
    /// weight-fault injection corrupts in place.
    pub fn layer_weights_mut(&mut self, index: usize) -> Option<&mut Vec<E>> {
        self.layers.get_mut(index).and_then(|l| l.weights_mut())
    }

    /// Total number of weights across all layers.
    pub fn weight_count(&self) -> usize {
        self.layers.iter().filter_map(|l| l.weights().map(<[E]>::len)).sum()
    }

    /// The range of flat weight indices occupied by layer `index` when all
    /// weight buffers are viewed as one concatenated buffer.
    ///
    /// Returns an empty range for non-parametric layers.
    pub fn weight_span(&self, index: usize) -> Range<usize> {
        let mut start = 0;
        for (i, layer) in self.layers.iter().enumerate() {
            let len = layer.weights().map_or(0, <[E]>::len);
            if i == index {
                return start..start + len;
            }
            start += len;
        }
        start..start
    }

    /// Applies `f` to every weight buffer (e.g. to corrupt or re-enforce
    /// faults), passing the layer index.
    pub fn for_each_weight_buffer<F: FnMut(usize, &mut Vec<E>)>(&mut self, mut f: F) {
        for (i, layer) in self.layers.iter_mut().enumerate() {
            if let Some(w) = layer.weights_mut() {
                f(i, w);
            }
        }
    }

    /// The `(min, max)` value of each parametric layer's weights, keyed by
    /// layer index — the instrumentation the range-based anomaly detector
    /// derives once the policy is trained. Raw-word weights report their
    /// dequantized values.
    pub fn weight_ranges(&self) -> Vec<(usize, f32, f32)> {
        self.layers
            .iter()
            .enumerate()
            .filter_map(|(i, l)| {
                l.weights().map(|w| {
                    // Degenerate zero-width layers report an empty (0, 0)
                    // range instead of panicking.
                    let (mut lo, mut hi) = match w.split_first() {
                        Some((&first, _)) => (first, first),
                        None => (E::default(), E::default()),
                    };
                    for &v in w.iter().skip(1) {
                        // `f32::min`/`f32::max` fold semantics, as in the
                        // pooling kernel: an incomparable extremum (f32 NaN)
                        // is replaced by any comparable value rather than
                        // poisoning the range; for totally ordered raw words
                        // this reduces to plain comparisons.
                        let replace_incomparable =
                            |e: E| e.partial_cmp(&v).is_none() && v.partial_cmp(&v).is_some();
                        if v < lo || replace_incomparable(lo) {
                            lo = v;
                        }
                        if v > hi || replace_incomparable(hi) {
                            hi = v;
                        }
                    }
                    (i, lo.value_to_f32(&self.meta), hi.value_to_f32(&self.meta))
                })
            })
            .collect()
    }

    /// Runs a forward pass with no hooks.
    pub fn forward(&self, input: &TensorBase<E>) -> TensorBase<E>
    where
        NoHooks: HooksFor<E>,
    {
        self.forward_with(input, &mut NoHooks)
    }

    /// Runs a forward pass, invoking `hooks` on the input buffer and on every
    /// layer's activation buffer.
    ///
    /// # Panics
    ///
    /// Panics if the input cannot feed this network (a raw-word input in a
    /// different format).
    pub fn forward_with<H: HooksFor<E> + ?Sized>(
        &self,
        input: &TensorBase<E>,
        hooks: &mut H,
    ) -> TensorBase<E> {
        E::check_input(input.meta(), &self.meta);
        let ctx = E::kernel_ctx(&self.meta);
        let mut shape = input.shape().to_vec();
        let mut next_shape = Vec::with_capacity(4);
        let mut current = input.data().to_vec();
        hooks.input(&mut current);
        for (i, layer) in self.layers.iter().enumerate() {
            layer.output_shape(&shape, &mut next_shape);
            if layer.is_in_place() {
                if matches!(layer, LayerBase::Relu) {
                    LayerBase::relu_in_place(&mut current);
                }
            } else {
                let mut out = vec![E::default(); next_shape.iter().product()];
                layer.forward_naive(&current, &shape, &mut out, ctx);
                current = out;
            }
            std::mem::swap(&mut shape, &mut next_shape);
            E::quantize_activations(&mut current, &self.meta);
            hooks.activation(i, layer.kind(), &mut current);
        }
        let meta = E::tensor_meta(&self.meta);
        let data = current.into_iter().map(|v| v.sanitize(&meta)).collect();
        TensorBase::from_parts(shape, data, meta)
    }

    /// Runs a batched forward pass: all `inputs` advance through the network
    /// one layer sweep at a time, with activations staged in `scratch`'s
    /// preallocated slabs. Returns one output tensor per input, in order.
    ///
    /// Batched and per-sample passes are bit-identical: row `b` of the result
    /// equals `self.forward(&inputs[b])` exactly (see the equivalence test
    /// suites), even though the batched path runs the blocked GEMM kernels.
    pub fn forward_batch(
        &self,
        inputs: &[TensorBase<E>],
        scratch: &mut Scratch<E>,
    ) -> Vec<TensorBase<E>>
    where
        NoHooks: HooksFor<E>,
    {
        self.forward_batch_with(inputs, scratch, &mut NoHooks)
    }

    /// Like [`NetworkBase::forward_batch`], with hooks: each batch row is
    /// reported through the hook's batch methods in per-row program order, so
    /// single-sample hooks and [`RangeRecorder`] work unchanged and
    /// [`PerRowHooks`] reproduces per-sample fault injection bit-exactly.
    pub fn forward_batch_with<H: HooksFor<E> + ?Sized>(
        &self,
        inputs: &[TensorBase<E>],
        scratch: &mut Scratch<E>,
        hooks: &mut H,
    ) -> Vec<TensorBase<E>> {
        self.forward_batch_into(inputs, scratch, hooks);
        let meta = E::tensor_meta(&self.meta);
        (0..scratch.rows())
            .map(|b| {
                let data = scratch.row(b).iter().map(|v| v.sanitize(&meta)).collect();
                TensorBase::from_parts(scratch.row_shape().to_vec(), data, meta)
            })
            .collect()
    }

    /// The zero-allocation core of the batched engine: runs the pass and
    /// leaves the outputs in `scratch`, readable via [`Scratch::row`] until
    /// the next pass. Steady-state calls perform no heap allocation at all
    /// ([`Scratch::grow_events`] stays flat once the slabs are warm).
    ///
    /// Convolution and linear sweeps run the cache-blocked im2row GEMM path;
    /// [`NetworkBase::forward_batch_naive_into`] drives the same engine with
    /// the naive per-row kernels and is bit-identical (the GEMM accumulates
    /// every output in the naive kernels' reduction order).
    ///
    /// An empty `inputs` slice is a no-op on every backend: the scratch
    /// resets to zero rows, no kernel runs and no hook fires — a batcher
    /// flushing an empty queue costs nothing.
    ///
    /// Engine settings (worker threads, scalar-kernel pin) come from the
    /// process-wide compat knobs; [`NetworkBase::forward_batch_into_cfg`]
    /// takes an explicit [`EngineConfig`] instead.
    ///
    /// # Panics
    ///
    /// Panics if the inputs do not share one shape or an input cannot feed
    /// this network.
    pub fn forward_batch_into<H: HooksFor<E> + ?Sized>(
        &self,
        inputs: &[TensorBase<E>],
        scratch: &mut Scratch<E>,
        hooks: &mut H,
    ) {
        self.run_batch(inputs, scratch, hooks, KernelPath::Blocked, EngineConfig::default());
    }

    /// [`NetworkBase::forward_batch_into`] with an explicit, caller-owned
    /// [`EngineConfig`] — what engine users that want in-engine batch
    /// sharding or a scalar-kernel pin should call. Results are
    /// bit-identical under any config.
    ///
    /// # Panics
    ///
    /// Panics if the inputs do not share one shape or an input cannot feed
    /// this network.
    pub fn forward_batch_into_cfg<H: HooksFor<E> + ?Sized>(
        &self,
        inputs: &[TensorBase<E>],
        scratch: &mut Scratch<E>,
        hooks: &mut H,
        config: EngineConfig,
    ) {
        self.run_batch(inputs, scratch, hooks, KernelPath::Blocked, config);
    }

    /// [`NetworkBase::forward_batch_into`] on the naive per-row reference
    /// kernels instead of the blocked GEMM — the baseline the equivalence
    /// proptests and the `gemm_forward` bench compare against. An empty
    /// `inputs` slice is a no-op, exactly as on the blocked path.
    ///
    /// # Panics
    ///
    /// Panics if the inputs do not share one shape or an input cannot feed
    /// this network.
    pub fn forward_batch_naive_into<H: HooksFor<E> + ?Sized>(
        &self,
        inputs: &[TensorBase<E>],
        scratch: &mut Scratch<E>,
        hooks: &mut H,
    ) {
        self.run_batch(inputs, scratch, hooks, KernelPath::Naive, EngineConfig::default());
    }

    /// [`NetworkBase::forward_batch_naive_into`] with an explicit
    /// [`EngineConfig`] (the scalar-pin knob is irrelevant here — the naive
    /// kernels never dispatch SIMD — but the thread count applies).
    ///
    /// # Panics
    ///
    /// Panics if the inputs do not share one shape or an input cannot feed
    /// this network.
    pub fn forward_batch_naive_into_cfg<H: HooksFor<E> + ?Sized>(
        &self,
        inputs: &[TensorBase<E>],
        scratch: &mut Scratch<E>,
        hooks: &mut H,
        config: EngineConfig,
    ) {
        self.run_batch(inputs, scratch, hooks, KernelPath::Naive, config);
    }

    fn run_batch<H: HooksFor<E> + ?Sized>(
        &self,
        inputs: &[TensorBase<E>],
        scratch: &mut Scratch<E>,
        hooks: &mut H,
        path: KernelPath,
        config: EngineConfig,
    ) {
        self.run_batch_refs(inputs.iter(), scratch, hooks, path, config);
    }

    fn run_batch_refs<'t, H, I>(
        &self,
        inputs: I,
        scratch: &mut Scratch<E>,
        hooks: &mut H,
        path: KernelPath,
        config: EngineConfig,
    ) where
        H: HooksFor<E> + ?Sized,
        I: ExactSizeIterator<Item = &'t TensorBase<E>> + Clone,
    {
        let mut shapes = inputs.clone();
        let Some(first) = shapes.next() else {
            // An empty flush is a no-op on every backend and every kernel
            // path: reset the scratch to zero rows so stale rows from a
            // previous pass are not readable as this pass's outputs.
            scratch.load_rows(&[0], std::iter::empty());
            return;
        };
        let input_shape = first.shape();
        E::check_input(first.meta(), &self.meta);
        for input in shapes {
            assert_eq!(input.shape(), input_shape, "all batch inputs must share one shape");
            E::check_input(input.meta(), &self.meta);
        }
        let meta = self.meta;
        crate::engine::forward_batch_engine(
            &self.layers,
            E::kernel_ctx(&meta),
            input_shape,
            inputs.map(|t| t.data()),
            scratch,
            path,
            config,
            |event, row| match event {
                SweepEvent::Input { row: b } => hooks.batch_input(b, row),
                SweepEvent::Activation { row: b, layer, kind } => {
                    E::quantize_activations(row, &meta);
                    hooks.batch_activation(b, layer, kind, row);
                }
            },
        );
    }

    /// [`NetworkBase::forward_batch_into_cfg`] over a slice of tensor
    /// *references* — the gather-free entry point for callers that stage
    /// batch rows in per-row buffers (a rollout's per-environment staging
    /// tensors, a serving daemon's pooled request buffers) and would
    /// otherwise have to copy or move them into a contiguous `Vec` first.
    /// Bit-identical to the owned-slice entry point for the same rows.
    ///
    /// # Panics
    ///
    /// Panics if the inputs do not share one shape or an input cannot feed
    /// this network.
    pub fn forward_batch_rows_into_cfg<H: HooksFor<E> + ?Sized>(
        &self,
        inputs: &[&TensorBase<E>],
        scratch: &mut Scratch<E>,
        hooks: &mut H,
        config: EngineConfig,
    ) {
        self.run_batch_refs(inputs.iter().copied(), scratch, hooks, KernelPath::Blocked, config);
    }

    /// Runs a single-sample forward pass through `scratch` without allocating
    /// the output tensor: the returned slice borrows the scratch's front slab
    /// and stays valid until the next pass. This is the hot path for episode
    /// loops (evaluation, ε-greedy action selection) that only need an
    /// `argmax` over the Q-values.
    pub fn forward_scratch<'s, H: HooksFor<E> + ?Sized>(
        &self,
        input: &TensorBase<E>,
        scratch: &'s mut Scratch<E>,
        hooks: &mut H,
    ) -> &'s [E] {
        self.forward_batch_into(std::slice::from_ref(input), scratch, hooks);
        scratch.row(0)
    }

    /// [`NetworkBase::forward_scratch`] with an explicit, caller-owned
    /// [`EngineConfig`] instead of the process-wide compat knobs — the
    /// single-sample twin of [`NetworkBase::forward_batch_into_cfg`].
    /// Results are bit-identical under any config.
    pub fn forward_scratch_cfg<'s, H: HooksFor<E> + ?Sized>(
        &self,
        input: &TensorBase<E>,
        scratch: &'s mut Scratch<E>,
        hooks: &mut H,
        config: EngineConfig,
    ) -> &'s [E] {
        self.forward_batch_into_cfg(std::slice::from_ref(input), scratch, hooks, config);
        scratch.row(0)
    }
}

impl Network {
    /// Builds a network from a stack of layers.
    pub fn new(layers: Vec<Layer>) -> Network {
        NetworkBase::from_parts(layers, None)
    }

    /// Quantizes every activation buffer to `format` after each layer,
    /// emulating a fixed-point accelerator datapath.
    pub fn with_activation_format(mut self, format: QFormat) -> Network {
        self.meta = Some(format);
        self
    }

    /// The activation quantization format, if any.
    pub fn activation_format(&self) -> Option<QFormat> {
        self.meta
    }

    /// Copies all weights into one concatenated buffer (layer order).
    pub fn flat_weights(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.weight_count());
        for layer in &self.layers {
            if let Some(w) = layer.weights() {
                out.extend_from_slice(w);
            }
        }
        out
    }

    /// Overwrites all weights from one concatenated buffer (layer order).
    ///
    /// # Panics
    ///
    /// Panics if `flat.len()` differs from [`NetworkBase::weight_count`].
    pub fn set_flat_weights(&mut self, flat: &[f32]) {
        assert_eq!(flat.len(), self.weight_count(), "flat weight buffer length mismatch");
        let mut start = 0;
        for layer in &mut self.layers {
            if let Some(w) = layer.weights_mut() {
                let len = w.len();
                w.copy_from_slice(&flat[start..start + len]);
                start += len;
            }
        }
    }

    /// Snaps every weight to `format` (post-training quantization).
    pub fn quantize_weights(&mut self, format: QFormat) {
        self.for_each_weight_buffer(|_, w| {
            for v in w.iter_mut() {
                *v = navft_qformat::QValue::quantize(*v, format).to_f32();
            }
        });
    }

    /// Snaps every weight *and bias* to `format` and quantizes activations —
    /// the complete `f32` simulation of the fixed-point datapath, parameter
    /// for parameter identical to what [`Network::to_quantized`] compiles.
    pub fn quantize_params(mut self, format: QFormat) -> Network {
        self.quantize_weights(format);
        for layer in &mut self.layers {
            if let Some(bias) = layer.biases_mut() {
                for v in bias.iter_mut() {
                    *v = navft_qformat::QValue::quantize(*v, format).to_f32();
                }
            }
        }
        self.with_activation_format(format)
    }

    /// Compiles this network into the native fixed-point backend
    /// ([`crate::QNetwork`]): parameters quantized into raw `format` words,
    /// every forward pass in integer arithmetic end to end.
    pub fn to_quantized(&self, format: QFormat) -> crate::QNetwork {
        crate::QNetwork::quantize(self, format)
    }

    /// Runs a forward pass recording every intermediate activation (used by
    /// [`Network::backward_tail`]).
    pub fn forward_traced(&self, input: &Tensor) -> ForwardTrace {
        let mut trace = ForwardTrace::new();
        self.forward_traced_into(input, &mut trace);
        trace
    }

    /// Runs a forward pass recording every intermediate activation into a
    /// reusable `trace`, overwriting the recorded tensors in place. After the
    /// first call with a given topology, subsequent calls reuse every
    /// activation buffer (no per-layer allocations), which is what makes
    /// replay-heavy DQN training cheap.
    pub fn forward_traced_into(&self, input: &Tensor, trace: &mut ForwardTrace) {
        if trace.values.len() != self.layers.len() + 1 {
            trace.values.resize(self.layers.len() + 1, Tensor::zeros(&[1]));
        }
        trace.values[0].assign(input.shape(), input.data());
        let mut shape = Vec::with_capacity(4);
        for (i, layer) in self.layers.iter().enumerate() {
            let (head, tail) = trace.values.split_at_mut(i + 1);
            let previous = &head[i];
            let current = &mut tail[0];
            match layer {
                Layer::Relu => {
                    current.assign(previous.shape(), previous.data());
                    Layer::relu_in_place(current.data_mut());
                }
                Layer::Flatten => {
                    current.assign(&[previous.len()], previous.data());
                }
                _ => {
                    layer.output_shape(previous.shape(), &mut shape);
                    current.resize_to(&shape);
                    layer.forward_into(previous.data(), previous.shape(), current.data_mut());
                }
            }
        }
    }

    /// Back-propagates `output_grad` through the trailing run of
    /// `Linear`/`Relu`/`Flatten` layers and applies an SGD update with
    /// learning rate `lr`, training only layers with index
    /// `>= trainable_from`.
    ///
    /// This covers both use cases of the paper: the Grid World MLP (all
    /// layers are linear/ReLU) and the drone policy's transfer-learning
    /// fine-tuning, which retrains only the last two fully-connected layers
    /// while the convolutional feature extractor stays frozen.
    ///
    /// Returns the number of parametric layers that were updated.
    ///
    /// # Panics
    ///
    /// Panics if `output_grad` does not match the network output length or
    /// the trace was produced by a different topology.
    pub fn backward_tail(
        &mut self,
        trace: &ForwardTrace,
        output_grad: &[f32],
        lr: f32,
        trainable_from: usize,
    ) -> usize {
        assert_eq!(
            trace.values.len(),
            self.layers.len() + 1,
            "trace does not match network topology"
        );
        assert_eq!(output_grad.len(), trace.output().len(), "output gradient length mismatch");
        let mut grad = output_grad.to_vec();
        let mut updated = 0;
        for index in (0..self.layers.len()).rev() {
            let input = &trace.values[index];
            match &mut self.layers[index] {
                Layer::Linear(linear) => {
                    let x = input.data();
                    let mut input_grad = vec![0.0f32; linear.in_features];
                    for (o, &g) in grad.iter().enumerate().take(linear.out_features) {
                        let row_start = o * linear.in_features;
                        if index >= trainable_from {
                            linear.bias[o] -= lr * g;
                        }
                        for j in 0..linear.in_features {
                            input_grad[j] += linear.weights[row_start + j] * g;
                            if index >= trainable_from {
                                linear.weights[row_start + j] -= lr * g * x[j];
                            }
                        }
                    }
                    if index >= trainable_from {
                        updated += 1;
                    }
                    grad = input_grad;
                }
                Layer::Relu => {
                    for (g, &x) in grad.iter_mut().zip(input.data().iter()) {
                        if x <= 0.0 {
                            *g = 0.0;
                        }
                    }
                }
                Layer::Flatten => {
                    // Shape-only change: the gradient passes through unchanged.
                }
                Layer::Conv2d(_) | Layer::MaxPool2d(_) => {
                    // The frozen feature extractor: stop back-propagation here.
                    break;
                }
            }
            if index == 0 {
                break;
            }
        }
        updated
    }
}

impl fmt::Display for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Network[")?;
        for (i, layer) in self.layers.iter().enumerate() {
            if i > 0 {
                write!(f, " -> ")?;
            }
            write!(f, "{}", layer.kind())?;
        }
        write!(f, "] ({} weights)", self.weight_count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Linear;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn tiny_mlp(seed: u64) -> Network {
        let mut rng = SmallRng::seed_from_u64(seed);
        crate::mlp(&[3, 8, 2], &mut rng)
    }

    #[test]
    fn forward_produces_output_of_last_layer_size() {
        let net = tiny_mlp(0);
        let out = net.forward(&Tensor::from_vec(&[3], vec![0.1, -0.2, 0.3]));
        assert_eq!(out.shape(), &[2]);
    }

    #[test]
    fn parametric_layers_and_weight_spans() {
        let net = tiny_mlp(0);
        let params = net.parametric_layers();
        assert_eq!(params.len(), 2);
        let span0 = net.weight_span(params[0]);
        let span1 = net.weight_span(params[1]);
        assert_eq!(span0.len(), 3 * 8);
        assert_eq!(span1.len(), 8 * 2);
        assert_eq!(span1.start, span0.end);
        assert_eq!(net.weight_count(), 3 * 8 + 8 * 2);
    }

    #[test]
    fn flat_weights_roundtrip() {
        let mut net = tiny_mlp(1);
        let flat = net.flat_weights();
        let mut modified = flat.clone();
        modified[0] = 123.0;
        net.set_flat_weights(&modified);
        assert_eq!(net.flat_weights()[0], 123.0);
        assert_eq!(net.flat_weights()[1..], flat[1..]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn set_flat_weights_rejects_wrong_length() {
        let mut net = tiny_mlp(1);
        net.set_flat_weights(&[0.0; 3]);
    }

    #[test]
    fn hooks_see_and_can_mutate_activations() {
        struct Zeroer {
            calls: usize,
        }
        impl ForwardHooks for Zeroer {
            fn on_activation(&mut self, _i: usize, kind: LayerKind, values: &mut [f32]) {
                self.calls += 1;
                if kind == LayerKind::Linear {
                    values.iter_mut().for_each(|v| *v = 0.0);
                }
            }
        }
        let net = tiny_mlp(2);
        let mut hook = Zeroer { calls: 0 };
        let out = net.forward_with(&Tensor::from_vec(&[3], vec![1.0, 1.0, 1.0]), &mut hook);
        assert_eq!(hook.calls, net.num_layers());
        assert!(out.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn range_recorder_collects_per_layer_ranges() {
        let net = tiny_mlp(3);
        let mut recorder = RangeRecorder::new();
        for i in 0..5 {
            let x = Tensor::full(&[3], i as f32 * 0.1);
            net.forward_with(&x, &mut recorder);
        }
        assert_eq!(recorder.ranges().len(), net.num_layers());
        for &(lo, hi) in recorder.ranges() {
            assert!(lo <= hi);
        }
    }

    #[test]
    fn quantize_weights_snaps_to_format() {
        let mut net = tiny_mlp(4);
        net.quantize_weights(QFormat::Q3_4);
        for &w in net.flat_weights().iter() {
            let snapped = navft_qformat::QValue::quantize(w, QFormat::Q3_4).to_f32();
            assert_eq!(w, snapped);
        }
    }

    #[test]
    fn activation_format_quantizes_outputs() {
        let mut rng = SmallRng::seed_from_u64(5);
        let net = crate::mlp(&[2, 2], &mut rng).with_activation_format(QFormat::Q3_4);
        assert_eq!(net.activation_format(), Some(QFormat::Q3_4));
        let out = net.forward(&Tensor::from_vec(&[2], vec![0.33, 0.77]));
        for &v in out.data() {
            assert_eq!(v, navft_qformat::QValue::quantize(v, QFormat::Q3_4).to_f32());
        }
    }

    #[test]
    fn weight_ranges_cover_parametric_layers() {
        let net = tiny_mlp(6);
        let ranges = net.weight_ranges();
        assert_eq!(ranges.len(), 2);
        for (_, lo, hi) in ranges {
            assert!(lo < hi);
        }
    }

    #[test]
    fn backward_tail_reduces_regression_loss() {
        // Train y = W x to map [1, 0] -> [1, -1] with SGD steps.
        let mut rng = SmallRng::seed_from_u64(7);
        let mut net = crate::mlp(&[2, 8, 2], &mut rng);
        let x = Tensor::from_vec(&[2], vec![1.0, 0.0]);
        let target = [1.0f32, -1.0];
        let loss = |net: &Network| -> f32 {
            let out = net.forward(&x);
            out.data().iter().zip(target.iter()).map(|(o, t)| (o - t).powi(2)).sum()
        };
        let before = loss(&net);
        for _ in 0..200 {
            let trace = net.forward_traced(&x);
            let out = trace.output().data().to_vec();
            let grad: Vec<f32> =
                out.iter().zip(target.iter()).map(|(o, t)| 2.0 * (o - t)).collect();
            let updated = net.backward_tail(&trace, &grad, 0.05, 0);
            assert_eq!(updated, 2);
        }
        let after = loss(&net);
        assert!(after < before * 0.05, "loss should shrink: before {before}, after {after}");
    }

    #[test]
    fn backward_tail_respects_trainable_from() {
        let mut net = tiny_mlp(8);
        let first_linear = net.parametric_layers()[0];
        let last_linear = net.parametric_layers()[1];
        let frozen_before = net.layer_weights(first_linear).expect("weights").to_vec();
        let x = Tensor::from_vec(&[3], vec![0.5, -0.5, 1.0]);
        let trace = net.forward_traced(&x);
        let grad = vec![1.0f32; 2];
        let updated = net.backward_tail(&trace, &grad, 0.1, last_linear);
        assert_eq!(updated, 1);
        assert_eq!(net.layer_weights(first_linear).expect("weights"), frozen_before.as_slice());
    }

    #[test]
    fn backward_stops_at_conv_layers() {
        let mut rng = SmallRng::seed_from_u64(9);
        let conv = crate::layer::Conv2d::new(1, 2, 2, 1, &mut rng);
        let conv_weights = conv.weights.clone();
        let mut net = Network::new(vec![
            Layer::Conv2d(conv),
            Layer::Relu,
            Layer::Flatten,
            // in_features = channels x height x width = 2 x 1 x 1
            Layer::Linear(Linear::new(2, 2, &mut rng)),
        ]);
        let x = Tensor::full(&[1, 2, 2], 0.5);
        let trace = net.forward_traced(&x);
        let updated = net.backward_tail(&trace, &[0.5, -0.5], 0.1, 0);
        assert_eq!(updated, 1);
        assert_eq!(net.layer_weights(0).expect("conv weights"), conv_weights.as_slice());
    }

    #[test]
    fn forward_batch_matches_serial_forward_bitwise() {
        let net = tiny_mlp(11);
        let inputs: Vec<Tensor> = (0..5)
            .map(|i| Tensor::from_vec(&[3], vec![i as f32 * 0.3 - 0.5, 0.25, -0.1 * i as f32]))
            .collect();
        let mut scratch = Scratch::new();
        let batched = net.forward_batch(&inputs, &mut scratch);
        assert_eq!(batched.len(), inputs.len());
        for (input, out) in inputs.iter().zip(batched.iter()) {
            assert_eq!(out.data(), net.forward(input).data());
        }
    }

    #[test]
    fn forward_batch_respects_activation_format() {
        let mut rng = SmallRng::seed_from_u64(12);
        let net = crate::mlp(&[2, 3, 2], &mut rng).with_activation_format(QFormat::Q3_4);
        let inputs = vec![Tensor::from_vec(&[2], vec![0.33, 0.77])];
        let mut scratch = Scratch::new();
        let batched = net.forward_batch(&inputs, &mut scratch);
        assert_eq!(batched[0].data(), net.forward(&inputs[0]).data());
    }

    #[test]
    fn forward_batch_steady_state_does_not_grow_the_scratch() {
        let net = tiny_mlp(13);
        let inputs = vec![Tensor::full(&[3], 0.5); 4];
        let mut scratch = Scratch::new();
        net.forward_batch_into(&inputs, &mut scratch, &mut NoHooks);
        let warm = scratch.grow_events();
        for _ in 0..20 {
            net.forward_batch_into(&inputs, &mut scratch, &mut NoHooks);
        }
        assert_eq!(scratch.grow_events(), warm, "warm passes must not allocate");
    }

    #[test]
    fn naive_path_is_bit_identical_to_the_blocked_path() {
        let mut rng = SmallRng::seed_from_u64(20);
        let net = crate::mlp(&[9, 17, 5, 3], &mut rng);
        let inputs: Vec<Tensor> = (0..7).map(|_| Tensor::uniform(&[9], 1.0, &mut rng)).collect();
        let mut blocked = Scratch::new();
        net.forward_batch_into(&inputs, &mut blocked, &mut NoHooks);
        let mut naive = Scratch::new();
        net.forward_batch_naive_into(&inputs, &mut naive, &mut NoHooks);
        for b in 0..inputs.len() {
            assert_eq!(blocked.row(b), naive.row(b), "row {b} diverged");
        }
    }

    #[test]
    fn forward_scratch_exposes_the_output_row_without_allocating_tensors() {
        let net = tiny_mlp(14);
        let input = Tensor::from_vec(&[3], vec![0.2, -0.4, 0.6]);
        let mut scratch = Scratch::new();
        let out = net.forward_scratch(&input, &mut scratch, &mut NoHooks).to_vec();
        assert_eq!(out, net.forward(&input).into_data());
    }

    #[test]
    #[should_panic(expected = "share one shape")]
    fn forward_batch_rejects_mixed_input_shapes() {
        let net = tiny_mlp(15);
        let inputs = vec![Tensor::zeros(&[3]), Tensor::zeros(&[4])];
        let mut scratch = Scratch::new();
        let _ = net.forward_batch(&inputs, &mut scratch);
    }

    #[test]
    fn forward_batch_with_empty_inputs_returns_empty() {
        let net = tiny_mlp(16);
        let mut scratch = Scratch::new();
        assert!(net.forward_batch(&[], &mut scratch).is_empty());
    }

    #[test]
    fn batch_hooks_see_rows_in_per_row_program_order() {
        #[derive(Default)]
        struct CallLog {
            calls: Vec<(usize, Option<usize>)>,
        }
        impl ForwardHooks for CallLog {
            fn on_batch_input(&mut self, row: usize, _values: &mut [f32]) {
                self.calls.push((row, None));
            }
            fn on_batch_activation(
                &mut self,
                row: usize,
                layer: usize,
                _kind: LayerKind,
                _values: &mut [f32],
            ) {
                self.calls.push((row, Some(layer)));
            }
        }
        let net = tiny_mlp(17);
        let inputs = vec![Tensor::zeros(&[3]); 2];
        let mut scratch = Scratch::new();
        let mut log = CallLog::default();
        net.forward_batch_with(&inputs, &mut scratch, &mut log);
        // Input hooks first (rows in order), then per layer all rows in order.
        let mut expected = vec![(0, None), (1, None)];
        for layer in 0..net.num_layers() {
            expected.push((0, Some(layer)));
            expected.push((1, Some(layer)));
        }
        assert_eq!(log.calls, expected);
    }

    #[test]
    fn per_row_hooks_give_each_row_its_own_state() {
        struct AddRowTag(f32);
        impl ForwardHooks for AddRowTag {
            fn on_input(&mut self, values: &mut [f32]) {
                for v in values.iter_mut() {
                    *v += self.0;
                }
            }
        }
        let net = tiny_mlp(18);
        let inputs = vec![Tensor::zeros(&[3]); 3];
        let mut scratch = Scratch::new();
        let mut per_row = PerRowHooks::new(vec![AddRowTag(0.0), AddRowTag(0.5), AddRowTag(1.0)]);
        let batched = net.forward_batch_with(&inputs, &mut scratch, &mut per_row);
        for (b, tag) in [0.0f32, 0.5, 1.0].iter().enumerate() {
            let mut hook = AddRowTag(*tag);
            let serial = net.forward_with(&inputs[b], &mut hook);
            assert_eq!(batched[b].data(), serial.data(), "row {b} diverged");
        }
        assert_eq!(per_row.hooks().len(), 3);
    }

    #[test]
    fn forward_traced_into_reuses_buffers_and_matches_forward_traced() {
        let net = tiny_mlp(19);
        let a = Tensor::from_vec(&[3], vec![0.3, -0.6, 0.9]);
        let b = Tensor::from_vec(&[3], vec![-0.2, 0.4, 0.1]);
        let mut trace = ForwardTrace::new();
        net.forward_traced_into(&a, &mut trace);
        let fresh = net.forward_traced(&a);
        assert_eq!(trace.values.len(), fresh.values.len());
        for (reused, one_shot) in trace.values.iter().zip(fresh.values.iter()) {
            assert_eq!(reused.data(), one_shot.data());
        }
        // Refill with a different input: previous values are fully replaced.
        net.forward_traced_into(&b, &mut trace);
        assert_eq!(trace.output().data(), net.forward_traced(&b).output().data());
    }

    #[test]
    fn display_lists_layer_kinds() {
        let net = tiny_mlp(10);
        let text = net.to_string();
        assert!(text.contains("linear"));
        assert!(text.contains("relu"));
        assert!(text.contains("weights"));
    }
}

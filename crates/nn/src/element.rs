//! The element trait behind the crate's single generic inference core.
//!
//! All numeric backends — `f32` values, raw two's-complement Q-format words
//! and `i8` affine bytes — run the *same* network, layer and kernel code;
//! everything that actually differs between them is collected in
//! [`Element`]: the widened accumulator a MAC sweep uses, how a bias enters
//! it, how an accumulator is folded back into a storable element, what ReLU
//! means, and what metadata a network and a tensor carry (an optional
//! simulation format for `f32`, the mandatory storage format for raw words,
//! the affine scale for `i8`).
//!
//! Adding a further backend (say, a `bf16` software model) is one
//! `impl Element for NewType` — the generic [`Network`](crate::Network)
//! stack, the batched engine, the blocked GEMM path, fault injection and the
//! evaluators in `navft-rl` all follow from it, exactly as the `i8` backend
//! here demonstrates.

use std::fmt;

use navft_qformat::{QFormat, QValue};

/// Per-element arithmetic and metadata of one numeric backend.
///
/// The three shipped implementations:
///
/// * **`f32`** — plain float arithmetic (`Acc = f32`), no kernel context.
///   Networks optionally carry a [`QFormat`] that *simulates* a fixed-point
///   datapath by requantizing every activation buffer after each layer.
/// * **`i32`** — raw Q-format words. Kernels accumulate word products in a
///   widened `i64` (products carry `2 × frac_bits` fractional bits) and
///   perform one saturating round-to-nearest requantize per output element;
///   networks and tensors carry their storage [`QFormat`].
/// * **`i8`** — per-network symmetric affine bytes (`value = word · scale`,
///   [`I8Affine`]). Kernels accumulate exact byte products in a widened
///   `i32` and perform one rounding, saturating requantize per output
///   element — the serving-style Int8 scheme of inference runtimes.
pub trait Element:
    Copy + Default + PartialEq + PartialOrd + fmt::Debug + Send + Sync + 'static
{
    /// The widened accumulator of MAC kernels (`f32` for floats, `i64` for
    /// raw words).
    type Acc: Copy;

    /// Register-tile shape `(MR, NR)` of the blocked GEMM path: how many
    /// output rows × panel columns accumulate concurrently. Backends tune it
    /// to their accumulator width — `f32` accumulators live in vector
    /// registers (a 4×4 tile fits comfortably), widened `i64` accumulators
    /// compete for the 16 general-purpose registers (a narrower 2×4 tile
    /// avoids spills). The GEMM monomorphizes one kernel per supported
    /// shape — currently `(4, 4)` and `(2, 4)`; any other value falls back
    /// to the `(4, 4)` kernel. Tiling never changes results: each output's
    /// accumulation order is fixed regardless of the tile shape.
    const GEMM_TILE: (usize, usize) = (4, 4);

    /// Context the MAC kernels need: nothing for `f32`, the [`QFormat`] for
    /// raw words.
    type Ctx: Copy + fmt::Debug + Send + Sync;

    /// Metadata a network of this element type carries: the optional
    /// activation simulation format for `f32`, the mandatory storage format
    /// for raw words.
    type NetMeta: Copy + fmt::Debug + PartialEq + Send + Sync;

    /// Metadata a tensor of this element type carries: nothing for `f32`,
    /// the storage format for raw words.
    type Meta: Copy + fmt::Debug + PartialEq + Send + Sync;

    /// Derives the kernel context from a network's metadata.
    fn kernel_ctx(net: &Self::NetMeta) -> Self::Ctx;

    /// Derives the metadata of tensors a network of this backend produces.
    fn tensor_meta(net: &Self::NetMeta) -> Self::Meta;

    /// Validates an input tensor's metadata against a network's.
    ///
    /// # Panics
    ///
    /// Panics if the input cannot feed the network (a raw-word tensor in a
    /// different format).
    fn check_input(input: &Self::Meta, net: &Self::NetMeta);

    /// Seeds an accumulator with a bias element.
    fn acc_init(bias: Self, ctx: Self::Ctx) -> Self::Acc;

    /// One multiply-accumulate step.
    fn mac(acc: Self::Acc, a: Self, b: Self) -> Self::Acc;

    /// Folds an accumulator back into a storable element (the saturating
    /// requantize of the fixed-point backend; the identity for `f32`).
    fn finish(acc: Self::Acc, ctx: Self::Ctx) -> Self;

    /// Folds a whole slice of accumulators — the batched **epilogue seam**
    /// of the GEMM path. `out[i]` must equal `Self::finish(accs[i], ctx)`
    /// bit for bit, for *every* accumulator value (including the widened
    /// type's extremes); the default is exactly that scalar loop.
    ///
    /// A backend should override this only when its `finish` is expensive
    /// enough to dominate the MAC sweep and admits a data-parallel
    /// formulation — the integer backends here vectorize their per-output
    /// requantize (round-half-away shift-and-saturate over `i64` lanes for
    /// raw Q-format words, the affine scale-round-clamp over `i32` lanes
    /// for `i8`) because the widened MAC itself is cheap and the epilogue
    /// is the bottleneck. `f32`'s `finish` is the identity, so it keeps the
    /// default. Overrides must still dispatch on runtime CPU detection and
    /// fall back to the scalar loop, because the engine calls this on the
    /// SIMD path only (the force-scalar pin routes through per-element
    /// [`Element::finish`]).
    ///
    /// # Panics
    ///
    /// Implementations may assume `accs.len() == out.len()`; the provided
    /// default panics if the lengths differ.
    fn finish_tile(ctx: Self::Ctx, accs: &[Self::Acc], out: &mut [Self]) {
        assert_eq!(accs.len(), out.len(), "accumulator and output tiles must match");
        for (value, &acc) in out.iter_mut().zip(accs.iter()) {
            *value = Self::finish(acc, ctx);
        }
    }

    /// The rectified linear unit on one element.
    fn relu(self) -> Self;

    /// Post-layer activation transform applied by the network before hooks
    /// see the buffer: the `f32` fixed-point *simulation* requantizes every
    /// value; the native backend's words are already exact.
    fn quantize_activations(values: &mut [Self], net: &Self::NetMeta);

    /// Clamps an element into its metadata's representable range (raw words
    /// saturate at the format's raw extremes; `f32` is unconstrained).
    fn sanitize(self, meta: &Self::Meta) -> Self;

    /// The element's numeric value as `f32` (dequantization for raw words),
    /// used for range instrumentation.
    fn value_to_f32(self, net: &Self::NetMeta) -> f32;

    /// Offers a whole `M × N` GEMM sweep to an explicit SIMD microkernel,
    /// which writes each output element exactly once through `write`.
    ///
    /// Returns `false` when the backend has no kernel for the running CPU;
    /// the caller then falls back to the portable scalar register tiles.
    /// Kernels must honour the crate's bit-exactness contract: every output
    /// accumulates its `K` products in ascending `k` order with exactly the
    /// scalar chain's arithmetic (see [`crate::simd`]), so the naive,
    /// tiled-scalar and SIMD paths agree bit for bit. The default
    /// implementation declines, which keeps third-party backends working
    /// without SIMD support.
    ///
    /// `write` is a generic bound (not a `dyn` object) so the per-output
    /// writeback inlines into the kernels exactly as it does into the
    /// scalar tiles — a virtual call per output element would dominate
    /// low-arithmetic sweeps.
    #[allow(clippy::too_many_arguments)]
    fn gemm_simd<F: FnMut(usize, usize, Self)>(
        ctx: Self::Ctx,
        a: &[Self],
        bias: &[Self],
        m: usize,
        k: usize,
        b: &[Self],
        n: usize,
        write: &mut F,
    ) -> bool {
        let _ = (ctx, a, bias, m, k, b, n, write);
        false
    }
}

/// Per-network symmetric affine metadata of the `i8` backend: a stored byte
/// `w` represents the value `w · scale`.
///
/// One scale covers every parameter buffer and every activation of a network
/// (`scale = max |value| / 127` at quantization time), so kernels can
/// accumulate raw byte products exactly in a widened `i32` — the accumulator
/// carries `scale²` units — and fold each output back to bytes with a single
/// rounding, saturating requantize.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct I8Affine {
    /// The value of one least-significant step: `value = word · scale`.
    pub scale: f32,
}

impl I8Affine {
    /// The affine whose range `[-128·scale, 127·scale]` covers
    /// `[-max_abs, max_abs]`; a degenerate `max_abs` of zero (or anything
    /// non-positive) falls back to a unit range so the scale stays usable.
    pub fn from_max_abs(max_abs: f32) -> I8Affine {
        let scale = if max_abs > 0.0 { max_abs / 127.0 } else { 1.0 / 127.0 };
        I8Affine { scale }
    }

    /// Quantizes a value to the nearest representable byte, saturating at
    /// the `i8` extremes.
    pub fn quantize(self, value: f32) -> i8 {
        (value / self.scale).round().clamp(-128.0, 127.0) as i8
    }

    /// The value a stored byte represents.
    pub fn dequantize(self, word: i8) -> f32 {
        f32::from(word) * self.scale
    }
}

impl Element for f32 {
    type Acc = f32;
    type Ctx = ();
    type NetMeta = Option<QFormat>;
    type Meta = ();

    #[inline]
    fn kernel_ctx(_net: &Option<QFormat>) {}

    #[inline]
    fn tensor_meta(_net: &Option<QFormat>) {}

    #[inline]
    fn check_input(_input: &(), _net: &Option<QFormat>) {}

    #[inline]
    fn acc_init(bias: f32, _ctx: ()) -> f32 {
        bias
    }

    #[inline]
    fn mac(acc: f32, a: f32, b: f32) -> f32 {
        acc + a * b
    }

    #[inline]
    fn finish(acc: f32, _ctx: ()) -> f32 {
        acc
    }

    #[inline]
    fn relu(self) -> f32 {
        self.max(0.0)
    }

    fn quantize_activations(values: &mut [f32], net: &Option<QFormat>) {
        if let Some(format) = net {
            for v in values.iter_mut() {
                *v = QValue::quantize(*v, *format).to_f32();
            }
        }
    }

    #[inline]
    fn sanitize(self, _meta: &()) -> f32 {
        self
    }

    #[inline]
    fn value_to_f32(self, _net: &Option<QFormat>) -> f32 {
        self
    }

    fn gemm_simd<F: FnMut(usize, usize, f32)>(
        _ctx: (),
        a: &[f32],
        bias: &[f32],
        m: usize,
        k: usize,
        b: &[f32],
        n: usize,
        write: &mut F,
    ) -> bool {
        crate::simd::gemm_f32(a, bias, m, k, b, n, write)
    }
}

impl Element for i32 {
    type Acc = i64;
    type Ctx = QFormat;
    type NetMeta = QFormat;
    type Meta = QFormat;

    const GEMM_TILE: (usize, usize) = (2, 4);

    #[inline]
    fn kernel_ctx(net: &QFormat) -> QFormat {
        *net
    }

    #[inline]
    fn tensor_meta(net: &QFormat) -> QFormat {
        *net
    }

    #[inline]
    fn check_input(input: &QFormat, net: &QFormat) {
        assert_eq!(input, net, "input format does not match network format");
    }

    #[inline]
    fn acc_init(bias: i32, ctx: QFormat) -> i64 {
        i64::from(bias) << u32::from(ctx.frac_bits())
    }

    #[inline]
    fn mac(acc: i64, a: i32, b: i32) -> i64 {
        acc + i64::from(a) * i64::from(b)
    }

    #[inline]
    fn finish(acc: i64, ctx: QFormat) -> i32 {
        ctx.requantize_product_sum(acc)
    }

    #[inline]
    fn finish_tile(ctx: QFormat, accs: &[i64], out: &mut [i32]) {
        crate::simd::requantize_q(ctx, accs, out);
    }

    #[inline]
    fn relu(self) -> i32 {
        self.max(0)
    }

    #[inline]
    fn quantize_activations(_values: &mut [i32], _net: &QFormat) {}

    #[inline]
    fn sanitize(self, meta: &QFormat) -> i32 {
        QValue::from_raw(self, *meta).raw()
    }

    #[inline]
    fn value_to_f32(self, net: &QFormat) -> f32 {
        self as f32 * net.resolution()
    }

    fn gemm_simd<F: FnMut(usize, usize, i32)>(
        ctx: QFormat,
        a: &[i32],
        bias: &[i32],
        m: usize,
        k: usize,
        b: &[i32],
        n: usize,
        write: &mut F,
    ) -> bool {
        crate::simd::gemm_q(ctx, a, bias, m, k, b, n, write)
    }
}

impl Element for i8 {
    type Acc = i32;
    type Ctx = I8Affine;
    type NetMeta = I8Affine;
    type Meta = I8Affine;

    #[inline]
    fn kernel_ctx(net: &I8Affine) -> I8Affine {
        *net
    }

    #[inline]
    fn tensor_meta(net: &I8Affine) -> I8Affine {
        *net
    }

    #[inline]
    fn check_input(input: &I8Affine, net: &I8Affine) {
        assert_eq!(input, net, "input scale does not match network scale");
    }

    #[inline]
    fn acc_init(bias: i8, ctx: I8Affine) -> i32 {
        // The accumulator carries scale² units (products of two stored
        // bytes); the bias byte carries scale¹ units, so it enters divided
        // by the scale, rounded once.
        (f32::from(bias) / ctx.scale).round() as i32
    }

    #[inline]
    fn mac(acc: i32, a: i8, b: i8) -> i32 {
        acc + i32::from(a) * i32::from(b)
    }

    #[inline]
    fn finish(acc: i32, ctx: I8Affine) -> i8 {
        (acc as f32 * ctx.scale).round().clamp(-128.0, 127.0) as i8
    }

    #[inline]
    fn finish_tile(ctx: I8Affine, accs: &[i32], out: &mut [i8]) {
        crate::simd::requantize_i8(ctx, accs, out);
    }

    #[inline]
    fn relu(self) -> i8 {
        self.max(0)
    }

    #[inline]
    fn quantize_activations(_values: &mut [i8], _net: &I8Affine) {}

    #[inline]
    fn sanitize(self, _meta: &I8Affine) -> i8 {
        self
    }

    #[inline]
    fn value_to_f32(self, net: &I8Affine) -> f32 {
        f32::from(self) * net.scale
    }

    fn gemm_simd<F: FnMut(usize, usize, i8)>(
        ctx: I8Affine,
        a: &[i8],
        bias: &[i8],
        m: usize,
        k: usize,
        b: &[i8],
        n: usize,
        write: &mut F,
    ) -> bool {
        crate::simd::gemm_i8(ctx, a, bias, m, k, b, n, write)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f32_mac_chain_matches_plain_arithmetic() {
        let mut acc = f32::acc_init(0.5, ());
        acc = f32::mac(acc, 2.0, 3.0);
        acc = f32::mac(acc, -1.0, 4.0);
        assert_eq!(f32::finish(acc, ()), 0.5 + 6.0 - 4.0);
    }

    #[test]
    fn raw_word_mac_requantizes_like_the_native_kernels() {
        let fmt = QFormat::Q3_4;
        // 1.5 * 2.0 + bias 0.5: raw 24 * raw 32 = 768, bias raw 8 << 4 = 128.
        let mut acc = i32::acc_init(8, fmt);
        acc = i32::mac(acc, 24, 32);
        assert_eq!(i32::finish(acc, fmt), fmt.requantize_product_sum(768 + 128));
    }

    #[test]
    fn relu_matches_each_backend() {
        assert_eq!((-1.5f32).relu(), 0.0);
        assert_eq!(2.5f32.relu(), 2.5);
        assert_eq!((-3i32).relu(), 0);
        assert_eq!(7i32.relu(), 7);
    }

    #[test]
    fn sanitize_clamps_raw_words_only() {
        assert_eq!(1e9f32.sanitize(&()), 1e9);
        assert_eq!(500i32.sanitize(&QFormat::Q3_4), 127);
        assert_eq!((-500i32).sanitize(&QFormat::Q3_4), -128);
    }

    #[test]
    fn value_to_f32_dequantizes_raw_words() {
        assert_eq!(24i32.value_to_f32(&QFormat::Q3_4), 1.5);
        assert_eq!(1.5f32.value_to_f32(&None), 1.5);
    }

    #[test]
    #[should_panic(expected = "format does not match")]
    fn check_input_rejects_mismatched_formats() {
        i32::check_input(&QFormat::Q3_4, &QFormat::Q4_11);
    }

    #[test]
    fn i8_affine_round_trips_grid_values() {
        let affine = I8Affine::from_max_abs(1.27);
        assert!((affine.scale - 0.01).abs() < 1e-7);
        for word in [-128i8, -3, 0, 1, 127] {
            assert_eq!(affine.quantize(affine.dequantize(word)), word);
        }
        assert_eq!(affine.quantize(10.0), 127, "saturates high");
        assert_eq!(affine.quantize(-10.0), -128, "saturates low");
    }

    #[test]
    fn i8_affine_degenerate_max_abs_stays_usable() {
        let affine = I8Affine::from_max_abs(0.0);
        assert!(affine.scale > 0.0);
        assert_eq!(affine.quantize(1.0), 127);
    }

    #[test]
    fn i8_mac_chain_requantizes_once_per_output() {
        let ctx = I8Affine { scale: 0.01 };
        // bias 0.05 (byte 5) enters as 500 scale² steps; 0.5 * 0.5 adds
        // 50 * 50 = 2500; the single requantize maps 3000 * 1e-4 = 0.3 to
        // byte 30.
        let mut acc = i8::acc_init(5, ctx);
        assert_eq!(acc, 500);
        acc = <i8 as Element>::mac(acc, 50, 50);
        assert_eq!(acc, 3000);
        assert_eq!(<i8 as Element>::finish(acc, ctx), 30);
    }

    #[test]
    fn i8_relu_and_sanitize_operate_on_bytes() {
        assert_eq!((-7i8).relu(), 0);
        assert_eq!(7i8.relu(), 7);
        let meta = I8Affine { scale: 0.01 };
        assert_eq!((-128i8).sanitize(&meta), -128);
        assert!((5i8.value_to_f32(&meta) - 0.05).abs() < 1e-7);
    }

    #[test]
    #[should_panic(expected = "scale does not match")]
    fn i8_check_input_rejects_mismatched_scales() {
        i8::check_input(&I8Affine { scale: 0.01 }, &I8Affine { scale: 0.02 });
    }
}

//! The element trait behind the crate's single generic inference core.
//!
//! Both numeric backends — `f32` values and raw two's-complement Q-format
//! words — run the *same* network, layer and kernel code; everything that
//! actually differs between them is collected in [`Element`]: the widened
//! accumulator a MAC sweep uses, how a bias enters it, how an accumulator is
//! folded back into a storable element, what ReLU means, and what metadata a
//! network and a tensor carry (an optional simulation format for `f32`, the
//! mandatory storage format for raw words).
//!
//! Adding a third backend (say, a `bf16` software model or an `i8` per-tensor
//! affine scheme) is one `impl Element for NewType` — the generic
//! [`Network`](crate::Network) stack, the batched engine, the blocked GEMM
//! path, fault injection and the evaluators in `navft-rl` all follow from it.

use std::fmt;

use navft_qformat::{QFormat, QValue};

/// Per-element arithmetic and metadata of one numeric backend.
///
/// The two shipped implementations:
///
/// * **`f32`** — plain float arithmetic (`Acc = f32`), no kernel context.
///   Networks optionally carry a [`QFormat`] that *simulates* a fixed-point
///   datapath by requantizing every activation buffer after each layer.
/// * **`i32`** — raw Q-format words. Kernels accumulate word products in a
///   widened `i64` (products carry `2 × frac_bits` fractional bits) and
///   perform one saturating round-to-nearest requantize per output element;
///   networks and tensors carry their storage [`QFormat`].
pub trait Element:
    Copy + Default + PartialEq + PartialOrd + fmt::Debug + Send + Sync + 'static
{
    /// The widened accumulator of MAC kernels (`f32` for floats, `i64` for
    /// raw words).
    type Acc: Copy;

    /// Register-tile shape `(MR, NR)` of the blocked GEMM path: how many
    /// output rows × panel columns accumulate concurrently. Backends tune it
    /// to their accumulator width — `f32` accumulators live in vector
    /// registers (a 4×4 tile fits comfortably), widened `i64` accumulators
    /// compete for the 16 general-purpose registers (a narrower 2×4 tile
    /// avoids spills). The GEMM monomorphizes one kernel per supported
    /// shape — currently `(4, 4)` and `(2, 4)`; any other value falls back
    /// to the `(4, 4)` kernel. Tiling never changes results: each output's
    /// accumulation order is fixed regardless of the tile shape.
    const GEMM_TILE: (usize, usize) = (4, 4);

    /// Context the MAC kernels need: nothing for `f32`, the [`QFormat`] for
    /// raw words.
    type Ctx: Copy + fmt::Debug + Send + Sync;

    /// Metadata a network of this element type carries: the optional
    /// activation simulation format for `f32`, the mandatory storage format
    /// for raw words.
    type NetMeta: Copy + fmt::Debug + PartialEq + Send + Sync;

    /// Metadata a tensor of this element type carries: nothing for `f32`,
    /// the storage format for raw words.
    type Meta: Copy + fmt::Debug + PartialEq + Send + Sync;

    /// Derives the kernel context from a network's metadata.
    fn kernel_ctx(net: &Self::NetMeta) -> Self::Ctx;

    /// Derives the metadata of tensors a network of this backend produces.
    fn tensor_meta(net: &Self::NetMeta) -> Self::Meta;

    /// Validates an input tensor's metadata against a network's.
    ///
    /// # Panics
    ///
    /// Panics if the input cannot feed the network (a raw-word tensor in a
    /// different format).
    fn check_input(input: &Self::Meta, net: &Self::NetMeta);

    /// Seeds an accumulator with a bias element.
    fn acc_init(bias: Self, ctx: Self::Ctx) -> Self::Acc;

    /// One multiply-accumulate step.
    fn mac(acc: Self::Acc, a: Self, b: Self) -> Self::Acc;

    /// Folds an accumulator back into a storable element (the saturating
    /// requantize of the fixed-point backend; the identity for `f32`).
    fn finish(acc: Self::Acc, ctx: Self::Ctx) -> Self;

    /// The rectified linear unit on one element.
    fn relu(self) -> Self;

    /// Post-layer activation transform applied by the network before hooks
    /// see the buffer: the `f32` fixed-point *simulation* requantizes every
    /// value; the native backend's words are already exact.
    fn quantize_activations(values: &mut [Self], net: &Self::NetMeta);

    /// Clamps an element into its metadata's representable range (raw words
    /// saturate at the format's raw extremes; `f32` is unconstrained).
    fn sanitize(self, meta: &Self::Meta) -> Self;

    /// The element's numeric value as `f32` (dequantization for raw words),
    /// used for range instrumentation.
    fn value_to_f32(self, net: &Self::NetMeta) -> f32;
}

impl Element for f32 {
    type Acc = f32;
    type Ctx = ();
    type NetMeta = Option<QFormat>;
    type Meta = ();

    #[inline]
    fn kernel_ctx(_net: &Option<QFormat>) {}

    #[inline]
    fn tensor_meta(_net: &Option<QFormat>) {}

    #[inline]
    fn check_input(_input: &(), _net: &Option<QFormat>) {}

    #[inline]
    fn acc_init(bias: f32, _ctx: ()) -> f32 {
        bias
    }

    #[inline]
    fn mac(acc: f32, a: f32, b: f32) -> f32 {
        acc + a * b
    }

    #[inline]
    fn finish(acc: f32, _ctx: ()) -> f32 {
        acc
    }

    #[inline]
    fn relu(self) -> f32 {
        self.max(0.0)
    }

    fn quantize_activations(values: &mut [f32], net: &Option<QFormat>) {
        if let Some(format) = net {
            for v in values.iter_mut() {
                *v = QValue::quantize(*v, *format).to_f32();
            }
        }
    }

    #[inline]
    fn sanitize(self, _meta: &()) -> f32 {
        self
    }

    #[inline]
    fn value_to_f32(self, _net: &Option<QFormat>) -> f32 {
        self
    }
}

impl Element for i32 {
    type Acc = i64;
    type Ctx = QFormat;
    type NetMeta = QFormat;
    type Meta = QFormat;

    const GEMM_TILE: (usize, usize) = (2, 4);

    #[inline]
    fn kernel_ctx(net: &QFormat) -> QFormat {
        *net
    }

    #[inline]
    fn tensor_meta(net: &QFormat) -> QFormat {
        *net
    }

    #[inline]
    fn check_input(input: &QFormat, net: &QFormat) {
        assert_eq!(input, net, "input format does not match network format");
    }

    #[inline]
    fn acc_init(bias: i32, ctx: QFormat) -> i64 {
        i64::from(bias) << u32::from(ctx.frac_bits())
    }

    #[inline]
    fn mac(acc: i64, a: i32, b: i32) -> i64 {
        acc + i64::from(a) * i64::from(b)
    }

    #[inline]
    fn finish(acc: i64, ctx: QFormat) -> i32 {
        ctx.requantize_product_sum(acc)
    }

    #[inline]
    fn relu(self) -> i32 {
        self.max(0)
    }

    #[inline]
    fn quantize_activations(_values: &mut [i32], _net: &QFormat) {}

    #[inline]
    fn sanitize(self, meta: &QFormat) -> i32 {
        QValue::from_raw(self, *meta).raw()
    }

    #[inline]
    fn value_to_f32(self, net: &QFormat) -> f32 {
        self as f32 * net.resolution()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f32_mac_chain_matches_plain_arithmetic() {
        let mut acc = f32::acc_init(0.5, ());
        acc = f32::mac(acc, 2.0, 3.0);
        acc = f32::mac(acc, -1.0, 4.0);
        assert_eq!(f32::finish(acc, ()), 0.5 + 6.0 - 4.0);
    }

    #[test]
    fn raw_word_mac_requantizes_like_the_native_kernels() {
        let fmt = QFormat::Q3_4;
        // 1.5 * 2.0 + bias 0.5: raw 24 * raw 32 = 768, bias raw 8 << 4 = 128.
        let mut acc = i32::acc_init(8, fmt);
        acc = i32::mac(acc, 24, 32);
        assert_eq!(i32::finish(acc, fmt), fmt.requantize_product_sum(768 + 128));
    }

    #[test]
    fn relu_matches_each_backend() {
        assert_eq!((-1.5f32).relu(), 0.0);
        assert_eq!(2.5f32.relu(), 2.5);
        assert_eq!((-3i32).relu(), 0);
        assert_eq!(7i32.relu(), 7);
    }

    #[test]
    fn sanitize_clamps_raw_words_only() {
        assert_eq!(1e9f32.sanitize(&()), 1e9);
        assert_eq!(500i32.sanitize(&QFormat::Q3_4), 127);
        assert_eq!((-500i32).sanitize(&QFormat::Q3_4), -128);
    }

    #[test]
    fn value_to_f32_dequantizes_raw_words() {
        assert_eq!(24i32.value_to_f32(&QFormat::Q3_4), 1.5);
        assert_eq!(1.5f32.value_to_f32(&None), 1.5);
    }

    #[test]
    #[should_panic(expected = "format does not match")]
    fn check_input_rejects_mismatched_formats() {
        i32::check_input(&QFormat::Q3_4, &QFormat::Q4_11);
    }
}

//! The raw-word surface of [`TensorBase`]: quantization, dequantization and
//! word-level access for the native fixed-point backend.

use std::fmt;

use navft_qformat::{QFormat, QValue};

use crate::tensor::TensorBase;
use crate::Tensor;

/// A dense row-major tensor of quantized fixed-point words.
///
/// Each element is stored as the raw two's-complement integer of a
/// [`QFormat`] word (sign-extended into an `i32`). This is the buffer the
/// paper's fault model actually corrupts: a bit flip or stuck-at fault on a
/// `QTensor` is a single integer operation on the live word, with no
/// quantize→corrupt→dequantize round trip.
///
/// `QTensor` is the `i32` instantiation of the generic [`TensorBase`], so
/// the shared accessors ([`TensorBase::shape`], [`TensorBase::len`],
/// [`TensorBase::argmax`], …) come from the same code as the `f32`
/// [`Tensor`]'s.
///
/// # Examples
///
/// ```
/// use navft_nn::{QTensor, Tensor};
/// use navft_qformat::QFormat;
///
/// let t = Tensor::from_vec(&[2], vec![1.5, -2.0]);
/// let q = QTensor::quantize(&t, QFormat::Q3_4);
/// assert_eq!(q.words(), &[24, -32]);
/// assert_eq!(q.dequantize().data(), &[1.5, -2.0]);
/// ```
pub type QTensor = TensorBase<i32>;

impl QTensor {
    /// A tensor of the given shape filled with zero words.
    ///
    /// # Panics
    ///
    /// Panics if the shape is empty or has a zero dimension.
    pub fn zeros(shape: &[usize], format: QFormat) -> QTensor {
        assert!(!shape.is_empty(), "tensor shape must have at least one dimension");
        assert!(shape.iter().all(|&d| d > 0), "tensor dimensions must be non-zero");
        let len = shape.iter().product();
        TensorBase::from_parts(shape.to_vec(), vec![0; len], format)
    }

    /// Quantizes an `f32` tensor into `format`, rounding to nearest and
    /// saturating at the format's range.
    pub fn quantize(tensor: &Tensor, format: QFormat) -> QTensor {
        let mut q = QTensor::zeros(tensor.shape(), format);
        q.quantize_from(tensor);
        q
    }

    /// Builds a tensor directly from raw two's-complement words.
    ///
    /// Each word is clamped to the format's representable raw range (a valid
    /// word is never altered).
    ///
    /// # Panics
    ///
    /// Panics if `words.len()` does not match the product of `shape`.
    pub fn from_raw_vec(shape: &[usize], words: Vec<i32>, format: QFormat) -> QTensor {
        let expected: usize = shape.iter().product();
        assert_eq!(
            words.len(),
            expected,
            "word count {} does not match shape {:?}",
            words.len(),
            shape
        );
        assert!(!shape.is_empty(), "tensor shape must have at least one dimension");
        let words = words.into_iter().map(|w| QValue::from_raw(w, format).raw()).collect();
        TensorBase::from_parts(shape.to_vec(), words, format)
    }

    /// Requantizes an `f32` tensor into this tensor in place, reusing the
    /// existing allocations — the zero-allocation entry point of episode
    /// loops that feed float observations to the native backend.
    ///
    /// The tensor takes `tensor`'s shape; its format is unchanged.
    pub fn quantize_from(&mut self, tensor: &Tensor) {
        let format = self.format();
        let (shape, words) = self.parts_mut();
        shape.clear();
        shape.extend_from_slice(tensor.shape());
        words.clear();
        words.extend(tensor.data().iter().map(|&v| QValue::quantize(v, format).raw()));
    }

    /// Dequantizes into a fresh `f32` tensor (exact for formats up to 24
    /// value bits).
    pub fn dequantize(&self) -> Tensor {
        let resolution = self.format().resolution();
        Tensor::from_vec(
            self.shape(),
            self.words().iter().map(|&raw| raw as f32 * resolution).collect(),
        )
    }

    /// The format every word is encoded in.
    pub fn format(&self) -> QFormat {
        *self.meta()
    }

    /// The flat raw-word buffer.
    pub fn words(&self) -> &[i32] {
        self.data()
    }

    /// The flat raw-word buffer, mutably — the fault-injection surface of
    /// the native backend.
    pub fn words_mut(&mut self) -> &mut [i32] {
        self.data_mut()
    }

    /// The word at flat index `index` as a [`QValue`].
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn word(&self, index: usize) -> QValue {
        QValue::from_raw(self.words()[index], self.format())
    }
}

impl fmt::Debug for QTensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "QTensor {{ shape: {:?}, {} words in {} }}",
            self.shape(),
            self.len(),
            self.format()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantize_and_dequantize_roundtrip_grid_values() {
        let t = Tensor::from_vec(&[2, 2], vec![0.0, 0.5, -1.25, 3.75]);
        let q = QTensor::quantize(&t, QFormat::Q3_4);
        assert_eq!(q.shape(), &[2, 2]);
        assert_eq!(q.len(), 4);
        assert_eq!(q.dequantize().data(), t.data());
    }

    #[test]
    fn quantize_saturates_out_of_range_values() {
        let t = Tensor::from_vec(&[2], vec![100.0, -100.0]);
        let q = QTensor::quantize(&t, QFormat::Q3_4);
        assert_eq!(q.words(), &[127, -128]);
    }

    #[test]
    fn from_raw_vec_clamps_to_the_raw_range() {
        let q = QTensor::from_raw_vec(&[3], vec![500, -500, 7], QFormat::Q3_4);
        assert_eq!(q.words(), &[127, -128, 7]);
        assert_eq!(q.word(2).raw(), 7);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_raw_vec_rejects_wrong_length() {
        let _ = QTensor::from_raw_vec(&[2], vec![1], QFormat::Q3_4);
    }

    #[test]
    fn quantize_from_reuses_the_tensor_and_replaces_shape() {
        let mut q = QTensor::zeros(&[4], QFormat::Q3_4);
        q.quantize_from(&Tensor::from_vec(&[2], vec![1.0, -1.0]));
        assert_eq!(q.shape(), &[2]);
        assert_eq!(q.words(), &[16, -16]);
    }

    #[test]
    fn argmax_on_raw_words_matches_value_argmax() {
        let t = Tensor::from_vec(&[4], vec![-2.0, 3.5, 3.5, 1.0]);
        let q = QTensor::quantize(&t, QFormat::Q3_4);
        assert_eq!(q.argmax(), t.argmax());
    }

    #[test]
    fn words_mut_exposes_live_storage() {
        let mut q = QTensor::zeros(&[2], QFormat::Q3_4);
        q.words_mut()[1] = 16;
        assert_eq!(q.word(1).to_f32(), 1.0);
    }

    #[test]
    fn debug_is_nonempty() {
        let q = QTensor::zeros(&[1], QFormat::Q3_4);
        assert!(!format!("{q:?}").is_empty());
    }
}

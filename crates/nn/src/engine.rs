//! The batched layer-sweep engine shared by every numeric backend.
//!
//! [`Network::forward_batch_into`](crate::Network::forward_batch_into) (f32)
//! and [`QNetwork::forward_batch_into`](crate::QNetwork::forward_batch_into)
//! (raw Q-format words) are the same algorithm: load the batch rows into the
//! scratch's front slab, report them to the hooks, then per layer either
//! transform the front slab in place or sweep every row into the back slab
//! and swap, reporting each produced row. Keeping that control flow — the
//! shape bookkeeping, the slab ping-pong, the per-row hook order the
//! bit-exactness contracts depend on — in one place means the backends
//! cannot drift; each backend only supplies its [`Element`] arithmetic.
//!
//! Two kernel paths drive the non-in-place layers:
//!
//! * [`KernelPath::Blocked`] (the default) runs convolutions and linear
//!   layers through the cache-blocked im2row GEMM of [`crate::gemm`] — one
//!   whole-batch matrix sweep per layer instead of a per-row loop.
//! * [`KernelPath::Naive`] runs the per-row reference kernels
//!   ([`LayerBase::forward_naive`]).
//!
//! The two are bit-identical on every backend (the GEMM accumulates each
//! output in the naive kernel's reduction order); the blocked path is simply
//! faster. Equivalence proptests pin the contract.

use crate::element::Element;
use crate::layer::LayerBase;
use crate::{gemm, LayerKind, Scratch};

/// Below this many MACs per layer sweep a parallel split costs more in
/// thread spawns than it saves; the engine stays serial.
const PARALLEL_MIN_MACS: usize = 16_384;

/// An explicit, caller-owned configuration of the batched engine: the
/// worker-thread count of the in-engine batch sharding and whether the
/// runtime-dispatched SIMD microkernels are bypassed in favour of the
/// portable scalar tiles.
///
/// Every `*_cfg` forward entry point (e.g.
/// [`crate::Network::forward_batch_into_cfg`]) threads one of these through
/// the whole batched path, so concurrent callers — servers, tests, benches
/// in one process — cannot observe each other's settings. Neither knob ever
/// changes results: sharding and SIMD dispatch are bit-identical to the
/// serial scalar path on every backend.
///
/// The non-`_cfg` entry points simply run under [`EngineConfig::default`];
/// there is no process-wide engine state for concurrent callers to trip
/// over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Worker threads for large batched conv/linear sweeps (min 1 = serial).
    pub threads: usize,
    /// Pin the portable scalar GEMM tiles, bypassing SIMD dispatch.
    pub force_scalar: bool,
}

impl Default for EngineConfig {
    /// Serial, SIMD-dispatched: the library default.
    fn default() -> Self {
        EngineConfig { threads: 1, force_scalar: false }
    }
}

impl EngineConfig {
    /// Returns the config with the worker-thread count set (clamped to at
    /// least 1).
    pub fn with_threads(mut self, threads: usize) -> EngineConfig {
        self.threads = threads.max(1);
        self
    }

    /// Returns the config with the scalar-kernel pin set.
    pub fn with_force_scalar(mut self, force: bool) -> EngineConfig {
        self.force_scalar = force;
        self
    }
}

/// How many threads a sweep of `rows` batch rows à `macs_per_row` MACs
/// should shard across: 1 unless the config asks for threading and the
/// sweep is large enough to amortize the spawns.
fn shard_threads(config: EngineConfig, rows: usize, macs_per_row: usize) -> usize {
    let configured = config.threads;
    if configured <= 1 || rows <= 1 || rows.saturating_mul(macs_per_row) < PARALLEL_MIN_MACS {
        1
    } else {
        configured.min(rows)
    }
}

/// A per-row buffer event reported by the batched forward engine.
pub(crate) enum SweepEvent {
    /// Batch row `row` of the input, before the first layer.
    Input {
        /// The batch row index.
        row: usize,
    },
    /// Batch row `row` of the buffer produced by layer `layer`.
    Activation {
        /// The batch row index.
        row: usize,
        /// The producing layer's index.
        layer: usize,
        /// The producing layer's kind.
        kind: LayerKind,
    },
}

/// Which kernels the engine drives for convolution and linear sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum KernelPath {
    /// Cache-blocked im2row GEMM (the fast default).
    Blocked,
    /// Per-row naive reference kernels.
    Naive,
}

/// Runs a batched pass over `layers`, staging activations in `scratch` and
/// reporting every input/activation row through `notify` in per-row program
/// order. The outputs are left in the scratch's front slab.
// One parameter per independent engine concern; bundling them into an ad-hoc
// struct would just move the argument list behind a constructor.
#[allow(clippy::too_many_arguments)]
pub(crate) fn forward_batch_engine<'a, E, I, F>(
    layers: &[LayerBase<E>],
    ctx: E::Ctx,
    input_shape: &[usize],
    rows: I,
    scratch: &mut Scratch<E>,
    path: KernelPath,
    config: EngineConfig,
    mut notify: F,
) where
    E: Element,
    I: ExactSizeIterator<Item = &'a [E]>,
    F: FnMut(SweepEvent, &mut [E]),
{
    let simd = !config.force_scalar;
    scratch.load_rows(input_shape, rows);
    let nrows = scratch.rows();

    let row_len = scratch.row_len();
    let front = scratch.front_mut();
    for b in 0..nrows {
        notify(SweepEvent::Input { row: b }, &mut front[b * row_len..(b + 1) * row_len]);
    }

    let mut next_shape = scratch.take_next_shape();
    for (i, layer) in layers.iter().enumerate() {
        let in_len = scratch.row_len();
        layer.output_shape(scratch.row_shape(), &mut next_shape);
        let out_len: usize = next_shape.iter().product();
        match layer {
            LayerBase::Relu => LayerBase::relu_in_place(scratch.front_mut()),
            LayerBase::Flatten => {}
            LayerBase::Conv2d(conv) if path == KernelPath::Blocked => {
                // Pack phase: one im2row patch per batch row × output pixel.
                let patch = conv.patch_len();
                let ohw = out_len / conv.out_channels;
                let (in_shape, front, cols) = scratch.pack_slab(nrows * ohw * patch);
                gemm::pack_im2row(conv, front, nrows, in_shape, cols);
                // GEMM phase: one blocked sweep per batch row, writing
                // straight into the row's `[oc, oh, ow]` output layout (the
                // weight panel is small enough to stay cache-hot across
                // rows, and the per-row view keeps the write-back free of
                // index arithmetic).
                let (cols, back) = scratch.cols_and_back(nrows * out_len);
                let oc = conv.out_channels;
                let threads = shard_threads(config, nrows, oc * patch * ohw);
                if threads > 1 {
                    // Shard contiguous batch-row ranges across scoped
                    // workers: each thread owns a disjoint slice pair of the
                    // packed panel and the back slab, and every per-row GEMM
                    // is the exact sweep the serial loop below runs.
                    let rows_per = nrows.div_ceil(threads);
                    std::thread::scope(|scope| {
                        for (cols_chunk, back_chunk) in cols
                            .chunks(rows_per * ohw * patch)
                            .zip(back.chunks_mut(rows_per * out_len))
                        {
                            scope.spawn(move || {
                                for (row_cols, row_out) in cols_chunk
                                    .chunks(ohw * patch)
                                    .zip(back_chunk.chunks_mut(out_len))
                                {
                                    gemm::gemm_bias(
                                        ctx,
                                        simd,
                                        &conv.weights,
                                        &conv.bias,
                                        oc,
                                        patch,
                                        row_cols,
                                        ohw,
                                        |m, p, v| row_out[m * ohw + p] = v,
                                    );
                                }
                            });
                        }
                    });
                } else {
                    for b in 0..nrows {
                        let row_cols = &cols[b * ohw * patch..(b + 1) * ohw * patch];
                        let row_out = &mut back[b * out_len..(b + 1) * out_len];
                        gemm::gemm_bias(
                            ctx,
                            simd,
                            &conv.weights,
                            &conv.bias,
                            oc,
                            patch,
                            row_cols,
                            ohw,
                            |m, p, v| row_out[m * ohw + p] = v,
                        );
                    }
                }
                scratch.swap();
            }
            LayerBase::Linear(linear) if path == KernelPath::Blocked => {
                // The batch rows already are the `[N, K]` panel: GEMM straight
                // off the front slab, no packing.
                let (_, front, back) = scratch.slabs_for_sweep(nrows * out_len);
                let m = linear.out_features;
                let kdim = linear.in_features;
                let threads = shard_threads(config, nrows, m * kdim);
                if threads > 1 {
                    // Split the `[N, K]` panel by batch-row ranges; each
                    // worker runs the same GEMM over its sub-panel, writing
                    // the matching disjoint range of the back slab.
                    let rows_per = nrows.div_ceil(threads);
                    let front = &front[..nrows * kdim];
                    let back = &mut back[..nrows * m];
                    std::thread::scope(|scope| {
                        for (front_chunk, back_chunk) in
                            front.chunks(rows_per * kdim).zip(back.chunks_mut(rows_per * m))
                        {
                            scope.spawn(move || {
                                gemm::gemm_bias(
                                    ctx,
                                    simd,
                                    &linear.weights,
                                    &linear.bias,
                                    m,
                                    kdim,
                                    front_chunk,
                                    back_chunk.len() / m,
                                    |mi, ni, v| back_chunk[ni * m + mi] = v,
                                );
                            });
                        }
                    });
                } else {
                    gemm::gemm_bias(
                        ctx,
                        simd,
                        &linear.weights,
                        &linear.bias,
                        m,
                        kdim,
                        front,
                        nrows,
                        |mi, ni, v| {
                            back[ni * m + mi] = v;
                        },
                    );
                }
                scratch.swap();
            }
            _ => {
                // Per-row reference kernels: max pooling always, conv/linear
                // on the naive path.
                let (in_shape, front, back) = scratch.slabs_for_sweep(nrows * out_len);
                for b in 0..nrows {
                    layer.forward_naive(
                        &front[b * in_len..(b + 1) * in_len],
                        in_shape,
                        &mut back[b * out_len..(b + 1) * out_len],
                        ctx,
                    );
                }
                scratch.swap();
            }
        }
        scratch.set_shape(&next_shape);

        let front = scratch.front_mut();
        for b in 0..nrows {
            notify(
                SweepEvent::Activation { row: b, layer: i, kind: layer.kind() },
                &mut front[b * out_len..(b + 1) * out_len],
            );
        }
    }
    scratch.put_next_shape(next_shape);
}

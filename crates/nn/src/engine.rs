//! The batched layer-sweep engine shared by both numeric backends.
//!
//! [`Network::forward_batch_into`](crate::Network::forward_batch_into) (f32)
//! and [`QNetwork::forward_batch_into`](crate::QNetwork::forward_batch_into)
//! (raw Q-format words) are the same algorithm: load the batch rows into the
//! scratch's front slab, report them to the hooks, then per layer either
//! transform the front slab in place or sweep every row into the back slab
//! and swap, reporting each produced row. Keeping that control flow — the
//! shape bookkeeping, the slab ping-pong, the per-row hook order the
//! bit-exactness contracts depend on — in one place means the two backends
//! cannot drift; each backend only supplies its element type, its per-layer
//! kernels and what to do with each produced row.

use crate::{LayerKind, Scratch};

/// A per-row buffer event reported by [`forward_batch_engine`].
pub(crate) enum SweepEvent {
    /// Batch row `row` of the input, before the first layer.
    Input {
        /// The batch row index.
        row: usize,
    },
    /// Batch row `row` of the buffer produced by layer `layer`.
    Activation {
        /// The batch row index.
        row: usize,
        /// The producing layer's index.
        layer: usize,
        /// The producing layer's kind.
        kind: LayerKind,
    },
}

/// One layer as the batched engine sees it, independent of the element type.
pub(crate) trait SweepLayer<T> {
    /// The layer kind (forwarded to hooks).
    fn kind(&self) -> LayerKind;
    /// Output shape for `in_shape`, written into the reused `out` buffer.
    fn output_shape(&self, in_shape: &[usize], out: &mut Vec<usize>);
    /// Whether the layer transforms the front slab in place.
    fn is_in_place(&self) -> bool;
    /// In-place transform for `is_in_place` layers (ReLU; no-op for Flatten).
    fn apply_in_place(&self, values: &mut [T]);
    /// Buffer-to-buffer sweep for one row of a non-in-place layer.
    fn sweep(&self, data: &[T], in_shape: &[usize], out: &mut [T]);
}

/// Runs a batched pass over `layers`, staging activations in `scratch` and
/// reporting every input/activation row through `notify` in per-row program
/// order. The outputs are left in the scratch's front slab.
pub(crate) fn forward_batch_engine<'a, T, L, I, F>(
    layers: impl Iterator<Item = L>,
    input_shape: &[usize],
    rows: I,
    scratch: &mut Scratch<T>,
    mut notify: F,
) where
    T: Copy + Default + 'a,
    L: SweepLayer<T>,
    I: ExactSizeIterator<Item = &'a [T]>,
    F: FnMut(SweepEvent, &mut [T]),
{
    scratch.load_rows(input_shape, rows);
    let nrows = scratch.rows();

    let row_len = scratch.row_len();
    let front = scratch.front_mut();
    for b in 0..nrows {
        notify(SweepEvent::Input { row: b }, &mut front[b * row_len..(b + 1) * row_len]);
    }

    let mut next_shape = scratch.take_next_shape();
    for (i, layer) in layers.enumerate() {
        let in_len = scratch.row_len();
        layer.output_shape(scratch.row_shape(), &mut next_shape);
        let out_len: usize = next_shape.iter().product();
        if layer.is_in_place() {
            layer.apply_in_place(scratch.front_mut());
        } else {
            let (in_shape, front, back) = scratch.slabs_for_sweep(nrows * out_len);
            for b in 0..nrows {
                layer.sweep(
                    &front[b * in_len..(b + 1) * in_len],
                    in_shape,
                    &mut back[b * out_len..(b + 1) * out_len],
                );
            }
            scratch.swap();
        }
        scratch.set_shape(&next_shape);

        let front = scratch.front_mut();
        for b in 0..nrows {
            notify(
                SweepEvent::Activation { row: b, layer: i, kind: layer.kind() },
                &mut front[b * out_len..(b + 1) * out_len],
            );
        }
    }
    scratch.put_next_shape(next_shape);
}

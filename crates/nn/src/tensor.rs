//! Dense row-major tensors, generic over the numeric backend's element type.
//!
//! [`TensorBase`] carries a shape, a flat element buffer and the element
//! type's metadata ([`Element::Meta`]: nothing for `f32`, the storage
//! [`QFormat`](navft_qformat::QFormat) for raw words). The two backends are
//! aliases of the same struct — [`Tensor`] (`f32`) and
//! [`QTensor`](crate::QTensor) (`i32` raw words) — so the generic network
//! stack moves one tensor type through one engine regardless of backend.

use std::fmt;

use rand::Rng;

use crate::element::Element;

/// A dense row-major tensor of one backend's elements.
///
/// Shapes follow the `[channels, height, width]` convention for images and
/// `[features]` for vectors. The tensor intentionally exposes its flat data
/// buffer ([`TensorBase::data`] / [`TensorBase::data_mut`]) because the fault
/// model of the paper corrupts the *memory buffers* holding feature maps,
/// weights and activations.
///
/// Use the aliases: [`Tensor`] for `f32` values, [`QTensor`](crate::QTensor)
/// for raw Q-format words.
///
/// # Examples
///
/// ```
/// use navft_nn::Tensor;
///
/// let mut t = Tensor::zeros(&[2, 3]);
/// t.data_mut()[4] = 1.5;
/// assert_eq!(t.get(&[1, 1]), 1.5);
/// assert_eq!(t.len(), 6);
/// ```
#[derive(Clone, PartialEq)]
pub struct TensorBase<E: Element> {
    shape: Vec<usize>,
    data: Vec<E>,
    meta: E::Meta,
}

/// A dense row-major `f32` tensor — the float backend's storage type.
pub type Tensor = TensorBase<f32>;

impl<E: Element> TensorBase<E> {
    /// Builds a tensor from already-validated parts (internal constructor of
    /// the generic forward paths).
    pub(crate) fn from_parts(shape: Vec<usize>, data: Vec<E>, meta: E::Meta) -> TensorBase<E> {
        debug_assert_eq!(shape.iter().product::<usize>(), data.len());
        TensorBase { shape, data, meta }
    }

    /// The tensor's metadata (nothing for `f32`, the storage format for raw
    /// words).
    pub(crate) fn meta(&self) -> &E::Meta {
        &self.meta
    }

    /// The shape and data buffers, mutably (in-place requantization).
    pub(crate) fn parts_mut(&mut self) -> (&mut Vec<usize>, &mut Vec<E>) {
        (&mut self.shape, &mut self.data)
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements (never true for a valid tensor).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The flat data buffer.
    pub fn data(&self) -> &[E] {
        &self.data
    }

    /// The flat data buffer, mutably — the fault-injection surface.
    pub fn data_mut(&mut self) -> &mut [E] {
        &mut self.data
    }

    /// Consumes the tensor and returns its flat buffer.
    pub fn into_data(self) -> Vec<E> {
        self.data
    }

    /// Index of the maximum element (ties resolve to the first).
    ///
    /// Returns 0 for a single-element tensor; never panics for valid
    /// tensors. Raw-word comparison equals value comparison because
    /// dequantization is monotonic, so greedy action selection needs no
    /// float round trip on the quantized backend.
    pub fn argmax(&self) -> usize {
        argmax(&self.data)
    }

    pub(crate) fn flat_index(&self, index: &[usize]) -> usize {
        assert_eq!(index.len(), self.shape.len(), "index rank mismatch");
        let mut flat = 0;
        for (dim, (&i, &d)) in index.iter().zip(self.shape.iter()).enumerate() {
            assert!(i < d, "index {i} out of range for dimension {dim} of extent {d}");
            flat = flat * d + i;
        }
        flat
    }
}

impl Tensor {
    /// A tensor of the given shape filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if the shape is empty or has a zero dimension.
    pub fn zeros(shape: &[usize]) -> Tensor {
        assert!(!shape.is_empty(), "tensor shape must have at least one dimension");
        assert!(shape.iter().all(|&d| d > 0), "tensor dimensions must be non-zero");
        let len = shape.iter().product();
        Tensor { shape: shape.to_vec(), data: vec![0.0; len], meta: () }
    }

    /// A tensor of the given shape filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Tensor {
        let mut t = Tensor::zeros(shape);
        t.data.iter_mut().for_each(|v| *v = value);
        t
    }

    /// Builds a tensor from a flat buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the product of `shape`.
    pub fn from_vec(shape: &[usize], data: Vec<f32>) -> Tensor {
        let expected: usize = shape.iter().product();
        assert_eq!(
            data.len(),
            expected,
            "data length {} does not match shape {:?}",
            data.len(),
            shape
        );
        assert!(!shape.is_empty(), "tensor shape must have at least one dimension");
        Tensor { shape: shape.to_vec(), data, meta: () }
    }

    /// A tensor with elements drawn uniformly from `[-scale, scale]`.
    pub fn uniform<R: Rng + ?Sized>(shape: &[usize], scale: f32, rng: &mut R) -> Tensor {
        let mut t = Tensor::zeros(shape);
        for v in t.data.iter_mut() {
            *v = rng.gen_range(-scale..=scale);
        }
        t
    }

    /// Element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or any coordinate is out of range.
    pub fn get(&self, index: &[usize]) -> f32 {
        self.data[self.flat_index(index)]
    }

    /// Sets the element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or any coordinate is out of range.
    pub fn set(&mut self, index: &[usize], value: f32) {
        let i = self.flat_index(index);
        self.data[i] = value;
    }

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Panics
    ///
    /// Panics if the new shape has a different element count.
    pub fn reshape(&self, shape: &[usize]) -> Tensor {
        Tensor::from_vec(shape, self.data.clone())
    }

    /// Overwrites this tensor in place with `shape` and `data`, reusing the
    /// existing allocations whenever their capacity suffices.
    ///
    /// This is the zero-allocation counterpart of [`Tensor::from_vec`]; the
    /// batched inference scratch and the reusable forward trace are built on
    /// it.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the product of `shape` or the
    /// shape is invalid.
    pub fn assign(&mut self, shape: &[usize], data: &[f32]) {
        let expected: usize = shape.iter().product();
        assert_eq!(
            data.len(),
            expected,
            "data length {} does not match shape {:?}",
            data.len(),
            shape
        );
        assert!(!shape.is_empty(), "tensor shape must have at least one dimension");
        self.shape.clear();
        self.shape.extend_from_slice(shape);
        self.data.clear();
        self.data.extend_from_slice(data);
    }

    /// Resizes this tensor in place to `shape`, reusing the existing
    /// allocation; newly exposed elements are zero. Existing element values
    /// are unspecified afterwards — callers are expected to overwrite the
    /// whole buffer (e.g. via a layer's `forward_into`).
    ///
    /// # Panics
    ///
    /// Panics if the shape is empty or has a zero dimension.
    pub fn resize_to(&mut self, shape: &[usize]) {
        assert!(!shape.is_empty(), "tensor shape must have at least one dimension");
        assert!(shape.iter().all(|&d| d > 0), "tensor dimensions must be non-zero");
        self.shape.clear();
        self.shape.extend_from_slice(shape);
        self.data.resize(shape.iter().product(), 0.0);
    }

    /// Applies `f` to every element, returning a new tensor.
    pub fn map<F: Fn(f32) -> f32>(&self, f: F) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&v| f(v)).collect(),
            meta: (),
        }
    }

    /// The maximum element.
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// The minimum element.
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }
}

/// Index of the maximum element of a flat buffer (ties resolve to the
/// first; 0 for an empty or single-element buffer).
///
/// This is [`TensorBase::argmax`] for borrowed slices — the form the
/// zero-allocation inference paths ([`crate::Network::forward_scratch`] and
/// [`crate::QNetwork::forward_scratch`]) hand out. It is generic over the
/// element type because greedy action selection over raw Q-format words is
/// the same comparison as over dequantized `f32` values (dequantization is
/// monotonic in the raw word).
pub fn argmax<T: PartialOrd>(values: &[T]) -> usize {
    let mut best = 0;
    for (i, v) in values.iter().enumerate() {
        if *v > values[best] {
            best = i;
        }
    }
    best
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor {{ shape: {:?}, {} elements }}", self.shape, self.data.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn zeros_and_full() {
        let z = Tensor::zeros(&[2, 2]);
        assert_eq!(z.data(), &[0.0; 4]);
        let f = Tensor::full(&[3], 2.5);
        assert_eq!(f.data(), &[2.5, 2.5, 2.5]);
    }

    #[test]
    fn indexing_is_row_major() {
        let t = Tensor::from_vec(&[2, 3], (0..6).map(|i| i as f32).collect());
        assert_eq!(t.get(&[0, 0]), 0.0);
        assert_eq!(t.get(&[0, 2]), 2.0);
        assert_eq!(t.get(&[1, 0]), 3.0);
        assert_eq!(t.get(&[1, 2]), 5.0);
    }

    #[test]
    fn set_and_get_roundtrip() {
        let mut t = Tensor::zeros(&[2, 2, 2]);
        t.set(&[1, 0, 1], 7.0);
        assert_eq!(t.get(&[1, 0, 1]), 7.0);
        assert_eq!(t.data()[5], 7.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_index_panics() {
        let t = Tensor::zeros(&[2, 2]);
        let _ = t.get(&[0, 2]);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_length_mismatch_panics() {
        let _ = Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(&[2, 3], (0..6).map(|i| i as f32).collect());
        let r = t.reshape(&[6]);
        assert_eq!(r.shape(), &[6]);
        assert_eq!(r.data(), t.data());
    }

    #[test]
    fn map_and_extrema_and_argmax() {
        let t = Tensor::from_vec(&[4], vec![-1.0, 3.0, 2.0, 3.0]);
        assert_eq!(t.map(|v| v * 2.0).data(), &[-2.0, 6.0, 4.0, 6.0]);
        assert_eq!(t.max(), 3.0);
        assert_eq!(t.min(), -1.0);
        assert_eq!(t.argmax(), 1);
    }

    #[test]
    fn uniform_respects_scale() {
        let mut rng = SmallRng::seed_from_u64(0);
        let t = Tensor::uniform(&[100], 0.5, &mut rng);
        assert!(t.data().iter().all(|v| v.abs() <= 0.5));
        assert!(t.data().iter().any(|&v| v != 0.0));
    }

    #[test]
    fn into_data_returns_buffer() {
        let t = Tensor::from_vec(&[2], vec![1.0, 2.0]);
        assert_eq!(t.into_data(), vec![1.0, 2.0]);
    }

    #[test]
    fn assign_overwrites_shape_and_data_in_place() {
        let mut t = Tensor::zeros(&[2, 3]);
        t.assign(&[4], &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(t.shape(), &[4]);
        assert_eq!(t.data(), &[1.0, 2.0, 3.0, 4.0]);
        // Shrinking reuses the buffer and drops the tail.
        t.assign(&[2], &[9.0, 8.0]);
        assert_eq!(t.data(), &[9.0, 8.0]);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn assign_rejects_mismatched_data() {
        let mut t = Tensor::zeros(&[2]);
        t.assign(&[3], &[1.0, 2.0]);
    }

    #[test]
    fn resize_to_changes_shape_and_element_count() {
        let mut t = Tensor::from_vec(&[2], vec![1.0, 2.0]);
        t.resize_to(&[2, 2]);
        assert_eq!(t.shape(), &[2, 2]);
        assert_eq!(t.len(), 4);
        t.resize_to(&[3]);
        assert_eq!(t.len(), 3);
    }
}

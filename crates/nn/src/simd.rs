//! Explicit `std::arch` SIMD microkernels behind the blocked GEMM, with
//! runtime dispatch and a force-scalar override.
//!
//! The GEMM module's `gemm_bias` first offers every sweep to the backend's
//! [`Element::gemm_simd`](crate::Element::gemm_simd) hook, which lands here;
//! when no kernel fits the running CPU — or scalar execution is forced via
//! [`set_force_scalar_kernels`] — the portable scalar register tiles run
//! instead. Every kernel honours the crate's bit-exactness contract:
//!
//! * **`f32`** vectorizes across *output columns*: each vector lane owns one
//!   output's full `K` chain, fed in ascending `k` order through explicit
//!   multiply + add (never FMA, whose fused rounding would diverge from the
//!   scalar chain), so lane `j` reproduces the scalar accumulator bit for
//!   bit. AVX2 runs 8 columns across 4 row-blocked accumulator registers;
//!   the x86-64 SSE2 baseline runs 4 columns. Remainder columns run the
//!   scalar chain (f32 summation order is load-bearing).
//! * **`i32` (Q-format) and `i8` (affine)** also vectorize full column
//!   blocks lane-per-column (8 widened `i64` lanes for Q words, 16 `i32`
//!   lanes for bytes), each lane fed in ascending `k` order — the scalar
//!   chain verbatim. Remainder columns fall back to a `k`-vectorized dot
//!   with a horizontal reduction, which is still exact because integer
//!   addition is associative and commutative (also modulo 2ⁿ). Products
//!   stay exact in their widened lanes, and the single rounding requantize
//!   per output runs in the same scalar code the tile path uses. Both
//!   kernels need AVX2; without it the scalar tiles run.
//!
//! This is the only module in the crate that may use `unsafe` (the crate
//! root is `#![deny(unsafe_code)]`): every unsafe operation is a CPU
//! intrinsic gated by `is_x86_feature_detected!` or an in-bounds raw load
//! from a slice whose length the caller checked. Non-x86-64 targets compile
//! declining stubs and keep the scalar tiles.

#![allow(unsafe_code)]

use std::sync::atomic::{AtomicBool, Ordering};

#[allow(unused_imports)]
use crate::element::I8Affine;
#[allow(unused_imports)]
use navft_qformat::QFormat;

static FORCE_SCALAR: AtomicBool = AtomicBool::new(false);

/// Forces every GEMM sweep onto the portable scalar register tiles,
/// process-wide, bypassing the SIMD microkernels. The equivalence tests and
/// the perf baseline use this to pin `scalar == SIMD` and to measure the
/// dispatch win.
///
/// Safe to toggle at any time: scalar and SIMD paths are bit-identical, so
/// a pass that races the toggle cannot observe a numeric difference.
#[deprecated(
    since = "0.1.0",
    note = "process-wide kernel state leaks across callers; pass an explicit \
            `EngineConfig::default().with_force_scalar(true)` to a `*_cfg` forward entry point"
)]
pub fn set_force_scalar_kernels(force: bool) {
    FORCE_SCALAR.store(force, Ordering::Relaxed);
}

/// The kernel tier runtime dispatch selects on this CPU right now:
/// `"avx2"`, `"sse2"`, or `"scalar"` when no tier fits (non-x86-64 targets)
/// or scalar execution is forced.
pub fn simd_kernel_name() -> &'static str {
    if !simd_enabled() {
        return "scalar";
    }
    best_tier_name()
}

/// Whether `gemm_bias` currently offers sweeps to the SIMD kernels at all.
pub(crate) fn simd_enabled() -> bool {
    !FORCE_SCALAR.load(Ordering::Relaxed)
}

#[cfg(target_arch = "x86_64")]
fn best_tier_name() -> &'static str {
    if std::arch::is_x86_feature_detected!("avx2") {
        "avx2"
    } else {
        "sse2"
    }
}

#[cfg(not(target_arch = "x86_64"))]
fn best_tier_name() -> &'static str {
    "scalar"
}

/// The `f32` column kernel: AVX2 where detected, SSE2 otherwise (always
/// present on x86-64). Never declines on x86-64.
#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_f32<F: FnMut(usize, usize, f32)>(
    a: &[f32],
    bias: &[f32],
    m: usize,
    k: usize,
    b: &[f32],
    n: usize,
    write: &mut F,
) -> bool {
    if std::arch::is_x86_feature_detected!("avx2") {
        x86::gemm_f32_avx2(a, bias, m, k, b, n, write);
    } else {
        x86::gemm_f32_sse2(a, bias, m, k, b, n, write);
    }
    true
}

/// The raw Q-format word kernel: AVX2 only (the even/odd 32×32→64-bit
/// multiply needs it); declines to the scalar tiles otherwise.
#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_q<F: FnMut(usize, usize, i32)>(
    ctx: QFormat,
    a: &[i32],
    bias: &[i32],
    m: usize,
    k: usize,
    b: &[i32],
    n: usize,
    write: &mut F,
) -> bool {
    if !std::arch::is_x86_feature_detected!("avx2") {
        return false;
    }
    x86::gemm_q_avx2(ctx, a, bias, m, k, b, n, write);
    true
}

/// The `i8` affine byte kernel: AVX2 only (`cvtepi8_epi16` + `madd_epi16`);
/// declines to the scalar tiles otherwise.
#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_i8<F: FnMut(usize, usize, i8)>(
    ctx: I8Affine,
    a: &[i8],
    bias: &[i8],
    m: usize,
    k: usize,
    b: &[i8],
    n: usize,
    write: &mut F,
) -> bool {
    if !std::arch::is_x86_feature_detected!("avx2") {
        return false;
    }
    x86::gemm_i8_avx2(ctx, a, bias, m, k, b, n, write);
    true
}

#[cfg(not(target_arch = "x86_64"))]
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_f32<F: FnMut(usize, usize, f32)>(
    _a: &[f32],
    _bias: &[f32],
    _m: usize,
    _k: usize,
    _b: &[f32],
    _n: usize,
    _write: &mut F,
) -> bool {
    false
}

#[cfg(not(target_arch = "x86_64"))]
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_q<F: FnMut(usize, usize, i32)>(
    _ctx: QFormat,
    _a: &[i32],
    _bias: &[i32],
    _m: usize,
    _k: usize,
    _b: &[i32],
    _n: usize,
    _write: &mut F,
) -> bool {
    false
}

#[cfg(not(target_arch = "x86_64"))]
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_i8<F: FnMut(usize, usize, i8)>(
    _ctx: I8Affine,
    _a: &[i8],
    _bias: &[i8],
    _m: usize,
    _k: usize,
    _b: &[i8],
    _n: usize,
    _write: &mut F,
) -> bool {
    false
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use std::arch::x86_64::{
        __m128, __m128i, __m256, __m256i, _mm256_add_epi32, _mm256_add_epi64, _mm256_add_ps,
        _mm256_cvtepi32_epi64, _mm256_cvtepi8_epi16, _mm256_loadu_ps, _mm256_loadu_si256,
        _mm256_madd_epi16, _mm256_mul_epi32, _mm256_mul_ps, _mm256_set1_epi32, _mm256_set1_epi64x,
        _mm256_set1_ps, _mm256_setzero_si256, _mm256_srli_epi64, _mm256_storeu_ps,
        _mm256_storeu_si256, _mm_add_ps, _mm_loadu_ps, _mm_loadu_si128, _mm_mul_ps, _mm_set1_ps,
        _mm_storeu_ps,
    };
    use std::cell::RefCell;

    use navft_qformat::QFormat;

    use crate::element::{Element, I8Affine};

    thread_local! {
        /// The transposed `K × NR` panel the f32 column kernels stream with
        /// one contiguous load per `k` step, reused across sweeps so warm
        /// passes stay allocation-free.
        static PANEL_F32: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
        /// The raw-word twin of [`PANEL_F32`] for the Q-format kernel.
        static PANEL_Q: RefCell<Vec<i32>> = const { RefCell::new(Vec::new()) };
        /// The `i8` kernel's panel: bytes widened to `i16` and interleaved
        /// in `(k, k+1)` pairs so `madd_epi16` consumes two `k` steps per
        /// instruction (see [`pack_byte_pairs`]).
        static PANEL_I8: RefCell<Vec<i16>> = const { RefCell::new(Vec::new()) };
    }

    /// Packs `bt[kk · nr + j] = b[(n0 + j) · k + kk]` — `nr` consecutive
    /// columns of the reduction panel, transposed.
    fn pack_columns<T: Copy>(bt: &mut [T], b: &[T], n0: usize, k: usize, nr: usize) {
        for j in 0..nr {
            let col = &b[(n0 + j) * k..(n0 + j + 1) * k];
            for (kk, &v) in col.iter().enumerate() {
                bt[kk * nr + j] = v;
            }
        }
    }

    /// The scalar per-output chains for the `< NR` remainder columns — the
    /// same accumulation the tile path's edge case performs.
    #[allow(clippy::too_many_arguments)]
    fn scalar_columns<F: FnMut(usize, usize, f32)>(
        a: &[f32],
        bias: &[f32],
        m: usize,
        k: usize,
        b: &[f32],
        from: usize,
        n: usize,
        write: &mut F,
    ) {
        for j in from..n {
            let col = &b[j * k..(j + 1) * k];
            for i in 0..m {
                let row = &a[i * k..(i + 1) * k];
                let mut acc = bias[i];
                for (av, bv) in row.iter().zip(col.iter()) {
                    acc += bv * av;
                }
                write(i, j, acc);
            }
        }
    }

    pub(super) fn gemm_f32_avx2<F: FnMut(usize, usize, f32)>(
        a: &[f32],
        bias: &[f32],
        m: usize,
        k: usize,
        b: &[f32],
        n: usize,
        write: &mut F,
    ) {
        const NR: usize = 8;
        PANEL_F32.with(|panel| {
            let mut bt = panel.borrow_mut();
            if bt.len() < k * NR {
                bt.resize(k * NR, 0.0);
            }
            let mut n0 = 0;
            while n0 + NR <= n {
                pack_columns(&mut bt[..k * NR], b, n0, k, NR);
                // SAFETY: the dispatcher verified AVX2; the panel slice holds
                // exactly k × 8 packed floats.
                unsafe { rows_avx2(a, bias, m, k, &bt[..k * NR], n0, write) };
                n0 += NR;
            }
            scalar_columns(a, bias, m, k, b, n0, n, write);
        });
    }

    #[target_feature(enable = "avx2")]
    unsafe fn rows_avx2<F: FnMut(usize, usize, f32)>(
        a: &[f32],
        bias: &[f32],
        m: usize,
        k: usize,
        bt: &[f32],
        n0: usize,
        write: &mut F,
    ) {
        debug_assert_eq!(bt.len(), k * 8);
        // 4-row blocks: four independent accumulator registers share each
        // panel load and break the one-add-per-cycle dependency chain a
        // single register would impose. Lane `j` of register `r` still sums
        // `bias[i + r] + Σ_k a·b` in ascending `k` order — the scalar chain.
        const MR: usize = 4;
        let mut i = 0;
        while i + MR <= m {
            let rows: [&[f32]; MR] = std::array::from_fn(|r| &a[(i + r) * k..(i + r + 1) * k]);
            let mut acc: [__m256; MR] = std::array::from_fn(|r| _mm256_set1_ps(bias[i + r]));
            #[allow(clippy::needless_range_loop)] // kk indexes `bt` and all MR rows
            for kk in 0..k {
                // Explicit multiply + add: FMA's fused rounding would break
                // bit-identity with the scalar chain.
                let bv = _mm256_loadu_ps(bt.as_ptr().add(kk * 8));
                for r in 0..MR {
                    acc[r] = _mm256_add_ps(acc[r], _mm256_mul_ps(_mm256_set1_ps(rows[r][kk]), bv));
                }
            }
            for (r, &reg) in acc.iter().enumerate() {
                let mut lanes = [0.0f32; 8];
                _mm256_storeu_ps(lanes.as_mut_ptr(), reg);
                for (j, &v) in lanes.iter().enumerate() {
                    write(i + r, n0 + j, v);
                }
            }
            i += MR;
        }
        while i < m {
            let row = &a[i * k..(i + 1) * k];
            let mut acc = _mm256_set1_ps(bias[i]);
            for (kk, &av) in row.iter().enumerate() {
                let bv = _mm256_loadu_ps(bt.as_ptr().add(kk * 8));
                acc = _mm256_add_ps(acc, _mm256_mul_ps(_mm256_set1_ps(av), bv));
            }
            let mut lanes = [0.0f32; 8];
            _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
            for (j, &v) in lanes.iter().enumerate() {
                write(i, n0 + j, v);
            }
            i += 1;
        }
    }

    pub(super) fn gemm_f32_sse2<F: FnMut(usize, usize, f32)>(
        a: &[f32],
        bias: &[f32],
        m: usize,
        k: usize,
        b: &[f32],
        n: usize,
        write: &mut F,
    ) {
        const NR: usize = 4;
        PANEL_F32.with(|panel| {
            let mut bt = panel.borrow_mut();
            if bt.len() < k * NR {
                bt.resize(k * NR, 0.0);
            }
            let mut n0 = 0;
            while n0 + NR <= n {
                pack_columns(&mut bt[..k * NR], b, n0, k, NR);
                // SAFETY: SSE/SSE2 are part of the x86-64 baseline; the
                // panel slice holds exactly k × 4 packed floats.
                unsafe { rows_sse2(a, bias, m, k, &bt[..k * NR], n0, write) };
                n0 += NR;
            }
            scalar_columns(a, bias, m, k, b, n0, n, write);
        });
    }

    #[target_feature(enable = "sse,sse2")]
    unsafe fn rows_sse2<F: FnMut(usize, usize, f32)>(
        a: &[f32],
        bias: &[f32],
        m: usize,
        k: usize,
        bt: &[f32],
        n0: usize,
        write: &mut F,
    ) {
        debug_assert_eq!(bt.len(), k * 4);
        for i in 0..m {
            let row = &a[i * k..(i + 1) * k];
            let mut acc: __m128 = _mm_set1_ps(bias[i]);
            for (kk, &av) in row.iter().enumerate() {
                let bv = _mm_loadu_ps(bt.as_ptr().add(kk * 4));
                acc = _mm_add_ps(acc, _mm_mul_ps(_mm_set1_ps(av), bv));
            }
            let mut lanes = [0.0f32; 4];
            _mm_storeu_ps(lanes.as_mut_ptr(), acc);
            for (j, &v) in lanes.iter().enumerate() {
                write(i, n0 + j, v);
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub(super) fn gemm_q_avx2<F: FnMut(usize, usize, i32)>(
        ctx: QFormat,
        a: &[i32],
        bias: &[i32],
        m: usize,
        k: usize,
        b: &[i32],
        n: usize,
        write: &mut F,
    ) {
        const NR: usize = 8;
        PANEL_Q.with(|panel| {
            let mut bt = panel.borrow_mut();
            if bt.len() < k * NR {
                bt.resize(k * NR, 0);
            }
            let mut n0 = 0;
            while n0 + NR <= n {
                pack_columns(&mut bt[..k * NR], b, n0, k, NR);
                // SAFETY: the dispatcher verified AVX2; the panel slice
                // holds exactly k × 8 packed words.
                unsafe { rows_q_avx2(ctx, a, bias, m, k, &bt[..k * NR], n0, write) };
                n0 += NR;
            }
            // Tail columns: k-vectorized dots — a different summation order,
            // but wrapping integer addition is associative, so still exact.
            for ni in n0..n {
                let brow = &b[ni * k..(ni + 1) * k];
                for mi in 0..m {
                    let arow = &a[mi * k..(mi + 1) * k];
                    // SAFETY: the dispatcher verified AVX2.
                    let dot = unsafe { dot_words_avx2(arow, brow) };
                    let acc = <i32 as Element>::acc_init(bias[mi], ctx).wrapping_add(dot);
                    write(mi, ni, <i32 as Element>::finish(acc, ctx));
                }
            }
        });
    }

    /// Eight-column lane-per-column kernel for raw Q-format words: each
    /// `i64` lane accumulates `acc_init(bias) + Σ_k a·b` in ascending `k`
    /// order — the scalar tile's chain verbatim (`mul_epi32` sign-extends
    /// the low 32 bits of each lane, so every product is the exact widened
    /// `i64`).
    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    unsafe fn rows_q_avx2<F: FnMut(usize, usize, i32)>(
        ctx: QFormat,
        a: &[i32],
        bias: &[i32],
        m: usize,
        k: usize,
        bt: &[i32],
        n0: usize,
        write: &mut F,
    ) {
        debug_assert_eq!(bt.len(), k * 8);
        for i in 0..m {
            let row = &a[i * k..(i + 1) * k];
            let init = <i32 as Element>::acc_init(bias[i], ctx);
            let mut lo = _mm256_set1_epi64x(init);
            let mut hi = _mm256_set1_epi64x(init);
            for (kk, &av) in row.iter().enumerate() {
                let va = _mm256_set1_epi64x(i64::from(av));
                let b_lo = _mm256_cvtepi32_epi64(_mm_loadu_si128(
                    bt.as_ptr().add(kk * 8).cast::<__m128i>(),
                ));
                let b_hi = _mm256_cvtepi32_epi64(_mm_loadu_si128(
                    bt.as_ptr().add(kk * 8 + 4).cast::<__m128i>(),
                ));
                lo = _mm256_add_epi64(lo, _mm256_mul_epi32(va, b_lo));
                hi = _mm256_add_epi64(hi, _mm256_mul_epi32(va, b_hi));
            }
            let mut lanes = [0i64; 8];
            _mm256_storeu_si256(lanes.as_mut_ptr().cast::<__m256i>(), lo);
            _mm256_storeu_si256(lanes.as_mut_ptr().add(4).cast::<__m256i>(), hi);
            for (j, &acc) in lanes.iter().enumerate() {
                write(i, n0 + j, <i32 as Element>::finish(acc, ctx));
            }
        }
    }

    /// `Σ a[t] · b[t]` in a widened `i64`, exactly — the scalar MAC chain's
    /// sum in a different (irrelevant, integer addition is associative)
    /// order.
    #[target_feature(enable = "avx2")]
    unsafe fn dot_words_avx2(a: &[i32], b: &[i32]) -> i64 {
        debug_assert_eq!(a.len(), b.len());
        let mut even = _mm256_setzero_si256();
        let mut odd = _mm256_setzero_si256();
        let chunks = a.len() / 8;
        for c in 0..chunks {
            let va = _mm256_loadu_si256(a.as_ptr().add(c * 8).cast::<__m256i>());
            let vb = _mm256_loadu_si256(b.as_ptr().add(c * 8).cast::<__m256i>());
            even = _mm256_add_epi64(even, _mm256_mul_epi32(va, vb));
            // The logical 64-bit shift moves each odd 32-bit word into a
            // `mul_epi32` source position; the multiply sign-extends the low
            // halves, so the zero fill above them is irrelevant.
            let va_odd = _mm256_srli_epi64(va, 32);
            let vb_odd = _mm256_srli_epi64(vb, 32);
            odd = _mm256_add_epi64(odd, _mm256_mul_epi32(va_odd, vb_odd));
        }
        let mut lanes = [0i64; 4];
        _mm256_storeu_si256(lanes.as_mut_ptr().cast::<__m256i>(), _mm256_add_epi64(even, odd));
        let mut total = lanes.iter().fold(0i64, |s, &l| s.wrapping_add(l));
        for t in chunks * 8..a.len() {
            total = total.wrapping_add(i64::from(a[t]) * i64::from(b[t]));
        }
        total
    }

    #[allow(clippy::too_many_arguments)]
    pub(super) fn gemm_i8_avx2<F: FnMut(usize, usize, i8)>(
        ctx: I8Affine,
        a: &[i8],
        bias: &[i8],
        m: usize,
        k: usize,
        b: &[i8],
        n: usize,
        write: &mut F,
    ) {
        const NR: usize = 16;
        let kpairs = k.div_ceil(2);
        PANEL_I8.with(|panel| {
            let mut bt = panel.borrow_mut();
            if bt.len() < kpairs * 2 * NR {
                bt.resize(kpairs * 2 * NR, 0);
            }
            let mut n0 = 0;
            while n0 + NR <= n {
                pack_byte_pairs(&mut bt[..kpairs * 2 * NR], b, n0, k);
                // SAFETY: the dispatcher verified AVX2; the panel slice
                // holds exactly kpairs × 32 packed pair lanes.
                unsafe { rows_i8_avx2(ctx, a, bias, m, k, &bt[..kpairs * 2 * NR], n0, write) };
                n0 += NR;
            }
            // Tail columns: k-vectorized dots — a different summation order,
            // but wrapping integer addition is associative, so still exact.
            for ni in n0..n {
                let brow = &b[ni * k..(ni + 1) * k];
                for mi in 0..m {
                    let arow = &a[mi * k..(mi + 1) * k];
                    // SAFETY: the dispatcher verified AVX2.
                    let dot = unsafe { dot_bytes_avx2(arow, brow) };
                    let acc = <i8 as Element>::acc_init(bias[mi], ctx).wrapping_add(dot);
                    write(mi, ni, <i8 as Element>::finish(acc, ctx));
                }
            }
        });
    }

    /// Packs 16 columns of the byte panel for [`rows_i8_avx2`], widened to
    /// `i16` and interleaved in `(2p, 2p + 1)` reduction pairs: pair block
    /// `p` holds `[b(2p, j), b(2p+1, j)]` for columns `j = 0..8` in its
    /// first 16 lanes and columns `8..16` in its next 16, so one 256-bit
    /// load feeds `madd_epi16` for eight columns. An odd trailing `k` step
    /// is padded with a zero partner (`a · 0` contributes nothing).
    fn pack_byte_pairs(bt: &mut [i16], b: &[i8], n0: usize, k: usize) {
        let kpairs = k.div_ceil(2);
        debug_assert_eq!(bt.len(), kpairs * 32);
        for j in 0..16 {
            let col = &b[(n0 + j) * k..(n0 + j + 1) * k];
            let base = (j / 8) * 16 + (j % 8) * 2;
            for p in 0..kpairs {
                bt[p * 32 + base] = i16::from(col[2 * p]);
                bt[p * 32 + base + 1] = if 2 * p + 1 < k { i16::from(col[2 * p + 1]) } else { 0 };
            }
        }
    }

    /// Sixteen-column lane-per-column kernel for affine bytes: each `i32`
    /// lane accumulates `acc_init(bias) + Σ_k a·b` with `madd_epi16`
    /// folding each ascending `(k, k+1)` product pair before the lane add —
    /// wrapping `i32` addition is associative, so the result equals the
    /// scalar tile's one-at-a-time chain exactly. Every product is exact in
    /// 16-bit-input arithmetic (`|a·b| ≤ 127²`, pair sums ≤ 2·127² — far
    /// from `madd`'s only saturation point) and `add_epi32` wraps like the
    /// scalar accumulator.
    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    unsafe fn rows_i8_avx2<F: FnMut(usize, usize, i8)>(
        ctx: I8Affine,
        a: &[i8],
        bias: &[i8],
        m: usize,
        k: usize,
        bt: &[i16],
        n0: usize,
        write: &mut F,
    ) {
        let kpairs = k.div_ceil(2);
        debug_assert_eq!(bt.len(), kpairs * 32);
        for i in 0..m {
            let row = &a[i * k..(i + 1) * k];
            let init = <i8 as Element>::acc_init(bias[i], ctx);
            let mut lo = _mm256_set1_epi32(init);
            let mut hi = _mm256_set1_epi32(init);
            for p in 0..kpairs {
                // Sign-extend each byte into its 16-bit lane (`as i16`),
                // then reinterpret the bits for the shift-or pack.
                let a0 = u32::from(row[2 * p] as i16 as u16);
                let a1 = if 2 * p + 1 < k { u32::from(row[2 * p + 1] as i16 as u16) } else { 0 };
                let va = _mm256_set1_epi32((a0 | (a1 << 16)) as i32);
                let b_lo = _mm256_loadu_si256(bt.as_ptr().add(p * 32).cast::<__m256i>());
                let b_hi = _mm256_loadu_si256(bt.as_ptr().add(p * 32 + 16).cast::<__m256i>());
                lo = _mm256_add_epi32(lo, _mm256_madd_epi16(va, b_lo));
                hi = _mm256_add_epi32(hi, _mm256_madd_epi16(va, b_hi));
            }
            let mut lanes = [0i32; 16];
            _mm256_storeu_si256(lanes.as_mut_ptr().cast::<__m256i>(), lo);
            _mm256_storeu_si256(lanes.as_mut_ptr().add(8).cast::<__m256i>(), hi);
            for (j, &acc) in lanes.iter().enumerate() {
                write(i, n0 + j, <i8 as Element>::finish(acc, ctx));
            }
        }
    }

    /// `Σ a[t] · b[t]` over bytes in a widened `i32`, exactly: the bytes are
    /// sign-extended to 16 bits and pair-multiply-added (`|a·b| ≤ 127²`
    /// keeps every pair sum far from `madd`'s only saturation point,
    /// `i16::MIN · i16::MIN`).
    #[target_feature(enable = "avx2")]
    unsafe fn dot_bytes_avx2(a: &[i8], b: &[i8]) -> i32 {
        debug_assert_eq!(a.len(), b.len());
        let mut acc = _mm256_setzero_si256();
        let chunks = a.len() / 16;
        for c in 0..chunks {
            let va = _mm_loadu_si128(a.as_ptr().add(c * 16).cast::<__m128i>());
            let vb = _mm_loadu_si128(b.as_ptr().add(c * 16).cast::<__m128i>());
            let prod = _mm256_madd_epi16(_mm256_cvtepi8_epi16(va), _mm256_cvtepi8_epi16(vb));
            acc = _mm256_add_epi32(acc, prod);
        }
        let mut lanes = [0i32; 8];
        _mm256_storeu_si256(lanes.as_mut_ptr().cast::<__m256i>(), acc);
        let mut total = lanes.iter().fold(0i32, |s, &l| s.wrapping_add(l));
        for t in chunks * 16..a.len() {
            total = total.wrapping_add(i32::from(a[t]) * i32::from(b[t]));
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(deprecated)] // pins that the compat shim still drives dispatch
    fn kernel_name_reports_scalar_when_forced() {
        // Serialized against other toggling tests by running in this module
        // only; restore the default before returning.
        set_force_scalar_kernels(true);
        assert_eq!(simd_kernel_name(), "scalar");
        set_force_scalar_kernels(false);
        let name = simd_kernel_name();
        assert!(["avx2", "sse2", "scalar"].contains(&name), "unknown tier {name}");
    }
}

//! Explicit `std::arch` SIMD microkernels behind the blocked GEMM, with
//! runtime dispatch and a force-scalar override.
//!
//! The GEMM module's `gemm_bias` first offers every sweep to the backend's
//! [`Element::gemm_simd`](crate::Element::gemm_simd) hook, which lands here;
//! when no kernel fits the running CPU — or the caller pins scalar
//! execution via [`EngineConfig::with_force_scalar`] — the portable scalar
//! register tiles run instead. Every kernel honours the crate's
//! bit-exactness contract:
//!
//! * **`f32`** vectorizes across *output columns*: each vector lane owns one
//!   output's full `K` chain, fed in ascending `k` order through explicit
//!   multiply + add (never FMA, whose fused rounding would diverge from the
//!   scalar chain), so lane `j` reproduces the scalar accumulator bit for
//!   bit. AVX2 runs 8 columns across 4 row-blocked accumulator registers;
//!   the x86-64 SSE2 baseline runs 4 columns. Remainder columns run the
//!   scalar chain (f32 summation order is load-bearing).
//! * **`i32` (Q-format) and `i8` (affine)** also vectorize full column
//!   blocks lane-per-column, each lane fed in ascending `k` order — the
//!   scalar chain verbatim. Bytes run 16 `i32` lanes with `madd_epi16`
//!   folding `(k, k+1)` product pairs. Q formats whose total width fits
//!   `i16` (every preset) take the same 16-lane `madd` shape on narrowed
//!   words, guarded for exactness: a pre-pass profiles each left-hand row
//!   (words must fit `i16`, no aligned `(-32768, -32768)` pair, and a
//!   per-row chunk bound keeps `i32` pair sums from wrapping before they
//!   widen into `i64` lanes), and any row, word, or weight panel that
//!   fault injection pushed outside those bounds falls back to widened
//!   exact dots for that slice only. Wider formats keep the 8-lane
//!   `i64`-widened kernel. Remainder columns fall back to a `k`-vectorized
//!   dot with a horizontal reduction, which is still exact because integer
//!   addition is associative and commutative (also modulo 2ⁿ). Products
//!   stay exact in their widened lanes, and the single rounding requantize
//!   per output runs in the vectorized epilogues (`requantize_q` /
//!   `requantize_i8`) that back [`Element::finish_tile`] — bit-identical
//!   to the scalar `finish`, just over whole registers of accumulators.
//!   Both MAC kernels need AVX2; without it the scalar tiles run (the
//!   epilogues also carry an SSE2 tier for the tiled path).
//!
//! [`Element::finish_tile`]: crate::Element::finish_tile
//!
//! This is the only module in the crate that may use `unsafe` (the crate
//! root is `#![deny(unsafe_code)]`): every unsafe operation is a CPU
//! intrinsic gated by `is_x86_feature_detected!` or an in-bounds raw load
//! from a slice whose length the caller checked. Non-x86-64 targets compile
//! declining stubs and keep the scalar tiles.

#![allow(unsafe_code)]

#[allow(unused_imports)]
use crate::element::I8Affine;
#[allow(unused_imports)]
use crate::engine::EngineConfig;
#[allow(unused_imports)]
use navft_qformat::QFormat;

/// The kernel tier runtime dispatch selects on this CPU right now:
/// `"avx2"`, `"sse2"`, or `"scalar"` when no tier fits (non-x86-64
/// targets). Callers that pin [`EngineConfig::with_force_scalar`] run the
/// scalar tiles regardless of the reported tier.
pub fn simd_kernel_name() -> &'static str {
    best_tier_name()
}

#[cfg(target_arch = "x86_64")]
fn best_tier_name() -> &'static str {
    if std::arch::is_x86_feature_detected!("avx2") {
        "avx2"
    } else {
        "sse2"
    }
}

#[cfg(not(target_arch = "x86_64"))]
fn best_tier_name() -> &'static str {
    "scalar"
}

/// The `f32` column kernel: AVX2 where detected, SSE2 otherwise (always
/// present on x86-64). Never declines on x86-64.
#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_f32<F: FnMut(usize, usize, f32)>(
    a: &[f32],
    bias: &[f32],
    m: usize,
    k: usize,
    b: &[f32],
    n: usize,
    write: &mut F,
) -> bool {
    if std::arch::is_x86_feature_detected!("avx2") {
        x86::gemm_f32_avx2(a, bias, m, k, b, n, write);
    } else {
        x86::gemm_f32_sse2(a, bias, m, k, b, n, write);
    }
    true
}

/// The raw Q-format word kernel: AVX2 only (the even/odd 32×32→64-bit
/// multiply needs it); declines to the scalar tiles otherwise.
#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_q<F: FnMut(usize, usize, i32)>(
    ctx: QFormat,
    a: &[i32],
    bias: &[i32],
    m: usize,
    k: usize,
    b: &[i32],
    n: usize,
    write: &mut F,
) -> bool {
    if !std::arch::is_x86_feature_detected!("avx2") {
        return false;
    }
    x86::gemm_q_avx2(ctx, a, bias, m, k, b, n, write);
    true
}

/// The `i8` affine byte kernel: AVX2 only (`cvtepi8_epi16` + `madd_epi16`);
/// declines to the scalar tiles otherwise.
#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_i8<F: FnMut(usize, usize, i8)>(
    ctx: I8Affine,
    a: &[i8],
    bias: &[i8],
    m: usize,
    k: usize,
    b: &[i8],
    n: usize,
    write: &mut F,
) -> bool {
    if !std::arch::is_x86_feature_detected!("avx2") {
        return false;
    }
    x86::gemm_i8_avx2(ctx, a, bias, m, k, b, n, write);
    true
}

/// Vectorized Q-format requantize epilogue over a slice of widened `i64`
/// accumulators — the batched [`Element::finish_tile`] seam for raw words.
/// AVX2 folds four lanes per step, the x86-64 SSE2 baseline two; both
/// reproduce the branchless scalar
/// [`QFormat::requantize_product_sum`] bit for bit (round half away from
/// zero with `i64` saturation, arithmetic shift, raw-range clamp), so
/// dispatch never changes results, only throughput.
///
/// [`Element::finish_tile`]: crate::Element::finish_tile
#[cfg(target_arch = "x86_64")]
pub(crate) fn requantize_q(ctx: QFormat, accs: &[i64], out: &mut [i32]) {
    assert_eq!(accs.len(), out.len(), "accumulator and output tiles must match");
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: AVX2 verified above.
        unsafe { x86::requantize_q_avx2(ctx, accs, out) };
    } else {
        // SAFETY: SSE2 is part of the x86-64 baseline.
        unsafe { x86::requantize_q_sse2(ctx, accs, out) };
    }
}

/// Vectorized affine requantize epilogue over a slice of `i32` accumulators
/// — the batched [`Element::finish_tile`] seam for bytes. Both tiers run the
/// scalar chain `(acc as f32 * scale).round().clamp(-128.0, 127.0) as i8`
/// exactly: lane conversion and multiply round to nearest even like the
/// scalar code, and round-half-away is rebuilt from an exact
/// truncate / fraction-compare / signed-step sequence, so results stay bit
/// for bit identical for every accumulator (the affine scale is finite by
/// construction).
///
/// [`Element::finish_tile`]: crate::Element::finish_tile
#[cfg(target_arch = "x86_64")]
pub(crate) fn requantize_i8(ctx: I8Affine, accs: &[i32], out: &mut [i8]) {
    assert_eq!(accs.len(), out.len(), "accumulator and output tiles must match");
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: AVX2 verified above.
        unsafe { x86::requantize_i8_avx2(ctx, accs, out) };
    } else {
        // SAFETY: SSE/SSE2 are part of the x86-64 baseline.
        unsafe { x86::requantize_i8_sse2(ctx, accs, out) };
    }
}

/// Portable fallback: the scalar epilogue loop, element by element.
#[cfg(not(target_arch = "x86_64"))]
pub(crate) fn requantize_q(ctx: QFormat, accs: &[i64], out: &mut [i32]) {
    assert_eq!(accs.len(), out.len(), "accumulator and output tiles must match");
    for (value, &acc) in out.iter_mut().zip(accs.iter()) {
        *value = ctx.requantize_product_sum(acc);
    }
}

/// Portable fallback: the scalar epilogue loop, element by element.
#[cfg(not(target_arch = "x86_64"))]
pub(crate) fn requantize_i8(ctx: I8Affine, accs: &[i32], out: &mut [i8]) {
    assert_eq!(accs.len(), out.len(), "accumulator and output tiles must match");
    for (value, &acc) in out.iter_mut().zip(accs.iter()) {
        *value = <i8 as crate::element::Element>::finish(acc, ctx);
    }
}

#[cfg(not(target_arch = "x86_64"))]
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_f32<F: FnMut(usize, usize, f32)>(
    _a: &[f32],
    _bias: &[f32],
    _m: usize,
    _k: usize,
    _b: &[f32],
    _n: usize,
    _write: &mut F,
) -> bool {
    false
}

#[cfg(not(target_arch = "x86_64"))]
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_q<F: FnMut(usize, usize, i32)>(
    _ctx: QFormat,
    _a: &[i32],
    _bias: &[i32],
    _m: usize,
    _k: usize,
    _b: &[i32],
    _n: usize,
    _write: &mut F,
) -> bool {
    false
}

#[cfg(not(target_arch = "x86_64"))]
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_i8<F: FnMut(usize, usize, i8)>(
    _ctx: I8Affine,
    _a: &[i8],
    _bias: &[i8],
    _m: usize,
    _k: usize,
    _b: &[i8],
    _n: usize,
    _write: &mut F,
) -> bool {
    false
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use std::arch::x86_64::{
        __m128, __m128i, __m256, __m256i, _mm256_add_epi32, _mm256_add_epi64, _mm256_add_ps,
        _mm256_and_ps, _mm256_and_si256, _mm256_andnot_ps, _mm256_andnot_si256, _mm256_blendv_epi8,
        _mm256_castsi256_si128, _mm256_cmp_ps, _mm256_cmpgt_epi64, _mm256_cvtepi32_epi64,
        _mm256_cvtepi32_ps, _mm256_cvtepi8_epi16, _mm256_cvtps_epi32, _mm256_extracti128_si256,
        _mm256_loadu_ps, _mm256_loadu_si256, _mm256_madd_epi16, _mm256_max_ps, _mm256_min_ps,
        _mm256_mul_epi32, _mm256_mul_ps, _mm256_or_ps, _mm256_or_si256, _mm256_packs_epi32,
        _mm256_permutevar8x32_epi32, _mm256_round_ps, _mm256_set1_epi32, _mm256_set1_epi64x,
        _mm256_set1_ps, _mm256_setr_epi32, _mm256_setzero_si256, _mm256_sll_epi64,
        _mm256_srl_epi64, _mm256_srli_epi64, _mm256_storeu_ps, _mm256_storeu_si256, _mm256_sub_ps,
        _mm_add_epi64, _mm_add_ps, _mm_and_ps, _mm_and_si128, _mm_andnot_ps, _mm_andnot_si128,
        _mm_cmpge_ps, _mm_cvtepi32_ps, _mm_cvtsi32_si128, _mm_cvttps_epi32, _mm_loadu_ps,
        _mm_loadu_si128, _mm_max_ps, _mm_min_ps, _mm_mul_ps, _mm_or_ps, _mm_or_si128,
        _mm_set1_epi64x, _mm_set1_ps, _mm_setzero_si128, _mm_shuffle_epi32, _mm_sll_epi64,
        _mm_srai_epi32, _mm_srl_epi64, _mm_storeu_ps, _mm_storeu_si128, _mm_sub_ps,
        _mm_unpackhi_epi32, _mm_unpackhi_epi64, _mm_unpacklo_epi32, _mm_unpacklo_epi64, _CMP_GE_OQ,
        _MM_FROUND_NO_EXC, _MM_FROUND_TO_ZERO,
    };
    use std::cell::RefCell;

    use navft_qformat::QFormat;

    use crate::element::{Element, I8Affine};

    thread_local! {
        /// The transposed `K × NR` panel the f32 column kernels stream with
        /// one contiguous load per `k` step, reused across sweeps so warm
        /// passes stay allocation-free.
        static PANEL_F32: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
        /// The raw-word twin of [`PANEL_F32`] for the Q-format kernel.
        static PANEL_Q: RefCell<Vec<i32>> = const { RefCell::new(Vec::new()) };
        /// The `i8` kernel's panel: bytes widened to `i16` and interleaved
        /// in `(k, k+1)` pairs so `madd_epi16` consumes two `k` steps per
        /// instruction (see [`pack_byte_pairs`]).
        static PANEL_I8: RefCell<Vec<i16>> = const { RefCell::new(Vec::new()) };
        /// The narrow Q-format kernel's panel: raw words of formats that fit
        /// `i16` (every total width ≤ 16), narrowed and interleaved in the
        /// same `(k, k+1)` pair layout as [`PANEL_I8`].
        static PANEL_Q16: RefCell<Vec<i16>> = const { RefCell::new(Vec::new()) };
        /// Per-call row scratch for the narrow Q-format kernel: every
        /// left-hand row's `(2k, 2k+1)` word pairs pre-packed into one
        /// broadcast-ready `i32` each, plus the per-row widening chunk
        /// bound (`0` marks a row that must take the exact-dot fallback).
        /// Computed once per GEMM call and reused across all column blocks.
        static ROWS_Q16: RefCell<(Vec<i32>, Vec<u32>)> =
            const { RefCell::new((Vec::new(), Vec::new())) };
    }

    /// Packs `bt[kk · nr + j] = b[(n0 + j) · k + kk]` — `nr` consecutive
    /// columns of the reduction panel, transposed.
    fn pack_columns<T: Copy>(bt: &mut [T], b: &[T], n0: usize, k: usize, nr: usize) {
        for j in 0..nr {
            let col = &b[(n0 + j) * k..(n0 + j + 1) * k];
            for (kk, &v) in col.iter().enumerate() {
                bt[kk * nr + j] = v;
            }
        }
    }

    /// The scalar per-output chains for the `< NR` remainder columns — the
    /// same accumulation the tile path's edge case performs.
    #[allow(clippy::too_many_arguments)]
    fn scalar_columns<F: FnMut(usize, usize, f32)>(
        a: &[f32],
        bias: &[f32],
        m: usize,
        k: usize,
        b: &[f32],
        from: usize,
        n: usize,
        write: &mut F,
    ) {
        for j in from..n {
            let col = &b[j * k..(j + 1) * k];
            for i in 0..m {
                let row = &a[i * k..(i + 1) * k];
                let mut acc = bias[i];
                for (av, bv) in row.iter().zip(col.iter()) {
                    acc += bv * av;
                }
                write(i, j, acc);
            }
        }
    }

    pub(super) fn gemm_f32_avx2<F: FnMut(usize, usize, f32)>(
        a: &[f32],
        bias: &[f32],
        m: usize,
        k: usize,
        b: &[f32],
        n: usize,
        write: &mut F,
    ) {
        const NR: usize = 8;
        PANEL_F32.with(|panel| {
            let mut bt = panel.borrow_mut();
            if bt.len() < k * NR {
                bt.resize(k * NR, 0.0);
            }
            let mut n0 = 0;
            while n0 + NR <= n {
                pack_columns(&mut bt[..k * NR], b, n0, k, NR);
                // SAFETY: the dispatcher verified AVX2; the panel slice holds
                // exactly k × 8 packed floats.
                unsafe { rows_avx2(a, bias, m, k, &bt[..k * NR], n0, write) };
                n0 += NR;
            }
            scalar_columns(a, bias, m, k, b, n0, n, write);
        });
    }

    #[target_feature(enable = "avx2")]
    unsafe fn rows_avx2<F: FnMut(usize, usize, f32)>(
        a: &[f32],
        bias: &[f32],
        m: usize,
        k: usize,
        bt: &[f32],
        n0: usize,
        write: &mut F,
    ) {
        debug_assert_eq!(bt.len(), k * 8);
        // 4-row blocks: four independent accumulator registers share each
        // panel load and break the one-add-per-cycle dependency chain a
        // single register would impose. Lane `j` of register `r` still sums
        // `bias[i + r] + Σ_k a·b` in ascending `k` order — the scalar chain.
        const MR: usize = 4;
        let mut i = 0;
        while i + MR <= m {
            let rows: [&[f32]; MR] = std::array::from_fn(|r| &a[(i + r) * k..(i + r + 1) * k]);
            let mut acc: [__m256; MR] = std::array::from_fn(|r| _mm256_set1_ps(bias[i + r]));
            #[allow(clippy::needless_range_loop)] // kk indexes `bt` and all MR rows
            for kk in 0..k {
                // Explicit multiply + add: FMA's fused rounding would break
                // bit-identity with the scalar chain.
                let bv = _mm256_loadu_ps(bt.as_ptr().add(kk * 8));
                for r in 0..MR {
                    acc[r] = _mm256_add_ps(acc[r], _mm256_mul_ps(_mm256_set1_ps(rows[r][kk]), bv));
                }
            }
            for (r, &reg) in acc.iter().enumerate() {
                let mut lanes = [0.0f32; 8];
                _mm256_storeu_ps(lanes.as_mut_ptr(), reg);
                for (j, &v) in lanes.iter().enumerate() {
                    write(i + r, n0 + j, v);
                }
            }
            i += MR;
        }
        while i < m {
            let row = &a[i * k..(i + 1) * k];
            let mut acc = _mm256_set1_ps(bias[i]);
            for (kk, &av) in row.iter().enumerate() {
                let bv = _mm256_loadu_ps(bt.as_ptr().add(kk * 8));
                acc = _mm256_add_ps(acc, _mm256_mul_ps(_mm256_set1_ps(av), bv));
            }
            let mut lanes = [0.0f32; 8];
            _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
            for (j, &v) in lanes.iter().enumerate() {
                write(i, n0 + j, v);
            }
            i += 1;
        }
    }

    pub(super) fn gemm_f32_sse2<F: FnMut(usize, usize, f32)>(
        a: &[f32],
        bias: &[f32],
        m: usize,
        k: usize,
        b: &[f32],
        n: usize,
        write: &mut F,
    ) {
        const NR: usize = 4;
        PANEL_F32.with(|panel| {
            let mut bt = panel.borrow_mut();
            if bt.len() < k * NR {
                bt.resize(k * NR, 0.0);
            }
            let mut n0 = 0;
            while n0 + NR <= n {
                pack_columns(&mut bt[..k * NR], b, n0, k, NR);
                // SAFETY: SSE/SSE2 are part of the x86-64 baseline; the
                // panel slice holds exactly k × 4 packed floats.
                unsafe { rows_sse2(a, bias, m, k, &bt[..k * NR], n0, write) };
                n0 += NR;
            }
            scalar_columns(a, bias, m, k, b, n0, n, write);
        });
    }

    #[target_feature(enable = "sse,sse2")]
    unsafe fn rows_sse2<F: FnMut(usize, usize, f32)>(
        a: &[f32],
        bias: &[f32],
        m: usize,
        k: usize,
        bt: &[f32],
        n0: usize,
        write: &mut F,
    ) {
        debug_assert_eq!(bt.len(), k * 4);
        for i in 0..m {
            let row = &a[i * k..(i + 1) * k];
            let mut acc: __m128 = _mm_set1_ps(bias[i]);
            for (kk, &av) in row.iter().enumerate() {
                let bv = _mm_loadu_ps(bt.as_ptr().add(kk * 4));
                acc = _mm_add_ps(acc, _mm_mul_ps(_mm_set1_ps(av), bv));
            }
            let mut lanes = [0.0f32; 4];
            _mm_storeu_ps(lanes.as_mut_ptr(), acc);
            for (j, &v) in lanes.iter().enumerate() {
                write(i, n0 + j, v);
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub(super) fn gemm_q_avx2<F: FnMut(usize, usize, i32)>(
        ctx: QFormat,
        a: &[i32],
        bias: &[i32],
        m: usize,
        k: usize,
        b: &[i32],
        n: usize,
        write: &mut F,
    ) {
        // Every format of total width ≤ 16 stores its raw words within
        // `i16`, where `madd_epi16` folds two reduction steps per
        // instruction — twice the lanes of the widened `mul_epi32` kernel.
        if ctx.total_bits() <= 16 {
            gemm_q16_avx2(ctx, a, bias, m, k, b, n, write);
            return;
        }
        const NR: usize = 8;
        PANEL_Q.with(|panel| {
            let mut bt = panel.borrow_mut();
            if bt.len() < k * NR {
                bt.resize(k * NR, 0);
            }
            let mut n0 = 0;
            while n0 + NR <= n {
                pack_columns(&mut bt[..k * NR], b, n0, k, NR);
                // SAFETY: the dispatcher verified AVX2; the panel slice
                // holds exactly k × 8 packed words.
                unsafe { rows_q_avx2(ctx, a, bias, m, k, &bt[..k * NR], n0, write) };
                n0 += NR;
            }
            // Tail columns: k-vectorized dots — a different summation order,
            // but wrapping integer addition is associative, so still exact.
            for ni in n0..n {
                let brow = &b[ni * k..(ni + 1) * k];
                for mi in 0..m {
                    let arow = &a[mi * k..(mi + 1) * k];
                    // SAFETY: the dispatcher verified AVX2.
                    let dot = unsafe { dot_words_avx2(arow, brow) };
                    let acc = <i32 as Element>::acc_init(bias[mi], ctx).wrapping_add(dot);
                    write(mi, ni, <i32 as Element>::finish(acc, ctx));
                }
            }
        });
    }

    /// Eight-column lane-per-column kernel for raw Q-format words: each
    /// `i64` lane accumulates `acc_init(bias) + Σ_k a·b` in ascending `k`
    /// order — the scalar tile's chain verbatim (`mul_epi32` sign-extends
    /// the low 32 bits of each lane, so every product is the exact widened
    /// `i64`).
    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    unsafe fn rows_q_avx2<F: FnMut(usize, usize, i32)>(
        ctx: QFormat,
        a: &[i32],
        bias: &[i32],
        m: usize,
        k: usize,
        bt: &[i32],
        n0: usize,
        write: &mut F,
    ) {
        debug_assert_eq!(bt.len(), k * 8);
        for i in 0..m {
            let row = &a[i * k..(i + 1) * k];
            let init = <i32 as Element>::acc_init(bias[i], ctx);
            let mut lo = _mm256_set1_epi64x(init);
            let mut hi = _mm256_set1_epi64x(init);
            for (kk, &av) in row.iter().enumerate() {
                let va = _mm256_set1_epi64x(i64::from(av));
                let b_lo = _mm256_cvtepi32_epi64(_mm_loadu_si128(
                    bt.as_ptr().add(kk * 8).cast::<__m128i>(),
                ));
                let b_hi = _mm256_cvtepi32_epi64(_mm_loadu_si128(
                    bt.as_ptr().add(kk * 8 + 4).cast::<__m128i>(),
                ));
                lo = _mm256_add_epi64(lo, _mm256_mul_epi32(va, b_lo));
                hi = _mm256_add_epi64(hi, _mm256_mul_epi32(va, b_hi));
            }
            let mut lanes = [0i64; 8];
            _mm256_storeu_si256(lanes.as_mut_ptr().cast::<__m256i>(), lo);
            _mm256_storeu_si256(lanes.as_mut_ptr().add(4).cast::<__m256i>(), hi);
            let mut words = [0i32; 8];
            // SAFETY: still inside the AVX2 target-feature context.
            requantize_q_avx2(ctx, &lanes, &mut words);
            for (j, &word) in words.iter().enumerate() {
                write(i, n0 + j, word);
            }
        }
    }

    /// [`gemm_q_avx2`]'s narrow-format path: 16 columns per panel, raw
    /// words narrowed to `i16` and reduced with `madd_epi16` pairs exactly
    /// like the byte kernel. Blocks or rows that cannot be folded exactly —
    /// a fault-widened word outside `i16`, or the one `madd` pair pattern
    /// whose sum escapes `i32` — fall back to the widened per-column dots,
    /// so the kernel stays bit-identical to the scalar chain for *every*
    /// input, including corrupted ones.
    #[allow(clippy::too_many_arguments)]
    fn gemm_q16_avx2<F: FnMut(usize, usize, i32)>(
        ctx: QFormat,
        a: &[i32],
        bias: &[i32],
        m: usize,
        k: usize,
        b: &[i32],
        n: usize,
        write: &mut F,
    ) {
        const NR: usize = 16;
        let kpairs = k.div_ceil(2);
        let blocks = n / NR;
        if blocks > 0 {
            PANEL_Q16.with(|panel| {
                ROWS_Q16.with(|rows| {
                    let mut bt = panel.borrow_mut();
                    if bt.len() < kpairs * 2 * NR {
                        bt.resize(kpairs * 2 * NR, 0);
                    }
                    let (apairs, chunks) = &mut *rows.borrow_mut();
                    if apairs.len() < m * kpairs {
                        apairs.resize(m * kpairs, 0);
                    }
                    if chunks.len() < m {
                        chunks.resize(m, 0);
                    }
                    // Profile and pack every `a` row once; each column block
                    // below reuses the broadcast-ready pairs and the per-row
                    // widening bound instead of rescanning `a`.
                    for i in 0..m {
                        chunks[i] = q16_row_pack(
                            &a[i * k..(i + 1) * k],
                            &mut apairs[i * kpairs..(i + 1) * kpairs],
                        );
                    }
                    for block in 0..blocks {
                        let n0 = block * NR;
                        // SAFETY: [`gemm_q_avx2`] dispatched here only after
                        // verifying AVX2.
                        if unsafe { pack_q_pairs(&mut bt[..kpairs * 2 * NR], b, n0, k) } {
                            // SAFETY: the dispatcher verified AVX2; the panel
                            // slice holds exactly kpairs × 32 packed pair
                            // lanes.
                            unsafe {
                                rows_q16_avx2(
                                    ctx,
                                    a,
                                    bias,
                                    m,
                                    k,
                                    &bt[..kpairs * 2 * NR],
                                    &apairs[..m * kpairs],
                                    &chunks[..m],
                                    b,
                                    n0,
                                    write,
                                );
                            }
                        } else {
                            // A weight word escaped `i16` (fault injection
                            // widens words arbitrarily): serve the block via
                            // exact dots.
                            q_dot_columns_avx2(ctx, a, bias, m, k, b, n0, n0 + NR, write);
                        }
                    }
                });
            });
        }
        q_dot_columns_avx2(ctx, a, bias, m, k, b, blocks * NR, n, write);
    }

    /// Widened per-column dot products for columns `n0..n1` — the exact
    /// tail/fallback of the Q kernels (wrapping integer addition is
    /// associative, so any summation order matches the scalar chain).
    #[allow(clippy::too_many_arguments)]
    fn q_dot_columns_avx2<F: FnMut(usize, usize, i32)>(
        ctx: QFormat,
        a: &[i32],
        bias: &[i32],
        m: usize,
        k: usize,
        b: &[i32],
        n0: usize,
        n1: usize,
        write: &mut F,
    ) {
        for ni in n0..n1 {
            let brow = &b[ni * k..(ni + 1) * k];
            for mi in 0..m {
                let arow = &a[mi * k..(mi + 1) * k];
                // SAFETY: the dispatcher verified AVX2.
                let dot = unsafe { dot_words_avx2(arow, brow) };
                let acc = <i32 as Element>::acc_init(bias[mi], ctx).wrapping_add(dot);
                write(mi, ni, <i32 as Element>::finish(acc, ctx));
            }
        }
    }

    /// Packs 16 columns of the raw-word panel for [`rows_q16_avx2`] in the
    /// [`pack_byte_pairs`] pair layout, narrowing each word to `i16`.
    /// Returns `false` when any word falls outside `i16` — possible only
    /// through the fault-injection surface, since every format this path
    /// serves stores within `i16` — in which case the caller must not use
    /// the panel.
    #[target_feature(enable = "avx2")]
    unsafe fn pack_q_pairs(bt: &mut [i16], b: &[i32], n0: usize, k: usize) -> bool {
        let kpairs = k.div_ceil(2);
        debug_assert_eq!(bt.len(), kpairs * 32);
        // The 16 columns are contiguous in `b`; checking the whole slab in
        // one pure reduction pass keeps the check vectorizable, and the
        // transpose below can then narrow with the saturating pack — no
        // word is outside `i16`, so the saturation point is unreachable and
        // the pack is a plain truncation.
        let slab = &b[n0 * k..(n0 + 16) * k];
        if !slab.iter().fold(true, |fit, &w| fit & fits_i16(w)) {
            return false;
        }
        // Eight-wide tiles: for each half (8 columns) and each run of 8 `k`
        // steps, narrow each column's 8 words to its 4 broadcast pairs
        // (`packs_epi32` + dword gather), then transpose the 8 × 4 pair
        // matrix with `unpack` steps so each of the 4 pair rows stores its
        // 8 columns contiguously in the panel's `p * 32 + half * 16` slot.
        let ktiles = k / 8;
        let gather = _mm256_setr_epi32(0, 1, 4, 5, 0, 0, 0, 0);
        for h in 0..2 {
            for t in 0..ktiles {
                let k0 = t * 8;
                let mut c = [_mm_setzero_si128(); 8];
                for (jj, slot) in c.iter_mut().enumerate() {
                    let v = _mm256_loadu_si256(
                        b.as_ptr().add((n0 + h * 8 + jj) * k + k0).cast::<__m256i>(),
                    );
                    let narrowed = _mm256_packs_epi32(v, v);
                    *slot = _mm256_castsi256_si128(_mm256_permutevar8x32_epi32(narrowed, gather));
                }
                let t0 = _mm_unpacklo_epi32(c[0], c[1]);
                let t1 = _mm_unpackhi_epi32(c[0], c[1]);
                let t2 = _mm_unpacklo_epi32(c[2], c[3]);
                let t3 = _mm_unpackhi_epi32(c[2], c[3]);
                let t4 = _mm_unpacklo_epi32(c[4], c[5]);
                let t5 = _mm_unpackhi_epi32(c[4], c[5]);
                let t6 = _mm_unpacklo_epi32(c[6], c[7]);
                let t7 = _mm_unpackhi_epi32(c[6], c[7]);
                let rows = [
                    (_mm_unpacklo_epi64(t0, t2), _mm_unpacklo_epi64(t4, t6)),
                    (_mm_unpackhi_epi64(t0, t2), _mm_unpackhi_epi64(t4, t6)),
                    (_mm_unpacklo_epi64(t1, t3), _mm_unpacklo_epi64(t5, t7)),
                    (_mm_unpackhi_epi64(t1, t3), _mm_unpackhi_epi64(t5, t7)),
                ];
                for (pp, (cols03, cols47)) in rows.iter().enumerate() {
                    let dst = bt.as_mut_ptr().add((k0 / 2 + pp) * 32 + h * 16);
                    _mm_storeu_si128(dst.cast::<__m128i>(), *cols03);
                    _mm_storeu_si128(dst.add(8).cast::<__m128i>(), *cols47);
                }
            }
        }
        // Scalar remainder for the trailing `k % 8` steps (including the
        // odd-`k` zero partner).
        for j in 0..16 {
            let col = &b[(n0 + j) * k..(n0 + j + 1) * k];
            let base = (j / 8) * 16 + (j % 8) * 2;
            for p in ktiles * 4..kpairs {
                bt[p * 32 + base] = col[2 * p] as i16;
                bt[p * 32 + base + 1] = if 2 * p + 1 < k { col[2 * p + 1] as i16 } else { 0 };
            }
        }
        true
    }

    fn fits_i16(word: i32) -> bool {
        word >= i32::from(i16::MIN) && word <= i32::from(i16::MAX)
    }

    /// Profiles a left-hand row for the `madd_epi16` path and packs its
    /// `(2k, 2k+1)` word pairs into broadcast-ready `lo | hi << 16` words
    /// (an odd trailing `k` pads a zero partner). Returns the row's
    /// widening chunk bound, or `0` when the row must take the exact-dot
    /// fallback: a word outside `i16`, or an aligned pair equal to
    /// `(-32768, -32768)`. Outside those cases every `madd_epi16` pair sum
    /// is exact in `i32` — each product is bounded by `2^30` in magnitude,
    /// and the only pair sum reaching `±2^31` is two `(-32768)²` products,
    /// the excluded pattern. The chunk bound caps how many pair sums can
    /// accumulate in `i32` before widening (see [`rows_q16_avx2`]): with
    /// `|a| ≤ max_abs` and `|b| ≤ 2^15`, a `chunk`-step partial sum is
    /// bounded by `chunk · 2 · max_abs · 2^15 ≤ i32::MAX`. The shift in the
    /// bound cannot overflow because `max_abs ≤ 2^15` once every word fits
    /// `i16`; the `chunk = 1` edge stays exact because the scan excluded
    /// the one overflowing pair.
    fn q16_row_pack(row: &[i32], pairs: &mut [i32]) -> u32 {
        let k = row.len();
        debug_assert_eq!(pairs.len(), k.div_ceil(2));
        // Pure reduction passes first — each one a single fold over the
        // contiguous row, which the compiler vectorizes — then an
        // unconditional pack loop over complete pairs.
        let (mut fits, mut max_abs) = (true, 0u32);
        for &w in row {
            fits &= fits_i16(w);
            max_abs = max_abs.max(w.unsigned_abs());
        }
        if !fits {
            return 0;
        }
        let mut min_pair = false;
        for pair in row.chunks_exact(2) {
            min_pair |= (pair[0] == i32::from(i16::MIN)) & (pair[1] == i32::from(i16::MIN));
        }
        if min_pair {
            return 0;
        }
        for (pair, slot) in row.chunks_exact(2).zip(pairs.iter_mut()) {
            *slot = ((pair[0] as u16 as u32) | ((pair[1] as u16 as u32) << 16)) as i32;
        }
        if k % 2 == 1 {
            pairs[k / 2] = (row[k - 1] as u16 as u32) as i32;
        }
        (i32::MAX as u32 / (max_abs.max(1) << 16)).max(1)
    }

    /// Sixteen-column lane-per-column kernel for narrow raw words: each
    /// `i64` lane accumulates `acc_init(bias) + Σ_k a·b` with `madd_epi16`
    /// folding each ascending `(k, k+1)` product pair — exact in `i32` per
    /// the [`q16_row_pack`] bound. Pair sums accumulate in `i32` lanes for
    /// up to the row's pre-computed `chunk` steps before one widening add,
    /// so the `i32` additions never wrap and the final `i64` value equals
    /// the scalar tile's one-at-a-time chain exactly (wrapping addition is
    /// associative). Rows whose chunk bound is `0` failed the exactness
    /// precondition and take the widened per-column dots instead.
    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    unsafe fn rows_q16_avx2<F: FnMut(usize, usize, i32)>(
        ctx: QFormat,
        a: &[i32],
        bias: &[i32],
        m: usize,
        k: usize,
        bt: &[i16],
        apairs: &[i32],
        chunks: &[u32],
        b: &[i32],
        n0: usize,
        write: &mut F,
    ) {
        let kpairs = k.div_ceil(2);
        debug_assert_eq!(bt.len(), kpairs * 32);
        debug_assert_eq!(apairs.len(), m * kpairs);
        debug_assert_eq!(chunks.len(), m);
        for i in 0..m {
            let chunk = chunks[i] as usize;
            if chunk == 0 {
                let row = &a[i * k..(i + 1) * k];
                q_dot_columns_avx2(
                    ctx,
                    row,
                    &bias[i..i + 1],
                    1,
                    k,
                    b,
                    n0,
                    n0 + 16,
                    &mut |_, ni, word| {
                        write(i, ni, word);
                    },
                );
                continue;
            }
            let row_pairs = &apairs[i * kpairs..(i + 1) * kpairs];
            let init = _mm256_set1_epi64x(<i32 as Element>::acc_init(bias[i], ctx));
            let mut acc = [init; 4];
            let mut p = 0usize;
            while p < kpairs {
                let end = (p + chunk).min(kpairs);
                let mut s01 = _mm256_setzero_si256();
                let mut s23 = _mm256_setzero_si256();
                for (off, &pair_word) in row_pairs[p..end].iter().enumerate() {
                    let q = p + off;
                    let pair = _mm256_set1_epi32(pair_word);
                    let b01 = _mm256_loadu_si256(bt.as_ptr().add(q * 32).cast::<__m256i>());
                    let b23 = _mm256_loadu_si256(bt.as_ptr().add(q * 32 + 16).cast::<__m256i>());
                    s01 = _mm256_add_epi32(s01, _mm256_madd_epi16(pair, b01));
                    s23 = _mm256_add_epi32(s23, _mm256_madd_epi16(pair, b23));
                }
                acc[0] =
                    _mm256_add_epi64(acc[0], _mm256_cvtepi32_epi64(_mm256_castsi256_si128(s01)));
                acc[1] = _mm256_add_epi64(
                    acc[1],
                    _mm256_cvtepi32_epi64(_mm256_extracti128_si256::<1>(s01)),
                );
                acc[2] =
                    _mm256_add_epi64(acc[2], _mm256_cvtepi32_epi64(_mm256_castsi256_si128(s23)));
                acc[3] = _mm256_add_epi64(
                    acc[3],
                    _mm256_cvtepi32_epi64(_mm256_extracti128_si256::<1>(s23)),
                );
                p = end;
            }
            let mut lanes = [0i64; 16];
            for (quad, &vec) in acc.iter().enumerate() {
                _mm256_storeu_si256(lanes.as_mut_ptr().add(quad * 4).cast::<__m256i>(), vec);
            }
            let mut words = [0i32; 16];
            // SAFETY: still inside the AVX2 target-feature context.
            requantize_q_avx2(ctx, &lanes, &mut words);
            for (j, &word) in words.iter().enumerate() {
                write(i, n0 + j, word);
            }
        }
    }

    /// `Σ a[t] · b[t]` in a widened `i64`, exactly — the scalar MAC chain's
    /// sum in a different (irrelevant, integer addition is associative)
    /// order.
    #[target_feature(enable = "avx2")]
    unsafe fn dot_words_avx2(a: &[i32], b: &[i32]) -> i64 {
        debug_assert_eq!(a.len(), b.len());
        let mut even = _mm256_setzero_si256();
        let mut odd = _mm256_setzero_si256();
        let chunks = a.len() / 8;
        for c in 0..chunks {
            let va = _mm256_loadu_si256(a.as_ptr().add(c * 8).cast::<__m256i>());
            let vb = _mm256_loadu_si256(b.as_ptr().add(c * 8).cast::<__m256i>());
            even = _mm256_add_epi64(even, _mm256_mul_epi32(va, vb));
            // The logical 64-bit shift moves each odd 32-bit word into a
            // `mul_epi32` source position; the multiply sign-extends the low
            // halves, so the zero fill above them is irrelevant.
            let va_odd = _mm256_srli_epi64(va, 32);
            let vb_odd = _mm256_srli_epi64(vb, 32);
            odd = _mm256_add_epi64(odd, _mm256_mul_epi32(va_odd, vb_odd));
        }
        let mut lanes = [0i64; 4];
        _mm256_storeu_si256(lanes.as_mut_ptr().cast::<__m256i>(), _mm256_add_epi64(even, odd));
        let mut total = lanes.iter().fold(0i64, |s, &l| s.wrapping_add(l));
        for t in chunks * 8..a.len() {
            total = total.wrapping_add(i64::from(a[t]) * i64::from(b[t]));
        }
        total
    }

    #[allow(clippy::too_many_arguments)]
    pub(super) fn gemm_i8_avx2<F: FnMut(usize, usize, i8)>(
        ctx: I8Affine,
        a: &[i8],
        bias: &[i8],
        m: usize,
        k: usize,
        b: &[i8],
        n: usize,
        write: &mut F,
    ) {
        const NR: usize = 16;
        let kpairs = k.div_ceil(2);
        PANEL_I8.with(|panel| {
            let mut bt = panel.borrow_mut();
            if bt.len() < kpairs * 2 * NR {
                bt.resize(kpairs * 2 * NR, 0);
            }
            let mut n0 = 0;
            while n0 + NR <= n {
                pack_byte_pairs(&mut bt[..kpairs * 2 * NR], b, n0, k);
                // SAFETY: the dispatcher verified AVX2; the panel slice
                // holds exactly kpairs × 32 packed pair lanes.
                unsafe { rows_i8_avx2(ctx, a, bias, m, k, &bt[..kpairs * 2 * NR], n0, write) };
                n0 += NR;
            }
            // Tail columns: k-vectorized dots — a different summation order,
            // but wrapping integer addition is associative, so still exact.
            for ni in n0..n {
                let brow = &b[ni * k..(ni + 1) * k];
                for mi in 0..m {
                    let arow = &a[mi * k..(mi + 1) * k];
                    // SAFETY: the dispatcher verified AVX2.
                    let dot = unsafe { dot_bytes_avx2(arow, brow) };
                    let acc = <i8 as Element>::acc_init(bias[mi], ctx).wrapping_add(dot);
                    write(mi, ni, <i8 as Element>::finish(acc, ctx));
                }
            }
        });
    }

    /// Packs 16 columns of the byte panel for [`rows_i8_avx2`], widened to
    /// `i16` and interleaved in `(2p, 2p + 1)` reduction pairs: pair block
    /// `p` holds `[b(2p, j), b(2p+1, j)]` for columns `j = 0..8` in its
    /// first 16 lanes and columns `8..16` in its next 16, so one 256-bit
    /// load feeds `madd_epi16` for eight columns. An odd trailing `k` step
    /// is padded with a zero partner (`a · 0` contributes nothing).
    fn pack_byte_pairs(bt: &mut [i16], b: &[i8], n0: usize, k: usize) {
        let kpairs = k.div_ceil(2);
        debug_assert_eq!(bt.len(), kpairs * 32);
        for j in 0..16 {
            let col = &b[(n0 + j) * k..(n0 + j + 1) * k];
            let base = (j / 8) * 16 + (j % 8) * 2;
            for p in 0..kpairs {
                bt[p * 32 + base] = i16::from(col[2 * p]);
                bt[p * 32 + base + 1] = if 2 * p + 1 < k { i16::from(col[2 * p + 1]) } else { 0 };
            }
        }
    }

    /// Sixteen-column lane-per-column kernel for affine bytes: each `i32`
    /// lane accumulates `acc_init(bias) + Σ_k a·b` with `madd_epi16`
    /// folding each ascending `(k, k+1)` product pair before the lane add —
    /// wrapping `i32` addition is associative, so the result equals the
    /// scalar tile's one-at-a-time chain exactly. Every product is exact in
    /// 16-bit-input arithmetic (`|a·b| ≤ 127²`, pair sums ≤ 2·127² — far
    /// from `madd`'s only saturation point) and `add_epi32` wraps like the
    /// scalar accumulator.
    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    unsafe fn rows_i8_avx2<F: FnMut(usize, usize, i8)>(
        ctx: I8Affine,
        a: &[i8],
        bias: &[i8],
        m: usize,
        k: usize,
        bt: &[i16],
        n0: usize,
        write: &mut F,
    ) {
        let kpairs = k.div_ceil(2);
        debug_assert_eq!(bt.len(), kpairs * 32);
        for i in 0..m {
            let row = &a[i * k..(i + 1) * k];
            let init = <i8 as Element>::acc_init(bias[i], ctx);
            let mut lo = _mm256_set1_epi32(init);
            let mut hi = _mm256_set1_epi32(init);
            for p in 0..kpairs {
                // Sign-extend each byte into its 16-bit lane (`as i16`),
                // then reinterpret the bits for the shift-or pack.
                let a0 = u32::from(row[2 * p] as i16 as u16);
                let a1 = if 2 * p + 1 < k { u32::from(row[2 * p + 1] as i16 as u16) } else { 0 };
                let va = _mm256_set1_epi32((a0 | (a1 << 16)) as i32);
                let b_lo = _mm256_loadu_si256(bt.as_ptr().add(p * 32).cast::<__m256i>());
                let b_hi = _mm256_loadu_si256(bt.as_ptr().add(p * 32 + 16).cast::<__m256i>());
                lo = _mm256_add_epi32(lo, _mm256_madd_epi16(va, b_lo));
                hi = _mm256_add_epi32(hi, _mm256_madd_epi16(va, b_hi));
            }
            let mut lanes = [0i32; 16];
            _mm256_storeu_si256(lanes.as_mut_ptr().cast::<__m256i>(), lo);
            _mm256_storeu_si256(lanes.as_mut_ptr().add(8).cast::<__m256i>(), hi);
            let mut bytes = [0i8; 16];
            // SAFETY: still inside the AVX2 target-feature context.
            requantize_i8_avx2(ctx, &lanes, &mut bytes);
            for (j, &byte) in bytes.iter().enumerate() {
                write(i, n0 + j, byte);
            }
        }
    }

    /// `Σ a[t] · b[t]` over bytes in a widened `i32`, exactly: the bytes are
    /// sign-extended to 16 bits and pair-multiply-added (`|a·b| ≤ 127²`
    /// keeps every pair sum far from `madd`'s only saturation point,
    /// `i16::MIN · i16::MIN`).
    #[target_feature(enable = "avx2")]
    unsafe fn dot_bytes_avx2(a: &[i8], b: &[i8]) -> i32 {
        debug_assert_eq!(a.len(), b.len());
        let mut acc = _mm256_setzero_si256();
        let chunks = a.len() / 16;
        for c in 0..chunks {
            let va = _mm_loadu_si128(a.as_ptr().add(c * 16).cast::<__m128i>());
            let vb = _mm_loadu_si128(b.as_ptr().add(c * 16).cast::<__m128i>());
            let prod = _mm256_madd_epi16(_mm256_cvtepi8_epi16(va), _mm256_cvtepi8_epi16(vb));
            acc = _mm256_add_epi32(acc, prod);
        }
        let mut lanes = [0i32; 8];
        _mm256_storeu_si256(lanes.as_mut_ptr().cast::<__m256i>(), acc);
        let mut total = lanes.iter().fold(0i32, |s, &l| s.wrapping_add(l));
        for t in chunks * 16..a.len() {
            total = total.wrapping_add(i32::from(a[t]) * i32::from(b[t]));
        }
        total
    }

    /// Four-lane AVX2 Q requantize: the branchless scalar
    /// `requantize_product_sum` — `half`-biased round half away from zero
    /// with `i64` saturation, arithmetic shift by `frac_bits`, raw-range
    /// clamp — applied to whole `i64` registers. AVX2 has no 64-bit
    /// arithmetic shift, so it is rebuilt from the logical pair plus a sign
    /// fill (a shift count of 64 yields zero, which keeps `frac == 0`
    /// exact).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn requantize_q_avx2(ctx: QFormat, accs: &[i64], out: &mut [i32]) {
        debug_assert_eq!(accs.len(), out.len());
        let frac = i32::from(ctx.frac_bits());
        let half = (1i64 << frac) >> 1;
        let half_v = _mm256_set1_epi64x(half);
        // The negative-lane bias correction: `-1` (so negatives round with
        // `half - 1`) except in the `frac == 0` identity case.
        let neg_bias_v = _mm256_set1_epi64x(-i64::from(half != 0));
        let i64_max_v = _mm256_set1_epi64x(i64::MAX);
        let max_v = _mm256_set1_epi64x(i64::from(ctx.max_raw()));
        let min_v = _mm256_set1_epi64x(i64::from(ctx.min_raw()));
        let zero = _mm256_setzero_si256();
        let srl_count = _mm_cvtsi32_si128(frac);
        let sll_count = _mm_cvtsi32_si128(64 - frac);
        let mut i = 0;
        while i + 4 <= accs.len() {
            let x = _mm256_loadu_si256(accs.as_ptr().add(i).cast::<__m256i>());
            let sign_x = _mm256_cmpgt_epi64(zero, x);
            let adjust = _mm256_add_epi64(half_v, _mm256_and_si256(sign_x, neg_bias_v));
            let sum = _mm256_add_epi64(x, adjust);
            // `adjust >= 0`, so the only possible overflow is a non-negative
            // lane wrapping negative — exactly where `saturating_add` pins
            // the scalar chain at `i64::MAX`.
            let wrapped = _mm256_andnot_si256(sign_x, _mm256_cmpgt_epi64(zero, sum));
            let sat = _mm256_blendv_epi8(sum, i64_max_v, wrapped);
            let sign_sat = _mm256_cmpgt_epi64(zero, sat);
            let shifted = _mm256_or_si256(
                _mm256_srl_epi64(sat, srl_count),
                _mm256_sll_epi64(sign_sat, sll_count),
            );
            let clamped = _mm256_blendv_epi8(shifted, max_v, _mm256_cmpgt_epi64(shifted, max_v));
            let clamped = _mm256_blendv_epi8(clamped, min_v, _mm256_cmpgt_epi64(min_v, clamped));
            let mut lanes = [0i64; 4];
            _mm256_storeu_si256(lanes.as_mut_ptr().cast::<__m256i>(), clamped);
            for (value, &lane) in out[i..i + 4].iter_mut().zip(lanes.iter()) {
                *value = lane as i32;
            }
            i += 4;
        }
        for t in i..accs.len() {
            out[t] = ctx.requantize_product_sum(accs[t]);
        }
    }

    /// Two-lane SSE2 Q requantize. SSE2 has no 64-bit compare, so per-lane
    /// sign masks come from broadcasting each lane's high-word sign
    /// (`srai` + `shuffle`), selects are `and`/`andnot`/`or`, and the final
    /// raw-range clamp (a 64-bit ordered compare) stays scalar per lane.
    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn requantize_q_sse2(ctx: QFormat, accs: &[i64], out: &mut [i32]) {
        debug_assert_eq!(accs.len(), out.len());
        let frac = i32::from(ctx.frac_bits());
        let half = (1i64 << frac) >> 1;
        let half_v = _mm_set1_epi64x(half);
        let neg_bias_v = _mm_set1_epi64x(-i64::from(half != 0));
        let i64_max_v = _mm_set1_epi64x(i64::MAX);
        let srl_count = _mm_cvtsi32_si128(frac);
        let sll_count = _mm_cvtsi32_si128(64 - frac);
        // `0xF5` copies each lane's high 32-bit word (1 and 3) over both its
        // words, turning `srai(x, 31)` into a full 64-bit sign mask.
        const SIGN_SPREAD: i32 = 0xF5;
        let mut i = 0;
        while i + 2 <= accs.len() {
            let x = _mm_loadu_si128(accs.as_ptr().add(i).cast::<__m128i>());
            let sign_x = _mm_shuffle_epi32::<SIGN_SPREAD>(_mm_srai_epi32::<31>(x));
            let adjust = _mm_add_epi64(half_v, _mm_and_si128(sign_x, neg_bias_v));
            let sum = _mm_add_epi64(x, adjust);
            let sign_sum = _mm_shuffle_epi32::<SIGN_SPREAD>(_mm_srai_epi32::<31>(sum));
            let wrapped = _mm_andnot_si128(sign_x, sign_sum);
            let sat =
                _mm_or_si128(_mm_and_si128(wrapped, i64_max_v), _mm_andnot_si128(wrapped, sum));
            let sign_sat = _mm_shuffle_epi32::<SIGN_SPREAD>(_mm_srai_epi32::<31>(sat));
            let shifted =
                _mm_or_si128(_mm_srl_epi64(sat, srl_count), _mm_sll_epi64(sign_sat, sll_count));
            let mut lanes = [0i64; 2];
            _mm_storeu_si128(lanes.as_mut_ptr().cast::<__m128i>(), shifted);
            out[i] = ctx.saturate_raw(lanes[0]);
            out[i + 1] = ctx.saturate_raw(lanes[1]);
            i += 2;
        }
        for t in i..accs.len() {
            out[t] = ctx.requantize_product_sum(accs[t]);
        }
    }

    /// Eight-lane AVX2 affine requantize: `cvtepi32_ps` and `mul_ps` round
    /// to nearest even exactly like the scalar `as f32` / `*`, and
    /// `round()`'s half-away-from-zero is rebuilt exactly as
    /// truncate + exact fraction + signed unit step (`x - trunc(x)` is
    /// always exact in IEEE arithmetic). The pre-clamp to ±1000.0 keeps the
    /// integer conversion in range and cannot change results: everything
    /// beyond ±127.5 saturates to the same byte.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn requantize_i8_avx2(ctx: I8Affine, accs: &[i32], out: &mut [i8]) {
        debug_assert_eq!(accs.len(), out.len());
        const TRUNC: i32 = _MM_FROUND_TO_ZERO | _MM_FROUND_NO_EXC;
        let scale = _mm256_set1_ps(ctx.scale);
        let limit = _mm256_set1_ps(1000.0);
        let neg_limit = _mm256_set1_ps(-1000.0);
        let sign_bit = _mm256_set1_ps(-0.0);
        let one = _mm256_set1_ps(1.0);
        let half = _mm256_set1_ps(0.5);
        let byte_max = _mm256_set1_ps(127.0);
        let byte_min = _mm256_set1_ps(-128.0);
        let mut i = 0;
        while i + 8 <= accs.len() {
            let v = _mm256_cvtepi32_ps(_mm256_loadu_si256(accs.as_ptr().add(i).cast::<__m256i>()));
            let x = _mm256_min_ps(_mm256_max_ps(_mm256_mul_ps(v, scale), neg_limit), limit);
            let t = _mm256_round_ps::<TRUNC>(x);
            let frac = _mm256_sub_ps(x, t);
            let away = _mm256_cmp_ps::<_CMP_GE_OQ>(_mm256_andnot_ps(sign_bit, frac), half);
            let step = _mm256_or_ps(_mm256_and_ps(x, sign_bit), one);
            let rounded = _mm256_add_ps(t, _mm256_and_ps(away, step));
            let clamped = _mm256_min_ps(_mm256_max_ps(rounded, byte_min), byte_max);
            let q = _mm256_cvtps_epi32(clamped);
            let mut lanes = [0i32; 8];
            _mm256_storeu_si256(lanes.as_mut_ptr().cast::<__m256i>(), q);
            for (value, &lane) in out[i..i + 8].iter_mut().zip(lanes.iter()) {
                *value = lane as i8;
            }
            i += 8;
        }
        for t in i..accs.len() {
            out[t] = <i8 as Element>::finish(accs[t], ctx);
        }
    }

    /// Four-lane SSE2 affine requantize — [`requantize_i8_avx2`] on the
    /// baseline ISA, with truncation via the `cvttps`/`cvtepi32` round trip
    /// (exact: the pre-clamp bounds every value well inside `i32`).
    #[target_feature(enable = "sse,sse2")]
    pub(super) unsafe fn requantize_i8_sse2(ctx: I8Affine, accs: &[i32], out: &mut [i8]) {
        debug_assert_eq!(accs.len(), out.len());
        let scale = _mm_set1_ps(ctx.scale);
        let limit = _mm_set1_ps(1000.0);
        let neg_limit = _mm_set1_ps(-1000.0);
        let sign_bit = _mm_set1_ps(-0.0);
        let one = _mm_set1_ps(1.0);
        let half = _mm_set1_ps(0.5);
        let byte_max = _mm_set1_ps(127.0);
        let byte_min = _mm_set1_ps(-128.0);
        let mut i = 0;
        while i + 4 <= accs.len() {
            let v = _mm_cvtepi32_ps(_mm_loadu_si128(accs.as_ptr().add(i).cast::<__m128i>()));
            let x = _mm_min_ps(_mm_max_ps(_mm_mul_ps(v, scale), neg_limit), limit);
            let t = _mm_cvtepi32_ps(_mm_cvttps_epi32(x));
            let frac = _mm_sub_ps(x, t);
            let away = _mm_cmpge_ps(_mm_andnot_ps(sign_bit, frac), half);
            let step = _mm_or_ps(_mm_and_ps(x, sign_bit), one);
            let rounded = _mm_add_ps(t, _mm_and_ps(away, step));
            let clamped = _mm_min_ps(_mm_max_ps(rounded, byte_min), byte_max);
            let q = _mm_cvttps_epi32(clamped);
            let mut lanes = [0i32; 4];
            _mm_storeu_si128(lanes.as_mut_ptr().cast::<__m128i>(), q);
            for (value, &lane) in out[i..i + 4].iter_mut().zip(lanes.iter()) {
                *value = lane as i8;
            }
            i += 4;
        }
        for t in i..accs.len() {
            out[t] = <i8 as Element>::finish(accs[t], ctx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::Element;
    use rand::rngs::SmallRng;
    use rand::{Rng, RngCore, SeedableRng};

    fn q_formats() -> Vec<QFormat> {
        vec![
            QFormat::Q4_11,
            QFormat::Q7_8,
            QFormat::Q10_5,
            QFormat::Q3_4,
            QFormat::Q2_5,
            QFormat::Q2_13,
            QFormat::new(6, 0).unwrap(),
            QFormat::new(31, 0).unwrap(),
            QFormat::new(0, 31).unwrap(),
            QFormat::new(15, 16).unwrap(),
        ]
    }

    /// Accumulator probes that hit every epilogue regime: zero, the `i64`
    /// extremes (saturating-add territory), the raw-range clamp edges, the
    /// round-half boundaries, and wide random values of varied magnitude.
    /// The vector length is deliberately not a lane-count multiple so the
    /// scalar remainder path runs too.
    fn q_probe_accs(fmt: QFormat, rng: &mut SmallRng) -> Vec<i64> {
        let frac = u32::from(fmt.frac_bits());
        let half = (1i64 << frac) >> 1;
        let mut accs = vec![
            0,
            1,
            -1,
            i64::MAX,
            i64::MAX - 1,
            i64::MIN,
            i64::MIN + 1,
            i64::from(fmt.max_raw()) << frac,
            i64::from(fmt.min_raw()) << frac,
        ];
        for k in -40i64..=40 {
            let base = k << frac;
            accs.extend([base, base + 1, base - 1, base + half, base - half]);
        }
        for _ in 0..200 {
            let wide = rng.next_u64() as i64;
            accs.push(wide >> (rng.next_u64() % 64));
        }
        accs
    }

    #[test]
    fn q_epilogue_tiers_match_scalar_requantize_bit_for_bit() {
        let mut rng = SmallRng::seed_from_u64(0xE91);
        for fmt in q_formats() {
            let accs = q_probe_accs(fmt, &mut rng);
            let expected: Vec<i32> =
                accs.iter().map(|&acc| fmt.requantize_product_sum(acc)).collect();
            let mut dispatched = vec![0i32; accs.len()];
            requantize_q(fmt, &accs, &mut dispatched);
            assert_eq!(dispatched, expected, "{fmt} dispatched epilogue");
            #[cfg(target_arch = "x86_64")]
            {
                if std::arch::is_x86_feature_detected!("avx2") {
                    let mut out = vec![0i32; accs.len()];
                    // SAFETY: AVX2 verified above.
                    unsafe { x86::requantize_q_avx2(fmt, &accs, &mut out) };
                    assert_eq!(out, expected, "{fmt} avx2 tier");
                }
                let mut out = vec![0i32; accs.len()];
                // SAFETY: SSE2 is part of the x86-64 baseline.
                unsafe { x86::requantize_q_sse2(fmt, &accs, &mut out) };
                assert_eq!(out, expected, "{fmt} sse2 tier");
            }
        }
    }

    #[test]
    fn i8_epilogue_tiers_match_scalar_finish_bit_for_bit() {
        let mut rng = SmallRng::seed_from_u64(0x18E9);
        // Power-of-two scales make exact `.5` products reachable, the rest
        // stress the nearest-even multiply; all are finite and positive like
        // every calibrated affine scale.
        for scale in [1.0f32 / 127.0, 0.007_812_5, 0.05, 1.0 / 3.0, 0.5, 1.0, 3.7] {
            let ctx = I8Affine { scale };
            let mut accs: Vec<i32> = vec![
                0,
                1,
                -1,
                i32::MAX,
                i32::MAX - 1,
                i32::MIN,
                i32::MIN + 1,
                127,
                -128,
                128,
                -129,
            ];
            accs.extend(-300..=300);
            for _ in 0..200 {
                accs.push(rng.gen_range(i32::MIN..=i32::MAX));
            }
            let expected: Vec<i8> =
                accs.iter().map(|&acc| <i8 as Element>::finish(acc, ctx)).collect();
            let mut dispatched = vec![0i8; accs.len()];
            requantize_i8(ctx, &accs, &mut dispatched);
            assert_eq!(dispatched, expected, "scale {scale} dispatched epilogue");
            #[cfg(target_arch = "x86_64")]
            {
                if std::arch::is_x86_feature_detected!("avx2") {
                    let mut out = vec![0i8; accs.len()];
                    // SAFETY: AVX2 verified above.
                    unsafe { x86::requantize_i8_avx2(ctx, &accs, &mut out) };
                    assert_eq!(out, expected, "scale {scale} avx2 tier");
                }
                let mut out = vec![0i8; accs.len()];
                // SAFETY: SSE/SSE2 are part of the x86-64 baseline.
                unsafe { x86::requantize_i8_sse2(ctx, &accs, &mut out) };
                assert_eq!(out, expected, "scale {scale} sse2 tier");
            }
        }
    }

    #[test]
    fn kernel_name_reports_a_known_tier() {
        let name = simd_kernel_name();
        assert!(["avx2", "sse2", "scalar"].contains(&name), "unknown tier {name}");
    }
}

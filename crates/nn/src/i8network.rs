//! The `i8` per-tensor affine backend: the byte instantiation of the
//! generic network stack, plus quantization in and out of it.
//!
//! This is the README's "adding a third backend is one `impl Element`"
//! claim, cashed in: [`I8Network`] is [`NetworkBase`]`<i8>` — the same
//! generic layers, engine, blocked GEMM and SIMD dispatch as the other
//! backends, with the [`Element`] impl for `i8` supplying the arithmetic.
//! One symmetric scale covers the whole network ([`I8Affine`], the
//! serving-style Int8 scheme of inference runtimes), byte products
//! accumulate exactly in a widened `i32`, and each output element gets one
//! rounding, saturating requantize. The live bytes a fault campaign corrupts
//! (weights, inputs, activations) exist at inference time, so corrupting
//! them is a single integer operation.
//!
//! [`Element`]: crate::Element

use std::fmt;

use navft_qformat::{bitstats::BitStats, QFormat};

use crate::element::I8Affine;
use crate::layer::{Conv2dBase, LayerBase, LinearBase};
use crate::network::NetworkBase;
use crate::{Conv2d, I8Tensor, Layer, LayerKind, Linear, Network, Scratch};

/// The bit width [`BitStats`] attributes to each stored `i8` byte: any
/// 8-bit [`QFormat`] works, since only the word width matters for bit
/// population counts.
const I8_BIT_FORMAT: QFormat = QFormat::Q3_4;

/// Activation storage for the `i8` backend: a [`Scratch`] over affine bytes.
pub type I8Scratch = Scratch<i8>;

/// Observer/mutator hooks invoked during an `i8` affine forward pass.
///
/// The byte counterpart of [`ForwardHooks`](crate::ForwardHooks) and
/// [`QForwardHooks`](crate::QForwardHooks): the same call sequence and
/// batch-row semantics, but over the live byte buffers, so fault injection
/// and instrumentation touch the stored representation directly.
pub trait I8ForwardHooks {
    /// Called on the input byte buffer before the first layer.
    fn on_input(&mut self, words: &mut [i8]) {
        let _ = words;
    }

    /// Called on the byte buffer produced by layer `layer_index`.
    fn on_activation(&mut self, layer_index: usize, kind: LayerKind, words: &mut [i8]) {
        let _ = (layer_index, kind, words);
    }

    /// Called on batch row `batch_row` of the input before the first layer
    /// of a batched pass. Defaults to [`I8ForwardHooks::on_input`].
    fn on_batch_input(&mut self, batch_row: usize, words: &mut [i8]) {
        let _ = batch_row;
        self.on_input(words);
    }

    /// Called on batch row `batch_row` of the byte buffer produced by layer
    /// `layer_index` during a batched pass. Defaults to
    /// [`I8ForwardHooks::on_activation`].
    fn on_batch_activation(
        &mut self,
        batch_row: usize,
        layer_index: usize,
        kind: LayerKind,
        words: &mut [i8],
    ) {
        let _ = batch_row;
        self.on_activation(layer_index, kind, words);
    }
}

/// [`NoHooks`](crate::NoHooks) serves every backend: the fault-free pass.
impl I8ForwardHooks for crate::NoHooks {}

/// Routes byte hooks into the generic forward paths (the `i8` side of the
/// [`crate::HooksFor`] bridge).
impl<H: I8ForwardHooks + ?Sized> crate::HooksFor<i8> for H {
    fn input(&mut self, words: &mut [i8]) {
        self.on_input(words);
    }

    fn activation(&mut self, layer_index: usize, kind: LayerKind, words: &mut [i8]) {
        self.on_activation(layer_index, kind, words);
    }

    fn batch_input(&mut self, batch_row: usize, words: &mut [i8]) {
        self.on_batch_input(batch_row, words);
    }

    fn batch_activation(
        &mut self,
        batch_row: usize,
        layer_index: usize,
        kind: LayerKind,
        words: &mut [i8],
    ) {
        self.on_batch_activation(batch_row, layer_index, kind, words);
    }
}

/// A 2-D convolution over affine bytes (valid padding) — the `i8`
/// instantiation of the generic [`Conv2dBase`].
pub type I8Conv2d = Conv2dBase<i8>;

impl I8Conv2d {
    /// Quantizes an `f32` convolution's parameters onto `affine`'s grid.
    pub fn quantize(conv: &Conv2d, affine: I8Affine) -> I8Conv2d {
        I8Conv2d {
            in_channels: conv.in_channels,
            out_channels: conv.out_channels,
            kernel: conv.kernel,
            stride: conv.stride,
            weights: quantize_bytes(&conv.weights, affine),
            bias: quantize_bytes(&conv.bias, affine),
        }
    }
}

/// A fully-connected layer `y = W x + b` over affine bytes — the `i8`
/// instantiation of the generic [`LinearBase`].
pub type I8Linear = LinearBase<i8>;

impl I8Linear {
    /// Quantizes an `f32` linear layer's parameters onto `affine`'s grid.
    pub fn quantize(linear: &Linear, affine: I8Affine) -> I8Linear {
        I8Linear {
            in_features: linear.in_features,
            out_features: linear.out_features,
            weights: quantize_bytes(&linear.weights, affine),
            bias: quantize_bytes(&linear.bias, affine),
        }
    }
}

/// A layer of the `i8` backend — the `i8` instantiation of the generic
/// [`LayerBase`].
pub type I8Layer = LayerBase<i8>;

impl I8Layer {
    /// The layer's live byte weight buffer, if it has parameters (the `i8`
    /// spelling of the generic [`LayerBase::weights`]).
    pub fn weights_raw(&self) -> Option<&[i8]> {
        self.weights()
    }

    /// The layer's live byte weight buffer, mutably — the bytes weight-fault
    /// injection flips in place.
    pub fn weights_raw_mut(&mut self) -> Option<&mut Vec<i8>> {
        self.weights_mut()
    }

    /// The layer's byte bias buffer, if it has parameters.
    pub fn biases_raw(&self) -> Option<&[i8]> {
        self.biases()
    }
}

/// A feed-forward network executing natively on `i8` affine bytes — the
/// byte instantiation of the generic [`NetworkBase`].
///
/// An `I8Network` is the Int8 compilation of a [`Network`]: same topology,
/// one per-network symmetric scale chosen from the parameters' maximum
/// magnitude, every buffer stored as live bytes, and every forward pass —
/// single-sample, scratch and batched — runs in integer arithmetic with one
/// requantize per output element through the same generic engine as the
/// other backends.
///
/// # Examples
///
/// ```
/// use navft_nn::{mlp, I8Network, I8Tensor, Tensor};
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let mut rng = SmallRng::seed_from_u64(0);
/// let net = mlp(&[4, 8, 2], &mut rng);
/// let i8net = I8Network::quantize(&net);
/// let input = I8Tensor::quantize(&Tensor::zeros(&[4]), i8net.affine());
/// let out = i8net.forward(&input);
/// assert_eq!(out.len(), 2);
/// ```
pub type I8Network = NetworkBase<i8>;

impl I8Network {
    /// Compiles `network` into an `i8` affine network, choosing the
    /// symmetric per-network scale from the largest parameter magnitude
    /// (post-training quantization of weights and biases).
    pub fn quantize(network: &Network) -> I8Network {
        let mut max_abs = 0.0f32;
        for layer in network.layers() {
            for buffer in [layer.weights(), layer.biases()].into_iter().flatten() {
                for &v in buffer {
                    max_abs = max_abs.max(v.abs());
                }
            }
        }
        Self::quantize_with(network, I8Affine::from_max_abs(max_abs))
    }

    /// Compiles `network` onto an explicit affine grid (when the scale is
    /// calibrated externally).
    pub fn quantize_with(network: &Network, affine: I8Affine) -> I8Network {
        let layers = network
            .layers()
            .iter()
            .map(|layer| match layer {
                Layer::Conv2d(conv) => I8Layer::Conv2d(I8Conv2d::quantize(conv, affine)),
                Layer::MaxPool2d(pool) => I8Layer::MaxPool2d(*pool),
                Layer::Relu => I8Layer::Relu,
                Layer::Flatten => I8Layer::Flatten,
                Layer::Linear(linear) => I8Layer::Linear(I8Linear::quantize(linear, affine)),
            })
            .collect();
        NetworkBase::from_parts(layers, affine)
    }

    /// Decompiles back into an `f32` [`Network`] whose parameters sit
    /// exactly on this affine's grid (no activation format: the affine
    /// datapath has no binary-point [`QFormat`] to simulate).
    pub fn dequantize(&self) -> Network {
        let affine = self.affine();
        let deq = |words: &[i8]| words.iter().map(|&w| affine.dequantize(w)).collect();
        let layers = self
            .layers()
            .iter()
            .map(|layer| match layer {
                I8Layer::Conv2d(conv) => Layer::Conv2d(Conv2d {
                    in_channels: conv.in_channels,
                    out_channels: conv.out_channels,
                    kernel: conv.kernel,
                    stride: conv.stride,
                    weights: deq(&conv.weights),
                    bias: deq(&conv.bias),
                }),
                I8Layer::MaxPool2d(pool) => Layer::MaxPool2d(*pool),
                I8Layer::Relu => Layer::Relu,
                I8Layer::Flatten => Layer::Flatten,
                I8Layer::Linear(linear) => Layer::Linear(Linear {
                    in_features: linear.in_features,
                    out_features: linear.out_features,
                    weights: deq(&linear.weights),
                    bias: deq(&linear.bias),
                }),
            })
            .collect();
        Network::new(layers)
    }

    /// The affine every buffer of this network is stored in.
    pub fn affine(&self) -> I8Affine {
        *self.net_meta()
    }

    /// The value of one least-significant step.
    pub fn scale(&self) -> f32 {
        self.affine().scale
    }

    /// The live byte weight buffer of layer `index`, if that layer has one
    /// (the `i8` spelling of the generic [`NetworkBase::layer_weights`]).
    pub fn layer_weights_raw(&self, index: usize) -> Option<&[i8]> {
        self.layer_weights(index)
    }

    /// The live byte weight buffer of layer `index`, mutably — the bytes
    /// the fault layer corrupts in place.
    pub fn layer_weights_raw_mut(&mut self, index: usize) -> Option<&mut Vec<i8>> {
        self.layer_weights_mut(index)
    }

    /// Bit-population statistics over the network's parameter bytes and —
    /// when `calibration` inputs are given — every activation buffer (input
    /// included) produced by forwarding them, 8 bits per stored word. The
    /// `i8` counterpart of [`QNetwork::bit_stats`](crate::QNetwork::bit_stats)
    /// behind the data-type experiment's zero/one-bit-ratio report.
    ///
    /// # Panics
    ///
    /// Panics if a calibration input's affine differs from the network's.
    pub fn bit_stats(&self, calibration: &[I8Tensor], scratch: &mut I8Scratch) -> BitStats {
        struct StatsHook {
            stats: BitStats,
        }
        impl I8ForwardHooks for StatsHook {
            fn on_input(&mut self, words: &mut [i8]) {
                self.stats.extend_raw(words.iter().map(|&w| i32::from(w)), I8_BIT_FORMAT);
            }
            fn on_activation(&mut self, _i: usize, _k: LayerKind, words: &mut [i8]) {
                self.stats.extend_raw(words.iter().map(|&w| i32::from(w)), I8_BIT_FORMAT);
            }
        }
        let mut hook = StatsHook { stats: BitStats::new() };
        for layer in self.layers() {
            for buffer in [layer.weights_raw(), layer.biases_raw()].into_iter().flatten() {
                hook.stats.extend_raw(buffer.iter().map(|&w| i32::from(w)), I8_BIT_FORMAT);
            }
        }
        for input in calibration {
            let _ = self.forward_scratch(input, scratch, &mut hook);
        }
        hook.stats
    }
}

impl fmt::Display for I8Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "I8Network[")?;
        for (i, layer) in self.layers().iter().enumerate() {
            if i > 0 {
                write!(f, " -> ")?;
            }
            write!(f, "{}", layer.kind())?;
        }
        write!(f, "] ({} weights at scale {})", self.weight_count(), self.scale())
    }
}

fn quantize_bytes(values: &[f32], affine: I8Affine) -> Vec<i8> {
    values.iter().map(|&v| affine.quantize(v)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NoHooks, Tensor};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn tiny_i8net(seed: u64) -> I8Network {
        let mut rng = SmallRng::seed_from_u64(seed);
        I8Network::quantize(&crate::mlp(&[3, 8, 2], &mut rng))
    }

    #[test]
    fn quantize_preserves_topology_and_spans() {
        let mut rng = SmallRng::seed_from_u64(0);
        let net = crate::mlp(&[3, 8, 2], &mut rng);
        let i8net = I8Network::quantize(&net);
        assert_eq!(i8net.num_layers(), net.num_layers());
        assert_eq!(i8net.parametric_layers(), net.parametric_layers());
        assert_eq!(i8net.weight_count(), net.weight_count());
        for index in i8net.parametric_layers() {
            assert_eq!(i8net.weight_span(index), net.weight_span(index));
        }
        assert!(i8net.scale() > 0.0);
    }

    #[test]
    fn quantize_scale_covers_the_largest_parameter() {
        let mut rng = SmallRng::seed_from_u64(1);
        let net = crate::mlp(&[3, 8, 2], &mut rng);
        let i8net = I8Network::quantize(&net);
        let mut max_abs = 0.0f32;
        for layer in net.layers() {
            for buffer in [layer.weights(), layer.biases()].into_iter().flatten() {
                for &v in buffer {
                    max_abs = max_abs.max(v.abs());
                }
            }
        }
        // The extreme parameter quantizes to ±127, i.e. nothing saturated.
        assert!((i8net.scale() - max_abs / 127.0).abs() < 1e-9);
        let extreme = i8net
            .layers()
            .iter()
            .flat_map(|l| [l.weights_raw(), l.biases_raw()])
            .flatten()
            .flat_map(|buf| buf.iter().map(|&b| i32::from(b).abs()))
            .max()
            .expect("parameters");
        assert_eq!(extreme, 127);
    }

    #[test]
    fn dequantize_round_trips_onto_the_affine_grid() {
        let i8net = tiny_i8net(2);
        let float = i8net.dequantize();
        let again = I8Network::quantize_with(&float, i8net.affine());
        for index in i8net.parametric_layers() {
            assert_eq!(
                i8net.layer_weights_raw(index),
                again.layer_weights_raw(index),
                "layer {index} bytes must survive the round trip"
            );
        }
    }

    #[test]
    fn batched_i8_pass_is_bit_identical_to_serial() {
        let i8net = tiny_i8net(3);
        let affine = i8net.affine();
        let inputs: Vec<I8Tensor> = (0..5)
            .map(|i| {
                I8Tensor::quantize(
                    &Tensor::from_vec(&[3], vec![0.3 * i as f32 - 0.5, 0.25, -0.1 * i as f32]),
                    affine,
                )
            })
            .collect();
        let mut scratch = I8Scratch::new();
        let batched = i8net.forward_batch(&inputs, &mut scratch);
        for (input, out) in inputs.iter().zip(batched.iter()) {
            assert_eq!(out.words(), i8net.forward(input).words());
        }
    }

    #[test]
    fn naive_and_blocked_i8_paths_are_bit_identical() {
        let i8net = tiny_i8net(4);
        let affine = i8net.affine();
        let mut rng = SmallRng::seed_from_u64(5);
        let inputs: Vec<I8Tensor> = (0..7)
            .map(|_| I8Tensor::quantize(&Tensor::uniform(&[3], 1.0, &mut rng), affine))
            .collect();
        let mut blocked = I8Scratch::new();
        i8net.forward_batch_into(&inputs, &mut blocked, &mut NoHooks);
        let mut naive = I8Scratch::new();
        i8net.forward_batch_naive_into(&inputs, &mut naive, &mut NoHooks);
        for b in 0..inputs.len() {
            assert_eq!(blocked.row(b), naive.row(b), "row {b} diverged");
        }
    }

    #[test]
    fn hooks_can_corrupt_live_bytes() {
        struct ZeroFirstActivation;
        impl I8ForwardHooks for ZeroFirstActivation {
            fn on_activation(&mut self, layer: usize, _k: LayerKind, words: &mut [i8]) {
                if layer == 0 {
                    words.iter_mut().for_each(|w| *w = 0);
                }
            }
        }
        let i8net = tiny_i8net(6);
        let input = I8Tensor::quantize(&Tensor::full(&[3], 1.0), i8net.affine());
        let clean = i8net.forward(&input);
        let hooked = i8net.forward_with(&input, &mut ZeroFirstActivation);
        // Zeroing the first linear layer's output leaves only fc2's bias,
        // lifted into the accumulator and requantized once.
        let ctx = i8net.affine();
        let expected: Vec<i8> = i8net.layers()[2]
            .biases_raw()
            .expect("fc2 bias")
            .iter()
            .map(|&b| <i8 as crate::Element>::finish(<i8 as crate::Element>::acc_init(b, ctx), ctx))
            .collect();
        assert_eq!(hooked.words(), expected.as_slice());
        assert_ne!(clean.words(), hooked.words());
    }

    #[test]
    fn i8_batched_steady_state_does_not_grow_the_scratch() {
        let i8net = tiny_i8net(7);
        let inputs = vec![I8Tensor::quantize(&Tensor::full(&[3], 0.5), i8net.affine()); 4];
        let mut scratch = I8Scratch::new();
        i8net.forward_batch_into(&inputs, &mut scratch, &mut NoHooks);
        let warm = scratch.grow_events();
        for _ in 0..20 {
            i8net.forward_batch_into(&inputs, &mut scratch, &mut NoHooks);
        }
        assert_eq!(scratch.grow_events(), warm, "warm i8 passes must not allocate");
    }

    #[test]
    fn bit_stats_cover_parameters_and_activations() {
        let i8net = tiny_i8net(8);
        let mut scratch = I8Scratch::new();
        let weights_only = i8net.bit_stats(&[], &mut scratch);
        let param_words: usize = i8net.weight_count()
            + i8net.layers().iter().filter_map(|l| l.biases_raw().map(<[i8]>::len)).sum::<usize>();
        assert_eq!(weights_only.total_bits(), (param_words * 8) as u64);
        let input = I8Tensor::quantize(&Tensor::full(&[3], 0.5), i8net.affine());
        let with_acts = i8net.bit_stats(std::slice::from_ref(&input), &mut scratch);
        // input (3) + linear (8) + relu (8) + linear (2) activation words.
        assert_eq!(with_acts.total_bits(), weights_only.total_bits() + 21 * 8);
    }

    #[test]
    fn display_lists_layers_and_scale() {
        let i8net = tiny_i8net(9);
        let text = i8net.to_string();
        assert!(text.contains("linear"));
        assert!(text.contains("scale"));
    }

    #[test]
    #[should_panic(expected = "scale does not match")]
    fn forward_rejects_mismatched_input_scale() {
        let i8net = tiny_i8net(10);
        let input = I8Tensor::quantize(&Tensor::zeros(&[3]), I8Affine { scale: 123.0 });
        let _ = i8net.forward(&input);
    }
}

//! The byte surface of [`TensorBase`]: quantization, dequantization and
//! word-level access for the `i8` per-tensor affine backend.

use std::fmt;

use crate::element::I8Affine;
use crate::tensor::TensorBase;
use crate::Tensor;

/// A dense row-major tensor of symmetric affine bytes.
///
/// Each element is stored as a live `i8` word representing `word · scale`
/// ([`I8Affine`]). Like the raw Q-format words of
/// [`QTensor`](crate::QTensor), these bytes exist at inference time, so the
/// fault model corrupts them with single integer operations — no
/// quantize→corrupt→dequantize round trip.
///
/// `I8Tensor` is the `i8` instantiation of the generic [`TensorBase`], so
/// the shared accessors ([`TensorBase::shape`], [`TensorBase::len`],
/// [`TensorBase::argmax`], …) come from the same code as the `f32`
/// [`Tensor`]'s.
///
/// # Examples
///
/// ```
/// use navft_nn::{I8Affine, I8Tensor, Tensor};
///
/// let t = Tensor::from_vec(&[2], vec![0.5, -0.25]);
/// let i8t = I8Tensor::quantize(&t, I8Affine { scale: 0.25 });
/// assert_eq!(i8t.words(), &[2, -1]);
/// assert_eq!(i8t.dequantize().data(), &[0.5, -0.25]);
/// ```
pub type I8Tensor = TensorBase<i8>;

impl I8Tensor {
    /// A tensor of the given shape filled with zero bytes.
    ///
    /// # Panics
    ///
    /// Panics if the shape is empty or has a zero dimension.
    pub fn zeros(shape: &[usize], affine: I8Affine) -> I8Tensor {
        assert!(!shape.is_empty(), "tensor shape must have at least one dimension");
        assert!(shape.iter().all(|&d| d > 0), "tensor dimensions must be non-zero");
        let len = shape.iter().product();
        TensorBase::from_parts(shape.to_vec(), vec![0; len], affine)
    }

    /// Quantizes an `f32` tensor into `affine`'s grid, rounding to nearest
    /// and saturating at the `i8` extremes.
    pub fn quantize(tensor: &Tensor, affine: I8Affine) -> I8Tensor {
        let mut q = I8Tensor::zeros(tensor.shape(), affine);
        q.quantize_from(tensor);
        q
    }

    /// Requantizes an `f32` tensor into this tensor in place, reusing the
    /// existing allocations — the zero-allocation entry point of episode
    /// loops that feed float observations to the `i8` backend.
    ///
    /// The tensor takes `tensor`'s shape; its affine is unchanged.
    pub fn quantize_from(&mut self, tensor: &Tensor) {
        let affine = self.affine();
        let (shape, words) = self.parts_mut();
        shape.clear();
        shape.extend_from_slice(tensor.shape());
        words.clear();
        words.extend(tensor.data().iter().map(|&v| affine.quantize(v)));
    }

    /// Dequantizes into a fresh `f32` tensor (exact: `word · scale` is one
    /// f32 product per element).
    pub fn dequantize(&self) -> Tensor {
        let affine = self.affine();
        Tensor::from_vec(self.shape(), self.words().iter().map(|&w| affine.dequantize(w)).collect())
    }

    /// The affine every byte is encoded in.
    pub fn affine(&self) -> I8Affine {
        *self.meta()
    }

    /// The value of one least-significant step.
    pub fn scale(&self) -> f32 {
        self.affine().scale
    }

    /// The flat byte buffer.
    pub fn words(&self) -> &[i8] {
        self.data()
    }

    /// The flat byte buffer, mutably — the fault-injection surface of the
    /// `i8` backend.
    pub fn words_mut(&mut self) -> &mut [i8] {
        self.data_mut()
    }
}

impl fmt::Debug for I8Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "I8Tensor {{ shape: {:?}, {} bytes at scale {} }}",
            self.shape(),
            self.len(),
            self.scale()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantize_and_dequantize_roundtrip_grid_values() {
        let affine = I8Affine { scale: 0.25 };
        let t = Tensor::from_vec(&[2, 2], vec![0.0, 0.5, -1.25, 3.75]);
        let q = I8Tensor::quantize(&t, affine);
        assert_eq!(q.shape(), &[2, 2]);
        assert_eq!(q.len(), 4);
        assert_eq!(q.dequantize().data(), t.data());
    }

    #[test]
    fn quantize_saturates_out_of_range_values() {
        let t = Tensor::from_vec(&[2], vec![100.0, -100.0]);
        let q = I8Tensor::quantize(&t, I8Affine { scale: 0.25 });
        assert_eq!(q.words(), &[127, -128]);
    }

    #[test]
    fn quantize_from_reuses_the_tensor_and_replaces_shape() {
        let mut q = I8Tensor::zeros(&[4], I8Affine { scale: 0.5 });
        q.quantize_from(&Tensor::from_vec(&[2], vec![1.0, -1.0]));
        assert_eq!(q.shape(), &[2]);
        assert_eq!(q.words(), &[2, -2]);
    }

    #[test]
    fn argmax_on_bytes_matches_value_argmax() {
        let t = Tensor::from_vec(&[4], vec![-2.0, 3.5, 3.5, 1.0]);
        let q = I8Tensor::quantize(&t, I8Affine { scale: 0.05 });
        assert_eq!(q.argmax(), t.argmax());
    }

    #[test]
    fn words_mut_exposes_live_storage() {
        let mut q = I8Tensor::zeros(&[2], I8Affine { scale: 0.5 });
        q.words_mut()[1] = 2;
        assert_eq!(q.dequantize().data()[1], 1.0);
    }

    #[test]
    fn debug_is_nonempty() {
        let q = I8Tensor::zeros(&[1], I8Affine { scale: 0.5 });
        assert!(!format!("{q:?}").is_empty());
    }
}

//! The native fixed-point backend: the raw-word instantiation of the
//! generic network stack, plus quantization in and out of it.
//!
//! The `f32` backend *simulates* a fixed-point datapath by requantizing
//! activations after every layer; this module *is* the fixed-point datapath.
//! [`QNetwork`] is [`NetworkBase`]`<i32>` — the same generic layers, engine
//! and blocked GEMM as the float backend, with the [`Element`] impl for
//! `i32` supplying the arithmetic: a widened `i64` accumulator and one
//! saturating, round-to-nearest requantize per output element — exactly an
//! integer MAC array. The live buffers a fault campaign corrupts (weights,
//! inputs, activations) therefore exist as Q-format words at inference time,
//! and corrupting them is a single integer operation.
//!
//! [`Element`]: crate::Element

use std::fmt;

use navft_qformat::{bitstats::BitStats, QFormat, QValue};

use crate::layer::{Conv2dBase, LayerBase, LinearBase};
use crate::network::NetworkBase;
use crate::{Conv2d, Layer, LayerKind, Linear, Network, QTensor, Scratch};

/// Activation storage for the native fixed-point backend: a [`Scratch`] over
/// raw Q-format words.
pub type QScratch = Scratch<i32>;

/// Observer/mutator hooks invoked during a native fixed-point forward pass.
///
/// The quantized counterpart of [`ForwardHooks`](crate::ForwardHooks): the
/// same call sequence and
/// batch-row semantics, but over the live raw-word buffers, so fault
/// injection and instrumentation touch the stored representation directly.
pub trait QForwardHooks {
    /// Called on the input word buffer before the first layer.
    fn on_input(&mut self, words: &mut [i32]) {
        let _ = words;
    }

    /// Called on the word buffer produced by layer `layer_index`.
    fn on_activation(&mut self, layer_index: usize, kind: LayerKind, words: &mut [i32]) {
        let _ = (layer_index, kind, words);
    }

    /// Called on batch row `batch_row` of the input before the first layer
    /// of a batched pass. Defaults to [`QForwardHooks::on_input`].
    fn on_batch_input(&mut self, batch_row: usize, words: &mut [i32]) {
        let _ = batch_row;
        self.on_input(words);
    }

    /// Called on batch row `batch_row` of the word buffer produced by layer
    /// `layer_index` during a batched pass. Defaults to
    /// [`QForwardHooks::on_activation`].
    fn on_batch_activation(
        &mut self,
        batch_row: usize,
        layer_index: usize,
        kind: LayerKind,
        words: &mut [i32],
    ) {
        let _ = batch_row;
        self.on_activation(layer_index, kind, words);
    }
}

/// [`NoHooks`](crate::NoHooks) serves both backends: the fault-free native
/// pass.
impl QForwardHooks for crate::NoHooks {}

/// Routes raw-word hooks into the generic forward paths (the `i32` side of
/// the [`crate::HooksFor`] bridge).
impl<H: QForwardHooks + ?Sized> crate::HooksFor<i32> for H {
    fn input(&mut self, words: &mut [i32]) {
        self.on_input(words);
    }

    fn activation(&mut self, layer_index: usize, kind: LayerKind, words: &mut [i32]) {
        self.on_activation(layer_index, kind, words);
    }

    fn batch_input(&mut self, batch_row: usize, words: &mut [i32]) {
        self.on_batch_input(batch_row, words);
    }

    fn batch_activation(
        &mut self,
        batch_row: usize,
        layer_index: usize,
        kind: LayerKind,
        words: &mut [i32],
    ) {
        self.on_batch_activation(batch_row, layer_index, kind, words);
    }
}

/// A 2-D convolution over raw Q-format words (valid padding) — the `i32`
/// instantiation of the generic [`Conv2dBase`].
///
/// Weights and biases are stored as raw two's-complement words in the
/// network's format; the shared kernel accumulates word products in a
/// widened `i64` accumulator (products carry `2 × frac_bits` fractional
/// bits) and performs one saturating requantize per output element.
pub type QConv2d = Conv2dBase<i32>;

impl QConv2d {
    /// Quantizes an `f32` convolution's parameters into `format`.
    pub fn quantize(conv: &Conv2d, format: QFormat) -> QConv2d {
        QConv2d {
            in_channels: conv.in_channels,
            out_channels: conv.out_channels,
            kernel: conv.kernel,
            stride: conv.stride,
            weights: quantize_raw(&conv.weights, format),
            bias: quantize_raw(&conv.bias, format),
        }
    }
}

/// A fully-connected layer `y = W x + b` over raw Q-format words — the
/// `i32` instantiation of the generic [`LinearBase`].
pub type QLinear = LinearBase<i32>;

impl QLinear {
    /// Quantizes an `f32` linear layer's parameters into `format`.
    pub fn quantize(linear: &Linear, format: QFormat) -> QLinear {
        QLinear {
            in_features: linear.in_features,
            out_features: linear.out_features,
            weights: quantize_raw(&linear.weights, format),
            bias: quantize_raw(&linear.bias, format),
        }
    }
}

/// A layer of the native fixed-point backend — the `i32` instantiation of
/// the generic [`LayerBase`].
///
/// Mirrors [`Layer`] shape-for-shape because it *is* the same enum:
/// parametric layers carry raw-word parameters, pooling reuses the
/// order-only [`MaxPool2d`](crate::layer::MaxPool2d), and ReLU/flatten are
/// in-place integer transforms.
pub type QLayer = LayerBase<i32>;

impl QLayer {
    /// The layer's raw weight buffer, if it has parameters (the raw-word
    /// spelling of the generic [`LayerBase::weights`]).
    pub fn weights_raw(&self) -> Option<&[i32]> {
        self.weights()
    }

    /// The layer's raw weight buffer, mutably — the live words weight-fault
    /// injection flips in place.
    pub fn weights_raw_mut(&mut self) -> Option<&mut Vec<i32>> {
        self.weights_mut()
    }

    /// The layer's raw bias buffer, if it has parameters.
    pub fn biases_raw(&self) -> Option<&[i32]> {
        self.biases()
    }
}

/// A feed-forward network executing natively in one [`QFormat`] — the
/// raw-word instantiation of the generic [`NetworkBase`].
///
/// A `QNetwork` is the fixed-point compilation of a [`Network`]: same
/// topology, parameters snapped to the format and stored as raw
/// two's-complement words, and every forward pass — single-sample, scratch
/// and batched — runs in integer arithmetic end to end through the same
/// generic engine as the float backend. Activations are raw words too, so
/// the paper's fault model corrupts the buffers that actually exist at
/// inference time.
///
/// # Examples
///
/// ```
/// use navft_nn::{mlp, QNetwork, QTensor, Tensor};
/// use navft_qformat::QFormat;
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let mut rng = SmallRng::seed_from_u64(0);
/// let net = mlp(&[4, 8, 2], &mut rng);
/// let qnet = QNetwork::quantize(&net, QFormat::Q4_11);
/// let input = QTensor::quantize(&Tensor::zeros(&[4]), QFormat::Q4_11);
/// let out = qnet.forward(&input);
/// assert_eq!(out.len(), 2);
/// ```
pub type QNetwork = NetworkBase<i32>;

impl QNetwork {
    /// Compiles `network` into a native fixed-point network in `format`
    /// (post-training quantization of weights and biases).
    pub fn quantize(network: &Network, format: QFormat) -> QNetwork {
        let layers = network
            .layers()
            .iter()
            .map(|layer| match layer {
                Layer::Conv2d(conv) => QLayer::Conv2d(QConv2d::quantize(conv, format)),
                Layer::MaxPool2d(pool) => QLayer::MaxPool2d(*pool),
                Layer::Relu => QLayer::Relu,
                Layer::Flatten => QLayer::Flatten,
                Layer::Linear(linear) => QLayer::Linear(QLinear::quantize(linear, format)),
            })
            .collect();
        NetworkBase::from_parts(layers, format)
    }

    /// Decompiles back into an `f32` [`Network`] whose parameters sit exactly
    /// on this format's grid and whose activation format is set — the float
    /// *simulation* of this network, used by the equivalence suite.
    pub fn dequantize(&self) -> Network {
        let format = self.format();
        let resolution = format.resolution();
        let deq = |words: &[i32]| words.iter().map(|&w| w as f32 * resolution).collect();
        let layers = self
            .layers()
            .iter()
            .map(|layer| match layer {
                QLayer::Conv2d(conv) => Layer::Conv2d(Conv2d {
                    in_channels: conv.in_channels,
                    out_channels: conv.out_channels,
                    kernel: conv.kernel,
                    stride: conv.stride,
                    weights: deq(&conv.weights),
                    bias: deq(&conv.bias),
                }),
                QLayer::MaxPool2d(pool) => Layer::MaxPool2d(*pool),
                QLayer::Relu => Layer::Relu,
                QLayer::Flatten => Layer::Flatten,
                QLayer::Linear(linear) => Layer::Linear(Linear {
                    in_features: linear.in_features,
                    out_features: linear.out_features,
                    weights: deq(&linear.weights),
                    bias: deq(&linear.bias),
                }),
            })
            .collect();
        Network::new(layers).with_activation_format(format)
    }

    /// The format every buffer of this network is stored in.
    pub fn format(&self) -> QFormat {
        *self.net_meta()
    }

    /// The raw weight buffer of layer `index`, if that layer has one (the
    /// raw-word spelling of the generic [`NetworkBase::layer_weights`]).
    pub fn layer_weights_raw(&self, index: usize) -> Option<&[i32]> {
        self.layer_weights(index)
    }

    /// The raw weight buffer of layer `index`, mutably — the live words the
    /// fault layer corrupts in place.
    pub fn layer_weights_raw_mut(&mut self, index: usize) -> Option<&mut Vec<i32>> {
        self.layer_weights_mut(index)
    }

    /// Bit-population statistics over the network's parameter words and —
    /// when `calibration` inputs are given — every activation buffer (input
    /// included) produced by forwarding them. One call sweeps the whole
    /// fault surface, feeding the per-format zero/one-bit-ratio report of
    /// the data-type experiment.
    ///
    /// # Panics
    ///
    /// Panics if a calibration input's format differs from the network's.
    pub fn bit_stats(&self, calibration: &[QTensor], scratch: &mut QScratch) -> BitStats {
        struct StatsHook {
            stats: BitStats,
            format: QFormat,
        }
        impl QForwardHooks for StatsHook {
            fn on_input(&mut self, words: &mut [i32]) {
                self.stats.extend_raw(words.iter().copied(), self.format);
            }
            fn on_activation(&mut self, _i: usize, _k: LayerKind, words: &mut [i32]) {
                self.stats.extend_raw(words.iter().copied(), self.format);
            }
        }
        let mut hook = StatsHook { stats: BitStats::new(), format: self.format() };
        for layer in self.layers() {
            if let Some(w) = layer.weights_raw() {
                hook.stats.extend_raw(w.iter().copied(), self.format());
            }
            if let Some(b) = layer.biases_raw() {
                hook.stats.extend_raw(b.iter().copied(), self.format());
            }
        }
        for input in calibration {
            let _ = self.forward_scratch(input, scratch, &mut hook);
        }
        hook.stats
    }
}

impl fmt::Display for QNetwork {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "QNetwork[")?;
        for (i, layer) in self.layers().iter().enumerate() {
            if i > 0 {
                write!(f, " -> ")?;
            }
            write!(f, "{}", layer.kind())?;
        }
        write!(f, "] ({} weights in {})", self.weight_count(), self.format())
    }
}

/// Bit-population statistics over an `f32` network's whole fault surface in
/// one call: every weight and bias buffer plus — when `calibration` inputs
/// are given — every activation buffer (input included) a forward pass
/// produces, all quantized into `format`.
///
/// This is the network-level [`BitStats`] sweep behind the zero/one
/// bit-ratio analysis of the data-type experiment; the native equivalent for
/// an already-quantized network is [`QNetwork::bit_stats`].
pub fn network_bit_stats(
    network: &Network,
    format: QFormat,
    calibration: &[crate::Tensor],
) -> BitStats {
    let qnet = QNetwork::quantize(network, format);
    let inputs: Vec<QTensor> = calibration.iter().map(|t| QTensor::quantize(t, format)).collect();
    let mut scratch = QScratch::new();
    qnet.bit_stats(&inputs, &mut scratch)
}

fn quantize_raw(values: &[f32], format: QFormat) -> Vec<i32> {
    values.iter().map(|&v| QValue::quantize(v, format).raw()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NoHooks, Tensor};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn tiny_qnet(seed: u64, format: QFormat) -> QNetwork {
        let mut rng = SmallRng::seed_from_u64(seed);
        QNetwork::quantize(&crate::mlp(&[3, 8, 2], &mut rng), format)
    }

    #[test]
    fn quantize_preserves_topology_and_spans() {
        let mut rng = SmallRng::seed_from_u64(0);
        let net = crate::mlp(&[3, 8, 2], &mut rng);
        let qnet = QNetwork::quantize(&net, QFormat::Q4_11);
        assert_eq!(qnet.num_layers(), net.num_layers());
        assert_eq!(qnet.parametric_layers(), net.parametric_layers());
        assert_eq!(qnet.weight_count(), net.weight_count());
        for index in qnet.parametric_layers() {
            assert_eq!(qnet.weight_span(index), net.weight_span(index));
        }
        assert_eq!(qnet.format(), QFormat::Q4_11);
    }

    #[test]
    fn native_forward_matches_float_simulation_on_a_tiny_mlp() {
        let format = QFormat::Q3_4;
        let qnet = tiny_qnet(1, format);
        let reference = qnet.dequantize();
        let input = QTensor::quantize(&Tensor::from_vec(&[3], vec![0.5, -0.25, 1.0]), format);
        let native = qnet.forward(&input);
        let simulated = reference.forward(&input.dequantize());
        for (n, s) in native.dequantize().data().iter().zip(simulated.data().iter()) {
            assert!(
                (n - s).abs() <= format.resolution(),
                "native {n} vs simulated {s} diverge past one LSB"
            );
        }
    }

    #[test]
    fn batched_native_pass_is_bit_identical_to_serial() {
        let format = QFormat::Q4_11;
        let qnet = tiny_qnet(2, format);
        let inputs: Vec<QTensor> = (0..5)
            .map(|i| {
                QTensor::quantize(
                    &Tensor::from_vec(&[3], vec![0.3 * i as f32 - 0.5, 0.25, -0.1 * i as f32]),
                    format,
                )
            })
            .collect();
        let mut scratch = QScratch::new();
        let batched = qnet.forward_batch(&inputs, &mut scratch);
        for (input, out) in inputs.iter().zip(batched.iter()) {
            assert_eq!(out.words(), qnet.forward(input).words());
        }
    }

    #[test]
    fn native_batched_steady_state_does_not_grow_the_scratch() {
        let qnet = tiny_qnet(3, QFormat::Q3_4);
        let inputs = vec![QTensor::quantize(&Tensor::full(&[3], 0.5), QFormat::Q3_4); 4];
        let mut scratch = QScratch::new();
        qnet.forward_batch_into(&inputs, &mut scratch, &mut NoHooks);
        let warm = scratch.grow_events();
        for _ in 0..20 {
            qnet.forward_batch_into(&inputs, &mut scratch, &mut NoHooks);
        }
        assert_eq!(scratch.grow_events(), warm, "warm native passes must not allocate");
    }

    #[test]
    fn hooks_can_corrupt_live_words() {
        struct ZeroFirstActivation;
        impl QForwardHooks for ZeroFirstActivation {
            fn on_activation(&mut self, layer: usize, _k: LayerKind, words: &mut [i32]) {
                if layer == 0 {
                    words.iter_mut().for_each(|w| *w = 0);
                }
            }
        }
        let format = QFormat::Q3_4;
        let qnet = tiny_qnet(4, format);
        let input = QTensor::quantize(&Tensor::full(&[3], 1.0), format);
        let clean = qnet.forward(&input);
        let hooked = qnet.forward_with(&input, &mut ZeroFirstActivation);
        // Zeroing the first linear layer's output leaves only fc2's bias.
        let bias = qnet.layers()[2].biases_raw().expect("fc2 bias");
        assert_eq!(hooked.words(), bias);
        assert_ne!(clean.words(), hooked.words());
    }

    #[test]
    fn relu_in_place_zeroes_negative_words() {
        let mut words = vec![-3, 0, 5];
        QLayer::relu_in_place(&mut words);
        assert_eq!(words, vec![0, 0, 5]);
    }

    #[test]
    fn weight_ranges_are_dequantized_extrema() {
        let qnet = tiny_qnet(5, QFormat::Q3_4);
        for (layer, lo, hi) in qnet.weight_ranges() {
            let words = qnet.layer_weights_raw(layer).expect("weights");
            let min = *words.iter().min().expect("non-empty") as f32 * 0.0625;
            let max = *words.iter().max().expect("non-empty") as f32 * 0.0625;
            assert_eq!((lo, hi), (min, max));
        }
    }

    #[test]
    fn bit_stats_cover_parameters_and_activations() {
        let format = QFormat::Q3_4;
        let qnet = tiny_qnet(6, format);
        let mut scratch = QScratch::new();
        let weights_only = qnet.bit_stats(&[], &mut scratch);
        let param_words: usize = qnet.weight_count()
            + qnet.layers().iter().filter_map(|l| l.biases_raw().map(<[i32]>::len)).sum::<usize>();
        assert_eq!(weights_only.total_bits(), (param_words * 8) as u64);
        let input = QTensor::quantize(&Tensor::full(&[3], 0.5), format);
        let with_acts = qnet.bit_stats(std::slice::from_ref(&input), &mut scratch);
        // input (3) + linear (8) + relu (8) + linear (2) activation words.
        assert_eq!(with_acts.total_bits(), weights_only.total_bits() + 21 * 8);
    }

    #[test]
    fn network_bit_stats_matches_native_sweep() {
        let mut rng = SmallRng::seed_from_u64(7);
        let net = crate::mlp(&[3, 8, 2], &mut rng);
        let format = QFormat::Q4_11;
        let calibration = vec![Tensor::full(&[3], 0.25)];
        let via_f32 = network_bit_stats(&net, format, &calibration);
        let qnet = QNetwork::quantize(&net, format);
        let qcal: Vec<QTensor> = calibration.iter().map(|t| QTensor::quantize(t, format)).collect();
        let mut scratch = QScratch::new();
        assert_eq!(via_f32, qnet.bit_stats(&qcal, &mut scratch));
    }

    #[test]
    fn display_lists_layers_and_format() {
        let qnet = tiny_qnet(8, QFormat::Q3_4);
        let text = qnet.to_string();
        assert!(text.contains("linear"));
        assert!(text.contains("Q(1,3,4)"));
    }

    #[test]
    #[should_panic(expected = "format does not match")]
    fn forward_rejects_mismatched_input_format() {
        let qnet = tiny_qnet(9, QFormat::Q3_4);
        let input = QTensor::quantize(&Tensor::zeros(&[3]), QFormat::Q4_11);
        let _ = qnet.forward(&input);
    }

    #[test]
    fn naive_and_blocked_native_paths_are_bit_identical() {
        let format = QFormat::Q4_11;
        let qnet = tiny_qnet(10, format);
        let mut rng = SmallRng::seed_from_u64(11);
        let inputs: Vec<QTensor> = (0..7)
            .map(|_| QTensor::quantize(&Tensor::uniform(&[3], 1.0, &mut rng), format))
            .collect();
        let mut blocked = QScratch::new();
        qnet.forward_batch_into(&inputs, &mut blocked, &mut NoHooks);
        let mut naive = QScratch::new();
        qnet.forward_batch_naive_into(&inputs, &mut naive, &mut NoHooks);
        for b in 0..inputs.len() {
            assert_eq!(blocked.row(b), naive.row(b), "row {b} diverged");
        }
    }
}
